package sim

import (
	"fmt"
	"strconv"
	"strings"

	"ndpgpu/internal/config"
)

// ModeUsage enumerates the CLI mode spellings every command accepts; flag
// help strings and parse errors both quote it so the tools stay consistent.
const ModeUsage = "baseline|morecore|naive|static=<p>|dyn|dyncache"

// ParseMode maps a CLI mode string to a Mode and the configuration
// adjustments it implies (morecore adds one SM per memory stack to the
// baseline, the §6.1 iso-area comparison point). Shared by every command so
// the accepted spellings — and the error message listing them — are
// identical across ndpsim, ndpsweep, ndpasm, and ndptrace.
func ParseMode(name string, cfg config.Config) (Mode, config.Config, error) {
	switch {
	case name == "baseline":
		return Baseline, cfg, nil
	case name == "morecore":
		c := cfg
		c.GPU.NumSMs += c.NumHMCs
		return Mode{Name: "Baseline_MoreCore"}, c, nil
	case name == "naive":
		return NaiveNDP, cfg, nil
	case name == "dyn":
		return DynNDP, cfg, nil
	case name == "dyncache":
		return DynCache, cfg, nil
	case strings.HasPrefix(name, "static="):
		p, err := strconv.ParseFloat(strings.TrimPrefix(name, "static="), 64)
		if err != nil || p < 0 || p > 1 {
			return Mode{}, cfg, fmt.Errorf("bad static ratio %q: want static=<p> with p in [0,1]", name)
		}
		return StaticNDP(p), cfg, nil
	default:
		return Mode{}, cfg, fmt.Errorf("unknown mode %q (valid: %s)", name, ModeUsage)
	}
}

// SpecFor maps a Mode back to a CLI spelling ParseMode accepts, keyed purely
// by the mode's mechanism flags — the inverse ndpserve clients use to ship a
// locally-constructed Mode over the wire. Display names are not round-tripped
// ("Baseline_MoreCore" maps to "baseline": its SM-count adjustment lives in
// the Config the request carries, and re-spelling it "morecore" would apply
// the adjustment a second time server-side).
func SpecFor(m Mode) string {
	switch {
	case !m.NDP:
		return "baseline"
	case m.Always:
		return "naive"
	case m.Dynamic && m.Cache:
		return "dyncache"
	case m.Dynamic:
		return "dyn"
	default:
		return fmt.Sprintf("static=%g", m.Static)
	}
}
