package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ndpgpu/internal/stats"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is admission backpressure: the bounded queue is at
	// capacity (429 + Retry-After).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrShuttingDown rejects new work during drain (503).
	ErrShuttingDown = errors.New("serve: shutting down")
)

// Progress is one streaming progress event, fed by the epoch-sampled metrics
// layer: the simulation has advanced to the given SM cycle / simulated time.
type Progress struct {
	Cycles int64 `json:"cycles"`
	TimePS int64 `json:"time_ps"`
}

// Outcome is one completed simulation, in the golden-digest format: the
// flattened counter digest (stats.Digest plus TimePS and EnergyTotalPJ) is
// the memoized value, the full statistics bundle rides along for clients
// that rebuild Run structs (ndpsweep -server).
type Outcome struct {
	Digest   map[string]float64 `json:"digest"`
	Stats    *stats.Stats       `json:"stats,omitempty"`
	TimePS   int64              `json:"time_ps"`
	EnergyPJ float64            `json:"energy_pj"`
	Wall     time.Duration      `json:"wall_ns"` // simulation wall time (cold)
}

// Runner executes one canonical request. progress must be safe to call from
// the simulation goroutine and cheap (the scheduler fans events out to
// subscribers without blocking). rc carries the watchdog's cooperative
// cancellation: a runner should register its stop hook (rc.OnCancel) and, if
// it can block outside the simulation, select on rc.Done(). Implementations
// must be deterministic in the request: the scheduler memoizes the first
// Outcome per key forever.
type Runner func(rc *RunCtx, req *Request, progress func(Progress)) (*Outcome, error)

// Options configures a Scheduler.
type Options struct {
	// Workers bounds concurrent simulations (default: GOMAXPROCS).
	Workers int
	// QueueCap bounds admitted-but-not-yet-running unique requests; beyond
	// it Submit fails with ErrQueueFull (default 256).
	QueueCap int
	// Runner executes requests (required).
	Runner Runner
	// RetryAfter is the backpressure hint reported alongside ErrQueueFull
	// (default 1s).
	RetryAfter time.Duration

	// RunTimeout bounds one execution's wall time; past it the run is
	// cooperatively canceled and fails with ErrRunTimeout (0 = unlimited).
	RunTimeout time.Duration
	// StallTimeout cancels a run that emits no progress event for this long
	// (ErrRunStalled); it catches wedged engines long before RunTimeout.
	// Only meaningful with a Runner that reports progress (0 = off).
	StallTimeout time.Duration
	// PoisonK quarantines a key after this many poisonous failures — panics
	// or watchdog kills; ordinary errors don't count (default 3).
	PoisonK int
	// PoisonTTL is how long a quarantined key is refused before one probe is
	// re-admitted, half-open (default 10m).
	PoisonTTL time.Duration
	// Journal, when non-nil, makes every memoized outcome durable: Submit
	// acknowledges a run only after its record is fsynced. Open it with
	// OpenJournal, call Replay, and seed the recovered map via Restore.
	Journal *Journal
}

// Counters is a snapshot of the scheduler's accounting.
type Counters struct {
	Submitted int64 `json:"submitted"`  // Submit calls, including rejected
	CacheHits int64 `json:"cache_hits"` // served by map lookup
	Coalesced int64 `json:"coalesced"`  // attached to an in-flight execution
	Executed  int64 `json:"executed"`   // simulations actually run
	Errors    int64 `json:"errors"`     // executions that failed
	Rejected  int64 `json:"rejected"`   // ErrQueueFull + ErrShuttingDown

	Panics         int64 `json:"panics"`          // runner panics converted to errors
	WatchdogKills  int64 `json:"watchdog_kills"`  // runs canceled by deadline or stall
	QuarantineHits int64 `json:"quarantine_hits"` // submissions refused by an open breaker
	Recovered      int64 `json:"recovered"`       // cache entries restored from the journal
	JournalErrors  int64 `json:"journal_errors"`  // appends that failed (result still served)

	Queued      int `json:"queued"`     // admitted, waiting for a worker
	Running     int `json:"running"`    // executing right now
	InFlight    int `json:"in_flight"`  // submissions blocked on a result
	MaxQueued   int `json:"max_queued"` // high-water marks
	MaxRunning  int `json:"max_running"`
	MaxInFlight int `json:"max_in_flight"`

	CacheEntries int `json:"cache_entries"`
	Clients      int `json:"clients"`     // clients currently holding queued work
	Quarantined  int `json:"quarantined"` // keys with an open breaker right now
}

// entry is one admitted unique request: the single execution every duplicate
// submission coalesces onto.
type entry struct {
	req  *Request
	done chan struct{} // closed after out/err are set
	out  *Outcome
	err  error
	subs []chan<- Progress
}

// Scheduler is the batched, digest-memoized run scheduler: a bounded worker
// pool fed round-robin across clients, a coalescing in-flight table, and a
// forever cache keyed by request digest. A repeated request costs a map
// lookup; a concurrent duplicate costs a channel wait.
type Scheduler struct {
	opts Options
	pool *Pool
	quar *quarantine

	mu        sync.Mutex
	cache     map[string]*Outcome
	inflight  map[string]*entry
	perClient map[string][]*entry // FIFO per client; key present iff in ring
	ring      []string            // round-robin order over clients with work
	ringPos   int
	closed    bool
	c         Counters
}

// New starts a scheduler. Call Shutdown to drain it.
func New(o Options) *Scheduler {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Runner == nil {
		panic("serve: Options.Runner is required")
	}
	if o.PoisonK <= 0 {
		o.PoisonK = 3
	}
	if o.PoisonTTL <= 0 {
		o.PoisonTTL = 10 * time.Minute
	}
	return &Scheduler{
		opts:      o,
		pool:      NewPool(o.Workers),
		quar:      newQuarantine(o.PoisonK, o.PoisonTTL),
		cache:     make(map[string]*Outcome),
		inflight:  make(map[string]*entry),
		perClient: make(map[string][]*entry),
	}
}

// Restore seeds the memoization cache with journal-recovered outcomes
// (first writer wins; existing entries are kept) and returns how many were
// installed. Call it once at startup, between Replay and readiness.
func (s *Scheduler) Restore(outcomes map[string]*Outcome) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for key, out := range outcomes {
		if _, ok := s.cache[key]; !ok && out != nil {
			s.cache[key] = out
			n++
		}
	}
	s.c.Recovered += int64(n)
	return n
}

// RetryAfter returns the backpressure hint for 429 responses.
func (s *Scheduler) RetryAfter() time.Duration { return s.opts.RetryAfter }

// Served is the result of one submission plus how it was produced.
type Served struct {
	Outcome   *Outcome
	Cached    bool // map lookup; no simulation ran for this submission
	Coalesced bool // shared an execution that was already in flight
}

// Submit runs (or recalls) one canonical request, blocking until the result
// is available or ctx is canceled. A canceled waiter abandons only the wait:
// the admitted execution still completes and populates the cache.
func (s *Scheduler) Submit(ctx context.Context, req *Request) (Served, error) {
	return s.submit(ctx, req, nil)
}

// SubmitStream is Submit with a progress subscription: epoch samples from
// the running simulation are sent to events (non-blocking; a slow consumer
// misses samples rather than stalling the machine). events is never closed
// by the scheduler. A cache hit produces no events.
func (s *Scheduler) SubmitStream(ctx context.Context, req *Request, events chan<- Progress) (Served, error) {
	return s.submit(ctx, req, events)
}

func (s *Scheduler) submit(ctx context.Context, req *Request, events chan<- Progress) (Served, error) {
	s.mu.Lock()
	s.c.Submitted++
	if s.closed {
		s.c.Rejected++
		s.mu.Unlock()
		return Served{}, ErrShuttingDown
	}
	if out, ok := s.cache[req.Key]; ok {
		s.c.CacheHits++
		s.mu.Unlock()
		return Served{Outcome: out, Cached: true}, nil
	}
	if qerr := s.quar.check(req.Key); qerr != nil {
		// Circuit open: serve the cached failure without touching a worker.
		s.c.QuarantineHits++
		s.mu.Unlock()
		return Served{}, qerr
	}
	if e, ok := s.inflight[req.Key]; ok {
		s.c.Coalesced++
		if events != nil {
			e.subs = append(e.subs, events)
		}
		s.incInFlight()
		s.mu.Unlock()
		return s.await(ctx, e, true)
	}
	if s.c.Queued >= s.opts.QueueCap {
		s.c.Rejected++
		s.mu.Unlock()
		return Served{}, ErrQueueFull
	}
	e := &entry{req: req, done: make(chan struct{})}
	if events != nil {
		e.subs = append(e.subs, events)
	}
	s.inflight[req.Key] = e
	client := req.Client
	if client == "" {
		client = "anon"
	}
	if _, ok := s.perClient[client]; !ok {
		s.ring = append(s.ring, client)
	}
	s.perClient[client] = append(s.perClient[client], e)
	s.c.Queued++
	if s.c.Queued > s.c.MaxQueued {
		s.c.MaxQueued = s.c.Queued
	}
	s.incInFlight()
	s.mu.Unlock()

	if !s.pool.Go(s.runNext) {
		// Lost the race with Shutdown: the pool no longer accepts work.
		// Roll the entry back so no acknowledged request is silently dropped.
		s.mu.Lock()
		s.retract(client, e)
		s.c.Rejected++
		s.c.InFlight--
		s.mu.Unlock()
		return Served{}, ErrShuttingDown
	}
	return s.await(ctx, e, false)
}

// incInFlight must run under mu.
func (s *Scheduler) incInFlight() {
	s.c.InFlight++
	if s.c.InFlight > s.c.MaxInFlight {
		s.c.MaxInFlight = s.c.InFlight
	}
}

// retract removes a just-admitted entry (Shutdown race); must run under mu.
func (s *Scheduler) retract(client string, e *entry) {
	delete(s.inflight, e.req.Key)
	q := s.perClient[client]
	for i, qe := range q {
		if qe == e {
			s.perClient[client] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(s.perClient[client]) == 0 {
		delete(s.perClient, client)
		for i, name := range s.ring {
			if name == client {
				s.ring = append(s.ring[:i], s.ring[i+1:]...)
				if s.ringPos > i {
					s.ringPos--
				}
				break
			}
		}
	}
	s.c.Queued--
}

func (s *Scheduler) await(ctx context.Context, e *entry, coalesced bool) (Served, error) {
	defer func() {
		s.mu.Lock()
		s.c.InFlight--
		s.mu.Unlock()
	}()
	select {
	case <-e.done:
		if e.err != nil {
			return Served{}, e.err
		}
		return Served{Outcome: e.out, Coalesced: coalesced}, nil
	case <-ctx.Done():
		return Served{}, ctx.Err()
	}
}

// runNext is the pool task: pick the next entry fairly and execute it. One
// task is enqueued per admitted entry, so popFair never comes up empty.
func (s *Scheduler) runNext() {
	s.mu.Lock()
	e := s.popFair()
	if e == nil {
		s.mu.Unlock()
		return
	}
	s.c.Queued--
	s.c.Running++
	if s.c.Running > s.c.MaxRunning {
		s.c.MaxRunning = s.c.Running
	}
	s.mu.Unlock()

	out, err := s.execute(e)

	if err == nil && s.opts.Journal != nil {
		// Durability before acknowledgment: the first waiter unblocks only
		// after the record is fsynced (group-committed under load). A failed
		// append is counted but still served — availability over durability
		// for the result already in hand.
		if jerr := s.opts.Journal.Append(e.req.Key, out); jerr != nil {
			s.mu.Lock()
			s.c.JournalErrors++
			s.mu.Unlock()
		}
	}
	if err == nil {
		s.quar.clear(e.req.Key)
	} else if poisonous(err) {
		s.quar.record(e.req.Key, err)
	}

	s.mu.Lock()
	s.c.Running--
	if err != nil {
		// Errors are returned to every waiter but not memoized: a transient
		// failure (or a fixed workload) should be retriable.
		e.err = err
		s.c.Errors++
		var pe *PanicError
		if errors.As(err, &pe) {
			s.c.Panics++
		}
		if errors.Is(err, ErrRunTimeout) || errors.Is(err, ErrRunStalled) {
			s.c.WatchdogKills++
		}
	} else {
		s.cache[e.req.Key] = out
		s.c.Executed++
		e.out = out
	}
	delete(s.inflight, e.req.Key)
	s.mu.Unlock()
	close(e.done)
}

// execute runs one entry under the crash-safety envelope: a recover that
// converts a runner panic into a structured *PanicError, and a watchdog that
// cooperatively cancels the run past its deadline or stall window. The
// worker goroutine survives either way.
func (s *Scheduler) execute(e *entry) (out *Outcome, err error) {
	rc := newRunCtx()
	wd := runWatchdog(rc, s.opts.RunTimeout, s.opts.StallTimeout)
	defer wd.halt()
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
			return
		}
		// A canceled run that still returned an error is attributed to the
		// watchdog (the runner typically surfaces the underlying engine
		// cancellation); a run that beat the verdict with a result keeps it.
		if cause := rc.Err(); cause != nil && err != nil {
			err = fmt.Errorf("%w (runner: %v)", cause, err)
			out = nil
		}
	}()
	return s.opts.Runner(rc, e.req, func(p Progress) {
		wd.touch()
		s.publish(e, p)
	})
}

// popFair removes and returns the next entry round-robin across clients;
// must run under mu. The invariant throughout: a client has a perClient
// queue iff it appears in ring exactly once.
func (s *Scheduler) popFair() *entry {
	for len(s.ring) > 0 {
		if s.ringPos >= len(s.ring) {
			s.ringPos = 0
		}
		name := s.ring[s.ringPos]
		q := s.perClient[name]
		e := q[0]
		q[0] = nil
		if len(q) == 1 {
			delete(s.perClient, name)
			s.ring = append(s.ring[:s.ringPos], s.ring[s.ringPos+1:]...)
		} else {
			s.perClient[name] = q[1:]
			s.ringPos++
		}
		return e
	}
	return nil
}

// publish fans one progress event out to the entry's subscribers,
// non-blocking: a full subscriber channel drops the sample (progress is a
// UI hint, not a record).
func (s *Scheduler) publish(e *entry, p Progress) {
	s.mu.Lock()
	subs := make([]chan<- Progress, len(e.subs))
	copy(subs, e.subs)
	s.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- p:
		default:
		}
	}
}

// Snapshot returns current counters.
func (s *Scheduler) Snapshot() Counters {
	s.mu.Lock()
	c := s.c
	c.CacheEntries = len(s.cache)
	c.Clients = len(s.perClient)
	s.mu.Unlock()
	c.Quarantined, _, _ = s.quar.counts()
	return c
}

// QuarantineSnapshot lists every suspect and quarantined key for /status.
func (s *Scheduler) QuarantineSnapshot() []QuarantineEntry { return s.quar.snapshot() }

// JournalStats returns the journal's accounting, or nil when the scheduler
// runs without durability.
func (s *Scheduler) JournalStats() *JournalStats {
	if s.opts.Journal == nil {
		return nil
	}
	st := s.opts.Journal.Stats()
	return &st
}

// CachedKeys reports how many distinct results are memoized.
func (s *Scheduler) CachedKeys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Shutdown stops admission and drains: every acknowledged request — queued
// or running — completes and its waiters are notified before Shutdown
// returns. Safe to call more than once.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.pool.Close() // idempotent; every caller waits for the drain
}
