package ndpgpu

// One benchmark per table and figure of the paper's evaluation. Each runs
// the corresponding experiment once per iteration (they are macro-benchmarks
// over full simulations; expect seconds to minutes each) and reports
// simulated time and headline speedups as custom metrics.
//
//	go test -bench=. -benchmem
//
// See EXPERIMENTS.md for recorded outputs.

import (
	"io"
	"runtime"
	"sync"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/experiments"
	"ndpgpu/internal/sim"
)

// The Figure 9 sweep (90 full simulations) backs four figures; run it once
// and share the result across those benchmarks.
var (
	fig9Once sync.Once
	fig9Res  experiments.Fig9Result
	fig9Err  error
)

func BenchmarkTable1OffloadAnalysis(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(io.Discard, cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Config(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard, cfg)
	}
}

func BenchmarkFigure5TargetSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(io.Discard)
		// Invariant the paper reports: the first-HMC policy stays within
		// ~15% of the oracle at every block size.
		for _, p := range res.Points {
			if p.Ratio > 1.16 {
				b.Fatalf("first-HMC policy exceeded the 15%% bound: %.3f at n=%d", p.Ratio, p.N)
			}
		}
	}
}

func BenchmarkFigure7NaiveNDP(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		f7, err := experiments.Figure7(io.Discard, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		base := f7.Rows["STN"]["Baseline"]
		naive := f7.Rows["STN"]["NaiveNDP"]
		b.ReportMetric(naive.Speedup(base), "STN-naive-speedup")
	}
}

func BenchmarkFigure8StallBreakdown(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		f7, err := experiments.Figure7(io.Discard, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Figure8(io.Discard, f7)
	}
}

func benchFig9(b *testing.B) experiments.Fig9Result {
	b.Helper()
	fig9Once.Do(func() {
		fig9Res, fig9Err = experiments.Figure9(io.Discard, config.Default(), 1)
	})
	if fig9Err != nil {
		b.Fatal(fig9Err)
	}
	return fig9Res
}

func BenchmarkFigure9OffloadRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f9 := benchFig9(b)
		base := f9.Rows["KMN"]["Baseline"]
		dyn := f9.Rows["KMN"]["NDP(Dyn)"]
		b.ReportMetric(dyn.Speedup(base), "KMN-dyn-speedup")
	}
}

func BenchmarkFigure10Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f9 := benchFig9(b)
		experiments.Figure10(io.Discard, f9)
	}
}

func BenchmarkFigure11NSUUtilization(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		f9 := benchFig9(b)
		experiments.Figure11(io.Discard, f9, cfg)
	}
}

func BenchmarkInvalOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f9 := benchFig9(b)
		experiments.InvalOverhead(io.Discard, f9)
	}
}

func BenchmarkMoreCompute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.MoreCompute(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNSUFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.NSUFreq(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHardwareOverhead(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		experiments.Overhead(io.Discard, cfg)
	}
}

// BenchmarkSingleRunVADD measures one full simulation of the smallest
// workload under dynamic NDP — the unit of cost behind the figure benches.
func BenchmarkSingleRunVADD(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		r := experiments.RunOne(cfg, "VADD", sim.DynCache, 1)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(float64(r.TimePS)/1e6, "simulated-us")
	}
}

// BenchmarkSingleRunVADDParallel is BenchmarkSingleRunVADD with the
// deterministic sharded executor enabled, one shard worker per available
// CPU. Compare against the serial bench at GOMAXPROCS 1/2/4/8 to measure
// intra-run scaling (`make bench-scaling`); results are bit-identical to
// serial by construction, so only wall time moves.
func BenchmarkSingleRunVADDParallel(b *testing.B) {
	cfg := config.Default()
	cfg.Parallel = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		r := experiments.RunOne(cfg, "VADD", sim.DynCache, 1)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		b.ReportMetric(float64(r.TimePS)/1e6, "simulated-us")
	}
}

func BenchmarkROCacheAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.ROCacheAblation(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.TopologyAblation(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}
