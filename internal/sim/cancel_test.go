package sim

import (
	"errors"
	"testing"

	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

func launchVADD(t *testing.T) *Machine {
	t.Helper()
	cfg := AuditConfig()
	mem := vm.New(cfg)
	w, err := workloads.Build("VADD", mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Launch(cfg, w.Kernel, mem, DynNDP)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMachineCancelBeforeRun: a machine canceled before Run stops at its
// first step boundary with ErrCanceled instead of simulating to quiescence.
func TestMachineCancelBeforeRun(t *testing.T) {
	m := launchVADD(t)
	m.Cancel()
	res, err := m.Run(0)
	if err == nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
	if res == nil || !res.TimedOut {
		t.Fatal("canceled run must report TimedOut in its partial result")
	}
}

// TestMachineCancelMidRun cancels from the first epoch sample — mid-flight,
// the way the serve watchdog does through the metrics hook — and requires the
// run to stop early rather than quiesce.
func TestMachineCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	full := launchVADD(t)
	res, err := full.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	fullPS := res.TimePS

	m := launchVADD(t)
	mc := m.EnableMetrics(0)
	mc.SetSampleHook(func(now timing.PS, cycles int64) { m.Cancel() })
	res, err = m.Run(0)
	if err == nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-run cancel returned %v, want ErrCanceled", err)
	}
	if res.TimePS >= fullPS {
		t.Fatalf("canceled at %d ps, full run takes %d ps: cancel did not stop early", res.TimePS, fullPS)
	}
}
