package sim

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// runWorkload builds and runs one workload in one mode, verifying the
// functional output against the host reference.
func runWorkload(t *testing.T, cfg config.Config, abbr string, mode Mode) *Result {
	t.Helper()
	mem := vm.New(cfg)
	w, err := workloads.Build(abbr, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Launch(cfg, w.Kernel, mem, mode)
	if err != nil {
		t.Fatalf("%s/%s: Launch: %v", abbr, mode.Name, err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatalf("%s/%s: Run: %v", abbr, mode.Name, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s/%s: verification failed: %v", abbr, mode.Name, err)
	}
	res.Mode = mode.Name
	return res
}

// TestSuiteFunctionalBaseline verifies every workload's output in baseline
// mode on a reduced machine.
func TestSuiteFunctionalBaseline(t *testing.T) {
	cfg := smallConfig()
	for _, abbr := range workloads.Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			res := runWorkload(t, cfg, abbr, Baseline)
			if res.Stats.IssuedInstrs == 0 {
				t.Fatal("no instructions issued")
			}
		})
	}
}

// TestSuiteFunctionalNaiveNDP verifies every workload under full offload —
// the strongest functional stress of the partitioned-execution protocol.
func TestSuiteFunctionalNaiveNDP(t *testing.T) {
	cfg := smallConfig()
	for _, abbr := range workloads.Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			res := runWorkload(t, cfg, abbr, NaiveNDP)
			if res.Stats.OffloadBlocksOffloaded == 0 {
				t.Fatal("nothing offloaded under naive NDP")
			}
		})
	}
}

// TestSuiteFunctionalDynCache verifies the full mechanism (dynamic ratio +
// cache-aware filtering) end to end.
func TestSuiteFunctionalDynCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	cfg := smallConfig()
	for _, abbr := range workloads.Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			runWorkload(t, cfg, abbr, DynCache)
		})
	}
}

// TestOffloadBlockShapes spot-checks the static analysis against Table 1's
// qualitative structure.
func TestOffloadBlockShapes(t *testing.T) {
	cfg := smallConfig()
	mem := vm.New(cfg)
	w, err := workloads.Build("VADD", mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := BuildProgram(w.Kernel, NaiveNDP)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Blocks) != 1 || prog.Blocks[0].NSUInstrs() != 4 {
		t.Fatalf("VADD blocks: %+v (Table 1: one block of 4)", prog.Blocks)
	}
}
