package timing

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsAllItems checks completeness under contention: every index is
// executed exactly once, across many batch sizes.
func TestPoolRunsAllItems(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 16, 100} {
		hits := make([]int32, n)
		p.Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: item %d ran %d times, want 1", n, i, h)
			}
		}
	}
}

// TestPoolSerialFallback checks that a nil pool and a single-worker pool run
// items inline, in order, with no goroutines involved.
func TestPoolSerialFallback(t *testing.T) {
	for _, p := range []*Pool{nil, NewPool(1)} {
		var order []int
		p.Run(5, func(i int) { order = append(order, i) })
		for i, v := range order {
			if v != i {
				t.Fatalf("serial fallback ran out of order: %v", order)
			}
		}
		if len(order) != 5 {
			t.Fatalf("serial fallback ran %d items, want 5", len(order))
		}
	}
}

// TestPoolClaimsInOrder checks the prefix property the Sequencer relies on:
// the set of started items is always a prefix of 0..n-1. Each item records
// the highest index started before it; if item i starts while some j < i has
// not started, the claim counter would have had to skip j — impossible with
// a shared atomic counter, but the test guards the invariant against future
// rewrites (e.g. per-worker deques).
func TestPoolClaimsInOrder(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 200
	var started atomic.Int64
	p.Run(n, func(i int) {
		// The claim of index i happens before f(i); the counter value is
		// the number of claims made, so every j < i was claimed already.
		s := started.Add(1)
		if s < int64(i+1) {
			t.Errorf("item %d started with only %d claims made", i, s)
		}
	})
}

// TestSequencerOrders checks that Do(k) observes every lower shard finished,
// and that sequenced bodies are mutually serialized.
func TestSequencerOrders(t *testing.T) {
	const n = 16
	p := NewPool(8)
	defer p.Close()
	s := NewSequencer(n)
	for trial := 0; trial < 50; trial++ {
		s.Begin(n)
		finished := make([]atomic.Bool, n)
		var inBody atomic.Int32
		var order []int
		p.Run(n, func(k int) {
			s.Do(k, func() {
				if c := inBody.Add(1); c != 1 {
					t.Errorf("sequenced bodies overlapped (%d concurrent)", c)
				}
				for j := 0; j < k; j++ {
					if !finished[j].Load() {
						t.Errorf("Do(%d) ran before shard %d finished", k, j)
					}
				}
				order = append(order, k)
				inBody.Add(-1)
			})
			finished[k].Store(true)
			s.Finish(k)
		})
		for i, v := range order {
			if v != i {
				t.Fatalf("trial %d: sequenced ops ran out of order: %v", trial, order)
			}
		}
	}
}

// TestPreStepHooks checks that engine pre-step hooks fire once per step with
// the step's timestamp, before any domain ticks, in both skip and dense mode.
func TestPreStepHooks(t *testing.T) {
	for _, skip := range []bool{true, false} {
		e := NewEngine()
		e.SetIdleSkip(skip)
		d := e.AddDomain("d", 10)
		var hookTimes, tickTimes []PS
		e.AddPreStep(func(now PS) { hookTimes = append(hookTimes, now) })
		d.Attach(TickFunc(func(now PS) { tickTimes = append(tickTimes, now) }))
		for i := 0; i < 3; i++ {
			e.Step()
		}
		if len(hookTimes) != 3 || len(tickTimes) != 3 {
			t.Fatalf("skip=%v: %d hook calls, %d ticks, want 3 each", skip, len(hookTimes), len(tickTimes))
		}
		for i := range hookTimes {
			if hookTimes[i] != tickTimes[i] {
				t.Fatalf("skip=%v: hook at t=%d, tick at t=%d", skip, hookTimes[i], tickTimes[i])
			}
		}
	}
}

// countShard is a Shard that increments a private counter during Tick and
// publishes it to a shared log at Commit.
type countShard struct {
	id      int
	ticks   int
	pending []int
	log     *[]int
	mu      *sync.Mutex // guards nothing in commit (serial); used only to appease vet in compute
	wake    PS
}

func (c *countShard) Tick(now PS) {
	c.ticks++
	c.pending = append(c.pending, c.id)
}

func (c *countShard) Commit(now PS) {
	*c.log = append(*c.log, c.pending...)
	c.pending = c.pending[:0]
}

func (c *countShard) NextWorkAt(now PS) PS {
	if c.wake == 0 {
		return now
	}
	return c.wake
}

// TestShardedCommitOrder checks that Sharded ticks all shards and commits
// their outboxes in index order regardless of compute interleaving.
func TestShardedCommitOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var log []int
	var mu sync.Mutex
	shards := make([]Shard, 8)
	css := make([]*countShard, 8)
	for i := range shards {
		cs := &countShard{id: i, log: &log, mu: &mu}
		css[i] = cs
		shards[i] = cs
	}
	sh := NewSharded(p, shards...)
	for tick := 0; tick < 20; tick++ {
		sh.Tick(PS(tick))
	}
	if len(log) != 8*20 {
		t.Fatalf("log has %d entries, want %d", len(log), 8*20)
	}
	for i, v := range log {
		if v != i%8 {
			t.Fatalf("commit order broken at %d: got shard %d, want %d", i, v, i%8)
		}
	}
	for i, cs := range css {
		if cs.ticks != 20 {
			t.Fatalf("shard %d ticked %d times, want 20", i, cs.ticks)
		}
	}
}

// TestShardedIdleHint checks that the group's hint is the min over shards.
func TestShardedIdleHint(t *testing.T) {
	var log []int
	a := &countShard{id: 0, log: &log, wake: 100}
	b := &countShard{id: 1, log: &log, wake: 40}
	sh := NewSharded(nil, a, b)
	if got := sh.NextWorkAt(10); got != 40 {
		t.Fatalf("NextWorkAt = %d, want 40 (min over shards)", got)
	}
}
