package analyzer

import (
	"math/rand"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/interp"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

// randomProgram generates a random (possibly offload-hostile) kernel mixing
// ALU chains, loads, stores, constant loads, predication, scratchpad, and a
// uniform loop.
func randomProgram(rng *rand.Rand) *kernel.Kernel {
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)   // input base
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16) // output base
	kb.OpImm(isa.ANDI, 19, kernel.RegGTID, 1)   // predicate

	live := []isa.Reg{16, 17}
	next := isa.Reg(24)
	var loop *kernel.Label
	loopOpen := false
	if rng.Intn(2) == 0 {
		kb.MovI(20, int64(2+rng.Intn(3)))
		loop = kb.NewLabel()
		kb.Bind(loop)
		loopOpen = true
	}

	steps := 3 + rng.Intn(12)
	for s := 0; s < steps && next < 58; s++ {
		switch rng.Intn(8) {
		case 0, 1:
			kb.Ld(next, 17, int64(4*rng.Intn(4)))
			live = append(live, next)
			next++
		case 2:
			pc := kb.Ld(next, 17, 0)
			kb.Predicate(pc, 19, rng.Intn(2) == 0)
			live = append(live, next)
			next++
		case 3:
			kb.Ldc(next, kernel.RegParam0, int64(4*rng.Intn(4)))
			live = append(live, next)
			next++
		case 4, 5:
			a := live[rng.Intn(len(live))]
			b := live[rng.Intn(len(live))]
			ops := []isa.Opcode{isa.FADD, isa.FMUL, isa.ADD, isa.XOR, isa.MIN}
			kb.Op3(ops[rng.Intn(len(ops))], next, a, b)
			live = append(live, next)
			next++
		case 6:
			v := live[rng.Intn(len(live))]
			kb.St(18, int64(4*rng.Intn(4)), v)
		case 7:
			// Indirect address: load an index, use it as an address.
			kb.Ld(next, 17, 0)
			kb.OpImm(isa.ANDI, next+1, next, 0xFF)
			kb.OpImm(isa.SHLI, next+1, next+1, 2)
			kb.Op3(isa.ADD, next+1, kernel.RegParam0, next+1)
			kb.Ld(next+2, next+1, 0)
			live = append(live, next+2)
			next += 3
		}
	}
	kb.St(18, 0, live[len(live)-1])
	if loopOpen {
		kb.OpImm(isa.ADDI, 20, 20, -1)
		kb.MovI(21, 0)
		kb.Setp(isa.CmpGT, 22, 20, 21)
		kb.Brp(22, loop)
	}
	kb.Exit()
	return kb.MustBuild("fuzz", 2, 64, 0x10000, 0x20000)
}

// TestAnalyzerFuzzInvariants checks structural invariants of the analysis
// over many random programs:
//
//  1. the rewritten kernel validates and its brackets nest properly;
//  2. offload blocks contain only ALU/const/memory instructions;
//  3. no GPU-side (addr-calc) instruction reads a register produced by an
//     in-region load;
//  4. NSU code contains no control flow, scratchpad, or address-calc ops;
//  5. register-transfer lists are duplicate-free.
func TestAnalyzerFuzzInvariants(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		k := randomProgram(rng)
		prog, err := Analyze(k, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, k.Disassemble())
		}
		code := prog.Kernel.Code

		depth := 0
		for pc, in := range code {
			switch in.Op {
			case isa.OFLDBEG:
				depth++
				if depth != 1 {
					t.Fatalf("trial %d: nested OFLDBEG at pc %d", trial, pc)
				}
			case isa.OFLDEND:
				depth--
				if depth != 0 {
					t.Fatalf("trial %d: unmatched OFLDEND at pc %d", trial, pc)
				}
			case isa.BRA, isa.BRP, isa.BAR, isa.EXIT, isa.LDS, isa.STS:
				if depth != 0 {
					t.Fatalf("trial %d: %v inside offload block at pc %d", trial, in.Op, pc)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("trial %d: unbalanced brackets", trial)
		}

		for _, b := range prog.Blocks {
			loadDst := map[isa.Reg]bool{}
			if reenterable(code, b.BegPC, b.EndPC) {
				for _, in := range code[b.BegPC+1 : b.EndPC] {
					if in.Op == isa.LD {
						loadDst[in.Dst] = true
					}
				}
			}
			for _, in := range code[b.BegPC+1 : b.EndPC] {
				if in.AddrCalc {
					for s := 0; s < in.Op.SrcCount(); s++ {
						if loadDst[in.Src[s]] {
							t.Fatalf("trial %d block %d: GPU-side %v reads load data r%d",
								trial, b.ID, in, in.Src[s])
						}
					}
				}
				if in.Op == isa.LD {
					loadDst[in.Dst] = true
				} else if in.Op.WritesDst() {
					delete(loadDst, in.Dst)
				}
			}
			for _, in := range b.NSUCode {
				switch in.Op.Class() {
				case isa.ClassCtrl, isa.ClassSmem:
					t.Fatalf("trial %d block %d: %v in NSU code", trial, b.ID, in.Op)
				}
			}
			seen := map[isa.Reg]bool{}
			for _, r := range b.RegsIn {
				if seen[r] {
					t.Fatalf("trial %d block %d: duplicate RegsIn %d", trial, b.ID, r)
				}
				seen[r] = true
			}
			seen = map[isa.Reg]bool{}
			for _, r := range b.RegsOut {
				if seen[r] {
					t.Fatalf("trial %d block %d: duplicate RegsOut %d", trial, b.ID, r)
				}
				seen[r] = true
			}
		}
	}
}

// reenterable reports whether a backward branch can re-enter [beg, end].
func reenterable(code []isa.Instr, beg, end int) bool {
	for pc, in := range code {
		if (in.Op == isa.BRA || in.Op == isa.BRP) && pc >= end && int(in.Imm) <= beg {
			return true
		}
	}
	return false
}

// TestRewritePreservesSemantics runs random programs through the reference
// interpreter before and after the offload rewrite: inserting brackets,
// remapping branches, and annotating instructions must never change what
// the kernel computes (the interpreter executes @NSU instructions in place
// and treats the brackets as no-ops).
func TestRewritePreservesSemantics(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		k := randomProgram(rng)

		runOnce := func(kk *kernel.Kernel) []uint32 {
			mem := vm.New(config.Default())
			in := mem.Alloc(1 << 12)
			out := mem.Alloc(1 << 12)
			dataRng := rand.New(rand.NewSource(int64(trial)))
			for off := uint64(0); off < 1<<12; off += 4 {
				mem.Write32(in+off, dataRng.Uint32())
				mem.Write32(out+off, 0)
			}
			run := *kk
			run.Params = []uint64{in, out}
			if err := interp.Run(&run, mem); err != nil {
				t.Fatalf("trial %d: interp: %v\n%s", trial, err, kk.Disassemble())
			}
			words := make([]uint32, 1<<10)
			for i := range words {
				words[i] = mem.Read32(out + uint64(4*i))
			}
			return words
		}

		before := runOnce(k)
		prog, err := Analyze(k, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		after := runOnce(prog.Kernel)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("trial %d: rewrite changed output word %d: %#x -> %#x\nbefore:\n%s\nafter:\n%s",
					trial, i, before[i], after[i], k.Disassemble(), prog.Kernel.Disassemble())
			}
		}
	}
}
