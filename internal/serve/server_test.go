package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer stands up the full HTTP stack over a stub simulator.
func newTestServer(t *testing.T, stub *stubSim, opts Options) (*httptest.Server, *Scheduler) {
	t.Helper()
	opts.Runner = stub.runner()
	sched := New(opts)
	ts := httptest.NewServer(NewServer(sched))
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown()
	})
	return ts, sched
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, *RunResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decoding /run response: %v", err)
	}
	return resp, &rr
}

func TestServeRunRoundTrip(t *testing.T) {
	stub := newStubSim(5 * time.Millisecond)
	ts, _ := newTestServer(t, stub, Options{Workers: 2, QueueCap: 16})

	resp, rr := postRun(t, ts, `{"workload":"VADD","mode":"dyn","seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rr.Cached || rr.Workload != "VADD" || rr.Mode != "dyn" || rr.Scale != 1 {
		t.Fatalf("bad response: %+v", rr)
	}
	if rr.TimePS != 42 || rr.Digest["TimePS"] != 42 {
		t.Fatalf("stub outcome not round-tripped: %+v", rr)
	}
	if len(rr.Key) != 64 {
		t.Fatalf("key %q", rr.Key)
	}

	_, again := postRun(t, ts, `{"workload":"VADD","mode":"dyn","seed":3}`)
	if !again.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if again.Key != rr.Key {
		t.Fatal("repeat request got a different key")
	}
	if got := stub.execCount(rr.Key); got != 1 {
		t.Fatalf("executed %d times, want 1", got)
	}
}

func TestServeErrorStatuses(t *testing.T) {
	stub := newStubSim(0)
	ts, _ := newTestServer(t, stub, Options{Workers: 1, QueueCap: 4})

	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"get not allowed", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"malformed json", http.MethodPost, `{"workload":`, http.StatusBadRequest},
		{"unknown workload", http.MethodPost, `{"workload":"NOPE"}`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"workload":"VADD","bogus":1}`, http.StatusBadRequest},
		{"oversize body", http.MethodPost, `{"workload":"VADD","faults":"` +
			strings.Repeat("x", maxBodyBytes) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+"/run", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if resp.StatusCode != http.StatusOK {
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Errorf("%s: error response carries no JSON envelope (%v)", tc.name, err)
			}
		}
		resp.Body.Close()
	}
}

func TestServeBackpressure429(t *testing.T) {
	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	ts, sched := newTestServer(t, stub, Options{
		Workers: 1, QueueCap: 1, RetryAfter: 3 * time.Second})

	// Fill the system: one running, one queued — sequenced so each
	// admission's queue check is deterministic.
	results := make(chan int, 2)
	post := func(seed string) {
		resp, err := http.Post(ts.URL+"/run", "application/json",
			strings.NewReader(`{"workload":"VADD","mode":"dyn","seed":`+seed+`}`))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		results <- resp.StatusCode
	}
	go post("1")
	waitSnapshot(t, sched, "running", func(c Counters) bool { return c.Running == 1 })
	go post("2")
	waitSnapshot(t, sched, "queued", func(c Counters) bool { return c.Queued == 1 })

	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"workload":"VADD","mode":"dyn","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", got)
	}

	close(stub.gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("acknowledged request finished with %d", code)
		}
	}
}

func TestServeShutdown503(t *testing.T) {
	stub := newStubSim(0)
	ts, sched := newTestServer(t, stub, Options{Workers: 1, QueueCap: 4})
	sched.Shutdown()
	resp, _ := postRun(t, ts, `{"workload":"VADD"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d, want 503", resp.StatusCode)
	}
}

func TestServeStatusAndMetrics(t *testing.T) {
	stub := newStubSim(0)
	ts, _ := newTestServer(t, stub, Options{Workers: 2, QueueCap: 16})
	postRun(t, ts, `{"workload":"VADD","mode":"dyn"}`)
	postRun(t, ts, `{"workload":"VADD","mode":"dyn"}`) // cache hit

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		UptimeSec float64  `json:"uptime_sec"`
		Counters  Counters `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Counters.Executed != 1 || status.Counters.CacheHits != 1 {
		t.Fatalf("status counters: %+v", status.Counters)
	}
	if status.Counters.CacheEntries != 1 {
		t.Fatalf("cache entries = %d", status.Counters.CacheEntries)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"ndpserve_executed_total 1",
		"ndpserve_cache_hits_total 1",
		"ndpserve_cache_entries 1",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("metrics missing %q:\n%s", want, joined)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
}

// TestServeSSEStream: ?stream=1 yields progress events (fed by the metrics
// sample hook in production; by the stub here) then a final result event
// identical in content to a plain POST.
func TestServeSSEStream(t *testing.T) {
	stub := newStubSim(5 * time.Millisecond)
	ts, _ := newTestServer(t, stub, Options{Workers: 1, QueueCap: 4})

	resp, err := http.Post(ts.URL+"/run?stream=1", "application/json",
		strings.NewReader(`{"workload":"VADD","mode":"dyn","seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	var events []string
	var datas []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, after)
		}
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			datas = append(datas, after)
		}
	}
	if len(events) == 0 || events[len(events)-1] != "result" {
		t.Fatalf("stream did not end in a result event: %v", events)
	}
	sawProgress := false
	for i, ev := range events {
		if ev == "progress" {
			sawProgress = true
			var p Progress
			if err := json.Unmarshal([]byte(datas[i]), &p); err != nil {
				t.Fatalf("bad progress payload %q: %v", datas[i], err)
			}
			if p.Cycles != 4000 {
				t.Fatalf("progress payload: %+v", p)
			}
		}
	}
	if !sawProgress {
		t.Fatal("no progress events before the result")
	}
	var rr RunResponse
	if err := json.Unmarshal([]byte(datas[len(datas)-1]), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Workload != "VADD" || rr.Cached || rr.TimePS != 42 {
		t.Fatalf("streamed result: %+v", rr)
	}

	// Accept: text/event-stream also selects SSE, and a cache hit streams
	// just the result (no progress — nothing ran).
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/run",
		strings.NewReader(`{"workload":"VADD","mode":"dyn","seed":5}`))
	req.Header.Set("Accept", "text/event-stream")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body := new(strings.Builder)
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		body.WriteString(sc2.Text() + "\n")
	}
	if strings.Contains(body.String(), "event: progress") {
		t.Fatal("cache hit produced progress events")
	}
	if !strings.Contains(body.String(), "event: result") {
		t.Fatalf("cache hit stream:\n%s", body.String())
	}
	if !strings.Contains(body.String(), `"cached":true`) {
		t.Fatal("streamed cache hit not marked cached")
	}
}

// TestServeClientRoundTrip drives the Go client (ndpsweep -server transport)
// against the live stack, including transparent 429 retry.
func TestServeClientRoundTrip(t *testing.T) {
	stub := newStubSim(0)
	ts, _ := newTestServer(t, stub, Options{Workers: 2, QueueCap: 16})
	c := NewClient(ts.URL)
	if err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
	resp, _, err := c.Run(RunRequest{Workload: "VADD", Mode: "dyn", Seed: 9, Client: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Digest["TimePS"] != 42 {
		t.Fatalf("client response: %+v", resp)
	}
	resp2, _, err := c.Run(RunRequest{Workload: "VADD", Mode: "dyn", Seed: 9, Client: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("client repeat not cached")
	}
	if _, _, err := c.Run(RunRequest{Workload: "NOPE"}); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("bad request error: %v", err)
	}
}

// TestServeXClientFairnessIdentity: the X-Client header sets the fairness
// identity when the body carries none.
func TestServeXClientFairnessIdentity(t *testing.T) {
	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	ts, sched := newTestServer(t, stub, Options{Workers: 1, QueueCap: 16})

	var wg sync.WaitGroup
	post := func(seed, client string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/run",
				strings.NewReader(`{"workload":"VADD","mode":"dyn","seed":`+seed+`}`))
			req.Header.Set("X-Client", client)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}()
	}
	post("1", "alice")
	waitSnapshot(t, sched, "running", func(c Counters) bool { return c.Running == 1 })
	post("2", "alice")
	waitSnapshot(t, sched, "alice queued", func(c Counters) bool { return c.Queued == 1 })
	post("3", "bob")
	waitSnapshot(t, sched, "two clients", func(c Counters) bool { return c.Clients == 2 })

	close(stub.gate)
	wg.Wait()
	if snap := sched.Snapshot(); snap.Executed != 3 {
		t.Fatalf("executed %d, want 3", snap.Executed)
	}
}
