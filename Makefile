GO ?= go

.PHONY: build test test-short test-race vet check audit chaos bench bench-engine bench-scaling test-parallel clean

build:
	$(GO) build ./...

# Full suite, including the per-workload simulations and the idle-skip
# bit-identity differential (several minutes).
test:
	$(GO) test ./...

# Unit tests only: skips the full-simulation tests.
test-short:
	$(GO) test -short ./...

# Race detector over the short suite (covers the parallel sweep runner).
test-race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Pre-PR gate: build everything, vet, run the short suite, then the race
# detector over the packages with concurrent test harnesses. Run this (plus
# `make audit` when the memory system or protocol changed) before sending
# a change out.
check: build vet test-short
	$(GO) test -race -short ./internal/sim ./internal/noc ./internal/timing

# Invariant audit: every Table 1 workload under baseline, naive-NDP, and
# dynamic-NDP with all runtime invariant checkers enabled (internal/audit),
# cross-checked bit-for-bit against the reference interpreter. Also exposed
# as `ndpsim -audit`.
audit:
	$(GO) test ./internal/sim -run Audit -v

# Chaos differential suite: every Table 1 workload under every pinned fault
# schedule (killed link, failed NSU, frozen vault, lossy mesh) plus seeded
# random schedules, all three modes, memory cross-checked bit-for-bit against
# the fault-free reference interpreter. The schedules and seeds are pinned in
# internal/sim/chaos.go, so the matrix is fully deterministic. The default
# `make test` runs a representative subset; this is the exhaustive matrix.
chaos:
	NDPGPU_CHAOS_FULL=1 $(GO) test ./internal/sim -run 'Chaos|FaultNoOp' -timeout 45m -v

# Macro benchmark: one full VADD simulation per iteration (see BENCH_pr1.json
# for the recorded before/after numbers).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSingleRunVADD -benchmem -benchtime 5x .

# Micro benchmark: engine edge dispatch, idle skipping on/off.
bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkEngineIdleSkip -benchmem ./internal/timing

# Parallel-executor scaling: the serial reference, then the sharded executor
# at 1/2/4/8 worker threads. Results are bit-identical across all legs by
# the determinism contract (see README "Parallel execution"); only wall time
# moves. Recorded numbers: BENCH_pr4.json.
bench-scaling:
	$(GO) test -run '^$$' -bench 'BenchmarkSingleRunVADD$$' -benchtime 3x .
	for n in 1 2 4 8; do \
		GOMAXPROCS=$$n $(GO) test -run '^$$' -bench BenchmarkSingleRunVADDParallel -benchtime 3x . ; \
	done

# Determinism contract of the sharded executor: every workload x mode leg
# bit-identical serial vs parallel, plus audited and chaos legs, under the
# race detector.
test-parallel:
	$(GO) test -race -run 'TestParallelEquivalence' -timeout 45m ./internal/sim

clean:
	$(GO) clean ./...
