package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testOutcome(key string, timePS int64) *Outcome {
	return &Outcome{
		Digest:   map[string]float64{"TimePS": float64(timePS), "Key": float64(len(key))},
		TimePS:   timePS,
		EnergyPJ: 7.5,
	}
}

// openReplayed opens a journal under dir and replays it, failing the test on
// any error.
func openReplayed(t *testing.T, dir string) (*Journal, map[string]*Outcome, ReplayStats) {
	t.Helper()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := j.Replay()
	if err != nil {
		j.Close()
		t.Fatal(err)
	}
	return j, out, st
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, out, st := openReplayed(t, dir)
	if len(out) != 0 || st.Records != 0 {
		t.Fatalf("fresh journal replayed %d records", st.Records)
	}
	const n = 20
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if err := j.Append(key, testOutcome(key, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	js := j.Stats()
	if js.Appends != n || js.Failures != 0 {
		t.Fatalf("stats after %d appends: %+v", n, js)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}

	j2, out2, st2 := openReplayed(t, dir)
	defer j2.Close()
	if st2.Records != n || st2.TruncatedBytes != 0 || st2.Duplicates != 0 || st2.Compacted {
		t.Fatalf("clean replay: %+v", st2)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", i)
		got, ok := out2[key]
		if !ok {
			t.Fatalf("replay lost %s", key)
		}
		if got.TimePS != int64(i) || got.Digest["TimePS"] != float64(i) {
			t.Fatalf("replayed %s = %+v", key, got)
		}
	}
	// Appends continue after a replay of existing records.
	if err := j2.Append("post-replay", testOutcome("post-replay", 99)); err != nil {
		t.Fatal(err)
	}
}

func TestJournalAppendBeforeReplay(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append("k", testOutcome("k", 1)); err == nil {
		t.Fatal("Append before Replay succeeded")
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j, _, _ := openReplayed(t, t.TempDir())
	j.Close()
	if err := j.Append("k", testOutcome("k", 1)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

// TestJournalTornTail: garbage after the last intact record — a kill -9
// mid-write — is truncated on replay and the file compacted clean, so the
// next replay sees no damage.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openReplayed(t, dir)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := j.Append(key, testOutcome(key, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, journalFileName)
	torn := []struct {
		name string
		tail []byte
	}{
		{"partial header", []byte{0x10, 0x00}},
		{"header without payload", func() []byte {
			h := make([]byte, 8)
			binary.LittleEndian.PutUint32(h, 64) // promises 64 bytes, delivers none
			return h
		}()},
		{"random garbage", []byte("\x00\x99garbage mid-write from a dying process")},
	}
	for _, tc := range torn {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tc.tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		j2, out, st := openReplayed(t, dir)
		j2.Close()
		if st.Records != 5 || len(out) != 5 {
			t.Fatalf("%s: recovered %d records, want 5", tc.name, st.Records)
		}
		if st.TruncatedBytes != int64(len(tc.tail)) {
			t.Fatalf("%s: truncated %d bytes, want %d", tc.name, st.TruncatedBytes, len(tc.tail))
		}
		if !st.Compacted {
			t.Fatalf("%s: torn tail did not trigger compaction", tc.name)
		}

		// Third open: the compaction left a clean file.
		j3, _, st3 := openReplayed(t, dir)
		j3.Close()
		if st3.TruncatedBytes != 0 || st3.Compacted {
			t.Fatalf("%s: replay after compaction still found damage: %+v", tc.name, st3)
		}
	}
}

// TestJournalCorruptRecord: a flipped byte inside a record invalidates its
// CRC; replay keeps everything before it and drops it and everything after
// (the checksum chain cannot vouch for what follows a corrupt frame).
func TestJournalCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openReplayed(t, dir)
	var offsets []int64 // file offset of each record's frame
	path := filepath.Join(dir, journalFileName)
	for i := 0; i < 5; i++ {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, st.Size())
		key := fmt.Sprintf("key-%d", i)
		if err := j.Append(key, testOutcome(key, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip one payload byte in record 2.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pos := offsets[2] + 8 + 4 // past the frame header, into the payload
	buf := []byte{0}
	if _, err := f.ReadAt(buf, pos); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, pos); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, out, st := openReplayed(t, dir)
	j2.Close()
	if st.Records != 2 {
		t.Fatalf("recovered %d records past a corrupt frame, want 2", st.Records)
	}
	for _, key := range []string{"key-0", "key-1"} {
		if _, ok := out[key]; !ok {
			t.Fatalf("replay lost intact record %s", key)
		}
	}
	if _, ok := out["key-2"]; ok {
		t.Fatal("replay accepted a corrupt record")
	}
	if st.TruncatedBytes == 0 || !st.Compacted {
		t.Fatalf("corruption not truncated/compacted: %+v", st)
	}
}

func TestJournalBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalFileName), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, _, err := j.Replay(); err == nil {
		t.Fatal("Replay accepted a file with the wrong magic")
	}
}

// TestJournalDuplicateCompaction: duplicate keys (possible when a journal
// from before a compaction crash is replayed) keep the first record and
// trigger a rewrite.
func TestJournalDuplicateCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openReplayed(t, dir)
	if err := j.Append("dup", testOutcome("dup", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("other", testOutcome("other", 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("dup", testOutcome("dup", 999)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, out, st := openReplayed(t, dir)
	j2.Close()
	if st.Records != 2 || st.Duplicates != 1 || !st.Compacted {
		t.Fatalf("duplicate replay: %+v", st)
	}
	if out["dup"].TimePS != 1 {
		t.Fatalf("duplicate resolution kept the later record (TimePS=%d), want first-wins", out["dup"].TimePS)
	}
	j3, _, st3 := openReplayed(t, dir)
	j3.Close()
	if st3.Duplicates != 0 || st3.Compacted {
		t.Fatalf("compaction left duplicates: %+v", st3)
	}
}

// TestJournalGroupCommit: concurrent appends are durable and the fsync count
// stays at or below the append count (batches amortize the sync).
func TestJournalGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openReplayed(t, dir)
	const writers, each = 32, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("w%02d-%02d", w, i)
				if err := j.Append(key, testOutcome(key, int64(w*100+i))); err != nil {
					t.Errorf("append %s: %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	js := j.Stats()
	if js.Appends != writers*each {
		t.Fatalf("acknowledged %d appends, want %d", js.Appends, writers*each)
	}
	if js.Syncs > js.Appends {
		t.Fatalf("syncs %d > appends %d: group commit not batching", js.Syncs, js.Appends)
	}
	j.Close()

	j2, out, st := openReplayed(t, dir)
	j2.Close()
	if st.Records != writers*each || st.TruncatedBytes != 0 {
		t.Fatalf("replay after concurrent appends: %+v", st)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			key := fmt.Sprintf("w%02d-%02d", w, i)
			if got, ok := out[key]; !ok || got.TimePS != int64(w*100+i) {
				t.Fatalf("lost or mangled %s: %+v", key, got)
			}
		}
	}
}

// TestSchedulerJournalRecovery is the in-process kill-and-restart property:
// results served by one scheduler, journaled, then restored into a fresh
// scheduler (a "restarted process"), must serve as cache hits with zero
// re-simulation.
func TestSchedulerJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	j, recovered, _ := openReplayed(t, dir)
	stub := newStubSim(0)
	s := New(Options{Workers: 2, QueueCap: 16, Runner: stub.runner(), Journal: j})
	if n := s.Restore(recovered); n != 0 {
		t.Fatalf("fresh journal restored %d entries", n)
	}
	for seed := int64(0); seed < 8; seed++ {
		req := reqFor(t, "VADD", seed, "c")
		served, err := s.Submit(context.Background(), req)
		if err != nil || served.Outcome == nil {
			t.Fatal(err)
		}
	}
	s.Shutdown()
	j.Close()

	// "Restart": fresh journal handle, fresh scheduler, fresh stub.
	j2, recovered2, st := openReplayed(t, dir)
	defer j2.Close()
	if st.Records != 8 {
		t.Fatalf("replayed %d records, want 8", st.Records)
	}
	stub2 := newStubSim(0)
	s2 := New(Options{Workers: 2, QueueCap: 16, Runner: stub2.runner(), Journal: j2})
	defer s2.Shutdown()
	if n := s2.Restore(recovered2); n != 8 {
		t.Fatalf("restored %d entries, want 8", n)
	}
	for seed := int64(0); seed < 8; seed++ {
		req := reqFor(t, "VADD", seed, "c")
		served, err := s2.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !served.Cached {
			t.Fatalf("seed %d not served from the restored cache", seed)
		}
		if served.Outcome.TimePS != 42 {
			t.Fatalf("restored outcome mangled: %+v", served.Outcome)
		}
	}
	if got := stub2.totalExecs(); got != 0 {
		t.Fatalf("restart re-simulated %d journaled keys, want 0", got)
	}
	snap := s2.Snapshot()
	if snap.Executed != 0 || snap.Recovered != 8 || snap.CacheHits != 8 {
		t.Fatalf("post-restart counters: %+v", snap)
	}
}
