// Package kernel represents GPU kernels in the virtual ISA, their launch
// geometry, and a small builder DSL used by the workload generators.
//
// Register ABI at thread spawn:
//
//	r0 = global thread id  (ctaid*ntid + tid)
//	r1 = CTA id
//	r2 = thread id within the CTA
//	r3 = threads per CTA (ntid)
//	r4..r(4+len(Params)-1) = kernel parameters (array base addresses, scalars)
//
// Workloads allocate scratch registers from r16 upward by convention.
package kernel

import (
	"fmt"

	"ndpgpu/internal/isa"
)

// ABI register assignments.
const (
	RegGTID   isa.Reg = 0
	RegCTAID  isa.Reg = 1
	RegTID    isa.Reg = 2
	RegNTID   isa.Reg = 3
	RegParam0 isa.Reg = 4
)

// Kernel is a compiled kernel plus its launch configuration.
type Kernel struct {
	Name      string
	Code      []isa.Instr
	GridDim   int // number of CTAs
	BlockDim  int // threads per CTA (multiple of warp width)
	Params    []uint64
	RegsUsed  int // highest register index used + 1 (for occupancy limits)
	SmemBytes int // scratchpad bytes per CTA
}

// Threads returns the total thread count of the launch.
func (k *Kernel) Threads() int { return k.GridDim * k.BlockDim }

// Validate checks the kernel's code and geometry.
func (k *Kernel) Validate() error {
	if k.BlockDim <= 0 || k.GridDim <= 0 {
		return fmt.Errorf("kernel %s: non-positive launch geometry %dx%d", k.Name, k.GridDim, k.BlockDim)
	}
	if len(k.Code) == 0 {
		return fmt.Errorf("kernel %s: empty code", k.Name)
	}
	for pc, in := range k.Code {
		if err := in.Validate(len(k.Code)); err != nil {
			return fmt.Errorf("kernel %s pc=%d: %w", k.Name, pc, err)
		}
	}
	if k.Code[len(k.Code)-1].Op != isa.EXIT && k.Code[len(k.Code)-1].Op != isa.BRA {
		return fmt.Errorf("kernel %s: code must end in exit or branch", k.Name)
	}
	return nil
}

// Disassemble renders the kernel code with PC labels.
func (k *Kernel) Disassemble() string {
	out := ""
	for pc, in := range k.Code {
		out += fmt.Sprintf("%4d: %s\n", pc, in.String())
	}
	return out
}

// Builder assembles kernel code instruction by instruction.
type Builder struct {
	code    []isa.Instr
	maxReg  isa.Reg
	pending []fixup // forward-branch fixups
}

type fixup struct {
	pc    int
	label *Label
}

// Label is a branch target that may be bound after the branch is emitted.
type Label struct {
	pc    int
	bound bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() int { return len(b.code) }

func (b *Builder) track(rs ...isa.Reg) {
	for _, r := range rs {
		if r != isa.RNone && r > b.maxReg {
			b.maxReg = r
		}
	}
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instr) int {
	b.track(in.Dst, in.Src[0], in.Src[1], in.Src[2], in.Pred)
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// Op3 emits a three-operand register instruction: dst = op(a, b).
func (b *Builder) Op3(op isa.Opcode, dst, a, bb isa.Reg) int {
	in := isa.New(op)
	in.Dst, in.Src[0], in.Src[1] = dst, a, bb
	return b.Emit(in)
}

// Op4 emits a four-operand register instruction: dst = op(a, b, c).
func (b *Builder) Op4(op isa.Opcode, dst, a, bb, c isa.Reg) int {
	in := isa.New(op)
	in.Dst, in.Src[0], in.Src[1], in.Src[2] = dst, a, bb, c
	return b.Emit(in)
}

// OpImm emits an immediate-form instruction: dst = op(a, imm).
func (b *Builder) OpImm(op isa.Opcode, dst, a isa.Reg, imm int64) int {
	in := isa.New(op)
	in.Dst, in.Src[0], in.Imm = dst, a, imm
	return b.Emit(in)
}

// Op2 emits a two-operand instruction: dst = op(a).
func (b *Builder) Op2(op isa.Opcode, dst, a isa.Reg) int {
	in := isa.New(op)
	in.Dst, in.Src[0] = dst, a
	return b.Emit(in)
}

// MovI emits dst = imm.
func (b *Builder) MovI(dst isa.Reg, imm int64) int {
	in := isa.New(isa.MOVI)
	in.Dst, in.Imm = dst, imm
	return b.Emit(in)
}

// Setp emits dst = cmp(a, b) ? 1 : 0.
func (b *Builder) Setp(cmp isa.CmpOp, dst, a, bb isa.Reg) int {
	in := isa.New(isa.SETP)
	in.Dst, in.Src[0], in.Src[1], in.Cmp = dst, a, bb, cmp
	return b.Emit(in)
}

// Ld emits dst = mem[addr+off].
func (b *Builder) Ld(dst, addr isa.Reg, off int64) int {
	in := isa.New(isa.LD)
	in.Dst, in.Src[0], in.Imm = dst, addr, off
	return b.Emit(in)
}

// St emits mem[addr+off] = src.
func (b *Builder) St(addr isa.Reg, off int64, src isa.Reg) int {
	in := isa.New(isa.ST)
	in.Src[0], in.Src[1], in.Imm = addr, src, off
	return b.Emit(in)
}

// Ldc emits dst = const[addr+off] (read-only constant memory).
func (b *Builder) Ldc(dst, addr isa.Reg, off int64) int {
	in := isa.New(isa.LDC)
	in.Dst, in.Src[0], in.Imm = dst, addr, off
	return b.Emit(in)
}

// Lds emits dst = smem[addr+off].
func (b *Builder) Lds(dst, addr isa.Reg, off int64) int {
	in := isa.New(isa.LDS)
	in.Dst, in.Src[0], in.Imm = dst, addr, off
	return b.Emit(in)
}

// Sts emits smem[addr+off] = src.
func (b *Builder) Sts(addr isa.Reg, off int64, src isa.Reg) int {
	in := isa.New(isa.STS)
	in.Src[0], in.Src[1], in.Imm = addr, src, off
	return b.Emit(in)
}

// Bar emits a CTA barrier.
func (b *Builder) Bar() int { return b.Emit(isa.New(isa.BAR)) }

// NewLabel creates an unbound label.
func (b *Builder) NewLabel() *Label { return &Label{} }

// Bind binds the label to the next instruction.
func (b *Builder) Bind(l *Label) {
	l.pc, l.bound = len(b.code), true
	rest := b.pending[:0]
	for _, f := range b.pending {
		if f.label == l {
			b.code[f.pc].Imm = int64(l.pc)
		} else {
			rest = append(rest, f)
		}
	}
	b.pending = rest
}

// Bra emits an unconditional branch to the label.
func (b *Builder) Bra(l *Label) int {
	in := isa.New(isa.BRA)
	pc := b.Emit(in)
	b.ref(pc, l)
	return pc
}

// Brp emits a branch-if-nonzero on reg to the label. The condition must be
// warp-uniform at runtime.
func (b *Builder) Brp(cond isa.Reg, l *Label) int {
	in := isa.New(isa.BRP)
	in.Src[0] = cond
	pc := b.Emit(in)
	b.ref(pc, l)
	return pc
}

func (b *Builder) ref(pc int, l *Label) {
	if l.bound {
		b.code[pc].Imm = int64(l.pc)
	} else {
		b.pending = append(b.pending, fixup{pc: pc, label: l})
	}
}

// Predicate attaches a predicate register to the instruction at pc: it will
// execute only in threads where (reg != 0) != neg.
func (b *Builder) Predicate(pc int, pred isa.Reg, neg bool) {
	b.code[pc].Pred = pred
	b.code[pc].PredNeg = neg
	b.track(pred)
}

// Exit emits the thread-exit instruction.
func (b *Builder) Exit() int { return b.Emit(isa.New(isa.EXIT)) }

// Build finalizes the code, checking that all labels were bound.
func (b *Builder) Build(name string, grid, block int, params ...uint64) (*Kernel, error) {
	if len(b.pending) > 0 {
		return nil, fmt.Errorf("kernel %s: %d unbound branch targets", name, len(b.pending))
	}
	k := &Kernel{
		Name:     name,
		Code:     append([]isa.Instr(nil), b.code...),
		GridDim:  grid,
		BlockDim: block,
		Params:   append([]uint64(nil), params...),
		RegsUsed: int(b.maxReg) + 1,
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MustBuild is Build that panics on error; for use in workload constructors
// whose code is fixed at compile time.
func (b *Builder) MustBuild(name string, grid, block int, params ...uint64) *Kernel {
	k, err := b.Build(name, grid, block, params...)
	if err != nil {
		panic(err)
	}
	return k
}
