// Deterministic sharded parallel execution.
//
// The simulated machine is intrinsically shard-parallel: each memory stack
// (HMC + vaults + NSU) couples to the rest of the system only through the
// memory network, and the GPU's SMs couple only through the crossbar, the
// shared decider/credit state, and functional memory. The executor here
// exploits that as a compute/commit split:
//
//   - compute phase: every shard of a domain ticks concurrently on a
//     persistent worker pool. A shard writes only its own state plus a
//     per-shard outbox of deferred cross-shard effects (fabric sends, credit
//     returns, audit ejects).
//   - commit phase: at the barrier the outboxes replay in fixed shard index
//     order, reproducing exactly the sequence of cross-shard calls serial
//     execution would have made (shard 0 ticks before shard 1 in attach
//     order, and within a shard the outbox preserves program order).
//
// Rare operations that are order-sensitive *within* the compute phase (a
// seeded PRNG draw, an all-or-nothing credit reservation) run through a
// Sequencer, which releases them in shard index order — shard k's operation
// waits until every lower-indexed shard has finished its whole tick, which is
// exactly the point at which serial execution would have reached it.
//
// Both mechanisms make parallel execution bit-identical to serial execution;
// TestParallelEquivalence proves it the same way TestIdleSkipEquivalence
// proved idle skipping.
package timing

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for compute phases. Run dispatches items
// in index order (item i never starts before item j<i has been claimed),
// which the Sequencer's deadlock-freedom argument relies on. The calling
// goroutine participates as a worker, so a Pool of size n uses n-1 background
// goroutines, started lazily on first use.
type Pool struct {
	workers int
	once    sync.Once
	work    chan *batch
	quit    chan struct{}
}

type batch struct {
	n    int
	f    func(int)
	next atomic.Int64
	wg   sync.WaitGroup
}

// NewPool returns a pool that runs compute phases on up to `workers`
// goroutines (including the caller). workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the configured parallelism degree.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) start() {
	p.work = make(chan *batch)
	p.quit = make(chan struct{})
	work, quit := p.work, p.quit
	for i := 0; i < p.workers-1; i++ {
		go func() {
			for {
				select {
				case b := <-work:
					b.drain()
				case <-quit:
					return
				}
			}
		}()
	}
}

func (b *batch) drain() {
	for {
		i := int(b.next.Add(1) - 1)
		if i >= b.n {
			return
		}
		b.f(i)
		b.wg.Done()
	}
}

// Run executes f(0..n-1) across the pool and returns when all calls have
// completed. Items are claimed in index order via a shared counter, so the
// set of started items is always a prefix of 0..n-1. With one worker (or one
// item) it degenerates to a plain serial loop.
func (p *Pool) Run(n int, f func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	p.once.Do(p.start)
	b := &batch{n: n, f: f}
	b.wg.Add(n)
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for i := 0; i < helpers; i++ {
		select {
		case p.work <- b:
		default:
			// All background workers are busy (they never are between
			// phases, but don't block if one is slow to park).
			i = helpers
		}
	}
	b.drain() // the caller works too
	b.wg.Wait()
}

// Close stops the background workers. The pool must not be used afterwards.
func (p *Pool) Close() {
	if p == nil || p.quit == nil {
		return
	}
	close(p.quit)
	p.quit = nil
}

// Sequencer releases rare order-sensitive operations in shard index order
// during a compute phase. The protocol: every shard calls Finish(k) when its
// tick completes; an operation submitted by shard k with Do(k, f) runs only
// once every shard j < k has finished. Because serial execution ticks shards
// in index order, this reproduces exactly the serial position of f in the
// global operation sequence.
//
// Deadlock-freedom: Pool.Run starts items in index order, so the started set
// is a prefix; the lowest-indexed unfinished shard is always started and its
// wait condition (all lower shards finished) already holds, so it can always
// progress. Operations run under the Sequencer's lock, which also provides
// the happens-before edge from every lower shard's writes (published by
// Finish) to the operation body.
type Sequencer struct {
	mu   sync.Mutex
	cond *sync.Cond
	done []bool
	low  int // lowest shard index not yet finished
}

// NewSequencer returns a sequencer for phases of up to n shards.
func NewSequencer(n int) *Sequencer {
	s := &Sequencer{done: make([]bool, n)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Begin resets the sequencer for a new compute phase of n shards.
func (s *Sequencer) Begin(n int) {
	s.mu.Lock()
	if n > len(s.done) {
		s.done = make([]bool, n)
	} else {
		for i := 0; i < n; i++ {
			s.done[i] = false
		}
	}
	s.low = 0
	s.mu.Unlock()
}

// Do runs f once every shard with index < k has finished the current phase.
// f executes under the sequencer lock, serializing it against every other
// sequenced operation.
func (s *Sequencer) Do(k int, f func()) {
	s.mu.Lock()
	for s.low < k {
		s.cond.Wait()
	}
	f()
	s.mu.Unlock()
}

// Finish marks shard k's tick complete, unblocking operations of higher
// shards. Every shard of the phase must call it exactly once.
func (s *Sequencer) Finish(k int) {
	s.mu.Lock()
	s.done[k] = true
	for s.low < len(s.done) && s.done[s.low] {
		s.low++
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Shard is a Ticker whose cross-shard effects are deferred into an outbox
// during Tick and replayed by Commit. Sharded drives a group of them as one
// compute/commit pair.
type Shard interface {
	Ticker
	// Commit replays the shard's deferred cross-shard effects (fabric
	// sends, credit returns, audit ejects) in the order they were
	// generated. Called on the coordinating goroutine, in shard index
	// order, after every shard of the group has finished computing.
	Commit(now PS)
}

// Sharded adapts a group of shards to a single domain Ticker: Tick runs the
// compute phase of every shard concurrently on the pool, then commits each
// shard's outbox in index order. It forwards idle hints (min over shards) and
// idle skipping, so a sharded domain skips exactly like its serial
// counterpart.
type Sharded struct {
	pool     *Pool
	shards   []Shard
	hints    []IdleHint    // parallel to shards, nil entries when absent
	skippers []IdleSkipper // shards that batch per-cycle statistics
	hintable bool
}

// NewSharded groups shards for concurrent execution on pool.
func NewSharded(pool *Pool, shards ...Shard) *Sharded {
	s := &Sharded{pool: pool, shards: shards, hintable: true}
	for _, sh := range shards {
		h, ok := sh.(IdleHint)
		if !ok {
			s.hintable = false
		}
		s.hints = append(s.hints, h)
		if sk, ok := sh.(IdleSkipper); ok {
			s.skippers = append(s.skippers, sk)
		}
	}
	return s
}

// Tick implements Ticker: compute phase in parallel, commit phase in shard
// index order.
func (s *Sharded) Tick(now PS) {
	s.pool.Run(len(s.shards), func(i int) { s.shards[i].Tick(now) })
	for _, sh := range s.shards {
		sh.Commit(now)
	}
}

// NextWorkAt implements IdleHint as the earliest wake time over the group —
// the same value the engine would compute from the shards attached
// individually.
func (s *Sharded) NextWorkAt(now PS) PS {
	if !s.hintable {
		return now
	}
	wake := Never
	for _, h := range s.hints {
		if w := h.NextWorkAt(now); w < wake {
			wake = w
			if wake <= now {
				return wake
			}
		}
	}
	return wake
}

// SkipIdle implements IdleSkipper by forwarding to every shard that batches
// per-cycle statistics.
func (s *Sharded) SkipIdle(cycles int64) {
	for _, sk := range s.skippers {
		sk.SkipIdle(cycles)
	}
}
