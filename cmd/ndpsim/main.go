// Command ndpsim runs one workload on one configuration and prints the
// collected statistics.
//
// Usage:
//
//	ndpsim -workload VADD -mode dyncache -scale 1 [-sms 64] [-nsumhz 350] [-verify]
//	ndpsim -workload FWT -mode naive -faults 'nsufail:t=2000000:hmc=3;timeout=2000'
//	ndpsim -workload BFS -mode dyncache -par 8
//	ndpsim -audit
//
// Modes: baseline, morecore, naive, static=<p>, dyn, dyncache.
//
// -par N shards the simulation across N worker threads with bit-identical
// results (see README "Parallel execution"). 0 (the default) picks
// min(NumCPU, shard count) automatically; 1 forces the serial engine.
// -fuse bounds the supershard count (0 = auto) and -nobatch disables
// quiescence-batched phases, mainly for the scaling experiments.
//
// -audit runs the invariant audit suite instead of a single simulation:
// every Table 1 workload under baseline, naive-NDP, and dynamic-NDP with
// all runtime invariant checkers enabled, cross-checked bit-for-bit against
// the reference interpreter. Exits nonzero on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"ndpgpu/internal/backend"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/energy"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/metrics"
	"ndpgpu/internal/prof"
	"ndpgpu/internal/report"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "VADD", "workload abbreviation (see -list)")
		mode     = flag.String("mode", "baseline", sim.ModeUsage)
		arch     = flag.String("arch", "", "architecture backend: "+backend.Usage()+" (default paper)")
		scale    = flag.Int("scale", 1, "problem-size scale factor")
		sms      = flag.Int("sms", 0, "override SM count (0 = Table 2 default)")
		nsuMHz   = flag.Int("nsumhz", 0, "override NSU clock in MHz (0 = default 350)")
		roCache  = flag.Bool("nsurocache", false, "enable the §7.1 NSU read-only cache extension")
		faults   = flag.String("faults", "", "fault schedule, e.g. 'nsufail:t=2000000:hmc=3;drop:p=0.01;seed=7' (see README)")
		verify   = flag.Bool("verify", true, "check functional output against the host reference")
		audit    = flag.Bool("audit", false, "run the full invariant audit suite and exit")
		list     = flag.Bool("list", false, "list workloads and exit")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		par      = flag.Int("par", 0, "parallel workers (0 = auto: min(NumCPU, shard count); 1 = serial; >1 = deterministic sharded executor)")
		fuse     = flag.Int("fuse", 0, "supershard count for the parallel executor (0 = auto: min(workers, NumCPU))")
		noBatch  = flag.Bool("nobatch", false, "disable quiescence-batched phases in the parallel executor")
		metricsO = flag.String("metrics", "", "write epoch-sampled metrics to this file (see -tracefmt)")
		traceFmt = flag.String("tracefmt", "", "metrics export format: json|csv|chrome (default from -metrics extension)")
		mInt     = flag.Int64("minterval", 0, "metrics sampling interval in SM cycles (0 = the Algorithm-1 epoch)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mtxProf  = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blkProf  = flag.String("blockprofile", "", "write a blocking profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.StartOpts(prof.Options{
		CPU: *cpuProf, Mem: *memProf, Mutex: *mtxProf, Block: *blkProf})
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *list {
		for _, a := range workloads.Abbrs() {
			fmt.Println(a)
		}
		return
	}

	if *audit {
		runAuditSuite(*scale)
		return
	}

	cfg := config.Default()
	cfg.Arch.Backend = *arch
	if _, err := backend.For(*arch); err != nil {
		fatal(err)
	}
	cfg.Parallel = *par
	cfg.FusionWidth = *fuse
	cfg.NoQuiescentBatch = *noBatch
	if *par > runtime.NumCPU() {
		fmt.Fprintf(os.Stderr, "ndpsim: warning: -par %d exceeds the %d available CPUs; extra workers only add barrier overhead\n",
			*par, runtime.NumCPU())
	}
	if *sms > 0 {
		cfg.GPU.NumSMs = *sms
	}
	if *nsuMHz > 0 {
		cfg.NSU.ClockMHz = *nsuMHz
	}
	if *roCache {
		cfg.NSU.ReadOnlyCacheBytes = 8 << 10
	}
	if *faults != "" {
		fc, err := fault.Parse(*faults, cfg.NumHMCs, cfg.HMC.NumVaults)
		if err != nil {
			fatal(fmt.Errorf("bad -faults schedule: %w", err))
		}
		cfg.Fault = fc
	}
	m, cfg, err := sim.ParseMode(*mode, cfg)
	if err != nil {
		fatal(err)
	}
	mFmt, err := metrics.ParseFormat(*traceFmt, *metricsO)
	if err != nil {
		fatal(err)
	}

	mem := vm.New(cfg)
	w, err := workloads.Build(*workload, mem, *scale)
	if err != nil {
		fatal(err)
	}
	machine, err := sim.Launch(cfg, w.Kernel, mem, m)
	if err != nil {
		fatal(err)
	}
	if *metricsO != "" {
		c := machine.EnableMetrics(*mInt)
		c.SetMeta("workload", w.Abbr)
		c.SetMeta("mode", m.Name)
	}
	res, err := machine.Run(0)
	if err != nil {
		fatal(err)
	}
	if *metricsO != "" {
		f, err := os.Create(*metricsO)
		if err != nil {
			fatal(err)
		}
		if err := machine.Metrics().Snapshot().Write(f, mFmt); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *verify {
		if err := w.Verify(); err != nil {
			fatal(fmt.Errorf("functional verification FAILED: %w", err))
		}
	}
	e := energy.Compute(res.Stats, cfg, energy.DefaultParams(), m.NDP)

	st := res.Stats
	if *jsonOut {
		out := map[string]any{
			"workload":  w.Abbr,
			"input":     w.Input,
			"mode":      m.Name,
			"time_us":   float64(res.TimePS) / 1e6,
			"sm_cycles": res.Cycles,
			"stats":     st,
			"energy_pj": e,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s (%s) mode=%s\n", w.Abbr, w.Input, m.Name)
	fmt.Printf("time: %.3f us  (%d SM cycles)\n", float64(res.TimePS)/1e6, res.Cycles)
	fmt.Print(st.String())
	fmt.Printf("energy (uJ): GPU=%.1f NSU=%.1f intra-HMC=%.1f off-chip=%.1f DRAM=%.1f total=%.1f\n",
		e.GPU/1e6, e.NSU/1e6, e.IntraHMC/1e6, e.OffChip/1e6, e.DRAM/1e6, e.Total()/1e6)
	if st.AckLatencyCount > 0 {
		fmt.Printf("offload RTT: %.2f us avg over %d acks\n",
			float64(st.AckLatencySumPS)/float64(st.AckLatencyCount)/1e6, st.AckLatencyCount)
	}
	if len(st.RatioTrace) > 0 {
		fmt.Printf("final offload ratio: %.2f\n", st.RatioTrace[len(st.RatioTrace)-1])
	}
	if ca, ok := machine.Dec.(*core.CacheAware); ok {
		fmt.Printf("cache-aware suppressed: %d instances\n", ca.Suppressed)
	}
	occ := st.NSUOccupancy(cfg.NSU.NumWarps, cfg.NumHMCs)
	if m.NDP {
		fmt.Printf("nsu: occupancy=%.1f%% icache-util=%.1f%%\n",
			100*occ, 100*st.ICacheUtilization(cfg.NSU.ICacheBytes))
	}
}

// runAuditSuite runs the invariant audit over all workloads and modes,
// prints one table row per leg, and exits 1 if any leg fails.
func runAuditSuite(scale int) {
	cfg := sim.AuditConfig()
	t := report.New(
		fmt.Sprintf("Invariant audit (%d SMs, scale %d)", cfg.GPU.NumSMs, scale),
		"workload", "mode", "cycles", "violations", "mem", "status")
	failed := 0
	results := sim.RunAuditSuite(cfg, scale, func(r sim.AuditResult) {
		fmt.Fprintf(os.Stderr, "audit %s/%s...\n", r.Workload, r.Mode)
	})
	for _, r := range results {
		status, mem := "ok", "match"
		switch {
		case r.Err != nil:
			status, mem = "ERROR: "+r.Err.Error(), "-"
		case !r.Ok():
			status = "FAIL"
			if !r.MemMatch {
				mem = "MISMATCH"
			}
			if r.FirstBad != "" {
				status += ": " + r.FirstBad
			}
		}
		if !r.Ok() {
			failed++
		}
		t.AddRow(r.Workload, r.Mode, fmt.Sprint(r.Cycles),
			fmt.Sprint(r.Violations), mem, status)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d audit legs failed", failed, len(results)))
	}
	fmt.Printf("all %d audit legs clean\n", len(results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndpsim:", err)
	os.Exit(1)
}
