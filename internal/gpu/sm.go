package gpu

import (
	"fmt"
	"math/bits"

	"ndpgpu/internal/cache"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
)

const inf = timing.PS(1) << 62

// ctaState tracks one resident thread block.
type ctaState struct {
	id      int
	live    int // non-exited warps
	arrived int // warps waiting at the barrier
	warps   []*warp
}

// offCtx is the SM-side state of one in-flight offloaded block instance.
type offCtx struct {
	block       *coreBlock
	id          core.OffloadID
	target      int
	targetKnown bool
	seqLD       int
	seqST       int
	began       timing.PS // OFLDBEG issue time, for ack-latency accounting
	cmdBytes    int       // command-packet register payload, for transfer profiling
	// ack holds an acknowledgment that arrived before the warp reached
	// OFLD.END (the NSU can finish as soon as the last RDF response lands,
	// while the GPU is still walking the block). It is applied when the
	// warp executes OFLD.END.
	ack *core.AckPacket
}

// coreBlock caches the analyzer block plus derived info the SM needs often.
type coreBlock struct {
	id          int
	begPC       int
	endPC       int
	numLD       int
	numST       int
	regsIn      []isa.Reg
	regsOut     []isa.Reg
	instrs      int // region instruction count (Table 1 metric + epoch IPC)
	indirect    bool
	nsuCodeSize int // bytes, for NSU I-cache accounting
}

// microOp is one coalesced line access of an in-flight memory instruction.
type microOp struct {
	access  core.LineAccess
	isStore bool
	dst     isa.Reg                // load destination
	offload bool                   // partitioned-execution semantics (RDF/WTA)
	seq     int                    // memory-instruction sequence number within the block
	total   int                    // packets generated for this instruction
	readyAt timing.PS              // earliest service time (TLB page-walk penalty)
	data    [core.WarpWidth]uint32 // store data (baseline mode)
}

// warp is one hardware warp context.
type warp struct {
	slot int
	cta  *ctaState

	pc        int
	mask      uint32
	exited    bool
	atBarrier bool
	waitAck   bool

	regs        [isa.NumRegs][core.WarpWidth]uint64
	regReady    [isa.NumRegs]timing.PS
	outstanding [isa.NumRegs]int16

	memq []microOp

	off      *offCtx // non-nil while inside an offloaded block instance
	inRegion bool    // inside a block executing normally (not offloaded)
	regionID int

	// fetchUntil stalls issue while the instruction line is fetched into
	// the L1I (Table 2: 4 KB, 4-way). Kernel footprints are small, so this
	// matters only for cold starts.
	fetchUntil timing.PS
}

type loadWaiter struct {
	w   *warp
	dst isa.Reg
}

// SM is one streaming multiprocessor.
type SM struct {
	id int
	g  *GPU

	l1      *cache.Cache
	l1i     *cache.Cache
	tlb     *cache.Cache
	waiters map[uint64][]loadWaiter

	warps []*warp // slot -> warp (nil when free)
	ctas  []*ctaState

	readyQ   []outPkt // ready packet buffer (drained 1/cycle to the fabric)
	pendingQ []outPkt // pending packet buffer (target not yet known)

	// Per-cycle issue resources.
	aluUsed, lsuUsed, issued int
	sawExecBlock             bool
	sawDepBlock              bool
	sawCreditBlock           bool

	// Warp scheduling state: the greedy warp for GTO, the rotation point
	// for round-robin.
	greedyWarp int
	rrStart    int
	order      []int // scratch for schedOrder
}

// outPkt is a packet waiting in the SM's NDP packet buffers.
type outPkt struct {
	target int
	size   int
	msg    any
}

func newSM(g *GPU, id int) *SM {
	tlbGeom := config.CacheGeom{
		SizeBytes: g.cfg.GPU.TLBEntries * g.cfg.Mem.PageBytes,
		Ways:      g.cfg.GPU.TLBWays,
		LineBytes: g.cfg.Mem.PageBytes,
		MSHRs:     1,
	}
	return &SM{
		id:      id,
		g:       g,
		l1:      cache.New(g.cfg.GPU.L1D),
		l1i:     cache.New(g.cfg.GPU.L1I),
		tlb:     cache.New(tlbGeom),
		waiters: make(map[uint64][]loadWaiter),
		warps:   make([]*warp, g.cfg.WarpsPerSM()),
	}
}

// maxResidentCTAs computes the CTA occupancy limit for the kernel.
func (s *SM) maxResidentCTAs() int {
	k := s.g.prog.Kernel
	c := s.g.cfg.GPU
	warpsPerCTA := (k.BlockDim + c.WarpWidth - 1) / c.WarpWidth
	limit := c.MaxCTAsPerSM
	if byThreads := c.MaxThreadsPerSM / k.BlockDim; byThreads < limit {
		limit = byThreads
	}
	regsPerCTA := k.RegsUsed * k.BlockDim
	if regsPerCTA > 0 {
		if byRegs := c.MaxRegsPerSM / regsPerCTA; byRegs < limit {
			limit = byRegs
		}
	}
	if k.SmemBytes > 0 {
		if bySmem := c.ScratchpadBytes / k.SmemBytes; bySmem < limit {
			limit = bySmem
		}
	}
	if bySlots := len(s.warps) / warpsPerCTA; bySlots < limit {
		limit = bySlots
	}
	return limit
}

// refill launches new CTAs into free slots, at most one per cycle (the
// hardware work distributor's launch rate), which also spreads the grid
// across all SMs instead of front-loading the first ones.
func (s *SM) refill() {
	k := s.g.prog.Kernel
	warpsPerCTA := (k.BlockDim + s.g.cfg.GPU.WarpWidth - 1) / s.g.cfg.GPU.WarpWidth
	limit := s.maxResidentCTAs()
	if len(s.ctas) < limit && s.g.nextCTA < k.GridDim {
		// Find contiguous-enough free slots.
		free := make([]int, 0, warpsPerCTA)
		for slot := range s.warps {
			if s.warps[slot] == nil {
				free = append(free, slot)
				if len(free) == warpsPerCTA {
					break
				}
			}
		}
		if len(free) < warpsPerCTA {
			return
		}
		ctaID := s.g.nextCTA
		s.g.nextCTA++
		cta := &ctaState{id: ctaID, live: warpsPerCTA}
		for wi := 0; wi < warpsPerCTA; wi++ {
			w := &warp{slot: free[wi], cta: cta}
			s.initWarp(w, ctaID, wi)
			s.warps[free[wi]] = w
			cta.warps = append(cta.warps, w)
		}
		s.ctas = append(s.ctas, cta)
	}
}

// initWarp sets up the ABI registers (see package kernel).
func (s *SM) initWarp(w *warp, ctaID, warpInCTA int) {
	k := s.g.prog.Kernel
	ww := s.g.cfg.GPU.WarpWidth
	base := warpInCTA * ww
	var mask uint32
	for t := 0; t < ww; t++ {
		tid := base + t
		if tid >= k.BlockDim {
			break
		}
		mask |= 1 << uint(t)
		gtid := ctaID*k.BlockDim + tid
		w.regs[kernel.RegGTID][t] = uint64(gtid)
		w.regs[kernel.RegCTAID][t] = uint64(ctaID)
		w.regs[kernel.RegTID][t] = uint64(tid)
		w.regs[kernel.RegNTID][t] = uint64(k.BlockDim)
		for p, v := range k.Params {
			w.regs[int(kernel.RegParam0)+p][t] = v
		}
	}
	w.mask = mask
}

// tick advances the SM by one core clock.
func (s *SM) tick(now timing.PS) {
	s.refill()
	s.aluUsed, s.lsuUsed, s.issued = 0, 0, 0
	s.sawExecBlock, s.sawDepBlock, s.sawCreditBlock = false, false, false

	s.drainReady(now)

	anyLive := false
	for _, slot := range s.schedOrder() {
		w := s.warps[slot]
		if w == nil || w.exited {
			continue
		}
		anyLive = true
		if w.atBarrier || w.waitAck {
			continue
		}
		if len(w.memq) > 0 {
			s.processMemq(w, now)
			continue
		}
		if s.issued >= s.g.cfg.GPU.MaxIssue {
			continue
		}
		before := s.issued
		s.tryIssue(w, now)
		if s.issued > before {
			s.greedyWarp = slot
		}
	}
	if s.g.cfg.GPU.SchedulerKind == "rr" {
		s.rrStart = (s.rrStart + 1) % len(s.warps)
	}

	if !anyLive {
		if s.g.nextCTA < s.g.prog.Kernel.GridDim {
			s.g.st.AddNoIssue(stats.WarpIdle)
		}
		return
	}
	if s.issued > 0 {
		s.g.st.IssueCycles++
		return
	}
	switch {
	case s.sawExecBlock:
		s.g.st.AddNoIssue(stats.ExecUnitBusy)
	case s.sawDepBlock:
		s.g.st.AddNoIssue(stats.DependencyStall)
	default:
		// Warps blocked on offload acknowledgments or NSU buffer credits
		// have no issuable instruction: the paper's "warp idle" class.
		s.g.st.AddNoIssue(stats.WarpIdle)
	}
}

// schedOrder returns the warp-slot visit order for this cycle. GTO (greedy
// then oldest) keeps issuing from the warp that issued last until it stalls,
// then falls back to slot order (oldest CTA first); round-robin rotates the
// starting slot each cycle so warps share issue bandwidth evenly.
func (s *SM) schedOrder() []int {
	n := len(s.warps)
	if s.order == nil {
		s.order = make([]int, n)
	}
	switch s.g.cfg.GPU.SchedulerKind {
	case "rr":
		for i := 0; i < n; i++ {
			s.order[i] = (s.rrStart + i) % n
		}
	default: // gto
		s.order[0] = s.greedyWarp
		k := 1
		for i := 0; i < n; i++ {
			if i != s.greedyWarp {
				s.order[k] = i
				k++
			}
		}
	}
	return s.order
}

// drainReady moves one packet per cycle from the ready buffer to the fabric.
func (s *SM) drainReady(now timing.PS) {
	if len(s.readyQ) == 0 {
		return
	}
	p := s.readyQ[0]
	s.readyQ = s.readyQ[1:]
	s.g.fab.SendGPUToHMC(now, p.target, p.size, p.msg)
}

// ready reports whether a register's value is available.
func (w *warp) ready(r isa.Reg, now timing.PS) bool {
	if r == isa.RNone {
		return true
	}
	return w.outstanding[r] == 0 && w.regReady[r] <= now
}

// effMask evaluates the instruction's predicate over the warp's active mask.
func (w *warp) effMask(in isa.Instr) uint32 {
	if in.Pred == isa.RNone {
		return w.mask
	}
	var m uint32
	for t := 0; t < core.WarpWidth; t++ {
		if w.mask&(1<<uint(t)) == 0 {
			continue
		}
		on := w.regs[in.Pred][t] != 0
		if on != in.PredNeg {
			m |= 1 << uint(t)
		}
	}
	return m
}

func (s *SM) traced(w *warp) bool {
	return TraceGTID >= 0 && w.regs[kernel.RegGTID][0] == uint64(TraceGTID)
}

// tryIssue attempts to issue the warp's next instruction.
func (s *SM) tryIssue(w *warp, now timing.PS) {
	if w.fetchUntil > now {
		return // instruction fetch in flight: empty instruction buffer
	}
	// Instruction fetch through the L1I; code lines are 8 B/instruction.
	iline := uint64(w.pc) * isa.InstrBytes
	if !s.l1i.Lookup(iline) {
		s.l1i.Fill(iline)
		w.fetchUntil = now + timing.PS(s.g.cfg.GPU.L2Latency)*s.g.smPeriod
		return
	}
	in := s.g.prog.Kernel.Code[w.pc]
	if s.traced(w) {
		fmt.Printf("[%d] pc=%d %v | r20=%x r21=%d r22=%d r25=%x off=%v\n",
			now, w.pc, in, uint32(w.regs[20][0]), w.regs[21][0], w.regs[22][0], uint32(w.regs[25][0]), w.off != nil)
	}

	// Offload-mode instruction filtering: @NSU ALU ops are skipped (they
	// run on the memory stack); everything else executes here.
	if w.off != nil && in.AtNSU {
		w.pc++
		s.issued++ // the NOP replacing it still consumes the issue slot
		s.g.st.IssuedInstrs++
		return
	}

	// Scoreboard.
	for i := 0; i < in.Op.SrcCount(); i++ {
		if !w.ready(in.Src[i], now) {
			s.sawDepBlock = true
			return
		}
	}
	if !w.ready(in.Pred, now) || (in.Op.WritesDst() && !w.ready(in.Dst, now)) {
		s.sawDepBlock = true
		return
	}

	switch in.Op.Class() {
	case isa.ClassALU:
		if s.aluUsed >= s.g.cfg.GPU.NumALUs {
			s.sawExecBlock = true
			return
		}
		s.aluUsed++
		s.execALU(w, in, now)
	case isa.ClassMem:
		if s.lsuUsed >= s.g.cfg.GPU.NumLSUs {
			s.sawExecBlock = true
			return
		}
		if !s.setupMem(w, in, now) {
			return // structural stall (credits / buffers)
		}
	case isa.ClassConst:
		if s.aluUsed >= s.g.cfg.GPU.NumALUs {
			s.sawExecBlock = true
			return
		}
		s.aluUsed++
		s.execConst(w, in, now)
	case isa.ClassSmem:
		if s.lsuUsed >= s.g.cfg.GPU.NumLSUs {
			s.sawExecBlock = true
			return
		}
		s.lsuUsed++
		s.execSmem(w, in, now)
	case isa.ClassCtrl:
		s.execCtrl(w, in, now)
	case isa.ClassOffload:
		if !s.execOffload(w, in, now) {
			return
		}
	}
	s.issued++
	s.g.st.IssuedInstrs++
	s.g.st.IssuedThreadOps += int64(bits.OnesCount32(w.effMask(in)))
}

func (s *SM) execALU(w *warp, in isa.Instr, now timing.PS) {
	m := w.effMask(in)
	for t := 0; t < core.WarpWidth; t++ {
		if m&(1<<uint(t)) == 0 {
			continue
		}
		var a, b, c uint64
		if in.Src[0] != isa.RNone {
			a = w.regs[in.Src[0]][t]
		}
		if in.Src[1] != isa.RNone {
			b = w.regs[in.Src[1]][t]
		}
		if in.Src[2] != isa.RNone {
			c = w.regs[in.Src[2]][t]
		}
		w.regs[in.Dst][t] = isa.Eval(in, a, b, c)
	}
	w.regReady[in.Dst] = now + timing.PS(s.g.cfg.GPU.ALULatency)*s.g.smPeriod
	w.pc++
}

// execConst serves a constant-memory load from the per-SM constant cache:
// a short fixed latency with no off-chip traffic (the working sets of our
// workloads fit the 4 KB constant cache, mirroring the paper's assumption).
func (s *SM) execConst(w *warp, in isa.Instr, now timing.PS) {
	m := w.effMask(in)
	for t := 0; t < core.WarpWidth; t++ {
		if m&(1<<uint(t)) == 0 {
			continue
		}
		addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
		w.regs[in.Dst][t] = uint64(s.g.mem.Read32(addr))
	}
	w.regReady[in.Dst] = now + timing.PS(s.g.cfg.GPU.L1HitLatency)*s.g.smPeriod
	w.pc++
}

// execSmem models scratchpad access as a short fixed-latency operation with
// no off-chip traffic. Functional scratchpad state is per-CTA and private;
// we back it with a per-CTA map on the GPU for simplicity.
func (s *SM) execSmem(w *warp, in isa.Instr, now timing.PS) {
	m := w.effMask(in)
	sm := s.g.smemFor(s.id, w.cta.id)
	for t := 0; t < core.WarpWidth; t++ {
		if m&(1<<uint(t)) == 0 {
			continue
		}
		addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
		if in.Op == isa.LDS {
			w.regs[in.Dst][t] = uint64(sm[addr])
		} else {
			sm[addr] = uint32(w.regs[in.Src[1]][t])
		}
	}
	if in.Op == isa.LDS {
		w.regReady[in.Dst] = now + timing.PS(s.g.cfg.GPU.L1HitLatency)*s.g.smPeriod
	}
	w.pc++
}

func (s *SM) execCtrl(w *warp, in isa.Instr, now timing.PS) {
	switch in.Op {
	case isa.BRA:
		w.pc = int(in.Imm)
	case isa.BRP:
		taken, mixed := false, false
		first := true
		for t := 0; t < core.WarpWidth; t++ {
			if w.mask&(1<<uint(t)) == 0 {
				continue
			}
			v := w.regs[in.Src[0]][t] != 0
			if first {
				taken, first = v, false
			} else if v != taken {
				mixed = true
			}
		}
		if mixed {
			panic(fmt.Sprintf("gpu: divergent branch at pc=%d (use predication)", w.pc))
		}
		if taken {
			w.pc = int(in.Imm)
		} else {
			w.pc++
		}
	case isa.BAR:
		w.pc++
		w.atBarrier = true
		w.cta.arrived++
		if w.cta.arrived == w.cta.live {
			for _, ww := range w.cta.warps {
				ww.atBarrier = false
			}
			w.cta.arrived = 0
		}
	case isa.EXIT:
		w.exited = true
		cta := w.cta
		cta.live--
		if cta.arrived > 0 && cta.arrived == cta.live {
			for _, ww := range cta.warps {
				ww.atBarrier = false
			}
			cta.arrived = 0
		}
		if cta.live == 0 {
			s.retireCTA(cta)
		}
	}
}

func (s *SM) retireCTA(cta *ctaState) {
	for _, w := range cta.warps {
		s.warps[w.slot] = nil
	}
	for i, c := range s.ctas {
		if c == cta {
			s.ctas = append(s.ctas[:i], s.ctas[i+1:]...)
			break
		}
	}
	s.g.freeSmem(s.id, cta.id)
}

// coalesce groups the per-thread addresses of a memory instruction into
// line-granularity accesses (the GPU's coalescing unit).
func (s *SM) coalesce(w *warp, in isa.Instr, mask uint32) []core.LineAccess {
	lineBytes := uint64(s.g.cfg.LineBytes())
	var lines []core.LineAccess
	for t := 0; t < core.WarpWidth; t++ {
		if mask&(1<<uint(t)) == 0 {
			continue
		}
		addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
		line := addr &^ (lineBytes - 1)
		off := uint8((addr & (lineBytes - 1)) / core.WordBytes)
		found := false
		for i := range lines {
			if lines[i].LineAddr == line {
				lines[i].Mask |= 1 << uint(t)
				lines[i].Offsets[t] = off
				found = true
				break
			}
		}
		if !found {
			la := core.LineAccess{LineAddr: line, Mask: 1 << uint(t)}
			la.Offsets[t] = off
			lines = append(lines, la)
		}
	}
	// Classify aligned accesses: offset_i == i for every covered thread.
	for i := range lines {
		aligned := true
		for t := 0; t < core.WarpWidth; t++ {
			if lines[i].Mask&(1<<uint(t)) != 0 && lines[i].Offsets[t] != uint8(t) {
				aligned = false
				break
			}
		}
		lines[i].Aligned = aligned
	}
	return lines
}

// setupMem issues a memory instruction: resolves offload-mode credits and
// target selection, then expands the access into line micro-ops. Returns
// false if the warp must retry next cycle.
func (s *SM) setupMem(w *warp, in isa.Instr, now timing.PS) bool {
	mask := w.effMask(in)
	offload := w.off != nil
	lines := s.coalesce(w, in, mask)

	var seq, total int
	if offload {
		ctx := w.off
		// First memory instruction: pick the target NSU and reserve the
		// NDP buffers (§4.1.1, §4.3).
		if !ctx.targetKnown {
			homes := make([]int, len(lines))
			for i, la := range lines {
				homes[i] = s.g.mem.HMCOf(la.LineAddr)
			}
			ctx.target = core.SelectTarget(homes, s.g.cfg.NumHMCs)
			if !s.g.bufmgr.Reserve(ctx.target, ctx.block.numLD, ctx.block.numST) {
				s.g.st.CreditStalls++
				s.sawCreditBlock = true
				return false
			}
			ctx.targetKnown = true
			s.flushPending(ctx)
		}
		if in.Op == isa.LD {
			seq = ctx.seqLD
			ctx.seqLD++
		} else {
			seq = ctx.seqST
			ctx.seqST++
		}
		total = len(lines)
	}

	if len(lines) == 0 {
		// Fully predicated-off access: nothing to do.
		w.pc++
		s.lsuUsed++
		return true
	}

	// Translate: every distinct page goes through the SM's TLB (the GPU
	// owns translation in partitioned execution, §4.1); a miss delays the
	// affected line accesses by the page-walk latency.
	walk := timing.PS(s.g.cfg.GPU.TLBMissLatency) * s.g.smPeriod
	pageMask := ^uint64(s.g.cfg.Mem.PageBytes - 1)
	var missPage uint64
	seenPage := uint64(1) // addresses never map page 1 (offset within page 0x1000+)
	for _, la := range lines {
		page := la.LineAddr & pageMask
		if page == seenPage {
			continue
		}
		seenPage = page
		if !s.tlb.Lookup(page) {
			s.tlb.Fill(page)
			missPage = page | 1
		}
	}

	for _, la := range lines {
		op := microOp{access: la, isStore: in.Op == isa.ST, dst: in.Dst,
			offload: offload, seq: seq, total: total}
		if missPage != 0 && la.LineAddr&pageMask == missPage&^1 {
			op.readyAt = now + walk
		}
		if op.isStore && !offload {
			for t := 0; t < core.WarpWidth; t++ {
				if la.Mask&(1<<uint(t)) != 0 {
					op.data[t] = uint32(w.regs[in.Src[1]][t])
				}
			}
		}
		w.memq = append(w.memq, op)
	}
	if in.Op == isa.LD && !offload {
		w.outstanding[in.Dst] = int16(len(lines))
		w.regReady[in.Dst] = inf
	}
	w.pc++
	s.lsuUsed++ // issuing the instruction consumes the LSU this cycle
	return true
}

// processMemq serves the warp's outstanding line micro-ops, at most one per
// LSU per cycle. Divergent accesses therefore occupy the LSU for several
// cycles — the GPU's memory-divergence penalty.
func (s *SM) processMemq(w *warp, now timing.PS) {
	for s.lsuUsed < s.g.cfg.GPU.NumLSUs && len(w.memq) > 0 {
		op := &w.memq[0]
		if op.readyAt > now {
			s.sawDepBlock = true // translation in flight
			return
		}
		if !s.serveMicroOp(w, op, now) {
			s.sawExecBlock = true
			return
		}
		s.lsuUsed++
		w.memq = w.memq[1:]
	}
	if len(w.memq) > 0 && s.lsuUsed >= s.g.cfg.GPU.NumLSUs {
		s.sawExecBlock = true
	}
}

func (s *SM) serveMicroOp(w *warp, op *microOp, now timing.PS) bool {
	if op.offload {
		return s.serveOffloadOp(w, op, now)
	}
	if op.isStore {
		return s.serveBaselineStore(w, op, now)
	}
	return s.serveBaselineLoad(w, op, now)
}

func (s *SM) serveBaselineLoad(w *warp, op *microOp, now timing.PS) bool {
	line := op.access.LineAddr
	hit := s.l1.Contains(line)
	// Cache profiling for the §7.3 decision also runs in normal mode so a
	// suppressed block keeps being re-evaluated. An RDF probe would see
	// both cache levels, so an L1 miss defers the verdict to the L2.
	profile := -1
	if w.inRegion {
		profile = w.regionID
	}
	if !hit {
		// Reserve the MSHR before committing the access so a full-MSHR
		// retry next cycle is not double-counted in the cache statistics.
		ok, primary := s.l1.MSHRReserve(line)
		if !ok {
			return false
		}
		s.l1.Lookup(line)
		s.waiters[line] = append(s.waiters[line], loadWaiter{w: w, dst: op.dst})
		if primary {
			s.g.sliceFor(line).push(&l2Req{kind: reqRead, line: line, blockID: profile,
				words: bits.OnesCount32(op.access.Mask),
				onFill: func(at timing.PS) {
					s.fillL1(line, at)
				}})
		} else if profile >= 0 {
			// Merged into an in-flight fill: an RDF would also have missed.
			s.g.recordLine(profile, false, bits.OnesCount32(op.access.Mask))
		}
	} else {
		s.l1.Lookup(line)
		if profile >= 0 {
			s.g.recordLine(profile, true, bits.OnesCount32(op.access.Mask))
		}
	}
	// Functional read happens now; timing is tracked separately.
	for t := 0; t < core.WarpWidth; t++ {
		if op.access.Mask&(1<<uint(t)) != 0 {
			addr := line + uint64(op.access.Offsets[t])*core.WordBytes
			w.regs[op.dst][t] = uint64(s.g.mem.Read32(addr))
		}
	}
	if hit {
		s.loadLineDone(w, op.dst, now+timing.PS(s.g.cfg.GPU.L1HitLatency)*s.g.smPeriod)
	}
	return true
}

// fillL1 completes an L1 miss: install the line and wake the waiters.
func (s *SM) fillL1(line uint64, now timing.PS) {
	s.l1.MSHRRelease(line)
	for _, lw := range s.waiters[line] {
		s.loadLineDone(lw.w, lw.dst, now)
	}
	delete(s.waiters, line)
}

func (s *SM) loadLineDone(w *warp, dst isa.Reg, at timing.PS) {
	w.outstanding[dst]--
	if w.outstanding[dst] <= 0 {
		w.outstanding[dst] = 0
		w.regReady[dst] = at
	}
}

func (s *SM) serveBaselineStore(w *warp, op *microOp, now timing.PS) bool {
	line := op.access.LineAddr
	// Write-through: functional write now; L1 probe keeps tags coherent,
	// and any read-only NSU copy of the line becomes stale.
	s.l1.Lookup(line)
	s.g.invalidateNSUDirs(line)
	for t := 0; t < core.WarpWidth; t++ {
		if op.access.Mask&(1<<uint(t)) != 0 {
			addr := line + uint64(op.access.Offsets[t])*core.WordBytes
			s.g.mem.Write32(addr, op.data[t])
		}
	}
	wr := &core.WriteReq{Access: op.access, Data: op.data}
	s.g.sliceFor(line).push(&l2Req{kind: reqWrite, line: line, write: wr})
	return true
}

// serveOffloadOp handles partitioned-execution memory micro-ops: loads
// probe the GPU caches and become RDF traffic; stores become WTA packets
// for the target NSU (Figure 6).
func (s *SM) serveOffloadOp(w *warp, op *microOp, now timing.PS) bool {
	ctx := w.off
	if op.isStore {
		if len(s.readyQ) >= s.g.cfg.NDP.ReadyEntries {
			return false
		}
		wta := &core.WTAPacket{ID: ctx.id, Seq: op.seq, Target: ctx.target,
			Access: op.access, TotalPkts: op.total}
		s.pushReady(ctx.target, wta.Size(), wta)
		s.g.st.WTAPackets++
		s.g.wtaInflight[s.g.mem.HMCOf(op.access.LineAddr)]++
		return true
	}
	line := op.access.LineAddr
	if s.l1.Lookup(line) {
		// RDF served from the L1: the GPU ships the data to the NSU.
		if len(s.readyQ) >= s.g.cfg.NDP.ReadyEntries {
			return false
		}
		s.g.recordLine(ctx.block.id, true, bits.OnesCount32(op.access.Mask))
		s.g.st.RDFPackets++
		s.g.st.RDFCacheHits++
		rdf := &core.RDFPacket{ID: ctx.id, Seq: op.seq, Target: ctx.target,
			Access: op.access, TotalPkts: op.total}
		msg, size := s.g.shipCachedLine(rdf)
		s.pushReady(ctx.target, size, msg)
		return true
	}
	// L1 miss: probe the L2 slice; it forwards to DRAM on a miss there.
	rdf := &core.RDFPacket{ID: ctx.id, Seq: op.seq, Target: ctx.target,
		Access: op.access, TotalPkts: op.total}
	s.g.st.RDFPackets++
	s.g.sliceFor(line).push(&l2Req{kind: reqRDF, line: line, rdf: rdf, blockID: ctx.block.id})
	return true
}

// pushReady queues a packet in the ready buffer.
func (s *SM) pushReady(target, size int, msg any) {
	s.readyQ = append(s.readyQ, outPkt{target: target, size: size, msg: msg})
}

// flushPending moves the context's pending packets (the offload command,
// generated before the target was known) into the ready buffer.
func (s *SM) flushPending(ctx *offCtx) {
	rest := s.pendingQ[:0]
	for _, p := range s.pendingQ {
		if cmd, ok := p.msg.(*core.CmdPacket); ok && cmd.ID == ctx.id {
			cmd.Target = ctx.target
			s.pushReady(ctx.target, p.size, cmd)
		} else {
			rest = append(rest, p)
		}
	}
	s.pendingQ = rest
}

// execOffload handles OFLDBEG / OFLDEND.
func (s *SM) execOffload(w *warp, in isa.Instr, now timing.PS) bool {
	blk := s.g.blocks[in.BlockID]
	if in.Op == isa.OFLDBEG {
		s.g.st.OffloadBlocksSeen++
		if s.g.dec.Decide(blk.id) {
			if len(s.pendingQ) >= s.g.cfg.NDP.PendingEntries {
				s.g.st.PendingBufStalls++
				s.sawExecBlock = true
				return false
			}
			s.g.st.OffloadBlocksOffloaded++
			ctx := &offCtx{block: blk, id: core.OffloadID{SM: int32(s.id), Warp: int32(w.slot)}, began: now}
			w.off = ctx
			cmd := &core.CmdPacket{ID: ctx.id, BlockID: blk.id, Mask: w.mask,
				NumLD: blk.numLD, NumST: blk.numST}
			for _, r := range blk.regsIn {
				rv := core.RegVals{Reg: int16(r)}
				rv.Vals = w.regs[r]
				cmd.In.Regs = append(cmd.In.Regs, rv)
			}
			s.g.st.OffloadCmdPackets++
			ctx.cmdBytes = cmd.Size() - core.HeaderBytes
			s.pendingQ = append(s.pendingQ, outPkt{size: cmd.Size(), msg: cmd})
		} else {
			w.inRegion = true
			w.regionID = blk.id
		}
		w.pc++
		return true
	}

	// OFLDEND.
	if w.off != nil {
		ctx := w.off
		if !ctx.targetKnown {
			// Block contained no executed memory instruction (fully
			// predicated off): pick stack 0, reserve, and flush so the NSU
			// still runs the block and acknowledges.
			if !s.g.bufmgr.Reserve(0, ctx.block.numLD, ctx.block.numST) {
				s.g.st.CreditStalls++
				s.sawCreditBlock = true
				return false
			}
			ctx.target = 0
			ctx.targetKnown = true
			s.flushPending(ctx)
		}
		w.pc++
		if ctx.ack != nil {
			// The acknowledgment already arrived: complete immediately.
			s.applyAck(w, ctx.ack, now)
		} else {
			w.waitAck = true // resumes when the ack arrives
		}
		return true
	}
	// Normal-mode end: account the region's instructions for the epoch
	// throughput metric and close the profiling instance.
	w.inRegion = false
	s.g.regionInstrs += int64(blk.instrs)
	s.g.st.OffloadRegionInstrs += int64(blk.instrs)
	if s.g.rec != nil {
		s.g.rec.RecordInstance(blk.id)
	}
	w.pc++
	return true
}

// deliverAck routes an offload acknowledgment to its warp. If the warp is
// still inside the block (the NSU finished before the GPU reached OFLD.END)
// the ack is stashed on the context and applied at OFLD.END.
func (s *SM) deliverAck(ack *core.AckPacket, now timing.PS) {
	w := s.warps[ack.ID.Warp]
	if w == nil || w.off == nil {
		panic("gpu: ack for unknown offload context")
	}
	if !w.waitAck {
		w.off.ack = ack
		return
	}
	s.applyAck(w, ack, now)
}

// applyAck writes back the returned registers and releases the warp.
func (s *SM) applyAck(w *warp, ack *core.AckPacket, now timing.PS) {
	blk := w.off.block
	s.g.st.AckLatencySumPS += int64(now - w.off.began)
	s.g.st.AckLatencyCount++
	for _, rv := range ack.Out.Regs {
		m := rv.Mask
		if m == 0 {
			m = ack.Mask
		}
		for t := 0; t < core.WarpWidth; t++ {
			if m&(1<<uint(t)) != 0 {
				w.regs[rv.Reg][t] = rv.Vals[t]
			}
		}
		w.regReady[rv.Reg] = now
		w.outstanding[rv.Reg] = 0
		if s.traced(w) {
			fmt.Printf("[%d] ACK writes r%d = %x\n", now, rv.Reg, uint32(rv.Vals[0]))
		}
	}
	if s.g.rec != nil {
		s.g.rec.RecordTransfer(blk.id, w.off.cmdBytes+ack.Size()-core.HeaderBytes)
	}
	w.off = nil
	w.waitAck = false
	s.g.regionInstrs += int64(blk.instrs)
	s.g.st.OffloadRegionInstrs += int64(blk.instrs)
	if s.g.rec != nil {
		s.g.rec.RecordInstance(blk.id)
	}
}

// busy reports whether the SM still has live warps or queued packets.
func (s *SM) busy() bool {
	if len(s.readyQ) > 0 || len(s.pendingQ) > 0 || len(s.waiters) > 0 {
		return true
	}
	for _, w := range s.warps {
		if w != nil && !w.exited {
			return true
		}
	}
	return false
}
