// Package hmc composes one memory stack: 16 vault controllers (package
// dram), the logic-layer router that dispatches arriving packets, and the
// stack's NSU. The logic layer implements the memory-side halves of the
// partitioned-execution protocol: RDF requests read DRAM and forward the
// touched words to the target NSU over the memory network; NSU writes are
// committed to DRAM, acknowledged to the issuing NSU, and trigger cache
// invalidations toward the GPU (§4.2).
package hmc

import (
	"fmt"

	"ndpgpu/internal/audit"
	"ndpgpu/internal/cache"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/dram"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/gpu"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
)

// NSUPort is the logic layer's view of the stack's NSU.
type NSUPort interface {
	Deliver(msg any, now timing.PS)
}

// HMC is one memory stack.
type HMC struct {
	ID  int
	cfg config.Config
	mem *vm.System
	fab *noc.Fabric
	out noc.Sender // defaults to fab; a shard outbox in parallel mode
	st  *stats.Stats
	nsu NSUPort

	vaults      []*dram.Vault
	overflow    []pendingReq // requests waiting for vault queue space
	overflowCap int          // backpressure threshold for the overflow queue
	flt         *fault.Injector

	// Stack-side address translation (the ndpage backend): offloaded
	// accesses arriving at this stack's logic layer look up a per-stack TLB
	// over 4 KB pages; a miss defers the packet's dispatch by the tailored
	// page-walk latency through xlatQ. All nil/empty under the default
	// architecture, where the GPU owns translation and this path is a
	// strict no-op.
	xlat       *cache.Cache
	xlatQ      []xlatEntry
	xlatWalkPS timing.PS
	pageMask   uint64

	// pendingReads merges concurrent reads of the same line (the logic
	// layer's MSHR-like read-combining): one DRAM access serves them all.
	pendingReads map[uint64][]func(at timing.PS)

	// onWork, when set, is called when work enters the stack outside its own
	// Tick (the local NSU submitting a write): the DRAM domain is
	// wake-scheduled and this stack's slot must be re-armed.
	onWork func(at timing.PS)
}

type pendingReq struct {
	vault int
	req   *dram.Request
}

// xlatEntry is one packet waiting out its stack-side page walk. The walk
// latency is a constant, so entries are appended and drained in FIFO order —
// the queue is time-ordered by construction.
type xlatEntry struct {
	msg any
	due timing.PS
}

// New builds a stack.
func New(id int, cfg config.Config, mem *vm.System, fab *noc.Fabric, st *stats.Stats) *HMC {
	h := &HMC{ID: id, cfg: cfg, mem: mem, fab: fab, out: fab, st: st,
		overflowCap:  cfg.HMC.EffOverflowCap(),
		pendingReads: make(map[uint64][]func(at timing.PS))}
	for v := 0; v < cfg.HMC.NumVaults; v++ {
		h.vaults = append(h.vaults, dram.NewVault(cfg.HMC))
	}
	if cfg.Arch.StackXlat {
		h.xlat = cache.New(config.CacheGeom{
			SizeBytes: cfg.Arch.EffStackTLBEntries() * cfg.Mem.PageBytes,
			Ways:      cfg.Arch.EffStackTLBWays(),
			LineBytes: cfg.Mem.PageBytes,
			MSHRs:     1,
		})
		h.xlatWalkPS = timing.PS(cfg.Arch.EffStackWalkCycles() * cfg.HMC.TCKps)
		h.pageMask = ^uint64(cfg.Mem.PageBytes - 1)
	}
	return h
}

// SetNSU attaches the stack's NSU.
func (h *HMC) SetNSU(n NSUPort) { h.nsu = n }

// SetSender redirects the stack's outgoing fabric traffic (parallel mode:
// a per-shard outbox replayed at the commit barrier). The inbox is still
// read through the fabric directly — it is shard-local state.
func (h *HMC) SetSender(s noc.Sender) { h.out = s }

// SetStats swaps in a shard-private statistics bundle (parallel mode; folded
// into the run's bundle at finalization).
func (h *HMC) SetStats(st *stats.Stats) { h.st = st }

// SetFault attaches the fault injector (vault freezes).
func (h *HMC) SetFault(inj *fault.Injector) { h.flt = inj }

// SetWakeHook installs the out-of-tick work re-arm callback (wake
// scheduling).
func (h *HMC) SetWakeHook(f func(at timing.PS)) { h.onWork = f }

// EnableAudit attaches a DRAM bank-state auditor to every vault of this
// stack.
func (h *HMC) EnableAudit(a *audit.Auditor) {
	t := audit.DRAMTiming{
		TCKps: h.cfg.HMC.TCKps,
		TRCD:  h.cfg.HMC.TRCD,
		TRAS:  h.cfg.HMC.TRAS,
		TRP:   h.cfg.HMC.TRP,
		TCCD:  h.cfg.HMC.TCCD,
	}
	for i, v := range h.vaults {
		v.SetAudit(audit.NewVaultAudit(a, fmt.Sprintf("hmc%d/vault%d", h.ID, i), t, h.cfg.HMC.BanksPerVault))
	}
}

// Tick advances the stack by one DRAM clock: serve vaults, then dispatch
// arrived packets.
func (h *HMC) Tick(now timing.PS) {
	for i, v := range h.vaults {
		if h.flt != nil && h.flt.VaultFrozen(now, h.ID, i) {
			continue // frozen vault: requests queue but nothing is served
		}
		v.Tick(now)
	}
	h.retryOverflow()
	if len(h.xlatQ) > 0 {
		h.drainXlat(now)
	}
	inbox := h.fab.HMCInbox(h.ID)
	for {
		if len(h.overflow) >= h.overflowCap {
			// Backpressure: stop draining the network inbox until the
			// overflow queue shrinks, instead of growing it without bound.
			if at, ok := inbox.NextAt(); ok && at <= now {
				h.st.HMCOverflowStall++
			}
			break
		}
		msg, ok := inbox.Pop(now)
		if !ok {
			break
		}
		h.dispatch(msg, now)
	}
}

func (h *HMC) retryOverflow() {
	kept := h.overflow[:0]
	for _, p := range h.overflow {
		if !h.vaults[p.vault].Enqueue(p.req) {
			kept = append(kept, p)
		}
	}
	h.overflow = kept
}

func (h *HMC) enqueue(vault int, req *dram.Request) {
	if !h.vaults[vault].Enqueue(req) {
		h.overflow = append(h.overflow, pendingReq{vault: vault, req: req})
		if n := int64(len(h.overflow)); n > h.st.HMCOverflowHWM {
			h.st.HMCOverflowHWM = n
		}
	}
}

// readLine schedules one line read, combining with an outstanding read of
// the same line if present.
func (h *HMC) readLine(line uint64, now timing.PS, done func(at timing.PS)) {
	if cbs, busy := h.pendingReads[line]; busy {
		h.pendingReads[line] = append(cbs, done)
		return
	}
	h.pendingReads[line] = []func(at timing.PS){done}
	loc := h.mem.Decode(line)
	h.enqueue(loc.Vault, &dram.Request{
		Line: line, Bank: loc.Bank, Row: loc.Row, Arrival: now,
		Done: func(at timing.PS) {
			cbs := h.pendingReads[line]
			delete(h.pendingReads, line)
			for _, cb := range cbs {
				cb(at)
			}
		},
	})
}

// dispatch routes one arrived message, first passing offloaded accesses
// through the stack-side translation stage when this stack owns translation
// (ndpage backend). A TLB miss parks the message in xlatQ for the page-walk
// latency; dispatchTranslated finishes the routing once the walk is paid.
func (h *HMC) dispatch(msg any, now timing.PS) {
	if h.xlat != nil {
		switch m := msg.(type) {
		case *core.RDFPacket:
			if h.deferXlat(m.Access.LineAddr, msg, now) {
				return
			}
		case *core.WritePacket:
			if h.deferXlat(m.Access.LineAddr, msg, now) {
				return
			}
		}
	}
	h.dispatchTranslated(msg, now)
}

// deferXlat runs one stack-TLB lookup for the page of addr. On a hit the
// caller proceeds immediately; on a miss the message is queued until the
// page walk completes and true is returned. The entry is filled at miss
// time, so concurrent accesses to the same page behind the walk hit.
func (h *HMC) deferXlat(addr uint64, msg any, now timing.PS) bool {
	page := addr & h.pageMask
	h.st.StackTLB.Accesses++
	if h.xlat.Lookup(page) {
		h.st.StackTLB.Hits++
		return false
	}
	h.xlat.Fill(page)
	h.st.StackTLB.Fills++
	h.xlatQ = append(h.xlatQ, xlatEntry{msg: msg, due: now + h.xlatWalkPS})
	return true
}

// drainXlat dispatches every queued message whose page walk has completed.
func (h *HMC) drainXlat(now timing.PS) {
	for len(h.xlatQ) > 0 && h.xlatQ[0].due <= now {
		e := h.xlatQ[0]
		copy(h.xlatQ, h.xlatQ[1:])
		h.xlatQ[len(h.xlatQ)-1] = xlatEntry{}
		h.xlatQ = h.xlatQ[:len(h.xlatQ)-1]
		h.dispatchTranslated(e.msg, now)
	}
}

func (h *HMC) dispatchTranslated(msg any, now timing.PS) {
	switch m := msg.(type) {
	case *core.ReadReq:
		// Baseline line fetch for the GPU's L2.
		line := m.LineAddr
		h.readLine(line, now, func(at timing.PS) {
			h.st.AddTraffic(stats.IntraHMC, int64(h.cfg.LineBytes()))
			h.out.SendHMCToGPU(at, h.ID, core.ReadRespBytes(h.cfg.LineBytes()),
				&core.ReadResp{LineAddr: line})
		})

	case *core.WriteReq:
		// Baseline write-through store; no acknowledgment needed under the
		// GPU's relaxed consistency model.
		loc := h.mem.Decode(m.Access.LineAddr)
		h.st.AddTraffic(stats.IntraHMC, int64(m.Size()-core.HeaderBytes))
		h.enqueue(loc.Vault, &dram.Request{
			Line: m.Access.LineAddr, Bank: loc.Bank, Row: loc.Row,
			IsWrite: true, Arrival: now,
		})

	case *core.RDFPacket:
		// Read DRAM and forward the touched words to the target NSU
		// (Figure 6(a), steps 5-6).
		pkt := m
		h.readLine(m.Access.LineAddr, now, func(at timing.PS) {
			h.st.AddTraffic(stats.IntraHMC, int64(h.cfg.LineBytes()))
			resp := gpu.MakeRDFResp(h.mem, pkt)
			h.st.RDFRespPackets++
			if pkt.Target == h.ID {
				h.nsu.Deliver(resp, at)
			} else {
				h.out.SendHMCToHMC(at, h.ID, pkt.Target, resp.Size(), resp)
			}
		})

	case *core.RDFResp:
		// Arriving for the local NSU: either forwarded from another stack
		// or generated by the GPU on a cache hit.
		h.nsu.Deliver(m, now)

	case *core.CmdPacket, *core.WTAPacket, *core.RDFRef:
		h.nsu.Deliver(m, now)

	case *core.WritePacket:
		// An NSU (local or remote) writes this stack's DRAM: commit, ack
		// the writer, and invalidate the GPU's cached copy (§4.2).
		loc := h.mem.Decode(m.Access.LineAddr)
		pkt := m
		h.st.AddTraffic(stats.IntraHMC, int64(m.Size()-core.HeaderBytes))
		h.enqueue(loc.Vault, &dram.Request{
			Line: m.Access.LineAddr, Bank: loc.Bank, Row: loc.Row,
			IsWrite: true, Arrival: now,
			Done: func(at timing.PS) {
				ackMsg := &core.WriteAck{ID: pkt.ID, Tag: pkt.Tag, Seq: pkt.Seq}
				if pkt.Source == h.ID {
					h.nsu.Deliver(ackMsg, at)
				} else {
					h.out.SendHMCToHMC(at, h.ID, pkt.Source, ackMsg.Size(), ackMsg)
				}
				inval := &core.InvalPacket{LineAddr: pkt.Access.LineAddr, HomeHMC: h.ID}
				h.out.SendHMCToGPU(at, h.ID, inval.Size(), inval)
			},
		})

	case *core.WriteAck:
		h.nsu.Deliver(m, now)

	case *core.AckPacket:
		panic("hmc: offload ack routed to an HMC")

	default:
		panic(fmt.Sprintf("hmc: unexpected message %T", msg))
	}
}

// SubmitNSUWrite lets the local NSU write its own stack without a network
// traversal (implements nsu.WriteSubmitter).
func (h *HMC) SubmitNSUWrite(p *core.WritePacket, now timing.PS) {
	if h.onWork != nil {
		h.onWork(now)
	}
	h.dispatch(p, now)
}

// Busy reports whether any vault, the overflow queue, or an in-flight stack
// page walk has work.
func (h *HMC) Busy() bool {
	if len(h.overflow) > 0 || len(h.pendingReads) > 0 || len(h.xlatQ) > 0 {
		return true
	}
	for _, v := range h.vaults {
		if !v.Idle() {
			return true
		}
	}
	return false
}

// NextWorkAt implements timing.IdleHint: the stack can do work now if any
// vault has due work or the overflow queue is non-empty; otherwise it wakes
// at the earliest vault command/completion/refresh edge or packet arrival.
// Fault-free runs use the per-bank sharp hint, which parks the stack across
// pure DRAM-timing waits even with requests queued (SkipIdle's edge ledger
// keeps BusyCycles exact over the parked stretch). Fault runs keep the
// coarse queue-presence hint: a frozen vault is skipped by Tick and records
// nothing densely, which the ledger's queue test would misrepresent.
// pendingReads entries always have a backing request in a vault queue or the
// overflow, so they need no separate term.
func (h *HMC) NextWorkAt(now timing.PS) timing.PS {
	if len(h.overflow) > 0 {
		return now
	}
	wake := timing.Never
	if len(h.xlatQ) > 0 {
		// The queue is FIFO time-ordered (constant walk latency), so the
		// head is the earliest walk completion.
		if due := h.xlatQ[0].due; due <= now {
			return now
		} else if due < wake {
			wake = due
		}
	}
	sharp := h.flt == nil
	for _, v := range h.vaults {
		var w timing.PS
		if sharp {
			w = v.NextWorkSharp(now)
		} else {
			w = v.NextWorkAt(now)
		}
		if w <= now {
			return now
		}
		if w < wake {
			wake = w
		}
	}
	if at, ok := h.fab.HMCInbox(h.ID).NextAt(); ok {
		if at <= now {
			return now
		}
		if at < wake {
			wake = at
		}
	}
	return wake
}

// SkipIdle implements timing.IdleSkipper: credit n elided DRAM edges to
// every vault's edge ledger (settled lazily against each vault's queue
// state).
func (h *HMC) SkipIdle(n int64) {
	for _, v := range h.vaults {
		v.SkipIdle(n)
	}
}

// VaultStats aggregates DRAM counters across vaults.
func (h *HMC) VaultStats() dram.VaultStats {
	var agg dram.VaultStats
	for _, v := range h.vaults {
		s := v.Stats
		agg.Reads += s.Reads
		agg.Writes += s.Writes
		agg.Activations += s.Activations
		agg.RowHits += s.RowHits
		agg.Precharges += s.Precharges
		agg.QueueFullRejects += s.QueueFullRejects
		agg.Refreshes += s.Refreshes
		// Fold the unsettled edge-ledger gap computationally: VaultStats
		// backs metrics probes, which must stay side-effect free.
		agg.BusyCycles += v.BusyCyclesNow()
	}
	return agg
}

// NumVaults returns the stack's vault count (the busy-fraction denominator).
func (h *HMC) NumVaults() int { return len(h.vaults) }

// QueueDepth returns the stack's total backlog: requests queued or in flight
// at every vault plus entries in the retry-overflow queue. A metrics gauge;
// side-effect free.
func (h *HMC) QueueDepth() int {
	d := len(h.overflow) + len(h.xlatQ)
	for _, v := range h.vaults {
		d += v.Pending()
	}
	return d
}
