module ndpgpu

go 1.22
