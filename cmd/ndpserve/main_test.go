package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"ndpgpu/internal/serve"
	"ndpgpu/internal/sim"
)

// startMain runs the server seam on an ephemeral port and returns its base
// URL, the stop trigger, and a channel with the final exit status + output.
func startMain(t *testing.T, args ...string) (base string, stop chan struct{}, done chan int, out *bytes.Buffer) {
	t.Helper()
	stop = make(chan struct{})
	done = make(chan int, 1)
	ready := make(chan string, 1)
	out = new(bytes.Buffer)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...),
			out, out, stop, func(addr string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, stop, done, out
	case code := <-done:
		t.Fatalf("server exited with %d before listening:\n%s", code, out)
		return "", nil, nil, nil
	}
}

func TestMainServesAndDrains(t *testing.T) {
	base, stop, done, out := startMain(t, "-workers", "2", "-queue", "16")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	if !testing.Short() {
		// One real simulation end to end through the wired ServeRunner,
		// kept cheap with the audit configuration.
		cfgJSON, err := json.Marshal(sim.AuditConfig())
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf(`{"workload":"VADD","config":%s}`, cfgJSON)
		rresp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer rresp.Body.Close()
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("run: %d", rresp.StatusCode)
		}
		var rr serve.RunResponse
		if err := json.NewDecoder(rresp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		if rr.TimePS <= 0 || len(rr.Digest) == 0 {
			t.Fatalf("served run looks empty: %+v", rr)
		}
	}

	close(stop) // SIGINT/SIGTERM path
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d:\n%s", code, out)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain within 60s")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("no drain summary in output:\n%s", out)
	}
}

func TestMainBadFlags(t *testing.T) {
	if code := run([]string{"-nope"}, new(bytes.Buffer), new(bytes.Buffer), nil, nil); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	var out bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:http"}, &out, &out, nil, nil); code != 1 {
		t.Fatalf("bad addr exit %d, want 1:\n%s", code, &out)
	}
}
