package experiments

import (
	"reflect"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
)

// TestIdleSkipEquivalence proves the engine's idle skipping is
// observationally invisible: for every workload in the suite, a run with
// skipping enabled produces bit-identical results — cycle counts, elapsed
// time, the complete statistics bundle, and the energy model inputs — to the
// dense reference run that fires every clock edge.
func TestIdleSkipEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	for _, wl := range Workloads() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			dense := RunOneWith(cfg, wl, sim.DynCache, 1, func(m *sim.Machine) {
				m.SetIdleSkip(false)
			})
			if dense.Err != nil {
				t.Fatal(dense.Err)
			}
			skip := RunOneWith(cfg, wl, sim.DynCache, 1, func(m *sim.Machine) {
				m.SetIdleSkip(true)
			})
			if skip.Err != nil {
				t.Fatal(skip.Err)
			}
			if dense.TimePS != skip.TimePS {
				t.Errorf("elapsed time diverged: dense=%d skip=%d ps", dense.TimePS, skip.TimePS)
			}
			if dense.Stats.SMCycles != skip.Stats.SMCycles {
				t.Errorf("SM cycles diverged: dense=%d skip=%d", dense.Stats.SMCycles, skip.Stats.SMCycles)
			}
			if !reflect.DeepEqual(dense.Stats, skip.Stats) {
				t.Errorf("stats diverged:\ndense: %+v\nskip:  %+v", dense.Stats, skip.Stats)
			}
			if dense.Energy != skip.Energy {
				t.Errorf("energy diverged:\ndense: %+v\nskip:  %+v", dense.Energy, skip.Energy)
			}
		})
	}
}
