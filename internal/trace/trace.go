// Package trace records and renders packet-level traces of the partitioned
// execution protocol. It observes every message entering the interconnect
// fabric (noc.Fabric.SetTracer), keeps a bounded ring of events, and renders
// them with packet-aware descriptions — the tool of choice for watching one
// warp's offload round trip (command, RDF, forwarded response, write, ack).
package trace

import (
	"fmt"
	"strings"

	"ndpgpu/internal/core"
	"ndpgpu/internal/timing"
)

// Event is one observed packet.
type Event struct {
	At    timing.PS
	Route string
	Size  int
	Desc  string
	ID    core.OffloadID // zero unless the packet belongs to an offload
	HasID bool
}

// Recorder collects events into a bounded ring buffer.
type Recorder struct {
	max    int
	events []Event
	start  int
	total  int64

	// Filter, when non-nil, drops events it rejects.
	Filter func(Event) bool
}

// NewRecorder builds a recorder holding at most max events (older events are
// discarded first).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = 4096
	}
	return &Recorder{max: max}
}

// Observe implements noc.Tracer.
func (r *Recorder) Observe(now timing.PS, route string, size int, msg any) {
	ev := Event{At: now, Route: route, Size: size, Desc: Describe(msg)}
	if id, ok := offloadID(msg); ok {
		ev.ID, ev.HasID = id, true
	}
	if r.Filter != nil && !r.Filter(ev) {
		return
	}
	r.total++
	if len(r.events) < r.max {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.start] = ev
	r.start = (r.start + 1) % r.max
}

// Total returns how many events were observed (including discarded ones).
func (r *Recorder) Total() int64 { return r.total }

// Events returns the retained events in arrival order.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.events))
	for i := 0; i < len(r.events); i++ {
		out = append(out, r.events[(r.start+i)%len(r.events)])
	}
	return out
}

// String renders the retained events, one per line.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		fmt.Fprintf(&b, "%12d ps  %-12s %4d B  %s\n", ev.At, ev.Route, ev.Size, ev.Desc)
	}
	return b.String()
}

// FilterWarp returns a filter keeping only packets of one offloaded warp.
func FilterWarp(sm, warp int32) func(Event) bool {
	return func(ev Event) bool {
		return ev.HasID && ev.ID.SM == sm && ev.ID.Warp == warp
	}
}

// Describe renders a protocol packet compactly.
func Describe(msg any) string {
	switch m := msg.(type) {
	case *core.CmdPacket:
		return fmt.Sprintf("CMD    sm%d/w%d blk%d regs=%d ld=%d st=%d -> nsu%d",
			m.ID.SM, m.ID.Warp, m.BlockID, len(m.In.Regs), m.NumLD, m.NumST, m.Target)
	case *core.RDFPacket:
		return fmt.Sprintf("RDF    sm%d/w%d seq%d line=%#x -> nsu%d",
			m.ID.SM, m.ID.Warp, m.Seq, m.Access.LineAddr, m.Target)
	case *core.RDFResp:
		src := "dram"
		if m.FromCache {
			src = "gpu-cache"
		}
		return fmt.Sprintf("RDFRSP sm%d/w%d seq%d mask=%#x from=%s",
			m.ID.SM, m.ID.Warp, m.Seq, m.Mask, src)
	case *core.RDFRef:
		return fmt.Sprintf("RDFREF sm%d/w%d seq%d line=%#x (NSU read-only cache)",
			m.ID.SM, m.ID.Warp, m.Seq, m.Access.LineAddr)
	case *core.WTAPacket:
		return fmt.Sprintf("WTA    sm%d/w%d seq%d line=%#x -> nsu%d",
			m.ID.SM, m.ID.Warp, m.Seq, m.Access.LineAddr, m.Target)
	case *core.WritePacket:
		return fmt.Sprintf("WRITE  sm%d/w%d seq%d line=%#x from nsu%d",
			m.ID.SM, m.ID.Warp, m.Seq, m.Access.LineAddr, m.Source)
	case *core.WriteAck:
		return fmt.Sprintf("WACK   sm%d/w%d seq%d", m.ID.SM, m.ID.Warp, m.Seq)
	case *core.InvalPacket:
		return fmt.Sprintf("INVAL  line=%#x home=hmc%d", m.LineAddr, m.HomeHMC)
	case *core.AckPacket:
		return fmt.Sprintf("ACK    sm%d/w%d regs=%d", m.ID.SM, m.ID.Warp, len(m.Out.Regs))
	case *core.ReadReq:
		return fmt.Sprintf("READ   line=%#x", m.LineAddr)
	case *core.ReadResp:
		return fmt.Sprintf("RESP   line=%#x", m.LineAddr)
	case *core.WriteReq:
		return fmt.Sprintf("WRITE  line=%#x (baseline)", m.Access.LineAddr)
	default:
		return fmt.Sprintf("%T", msg)
	}
}

func offloadID(msg any) (core.OffloadID, bool) {
	switch m := msg.(type) {
	case *core.CmdPacket:
		return m.ID, true
	case *core.RDFPacket:
		return m.ID, true
	case *core.RDFResp:
		return m.ID, true
	case *core.RDFRef:
		return m.ID, true
	case *core.WTAPacket:
		return m.ID, true
	case *core.WritePacket:
		return m.ID, true
	case *core.WriteAck:
		return m.ID, true
	case *core.AckPacket:
		return m.ID, true
	default:
		return core.OffloadID{}, false
	}
}
