package sim

import (
	"ndpgpu/internal/config"
	"ndpgpu/internal/fault"
)

// ChaosSchedule is one named fault schedule exercised by the chaos suite.
type ChaosSchedule struct {
	Name string
	Spec string // the -faults DSL string (see fault.Parse)
}

// chaosKnobs tightens the resilience protocol for chaos runs: the default
// 30k-cycle first timeout (~43 us) is tuned for production headroom, far
// longer than the fault windows the pinned schedules open, so the suite
// drops it to 2k cycles (~2.9 us) to force the retry and fallback paths to
// actually fire — including the occasional spurious retry racing a healthy
// completion, which the duplicate-suppression machinery must absorb.
const chaosKnobs = "timeout=2000;retries=3"

// PinnedSchedules returns the four canonical chaos scenarios: a permanently
// severed mesh link, a permanently failed NSU, a frozen vault window, and a
// 1% lossy mesh. Event times land early in every scaled workload's run.
func PinnedSchedules() []ChaosSchedule {
	return []ChaosSchedule{
		{Name: "killed-link", Spec: "linkdown:t=1500000:hmc=2:dim=1;" + chaosKnobs},
		{Name: "failed-nsu", Spec: "nsufail:t=2000000:hmc=3;" + chaosKnobs},
		{Name: "frozen-vault", Spec: "vaultfreeze:t=1000000:hmc=1:vault=5:dur=6000000;" + chaosKnobs},
		{Name: "lossy-mesh", Spec: "drop:p=0.01;seed=11;" + chaosKnobs},
	}
}

// ChaosFaultConfig parses a schedule spec against the config's topology.
func ChaosFaultConfig(cfg config.Config, spec string) (config.FaultConfig, error) {
	return fault.Parse(spec, cfg.NumHMCs, cfg.HMC.NumVaults)
}

// RunChaosOne runs one workload under one mode with the fault schedule
// active and the full audit harness of RunAuditOne: every invariant checker
// enabled (in lossy mode, so legal drops, retransmits, and detours are
// taught to — not hidden from — the conservation audit) and the final memory
// image compared bit-for-bit against the fault-free interp oracle. A passing
// leg therefore proves the resilience protocol masked every injected fault.
func RunChaosOne(cfg config.Config, fc config.FaultConfig, abbr string, mode Mode, scale int) AuditResult {
	cfg.Fault = fc
	return RunAuditOne(cfg, abbr, mode, scale)
}
