// Package analyzer performs the compile-time analysis of §3 of the paper:
// it identifies offload blocks in a kernel, scores them with
//
//	Score = GPUTrafficReduction - OffloadOverhead     (Equation 1)
//
// rewrites the GPU code with OFLD.BEG / OFLD.END brackets, marks the ALU
// instructions that compute memory addresses (executed on the GPU) and the
// remaining ALU instructions with @NSU (executed on the memory stack), and
// generates the corresponding NSU code with the address-calculation
// instructions removed (Figure 3).
//
// Per §3.1, a candidate block never contains scratchpad accesses, barriers,
// or control flow, and never spans basic blocks. Per §4.4, a load whose
// address derives from previously loaded data (an indirect load, e.g.
// B[A[i]]) is carved into its own offload block regardless of score,
// because offloading it avoids fetching entire divergent cache lines
// across the GPU links; back-to-back indirect loads merge into one block
// so a burst of gathers costs a single offload round trip.
package analyzer

import (
	"fmt"

	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
)

// Options tunes the analysis.
type Options struct {
	WordBytes int // bytes moved per thread per LD/ST (default 4)
	RegBytes  int // bytes per transferred register per thread (default 4)
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options { return Options{WordBytes: 4, RegBytes: 4} }

// Block describes one offload block after analysis.
type Block struct {
	ID int

	// GPU-code range [BegPC, EndPC] in the rewritten code, where BegPC is
	// the OFLDBEG instruction and EndPC the OFLDEND.
	BegPC, EndPC int

	// NSUCode is the translated code (Figure 3(b)): OFLDBEG, loads/stores
	// without address operands, the @NSU ALU instructions, OFLDEND.
	NSUCode []isa.Instr

	NumLD, NumST int

	// RegsIn are transferred GPU->NSU in the offload command packet;
	// RegsOut are returned in the acknowledgment packet.
	RegsIn, RegsOut []isa.Reg

	Score    int  // Equation 1 score, in bytes per thread
	Indirect bool // indirect-gather block (§4.4), offloaded regardless of score
}

// NSUInstrs returns the instruction count of the translated block, the
// quantity Table 1 reports (brackets excluded).
func (b *Block) NSUInstrs() int { return len(b.NSUCode) - 2 }

// Program is the analysis result: rewritten GPU code plus block metadata.
type Program struct {
	Kernel *kernel.Kernel // rewritten: Code contains OFLD brackets
	Blocks []*Block
}

// Analyze rewrites the kernel for partitioned execution. The input kernel is
// not modified.
func Analyze(k *kernel.Kernel, opts Options) (*Program, error) {
	if opts.WordBytes == 0 {
		opts = DefaultOptions()
	}
	leaders := findLeaders(k.Code)
	liveIn := liveness(k.Code)

	// Carve candidate regions and decide blocks, on the ORIGINAL code.
	regions := carveRegions(k.Code, leaders)

	// Rewrite: copy instructions, inserting brackets around accepted
	// regions, and remember old->new PC mapping for branch fixup.
	var out []isa.Instr
	pcMap := make([]int, len(k.Code)+1)
	var blocks []*Block
	regIdx := 0
	for pc := 0; pc < len(k.Code); pc++ {
		pcMap[pc] = len(out)
		for regIdx < len(regions) && regions[regIdx].start == pc {
			r := regions[regIdx]
			regIdx++
			blk := buildBlock(k.Code, liveIn, &r, len(blocks), opts)
			// A region rejected for transfer overhead may become profitable
			// once its non-memory tail is dropped (e.g. a reduction whose
			// min-update tail forces loop state through the transfers), so
			// retry with progressively shorter tails.
			for blk == nil && r.end > r.start && !k.Code[r.end].Op.IsMem() {
				r.end--
				blk = buildBlock(k.Code, liveIn, &r, len(blocks), opts)
			}
			if blk == nil {
				continue
			}
			// Tail trim: pull trailing non-memory instructions out of the
			// block while that does not increase the register-transfer
			// cost. A reduction block (loads + accumulate, no store) then
			// returns only its result instead of round-tripping loop
			// state, matching the paper's ~0.4-regs-per-thread transfer
			// averages.
			for r.end > r.start && !k.Code[r.end].Op.IsMem() {
				r2 := region{start: r.start, end: r.end - 1, indirect: r.indirect}
				blk2 := buildBlock(k.Code, liveIn, &r2, blk.ID, opts)
				if blk2 == nil ||
					len(blk2.RegsIn)+len(blk2.RegsOut) > len(blk.RegsIn)+len(blk.RegsOut) {
					break
				}
				r, blk = r2, blk2
			}
			// Emit OFLDBEG.
			beg := isa.New(isa.OFLDBEG)
			beg.BlockID = blk.ID
			blk.BegPC = len(out)
			out = append(out, beg)
			// Emit region body with annotations.
			for i := r.start; i <= r.end; i++ {
				in := k.Code[i]
				in.BlockID = blk.ID
				if gpuExecutable(in.Op) {
					if r.addrCalc[i-r.start] {
						in.AddrCalc = true
					} else {
						in.AtNSU = true
					}
				}
				out = append(out, in)
			}
			end := isa.New(isa.OFLDEND)
			end.BlockID = blk.ID
			blk.EndPC = len(out)
			out = append(out, end)
			blocks = append(blocks, blk)
			pc = r.end // continue after region
			goto nextPC
		}
		out = append(out, k.Code[pc])
	nextPC:
	}
	pcMap[len(k.Code)] = len(out)

	// Fix branch targets.
	for i := range out {
		if out[i].Op == isa.BRA || out[i].Op == isa.BRP {
			out[i].Imm = int64(pcMap[out[i].Imm])
		}
	}

	nk := *k
	nk.Code = out
	if err := nk.Validate(); err != nil {
		return nil, fmt.Errorf("analyzer: rewritten kernel invalid: %w", err)
	}
	return &Program{Kernel: &nk, Blocks: blocks}, nil
}

// findLeaders marks basic-block leader PCs.
func findLeaders(code []isa.Instr) []bool {
	leaders := make([]bool, len(code)+1)
	leaders[0] = true
	for pc, in := range code {
		switch in.Op {
		case isa.BRA, isa.BRP:
			leaders[in.Imm] = true
			if pc+1 <= len(code) {
				leaders[pc+1] = true
			}
		case isa.BAR, isa.EXIT:
			if pc+1 <= len(code) {
				leaders[pc+1] = true
			}
		}
	}
	return leaders
}

// region is a candidate offload region in original-code coordinates.
type region struct {
	start, end int // inclusive
	addrCalc   []bool
	indirect   bool // single indirect load
}

// offloadable reports whether the opcode may appear inside an offload block.
func offloadable(op isa.Opcode) bool {
	switch op.Class() {
	case isa.ClassALU, isa.ClassMem, isa.ClassConst:
		return true
	default:
		return false
	}
}

// gpuExecutable reports whether an in-block instruction can execute on the
// GPU side (ALU work and constant loads; both sides can run them).
func gpuExecutable(op isa.Opcode) bool {
	return op.IsALU() || op.Class() == isa.ClassConst
}

// carveRegions splits the code into maximal candidate regions within basic
// blocks. Two taint scopes drive the cuts:
//
//   - regionTaint: registers derived from loads of the CURRENT region. An
//     address or predicate depending on them cannot be produced by the GPU
//     while the block is offloaded, so the region is cut there.
//   - globalTaint: registers derived from any earlier load. An address
//     depending on them makes the load "indirect" in the §4.4 sense
//     (x = B[A[i]]): the GPU can compute the address (the producing value
//     is on the GPU by then — offloaded blocks return it in the ack), and
//     the load is carved into its own single-instruction offload block to
//     save divergent-fetch bandwidth.
func carveRegions(code []isa.Instr, leaders []bool) []region {
	var regions []region
	start := -1
	regionTaint := map[isa.Reg]bool{}
	globalTaint := map[isa.Reg]bool{}

	flush := func(end int) {
		if start >= 0 && start <= end {
			regions = append(regions, region{start: start, end: end})
		}
		start = -1
		regionTaint = map[isa.Reg]bool{}
	}

	taintStep := func(in isa.Instr, taint map[isa.Reg]bool) {
		if in.Op == isa.LD {
			taint[in.Dst] = true
			return
		}
		if !in.Op.WritesDst() {
			return
		}
		if readsTainted(in, taint) {
			taint[in.Dst] = true
		} else {
			delete(taint, in.Dst)
		}
	}

	for pc := 0; pc < len(code); pc++ {
		if leaders[pc] {
			flush(pc - 1)
			// A loop back-edge may revive region taint; globalTaint stays
			// conservative (never cleared across blocks).
		}
		in := code[pc]
		if !offloadable(in.Op) {
			flush(pc - 1)
			continue
		}
		if start < 0 {
			start = pc
		}
		if in.Op.IsMem() {
			regionHit := sliceTouches(code, start, pc, regionTaint, true)
			globalHit := sliceTouches(code, start, pc, globalTaint, false)
			predRegionTaint := in.Pred != isa.RNone && regionTaint[in.Pred]
			switch {
			case in.Op == isa.LD && (regionHit || globalHit):
				// Indirect load: close the preceding region and emit this
				// load as a §4.4 block. Back-to-back indirect loads merge
				// into one block so a burst of gathers costs one offload
				// round trip instead of one per load.
				flush(pc - 1)
				if k := len(regions) - 1; k >= 0 && regions[k].indirect && regions[k].end == pc-1 {
					regions[k].end = pc
				} else {
					regions = append(regions, region{start: pc, end: pc, indirect: true})
				}
				start = -1
				regionTaint = map[isa.Reg]bool{}
				taintStep(in, globalTaint)
				globalTaint[in.Dst] = true
				continue
			case in.Op == isa.ST && regionHit:
				// Store whose address needs same-region memory data: the
				// GPU cannot generate its WTA inside an offloaded block.
				flush(pc - 1)
				taintStep(in, globalTaint)
				continue
			case predRegionTaint:
				// Mask depends on same-region memory data: restart the
				// region here so the predicate source lands before it.
				flush(pc - 1)
				start = pc
			}
		}
		taintStep(in, regionTaint)
		taintStep(in, globalTaint)
	}
	flush(len(code) - 1)
	return regions
}

func readsTainted(in isa.Instr, taint map[isa.Reg]bool) bool {
	for i := 0; i < in.Op.SrcCount(); i++ {
		if taint[in.Src[i]] {
			return true
		}
	}
	if in.Pred != isa.RNone && taint[in.Pred] {
		return true
	}
	return false
}

// sliceTouches reports whether the backward address slice of the memory op
// at pc (within [start,pc)) depends on tainted data. With inRegionLoads
// set, hitting any in-region load terminates with true (region scope);
// otherwise in-region loads are looked up in the taint map like leaves.
func sliceTouches(code []isa.Instr, start, pc int, taint map[isa.Reg]bool, inRegionLoads bool) bool {
	wanted := map[isa.Reg]bool{code[pc].Src[0]: true}
	for i := pc - 1; i >= start; i-- {
		in := code[i]
		if !in.Op.WritesDst() || !wanted[in.Dst] {
			continue
		}
		if in.Op == isa.LD {
			if inRegionLoads {
				return true // address depends on same-region memory data
			}
			return true // loads always produce memory-derived data
		}
		delete(wanted, in.Dst)
		for s := 0; s < in.Op.SrcCount(); s++ {
			wanted[in.Src[s]] = true
		}
	}
	// Leaves: registers defined before the region.
	for r := range wanted {
		if taint[r] {
			return true
		}
	}
	return false
}

// liveness computes per-instruction live-in register sets (as bitmasks over
// the 64 architectural registers) with a standard backward dataflow over
// the instruction-level CFG.
func liveness(code []isa.Instr) []uint64 {
	n := len(code)
	liveIn := make([]uint64, n)
	use := make([]uint64, n)
	def := make([]uint64, n)
	for pc, in := range code {
		for s := 0; s < in.Op.SrcCount(); s++ {
			use[pc] |= 1 << uint(in.Src[s])
		}
		if in.Pred != isa.RNone {
			use[pc] |= 1 << uint(in.Pred)
		}
		if in.Op.WritesDst() {
			def[pc] = 1 << uint(in.Dst)
		}
	}
	succs := func(pc int) (a, b int) {
		a, b = -1, -1
		switch code[pc].Op {
		case isa.BRA:
			a = int(code[pc].Imm)
		case isa.BRP:
			a, b = int(code[pc].Imm), pc+1
		case isa.EXIT:
		default:
			a = pc + 1
		}
		if a >= n {
			a = -1
		}
		if b >= n {
			b = -1
		}
		return
	}
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			var out uint64
			a, b := succs(pc)
			if a >= 0 {
				out |= liveIn[a]
			}
			if b >= 0 {
				out |= liveIn[b]
			}
			in := use[pc] | (out &^ def[pc])
			if in != liveIn[pc] {
				liveIn[pc] = in
				changed = true
			}
		}
	}
	return liveIn
}

// ctrlRegs collects registers read by control-flow instructions anywhere in
// the program; computation feeding control must stay on the GPU, where all
// control flow executes.
func ctrlRegs(code []isa.Instr) map[isa.Reg]bool {
	regs := map[isa.Reg]bool{}
	for _, in := range code {
		if in.Op == isa.BRP {
			regs[in.Src[0]] = true
		}
	}
	return regs
}

// buildBlock computes annotations, NSU code, register transfers, and the
// score for one region; returns nil if the region should not become a block.
// It may shrink r.end when a GPU-side instruction would need in-region
// memory data (which only the NSU will have).
func buildBlock(code []isa.Instr, liveIn []uint64, r *region, id int, opts Options) *Block {
	ctrl := ctrlRegs(code)
retry:
	numLD, numST := 0, 0
	for i := r.start; i <= r.end; i++ {
		switch code[i].Op {
		case isa.LD:
			numLD++
		case isa.ST:
			numST++
		}
	}
	if numLD+numST == 0 {
		return nil
	}

	n := r.end - r.start + 1
	r.addrCalc = make([]bool, n)

	// GPU-side marking. A register is GPU-needed if it is a memory-op
	// address operand or feeds control flow. Any in-region instruction
	// writing a GPU-needed register is marked GPU-side (addrCalc), and its
	// sources become GPU-needed in turn. The fixpoint is position-blind on
	// purpose: it also catches loop-carried address chains (an induction
	// update after the last store still feeds the next instance's
	// addresses, so it must execute on the GPU).
	// Memory-op predicates join the GPU-needed set alongside addresses:
	// the GPU computes each packet's active thread mask, so it must be
	// able to evaluate the predicate (the NSU evaluates it too; the
	// producer is duplicated to both sides when needed).
	wanted := map[isa.Reg]bool{}
	for i := r.start; i <= r.end; i++ {
		if code[i].Op.IsMem() {
			wanted[code[i].Src[0]] = true
			if code[i].Pred != isa.RNone {
				wanted[code[i].Pred] = true
			}
		}
	}
	for rg := range ctrl {
		wanted[rg] = true
	}
	for changed := true; changed; {
		changed = false
		for i := r.start; i <= r.end; i++ {
			in := code[i]
			if !gpuExecutable(in.Op) || !in.Op.WritesDst() || r.addrCalc[i-r.start] || !wanted[in.Dst] {
				continue
			}
			r.addrCalc[i-r.start] = true
			changed = true
			for s := 0; s < in.Op.SrcCount(); s++ {
				wanted[in.Src[s]] = true
			}
			if in.Pred != isa.RNone {
				wanted[in.Pred] = true
			}
		}
	}

	// A GPU-side instruction must never read in-region memory data: the
	// loaded values exist only on the NSU during offloaded execution. If
	// one does, shrink the region to end just before the first violator.
	// When a loop can re-enter the region, the check is cyclic: a GPU-side
	// read may also see the previous iteration's load results, so the
	// taint set is pre-seeded with every load destination.
	reentrant := false
	for pc, in := range code {
		if (in.Op == isa.BRA || in.Op == isa.BRP) && pc >= r.end && int(in.Imm) <= r.start {
			reentrant = true
			break
		}
	}
	loadDst := map[isa.Reg]bool{}
	if reentrant {
		for i := r.start; i <= r.end; i++ {
			if code[i].Op == isa.LD {
				loadDst[code[i].Dst] = true
			}
		}
	}
	for i := r.start; i <= r.end; i++ {
		in := code[i]
		if r.addrCalc[i-r.start] {
			for s := 0; s < in.Op.SrcCount(); s++ {
				if loadDst[in.Src[s]] {
					if i-1 < r.start {
						return nil
					}
					r.end = i - 1
					goto retry
				}
			}
		}
		if in.Op == isa.LD {
			loadDst[in.Dst] = true
		} else if in.Op.WritesDst() {
			delete(loadDst, in.Dst)
		}
	}

	// NSU-side instruction set: all non-addr-calc instructions, plus any
	// addr-calc instruction whose result is read by an NSU-side
	// instruction (duplicated on both sides). Resolve by reverse scan.
	nsuSide := make([]bool, n)
	neededByNSU := map[isa.Reg]bool{}
	for pass := 0; pass < n; pass++ { // fixpoint; n passes suffice
		changed := false
		neededByNSU = map[isa.Reg]bool{}
		for i := n - 1; i >= 0; i-- {
			in := code[r.start+i]
			include := false
			switch {
			case in.Op.IsMem():
				include = true
			case !r.addrCalc[i]:
				include = true
			case in.Op.WritesDst() && neededByNSU[in.Dst]:
				include = true // duplicated addr-calc
			}
			if include {
				if !nsuSide[i] {
					nsuSide[i] = true
					changed = true
				}
				if in.Op == isa.LD {
					// NSU load reads no data registers (data comes from the
					// read-data buffer) but does evaluate its predicate.
					delete(neededByNSU, in.Dst)
					if in.Pred != isa.RNone {
						neededByNSU[in.Pred] = true
					}
					continue
				}
				if in.Op.WritesDst() {
					delete(neededByNSU, in.Dst)
				}
				srcStart := 0
				if in.Op == isa.ST {
					srcStart = 1 // address register not read on NSU
				}
				for s := srcStart; s < in.Op.SrcCount(); s++ {
					neededByNSU[in.Src[s]] = true
				}
				if in.Pred != isa.RNone {
					neededByNSU[in.Pred] = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// RegsIn: registers read by NSU-side code before definition there.
	defined := map[isa.Reg]bool{}
	var regsIn []isa.Reg
	seenIn := map[isa.Reg]bool{}
	addIn := func(r isa.Reg) {
		if r != isa.RNone && !defined[r] && !seenIn[r] {
			seenIn[r] = true
			regsIn = append(regsIn, r)
		}
	}
	for i := 0; i < n; i++ {
		if !nsuSide[i] {
			continue
		}
		in := code[r.start+i]
		if in.Op == isa.LD {
			addIn(in.Pred)
			defined[in.Dst] = true
			continue
		}
		srcStart := 0
		if in.Op == isa.ST {
			srcStart = 1
		}
		for s := srcStart; s < in.Op.SrcCount(); s++ {
			addIn(in.Src[s])
		}
		if in.Pred != isa.RNone {
			addIn(in.Pred)
		}
		if in.Op.WritesDst() {
			defined[in.Dst] = true
		}
	}

	// RegsOut: NSU-written registers read anywhere outside the region.
	writtenNSU := map[isa.Reg]bool{}
	for i := 0; i < n; i++ {
		in := code[r.start+i]
		if nsuSide[i] && in.Op.WritesDst() {
			// Duplicated addr-calc also executes on the GPU, so its result
			// is already present there; no transfer back needed.
			if !(gpuExecutable(in.Op) && r.addrCalc[i]) {
				writtenNSU[in.Dst] = true
			}
		}
	}
	// RegsOut = NSU-written registers live at the region exit, from a real
	// backward-dataflow liveness over the CFG. This also captures
	// loop-carried uses: a back edge into the region makes accumulators
	// live at the exit automatically.
	var liveOut uint64
	if r.end+1 < len(code) {
		liveOut = liveIn[r.end+1]
	}
	var regsOut []isa.Reg
	for rg := range writtenNSU {
		if liveOut&(1<<uint(rg)) != 0 {
			regsOut = append(regsOut, rg)
		}
	}
	sortRegs(regsOut)

	// Equation 1.
	traffic := (numLD + numST) * opts.WordBytes
	overhead := (len(regsIn) + len(regsOut)) * opts.RegBytes
	score := traffic - overhead
	if !r.indirect && score <= 0 {
		return nil
	}

	// Generate NSU code.
	nsu := []isa.Instr{brk(isa.OFLDBEG, id)}
	for i := 0; i < n; i++ {
		if !nsuSide[i] {
			continue
		}
		in := code[r.start+i]
		switch in.Op {
		case isa.LD:
			t := isa.New(isa.LD)
			t.Dst = in.Dst
			t.Pred, t.PredNeg = in.Pred, in.PredNeg
			t.BlockID = id
			nsu = append(nsu, t)
		case isa.ST:
			t := isa.New(isa.ST)
			t.Src[1] = in.Src[1] // value only; address comes from the WTA buffer
			t.Pred, t.PredNeg = in.Pred, in.PredNeg
			t.BlockID = id
			nsu = append(nsu, t)
		default:
			t := in
			t.BlockID = id
			t.AtNSU = false
			t.AddrCalc = false
			nsu = append(nsu, t)
		}
	}
	nsu = append(nsu, brk(isa.OFLDEND, id))

	return &Block{
		ID:       id,
		NSUCode:  nsu,
		NumLD:    numLD,
		NumST:    numST,
		RegsIn:   regsIn,
		RegsOut:  regsOut,
		Score:    score,
		Indirect: r.indirect,
	}
}

// sortRegs orders a register list for deterministic output.
func sortRegs(rs []isa.Reg) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func brk(op isa.Opcode, id int) isa.Instr {
	in := isa.New(op)
	in.BlockID = id
	return in
}
