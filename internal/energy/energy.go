// Package energy implements the event-based energy model used for
// Figure 10. It follows the paper's §5 methodology: GPUWattch-style
// per-event dynamic energies for the GPU and NSU, the Rambus-derived DRAM
// model (11.8 nJ per 4 KB row activation, 4 pJ/b row-buffer read), 2 pJ/b
// off-chip link energy, and on-die wire energy for a 20 mm x 30 mm GPU.
// Static (leakage + standby) power integrates over the simulated runtime,
// which is how reduced runtime translates into energy savings.
package energy

import (
	"ndpgpu/internal/config"
	"ndpgpu/internal/stats"
)

// Params holds the model's per-event energies (picojoules) and static
// powers (watts).
type Params struct {
	// GPU dynamic.
	GPUInstrPJ float64 // per issued warp instruction (pipeline + RF, 32 lanes)
	L1AccessPJ float64
	L2AccessPJ float64
	WirePJPerB float64 // on-die movement of off-chip-bound data (20x30 mm die)

	// NSU dynamic: simpler core, no MMU/TLB/data cache (§4.5).
	NSUInstrPJ float64

	// Interconnect.
	LinkPJPerB     float64 // 2 pJ/bit SerDes [36] -> 16 pJ/B
	IntraHMCPJPerB float64 // TSV + logic-layer NoC per byte

	// DRAM.
	ActivatePJ  float64 // 11.8 nJ per 4 KB row activation [43][45]
	RowRWPJPerB float64 // 4 pJ/b row-buffer read/write -> 32 pJ/B

	// Static power.
	SMStaticW     float64 // per SM
	L2StaticW     float64 // whole L2 + crossbar
	DRAMStaticW   float64 // per HMC (refresh + standby)
	NSUStaticW    float64 // per NSU, when NDP is enabled
	MemNetStaticW float64 // per HMC: the extra memory-network links (§7.4)
}

// DefaultParams returns the calibrated model constants.
func DefaultParams() Params {
	return Params{
		GPUInstrPJ:     240, // ~7.5 pJ/lane-op across 32 lanes
		L1AccessPJ:     30,
		L2AccessPJ:     65,
		WirePJPerB:     4, // ~0.25 pJ/b/mm x ~16 mm average on-die route
		NSUInstrPJ:     110,
		LinkPJPerB:     16, // 2 pJ/bit
		IntraHMCPJPerB: 4,  // ~0.5 pJ/bit through TSVs and the vault NoC
		ActivatePJ:     11800,
		RowRWPJPerB:    32, // 4 pJ/bit
		SMStaticW:      0.55,
		L2StaticW:      4,
		DRAMStaticW:    1.0,
		NSUStaticW:     0.25,
		MemNetStaticW:  0.3,
	}
}

// Compute fills in the Figure 10 component breakdown for a finished run.
// ndpEnabled selects whether the NSUs and memory network are powered; for
// the baseline they do not exist (or are power-gated, §5).
func Compute(st *stats.Stats, cfg config.Config, p Params, ndpEnabled bool) stats.EnergyBreakdown {
	seconds := float64(st.ElapsedPS) * 1e-12
	lineB := float64(cfg.LineBytes())

	var e stats.EnergyBreakdown

	// GPU: instructions, caches, on-die movement of link traffic, leakage.
	gpuDyn := p.GPUInstrPJ*float64(st.IssuedInstrs) +
		p.L1AccessPJ*float64(st.L1D.Accesses) +
		p.L2AccessPJ*float64(st.L2.Accesses) +
		p.WirePJPerB*float64(st.Traffic[stats.GPULink])
	gpuStatic := (p.SMStaticW*float64(cfg.GPU.NumSMs) + p.L2StaticW) * seconds * 1e12
	e.GPU = gpuDyn + gpuStatic

	// NSU.
	if ndpEnabled {
		e.NSU = p.NSUInstrPJ*float64(st.NSUInstrs) +
			p.NSUStaticW*float64(cfg.NumHMCs)*seconds*1e12
	}

	// Intra-HMC movement between vaults and the logic layer.
	e.IntraHMC = p.IntraHMCPJPerB * float64(st.Traffic[stats.IntraHMC])

	// Off-chip interconnect: GPU links plus (when powered) the memory
	// network, including its per-link standby power.
	offDyn := p.LinkPJPerB * float64(st.Traffic[stats.GPULink]+st.Traffic[stats.MemNet])
	offStatic := 0.0
	if ndpEnabled {
		offStatic = p.MemNetStaticW * float64(cfg.NumHMCs) * seconds * 1e12
	}
	e.OffChip = offDyn + offStatic

	// DRAM: activations, row-buffer transfers, standby.
	e.DRAM = p.ActivatePJ*float64(st.DRAMActivations) +
		p.RowRWPJPerB*lineB*float64(st.DRAMReads+st.DRAMWrites) +
		p.DRAMStaticW*float64(cfg.NumHMCs)*seconds*1e12

	st.Energy = e
	return e
}
