package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Speedups", "workload", "dyn", "cache")
	t.AddFloats("KMN", 1.267, 1.267)
	t.AddFloats("STN", 0.62, 1.02)
	t.AddRow("note", "x")
	return t
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Speedups", "workload", "KMN", "1.267", "0.620"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "workload,dyn,cache" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "KMN,1.267,1.267" {
		t.Fatalf("csv row = %q", lines[1])
	}
	// Short rows pad with empty cells.
	if lines[3] != "note,x," {
		t.Fatalf("padded row = %q", lines[3])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| workload | dyn | cache |") {
		t.Fatalf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Fatalf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "**Speedups**") {
		t.Fatalf("markdown title missing:\n%s", out)
	}
}

func TestRowsCount(t *testing.T) {
	if got := sample().Rows(); got != 3 {
		t.Fatalf("rows = %d", got)
	}
}

// TestAddFloatsRounding pins the %.3f rendering at report boundaries: the
// formatter rounds the stored double correctly, so these cells are stable
// across platforms and Go releases.
func TestAddFloatsRounding(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		want string
	}{
		{"exact half keeps trailing zeros", 0.5, "0.500"},
		{"repeating third truncates down", 1.0 / 3, "0.333"},
		{"repeating two-thirds rounds up", 2.0 / 3, "0.667"},
		{"exact binary tie rounds to even (down)", 2.0625, "2.062"},
		{"exact binary tie rounds to even (up)", 2.6875, "2.688"},
		{"tiny negative keeps its sign", -1e-9, "-0.000"},
		{"rounds up across the integer boundary", 0.9995, "1.000"},
		{"speedup-scale value", 1234.5678, "1234.568"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := New("", "label", "value")
			tb.AddFloats("x", tc.v)
			var buf bytes.Buffer
			if err := tb.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if got := lines[1]; got != "x,"+tc.want {
				t.Fatalf("%v renders as %q, want %q", tc.v, got, "x,"+tc.want)
			}
		})
	}
}

// TestEmptyAndUntitledTables covers degenerate tables every writer must
// handle: no rows, and no title.
func TestEmptyAndUntitledTables(t *testing.T) {
	render := map[string]func(*Table, *bytes.Buffer) error{
		"text":     func(tb *Table, b *bytes.Buffer) error { return tb.WriteText(b) },
		"csv":      func(tb *Table, b *bytes.Buffer) error { return tb.WriteCSV(b) },
		"markdown": func(tb *Table, b *bytes.Buffer) error { return tb.WriteMarkdown(b) },
	}
	wantLines := map[string]int{
		"text":     2, // title + header
		"csv":      1, // header only
		"markdown": 3, // title + header + separator (blank line trimmed)
	}
	for name, fn := range render {
		t.Run("empty/"+name, func(t *testing.T) {
			tb := New("Empty", "a", "b")
			var buf bytes.Buffer
			if err := fn(tb, &buf); err != nil {
				t.Fatal(err)
			}
			lines := 0
			for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
				if strings.TrimSpace(l) != "" {
					lines++
				}
			}
			if lines != wantLines[name] {
				t.Fatalf("empty table renders %d non-blank lines, want %d:\n%s",
					lines, wantLines[name], buf.String())
			}
		})
	}
	t.Run("untitled/text", func(t *testing.T) {
		tb := New("", "a")
		tb.AddRow("1")
		var buf bytes.Buffer
		if err := tb.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 2 || lines[0] != "a" {
			t.Fatalf("untitled text table:\n%s", buf.String())
		}
	})
}

func TestOverlongRowTruncated(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("1", "2", "3", "4")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "3") {
		t.Fatal("overlong cells should be dropped")
	}
}
