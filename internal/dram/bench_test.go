package dram

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/timing"
)

func BenchmarkVaultStreaming(b *testing.B) {
	cfg := config.Default().HMC
	v := NewVault(cfg)
	now := timing.PS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Enqueue(&Request{Bank: i % 16, Row: int64(i / 16)})
		now += 1500
		v.Tick(now)
	}
}
