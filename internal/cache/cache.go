// Package cache implements the GPU's on-chip caches: set-associative,
// LRU-replacement, write-through (Table 2 / §5 of the paper assumes
// write-through GPU caches), with a bounded number of MSHRs.
//
// Caches here track only presence (tags); functional data always lives in
// the vm backing store. That split is safe because the GPU caches are
// write-through: memory always holds the latest GPU-written values, and NSU
// writes invalidate GPU copies (§4.2), so a present line is never stale.
package cache

import (
	"fmt"

	"ndpgpu/internal/config"
	"ndpgpu/internal/stats"
)

type way struct {
	tag   uint64
	valid bool
	used  int64 // LRU stamp
}

// Cache is one set-associative tag array plus its MSHRs.
type Cache struct {
	geom     config.CacheGeom
	sets     [][]way
	setMask  uint64
	lineBits uint
	clock    int64

	// MSHRs: outstanding line fills. A second miss to an in-flight line
	// merges into the existing entry.
	mshr map[uint64]int // lineAddr -> pending request count

	// One-entry memo of the last hit: repeated probes for the same line (the
	// dominant L1I pattern) resolve with two compares instead of a set scan.
	// Any Fill, Invalidate, or Flush drops it, since those can evict the
	// memoized way.
	memoOK   bool
	memoLine uint64
	memoWay  *way

	Stats stats.CacheStats
}

// New builds a cache with the given geometry.
func New(geom config.CacheGeom) *Cache {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("cache: %v", err))
	}
	nsets := geom.Sets()
	sets := make([][]way, nsets)
	backing := make([]way, nsets*geom.Ways)
	for i := range sets {
		sets[i], backing = backing[:geom.Ways], backing[geom.Ways:]
	}
	lineBits := uint(0)
	for 1<<lineBits < geom.LineBytes {
		lineBits++
	}
	return &Cache{
		geom:     geom,
		sets:     sets,
		setMask:  uint64(nsets - 1),
		lineBits: lineBits,
		mshr:     make(map[uint64]int),
	}
}

// Line returns addr rounded down to a line boundary.
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

// setOf hashes the set index by XOR-folding upper address bits, as real GPU
// L2s (and GPGPU-Sim) do to avoid power-of-two stride aliasing.
func (c *Cache) setOf(line uint64) []way {
	idx := line >> c.lineBits
	h := idx ^ (idx >> 10) ^ (idx >> 20)
	return c.sets[h&c.setMask]
}

// Lookup reports whether the line is present, updating LRU state and the
// access statistics. The address may be any byte within the line.
func (c *Cache) Lookup(addr uint64) bool {
	c.clock++
	c.Stats.Accesses++
	line := c.Line(addr)
	if c.memoOK && c.memoLine == line {
		c.memoWay.used = c.clock
		c.Stats.Hits++
		return true
	}
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].used = c.clock
			c.Stats.Hits++
			c.memoOK, c.memoLine, c.memoWay = true, line, &set[i]
			return true
		}
	}
	return false
}

// SkipHits batch-applies n guaranteed-hit lookups whose LRU effect is
// superseded by a later real Lookup to the same lines: the clock and
// access/hit counters advance as if n Lookup calls had hit, but no LRU
// stamps change. Used by the idle-skip fast path, which replays the final
// cycle's lookups for real so the terminal LRU state matches dense ticking.
func (c *Cache) SkipHits(n int64) {
	c.clock += n
	c.Stats.Accesses += n
	c.Stats.Hits += n
}

// Contains reports presence without touching LRU or statistics.
func (c *Cache) Contains(addr uint64) bool {
	line := c.Line(addr)
	if c.memoOK && c.memoLine == line {
		return true
	}
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			c.memoOK, c.memoLine, c.memoWay = true, line, &set[i]
			return true
		}
	}
	return false
}

// Fill inserts the line, evicting the LRU way if needed.
func (c *Cache) Fill(addr uint64) {
	c.memoOK = false
	c.clock++
	line := c.Line(addr)
	set := c.setOf(line)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].used = c.clock // refresh
			return
		}
		if !set[i].valid {
			victim = i
			goto place
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	c.Stats.Evictions++
place:
	set[victim] = way{tag: line, valid: true, used: c.clock}
	c.Stats.Fills++
}

// Invalidate drops the line if present, returning whether it was present.
// Used for the §4.2 coherence mechanism: NSU DRAM writes invalidate GPU
// copies.
func (c *Cache) Invalidate(addr uint64) bool {
	c.memoOK = false
	line := c.Line(addr)
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].valid = false
			c.Stats.Invalidations++
			return true
		}
	}
	return false
}

// MSHRReserve attempts to register an outstanding miss for the line.
// It returns true if the miss can proceed (either merged into an existing
// entry or a fresh entry was available) and whether this is the primary
// miss that must actually fetch from the next level.
func (c *Cache) MSHRReserve(addr uint64) (ok, primary bool) {
	line := c.Line(addr)
	if n, exists := c.mshr[line]; exists {
		c.mshr[line] = n + 1
		return true, false
	}
	if len(c.mshr) >= c.geom.MSHRs {
		c.Stats.MSHRStalls++
		return false, false
	}
	c.mshr[line] = 1
	return true, true
}

// MSHRRelease completes the fill for the line: the line is installed and
// the number of merged requests is returned (0 if no entry existed).
func (c *Cache) MSHRRelease(addr uint64) int {
	line := c.Line(addr)
	n, exists := c.mshr[line]
	if !exists {
		return 0
	}
	delete(c.mshr, line)
	c.Fill(line)
	return n
}

// MSHRInFlight returns the number of in-flight line fills.
func (c *Cache) MSHRInFlight() int { return len(c.mshr) }

// MSHRCapacity returns the configured MSHR entry count, the upper bound on
// MSHRInFlight.
func (c *Cache) MSHRCapacity() int { return c.geom.MSHRs }

// Flush invalidates the entire cache (between-kernel behaviour).
func (c *Cache) Flush() {
	c.memoOK = false
	for _, set := range c.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}
