package config

import "testing"

func TestArchDefaults(t *testing.T) {
	var a ArchConfig
	if a.StackTranslation() {
		t.Error("zero ArchConfig enables stack translation")
	}
	if a.EffStackTLBEntries() != 32 || a.EffStackTLBWays() != 4 || a.EffStackWalkCycles() != 30 {
		t.Errorf("zero-value effective knobs = %d/%d/%d, want 32/4/30",
			a.EffStackTLBEntries(), a.EffStackTLBWays(), a.EffStackWalkCycles())
	}
}

func TestArchValidate(t *testing.T) {
	good := ArchConfig{StackXlat: true, StackTLBEntries: 64, StackTLBWays: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid arch config rejected: %v", err)
	}
	for name, a := range map[string]ArchConfig{
		"negative entries": {StackTLBEntries: -1},
		"negative walk":    {StackWalkCycles: -1},
		"ways beyond sets": {StackXlat: true, StackTLBEntries: 8, StackTLBWays: 3},
		"non-pow2 sets":    {StackXlat: true, StackTLBEntries: 24, StackTLBWays: 4},
	} {
		if err := a.Validate(); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func TestArchOverrideKnobs(t *testing.T) {
	c := Default()
	c.Arch.StackXlat = true
	if err := ApplyOverrides(&c, map[string]float64{
		"arch.stacktlbentries": 64,
		"arch.stackwalkcycles": 12,
	}); err != nil {
		t.Fatal(err)
	}
	if c.Arch.EffStackTLBEntries() != 64 || c.Arch.EffStackWalkCycles() != 12 {
		t.Fatalf("arch overrides not applied: %+v", c.Arch)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("overridden config invalid: %v", err)
	}
}
