// Deterministic sharded parallel execution.
//
// The simulated machine is intrinsically shard-parallel: each memory stack
// (HMC + vaults + NSU) couples to the rest of the system only through the
// memory network, and the GPU's SMs couple only through the crossbar, the
// shared decider/credit state, and functional memory. The executor here
// exploits that as a compute/commit split:
//
//   - compute phase: every shard of a domain ticks concurrently on a
//     persistent worker pool. A shard writes only its own state plus a
//     per-shard outbox of deferred cross-shard effects (fabric sends, credit
//     returns, audit ejects).
//   - commit phase: at the barrier the outboxes replay in fixed shard index
//     order, reproducing exactly the sequence of cross-shard calls serial
//     execution would have made (shard 0 ticks before shard 1 in attach
//     order, and within a shard the outbox preserves program order).
//
// Rare operations that are order-sensitive *within* the compute phase (a
// seeded PRNG draw, an all-or-nothing credit reservation) run through a
// Sequencer, which releases them in shard index order — shard k's operation
// waits until every lower-indexed shard has finished its whole tick, which is
// exactly the point at which serial execution would have reached it.
//
// Three mechanisms keep the per-phase constant factor down without touching
// the determinism contract:
//
//   - Shard fusion (RunFused): the shards of a domain fold into a small
//     number of supershards, each running its members' compute sections in
//     ascending shard-index order. Commit replay and sequenced-operation
//     order are unchanged — a supershard is just the serial loop over a
//     contiguous index range — while barrier participants drop from the
//     shard count to the supershard count.
//   - Quiescent-phase elision (Sharded, SetQuiescent): when at most one
//     shard can do work this phase (all others prove idleness via IdleHint
//     and hold no deferred cross-shard effects), the phase runs inline on
//     the coordinating goroutine in ascending index order — semantically
//     the serial algorithm itself — and no workers are woken. A shard with
//     a pending outbox op is never certified quiescent, so the proof can
//     never elide a barrier that has something to replay.
//   - Spin-then-park wake-ups (Pool): workers watch an atomic phase epoch,
//     spinning briefly before parking on a channel, so back-to-back phases
//     avoid a scheduler round trip per worker per cycle.
//
// All of it is bit-identical to serial execution; TestParallelEquivalence
// proves it the same way TestIdleSkipEquivalence proved idle skipping.
package timing

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// poolSpin bounds how many cooperative yields a worker (or the phase caller)
// spends watching for state changes before parking on a channel. On a
// single-CPU host spinning only steals time from the goroutine being waited
// on, so the pool parks immediately there.
func poolSpin() int {
	if runtime.NumCPU() <= 1 {
		return 0
	}
	return 128
}

// Pool is a persistent worker pool for compute phases. Run dispatches items
// in index order (item i never starts before item j<i has been claimed),
// which the Sequencer's deadlock-freedom argument relies on. The calling
// goroutine participates as a worker, so a Pool of size n uses n-1 background
// goroutines, started lazily on first dispatch.
//
// Phases are published through an atomic epoch counter: Run installs the
// batch, bumps the epoch, and wakes only the workers that have parked;
// workers that are still spinning from the previous phase pick the new epoch
// up without any scheduler interaction.
type Pool struct {
	workers int
	spin    int
	once    sync.Once
	epoch   atomic.Uint64
	cur     atomic.Pointer[batch]
	parked  atomic.Int64
	quit    atomic.Bool
	wake    chan struct{}
}

// batch is one published compute phase. left counts unfinished items; the
// phase caller spins on it briefly and then parks on done (the worker that
// retires the last item signals it only when the caller declared itself
// waiting, so the common fast path sends nothing).
type batch struct {
	n       int
	f       func(int)
	next    atomic.Int64
	left    atomic.Int64
	waiting atomic.Bool
	done    chan struct{}
}

// NewPool returns a pool that runs compute phases on up to `workers`
// goroutines (including the caller). workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, spin: poolSpin()}
}

// Workers returns the configured parallelism degree.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) start() {
	p.wake = make(chan struct{}, p.workers-1)
	for i := 0; i < p.workers-1; i++ {
		go p.worker()
	}
}

// worker is the background loop: spin on the phase epoch, park when nothing
// arrives, drain the current batch when it does.
func (p *Pool) worker() {
	var seen uint64
	for {
		for spun := 0; ; spun++ {
			if e := p.epoch.Load(); e != seen {
				seen = e
				break
			}
			if spun < p.spin {
				runtime.Gosched()
				continue
			}
			// Park. Registering in parked before re-checking the epoch
			// closes the lost-wakeup race: the publisher bumps the epoch
			// and then reads parked, so (seq-cst) at least one side sees
			// the other — either we observe the new epoch here, or the
			// publisher observes us parked and sends a token.
			p.parked.Add(1)
			if p.epoch.Load() == seen {
				<-p.wake
			}
			p.parked.Add(-1)
			spun = 0
		}
		if p.quit.Load() {
			return
		}
		if b := p.cur.Load(); b != nil {
			b.drain()
		}
	}
}

func (b *batch) drain() {
	for {
		i := int(b.next.Add(1) - 1)
		if i >= b.n {
			return
		}
		b.f(i)
		if b.left.Add(-1) == 0 && b.waiting.Load() {
			select {
			case b.done <- struct{}{}:
			default:
			}
		}
	}
}

// Run executes f(0..n-1) across the pool and returns when all calls have
// completed. Items are claimed in index order via a shared counter, so the
// set of started items is always a prefix of 0..n-1. With one worker (or one
// item) it degenerates to a plain serial loop.
func (p *Pool) Run(n int, f func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	p.once.Do(p.start)
	b := &batch{n: n, f: f, done: make(chan struct{}, 1)}
	b.left.Store(int64(n))
	p.cur.Store(b)
	p.epoch.Add(1)
	if parked := p.parked.Load(); parked > 0 {
		need := int64(n - 1)
		if need > parked {
			need = parked
		}
		for i := int64(0); i < need; i++ {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	}
	b.drain() // the caller works too
	for spun := 0; b.left.Load() > 0; spun++ {
		if spun < p.spin {
			runtime.Gosched()
			continue
		}
		b.waiting.Store(true)
		if b.left.Load() == 0 {
			break
		}
		<-b.done
		break
	}
}

// RunFused executes f(0..n-1) folded into `groups` supershards: group g runs
// the contiguous index range [g*n/groups, (g+1)*n/groups) in ascending order
// as one pool item. Because groups are claimed in index order and members run
// ascending within each group, the set of *started* shard indices is always a
// union of complete lower groups plus prefixes — in particular the
// lowest-indexed unfinished shard is always runnable, which preserves the
// Sequencer's deadlock-freedom, and every deterministic ordering (commit
// replay, sequenced operations) is identical to the unfused schedule.
// groups <= 1 (or a serial pool) degenerates to the plain serial loop.
func (p *Pool) RunFused(n, groups int, f func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || groups <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if groups >= n {
		p.Run(n, f)
		return
	}
	p.Run(groups, func(g int) {
		lo, hi := g*n/groups, (g+1)*n/groups
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// Close stops the background workers. The pool must not be used afterwards.
func (p *Pool) Close() {
	if p == nil || p.wake == nil || p.quit.Load() {
		return
	}
	p.quit.Store(true)
	p.epoch.Add(1) // spinners notice the bump and observe quit
	for i := 0; i < cap(p.wake); i++ {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

// Sequencer releases rare order-sensitive operations in shard index order
// during a compute phase. The protocol: every shard calls Finish(k) when its
// tick completes; an operation submitted by shard k with Do(k, f) runs only
// once every shard j < k has finished. Because serial execution ticks shards
// in index order, this reproduces exactly the serial position of f in the
// global operation sequence.
//
// Deadlock-freedom: Pool.Run starts items in index order, so the started set
// is a prefix; with RunFused the same holds at supershard granularity with
// ascending execution inside each supershard, so the lowest-indexed
// unfinished shard is always started (or its group is the next claim) and its
// wait condition (all lower shards finished) already holds. Operations run
// under the Sequencer's lock, which also provides the happens-before edge
// from every lower shard's writes (published by Finish) to the operation
// body.
type Sequencer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	done    []bool
	low     int // lowest shard index not yet finished
	waiters int // goroutines blocked in Do; gates the Finish broadcast
}

// NewSequencer returns a sequencer for phases of up to n shards.
func NewSequencer(n int) *Sequencer {
	s := &Sequencer{done: make([]bool, n)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Begin resets the sequencer for a new compute phase of n shards.
func (s *Sequencer) Begin(n int) {
	s.mu.Lock()
	if n > len(s.done) {
		s.done = make([]bool, n)
	} else {
		for i := 0; i < n; i++ {
			s.done[i] = false
		}
	}
	s.low = 0
	s.mu.Unlock()
}

// Do runs f once every shard with index < k has finished the current phase.
// f executes under the sequencer lock, serializing it against every other
// sequenced operation.
func (s *Sequencer) Do(k int, f func()) {
	s.mu.Lock()
	for s.low < k {
		s.waiters++
		s.cond.Wait()
		s.waiters--
	}
	f()
	s.mu.Unlock()
}

// Finish marks shard k's tick complete, unblocking operations of higher
// shards. Every shard of the phase must call it exactly once. The broadcast
// only happens when some Do is actually blocked — on the hot path (no
// sequenced operation pending) Finish is two uncontended lock operations.
func (s *Sequencer) Finish(k int) {
	s.mu.Lock()
	s.done[k] = true
	for s.low < len(s.done) && s.done[s.low] {
		s.low++
	}
	wake := s.waiters > 0
	s.mu.Unlock()
	if wake {
		s.cond.Broadcast()
	}
}

// Shard is a Ticker whose cross-shard effects are deferred into an outbox
// during Tick and replayed by Commit. Sharded drives a group of them as one
// compute/commit pair.
type Shard interface {
	Ticker
	// Commit replays the shard's deferred cross-shard effects (fabric
	// sends, credit returns, audit ejects) in the order they were
	// generated. Called on the coordinating goroutine, in shard index
	// order, after every shard of the group has finished computing.
	Commit(now PS)
}

// CommitPending is an optional interface a Shard may implement to expose how
// many deferred cross-shard effects it currently holds. The quiescent-phase
// proof treats any shard with pending effects as active, so an empty-outbox
// certificate can never be issued while a send is waiting to replay.
type CommitPending interface {
	PendingCommit() int
}

// Sharded adapts a group of shards to a single domain Ticker: Tick runs the
// compute phase of every shard concurrently on the pool, then commits each
// shard's outbox in index order. It forwards idle hints (min over shards) and
// idle skipping, so a sharded domain skips exactly like its serial
// counterpart.
//
// Two knobs trim the per-phase barrier tax without observable effect:
// SetFusion folds the shards into supershards (fewer barrier participants),
// and SetQuiescent elides the worker dispatch entirely on phases where at
// most one shard can do work (see the package comment).
type Sharded struct {
	pool     *Pool
	shards   []Shard
	hints    []IdleHint      // parallel to shards, nil entries when absent
	pendings []CommitPending // parallel to shards, nil entries when absent
	skippers []IdleSkipper   // shards that batch per-cycle statistics
	hintable bool
	fusion   int  // supershard count for pool dispatch
	quiesce  bool // elide dispatch on provably quiescent phases

	inlinePhases int64 // phases run inline (quiescent or serial-degenerate)
	pooledPhases int64 // phases dispatched to the worker pool
}

// NewSharded groups shards for concurrent execution on pool. Fusion defaults
// to one supershard per shard (no fusion) and quiescent-phase elision to off;
// the machine assembler sets both from the run configuration.
func NewSharded(pool *Pool, shards ...Shard) *Sharded {
	s := &Sharded{pool: pool, shards: shards, hintable: true, fusion: len(shards)}
	for _, sh := range shards {
		h, ok := sh.(IdleHint)
		if !ok {
			s.hintable = false
		}
		s.hints = append(s.hints, h)
		cp, _ := sh.(CommitPending)
		s.pendings = append(s.pendings, cp)
		if sk, ok := sh.(IdleSkipper); ok {
			s.skippers = append(s.skippers, sk)
		}
	}
	return s
}

// SetFusion folds the group into `width` supershards for pool dispatch.
// Values are clamped to [1, len(shards)]; 1 runs every phase inline.
func (s *Sharded) SetFusion(width int) {
	if width < 1 {
		width = 1
	}
	if width > len(s.shards) {
		width = len(s.shards)
	}
	s.fusion = width
}

// SetQuiescent enables or disables quiescent-phase barrier elision.
func (s *Sharded) SetQuiescent(on bool) { s.quiesce = on }

// Phases reports how many compute phases ran inline versus on the pool —
// observability for the scaling tools and the quiescence regression tests.
func (s *Sharded) Phases() (inline, pooled int64) {
	return s.inlinePhases, s.pooledPhases
}

// activeShards counts the shards that could act this phase: a shard is
// active when its idle hint does not prove idleness past now, when it has no
// hint at all, or — regardless of any hint — when it still holds deferred
// cross-shard effects awaiting commit. The last clause is what makes the
// quiescence proof sound: a pending send marks its shard active, forcing the
// phase through the ordinary commit path.
func (s *Sharded) activeShards(now PS) int {
	active := 0
	for i, h := range s.hints {
		if cp := s.pendings[i]; cp != nil && cp.PendingCommit() > 0 {
			active++
			continue
		}
		if h == nil || h.NextWorkAt(now) <= now {
			active++
		}
	}
	return active
}

// Tick implements Ticker: compute phase in parallel, commit phase in shard
// index order. Phases where at most one shard can act (quiescent-phase
// elision) or where fusion folds everything into one supershard run inline on
// the calling goroutine — the serial algorithm itself, so the result is
// identical by construction and no worker wake-up is paid.
func (s *Sharded) Tick(now PS) {
	n := len(s.shards)
	inline := s.pool == nil || s.pool.workers <= 1 || s.fusion <= 1
	if !inline && s.quiesce && s.activeShards(now) < 2 {
		inline = true
	}
	if inline {
		s.inlinePhases++
		for i := 0; i < n; i++ {
			s.shards[i].Tick(now)
		}
	} else {
		s.pooledPhases++
		s.pool.RunFused(n, s.fusion, func(i int) { s.shards[i].Tick(now) })
	}
	for _, sh := range s.shards {
		sh.Commit(now)
	}
}

// NextWorkAt implements IdleHint as the earliest wake time over the group —
// the same value the engine would compute from the shards attached
// individually.
func (s *Sharded) NextWorkAt(now PS) PS {
	if !s.hintable {
		return now
	}
	wake := Never
	for _, h := range s.hints {
		if w := h.NextWorkAt(now); w < wake {
			wake = w
			if wake <= now {
				return wake
			}
		}
	}
	return wake
}

// SkipIdle implements IdleSkipper by forwarding to every shard that batches
// per-cycle statistics.
func (s *Sharded) SkipIdle(cycles int64) {
	for _, sk := range s.skippers {
		sk.SkipIdle(cycles)
	}
}
