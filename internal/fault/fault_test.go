package fault

import (
	"reflect"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/timing"
)

func TestBackoff(t *testing.T) {
	cases := []struct {
		base    int64
		attempt int
		want    int64
	}{
		{100, 0, 100},
		{100, 1, 200},
		{100, 2, 400},
		{100, 3, 800},
		{2000, 0, 2000},
		{2000, 3, 16000},
		{100, -5, 100},     // negative attempts clamp to the first try
		{1, 20, 1 << 16},   // shift clamps at 16
		{1, 1000, 1 << 16}, // far past the clamp
		{30000, 16, 30000 << 16},
	}
	for _, c := range cases {
		if got := Backoff(c.base, c.attempt); got != c.want {
			t.Errorf("Backoff(%d, %d) = %d, want %d", c.base, c.attempt, got, c.want)
		}
	}
}

func TestTotalWindow(t *testing.T) {
	cases := []struct {
		base       int64
		maxRetries int
		want       int64
	}{
		{100, 0, 100},      // single attempt, no retry
		{100, 1, 300},      // 100 + 200
		{100, 3, 1500},     // 100 + 200 + 400 + 800
		{2000, 3, 30000},   // the chaos-suite knobs
		{30000, 3, 450000}, // the defaults
	}
	for _, c := range cases {
		if got := TotalWindow(c.base, c.maxRetries); got != c.want {
			t.Errorf("TotalWindow(%d, %d) = %d, want %d", c.base, c.maxRetries, got, c.want)
		}
	}
	// The NSU abort deadline contract: the total window strictly dominates
	// every single attempt's timeout.
	for a := 0; a <= 3; a++ {
		if TotalWindow(2000, 3) <= Backoff(2000, a) {
			t.Fatalf("TotalWindow does not dominate attempt %d", a)
		}
	}
}

func TestParse(t *testing.T) {
	fc, err := Parse(
		"linkdown:t=2000000:hmc=3:dim=1:dur=500000;"+
			"nsustall:t=1000:hmc=0:dur=9000;"+
			"nsufail:t=5000000:hmc=7;"+
			"vaultfreeze:t=1:hmc=2:vault=15:dur=2;"+
			"drop:p=0.01;corrupt:p=0.001;seed=42;timeout=2000;retries=5",
		8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(fc.Events))
	}
	ld := fc.Events[0]
	if ld.Kind != "linkdown" || ld.AtPS != 2000000 || ld.HMC != 3 || ld.Dim != 1 || ld.DurPS != 500000 {
		t.Errorf("linkdown parsed as %+v", ld)
	}
	vf := fc.Events[3]
	if vf.Kind != "vaultfreeze" || vf.Vault != 15 || vf.DurPS != 2 {
		t.Errorf("vaultfreeze parsed as %+v", vf)
	}
	if fc.DropProb != 0.01 || fc.CorruptProb != 0.001 {
		t.Errorf("probs = %v/%v", fc.DropProb, fc.CorruptProb)
	}
	if fc.Seed != 42 || fc.TimeoutCycles != 2000 || fc.MaxRetries != 5 {
		t.Errorf("knobs = seed %d timeout %d retries %d", fc.Seed, fc.TimeoutCycles, fc.MaxRetries)
	}
	if !fc.Enabled() {
		t.Error("parsed schedule not Enabled")
	}

	// Whitespace and empty items are tolerated.
	fc2, err := Parse(" drop:p=0.5 ; ; ", 8, 16)
	if err != nil || fc2.DropProb != 0.5 {
		t.Errorf("whitespace parse: %v %v", fc2.DropProb, err)
	}

	// rand: expands to n deterministic events that pass validation.
	fr1, err := Parse("rand:seed=9:n=6", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr1.Events) != 6 || fr1.Seed != 9 {
		t.Fatalf("rand parse: %d events, seed %d", len(fr1.Events), fr1.Seed)
	}
	fr2, _ := Parse("rand:seed=9:n=6", 8, 16)
	if !reflect.DeepEqual(fr1, fr2) {
		t.Error("rand schedule is not deterministic for a fixed seed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus:t=1:hmc=0",                      // unknown kind
		"linkdown:hmc=0:dim=0",                 // missing t
		"linkdown:t=x:hmc=0",                   // bad integer
		"linkdown:t=1:hmc=9:dim=0",             // hmc out of range (8 stacks)
		"linkdown:t=1",                         // hmc missing -> -1 out of range
		"nsustall:t=1:hmc=0",                   // stall must be windowed
		"vaultfreeze:t=1:hmc=0:vault=99:dur=5", // vault out of range (16 vaults)
		"vaultfreeze:t=1:hmc=0:vault=0",        // freeze must be windowed
		"drop",                                 // missing p
		"drop:p=1.5",                           // probability out of [0,1]
		"corrupt:p=abc",                        // bad float
		"seed=xyz",                             // bad seed
		"timeout=0",                            // timeout must be positive
		"retries=-1",                           // retries must be positive
		"linkdown:t=1:hmc=0:dim",               // malformed field (no '=')
	}
	for _, spec := range cases {
		if _, err := Parse(spec, 8, 16); err == nil {
			t.Errorf("Parse(%q) accepted a bad schedule", spec)
		}
	}
}

func mkInjector(t *testing.T, spec string) *Injector {
	t.Helper()
	fc, err := Parse(spec, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	return New(fc, 8, 16, 3, false)
}

func TestInjectorWindows(t *testing.T) {
	inj := mkInjector(t,
		"nsustall:t=1000:hmc=2:dur=500;"+
			"vaultfreeze:t=2000:hmc=1:vault=3:dur=100;"+
			"nsufail:t=3000:hmc=4;"+
			"linkdown:t=4000:hmc=0:dim=1:dur=1000")

	if at := inj.NextEventAt(); at != 1000 {
		t.Fatalf("first edge at %d, want 1000", at)
	}
	if inj.NSUStalled(999, 2) {
		t.Error("stalled before the window opens")
	}
	if !inj.NSUStalled(1000, 2) || !inj.NSUStalled(1499, 2) {
		t.Error("not stalled inside the window")
	}
	if inj.NSUStalled(1500, 2) {
		t.Error("still stalled after the window closes")
	}
	if !inj.VaultFrozen(2050, 1, 3) || inj.VaultFrozen(2050, 1, 4) {
		t.Error("vault freeze hit the wrong vault")
	}
	if inj.VaultFrozen(2100, 1, 3) {
		t.Error("vault still frozen after the window")
	}
	if inj.NSUFailed(2999, 4) || !inj.NSUFailed(3000, 4) {
		t.Error("nsufail edge did not fire at t=3000")
	}
	if !inj.NSUFailedApplied(4) {
		t.Error("NSUFailedApplied disagrees with the last Apply")
	}

	v0 := inj.TopoVersion(3999)
	if inj.LinkDead(3999, 0, 1) {
		t.Error("link dead before its event")
	}
	if !inj.LinkDead(4000, 0, 1) {
		t.Error("link alive inside its down window")
	}
	if inj.TopoVersion(4000) == v0 {
		t.Error("topology version did not change on link death")
	}
	if inj.LinkDead(5000, 0, 1) {
		t.Error("link still dead after recovery")
	}
	if !inj.NSUFailed(1<<40, 4) {
		t.Error("nsufail without dur is not permanent")
	}
	if at := inj.NextEventAt(); at != timing.Never {
		t.Errorf("exhausted schedule reports next edge at %d", at)
	}
}

func TestLinkdownCanonicalization(t *testing.T) {
	// Hypercube: the event may name either endpoint; state lives at the
	// lower one. hmc=5 dim=1 is the 5-7 link, canonical slot (5,1).
	inj := mkInjector(t, "linkdown:t=0:hmc=7:dim=1")
	if !inj.LinkDead(0, 5, 1) {
		t.Error("hypercube linkdown not canonicalized to the lower endpoint")
	}
	// Ring: odd dims name the counter-clockwise link out of hmc, which is
	// physical link hmc-1 stored at dim 0.
	fc, err := Parse("linkdown:t=0:hmc=3:dim=1", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ring := New(fc, 8, 16, 2, true)
	if !ring.LinkDead(0, 2, 0) {
		t.Error("ring linkdown not canonicalized to physical link 2")
	}
}

func TestDrawDropDeterminism(t *testing.T) {
	mk := func() *Injector { return mkInjector(t, "drop:p=0.3;corrupt:p=0.1;seed=7") }
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		ad, ac := a.DrawDrop()
		bd, bc := b.DrawDrop()
		if ad != bd || ac != bc {
			t.Fatalf("draw %d diverged between identically-seeded injectors", i)
		}
		if ad && ac {
			t.Fatal("a packet cannot be both dropped and corrupted")
		}
	}
	if a.Drops == 0 || a.Corrupts == 0 {
		t.Errorf("1000 draws at p=0.3/0.1 produced drops=%d corrupts=%d", a.Drops, a.Corrupts)
	}

	// Zero probabilities never drop and consume no PRNG state, so a dormant
	// injector cannot perturb anything through the drop path.
	quiet := mkInjector(t, "nsufail:t=1:hmc=0")
	before := quiet.rng.state
	for i := 0; i < 100; i++ {
		if d, c := quiet.DrawDrop(); d || c {
			t.Fatal("drop with zero probabilities")
		}
	}
	if quiet.rng.state != before {
		t.Error("zero-probability DrawDrop consumed PRNG state")
	}
}

func TestCommitBoard(t *testing.T) {
	inj := mkInjector(t, "nsufail:t=1:hmc=0")
	id := core.OffloadID{SM: 2, Warp: 5}
	if inj.InstanceCommitted(id, 0) {
		t.Fatal("empty board reports a commit")
	}
	inj.CommitInstance(id, 3)
	if !inj.InstanceCommitted(id, 3) {
		t.Fatal("posted commit not visible")
	}
	if inj.InstanceCommitted(id, 2) || inj.InstanceCommitted(id, 4) {
		t.Fatal("commit record matched a different instance")
	}
	inj.ForgetInstance(id)
	if inj.InstanceCommitted(id, 3) {
		t.Fatal("forgotten commit still visible")
	}
}

func TestAbandonBoard(t *testing.T) {
	inj := mkInjector(t, "nsufail:t=1:hmc=0")
	id := core.OffloadID{SM: 1, Warp: 7}
	if inj.InstanceAbandoned(id, 0) {
		t.Fatal("empty board reports an abandon")
	}
	inj.AbandonInstance(id, 4)
	if !inj.InstanceAbandoned(id, 4) {
		t.Fatal("posted abandon not visible")
	}
	if inj.InstanceAbandoned(id, 3) || inj.InstanceAbandoned(id, 5) {
		t.Fatal("abandon record matched a different instance")
	}
	// A later instance of the same warp slot overwrites the record: the
	// board stays bounded by one entry per slot.
	inj.AbandonInstance(id, 9)
	if inj.InstanceAbandoned(id, 4) {
		t.Fatal("overwritten abandon still visible")
	}
	if !inj.InstanceAbandoned(id, 9) {
		t.Fatal("newer abandon not visible")
	}
}

func TestRandomEventsValid(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		evs := RandomEvents(seed, 8, 8, 16)
		if len(evs) != 8 {
			t.Fatalf("seed %d: %d events, want 8", seed, len(evs))
		}
		fc := config.FaultConfig{Events: evs}
		if err := fc.Validate(8, 16); err != nil {
			t.Errorf("seed %d: invalid random schedule: %v", seed, err)
		}
	}
}
