package gpu

import (
	"math/bits"

	"ndpgpu/internal/cache"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
)

// l2ReqKind distinguishes the request types a slice serves.
type l2ReqKind int

const (
	reqRead  l2ReqKind = iota // baseline line fetch
	reqWrite                  // baseline write-through store
	reqRDF                    // RDF cache probe (offloaded load, §4.1.1)
)

// l2Req is one request from an SM to an L2 slice.
type l2Req struct {
	kind l2ReqKind
	line uint64

	// reqRead: completion callback (fills the requesting L1); blockID >= 0
	// attributes the access to an offload block for cache profiling, with
	// words the touched word count.
	onFill func(now timing.PS)
	words  int

	// reqWrite: the write-through packet to forward to DRAM.
	write *core.WriteReq

	// reqRDF: the read-and-forward request to satisfy or forward.
	rdf     *core.RDFPacket
	blockID int // for cache-locality profiling
}

// l2slice is one L2 cache slice: the GPU has one per memory partition (per
// HMC link), each with its own MSHRs, matching the GPGPU-Sim organization
// the paper's Table 2 describes in aggregate.
type l2slice struct {
	g       *GPU
	hmc     int // the memory partition this slice fronts
	tags    *cache.Cache
	queue   []*l2Req
	waiters map[uint64][]func(now timing.PS)
	latency timing.PS // L2 access latency in ps
	perTick int       // requests served per xbar tick
}

func newL2Slice(g *GPU, hmc int, geom config.CacheGeom, latencyPS timing.PS) *l2slice {
	return &l2slice{
		g:       g,
		hmc:     hmc,
		tags:    cache.New(geom),
		waiters: make(map[uint64][]func(now timing.PS)),
		latency: latencyPS,
		perTick: 1,
	}
}

// push enqueues a request.
func (s *l2slice) push(r *l2Req) { s.queue = append(s.queue, r) }

// tick serves up to perTick requests.
func (s *l2slice) tick(now timing.PS) {
	for n := 0; n < s.perTick && len(s.queue) > 0; n++ {
		r := s.queue[0]
		if !s.serve(r, now) {
			return // head blocked (MSHRs full); retry next tick
		}
		s.queue = s.queue[1:]
	}
}

func (s *l2slice) serve(r *l2Req, now timing.PS) bool {
	done := now + s.latency
	switch r.kind {
	case reqRead:
		if s.tags.Contains(r.line) {
			s.tags.Lookup(r.line)
			if r.blockID >= 0 {
				s.g.recordLine(r.blockID, true, r.words)
			}
			r.onFill(done)
			return true
		}
		// Reserve before counting so full-MSHR retries are not
		// double-counted in the statistics.
		ok, primary := s.tags.MSHRReserve(r.line)
		if !ok {
			return false
		}
		s.tags.Lookup(r.line)
		if r.blockID >= 0 {
			s.g.recordLine(r.blockID, false, r.words)
		}
		s.waiters[r.line] = append(s.waiters[r.line], r.onFill)
		if primary {
			req := &core.ReadReq{LineAddr: r.line}
			s.g.fab.SendGPUToHMC(done, s.hmc, req.Size(), req)
		}
		return true

	case reqWrite:
		// Write-through, no-allocate: probe for stats, forward to DRAM.
		s.tags.Lookup(r.line)
		s.g.fab.SendGPUToHMC(done, s.hmc, r.write.Size(), r.write)
		return true

	case reqRDF:
		hit := s.tags.Lookup(r.line)
		s.g.recordLine(r.blockID, hit, bits.OnesCount32(r.rdf.Access.Mask))
		if hit {
			// Serve from the cache: the GPU generates the RDF response
			// itself and ships it to the target NSU (Figure 6(a)) — or a
			// reference, if the NSU's read-only cache holds the line.
			s.g.st.RDFCacheHits++
			msg, size := s.g.shipCachedLine(r.rdf)
			s.g.fab.SendGPUToHMC(done, r.rdf.Target, size, msg)
		} else {
			s.g.fab.SendGPUToHMC(done, s.hmc, r.rdf.Size(), r.rdf)
		}
		return true
	}
	return true
}

// fill completes an outstanding line fetch (a ReadResp arrived).
func (s *l2slice) fill(line uint64, now timing.PS) {
	s.tags.MSHRRelease(line)
	for _, fn := range s.waiters[line] {
		fn(now)
	}
	delete(s.waiters, line)
}

// invalidate drops the line (NSU wrote it, §4.2).
func (s *l2slice) invalidate(line uint64) { s.tags.Invalidate(line) }

// idle reports whether the slice has no queued work or outstanding fills.
func (s *l2slice) idle() bool { return len(s.queue) == 0 && len(s.waiters) == 0 }

// makeRDFResp builds an RDF response with the touched words read from the
// functional memory. Shared by the GPU (cache hits) and exported via the
// hmc package's vault path for misses.
func (g *GPU) makeRDFResp(r *core.RDFPacket) *core.RDFResp {
	return MakeRDFResp(g.mem, r)
}

// MakeRDFResp reads the words covered by the RDF access out of functional
// memory and packages them as an RDF response (Figure 4(c)).
func MakeRDFResp(mem *vm.System, r *core.RDFPacket) *core.RDFResp {
	resp := &core.RDFResp{ID: r.ID, Tag: r.Tag, Seq: r.Seq, Mask: r.Access.Mask, TotalPkts: r.TotalPkts}
	for t := 0; t < core.WarpWidth; t++ {
		if r.Access.Mask&(1<<uint(t)) != 0 {
			addr := r.Access.LineAddr + uint64(r.Access.Offsets[t])*core.WordBytes
			resp.Data[t] = mem.Read32(addr)
		}
	}
	return resp
}

// recordLine feeds the cache-locality profiler if one is attached.
func (g *GPU) recordLine(blockID int, hit bool, words int) {
	if g.rec != nil && blockID >= 0 {
		g.rec.RecordLine(blockID, hit, words)
	}
}
