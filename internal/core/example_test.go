package core_test

import (
	"fmt"

	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
)

// The dynamic controller climbs toward whatever ratio maximizes the
// offload-region instruction throughput it is fed each epoch.
func ExampleDynamic() {
	cfg := config.Default().NDP
	d := core.NewDynamic(cfg, 1)
	peakAt := 0.6
	for epoch := 0; epoch < 40; epoch++ {
		r := d.Ratio()
		throughput := int64(10000 * (1 - (r-peakAt)*(r-peakAt)))
		d.EpochTick(throughput)
	}
	fmt.Printf("converged near %.1f: %v\n", peakAt, d.Ratio() > 0.4 && d.Ratio() < 0.8)
	// Output: converged near 0.6: true
}

// The buffer manager makes reservation all-or-nothing, which is the §4.3
// deadlock-freedom argument: a packet is never sent toward a full buffer.
func ExampleBufferManager() {
	m := core.NewBufferManager(config.Default())
	fmt.Println(m.Reserve(0, 4, 2)) // 1 cmd + 4 read-data + 2 write-addr credits
	m.Return(0, core.CmdBuffer, 1)
	m.Return(0, core.ReadDataBuffer, 4)
	m.Return(0, core.WriteAddrBuffer, 2)
	fmt.Println(m.AllReturned())
	// Output:
	// true
	// true
}

// SelectTarget is the paper's first-instruction majority policy (§4.1.1).
func ExampleSelectTarget() {
	homes := []int{3, 3, 5, 3}
	fmt.Println(core.SelectTarget(homes, 8))
	// Output: 3
}
