package config

import (
	"bytes"
	"testing"
)

func TestApplyOverrides(t *testing.T) {
	c := Default()
	err := ApplyOverrides(&c, map[string]float64{
		"gpu.numsms":        4,
		"nsu.clockmhz":      175,
		"ndp.initratio":     0.25,
		"mem.placementseed": 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.GPU.NumSMs != 4 || c.NSU.ClockMHz != 175 || c.NDP.InitRatio != 0.25 || c.Mem.PlacementSeed != 7 {
		t.Fatalf("overrides not applied: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("overridden config invalid: %v", err)
	}
}

func TestApplyOverridesErrors(t *testing.T) {
	for name, ov := range map[string]map[string]float64{
		"unknown knob":  {"gpu.nosuchknob": 1},
		"fractional sm": {"gpu.numsms": 3.5},
		"huge seed":     {"mem.placementseed": 1e30},
	} {
		c := Default()
		if err := ApplyOverrides(&c, ov); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
	// A legal override of an int knob with a whole-valued float is fine.
	c := Default()
	if err := ApplyOverrides(&c, map[string]float64{"gpu.numsms": 8.0}); err != nil {
		t.Errorf("whole-valued float rejected: %v", err)
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	a := Default()
	b := Default()
	// Same resolved config — independently of how the values got there.
	a.GPU.NumSMs = 4
	a.NSU.ClockMHz = 175
	if err := ApplyOverrides(&b, map[string]float64{"nsu.clockmhz": 175, "gpu.numsms": 4}); err != nil {
		t.Fatal(err)
	}
	ca, err := Canonical(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Canonical(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical bytes differ for identical configs:\n%s\n%s", ca, cb)
	}
	cd, _ := Canonical(Default())
	if bytes.Equal(ca, cd) {
		t.Fatal("canonical bytes identical for different configs")
	}
}

func TestKnownOverridesSortedAndDocumented(t *testing.T) {
	names := KnownOverrides()
	if len(names) == 0 {
		t.Fatal("no override knobs registered")
	}
	for i, n := range names {
		if i > 0 && names[i-1] >= n {
			t.Fatalf("KnownOverrides not sorted at %q", n)
		}
		if OverrideDoc(n) == "" {
			t.Errorf("knob %q has no doc string", n)
		}
	}
}
