package sim

import (
	"bytes"
	"testing"

	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// backendArchs are the non-default architecture backends under test. The
// default ("paper") architecture is pinned separately by the golden-digest
// gate and the pre-existing equivalence suites.
var backendArchs = []string{"coda", "coda-ft", "ndpage"}

// TestBackendAudit is the oracle-differential gate for every architecture
// backend: each arch x mode x workload leg runs with all runtime invariant
// checkers attached and its final memory compared bit-for-bit against the
// reference interpreter. Placement and translation are timing-only, so a
// backend can change when things happen but never what the program computes.
func TestBackendAudit(t *testing.T) {
	wls := []string{"VADD", "BFS", "FWT", "KMN"}
	if testing.Short() {
		wls = []string{"VADD"}
	}
	cfg := AuditConfig()
	for _, arch := range backendArchs {
		acfg := cfg
		acfg.Arch.Backend = arch
		for _, wl := range wls {
			for _, mode := range AuditModes {
				arch, wl, mode := arch, wl, mode
				t.Run(arch+"/"+wl+"/"+mode.Name, func(t *testing.T) {
					r := RunAuditOne(acfg, wl, mode, 1)
					if r.Err != nil {
						t.Fatalf("run: %v", r.Err)
					}
					if !r.MemMatch {
						t.Errorf("final memory diverges from the reference interpreter")
					}
					if r.Violations != 0 {
						t.Errorf("%d invariant violations (first: %s)", r.Violations, r.FirstBad)
					}
				})
			}
		}
	}
}

// TestBackendMemoryInvariance pins the placement-is-timing-only property
// directly: the same workload run under every backend (including the default)
// must end with byte-identical memory, even though the page->stack layouts
// and runtimes differ.
func TestBackendMemoryInvariance(t *testing.T) {
	cfg := smallConfig()
	modes := []Mode{NaiveNDP, DynNDP}
	if testing.Short() {
		modes = modes[:1]
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			ref := runParLeg(t, cfg, "VADD", mode, 1, false)
			for _, arch := range backendArchs {
				acfg := cfg
				acfg.Arch.Backend = arch
				leg := runParLeg(t, acfg, "VADD", mode, 1, false)
				if !bytes.Equal(ref.mem, leg.mem) {
					t.Errorf("%s: final memory differs from the default architecture", arch)
				}
			}
		})
	}
}

// TestBackendParallelEquivalence extends the sharded-executor determinism
// contract to the new backends: with CODA placement skewing page homes and
// NDPage adding per-stack translation queues, a Parallel=4 run must still be
// bit-identical to the serial reference (translation state is per-HMC, and
// only shard i touches HMC i).
func TestBackendParallelEquivalence(t *testing.T) {
	cfg := smallConfig()
	for _, arch := range []string{"coda", "ndpage"} {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			acfg := cfg
			acfg.Arch.Backend = arch
			serial := runParLeg(t, acfg, "VADD", NaiveNDP, 1, false)
			par := runParLeg(t, acfg, "VADD", NaiveNDP, 4, false)
			requireIdentical(t, arch+" VADD/NaiveNDP", serial, par)
		})
	}
}

// TestBackendUnknownRejected: Launch refuses an unknown architecture name
// instead of silently running the default.
func TestBackendUnknownRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Arch.Backend = "no-such-arch"
	mem := vm.New(cfg)
	w, err := workloads.Build("VADD", mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Launch(cfg, w.Kernel, mem, NaiveNDP); err == nil {
		t.Fatal("Launch accepted an unknown architecture backend")
	}
}
