GO ?= go

# staticcheck version `make lint` and CI both use, so local and CI lint agree.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: build test test-short test-race vet lint install-staticcheck check audit chaos bench bench-engine bench-barrier bench-scaling bench-smoke bench-profile bench-history test-parallel test-parallel-fused test-backends test-backends-short golden golden-update serve-test load-test chaos-serve clean

build:
	$(GO) build ./...

# Full suite, including the per-workload simulations and the idle-skip
# bit-identity differential (several minutes).
test:
	$(GO) test ./...

# Unit tests only: skips the full-simulation tests.
test-short:
	$(GO) test -short ./...

# Race detector over the short suite (covers the parallel sweep runner).
test-race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Style gate: gofmt cleanliness, go vet, and staticcheck when it is on PATH
# (CI installs it; locally the target degrades gracefully).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (make install-staticcheck)"; \
	fi

# Install the pinned staticcheck (the version CI runs) into GOBIN.
install-staticcheck:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

# Pre-PR gate: build everything, vet, run the short suite, then the race
# detector over the packages with concurrent test harnesses. Run this (plus
# `make audit` when the memory system or protocol changed) before sending
# a change out.
check: build vet test-short test-backends-short
	$(GO) test -race -short -timeout 20m ./internal/sim ./internal/noc ./internal/timing
	$(GO) test -race -short -run '^TestChaosServe$$' -timeout 15m ./cmd/ndpserve

# Invariant audit: every Table 1 workload under baseline, naive-NDP, and
# dynamic-NDP with all runtime invariant checkers enabled (internal/audit),
# cross-checked bit-for-bit against the reference interpreter. Also exposed
# as `ndpsim -audit`.
audit:
	$(GO) test ./internal/sim -run Audit -v

# Chaos differential suite: every Table 1 workload under every pinned fault
# schedule (killed link, failed NSU, frozen vault, lossy mesh) plus seeded
# random schedules, all three modes, memory cross-checked bit-for-bit against
# the fault-free reference interpreter. The schedules and seeds are pinned in
# internal/sim/chaos.go, so the matrix is fully deterministic. The default
# `make test` runs a representative subset; this is the exhaustive matrix.
chaos:
	NDPGPU_CHAOS_FULL=1 $(GO) test ./internal/sim -run 'Chaos|FaultNoOp' -timeout 45m -v

# Macro benchmark: one full VADD simulation per iteration (see BENCH_pr1.json
# for the recorded before/after numbers).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSingleRunVADD -benchmem -benchtime 5x .

# Micro benchmark: engine edge dispatch, idle skipping on/off.
bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkEngineIdleSkip -benchmem ./internal/timing

# Barrier-tax micro benchmarks: per-phase executor cost over 72 empty shards
# at each fusion width, and quiescent-phase elision on a mostly-idle machine.
# Recorded numbers: BENCH_pr6.json.
bench-barrier:
	$(GO) test -run '^$$' -bench 'BenchmarkPhaseBarrier|BenchmarkQuiescentBatch' -benchmem ./internal/timing

# Parallel-executor scaling curve: serial reference plus the sharded executor
# across a GOMAXPROCS x fusion-width grid, emitted as scaling_curve.json
# (schema ndpgpu-scaling-v1; uploaded as a CI artifact). Results are
# bit-identical across all legs by the determinism contract (see README
# "Parallel execution"); only wall time moves. Recorded numbers:
# BENCH_pr6.json.
bench-scaling:
	$(GO) run ./cmd/ndpreport scaling -out scaling_curve.json
	@echo "scaling_curve.json written"

# Determinism contract of the sharded executor: every workload x mode leg
# bit-identical serial vs parallel, plus audited and chaos legs, under the
# race detector. The fused matrix (fusion widths x quiescence batching) is
# its own target so CI can run the two suites in parallel.
test-parallel:
	$(GO) test -race -run '^TestParallelEquivalence(Audited|Chaos)?$$' -timeout 45m ./internal/sim

test-parallel-fused:
	$(GO) test -race -run '^TestParallelEquivalenceFused' -timeout 45m ./internal/sim

# Architecture-backend suite: the placement/translation policy unit tests plus
# the oracle-differential, memory-invariance, and parallel-equivalence legs
# for every non-default backend (coda, coda-ft, ndpage). The short form runs
# the VADD subset; CI's backends job runs the full matrix.
test-backends:
	$(GO) test -v ./internal/backend
	$(GO) test -run '^TestBackend' -timeout 30m -v ./internal/sim

test-backends-short:
	$(GO) test -short ./internal/backend
	$(GO) test -short -run '^TestBackend' -timeout 10m ./internal/sim

# Golden-digest regression gate: recompute the per-workload x mode statistic
# digests (deterministic) and diff them against the committed file. Any drift
# is a behavior change — either a bug or an intended change that needs
# `make golden-update` plus a PR note explaining the new numbers.
golden:
	$(GO) run ./cmd/ndpreport golden -out /tmp/ndpgpu_golden.json
	$(GO) run ./cmd/ndpreport diff testdata/golden_digests.json /tmp/ndpgpu_golden.json

# Refresh the committed golden digests after an intended behavior change.
golden-update:
	$(GO) run ./cmd/ndpreport golden -out testdata/golden_digests.json
	@echo "testdata/golden_digests.json refreshed; commit it with an explanation."

# Service conformance suite under the race detector: scheduler semantics
# (memoization, coalescing, fairness, backpressure, drain-on-shutdown), the
# HTTP surface, the fuzz corpus as regression inputs, and the short load
# phases. The full golden matrix (TestServedDigestsMatchGolden) is excluded
# by -short; `make test` runs it.
serve-test:
	$(GO) test -race -short -timeout 15m ./internal/serve ./cmd/ndpserve
	$(GO) test -race -short -run 'TestUseServerRoundTrip|TestSweepServerFlag' -timeout 5m ./internal/experiments ./cmd/ndpsweep

# Load-test harness over the full HTTP stack (stub simulator): >=1000
# concurrent in-flight requests with bounded memory, crisp 429 backpressure,
# sustained throughput, and the >=100x memoized-replay speedup. Writes the
# throughput summary CI uploads as an artifact.
load-test:
	NDPSERVE_LOAD_OUT=$(CURDIR)/load_test_summary.json $(GO) test -run '^TestLoadServe$$' -timeout 15m -v ./internal/serve
	@echo "load_test_summary.json written"

# Kill-and-restart chaos harness over the real server binary: concurrent load
# of real simulations, SIGKILL at jittered points, restart on the same -data
# dir, then assert the recovery invariants — every acknowledged result is
# served from the journal cache byte-identical to the committed golden digests
# with zero re-simulation, injected panics/hangs return structured 500s and
# quarantine their key after K failures, and SIGTERM still drains cleanly.
# Writes the recovery summary CI uploads as an artifact. `make check` runs the
# one-round -short form.
chaos-serve:
	NDPSERVE_CHAOS_OUT=$(CURDIR)/chaos_serve_summary.json $(GO) test -race -run '^TestChaosServe$$' -timeout 20m -v ./cmd/ndpserve
	@echo "chaos_serve_summary.json written"

# One-iteration benchmark smoke with the ±25% wall-clock gate and the +10%
# allocs/op gate against the recorded reference (fails only on regressions; a
# faster host just warns). On a host whose fingerprint differs from the
# reference the wall-clock gate is report-only — see `ndpreport benchgate`.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSingleRunVADD$$' -benchmem -benchtime 1x . | tee bench_smoke.txt
	$(GO) run ./cmd/ndpreport benchgate -bench bench_smoke.txt -ref BENCH_pr9.json

# CPU + allocation profiles of the macro benchmark, for chasing wake-wheel
# and allocator regressions. View with `go tool pprof bench_cpu.pprof`.
bench-profile:
	$(GO) test -run '^$$' -bench 'BenchmarkSingleRunVADD$$' -benchmem -benchtime 3x \
		-cpuprofile bench_cpu.pprof -memprofile bench_mem.pprof .
	@echo "wrote bench_cpu.pprof bench_mem.pprof (go tool pprof <file>)"

# Trend table across every recorded BENCH_*.json.
bench-history:
	$(GO) run ./cmd/ndpreport bench-history

clean:
	$(GO) clean ./...
