package vm

import (
	"testing"
	"testing/quick"

	"ndpgpu/internal/config"
)

func newSys(t *testing.T) *System {
	t.Helper()
	return New(config.Default())
}

func TestAllocPageAligned(t *testing.T) {
	s := newSys(t)
	a := s.Alloc(100)
	b := s.Alloc(100)
	if a%4096 != 0 || b%4096 != 0 {
		t.Fatalf("allocations not page aligned: %#x %#x", a, b)
	}
	if b <= a {
		t.Fatalf("allocations overlap: %#x %#x", a, b)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := newSys(t)
	base := s.Alloc(4096)
	s.Write32(base+8, 0xdeadbeef)
	if got := s.Read32(base + 8); got != 0xdeadbeef {
		t.Fatalf("Read32 = %#x", got)
	}
	s.WriteF32(base+12, 3.5)
	if got := s.ReadF32(base + 12); got != 3.5 {
		t.Fatalf("ReadF32 = %v", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	s := newSys(t)
	s.Alloc(128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for OOB read")
		}
	}()
	s.Read32(1 << 40)
}

func TestNullAccessPanics(t *testing.T) {
	s := newSys(t)
	s.Alloc(128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for address 0")
		}
	}()
	s.Read32(0)
}

func TestPlacementDeterministic(t *testing.T) {
	c := config.Default()
	s1, s2 := New(c), New(c)
	a1, a2 := s1.Alloc(1<<20), s2.Alloc(1<<20)
	if a1 != a2 {
		t.Fatalf("allocators disagree: %#x %#x", a1, a2)
	}
	for off := uint64(0); off < 1<<20; off += 4096 {
		if s1.HMCOf(a1+off) != s2.HMCOf(a2+off) {
			t.Fatalf("placement not deterministic at offset %#x", off)
		}
	}
}

func TestPlacementCoversAllHMCs(t *testing.T) {
	s := newSys(t)
	base := s.Alloc(1 << 20) // 256 pages
	seen := make(map[int]bool)
	for off := uint64(0); off < 1<<20; off += 4096 {
		h := s.HMCOf(base + off)
		if h < 0 || h >= 8 {
			t.Fatalf("HMC %d out of range", h)
		}
		seen[h] = true
	}
	if len(seen) != 8 {
		t.Fatalf("random placement used %d of 8 HMCs", len(seen))
	}
}

func TestSamePageSameHMC(t *testing.T) {
	s := newSys(t)
	base := s.Alloc(8192)
	h := s.HMCOf(base)
	for off := uint64(0); off < 4096; off += 128 {
		if s.HMCOf(base+off) != h {
			t.Fatalf("page split across HMCs at offset %d", off)
		}
	}
}

func TestDecodeFields(t *testing.T) {
	s := newSys(t)
	base := s.Alloc(1 << 16)
	loc := s.Decode(base)
	if loc.Vault != 0 || loc.Bank != int(base>>11)&15 {
		t.Fatalf("unexpected decode at base: %+v", loc)
	}
	// Consecutive lines hit consecutive vaults.
	l0 := s.Decode(base)
	l1 := s.Decode(base + 128)
	if l1.Vault != (l0.Vault+1)%16 {
		t.Fatalf("line interleaving broken: %d -> %d", l0.Vault, l1.Vault)
	}
}

func TestDecodeRanges(t *testing.T) {
	s := newSys(t)
	base := s.Alloc(1 << 20)
	f := func(off uint32) bool {
		a := base + uint64(off)%(1<<20)
		loc := s.Decode(a)
		return loc.HMC >= 0 && loc.HMC < 8 &&
			loc.Vault >= 0 && loc.Vault < 16 &&
			loc.Bank >= 0 && loc.Bank < 16 &&
			loc.Row >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineAddr(t *testing.T) {
	s := newSys(t)
	base := s.Alloc(4096)
	if got := s.LineAddr(base + 200); got != base+128 {
		t.Fatalf("LineAddr = %#x, want %#x", got, base+128)
	}
}

func TestPlacePageOverride(t *testing.T) {
	s := newSys(t)
	base := s.Alloc(4096)
	for h := 0; h < 8; h++ {
		s.PlacePage(base, h)
		if got := s.HMCOf(base); got != h {
			t.Fatalf("PlacePage(%d) -> HMCOf = %d", h, got)
		}
	}
}

func TestSameRowSharesBankAndRow(t *testing.T) {
	s := newSys(t)
	base := s.Alloc(1 << 20)
	// Two addresses 32 KB apart in the same vault/bank position differ in row.
	l0 := s.Decode(base)
	l1 := s.Decode(base + 1<<15)
	if l0.Vault != l1.Vault || l0.Bank != l1.Bank {
		t.Fatalf("expected same vault/bank: %+v vs %+v", l0, l1)
	}
	if l0.Row == l1.Row {
		t.Fatal("expected different rows 32KB apart")
	}
}
