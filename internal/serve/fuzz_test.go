package serve

import (
	"encoding/json"
	"testing"
)

// FuzzParseRunRequest: arbitrary bytes must never panic the parser, and any
// accepted request must canonicalize stably — re-marshaling the wire struct
// (which re-orders override keys) and re-parsing must reproduce the same
// cache key. This is the property the memoization cache and every coalescing
// client depend on.
func FuzzParseRunRequest(f *testing.F) {
	seeds := []string{
		`{"workload":"VADD"}`,
		`{"workload":"BFS","mode":"dyn","scale":2,"seed":7}`,
		`{"workload":"VADD","mode":"static=0.5"}`,
		`{"workload":"VADD","mode":"dyncache","overrides":{"gpu.numsms":8,"nsu.clockmhz":175}}`,
		`{"workload":"KMN","mode":"naive","faults":"drop:p=0.01;seed=3"}`,
		`{"workload":"STCL","faults":"vaultfreeze:t=1000000:hmc=1:vault=5:dur=6000000;timeout=2000;retries=3"}`,
		`{"workload":"VADD","mode":"morecore","client":"alice"}`,
		`{"workload":"NOPE"}`,
		`{"workload":`,
		`{"workload":"VADD","overrides":{"gpu.numsms":-3}}`,
		`{"workload":"VADD","overrides":{"bogus.knob":1}}`,
		`{"workload":"VADD","scale":99999999}`,
		`{"workload":"VADD","config":{"Bogus":1}}`,
		`{"workload":"VADD"} trailing`,
		`[]`,
		`null`,
		`{"workload":"VADD","mode":"static=nan"}`,
		`{"workload":"VADD","overrides":{"gpu.numsms":1e100}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRunRequest(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if len(req.Key) != 64 {
			t.Fatalf("accepted request has malformed key %q", req.Key)
		}
		// Round-trip: decode the original wire form, re-marshal (JSON sorts
		// map keys, permuting override order), re-parse, compare keys.
		var rr RunRequest
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatalf("ParseRunRequest accepted what json.Unmarshal rejects: %v", err)
		}
		re, err := json.Marshal(rr)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		req2, err := ParseRunRequest(re)
		if err != nil {
			t.Fatalf("re-marshaled request rejected: %v\noriginal: %q\nre-marshaled: %q", err, data, re)
		}
		if req2.Key != req.Key {
			t.Fatalf("key changed across re-serialization:\noriginal: %q -> %s\nre-marshaled: %q -> %s",
				data, req.Key, re, req2.Key)
		}
		// A parsed request is always internally consistent.
		if req.Scale < 0 || req.Scale > MaxScale {
			t.Fatalf("accepted out-of-range scale %d", req.Scale)
		}
		if err := req.Cfg.Validate(); err != nil {
			t.Fatalf("accepted invalid config: %v", err)
		}
	})
}
