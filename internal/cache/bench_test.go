package cache

import (
	"testing"

	"ndpgpu/internal/config"
)

func BenchmarkLookupHit(b *testing.B) {
	c := New(config.Default().GPU.L1D)
	c.Fill(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(0x1000)
	}
}

func BenchmarkLookupMissFill(b *testing.B) {
	c := New(config.Default().GPU.L2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) * 128
		if !c.Lookup(addr) {
			c.Fill(addr)
		}
	}
}

func BenchmarkMSHRReserveRelease(b *testing.B) {
	c := New(config.Default().GPU.L1D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%32) * 128
		if ok, _ := c.MSHRReserve(addr); ok {
			c.MSHRRelease(addr)
		}
	}
}
