// Package isa defines the virtual instruction set executed by both the GPU
// SMs and the NSUs (Near-data processing SIMD Units).
//
// The ISA is a small PTX-like register machine. Registers are per-thread
// 64-bit values; memory is accessed in 4-byte words. Floating point uses
// float32 semantics on the low 32 bits of a register. Per-thread control
// divergence is expressed with predicated execution (every instruction can
// carry a predicate register); branches must be warp-uniform, which matches
// the paper's requirement that offload blocks never span basic blocks.
//
// Two pseudo-instructions, OFLDBEG and OFLDEND, bracket offload blocks
// (Figure 3 of the paper). They are inserted by the static analyzer in
// internal/analyzer, never written by hand in workloads.
package isa

import "fmt"

// Reg names a per-thread register. RNone marks an unused operand slot.
type Reg int16

// RNone is the absent-register sentinel.
const RNone Reg = -1

// NumRegs is the architectural register count per thread.
const NumRegs = 64

// InstrBytes is the encoded size of one instruction, used for instruction
// cache footprints and I-cache utilization accounting (Figure 11).
const InstrBytes = 8

// Opcode enumerates the instruction set.
type Opcode uint8

// Instruction opcodes.
const (
	NOP Opcode = iota

	// Data movement and integer ALU. Register-register forms read Src[0]
	// and Src[1]; immediate forms read Src[0] and Imm.
	MOV  // Dst = Src0
	MOVI // Dst = Imm
	ADD  // Dst = Src0 + Src1
	ADDI // Dst = Src0 + Imm
	SUB  // Dst = Src0 - Src1
	MUL  // Dst = Src0 * Src1
	MULI // Dst = Src0 * Imm
	MAD  // Dst = Src0*Src1 + Src2
	AND  // Dst = Src0 & Src1
	ANDI // Dst = Src0 & Imm
	OR   // Dst = Src0 | Src1
	XOR  // Dst = Src0 ^ Src1
	SHL  // Dst = Src0 << Src1
	SHLI // Dst = Src0 << Imm
	SHR  // Dst = Src0 >> Src1 (logical)
	SHRI // Dst = Src0 >> Imm (logical)
	MIN  // Dst = min(Src0, Src1) signed
	MAX  // Dst = max(Src0, Src1) signed

	// Float32 ALU (low 32 bits of the registers).
	FADD // Dst = Src0 + Src1
	FSUB // Dst = Src0 - Src1
	FMUL // Dst = Src0 * Src1
	FDIV // Dst = Src0 / Src1
	FMA  // Dst = Src0*Src1 + Src2
	FMIN // Dst = min(Src0, Src1)
	FMAX
	FABS  // Dst = |Src0|
	FSQRT // Dst = sqrt(Src0)
	I2F   // Dst = float32(int64(Src0))
	F2I   // Dst = int64(float32(Src0))

	// Comparison: Dst = Cmp(Src0, Src1) ? 1 : 0.
	SETP
	// Select: Dst = Src2 != 0 ? Src0 : Src1.
	SEL

	// Global memory: 4-byte word at [Src0 + Imm].
	LD // Dst = mem[Src0+Imm]
	ST // mem[Src0+Imm] = Src1
	// Constant memory (read-only, cached on both GPU and NSU — Table 2
	// gives the NSU a 4 KB constant cache, so LDC never becomes RDF
	// traffic and may appear freely inside offload blocks).
	LDC // Dst = const[Src0+Imm]

	// Scratchpad ("shared") memory, excluded from offload blocks (§3.1).
	LDS // Dst = smem[Src0+Imm]
	STS // smem[Src0+Imm] = Src1

	// Control flow. Targets are absolute instruction indices in Imm.
	BRA // unconditional branch
	BRP // branch if Src0 != 0 (must be warp-uniform)
	BAR // CTA-wide barrier, excluded from offload blocks (§3.1)
	EXIT

	// Offload block brackets, inserted by the analyzer (§3.2).
	OFLDBEG // BlockID identifies the block; begins an offload block
	OFLDEND // ends the block

	numOpcodes
)

var opNames = [...]string{
	NOP: "nop", MOV: "mov", MOVI: "movi", ADD: "add", ADDI: "addi", SUB: "sub",
	MUL: "mul", MULI: "muli", MAD: "mad", AND: "and", ANDI: "andi", OR: "or",
	XOR: "xor", SHL: "shl", SHLI: "shli", SHR: "shr", SHRI: "shri",
	MIN: "min", MAX: "max",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FMA: "fma",
	FMIN: "fmin", FMAX: "fmax", FABS: "fabs", FSQRT: "fsqrt", I2F: "i2f", F2I: "f2i",
	SETP: "setp", SEL: "sel",
	LD: "ld", ST: "st", LDC: "ldc", LDS: "lds", STS: "sts",
	BRA: "bra", BRP: "brp", BAR: "bar", EXIT: "exit",
	OFLDBEG: "ofld.beg", OFLDEND: "ofld.end",
}

// String implements fmt.Stringer.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// CmpOp is the comparison operator of a SETP instruction.
type CmpOp uint8

// Comparison operators. The F-prefixed ones compare float32 values.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT // signed
	CmpLE
	CmpGT
	CmpGE
	CmpFLT
	CmpFLE
	CmpFGT
	CmpFGE
	CmpFEQ
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge", "flt", "fle", "fgt", "fge", "feq"}

// String implements fmt.Stringer.
func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// Instr is one decoded instruction.
type Instr struct {
	Op  Opcode
	Dst Reg
	Src [3]Reg
	Imm int64
	Cmp CmpOp

	// Predication: if Pred != RNone, the instruction executes only in
	// threads where (reg[Pred] != 0) != PredNeg.
	Pred    Reg
	PredNeg bool

	// Offload annotations, filled by the static analyzer.
	BlockID  int  // for OFLDBEG/OFLDEND: offload block index; else -1
	AtNSU    bool // ALU op marked @NSU: skipped on GPU when block is offloaded
	AddrCalc bool // ALU op on the address slice: stays on GPU, removed from NSU code
}

// New returns an instruction with no predicate and no offload annotations.
func New(op Opcode) Instr {
	return Instr{Op: op, Dst: RNone, Src: [3]Reg{RNone, RNone, RNone}, Pred: RNone, BlockID: -1}
}

// Class groups opcodes by execution resource.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota
	ClassMem
	ClassConst
	ClassSmem
	ClassCtrl
	ClassOffload
)

// Class returns the opcode's class.
func (o Opcode) Class() Class {
	switch o {
	case LD, ST:
		return ClassMem
	case LDC:
		return ClassConst
	case LDS, STS:
		return ClassSmem
	case BRA, BRP, BAR, EXIT:
		return ClassCtrl
	case OFLDBEG, OFLDEND:
		return ClassOffload
	default:
		return ClassALU
	}
}

// IsALU reports whether the opcode executes on the ALU pipeline (including
// moves and comparisons).
func (o Opcode) IsALU() bool { return o.Class() == ClassALU }

// IsMem reports whether the opcode accesses global memory.
func (o Opcode) IsMem() bool { return o.Class() == ClassMem }

// WritesDst reports whether the opcode writes its Dst register.
func (o Opcode) WritesDst() bool {
	switch o {
	case NOP, ST, STS, BRA, BRP, BAR, EXIT, OFLDBEG, OFLDEND:
		return false
	default:
		return true
	}
}

// SrcCount returns how many Src operand slots the opcode reads.
func (o Opcode) SrcCount() int {
	switch o {
	case NOP, MOVI, BRA, BAR, EXIT, OFLDBEG, OFLDEND:
		return 0
	case MOV, ADDI, MULI, ANDI, SHLI, SHRI, FABS, FSQRT, I2F, F2I, LD, LDC, LDS, BRP:
		return 1
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, MIN, MAX,
		FADD, FSUB, FMUL, FDIV, FMIN, FMAX, SETP, ST, STS:
		return 2
	case MAD, FMA, SEL:
		return 3
	default:
		return 0
	}
}

// HasImm reports whether the opcode consumes its immediate field as data
// (address offset, immediate operand, or branch target).
func (o Opcode) HasImm() bool {
	switch o {
	case MOVI, ADDI, MULI, ANDI, SHLI, SHRI, LD, ST, LDC, LDS, STS, BRA, BRP:
		return true
	default:
		return false
	}
}

// String disassembles the instruction.
func (in Instr) String() string {
	s := in.Op.String()
	if in.Op == SETP {
		s += "." + in.Cmp.String()
	}
	if in.AtNSU {
		s += "@NSU"
	}
	if in.AddrCalc {
		s += "@ADDR"
	}
	out := s
	switch {
	case in.Op == LD || in.Op == LDC || in.Op == LDS:
		out = fmt.Sprintf("%s r%d, [r%d+%d]", s, in.Dst, in.Src[0], in.Imm)
	case in.Op == ST || in.Op == STS:
		out = fmt.Sprintf("%s [r%d+%d], r%d", s, in.Src[0], in.Imm, in.Src[1])
	case in.Op == BRA:
		out = fmt.Sprintf("%s %d", s, in.Imm)
	case in.Op == BRP:
		out = fmt.Sprintf("%s r%d, %d", s, in.Src[0], in.Imm)
	case in.Op == OFLDBEG || in.Op == OFLDEND:
		out = fmt.Sprintf("%s blk%d", s, in.BlockID)
	case in.Op.WritesDst():
		out = fmt.Sprintf("%s r%d", s, in.Dst)
		for i := 0; i < in.Op.SrcCount(); i++ {
			out += fmt.Sprintf(", r%d", in.Src[i])
		}
		if in.Op.HasImm() {
			out += fmt.Sprintf(", %d", in.Imm)
		}
	}
	if in.Pred != RNone {
		neg := ""
		if in.PredNeg {
			neg = "!"
		}
		out = fmt.Sprintf("@%sr%d %s", neg, in.Pred, out)
	}
	return out
}

// Validate checks structural invariants: operand registers in range, branch
// targets within [0, codeLen), memory ops with an address register.
func (in Instr) Validate(codeLen int) error {
	checkReg := func(r Reg, what string) error {
		if r == RNone {
			return nil
		}
		if r < 0 || int(r) >= NumRegs {
			return fmt.Errorf("%s register r%d out of range", what, r)
		}
		return nil
	}
	if in.Op.WritesDst() {
		if in.Dst == RNone {
			return fmt.Errorf("%v: missing destination", in.Op)
		}
		if err := checkReg(in.Dst, "dst"); err != nil {
			return err
		}
	}
	for i := 0; i < in.Op.SrcCount(); i++ {
		if in.Src[i] == RNone {
			return fmt.Errorf("%v: missing source operand %d", in.Op, i)
		}
		if err := checkReg(in.Src[i], "src"); err != nil {
			return err
		}
	}
	if err := checkReg(in.Pred, "pred"); err != nil {
		return err
	}
	if in.Op == BRA || in.Op == BRP {
		if in.Imm < 0 || in.Imm >= int64(codeLen) {
			return fmt.Errorf("%v: branch target %d outside code [0,%d)", in.Op, in.Imm, codeLen)
		}
	}
	return nil
}
