package sim

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// chaosFull reports whether the exhaustive matrix — every workload x mode
// leg under every pinned schedule, plus per-workload random schedules —
// should run. The default `go test` run keeps a representative subset so the
// package stays inside the test timeout on small machines; `make chaos` sets
// the variable and raises the timeout.
func chaosFull() bool { return os.Getenv("NDPGPU_CHAOS_FULL") != "" }

func chaosWorkloads(t *testing.T) []string {
	if chaosFull() {
		return workloads.Abbrs()
	}
	if testing.Short() {
		return []string{"VADD"}
	}
	return []string{"VADD", "BFS", "FWT"}
}

// chaosAgg accumulates resilience counters across one schedule's legs.
type chaosAgg struct {
	mu        sync.Mutex
	timeouts  int64
	retries   int64
	fallbacks int64
	quarant   int64
	rerouted  int64
	dropped   int64
}

func (a *chaosAgg) add(r AuditResult) {
	if r.Stats == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.timeouts += r.Stats.OffloadTimeouts
	a.retries += r.Stats.OffloadRetries
	a.fallbacks += r.Stats.FallbackBlocks
	a.quarant += r.Stats.QuarantinedNSUs
	a.rerouted += r.Stats.ReroutedHops + r.Stats.RouteUnreachable
	a.dropped += r.Stats.DroppedPackets + r.Stats.CorruptedPackets
}

func checkChaosLeg(t *testing.T, r AuditResult) {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("chaos run failed: %v", r.Err)
	}
	if r.Violations != 0 {
		t.Fatalf("%d invariant violation(s); first: %s", r.Violations, r.FirstBad)
	}
	if !r.MemMatch {
		t.Fatalf("final memory differs from the fault-free interp oracle")
	}
}

// TestChaosSuite is the chaos differential harness: workloads run to
// completion under deterministic fault schedules with every invariant
// checker enabled, and the final memory image must stay bit-identical to
// the fault-free interp oracle — the injected faults must be fully masked
// by retries, host fallback, and rerouting. Per pinned schedule the suite
// also asserts that the faults actually perturbed the run (nonzero
// resilience counters), so a silently inert injector cannot pass.
func TestChaosSuite(t *testing.T) {
	cfg := AuditConfig()
	wls := chaosWorkloads(t)
	for _, sched := range PinnedSchedules() {
		sched := sched
		t.Run(sched.Name, func(t *testing.T) {
			fc, err := ChaosFaultConfig(cfg, sched.Spec)
			if err != nil {
				t.Fatalf("bad schedule %q: %v", sched.Spec, err)
			}
			agg := &chaosAgg{}
			t.Run("legs", func(t *testing.T) {
				for _, abbr := range wls {
					for _, mode := range AuditModes {
						abbr, mode := abbr, mode
						t.Run(abbr+"/"+mode.Name, func(t *testing.T) {
							t.Parallel()
							r := RunChaosOne(cfg, fc, abbr, mode, 1)
							checkChaosLeg(t, r)
							agg.add(r)
						})
					}
				}
			})
			if t.Failed() || testing.Short() {
				return
			}
			// The schedule must have exercised its recovery path somewhere
			// in the matrix; these sums are deterministic for a fixed leg set.
			switch sched.Name {
			case "killed-link":
				if agg.rerouted == 0 {
					t.Errorf("killed link produced no rerouted or unreachable packets")
				}
			case "failed-nsu":
				if agg.timeouts == 0 || agg.fallbacks == 0 || agg.quarant == 0 {
					t.Errorf("failed NSU produced timeouts=%d fallbacks=%d quarantined=%d; want all nonzero",
						agg.timeouts, agg.fallbacks, agg.quarant)
				}
			case "frozen-vault":
				if agg.timeouts == 0 || agg.retries == 0 {
					t.Errorf("frozen vault produced timeouts=%d retries=%d; want both nonzero",
						agg.timeouts, agg.retries)
				}
			case "lossy-mesh":
				if agg.dropped == 0 {
					t.Errorf("1%% lossy mesh dropped no packets")
				}
				if agg.timeouts+agg.retries+agg.fallbacks == 0 {
					t.Errorf("lossy mesh triggered no protocol recovery")
				}
			}
		})
	}

	// Random seeded schedules: one deterministic draw per workload.
	if testing.Short() {
		return
	}
	t.Run("random", func(t *testing.T) {
		modes := AuditModes
		if !chaosFull() {
			modes = []Mode{NaiveNDP}
		}
		for i, abbr := range wls {
			spec := fmt.Sprintf("rand:seed=%d;drop:p=0.002;seed=%d;%s", 101+i, 7+i, chaosKnobs)
			fc, err := ChaosFaultConfig(cfg, spec)
			if err != nil {
				t.Fatalf("bad schedule %q: %v", spec, err)
			}
			for _, mode := range modes {
				abbr, mode, fc := abbr, mode, fc
				t.Run(abbr+"/"+mode.Name, func(t *testing.T) {
					t.Parallel()
					checkChaosLeg(t, RunChaosOne(cfg, fc, abbr, mode, 1))
				})
			}
		}
	})
}

// TestFaultNoOpEquivalence pins the zero-cost-when-disabled contract from
// two directions. An empty schedule builds no injector at all, so two
// fault-free runs must be bit-identical — same cycle count, same memory.
// A dormant injector — a schedule whose only event fires long after the
// run drains and whose timeout can never elapse — switches the offload
// protocol into its transactional (buffered-commit) variant, which is
// allowed to shift timing but must produce the same final memory and must
// never fire a recovery path.
func TestFaultNoOpEquivalence(t *testing.T) {
	cfg := AuditConfig()
	if cfg.Fault.Enabled() {
		t.Fatalf("default config claims an active fault schedule")
	}
	base := runNoOpLeg(t, cfg)
	again := runNoOpLeg(t, cfg)
	if base.cycles != again.cycles {
		t.Errorf("fault-free run is nondeterministic: %d vs %d cycles", base.cycles, again.cycles)
	}
	if !bytes.Equal(base.mem, again.mem) {
		t.Errorf("fault-free run is nondeterministic: memory images differ")
	}

	dormant := cfg
	var err error
	dormant.Fault, err = ChaosFaultConfig(cfg, "nsufail:t=900000000000:hmc=0;timeout=1000000000")
	if err != nil {
		t.Fatal(err)
	}
	if !dormant.Fault.Enabled() {
		t.Fatalf("dormant schedule should still build an injector")
	}
	faulty := runNoOpLeg(t, dormant)

	if !bytes.Equal(base.mem, faulty.mem) {
		t.Errorf("dormant injector changed the final memory image")
	}
	if faulty.fallbacks != 0 || faulty.retries != 0 {
		t.Errorf("dormant injector fired recovery paths: retries=%d fallbacks=%d",
			faulty.retries, faulty.fallbacks)
	}
}

type noopRun struct {
	cycles    int64
	retries   int64
	fallbacks int64
	mem       []byte
}

func runNoOpLeg(t *testing.T, cfg config.Config) noopRun {
	t.Helper()
	mem := vm.New(cfg)
	w, err := workloads.Build("VADD", mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Launch(cfg, w.Kernel, mem, NaiveNDP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return noopRun{
		cycles:    res.Cycles,
		retries:   res.Stats.OffloadRetries,
		fallbacks: res.Stats.FallbackBlocks,
		mem:       mem.Snapshot(),
	}
}
