package sim

import (
	"bytes"
	"fmt"

	"ndpgpu/internal/config"
	"ndpgpu/internal/energy"
	"ndpgpu/internal/interp"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// AuditModes are the three execution modes the differential audit harness
// exercises: baseline, fully partitioned execution (every block offloaded),
// and the dynamic offload controller.
var AuditModes = []Mode{Baseline, NaiveNDP, DynNDP}

// AuditConfig returns the reduced configuration audit runs use: the Table 2
// machine with 4 SMs, so the full workload x mode sweep stays tractable
// while the protocol, network, and memory system run at full fidelity.
func AuditConfig() config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	return cfg
}

// AuditResult is the outcome of one workload x mode audit leg.
type AuditResult struct {
	Workload   string
	Mode       string
	Cycles     int64
	Violations int64
	FirstBad   string // first recorded violation, empty when clean
	MemMatch   bool   // final memory bit-identical to the interp oracle
	Err        error  // build/run/verify failure, nil on success

	Stats *stats.Stats // full counters of the run, nil when Launch failed
}

// Ok reports whether the leg passed: the run completed, zero invariant
// violations, and memory bit-identical to the oracle.
func (r AuditResult) Ok() bool { return r.Err == nil && r.Violations == 0 && r.MemMatch }

// RunAuditOne executes one workload under one mode with full auditing
// enabled and cross-checks the final memory image bit-for-bit against the
// internal/interp reference interpreter. The oracle runs the same kernel on
// a second memory system built with the identical configuration: workload
// initialization and page placement are deterministic in the config seeds,
// so the two address spaces correspond byte for byte.
func RunAuditOne(cfg config.Config, abbr string, mode Mode, scale int) AuditResult {
	r := AuditResult{Workload: abbr, Mode: mode.Name, MemMatch: false}

	mem := vm.New(cfg)
	w, err := workloads.Build(abbr, mem, scale)
	if err != nil {
		r.Err = err
		return r
	}
	machine, err := Launch(cfg, w.Kernel, mem, mode)
	if err != nil {
		r.Err = err
		return r
	}
	aud := machine.EnableAudit()
	r.Stats = machine.St
	res, err := machine.Run(0)
	if err != nil {
		r.Err = err
		return r
	}
	r.Cycles = res.Cycles
	r.Violations = aud.Count()
	if vs := aud.Violations(); len(vs) > 0 {
		r.FirstBad = vs[0].String()
	}

	// The energy model over the final counters must be well-formed: every
	// component non-negative, and no NSU energy attributed to a machine that
	// never ran NSU code.
	e := energy.Compute(res.Stats, cfg, energy.DefaultParams(), mode.NDP)
	if e.GPU < 0 || e.NSU < 0 || e.IntraHMC < 0 || e.OffChip < 0 || e.DRAM < 0 {
		r.Violations++
		if r.FirstBad == "" {
			r.FirstBad = fmt.Sprintf("negative energy component: %+v", e)
		}
	}

	// Host-reference functional check (the workload's own Verify), then the
	// stronger oracle differential: replay the original kernel in the
	// reference interpreter and compare full memory images.
	if err := w.Verify(); err != nil {
		r.Err = fmt.Errorf("host verification: %w", err)
		return r
	}
	ref := vm.New(cfg)
	wref, err := workloads.Build(abbr, ref, scale)
	if err != nil {
		r.Err = err
		return r
	}
	if err := interp.Run(wref.Kernel, ref); err != nil {
		r.Err = fmt.Errorf("oracle: %w", err)
		return r
	}
	r.MemMatch = bytes.Equal(mem.Snapshot(), ref.Snapshot())
	return r
}

// RunAuditSuite runs every Table 1 workload under every audit mode. The
// progress callback, when non-nil, is invoked after each leg.
func RunAuditSuite(cfg config.Config, scale int, progress func(AuditResult)) []AuditResult {
	var out []AuditResult
	for _, abbr := range workloads.Abbrs() {
		for _, mode := range AuditModes {
			r := RunAuditOne(cfg, abbr, mode, scale)
			if progress != nil {
				progress(r)
			}
			out = append(out, r)
		}
	}
	return out
}
