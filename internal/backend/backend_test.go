package backend

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	want := []string{"coda", "coda-ft", "ndpage", "paper"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		b, err := For(n)
		if err != nil {
			t.Fatalf("For(%q): %v", n, err)
		}
		if b.Name() != n {
			t.Errorf("For(%q).Name() = %q", n, b.Name())
		}
		if b.Description() == "" {
			t.Errorf("%s: empty description", n)
		}
	}
	if b, err := For(""); err != nil || b.Name() != DefaultName {
		t.Errorf("For(\"\") = %v, %v; want the %s backend", b, err, DefaultName)
	}
	if _, err := For("no-such-arch"); err == nil {
		t.Error("For accepted an unknown backend name")
	} else if !strings.Contains(err.Error(), Usage()) {
		t.Errorf("unknown-backend error %q does not list the valid names", err)
	}
}

// layout captures the page->stack map of a memory image.
func layout(mem *vm.System, cfg config.Config) []int {
	out := make([]int, mem.NumPages())
	for p := range out {
		out[p] = mem.HMCOf(uint64(p) * uint64(cfg.Mem.PageBytes))
	}
	return out
}

// steerKernel builds a kernel where every thread of CTA c loads and stores
// one word of page c (relative to the allocated base): the unambiguous
// steering case — each page has exactly one accessing CTA.
func steerKernel(base uint64, grid int) *kernel.Kernel {
	kb := kernel.NewBuilder()
	kb.OpImm(isa.MULI, 16, kernel.RegCTAID, 4096) // page offset of this CTA
	kb.OpImm(isa.ADDI, 16, 16, int64(base))
	kb.OpImm(isa.SHLI, 17, kernel.RegTID, 2)
	kb.Op3(isa.ADD, 16, 16, 17) // &page[tid]
	kb.Ld(18, 16, 0)
	kb.St(16, 0, 18)
	kb.Exit()
	return kb.MustBuild("steer", grid, 32)
}

// TestCodaSteering: with one accessing CTA per page, CODA must place page p
// on stack p mod numHMCs (the accessor's home), leave untouched pages on
// their random-interleave homes, and leave memory contents untouched.
func TestCodaSteering(t *testing.T) {
	cfg := config.Default()
	mem := vm.New(cfg)
	const grid = 16
	base := mem.Alloc(grid * cfg.Mem.PageBytes)
	spare := mem.Alloc(cfg.Mem.PageBytes) // never touched by the kernel
	k := steerKernel(base, grid)

	before := layout(mem, cfg)
	snap := mem.Snapshot()
	b, err := For("coda")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PreparePlacement(cfg, k, mem); err != nil {
		t.Fatal(err)
	}
	after := layout(mem, cfg)

	pageBytes := uint64(cfg.Mem.PageBytes)
	for c := 0; c < grid; c++ {
		p := int((base + uint64(c)*pageBytes) / pageBytes)
		if want := c % cfg.NumHMCs; after[p] != want {
			t.Errorf("page %d (CTA %d): placed on stack %d, want %d", p, c, after[p], want)
		}
	}
	sparePage := int(spare / pageBytes)
	if after[sparePage] != before[sparePage] {
		t.Errorf("untouched page %d moved: %d -> %d", sparePage, before[sparePage], after[sparePage])
	}
	if !bytes.Equal(snap, mem.Snapshot()) {
		t.Error("PreparePlacement changed memory contents")
	}
}

// contestedKernel builds the dominant-vs-first-touch splitter over two pages:
// every thread of CTA c reads its own page (base + c*4096) once and the other
// CTA's page twice. With grid=2, page 0 is touched first by CTA 0 (home 0)
// but most by CTA 1 (home 1), so the two CODA variants must disagree on it.
func contestedKernel(base uint64) *kernel.Kernel {
	kb := kernel.NewBuilder()
	kb.OpImm(isa.MULI, 16, kernel.RegCTAID, 4096)
	kb.OpImm(isa.ADDI, 16, 16, int64(base)) // own page
	kb.OpImm(isa.MULI, 17, kernel.RegCTAID, -4096)
	kb.OpImm(isa.ADDI, 17, 17, 4096)
	kb.OpImm(isa.ADDI, 17, 17, int64(base)) // other page
	kb.Ld(18, 16, 0)
	kb.Ld(19, 17, 0)
	kb.Ld(20, 17, 0)
	kb.Exit()
	return kb.MustBuild("contested", 2, 32)
}

// TestCodaPlan is the table-driven policy check, on CodaPlan directly (no
// memory mutation): dominant-accessor vs first-touch placement for a page two
// CTAs contend on.
func TestCodaPlan(t *testing.T) {
	cfg := config.Default()
	mem := vm.New(cfg)
	base := mem.Alloc(2 * cfg.Mem.PageBytes)
	k := contestedKernel(base)
	p0 := int(base / uint64(cfg.Mem.PageBytes))

	cases := []struct {
		name       string
		firstTouch bool
		wantP0     int // contested: CTA0 touches first, CTA1 touches most
		wantP1     int // CTA0 dominates and touches first
	}{
		{"dominant", false, 1, 0},
		{"first-touch", true, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := CodaPlan(cfg, k, mem, tc.firstTouch)
			if err != nil {
				t.Fatal(err)
			}
			if plan[p0] != tc.wantP0 {
				t.Errorf("page %d -> stack %d, want %d", p0, plan[p0], tc.wantP0)
			}
			if plan[p0+1] != tc.wantP1 {
				t.Errorf("page %d -> stack %d, want %d", p0+1, plan[p0+1], tc.wantP1)
			}
			for p, h := range plan {
				if p != p0 && p != p0+1 && h != -1 {
					t.Errorf("untouched page %d planned to stack %d, want -1", p, h)
				}
			}
		})
	}
}

// TestPaperNoOp: the default backend must change neither the configuration
// nor the placement — the structural guarantee behind golden-digest identity.
func TestPaperNoOp(t *testing.T) {
	cfg := config.Default()
	b, err := For("paper")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Apply(cfg); !reflect.DeepEqual(got, cfg) {
		t.Error("paper backend rewrote the configuration")
	}
	mem := vm.New(cfg)
	base := mem.Alloc(16 * cfg.Mem.PageBytes)
	before := layout(mem, cfg)
	if err := b.PreparePlacement(cfg, steerKernel(base, 16), mem); err != nil {
		t.Fatal(err)
	}
	after := layout(mem, cfg)
	for p := range before {
		if before[p] != after[p] {
			t.Fatalf("paper backend moved page %d: %d -> %d", p, before[p], after[p])
		}
	}
}

// TestNDPageApply: the ndpage backend flips only the stack-translation knob.
func TestNDPageApply(t *testing.T) {
	b, err := For("ndpage")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	got := b.Apply(cfg)
	if !got.Arch.StackTranslation() {
		t.Error("ndpage backend did not enable stack translation")
	}
	got.Arch.StackXlat = false
	if !reflect.DeepEqual(got, cfg) {
		t.Error("ndpage backend changed more than Arch.StackXlat")
	}
}

// TestInterleaveSeedPinned: the paper's random interleave is a pure function
// of the placement seed — same seed, same layout; a different seed produces a
// different one. This pins the layout CODA perturbs and the ndpage backend
// inherits.
func TestInterleaveSeedPinned(t *testing.T) {
	cfg := config.Default()
	alloc := func(c config.Config) *vm.System {
		m := vm.New(c)
		m.Alloc(64 * c.Mem.PageBytes)
		return m
	}
	a, b := layout(alloc(cfg), cfg), layout(alloc(cfg), cfg)
	for p := range a {
		if a[p] != b[p] {
			t.Fatalf("same seed, different layout at page %d: %d vs %d", p, a[p], b[p])
		}
	}
	cfg2 := cfg
	cfg2.Mem.PlacementSeed = cfg.Mem.PlacementSeed + 1
	c := layout(alloc(cfg2), cfg2)
	same := 0
	for p := range a {
		if a[p] == c[p] {
			same++
		}
	}
	if same == len(a) {
		t.Error("changing the placement seed did not change the layout")
	}
}

// TestCloneIsolated: Clone must copy placement and contents; mutating the
// clone (as the CODA pre-pass does) must not leak into the original.
func TestCloneIsolated(t *testing.T) {
	cfg := config.Default()
	mem := vm.New(cfg)
	base := mem.Alloc(4 * cfg.Mem.PageBytes)
	mem.Write32(base, 0xdeadbeef)
	cl := mem.Clone()
	if cl.Read32(base) != 0xdeadbeef {
		t.Fatal("clone lost memory contents")
	}
	cl.Write32(base, 7)
	cl.PlacePage(base, (mem.HMCOf(base)+1)%cfg.NumHMCs)
	if mem.Read32(base) != 0xdeadbeef {
		t.Error("writing the clone changed the original's contents")
	}
	if mem.HMCOf(base) == cl.HMCOf(base) {
		t.Error("re-placing a clone page moved the original's page")
	}
}
