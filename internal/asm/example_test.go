package asm_test

import (
	"fmt"

	"ndpgpu/internal/asm"
)

func ExampleParse() {
	src := `
.kernel scale
.grid   1
.block  32
.params 2

    shli r16, r0, 2
    add  r17, r4, r16
    ld   r18, [r17+0]
    fadd r19, r18, r18
    add  r20, r5, r16
    st   [r20+0], r19
    exit
`
	k, err := asm.Parse(src, 0x1000, 0x2000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %d instructions over %d threads\n",
		k.Name, len(k.Code), k.Threads())
	// Output: scale: 7 instructions over 32 threads
}

func ExampleFormat() {
	src := ".kernel tiny\n.grid 1\n.block 32\n.params 0\nmovi r16, 7\nexit\n"
	k, err := asm.Parse(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(asm.Format(k))
	// Output:
	// .kernel tiny
	// .grid 1
	// .block 32
	// .params 0
	//
	//     movi r16, 7
	//     exit
}
