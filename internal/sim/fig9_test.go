package sim

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// runFull runs a Table 1 workload on the full Table 2 machine.
func runFull(t *testing.T, abbr string, mode Mode) (*Result, *Machine) {
	t.Helper()
	cfg := config.Default()
	mem := vm.New(cfg)
	w, err := workloads.Build(abbr, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Launch(cfg, w.Kernel, mem, mode)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s/%s: %v", abbr, mode.Name, err)
	}
	return res, m
}

// TestCacheAwareRescuesSTN pins the §7.3 headline: the stencil has good
// cache locality, the dynamic controller alone degrades it, and the
// cache-locality filter suppresses its blocks back to baseline parity.
func TestCacheAwareRescuesSTN(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine regression")
	}
	base, _ := runFull(t, "STN", Baseline)
	dyn, _ := runFull(t, "STN", DynNDP)
	dc, m := runFull(t, "STN", DynCache)

	if float64(dyn.TimePS) < 1.2*float64(base.TimePS) {
		t.Fatalf("STN under Dyn should degrade clearly: base=%d dyn=%d", base.TimePS, dyn.TimePS)
	}
	if float64(dc.TimePS) > 1.1*float64(base.TimePS) {
		t.Fatalf("cache filter failed to rescue STN: base=%d dyncache=%d", base.TimePS, dc.TimePS)
	}
	ca := m.Dec.(*core.CacheAware)
	if ca.Suppressed == 0 {
		t.Fatal("no suppressions recorded for STN")
	}
}

// TestNDPWinsBFSAndKMN pins the winners: the divergent gather (BFS) and the
// bandwidth-bound k-means keep their NDP gains under the full mechanism.
func TestNDPWinsBFSAndKMN(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine regression")
	}
	for _, abbr := range []string{"BFS", "KMN"} {
		base, _ := runFull(t, abbr, Baseline)
		dc, _ := runFull(t, abbr, DynCache)
		if dc.TimePS >= base.TimePS {
			t.Fatalf("%s: NDP(Dyn)_Cache (%d ps) did not beat baseline (%d ps)",
				abbr, dc.TimePS, base.TimePS)
		}
	}
}

// TestNaiveNDPDegradesSuiteGeomean pins the §6 result: offloading everything
// loses on average across the suite (we check a fast 4-workload subset).
func TestNaiveNDPDegradesSuiteGeomean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine regression")
	}
	prod := 1.0
	n := 0
	for _, abbr := range []string{"STN", "BICG", "BPROP", "MINIFE"} {
		base, _ := runFull(t, abbr, Baseline)
		naive, _ := runFull(t, abbr, NaiveNDP)
		prod *= float64(base.TimePS) / float64(naive.TimePS)
		n++
	}
	if prod >= 1 {
		t.Fatalf("naive NDP should degrade the memory-intensive subset (geomean product %v)", prod)
	}
}
