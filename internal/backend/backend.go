// Package backend makes the NDP architecture a selectable axis. The source
// paper's partitioned execution — random 4 KB page interleave with GPU-owned
// address translation — is one design point among several; each Backend here
// is another, drawn from the literature the paper argues against:
//
//   - paper:   the default. Unrestricted random placement, SM-TLB
//     translation, compute-follows-data offload targeting. A strict no-op on
//     both configuration and memory image, so the default machine is
//     bit-identical to the pre-backend simulator.
//   - coda:    CODA-style locality-aware placement (Kim et al.): before the
//     timing run, a traced functional pre-pass profiles which CTA touches
//     which page, and each page is steered to the stack its dominant
//     accessor computes on — co-locating computation and data, the opposite
//     bet from the paper's.
//   - coda-ft: the first-touch variant — a page lands on the stack of the
//     CTA that touches it first, the classic NUMA policy.
//   - ndpage:  NDPage-style translation (Jiang et al.): placement stays
//     random, but address translation for offloaded accesses moves from the
//     GPU's SM TLBs to a tailored per-stack TLB + page walk charged at each
//     stack's logic layer.
//
// A Backend acts at two points, both before the machine is assembled:
// Apply rewrites the Config (timing-model knobs), and PreparePlacement
// rewrites the memory image's page->stack map (placement policy). Placement
// is timing-only metadata over a flat functional store, so every backend is
// invisible to the internal/interp oracle: final memory must be bit-identical
// across backends, which the differential suites enforce.
package backend

import (
	"fmt"
	"sort"

	"ndpgpu/internal/config"
	"ndpgpu/internal/interp"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

// Backend is one NDP architecture design point.
type Backend interface {
	// Name is the CLI / config spelling.
	Name() string
	// Description is a one-line summary for help output.
	Description() string
	// Apply rewrites the configuration for this architecture (e.g. moving
	// translation to the stacks). Must be a pure function of cfg.
	Apply(cfg config.Config) config.Config
	// PreparePlacement rewrites mem's page->stack placement for the kernel
	// about to run. Called once, after workload initialization and before
	// machine assembly; it must not change memory contents.
	PreparePlacement(cfg config.Config, k *kernel.Kernel, mem *vm.System) error
}

// registry holds every known backend, keyed by name.
var registry = map[string]Backend{
	"paper":   paperBackend{},
	"coda":    codaBackend{firstTouch: false},
	"coda-ft": codaBackend{firstTouch: true},
	"ndpage":  ndpageBackend{},
}

// DefaultName is the backend an empty Config.Arch.Backend resolves to.
const DefaultName = "paper"

// For resolves a backend name ("" means the default, paper).
func For(name string) (Backend, error) {
	if name == "" {
		name = DefaultName
	}
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown architecture backend %q (valid: %s)", name, Usage())
	}
	return b, nil
}

// Names returns every registered backend name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Usage renders the accepted spellings for flag help and error messages.
func Usage() string {
	s := ""
	for i, n := range Names() {
		if i > 0 {
			s += "|"
		}
		s += n
	}
	return s
}

// paperBackend is the source paper's architecture: a strict no-op, because
// the simulator's defaults already model it.
type paperBackend struct{}

func (paperBackend) Name() string { return "paper" }
func (paperBackend) Description() string {
	return "partitioned execution, random 4KB interleave, GPU-owned translation (the source paper)"
}
func (paperBackend) Apply(cfg config.Config) config.Config { return cfg }
func (paperBackend) PreparePlacement(config.Config, *kernel.Kernel, *vm.System) error {
	return nil
}

// codaBackend steers pages toward the stack that computes on them. The
// simulator's offload targeting is compute-follows-data (majority home), so
// co-location is achieved from the placement side: assign each CTA a home
// stack (cta mod numHMCs, the same round-robin the paper's Figure 2 CODA
// discussion assumes), profile the kernel's page accesses with a traced
// oracle run on a cloned memory image, and place every touched page on its
// dominant (or first-touching) CTA's stack. Untouched pages keep the random
// interleave. The pre-pass is functional and deterministic, so placement is
// a pure function of (config, kernel, initial memory).
type codaBackend struct {
	firstTouch bool
}

func (b codaBackend) Name() string {
	if b.firstTouch {
		return "coda-ft"
	}
	return "coda"
}

func (b codaBackend) Description() string {
	if b.firstTouch {
		return "CODA-style co-location, first-touch variant: pages land on the first-touching CTA's stack"
	}
	return "CODA-style co-location: pages steered to the stack of their dominant computing CTA"
}

func (codaBackend) Apply(cfg config.Config) config.Config { return cfg }

func (b codaBackend) PreparePlacement(cfg config.Config, k *kernel.Kernel, mem *vm.System) error {
	plan, err := CodaPlan(cfg, k, mem, b.firstTouch)
	if err != nil {
		return err
	}
	pageBytes := uint64(cfg.Mem.PageBytes)
	for page, hmc := range plan {
		if hmc >= 0 {
			mem.PlacePage(uint64(page)*pageBytes, hmc)
		}
	}
	return nil
}

// CodaPlan computes the CODA placement for a kernel over a memory image
// without applying it: one entry per mapped page, holding the target stack
// or -1 for pages the kernel never touches (those keep their existing
// placement). Exported so the policy is unit-testable against hand-built
// kernels, independent of machine assembly.
func CodaPlan(cfg config.Config, k *kernel.Kernel, mem *vm.System, firstTouch bool) ([]int, error) {
	numHMCs := cfg.NumHMCs
	pageShift := uint(0)
	for 1<<pageShift < cfg.Mem.PageBytes {
		pageShift++
	}
	pages := mem.NumPages()
	// counts[page*numHMCs+stack] = accesses to page by CTAs homed on stack.
	counts := make([]int64, pages*numHMCs)
	first := make([]int, pages)
	for i := range first {
		first[i] = -1
	}
	tr := func(cta int, addr uint64, store bool) {
		page := int(addr >> pageShift)
		if page >= pages {
			return // page allocated mid-run by the clone; not steerable
		}
		home := cta % numHMCs
		counts[page*numHMCs+home]++
		if first[page] < 0 {
			first[page] = home
		}
	}
	// The traced run executes on a clone: the profile must not consume the
	// functional state the timing run starts from.
	if err := interp.RunTraced(k, mem.Clone(), tr); err != nil {
		return nil, fmt.Errorf("coda placement pre-pass: %w", err)
	}
	plan := make([]int, pages)
	for p := 0; p < pages; p++ {
		if firstTouch {
			plan[p] = first[p]
			continue
		}
		best, bestN := -1, int64(0)
		for h := 0; h < numHMCs; h++ {
			// Strict > keeps the lowest stack index on ties, so the plan is
			// deterministic.
			if n := counts[p*numHMCs+h]; n > bestN {
				best, bestN = h, n
			}
		}
		plan[p] = best
	}
	return plan, nil
}

// ndpageBackend moves translation for offloaded accesses to the stacks.
// Placement stays the paper's random interleave; only the timing model
// changes, via the Arch knobs the GPU and HMC layers read.
type ndpageBackend struct{}

func (ndpageBackend) Name() string { return "ndpage" }
func (ndpageBackend) Description() string {
	return "NDPage-style translation: offloaded accesses skip the SM TLB; each stack charges a tailored TLB + page walk"
}

func (ndpageBackend) Apply(cfg config.Config) config.Config {
	cfg.Arch.StackXlat = true
	return cfg
}

func (ndpageBackend) PreparePlacement(config.Config, *kernel.Kernel, *vm.System) error {
	return nil
}
