// Package noc models the system interconnect: the GPU's off-chip links (one
// bidirectional 20 GB/s link per HMC, Table 2) and the inter-HMC memory
// network (a 3D hypercube over 8 stacks using 3 of each HMC's links, §5).
//
// Links serialize packets at link bandwidth and deliver after a per-hop
// router latency; multi-hop memory-network packets are forwarded
// store-and-forward with dimension-order routing. Inter-HMC traffic never
// touches the GPU links — that asymmetry is the core of the paper's
// bandwidth argument.
package noc

import (
	"fmt"
	"math/bits"

	"ndpgpu/internal/audit"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
)

// Link is one direction of one physical link.
type Link struct {
	psPerByte float64   // serialization cost
	latPS     timing.PS // propagation + router latency
	busyUntil timing.PS
	Bytes     int64 // total bytes carried
}

func newLink(gbps float64, latPS timing.PS) *Link {
	// gbps GB/s = gbps bytes/ns = gbps/1000 bytes/ps.
	return &Link{psPerByte: 1000.0 / gbps, latPS: latPS}
}

// Send schedules size bytes onto the link at or after now, returning the
// arrival time at the far end.
func (l *Link) Send(now timing.PS, size int) timing.PS {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := timing.PS(float64(size) * l.psPerByte)
	l.busyUntil = start + ser
	l.Bytes += int64(size)
	return start + ser + l.latPS
}

// BusyUntil returns the time the link next becomes free.
func (l *Link) BusyUntil() timing.PS { return l.busyUntil }

// PSPerByte returns the link's serialization cost in picoseconds per byte
// (the utilization scale factor: Δbytes × PSPerByte / Δt is the busy
// fraction of the interval).
func (l *Link) PSPerByte() float64 { return l.psPerByte }

// Delivery is a message sitting in an inbox with its arrival time.
type Delivery struct {
	At  timing.PS
	Msg any
	seq int64
}

// Inbox is a time-ordered delivery queue at one endpoint. The heap is
// maintained by hand (rather than container/heap) so Put/Pop move Delivery
// values without boxing each one into an interface — the inboxes sit on the
// simulator's hottest path.
type Inbox struct {
	h   []Delivery
	seq int64
	aud *audit.Network // nil unless the fabric auditor is attached
	// out, when set, receives deferred audit ejects instead of aud being
	// called inline: the owning shard pops its inbox during the parallel
	// compute phase, and the shared auditor must observe ejections in the
	// serial (commit) order.
	out *Outbox
	// wake, when set, is called on every Put with the arrival time: the
	// endpoint's clock domain is wake-scheduled and a parked ticker must be
	// re-armed no later than the message's delivery edge.
	wake func(at timing.PS)
}

// SetWakeHook installs the per-arrival re-arm callback (wake scheduling).
func (in *Inbox) SetWakeHook(f func(at timing.PS)) { in.wake = f }

func (in *Inbox) less(i, j int) bool {
	if in.h[i].At != in.h[j].At {
		return in.h[i].At < in.h[j].At
	}
	return in.h[i].seq < in.h[j].seq
}

// Put inserts a message arriving at time at.
func (in *Inbox) Put(at timing.PS, msg any) {
	if in.wake != nil {
		in.wake(at)
	}
	in.seq++
	in.h = append(in.h, Delivery{At: at, Msg: msg, seq: in.seq})
	// Sift up.
	i := len(in.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !in.less(i, parent) {
			break
		}
		in.h[i], in.h[parent] = in.h[parent], in.h[i]
		i = parent
	}
}

// Pop removes and returns the earliest message whose arrival time is <= now.
func (in *Inbox) Pop(now timing.PS) (any, bool) {
	if len(in.h) == 0 || in.h[0].At > now {
		return nil, false
	}
	msg := in.h[0].Msg
	if in.aud != nil {
		if in.out != nil {
			in.out.eject(now, msg)
		} else {
			in.aud.Eject(now, msg)
		}
	}
	n := len(in.h) - 1
	in.h[0] = in.h[n]
	in.h[n] = Delivery{} // release the popped message for GC
	in.h = in.h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		min := l
		if r < n && in.less(r, l) {
			min = r
		}
		if !in.less(min, i) {
			break
		}
		in.h[i], in.h[min] = in.h[min], in.h[i]
		i = min
	}
	return msg, true
}

// Len returns the number of queued messages (including not-yet-arrived).
func (in *Inbox) Len() int { return len(in.h) }

// NextAt returns the arrival time of the earliest queued message, or false
// when the inbox is empty. Side-effect free; used by idle hints.
func (in *Inbox) NextAt() (timing.PS, bool) {
	if len(in.h) == 0 {
		return 0, false
	}
	return in.h[0].At, true
}

// Sender is the packet-injection face of the fabric. Components hold a
// Sender instead of a *Fabric so parallel execution can substitute a
// per-shard Outbox that defers the sends to the commit phase.
type Sender interface {
	SendGPUToHMC(now timing.PS, dst, size int, msg any) timing.PS
	SendHMCToGPU(now timing.PS, src, size int, msg any) timing.PS
	SendHMCToHMC(now timing.PS, src, dst, size int, msg any) timing.PS
}

// CreditSink receives NDP buffer credits; the GPU's buffer manager (and, in
// parallel mode, an Outbox fronting it) implements it.
type CreditSink interface {
	Return(target int, kind core.BufferKind, n int)
}

type opKind uint8

const (
	opSendG2H opKind = iota
	opSendH2G
	opSendH2H
	opEject
	opCredit
)

type deferredOp struct {
	kind opKind
	now  timing.PS
	a, b int // src/dst (sends), target/n (credit)
	size int
	msg  any
	bk   core.BufferKind
}

// Outbox records a shard's cross-shard effects during a parallel compute
// phase — fabric sends, audit ejects, credit returns — in program order, and
// Flush replays them against the real fabric at the commit barrier. Because
// commits run in shard index order and serial execution ticks shards in the
// same order, the replayed global sequence of fabric calls (and therefore
// link busy times, inbox sequence numbers, PRNG draws, audit observations,
// and statistics) is bit-identical to serial execution.
//
// The deferral is transparent to callers: arrival times returned by the
// Send* methods are not used by any component (they return 0 here), and
// every cross-stack packet arrives strictly after its send time, so nothing
// could have observed the packet between generation and commit.
type Outbox struct {
	fab     *Fabric
	credits CreditSink
	ops     []deferredOp
}

// NewOutbox returns an outbox replaying into fab; credits receives deferred
// credit returns (nil when the shard never returns credits).
func NewOutbox(fab *Fabric, credits CreditSink) *Outbox {
	return &Outbox{fab: fab, credits: credits}
}

// SendGPUToHMC implements Sender by deferring the send.
func (o *Outbox) SendGPUToHMC(now timing.PS, dst, size int, msg any) timing.PS {
	o.ops = append(o.ops, deferredOp{kind: opSendG2H, now: now, b: dst, size: size, msg: msg})
	return 0
}

// SendHMCToGPU implements Sender by deferring the send.
func (o *Outbox) SendHMCToGPU(now timing.PS, src, size int, msg any) timing.PS {
	o.ops = append(o.ops, deferredOp{kind: opSendH2G, now: now, a: src, size: size, msg: msg})
	return 0
}

// SendHMCToHMC implements Sender by deferring the send.
func (o *Outbox) SendHMCToHMC(now timing.PS, src, dst, size int, msg any) timing.PS {
	o.ops = append(o.ops, deferredOp{kind: opSendH2H, now: now, a: src, b: dst, size: size, msg: msg})
	return 0
}

// Return implements CreditSink by deferring the credit return.
func (o *Outbox) Return(target int, kind core.BufferKind, n int) {
	o.ops = append(o.ops, deferredOp{kind: opCredit, a: target, b: n, bk: kind})
}

func (o *Outbox) eject(now timing.PS, msg any) {
	o.ops = append(o.ops, deferredOp{kind: opEject, now: now, msg: msg})
}

// Flush replays the deferred operations in the order they were recorded and
// empties the outbox. Must be called from the commit phase only.
func (o *Outbox) Flush() {
	for i := range o.ops {
		op := &o.ops[i]
		switch op.kind {
		case opSendG2H:
			o.fab.SendGPUToHMC(op.now, op.b, op.size, op.msg)
		case opSendH2G:
			o.fab.SendHMCToGPU(op.now, op.a, op.size, op.msg)
		case opSendH2H:
			o.fab.SendHMCToHMC(op.now, op.a, op.b, op.size, op.msg)
		case opEject:
			o.fab.aud.Eject(op.now, op.msg)
		case opCredit:
			o.credits.Return(op.a, op.bk, op.b)
		}
		op.msg = nil // release for GC; the slice is reused across ticks
	}
	o.ops = o.ops[:0]
}

// Pending returns the number of deferred operations (test hook).
func (o *Outbox) Pending() int { return len(o.ops) }

// Fabric wires the GPU and the HMCs together.
type Fabric struct {
	numHMCs int
	dims    int
	ring    bool

	gpuToHMC []*Link // index: hmc
	hmcToGPU []*Link
	// mesh[src][dim]: link from src to src^(1<<dim).
	mesh [][]*Link

	hmcInbox []Inbox
	gpuInbox Inbox

	st     *stats.Stats
	tracer Tracer
	aud    *audit.Network

	// Fault-injection state (nil / unused on the fault-free path).
	flt       *fault.Injector
	routeNext [][]int16 // [cur][dst] -> next hop over live links; -1 = unreachable
	routeVer  int       // injector topology version routeNext was built for
}

// Tracer observes every packet entering the fabric; see package trace.
type Tracer func(now timing.PS, route string, size int, msg any)

// NewFabric builds the fabric for the configuration. st may be nil.
func NewFabric(cfg config.Config, st *stats.Stats) *Fabric {
	n := cfg.NumHMCs
	ring := cfg.HMC.NetTopology == "ring"
	dims := 0
	if ring {
		dims = 2 // clockwise and counter-clockwise links
	} else {
		for 1<<dims < n {
			dims++
		}
		if dims > cfg.HMC.NetLinksPerHMC {
			panic(fmt.Sprintf("noc: hypercube over %d HMCs needs %d links/HMC, have %d",
				n, dims, cfg.HMC.NetLinksPerHMC))
		}
	}
	lat := timing.PS(cfg.HMC.RouterLatPS)
	f := &Fabric{
		numHMCs:  n,
		dims:     dims,
		ring:     ring,
		gpuToHMC: make([]*Link, n),
		hmcToGPU: make([]*Link, n),
		mesh:     make([][]*Link, n),
		hmcInbox: make([]Inbox, n),
		st:       st,
	}
	for i := 0; i < n; i++ {
		f.gpuToHMC[i] = newLink(cfg.GPU.LinkGBps, lat)
		f.hmcToGPU[i] = newLink(cfg.GPU.LinkGBps, lat)
		f.mesh[i] = make([]*Link, dims)
		for d := 0; d < dims; d++ {
			f.mesh[i][d] = newLink(cfg.HMC.NetLinkGBps, lat)
		}
	}
	return f
}

// NumHMCs returns the HMC count.
func (f *Fabric) NumHMCs() int { return f.numHMCs }

// ForEachLink invokes fn on every physical link direction in a fixed order:
// the GPU's off-chip links (both directions per HMC), then the memory-network
// links (per HMC, per dimension). The metrics layer snapshots the list once
// at attach time; fn must not mutate.
func (f *Fabric) ForEachLink(fn func(name string, l *Link)) {
	for i, l := range f.gpuToHMC {
		fn(fmt.Sprintf("gpu-hmc%d", i), l)
	}
	for i, l := range f.hmcToGPU {
		fn(fmt.Sprintf("hmc%d-gpu", i), l)
	}
	for i, dims := range f.mesh {
		for d, l := range dims {
			fn(fmt.Sprintf("mesh%d.d%d", i, d), l)
		}
	}
}

// SetTracer installs a packet observer (nil disables tracing).
func (f *Fabric) SetTracer(t Tracer) { f.tracer = t }

// Traced reports whether a packet tracer is installed. Senders use this to
// decide whether delivered packets may be recycled through free lists — a
// tracer may retain packets, so pooling is disabled while one is attached.
func (f *Fabric) Traced() bool { return f.tracer != nil }

// SetAudit attaches the packet-conservation auditor to the fabric and all of
// its inboxes (nil detaches). The auditor observes every injection at the
// Send* entry points and every ejection at Inbox.Pop; like a tracer, it may
// retain packet identities, so it must only be attached to machines whose
// senders allocate packets fresh (the default — see Traced).
func (f *Fabric) SetAudit(n *audit.Network) {
	f.aud = n
	f.gpuInbox.aud = n
	for i := range f.hmcInbox {
		f.hmcInbox[i].aud = n
	}
}

// DeferEjects routes HMC i's audit ejections through the given outbox (nil
// restores inline ejection). Parallel mode only: the stack shard that owns
// inbox i pops it concurrently with other shards, so its ejections must be
// replayed at the commit barrier.
func (f *Fabric) DeferEjects(i int, o *Outbox) { f.hmcInbox[i].out = o }

// SetFault attaches the fault injector (nil detaches). With an injector
// attached, inter-HMC sends take the fault-aware path: per-hop link-liveness
// checks, adaptive rerouting, and probabilistic drop/corrupt draws. The
// GPU<->HMC host links stay reliable — their flow control is outside the
// paper's memory network.
func (f *Fabric) SetFault(inj *fault.Injector) { f.flt = inj }

// AbandonOffload tells the attached auditor (if any) that the GPU has given
// up on an offload instance — any packets of that ID still in flight are
// legally orphaned and must not be reported as lost at drain.
func (f *Fabric) AbandonOffload(now timing.PS, id core.OffloadID) {
	if f.aud != nil {
		f.aud.Abandon(now, id)
	}
}

// Dims returns the memory-network dimensionality the fabric was built with
// (hypercube dimensions, or 2 for the ring's two directions).
func (f *Fabric) Dims() int { return f.dims }

// Ring reports whether the memory network is the ring topology.
func (f *Fabric) Ring() bool { return f.ring }

// DetourBound is the hard per-packet hop limit on the fault-aware path: a
// packet still in flight when the topology changes may follow a stale route
// for a hop, but can never loop unboundedly — past this bound it is dropped
// as unreachable. It is also the hop bound the lossy audit enforces.
func (f *Fabric) DetourBound() int { return 4 * f.numHMCs }

// linkUp reports whether the physical link between neighbors u and w is
// alive at now. Liveness is symmetric: the injector stores link state at the
// canonical (lower) endpoint.
func (f *Fabric) linkUp(now timing.PS, u, w int) bool {
	if f.ring {
		j := u
		if w != (u+1)%f.numHMCs {
			j = w
		}
		return !f.flt.LinkDead(now, j, 0)
	}
	d := bits.TrailingZeros32(uint32(u ^ w))
	return !f.flt.LinkDead(now, u&^(1<<d), d)
}

// linkDim returns the mesh dimension index of the link from cur to its
// neighbor next.
func (f *Fabric) linkDim(cur, next int) int {
	if f.ring {
		if next == (cur+1)%f.numHMCs {
			return 0
		}
		return 1
	}
	return bits.TrailingZeros32(uint32(cur ^ next))
}

// dimOrderNext returns the next hop the fault-free deterministic routing
// would take (dimension-order for the hypercube, shortest direction for the
// ring), ignoring link liveness. Used to count rerouted hops.
func (f *Fabric) dimOrderNext(cur, dst int) int {
	if f.ring {
		cw := (dst - cur + f.numHMCs) % f.numHMCs
		if cw <= f.numHMCs-cw {
			return (cur + 1) % f.numHMCs
		}
		return (cur - 1 + f.numHMCs) % f.numHMCs
	}
	d := bits.TrailingZeros32(uint32(cur ^ dst))
	return cur ^ (1 << d)
}

// liveRoutes returns the next-hop table over currently-live links, rebuilt
// lazily whenever the injector's topology version changes. For each
// destination a breadth-first search (neighbors visited in ascending
// dimension order, so path choice is deterministic) yields the shortest
// live path; unreachable pairs get -1. On a fully-live topology the table
// reproduces shortest-path routing, and the escape behaviour around dead
// links is livelock-free by construction: the table is loop-free at any
// fixed topology version, and the DetourBound caps transient loops across
// version changes.
func (f *Fabric) liveRoutes(now timing.PS) [][]int16 {
	v := f.flt.TopoVersion(now)
	if f.routeNext != nil && f.routeVer == v {
		return f.routeNext
	}
	n := f.numHMCs
	if f.routeNext == nil {
		f.routeNext = make([][]int16, n)
		for i := range f.routeNext {
			f.routeNext[i] = make([]int16, n)
		}
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)
	var nbuf [16]int
	neighbors := func(u int) []int {
		b := nbuf[:0]
		if f.ring {
			b = append(b, (u+1)%n, (u-1+n)%n)
		} else {
			for d := 0; d < f.dims; d++ {
				b = append(b, u^(1<<d))
			}
		}
		return b
	}
	for dst := 0; dst < n; dst++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			f.routeNext[i][dst] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range neighbors(u) {
				if dist[w] >= 0 || !f.linkUp(now, u, w) {
					continue
				}
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
		// Next hop: the first live distance-reducing neighbor in dimension
		// order. On a fully-live topology this IS the deterministic
		// fault-free route (lowest differing dimension first / shortest ring
		// direction), so a dormant injector leaves every packet's path — and
		// therefore link contention and timing — bit-identical.
		for u := 0; u < n; u++ {
			if u == dst || dist[u] < 0 {
				continue
			}
			for _, w := range neighbors(u) {
				if dist[w] >= 0 && dist[w] == dist[u]-1 && f.linkUp(now, u, w) {
					f.routeNext[u][dst] = int16(w)
					break
				}
			}
		}
		f.routeNext[dst][dst] = int16(dst)
	}
	f.routeVer = v
	return f.routeNext
}

// sendMeshFaulty is the fault-aware inter-HMC send: per-hop adaptive
// routing over live links with a deterministic dimension-order preference,
// plus the packet's drop/corrupt draw. A packet with no live route (or past
// the detour bound) is dropped and reported to the lossy audit; the offload
// protocol's retry path recovers the loss end-to-end.
func (f *Fabric) sendMeshFaulty(now timing.PS, src, dst, size int, msg any) timing.PS {
	drop, corrupt := f.flt.DrawDrop()
	t := now
	cur := src
	hops := 0
	bound := f.DetourBound()
	for cur != dst && hops < bound {
		next := int(f.liveRoutes(t)[cur][dst])
		if next < 0 {
			break
		}
		if f.st != nil && next != f.dimOrderNext(cur, dst) {
			f.st.ReroutedHops++
		}
		t = f.mesh[cur][f.linkDim(cur, next)].Send(t, size)
		f.addTraffic(stats.MemNet, int64(size))
		cur = next
		hops++
		if drop {
			break // lost in flight after its first traversed hop
		}
	}
	switch {
	case drop:
		if f.st != nil {
			f.st.DroppedPackets++
		}
	case corrupt && cur == dst:
		// Consumed bandwidth all the way, discarded at the CRC check.
		if f.st != nil {
			f.st.CorruptedPackets++
		}
	case cur != dst:
		if f.st != nil {
			f.st.RouteUnreachable++
		}
	default:
		if f.aud != nil {
			f.aud.Inject(now, t, src, dst, hops, msg)
		}
		f.hmcInbox[dst].Put(t, msg)
		return t
	}
	if f.aud != nil {
		f.aud.Dropped(now, src, dst, msg)
	}
	return t
}

// Diameter returns the maximum hop count between any two stacks on the
// memory network: the dimension count for the hypercube, half the ring for
// the ring topology.
func (f *Fabric) Diameter() int {
	if f.ring {
		return f.numHMCs / 2
	}
	return f.dims
}

func (f *Fabric) trace(now timing.PS, routeFmt string, a, b, size int, msg any) {
	if f.tracer == nil {
		return
	}
	f.tracer(now, fmt.Sprintf(routeFmt, a, b), size, msg)
}

func (f *Fabric) addTraffic(c stats.TrafficClass, n int64) {
	if f.st != nil {
		f.st.AddTraffic(c, n)
	}
}

// SendGPUToHMC ships a packet from the GPU to HMC dst.
func (f *Fabric) SendGPUToHMC(now timing.PS, dst, size int, msg any) timing.PS {
	f.trace(now, "gpu->hmc%d%.0d", dst, 0, size, msg)
	at := f.gpuToHMC[dst].Send(now, size)
	f.addTraffic(stats.GPULink, int64(size))
	if f.aud != nil {
		f.aud.Inject(now, at, audit.GPUNode, dst, 0, msg)
	}
	f.hmcInbox[dst].Put(at, msg)
	return at
}

// SendHMCToGPU ships a packet from HMC src to the GPU.
func (f *Fabric) SendHMCToGPU(now timing.PS, src, size int, msg any) timing.PS {
	f.trace(now, "hmc%d->gpu%.0d", src, 0, size, msg)
	at := f.hmcToGPU[src].Send(now, size)
	f.addTraffic(stats.GPULink, int64(size))
	if f.aud != nil {
		f.aud.Inject(now, at, src, audit.GPUNode, 0, msg)
	}
	f.gpuInbox.Put(at, msg)
	return at
}

// SendHMCToHMC ships a packet between stacks over the memory network using
// dimension-order routing with store-and-forward per hop. src == dst is
// legal and models logic-layer-internal movement (no link traversal).
func (f *Fabric) SendHMCToHMC(now timing.PS, src, dst, size int, msg any) timing.PS {
	f.trace(now, "hmc%d->hmc%d", src, dst, size, msg)
	if src == dst {
		if f.aud != nil {
			f.aud.Inject(now, now, src, dst, 0, msg)
		}
		f.hmcInbox[dst].Put(now, msg)
		return now
	}
	if f.flt != nil {
		return f.sendMeshFaulty(now, src, dst, size, msg)
	}
	t := now
	cur := src
	hops := 0
	for cur != dst {
		var d, next int
		if f.ring {
			// Shortest direction around the ring: mesh[i][0] goes
			// clockwise to i+1, mesh[i][1] counter-clockwise to i-1.
			cw := (dst - cur + f.numHMCs) % f.numHMCs
			if cw <= f.numHMCs-cw {
				d, next = 0, (cur+1)%f.numHMCs
			} else {
				d, next = 1, (cur-1+f.numHMCs)%f.numHMCs
			}
		} else {
			diff := uint(cur ^ dst)
			for diff&1 == 0 {
				diff >>= 1
				d++
			}
			next = cur ^ (1 << d)
		}
		link := f.mesh[cur][d]
		t = link.Send(t, size) // arrival at next hop
		f.addTraffic(stats.MemNet, int64(size))
		cur = next
		hops++
	}
	if f.aud != nil {
		f.aud.Inject(now, t, src, dst, hops, msg)
	}
	f.hmcInbox[dst].Put(t, msg)
	return t
}

// Hops returns the number of memory-network hops between two stacks.
func (f *Fabric) Hops(src, dst int) int {
	if f.ring {
		cw := (dst - src + f.numHMCs) % f.numHMCs
		if ccw := f.numHMCs - cw; ccw < cw {
			return ccw
		}
		return cw
	}
	h := 0
	for x := src ^ dst; x != 0; x >>= 1 {
		h += x & 1
	}
	return h
}

// HMCInbox returns HMC i's delivery queue.
func (f *Fabric) HMCInbox(i int) *Inbox { return &f.hmcInbox[i] }

// GPUInbox returns the GPU-side delivery queue.
func (f *Fabric) GPUInbox() *Inbox { return &f.gpuInbox }

// GPULinkBytes returns total bytes carried on the GPU links (both
// directions).
func (f *Fabric) GPULinkBytes() int64 {
	var n int64
	for i := 0; i < f.numHMCs; i++ {
		n += f.gpuToHMC[i].Bytes + f.hmcToGPU[i].Bytes
	}
	return n
}

// MeshBytes returns total bytes carried on memory-network links.
func (f *Fabric) MeshBytes() int64 {
	var n int64
	for _, ls := range f.mesh {
		for _, l := range ls {
			n += l.Bytes
		}
	}
	return n
}

// Quiesced reports whether all inboxes are empty.
func (f *Fabric) Quiesced() bool {
	if f.gpuInbox.Len() > 0 {
		return false
	}
	for i := range f.hmcInbox {
		if f.hmcInbox[i].Len() > 0 {
			return false
		}
	}
	return true
}
