// Package prof wires the standard Go CPU, heap, mutex, and block profilers
// into the command-line tools, so simulator hot spots and lock contention
// can be inspected with `go tool pprof` without rebuilding anything.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Options names the profile outputs; empty paths disable the corresponding
// profiler.
type Options struct {
	CPU   string // CPU profile, sampled while running
	Mem   string // GC-settled heap profile, written at stop
	Mutex string // mutex-contention profile, written at stop
	Block string // blocking (channel/lock wait) profile, written at stop
}

// Start begins CPU profiling if cpuFile is non-empty and returns a stop
// function that ends the CPU profile and, if memFile is non-empty, writes a
// GC-settled heap profile. Kept for callers that only need the classic pair;
// see StartOpts for mutex/block profiles.
func Start(cpuFile, memFile string) (stop func(), err error) {
	return StartOpts(Options{CPU: cpuFile, Mem: memFile})
}

// StartOpts enables the requested profilers and returns a stop function that
// writes every end-of-run profile. The stop function must run before process
// exit; it is safe to call when all paths are empty.
//
// Mutex and block profiling carry a runtime cost while enabled, so their
// collection rates are only raised when an output path asks for them.
func StartOpts(o Options) (stop func(), err error) {
	var cpu *os.File
	if o.CPU != "" {
		cpu, err = os.Create(o.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if o.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if o.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if o.Mem != "" {
			writeProfile(o.Mem, "memprofile", func(f *os.File) error {
				runtime.GC() // settle the heap so the profile shows live objects
				return pprof.WriteHeapProfile(f)
			})
		}
		if o.Mutex != "" {
			writeNamed(o.Mutex, "mutexprofile", "mutex")
		}
		if o.Block != "" {
			writeNamed(o.Block, "blockprofile", "block")
		}
	}, nil
}

// writeNamed dumps one of the runtime's named profiles.
func writeNamed(path, label, profile string) {
	writeProfile(path, label, func(f *os.File) error {
		return pprof.Lookup(profile).WriteTo(f, 0)
	})
}

func writeProfile(path, label string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, label+":", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, label+":", err)
	}
}
