package audit

import (
	"strings"
	"testing"

	"ndpgpu/internal/core"
	"ndpgpu/internal/timing"
)

func violationsMatching(a *Auditor, substr string) int {
	n := 0
	for _, v := range a.Violations() {
		if strings.Contains(v.String(), substr) {
			n++
		}
	}
	return n
}

func TestAuditorErr(t *testing.T) {
	a := New()
	if err := a.Err(); err != nil {
		t.Fatalf("clean auditor Err = %v, want nil", err)
	}
	a.Reportf(100, "x", "inv", "boom %d", 7)
	err := a.Err()
	if err == nil {
		t.Fatal("Err = nil after a violation")
	}
	if !strings.Contains(err.Error(), "boom 7") {
		t.Fatalf("Err = %v, want detail included", err)
	}
	if a.Count() != 1 {
		t.Fatalf("Count = %d, want 1", a.Count())
	}
}

func TestAuditorRecordingCap(t *testing.T) {
	a := New()
	for i := 0; i < maxRecorded+50; i++ {
		a.Reportf(timing.PS(i), "x", "inv", "v%d", i)
	}
	if got := len(a.Violations()); got != maxRecorded {
		t.Fatalf("recorded %d violations, want cap %d", got, maxRecorded)
	}
	if a.Count() != int64(maxRecorded+50) {
		t.Fatalf("Count = %d, want %d", a.Count(), maxRecorded+50)
	}
}

func TestAuditorTickerRunsChecks(t *testing.T) {
	a := New()
	var calls, finals int
	a.Register("probe", func(now timing.PS, final bool) {
		calls++
		if final {
			finals++
		}
	})
	tk := a.Ticker()
	tk.Tick(10)
	tk.Tick(20)
	a.RunChecks(30, true)
	if calls != 3 || finals != 1 {
		t.Fatalf("calls=%d finals=%d, want 3/1", calls, finals)
	}
	h, ok := tk.(timing.IdleHint)
	if !ok {
		t.Fatal("audit ticker must implement timing.IdleHint to keep domains skippable")
	}
	if got := h.NextWorkAt(10); got != timing.Never {
		t.Fatalf("NextWorkAt = %d, want Never", got)
	}
}

func TestNetworkConservationClean(t *testing.T) {
	a := New()
	n := NewNetwork(a, 3)
	p1, p2 := &core.ReadReq{}, &core.ReadResp{}
	n.Inject(100, 150, GPUNode, 2, 0, p1)
	n.Eject(150, p1)
	n.Inject(200, 260, 2, GPUNode, 0, p2)
	n.Eject(300, p2)
	a.RunChecks(400, true)
	if err := a.Err(); err != nil {
		t.Fatalf("clean inject/eject flow: %v", err)
	}
}

func TestNetworkDuplicateInjection(t *testing.T) {
	a := New()
	n := NewNetwork(a, 3)
	p := &core.ReadReq{}
	n.Inject(100, 150, GPUNode, 2, 0, p)
	n.Inject(110, 160, GPUNode, 2, 0, p)
	if violationsMatching(a, "duplicate injection") != 1 {
		t.Fatalf("duplicate injection not flagged: %v", a.Violations())
	}
}

func TestNetworkEjectUnknown(t *testing.T) {
	a := New()
	n := NewNetwork(a, 3)
	n.Eject(100, &core.ReadReq{})
	if violationsMatching(a, "never injected") != 1 {
		t.Fatalf("unknown ejection not flagged: %v", a.Violations())
	}
}

func TestNetworkLossAtDrain(t *testing.T) {
	a := New()
	n := NewNetwork(a, 3)
	n.Inject(100, 150, 1, 2, 1, &core.ReadReq{})
	a.RunChecks(500, false) // non-final pass must not flag in-flight packets
	if a.Count() != 0 {
		t.Fatalf("in-flight packet flagged before drain: %v", a.Violations())
	}
	a.RunChecks(1000, true)
	if violationsMatching(a, "lost") != 1 {
		t.Fatalf("lost packet not flagged at drain: %v", a.Violations())
	}
}

func TestNetworkHopBound(t *testing.T) {
	a := New()
	n := NewNetwork(a, 3)
	p := &core.WritePacket{}
	n.Inject(100, 200, 0, 7, 4, p) // 4 hops on a diameter-3 hypercube
	if violationsMatching(a, "hop") == 0 {
		t.Fatalf("hop-bound violation not flagged: %v", a.Violations())
	}
}

// offloadCmd builds a command packet opening block (sm, warp) on target.
func offloadCmd(sm, warp int32, target, numLD, numST int) *core.CmdPacket {
	return &core.CmdPacket{
		ID: core.OffloadID{SM: sm, Warp: warp}, Target: target,
		NumLD: numLD, NumST: numST,
	}
}

func TestProtocolLifecycleClean(t *testing.T) {
	a := New()
	n := NewNetwork(a, 3)
	id := core.OffloadID{SM: 0, Warp: 3}
	cmd := offloadCmd(0, 3, 2, 1, 1)
	n.Inject(100, 150, GPUNode, 2, 0, cmd)
	n.Eject(150, cmd)
	rdf := &core.RDFPacket{ID: id, Seq: 0, Target: 2}
	n.Inject(160, 200, GPUNode, 5, 0, rdf)
	n.Eject(200, rdf)
	resp := &core.RDFResp{ID: id, Seq: 0}
	n.Inject(210, 260, 5, 2, 1, resp)
	n.Eject(260, resp)
	wta := &core.WTAPacket{ID: id, Seq: 0, Target: 2}
	n.Inject(270, 300, GPUNode, 2, 0, wta)
	n.Eject(300, wta)
	wr := &core.WritePacket{ID: id, Seq: 0, Source: 2}
	n.Inject(310, 350, 2, 6, 1, wr)
	n.Eject(350, wr)
	wack := &core.WriteAck{ID: id, Seq: 0}
	n.Inject(360, 400, 6, 2, 1, wack)
	n.Eject(400, wack)
	ack := &core.AckPacket{ID: id}
	n.Inject(410, 460, 2, GPUNode, 0, ack)
	n.Eject(460, ack)
	a.RunChecks(500, true)
	if err := a.Err(); err != nil {
		t.Fatalf("legal offload lifecycle flagged: %v", err)
	}
}

func TestProtocolViolations(t *testing.T) {
	t.Run("DataBeforeCommand", func(t *testing.T) {
		a := New()
		n := NewNetwork(a, 3)
		n.Inject(100, 150, GPUNode, 2, 0, &core.RDFPacket{ID: core.OffloadID{SM: 1, Warp: 2}, Target: 2})
		if violationsMatching(a, "not open") != 1 {
			t.Fatalf("RDF before command not flagged: %v", a.Violations())
		}
	})
	t.Run("Reopen", func(t *testing.T) {
		a := New()
		n := NewNetwork(a, 3)
		n.Inject(100, 150, GPUNode, 2, 0, offloadCmd(1, 2, 2, 1, 0))
		n.Inject(200, 250, GPUNode, 2, 0, offloadCmd(1, 2, 2, 1, 0))
		if violationsMatching(a, "re-issued") != 1 {
			t.Fatalf("command reopen not flagged: %v", a.Violations())
		}
	})
	t.Run("SeqOutOfRange", func(t *testing.T) {
		a := New()
		n := NewNetwork(a, 3)
		id := core.OffloadID{SM: 1, Warp: 2}
		n.Inject(100, 150, GPUNode, 2, 0, offloadCmd(1, 2, 2, 1, 0))
		n.Inject(160, 200, GPUNode, 2, 0, &core.RDFPacket{ID: id, Seq: 1, Target: 2})
		if violationsMatching(a, "outside reserved range") != 1 {
			t.Fatalf("out-of-range sequence not flagged: %v", a.Violations())
		}
	})
	t.Run("OrphanAtDrain", func(t *testing.T) {
		a := New()
		n := NewNetwork(a, 3)
		cmd := offloadCmd(1, 2, 2, 1, 0)
		n.Inject(100, 150, GPUNode, 2, 0, cmd)
		n.Eject(150, cmd)
		a.RunChecks(1000, true)
		if violationsMatching(a, "never acknowledged") != 1 {
			t.Fatalf("orphaned block not flagged: %v", a.Violations())
		}
	})
	t.Run("AckWithoutOpen", func(t *testing.T) {
		a := New()
		n := NewNetwork(a, 3)
		n.Inject(100, 150, 2, GPUNode, 0, &core.AckPacket{ID: core.OffloadID{SM: 1, Warp: 2}})
		if violationsMatching(a, "not open") != 1 {
			t.Fatalf("stray ack not flagged: %v", a.Violations())
		}
	})
}

// ddr is a small DRAM timing set for the vault-audit tests: tCK=1000 ps,
// tRCD=2, tRAS=5, tRP=2, tCCD=1.
var ddr = DRAMTiming{TCKps: 1000, TRCD: 2, TRAS: 5, TRP: 2, TCCD: 1}

func TestVaultAuditLegalSequence(t *testing.T) {
	a := New()
	v := NewVaultAudit(a, "v0", ddr, 2)
	v.OnActivate(0, 0, 7)
	v.OnActivate(1000, 1, 3)       // independent bank
	v.OnColumn(2000, 0, 7, false)  // ACT+tRCD
	v.OnColumn(3000, 0, 7, true)   // +tCCD
	v.OnPrecharge(5000, 5000, 0)   // ACT+tRAS
	v.OnActivate(7000, 0, 9)       // PRE+tRP
	v.OnColumn(9000, 0, 9, false)  // ACT+tRCD
	v.OnColumn(10000, 1, 3, false) // bus free again
	if err := a.Err(); err != nil {
		t.Fatalf("legal DRAM sequence flagged: %v", err)
	}
}

func TestVaultAuditViolations(t *testing.T) {
	t.Run("EarlyCAS", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 1)
		v.OnActivate(0, 0, 7)
		v.OnColumn(1000, 0, 7, false) // tRCD is 2000 ps
		if violationsMatching(a, "tRCD") != 1 {
			t.Fatalf("tRCD violation not flagged: %v", a.Violations())
		}
	})
	t.Run("CASClosedBank", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 1)
		v.OnColumn(1000, 0, 7, false)
		if violationsMatching(a, "no open row") != 1 {
			t.Fatalf("CAS to closed bank not flagged: %v", a.Violations())
		}
	})
	t.Run("CASWrongRow", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 1)
		v.OnActivate(0, 0, 7)
		v.OnColumn(2000, 0, 8, false)
		if violationsMatching(a, "row 7 is open") != 1 {
			t.Fatalf("row mismatch not flagged: %v", a.Violations())
		}
	})
	t.Run("EarlyCCD", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 2)
		v.OnActivate(0, 0, 7)
		v.OnActivate(0, 1, 3)
		v.OnColumn(2000, 0, 7, false)
		v.OnColumn(2500, 1, 3, false) // bus busy until 3000
		if violationsMatching(a, "tCCD") != 1 {
			t.Fatalf("tCCD violation not flagged: %v", a.Violations())
		}
	})
	t.Run("ActOpenBank", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 1)
		v.OnActivate(0, 0, 7)
		v.OnActivate(3000, 0, 8)
		if violationsMatching(a, "already open") != 1 {
			t.Fatalf("double activate not flagged: %v", a.Violations())
		}
	})
	t.Run("EarlyPrecharge", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 1)
		v.OnActivate(0, 0, 7)
		v.OnPrecharge(3000, 3000, 0) // tRAS is 5000 ps
		if violationsMatching(a, "tRAS") != 1 {
			t.Fatalf("tRAS violation not flagged: %v", a.Violations())
		}
	})
	t.Run("EarlyActAfterPrecharge", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 1)
		v.OnActivate(0, 0, 7)
		v.OnPrecharge(5000, 5000, 0)
		v.OnActivate(6000, 0, 9) // tRP is 2000 ps
		if violationsMatching(a, "tRP") != 1 {
			t.Fatalf("tRP violation not flagged: %v", a.Violations())
		}
	})
	t.Run("ActDuringRefresh", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 1)
		v.OnRefresh(1000, 9000)
		v.OnActivate(5000, 0, 7)
		if violationsMatching(a, "refresh") == 0 {
			t.Fatalf("activate during refresh not flagged: %v", a.Violations())
		}
	})
	t.Run("RefreshClosesRows", func(t *testing.T) {
		a := New()
		v := NewVaultAudit(a, "v0", ddr, 1)
		v.OnActivate(0, 0, 7)
		v.OnRefresh(6000, 9000)
		v.OnColumn(9000, 0, 7, false) // row was closed by refresh
		if violationsMatching(a, "no open row") != 1 {
			t.Fatalf("CAS after refresh-close not flagged: %v", a.Violations())
		}
	})
}
