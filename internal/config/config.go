// Package config defines the simulated system configuration.
//
// The default values reproduce Table 2 of Kim et al., "Toward Standardized
// Near-Data Processing with Unrestricted Data Placement for GPUs" (SC '17):
// a 64-SM GPU attached to 8 HMC-like memory stacks through 8 bidirectional
// 20 GB/s links, with an NSU (Near-data processing SIMD Unit) on the logic
// layer of each stack and a 3D-hypercube memory network between stacks.
package config

import (
	"errors"
	"fmt"
	"runtime"
)

// GPUConfig describes the host GPU (Table 2, "GPU" section).
type GPUConfig struct {
	NumSMs int // number of streaming multiprocessors

	// Per-SM limits.
	MaxThreadsPerSM int // hardware thread contexts per SM
	MaxCTAsPerSM    int // concurrent thread blocks per SM
	MaxRegsPerSM    int // register file capacity (32-bit regs)
	WarpWidth       int // threads per warp
	ScratchpadBytes int // shared-memory capacity per SM

	// Execution resources per SM.
	NumALUs      int // SIMD ALU pipelines (each executes one warp instr/cycle)
	NumLSUs      int // load/store units
	ALULatency   int // cycles from issue to writeback for ALU ops
	MaxIssue     int // instructions issued per cycle per SM
	L1HitLatency int // L1 data cache hit latency (SM cycles)
	L2Latency    int // L2 access latency (L2-clock cycles, excluding queuing)
	// Address translation lives on the GPU (the paper's core premise): a
	// per-SM TLB over 4 KB pages with a fixed page-walk penalty on miss.
	TLBEntries     int
	TLBWays        int
	TLBMissLatency int    // SM cycles
	SchedulerKind  string // "gto" or "rr"

	// Clocks in MHz (Table 2: SM, Xbar, L2 clock: 700, 1250, 700 MHz).
	SMClockMHz   int
	XbarClockMHz int
	L2ClockMHz   int

	// Caches.
	L1I CacheGeom
	L1D CacheGeom
	L2  CacheGeom // total across all slices; one slice per HMC link

	// Off-chip connectivity: one bidirectional link per HMC.
	LinkGBps float64 // per direction, per link (Table 2: 20 GB/s)
}

// CacheGeom is the geometry of a set-associative cache.
type CacheGeom struct {
	SizeBytes int
	Ways      int
	LineBytes int
	MSHRs     int
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeom) Sets() int {
	if g.Ways == 0 || g.LineBytes == 0 {
		return 0
	}
	return g.SizeBytes / (g.Ways * g.LineBytes)
}

// Validate reports whether the geometry is internally consistent.
func (g CacheGeom) Validate() error {
	if g.SizeBytes <= 0 || g.Ways <= 0 || g.LineBytes <= 0 {
		return fmt.Errorf("cache geometry fields must be positive: %+v", g)
	}
	if g.SizeBytes%(g.Ways*g.LineBytes) != 0 {
		return fmt.Errorf("cache size %d not divisible by ways*line %d", g.SizeBytes, g.Ways*g.LineBytes)
	}
	s := g.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache sets %d not a power of two", s)
	}
	return nil
}

// HMCConfig describes one memory stack (Table 2, "HMC" section).
type HMCConfig struct {
	NumVaults     int
	BanksPerVault int
	SizeBytes     int64 // capacity per stack
	VaultQueue    int   // vault request queue size (FR-FCFS window)

	// DRAM timing in units of tCK.
	TCKps int // tCK in picoseconds (Table 2: 1.50 ns)
	TRP   int
	TCCD  int
	TRCD  int
	TCL   int
	TWR   int
	TRAS  int

	RowBytes int // DRAM row size per bank (4 KB per the energy model)

	// Refresh: every TREFIps the vault performs an all-bank refresh taking
	// TRFCps, during which no commands issue.
	TREFIps int
	TRFCps  int

	// Inter-stack memory network (3D hypercube over 8 stacks).
	NetLinkGBps    float64 // per direction per link
	NetLinksPerHMC int     // paper uses 3 of the 4 HMC links
	RouterLatPS    int     // per-hop router latency in picoseconds
	// NetTopology selects the inter-stack network: "hypercube" (the
	// paper's choice, 3 links/stack) or "ring" (2 links/stack) for the
	// design-choice ablation.
	NetTopology string

	// OverflowCap bounds the logic-layer retry-overflow queue (requests
	// that found their vault queue full). When the queue is at the cap the
	// stack stops popping its network inbox, pushing backpressure into the
	// mesh instead of growing without bound. 0 = default 8x VaultQueue.
	OverflowCap int
}

// EffOverflowCap returns OverflowCap with the default applied.
func (h HMCConfig) EffOverflowCap() int {
	if h.OverflowCap > 0 {
		return h.OverflowCap
	}
	return 8 * h.VaultQueue
}

// NSUConfig describes the near-data SIMD unit on each stack's logic layer.
type NSUConfig struct {
	ClockMHz   int // Table 2: 350 MHz (half of SM clock)
	NumWarps   int // warp slots (Table 2: 48)
	WarpWidth  int
	IssueWidth int // instruction slots per NSU cycle (across warps)
	// PhysSIMDWidth is the physical SIMD datapath width (§4.5): logical
	// 32-lane warps execute over ceil(active/phys) slots via temporal SIMT.
	PhysSIMDWidth   int
	ALULatency      int
	ICacheBytes     int // 4 KB
	ConstCacheBytes int // 4 KB
	// ReadOnlyCacheBytes enables the paper's §7.1 future-work extension: a
	// small read-only cache on each NSU for hot lines that RDF responses
	// keep re-shipping (the BPROP pathology). 0 disables it (the paper's
	// base design).
	ReadOnlyCacheBytes int
	ReadDataEntries    int // read data buffer: 128 B x 256 entries
	WriteAddrEntries   int // write address buffer: 128 B x 256 entries
	CmdEntries         int // offload command buffer: 10 entries
	EntryBytes         int // 128 B per read-data/write-address entry
}

// NDPConfig carries protocol-level constants of the partitioned-execution
// mechanism: packet overheads, SM-side buffers, and offload-decision knobs.
type NDPConfig struct {
	// SM-side packet buffers (Table 2): 8 B x 300 pending, 8 B x 64 ready.
	PendingEntries int
	ReadyEntries   int

	// Packet header overhead in bytes (offload packet ID + routing fields,
	// Figure 4). Address/command overhead is the same for baseline requests.
	HeaderBytes int
	WordBytes   int // data word size per thread (4 B)

	// Dynamic offload ratio controller (Algorithm 1 constants, §7.2).
	EpochCycles  int64   // 30,000 SM cycles
	InitRatio    float64 // 0.1
	InitStep     float64 // 0.15
	StepUnit     float64 // 0.05
	MinStep      float64 // 0.05
	MaxStep      float64 // 0.15
	WindowSize   int     // 4
	DecisionSeed int64   // RNG seed for ratio-based offload sampling
}

// MemConfig describes the virtual memory system.
type MemConfig struct {
	PageBytes     int   // 4 KB pages
	PlacementSeed int64 // seed for random page->HMC placement
}

// ArchConfig selects the NDP architecture backend: the design point the
// machine is assembled for. The zero value is the paper's partitioned
// execution (random 4 KB page interleave, GPU-owned translation) — every
// field below only takes effect when a non-default backend turns it on.
type ArchConfig struct {
	// Backend names the architecture: "" or "paper" (the default,
	// partitioned execution per the source paper), "coda" (CODA-style
	// locality-aware placement: pages steered to the stack that computes on
	// them), "coda-ft" (its first-touch variant), or "ndpage" (NDPage-style
	// stack-side translation for offloaded accesses). Resolved and validated
	// by internal/backend.
	Backend string

	// StackXlat moves address translation for offloaded (NDP) accesses from
	// the GPU's SM TLBs to the memory stacks: offloaded requests skip the SM
	// TLB, and each stack charges its own tailored page-table walk at the
	// logic layer (the NDPage model). Set by the ndpage backend's Apply; the
	// baseline request path is unaffected. The knobs below size the
	// per-stack translation hardware and are ignored while this is false.
	StackXlat bool

	// Per-stack TLB geometry over 4 KB pages (0 = defaults via the Eff
	// helpers). The stack walk is cheaper than the GPU's 80-SM-cycle walk
	// because the page table is resident in the stack's own DRAM.
	StackTLBEntries int
	StackTLBWays    int
	StackWalkCycles int // DRAM tCK cycles charged per stack-TLB miss
}

// StackTranslation reports whether the stacks own translation for offloaded
// accesses (the NDPage model).
func (a ArchConfig) StackTranslation() bool { return a.StackXlat }

// EffStackTLBEntries returns StackTLBEntries with the default applied.
func (a ArchConfig) EffStackTLBEntries() int {
	if a.StackTLBEntries > 0 {
		return a.StackTLBEntries
	}
	return 32
}

// EffStackTLBWays returns StackTLBWays with the default applied.
func (a ArchConfig) EffStackTLBWays() int {
	if a.StackTLBWays > 0 {
		return a.StackTLBWays
	}
	return 4
}

// EffStackWalkCycles returns StackWalkCycles with the default applied: 30
// DRAM cycles (45 ns at the Table 2 tCK), well under the GPU's 80-SM-cycle
// (~114 ns) host-side walk — the stack walks a page table held in its own
// vaults.
func (a ArchConfig) EffStackWalkCycles() int {
	if a.StackWalkCycles > 0 {
		return a.StackWalkCycles
	}
	return 30
}

// Validate checks the architecture knobs for internal consistency. Backend
// names are resolved by internal/backend (which layers on top of this
// package), so only the numeric knobs are checked here.
func (a ArchConfig) Validate() error {
	if a.StackTLBEntries < 0 || a.StackTLBWays < 0 || a.StackWalkCycles < 0 {
		return errors.New("stack-TLB knobs must be non-negative")
	}
	if a.StackXlat {
		entries, ways := a.EffStackTLBEntries(), a.EffStackTLBWays()
		if entries%ways != 0 {
			return fmt.Errorf("stack-TLB entries %d not divisible by ways %d", entries, ways)
		}
		if sets := entries / ways; sets&(sets-1) != 0 {
			return fmt.Errorf("stack-TLB sets %d not a power of two", sets)
		}
	}
	return nil
}

// FaultEvent is one scheduled fault. Times are absolute simulated
// picoseconds; DurPS==0 makes the fault permanent (legal for linkdown and
// nsufail; vaultfreeze and nsustall must be windowed so the run can drain).
type FaultEvent struct {
	Kind  string // "linkdown", "nsustall", "nsufail", "vaultfreeze"
	AtPS  int64  // activation time
	DurPS int64  // window length; 0 = permanent
	HMC   int    // stack the fault hits
	Dim   int    // linkdown: hypercube dimension (or ring direction 0/1)
	Vault int    // vaultfreeze: vault index within the stack
}

// FaultConfig is the deterministic fault schedule plus the resilience
// protocol knobs. The zero value means "no faults": every injection and
// recovery path in the simulator is compiled out behind a nil injector, so
// an empty schedule is a strict no-op.
type FaultConfig struct {
	Events []FaultEvent

	// Probabilistic per-packet faults on inter-HMC mesh links only (the
	// GPU<->HMC host links are modeled reliable, as their flow control is
	// not part of the paper's memory network). Draws come from a dedicated
	// PRNG seeded with Seed, so schedules are reproducible.
	Seed        int64
	DropProb    float64 // probability a mesh packet is silently lost
	CorruptProb float64 // probability a mesh packet is discarded at CRC check

	// Offload-protocol resilience knobs (0 = default).
	TimeoutCycles int64 // SM cycles before the first per-block retry fires
	MaxRetries    int   // retries before host-side fallback + quarantine
}

// Enabled reports whether any fault can ever fire. When false the simulator
// builds no injector and all fault paths stay on their zero-cost branches.
func (f FaultConfig) Enabled() bool {
	return len(f.Events) > 0 || f.DropProb > 0 || f.CorruptProb > 0
}

// EffTimeoutCycles returns TimeoutCycles with the default applied.
func (f FaultConfig) EffTimeoutCycles() int64 {
	if f.TimeoutCycles > 0 {
		return f.TimeoutCycles
	}
	return 30000
}

// EffMaxRetries returns MaxRetries with the default applied.
func (f FaultConfig) EffMaxRetries() int {
	if f.MaxRetries > 0 {
		return f.MaxRetries
	}
	return 3
}

// Validate checks the fault schedule for internal consistency.
func (f FaultConfig) Validate(numHMCs, numVaults int) error {
	for _, e := range f.Events {
		if e.AtPS < 0 || e.DurPS < 0 {
			return fmt.Errorf("fault %s: negative time", e.Kind)
		}
		if e.HMC < 0 || e.HMC >= numHMCs {
			return fmt.Errorf("fault %s: hmc %d out of range [0,%d)", e.Kind, e.HMC, numHMCs)
		}
		switch e.Kind {
		case "linkdown":
			if e.Dim < 0 {
				return fmt.Errorf("linkdown: negative dimension %d", e.Dim)
			}
		case "nsufail":
		case "nsustall", "vaultfreeze":
			if e.DurPS == 0 {
				return fmt.Errorf("fault %s must be windowed (dur > 0), or the run cannot drain", e.Kind)
			}
			if e.Kind == "vaultfreeze" && (e.Vault < 0 || e.Vault >= numVaults) {
				return fmt.Errorf("vaultfreeze: vault %d out of range [0,%d)", e.Vault, numVaults)
			}
		default:
			return fmt.Errorf("unknown fault kind %q", e.Kind)
		}
	}
	if f.DropProb < 0 || f.DropProb > 1 || f.CorruptProb < 0 || f.CorruptProb > 1 {
		return errors.New("fault drop/corrupt probabilities must be in [0,1]")
	}
	return nil
}

// Config is the complete system configuration.
type Config struct {
	GPU     GPUConfig
	HMC     HMCConfig
	NumHMCs int
	NSU     NSUConfig
	NDP     NDPConfig
	Mem     MemConfig
	Arch    ArchConfig  // zero value = the paper's architecture (strict no-op)
	Fault   FaultConfig // zero value = fault-free (strict no-op)

	// Parallel selects deterministic sharded execution of the tick engine:
	// the number of worker goroutines ticking shards (SMs, memory stacks)
	// concurrently. 1 runs the reference serial engine; 0 means "auto" —
	// min(runtime.NumCPU(), shard count), so a single-core host stays
	// serial instead of benchmarking pure overhead. Results are
	// bit-identical at every setting (see internal/timing/parallel.go).
	Parallel int

	// FusionWidth folds each domain's shards into this many supershards for
	// pool dispatch (internal/timing: Pool.RunFused). Fewer supershards mean
	// fewer phase-barrier participants; the commit-replay and sequenced-
	// operation orders are unchanged, so results stay bit-identical at every
	// width. 0 means "auto": one supershard per effective worker, capped at
	// the host CPU count.
	FusionWidth int

	// NoQuiescentBatch disables quiescent-phase barrier elision (the zero
	// value keeps it enabled): with batching on, a compute phase in which at
	// most one shard can act — every other shard proves idleness and holds
	// no deferred cross-shard effects — runs inline on the coordinating
	// goroutine with no worker wake-up. Purely a performance knob; results
	// are bit-identical either way.
	NoQuiescentBatch bool
}

// EffParallel resolves the Parallel setting against the host: 0 (auto) picks
// min(runtime.NumCPU(), shards) so parallelism never exceeds what the host or
// the shard map can use; explicit values pass through.
func (c Config) EffParallel(shards int) int {
	if c.Parallel != 0 {
		return c.Parallel
	}
	n := runtime.NumCPU()
	if n > shards {
		n = shards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// EffFusion resolves the FusionWidth setting for a domain of `shards` shards
// run by `par` workers: 0 (auto) targets one supershard per worker, capped at
// the host CPU count (extra supershards beyond the CPUs only add barrier
// participants). The result is clamped to [1, shards].
func (c Config) EffFusion(par, shards int) int {
	w := c.FusionWidth
	if w <= 0 {
		w = par
		if n := runtime.NumCPU(); w > n {
			w = n
		}
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Default returns the Table 2 configuration.
func Default() Config {
	return Config{
		GPU: GPUConfig{
			NumSMs:          64,
			MaxThreadsPerSM: 1536,
			MaxCTAsPerSM:    8,
			MaxRegsPerSM:    32768,
			WarpWidth:       32,
			ScratchpadBytes: 48 << 10,
			NumALUs:         2,
			NumLSUs:         1,
			ALULatency:      8,
			MaxIssue:        1,
			L1HitLatency:    4,
			L2Latency:       30,
			TLBEntries:      64,
			TLBWays:         8,
			TLBMissLatency:  80,
			SchedulerKind:   "gto",
			SMClockMHz:      700,
			XbarClockMHz:    1250,
			L2ClockMHz:      700,
			L1I:             CacheGeom{SizeBytes: 4 << 10, Ways: 4, LineBytes: 128, MSHRs: 2},
			L1D:             CacheGeom{SizeBytes: 32 << 10, Ways: 4, LineBytes: 128, MSHRs: 48},
			L2:              CacheGeom{SizeBytes: 2 << 20, Ways: 16, LineBytes: 128, MSHRs: 48},
			LinkGBps:        20,
		},
		HMC: HMCConfig{
			NumVaults:      16,
			BanksPerVault:  16,
			SizeBytes:      4 << 30,
			VaultQueue:     64,
			TCKps:          1500,
			TRP:            9,
			TCCD:           4,
			TRCD:           9,
			TCL:            9,
			TWR:            12,
			TRAS:           24,
			RowBytes:       4 << 10,
			TREFIps:        7_800_000, // 7.8 us
			TRFCps:         160_000,   // 160 ns all-bank refresh
			NetLinkGBps:    20,
			NetTopology:    "hypercube",
			NetLinksPerHMC: 3,
			RouterLatPS:    4500, // 3 tCK of routing latency per hop
		},
		NumHMCs: 8,
		NSU: NSUConfig{
			ClockMHz:         350,
			NumWarps:         48,
			WarpWidth:        32,
			IssueWidth:       2,
			PhysSIMDWidth:    32,
			ALULatency:       8,
			ICacheBytes:      4 << 10,
			ConstCacheBytes:  4 << 10,
			ReadDataEntries:  256,
			WriteAddrEntries: 256,
			CmdEntries:       10,
			EntryBytes:       128,
		},
		NDP: NDPConfig{
			PendingEntries: 300,
			ReadyEntries:   64,
			HeaderBytes:    16,
			WordBytes:      4,
			// The paper uses 30,000-cycle epochs on full-size workloads;
			// our problem sizes are scaled down ~30x, so the epoch scales
			// with them to give the controller a comparable number of
			// decisions per run.
			EpochCycles:  4000,
			InitRatio:    0.1,
			InitStep:     0.15,
			StepUnit:     0.05,
			MinStep:      0.05,
			MaxStep:      0.15,
			WindowSize:   4,
			DecisionSeed: 1,
		},
		Mem: MemConfig{
			PageBytes:     4 << 10,
			PlacementSeed: 42,
		},
		// The serial reference engine. 0 would mean "auto" (parallel on
		// multi-core hosts); defaulting to explicit serial keeps every
		// library consumer that doesn't opt in on the reference path.
		Parallel: 1,
	}
}

// MoreCore returns the Baseline_MoreCore configuration of §6: the baseline
// GPU with 8 additional SMs (one per HMC) and no NDP.
func MoreCore() Config {
	c := Default()
	c.GPU.NumSMs += c.NumHMCs
	return c
}

// DoubleCompute returns the §7.3 sensitivity configuration with twice the
// number of SMs (the L2 is also doubled to keep per-SM cache constant).
func DoubleCompute() Config {
	c := Default()
	c.GPU.NumSMs *= 2
	c.GPU.L2.SizeBytes *= 2
	return c
}

// WithNSUReadOnlyCache returns the configuration with the §7.1 future-work
// extension enabled: an 8 KB read-only cache per NSU.
func WithNSUReadOnlyCache() Config {
	c := Default()
	c.NSU.ReadOnlyCacheBytes = 8 << 10
	return c
}

// HalfNSUClock returns the §7.6 sensitivity configuration with the NSU
// running at 175 MHz instead of 350 MHz.
func HalfNSUClock() Config {
	c := Default()
	c.NSU.ClockMHz /= 2
	return c
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.NumHMCs <= 0 || c.NumHMCs&(c.NumHMCs-1) != 0 {
		return fmt.Errorf("NumHMCs must be a positive power of two, got %d", c.NumHMCs)
	}
	if c.GPU.NumSMs <= 0 {
		return errors.New("NumSMs must be positive")
	}
	if c.GPU.WarpWidth <= 0 || c.GPU.MaxThreadsPerSM%c.GPU.WarpWidth != 0 {
		return fmt.Errorf("MaxThreadsPerSM %d not a multiple of warp width %d",
			c.GPU.MaxThreadsPerSM, c.GPU.WarpWidth)
	}
	if c.NSU.WarpWidth != c.GPU.WarpWidth {
		return fmt.Errorf("NSU warp width %d != GPU warp width %d", c.NSU.WarpWidth, c.GPU.WarpWidth)
	}
	for _, g := range []CacheGeom{c.GPU.L1I, c.GPU.L1D, c.GPU.L2} {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	if c.HMC.NumVaults <= 0 || c.HMC.NumVaults&(c.HMC.NumVaults-1) != 0 {
		return fmt.Errorf("NumVaults must be a power of two, got %d", c.HMC.NumVaults)
	}
	if c.HMC.BanksPerVault <= 0 || c.HMC.BanksPerVault&(c.HMC.BanksPerVault-1) != 0 {
		return fmt.Errorf("BanksPerVault must be a power of two, got %d", c.HMC.BanksPerVault)
	}
	if c.Mem.PageBytes <= 0 || c.Mem.PageBytes&(c.Mem.PageBytes-1) != 0 {
		return fmt.Errorf("PageBytes must be a power of two, got %d", c.Mem.PageBytes)
	}
	if c.Mem.PageBytes%c.GPU.L2.LineBytes != 0 {
		return errors.New("page size must be a multiple of the cache line size")
	}
	if c.GPU.SMClockMHz <= 0 || c.GPU.L2ClockMHz <= 0 || c.GPU.XbarClockMHz <= 0 || c.NSU.ClockMHz <= 0 {
		return errors.New("all clocks must be positive")
	}
	if c.HMC.TCKps <= 0 {
		return errors.New("tCK must be positive")
	}
	if c.NSU.PhysSIMDWidth <= 0 || c.NSU.WarpWidth%c.NSU.PhysSIMDWidth != 0 {
		return fmt.Errorf("NSU physical SIMD width %d must divide warp width %d",
			c.NSU.PhysSIMDWidth, c.NSU.WarpWidth)
	}
	switch c.HMC.NetTopology {
	case "hypercube", "ring", "":
	default:
		return fmt.Errorf("unknown memory-network topology %q", c.HMC.NetTopology)
	}
	if c.NDP.WindowSize <= 0 {
		return errors.New("dynamic-ratio window size must be positive")
	}
	if c.NDP.EpochCycles <= 0 {
		return errors.New("epoch length must be positive")
	}
	if err := c.Arch.Validate(); err != nil {
		return err
	}
	if err := c.Fault.Validate(c.NumHMCs, c.HMC.NumVaults); err != nil {
		return err
	}
	if c.Parallel < 0 {
		return fmt.Errorf("Parallel must be >= 0, got %d", c.Parallel)
	}
	if c.FusionWidth < 0 {
		return fmt.Errorf("FusionWidth must be >= 0, got %d", c.FusionWidth)
	}
	if c.Parallel != 1 && c.HMC.RouterLatPS <= 0 &&
		c.EffParallel(c.GPU.NumSMs+c.NumHMCs) > 1 {
		// The sharded executor relies on every cross-stack packet arriving
		// strictly after the tick it was sent on; a zero-latency mesh hop
		// would let a same-instant arrival depend on commit order. Parallel=0
		// (auto) trips this only on hosts where it actually resolves > 1.
		return errors.New("parallel execution requires a positive RouterLatPS")
	}
	return nil
}

// LineBytes returns the system-wide cache line / memory access granularity.
func (c Config) LineBytes() int { return c.GPU.L2.LineBytes }

// WarpsPerSM returns the number of hardware warp contexts per SM.
func (c Config) WarpsPerSM() int { return c.GPU.MaxThreadsPerSM / c.GPU.WarpWidth }

// PacketBufferBytesPerSM returns the per-SM storage for the NDP pending and
// ready packet buffers (§7.5 reports 2.84 KB with the Table 2 sizes).
func (c Config) PacketBufferBytesPerSM() int {
	return 8 * (c.NDP.PendingEntries + c.NDP.ReadyEntries)
}

// OnChipStorageBytesPerSM returns the per-SM on-chip storage used to compute
// the §7.5 overhead figure: L1I + L1D + scratchpad + a proportional share of
// the L2.
func (c Config) OnChipStorageBytesPerSM() int {
	return c.GPU.L1I.SizeBytes + c.GPU.L1D.SizeBytes + c.GPU.ScratchpadBytes +
		c.GPU.L2.SizeBytes/c.GPU.NumSMs
}
