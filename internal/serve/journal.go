package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Journal file layout (results.journal under the -data dir):
//
//	"ndpjournal-v1\n"                    file magic
//	repeat:
//	  uint32 LE  payload length
//	  uint32 LE  CRC-32C (Castagnoli) of the payload
//	  payload    JSON {"key": ..., "outcome": {...}}
//
// Appends are group-committed: a dedicated writer drains every pending
// record, writes them in one syscall, and issues a single fsync before
// acknowledging the batch — Append returns only once the record is durable,
// and concurrent appends amortize the fsync. Replay stops at the first
// record that fails its length, checksum, or JSON check and truncates the
// file there (a torn tail from kill -9 mid-write), so the journal is always
// a clean prefix of acknowledged records.
const (
	journalMagic    = "ndpjournal-v1\n"
	journalFileName = "results.journal"
	// maxJournalRecord bounds one record (a full stats bundle is ~10s of KB);
	// a bigger length prefix means a torn or corrupt header.
	maxJournalRecord = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrJournalClosed rejects appends after Close.
var ErrJournalClosed = errors.New("serve: journal closed")

// journalRecord is the persisted form of one memoized result.
type journalRecord struct {
	Key     string   `json:"key"`
	Outcome *Outcome `json:"outcome"`
}

// ReplayStats summarizes one journal replay.
type ReplayStats struct {
	Records        int     `json:"records"`         // live records recovered
	Duplicates     int     `json:"duplicates"`      // dropped duplicate keys
	Bytes          int64   `json:"bytes"`           // file size after recovery
	TruncatedBytes int64   `json:"truncated_bytes"` // torn tail cut off
	Compacted      bool    `json:"compacted"`       // file rewritten during recovery
	ReplayMS       float64 `json:"replay_ms"`
}

// JournalStats is the journal section of /status.
type JournalStats struct {
	Path     string      `json:"path"`
	Appends  int64       `json:"appends"` // durable records acknowledged this process
	Syncs    int64       `json:"syncs"`   // fsync batches (<= appends: group commit)
	Failures int64       `json:"failures"`
	Replay   ReplayStats `json:"replay"`
}

// Journal is the append-only, checksummed, fsync-batched store of
// (canonical request key -> outcome) records that survives kill -9: on
// restart, Replay hands the scheduler every completed result so only
// in-flight runs are lost.
type Journal struct {
	path string
	f    *os.File

	mu     sync.Mutex
	ch     chan journalAppend
	closed bool
	wdone  chan struct{}

	appends  atomic.Int64
	syncs    atomic.Int64
	failures atomic.Int64
	replay   ReplayStats
	replayed bool
}

type journalAppend struct {
	frame []byte
	errc  chan error
}

// OpenJournal opens (creating if needed) the journal under dir. Call Replay
// before the first Append.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(journalMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: initializing journal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		syncDir(dir)
	}
	return &Journal{path: path, f: f, ch: make(chan journalAppend, 256), wdone: make(chan struct{})}, nil
}

// syncDir makes a create/rename durable; best-effort (not every filesystem
// supports fsync on directories).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Replay reads every intact record, truncates any torn tail, compacts the
// file when recovery found waste (torn bytes or duplicate keys), and starts
// the append writer. It must be called exactly once, before any Append; the
// returned map seeds Scheduler.Restore.
func (j *Journal) Replay() (map[string]*Outcome, ReplayStats, error) {
	start := time.Now()
	if j.replayed {
		return nil, ReplayStats{}, errors.New("serve: journal already replayed")
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, ReplayStats{}, err
	}
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(j.f, magic); err != nil || string(magic) != journalMagic {
		return nil, ReplayStats{}, fmt.Errorf("serve: %s is not an ndpjournal-v1 file", j.path)
	}

	var st ReplayStats
	out := make(map[string]*Outcome)
	order := []string{} // first-appended order, for compaction
	good := int64(len(journalMagic))
	header := make([]byte, 8)
	for {
		if _, err := io.ReadFull(j.f, header); err != nil {
			break // clean EOF or torn header: stop at last good record
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > maxJournalRecord {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" || rec.Outcome == nil {
			break
		}
		good += int64(8 + len(payload))
		if _, dup := out[rec.Key]; dup {
			st.Duplicates++
			continue
		}
		out[rec.Key] = rec.Outcome
		order = append(order, rec.Key)
	}
	st.Records = len(out)

	size, err := j.f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, st, err
	}
	if size > good {
		st.TruncatedBytes = size - good
		if err := j.f.Truncate(good); err != nil {
			return nil, st, fmt.Errorf("serve: truncating torn journal tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return nil, st, err
		}
	}
	if st.TruncatedBytes > 0 || st.Duplicates > 0 {
		if err := j.compact(out, order); err != nil {
			return nil, st, err
		}
		st.Compacted = true
	}
	if size, err := j.f.Seek(0, io.SeekEnd); err == nil {
		st.Bytes = size
	}
	st.ReplayMS = float64(time.Since(start)) / float64(time.Millisecond)
	j.replay = st
	j.replayed = true
	go j.writer()
	return out, st, nil
}

// compact rewrites the journal as a clean file of exactly the live records
// (temp file + fsync + atomic rename), reopening the handle at its end.
func (j *Journal) compact(out map[string]*Outcome, order []string) error {
	if order == nil {
		order = make([]string, 0, len(out))
		for k := range out {
			order = append(order, k)
		}
		sort.Strings(order)
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, journalFileName+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: journal compaction: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.WriteString(journalMagic); err != nil {
		tmp.Close()
		return err
	}
	for _, key := range order {
		frame, err := encodeRecord(key, out[key])
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("serve: journal compaction rename: %w", err)
	}
	syncDir(dir)
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	old := j.f
	j.f = f
	old.Close()
	return nil
}

// encodeRecord frames one record: length, CRC-32C, JSON payload.
func encodeRecord(key string, out *Outcome) ([]byte, error) {
	payload, err := json.Marshal(journalRecord{Key: key, Outcome: out})
	if err != nil {
		return nil, fmt.Errorf("serve: encoding journal record: %w", err)
	}
	if len(payload) > maxJournalRecord {
		return nil, fmt.Errorf("serve: journal record too large (%d bytes)", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	return frame, nil
}

// Append persists one result and returns once it is durable (written and
// fsynced). Concurrent appends are group-committed under one fsync.
func (j *Journal) Append(key string, out *Outcome) error {
	frame, err := encodeRecord(key, out)
	if err != nil {
		j.failures.Add(1)
		return err
	}
	req := journalAppend{frame: frame, errc: make(chan error, 1)}
	j.mu.Lock()
	if !j.replayed {
		j.mu.Unlock()
		j.failures.Add(1)
		return errors.New("serve: journal append before Replay")
	}
	if j.closed {
		j.mu.Unlock()
		j.failures.Add(1)
		return ErrJournalClosed
	}
	j.ch <- req
	j.mu.Unlock()
	if err := <-req.errc; err != nil {
		j.failures.Add(1)
		return err
	}
	return nil
}

// writer is the group-commit loop: drain whatever is pending, write it as
// one batch, fsync once, acknowledge everyone.
func (j *Journal) writer() {
	defer close(j.wdone)
	for req, ok := <-j.ch; ok; req, ok = <-j.ch {
		batch := []journalAppend{req}
	drain:
		for {
			select {
			case r, more := <-j.ch:
				if !more {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		var buf []byte
		for _, r := range batch {
			buf = append(buf, r.frame...)
		}
		_, err := j.f.Write(buf)
		if err == nil {
			err = j.f.Sync()
			j.syncs.Add(1)
		}
		if err == nil {
			j.appends.Add(int64(len(batch)))
		}
		for _, r := range batch {
			r.errc <- err
		}
	}
}

// Stats returns the journal's accounting for /status.
func (j *Journal) Stats() JournalStats {
	return JournalStats{
		Path:     j.path,
		Appends:  j.appends.Load(),
		Syncs:    j.syncs.Load(),
		Failures: j.failures.Load(),
		Replay:   j.replay,
	}
}

// Close flushes pending appends and closes the file. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	replayed := j.replayed
	close(j.ch)
	j.mu.Unlock()
	if replayed {
		<-j.wdone // writer drains the channel before exiting
	}
	return j.f.Close()
}
