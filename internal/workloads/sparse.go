package workloads

import (
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

func init() {
	register("BFS", buildBFS)
	register("MINIFE", buildMiniFE)
	register("STCL", buildSTCL)
}

// buildBFS runs one frontier-expansion level of breadth-first search on a
// fixed-degree random graph. The level[neighbor] gather is a divergent
// indirect load — exactly the §4.4 pattern offloaded as a single-
// instruction block. The conditional update uses predication (control
// divergence is excluded from offload blocks per §3.1).
// Table 1: 1M nodes, blocks of 1, 1 and 16 instructions.
func buildBFS(mem *vm.System, scale int) *Workload {
	const degree = 8
	n := 512 * 1024 * scale // 2 MB level array fights the streams for the L2
	unvisited := uint32(0xFFFFFFFF)

	adj := mem.Alloc(4 * n * degree) // adj[i*degree+d]
	level := mem.Alloc(4 * n)
	r := rng()
	adjv := make([]uint32, n*degree)
	for i := range adjv {
		adjv[i] = uint32(r.Intn(n))
	}
	lv := make([]uint32, n)
	for i := range lv {
		if r.Intn(16) == 0 { // ~6% of nodes form the current frontier
			lv[i] = 0
		} else {
			lv[i] = unvisited
		}
	}
	fillU32(mem, adj, n*degree, func(i int) uint32 { return adjv[i] })
	fillU32(mem, level, n, func(i int) uint32 { return lv[i] })

	// Phased kernel: load all neighbor ids, compute their level addresses,
	// gather all neighbor levels back to back (one merged §4.4 indirect
	// block -> one offload round trip), then do the conditional updates.
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0+1, 16) // &level[i]
	kb.Ld(18, 17, 0)                            // my level
	kb.MovI(19, 0)
	kb.Setp(isa.CmpEQ, 20, 18, 19) // in frontier?
	// &adj[i*degree]
	kb.OpImm(isa.SHLI, 21, kernel.RegGTID, shiftFor(degree*4))
	kb.Op3(isa.ADD, 21, kernel.RegParam0, 21)
	nbReg := func(d int) isa.Reg { return isa.Reg(24 + d) } // neighbor ids
	adReg := func(d int) isa.Reg { return isa.Reg(32 + d) } // &level[nb]
	lvReg := func(d int) isa.Reg { return isa.Reg(40 + d) } // gathered levels
	for d := 0; d < degree; d++ {
		pc := kb.Ld(nbReg(d), 21, int64(4*d)) // neighbor ids (coalesced)
		kb.Predicate(pc, 20, false)
	}
	for d := 0; d < degree; d++ {
		kb.OpImm(isa.SHLI, adReg(d), nbReg(d), 2)
		kb.Op3(isa.ADD, adReg(d), kernel.RegParam0+1, adReg(d))
	}
	for d := 0; d < degree; d++ {
		pc := kb.Ld(lvReg(d), adReg(d), 0) // gather (merged indirect block)
		kb.Predicate(pc, 20, false)
	}
	kb.MovI(22, int64(unvisited))
	kb.MovI(23, 1) // next level value
	for d := 0; d < degree; d++ {
		kb.Setp(isa.CmpEQ, 48, lvReg(d), 22) // unvisited?
		kb.Op3(isa.AND, 48, 48, 20)
		pc := kb.St(adReg(d), 0, 23) // level[nb] = 1
		kb.Predicate(pc, 48, false)
	}
	kb.Exit()
	k := kb.MustBuild("bfs", n/256, 256, adj, level)

	return &Workload{
		Abbr:   "BFS",
		Desc:   "Breadth-first search level expansion [Rodinia]",
		Input:  fmtN(n) + " nodes, degree " + itoa(degree),
		Kernel: k,
		Verify: func() error {
			// Expected: neighbors of frontier nodes that were unvisited
			// become level 1; races write the same value, so the final
			// state is deterministic.
			want := make([]uint32, n)
			copy(want, lv)
			for i := 0; i < n; i++ {
				if lv[i] != 0 {
					continue
				}
				for d := 0; d < degree; d++ {
					nb := adjv[i*degree+d]
					if lv[nb] == unvisited {
						want[nb] = 1
					}
				}
			}
			for i := 0; i < n; i++ {
				if err := expectU32(mem, level, i, want[i], "level"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// buildMiniFE is the sparse matrix-vector product at the heart of the
// finite-element mini-app: ELL format with a fixed 8 nonzeros per row,
// band-limited random columns. The x[col] gather is indirect and divergent.
// Table 1: 128x64x64 mesh, one 3-instruction block.
func buildMiniFE(mem *vm.System, scale int) *Workload {
	const nnz = 8
	const band = 512
	n := 16 * 1024 * scale

	col := mem.Alloc(4 * nnz * n) // col[k][i], feature-major
	val := allocF32(mem, nnz*n)
	x := allocF32(mem, n)
	y := allocF32(mem, n)

	r := rng()
	colv := make([]uint32, nnz*n)
	valv := make([]float32, nnz*n)
	xv := make([]float32, n)
	for k := 0; k < nnz; k++ {
		for i := 0; i < n; i++ {
			c := i + r.Intn(2*band) - band
			if c < 0 {
				c += n
			}
			if c >= n {
				c -= n
			}
			colv[k*n+i] = uint32(c)
			valv[k*n+i] = r.Float32() - 0.5
		}
	}
	for i := range xv {
		xv[i] = r.Float32()
	}
	fillU32(mem, col, nnz*n, func(i int) uint32 { return colv[i] })
	fillF32(mem, val, nnz*n, func(i int) float32 { return valv[i] })
	fillF32(mem, x, n, func(i int) float32 { return xv[i] })

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)   // &col[0][i]
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16) // &val[0][i]
	kb.MovI(20, 0)                              // acc
	for k := 0; k < nnz; k++ {
		kb.Ld(21, 17, int64(4*k*n)) // column index (coalesced)
		kb.Ld(22, 18, int64(4*k*n)) // matrix value (coalesced)
		kb.OpImm(isa.SHLI, 23, 21, 2)
		kb.Op3(isa.ADD, 23, kernel.RegParam0+2, 23)
		kb.Ld(24, 23, 0) // x[col] (indirect, divergent)
		kb.Op4(isa.FMA, 20, 22, 24, 20)
	}
	kb.Op3(isa.ADD, 25, kernel.RegParam0+3, 16)
	kb.St(25, 0, 20)
	kb.Exit()
	k := kb.MustBuild("minife", n/256, 256, col, val, x, y)

	return &Workload{
		Abbr:   "MINIFE",
		Desc:   "Finite-element ELL SpMV [Mantevo miniFE]",
		Input:  fmtN(n) + " rows, " + itoa(nnz) + " nnz/row",
		Kernel: k,
		Verify: func() error {
			for i := 0; i < n; i++ {
				var acc float32
				for k2 := 0; k2 < nnz; k2++ {
					acc = f32fma(valv[k2*n+i], xv[colv[k2*n+i]], acc)
				}
				if err := expectF32(mem, y, i, acc, "y"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// buildSTCL is the streamcluster distance pass: each point computes its
// weighted distance to a candidate center. The per-point weight and count
// are gathered through the current assignment — two single-instruction
// indirect blocks — and the candidate center coordinates are a small hot
// structure. Table 1: 16K points/block, blocks of 3, 9, 1, 1 instructions.
func buildSTCL(mem *vm.System, scale int) *Workload {
	const dims = 4
	n := 16 * 1024 * scale

	pts := allocF32(mem, dims*n) // p[d][i]
	cen := allocF32(mem, dims)   // candidate center (hot)
	assignA := mem.Alloc(4 * n)
	weight := allocF32(mem, n)
	count := allocF32(mem, n)
	cost := allocF32(mem, n)

	r := rng()
	pv := make([]float32, dims*n)
	cv := make([]float32, dims)
	asv := make([]uint32, n)
	wv := make([]float32, n)
	cntv := make([]float32, n)
	for i := range pv {
		pv[i] = r.Float32() * 4
	}
	for i := range cv {
		cv[i] = r.Float32() * 4
	}
	for i := 0; i < n; i++ {
		asv[i] = uint32(r.Intn(n))
		wv[i] = r.Float32() + 0.5
		cntv[i] = float32(r.Intn(8) + 1)
	}
	fillF32(mem, pts, dims*n, func(i int) float32 { return pv[i] })
	fillF32(mem, cen, dims, func(i int) float32 { return cv[i] })
	fillU32(mem, assignA, n, func(i int) uint32 { return asv[i] })
	fillF32(mem, weight, n, func(i int) float32 { return wv[i] })
	fillF32(mem, count, n, func(i int) float32 { return cntv[i] })

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0+2, 16)
	kb.Ld(18, 17, 0) // a = assign[i] (coalesced)
	kb.OpImm(isa.SHLI, 19, 18, 2)
	kb.Op3(isa.ADD, 20, kernel.RegParam0+3, 19)
	kb.Ld(21, 20, 0) // w = weight[a] (indirect)
	kb.Op3(isa.ADD, 22, kernel.RegParam0+4, 19)
	kb.Ld(23, 22, 0)                          // cnt = count[a] (indirect)
	kb.Op3(isa.ADD, 24, kernel.RegParam0, 16) // &p[0][i]
	kb.MovI(25, 0)
	for d := 0; d < dims; d++ {
		kb.Ld(27, 24, int64(4*d*n))                // p[d][i] (streamed)
		kb.Ldc(26, kernel.RegParam0+1, int64(4*d)) // cen[d] (constant cache)
		kb.Op3(isa.FSUB, 28, 27, 26)
		kb.Op4(isa.FMA, 25, 28, 28, 25)
	}
	kb.Op3(isa.FMUL, 29, 25, 21) // dist * weight
	kb.Op3(isa.FADD, 29, 29, 23) // + count
	kb.Op3(isa.ADD, 30, kernel.RegParam0+5, 16)
	kb.St(30, 0, 29)
	kb.Exit()
	k := kb.MustBuild("stcl", n/256, 256, pts, cen, assignA, weight, count, cost)

	return &Workload{
		Abbr:   "STCL",
		Desc:   "Streamcluster weighted distance pass [Rodinia]",
		Input:  fmtN(n) + " points, " + itoa(dims) + " dims",
		Kernel: k,
		Verify: func() error {
			for i := 0; i < n; i++ {
				var dist float32
				for d := 0; d < dims; d++ {
					dd := f32sub(pv[d*n+i], cv[d])
					dist = f32fma(dd, dd, dist)
				}
				want := f32add(f32mul(dist, wv[asv[i]]), cntv[asv[i]])
				if err := expectF32(mem, cost, i, want, "cost"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}
