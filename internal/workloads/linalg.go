package workloads

import (
	"math"

	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

func init() {
	register("BICG", buildBICG)
	register("KMN", buildKMN)
	register("STN", buildSTN)
}

// buildBICG computes the two BiCGStab matrix-vector products of Polybench's
// bicg over a 4 MB matrix (larger than the L2): q = A*p with each thread
// reading a row segment sequentially (warp-divergent, with per-thread line
// reuse that the thrashing L1 cannot hold), and s = A'*r with warps reading
// 32 adjacent columns (coalesced). The divergent row pass is where NDP
// recovers the wasted fetches. Table 1: 6K x 6K, two 4-instruction blocks.
func buildBICG(mem *vm.System, scale int) *Workload {
	n := 1024 * scale // matrix dimension
	const chunks = 16
	chunk := n / chunks // elements per thread segment
	threads := n * chunks

	a := allocF32(mem, n*n)
	p := allocF32(mem, n)
	rv := allocF32(mem, n)
	qpart := allocF32(mem, threads)
	spart := allocF32(mem, threads)

	r := rng()
	amat := make([]float32, n*n)
	pv := make([]float32, n)
	rvv := make([]float32, n)
	for i := range amat {
		amat[i] = r.Float32() - 0.5
	}
	for i := 0; i < n; i++ {
		pv[i] = r.Float32()
		rvv[i] = r.Float32()
	}
	fillF32(mem, a, n*n, func(i int) float32 { return amat[i] })
	fillF32(mem, p, n, func(i int) float32 { return pv[i] })
	fillF32(mem, rv, n, func(i int) float32 { return rvv[i] })

	kb := kernel.NewBuilder()

	// q pass: thread (row, c) with row = gtid/chunks, c = gtid%chunks reads
	// A[row][c*chunk + k] for k in [0, chunk) — per-thread sequential, so a
	// warp's load touches 32 distinct lines (divergent) that only pay off
	// if the L1 can hold them across the k loop.
	kb.OpImm(isa.SHRI, 16, kernel.RegGTID, shiftFor(chunks)) // row
	kb.OpImm(isa.ANDI, 17, kernel.RegGTID, int64(chunks-1))  // c
	kb.MovI(18, int64(n))
	kb.Op3(isa.MUL, 19, 16, 18) // row*n
	kb.MovI(20, int64(chunk))
	kb.Op3(isa.MUL, 21, 17, 20) // j0 = c*chunk
	kb.Op3(isa.ADD, 22, 19, 21) // row*n + j0
	kb.OpImm(isa.SHLI, 22, 22, 2)
	kb.Op3(isa.ADD, 22, kernel.RegParam0, 22) // &A[row][j0]
	kb.OpImm(isa.SHLI, 23, 21, 2)
	kb.Op3(isa.ADD, 23, kernel.RegParam0+1, 23) // &p[j0]
	kb.MovI(24, 0)                              // q acc
	kb.MovI(25, int64(chunk/2))
	qloop := kb.NewLabel()
	kb.Bind(qloop)
	kb.Ld(26, 22, 0)
	kb.Ld(27, 23, 0)
	kb.Ld(28, 22, 4)
	kb.Ld(29, 23, 4)
	kb.Op4(isa.FMA, 24, 26, 27, 24)
	kb.Op4(isa.FMA, 24, 28, 29, 24)
	kb.OpImm(isa.ADDI, 22, 22, 8)
	kb.OpImm(isa.ADDI, 23, 23, 8)
	kb.OpImm(isa.ADDI, 25, 25, -1)
	kb.MovI(30, 0)
	kb.Setp(isa.CmpGT, 31, 25, 30)
	kb.Brp(31, qloop)
	kb.OpImm(isa.SHLI, 32, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 33, kernel.RegParam0+3, 32)
	kb.St(33, 0, 24)

	// s pass: thread (jc, col) with col = gtid%n, jc = gtid/n reads
	// A[jc*chunk + k][col] — a warp covers 32 adjacent columns (coalesced)
	// and the r[j] operand is a warp-wide broadcast.
	kb.OpImm(isa.ANDI, 16, kernel.RegGTID, int64(n-1))  // col
	kb.OpImm(isa.SHRI, 17, kernel.RegGTID, shiftFor(n)) // jc
	kb.Op3(isa.MUL, 21, 17, 20)                         // j0 = jc*chunk
	kb.Op3(isa.MUL, 22, 21, 18)                         // j0*n
	kb.Op3(isa.ADD, 22, 22, 16)                         // j0*n + col
	kb.OpImm(isa.SHLI, 22, 22, 2)
	kb.Op3(isa.ADD, 22, kernel.RegParam0, 22) // &A[j0][col]
	kb.OpImm(isa.SHLI, 23, 21, 2)
	kb.Op3(isa.ADD, 23, kernel.RegParam0+2, 23) // &r[j0]
	kb.MovI(24, 0)                              // s acc
	kb.MovI(25, int64(chunk/2))
	sloop := kb.NewLabel()
	kb.Bind(sloop)
	kb.Ld(26, 22, 0)
	kb.Ld(27, 23, 0)
	kb.Ld(28, 22, int64(4*n))
	kb.Ld(29, 23, 4)
	kb.Op4(isa.FMA, 24, 26, 27, 24)
	kb.Op4(isa.FMA, 24, 28, 29, 24)
	kb.OpImm(isa.ADDI, 22, 22, int64(8*n))
	kb.OpImm(isa.ADDI, 23, 23, 8)
	kb.OpImm(isa.ADDI, 25, 25, -1)
	kb.MovI(30, 0)
	kb.Setp(isa.CmpGT, 31, 25, 30)
	kb.Brp(31, sloop)
	kb.Op3(isa.ADD, 33, kernel.RegParam0+4, 32)
	kb.St(33, 0, 24)
	kb.Exit()
	k := kb.MustBuild("bicg", threads/256, 256, a, p, rv, qpart, spart)

	return &Workload{
		Abbr:   "BICG",
		Desc:   "BiCGStab matrix-vector kernels [Polybench]",
		Input:  fmtN(n) + "x" + fmtN(n) + " matrix",
		Kernel: k,
		Verify: func() error {
			for g := 0; g < threads; g++ {
				row, c := g/chunks, g%chunks
				var q float32
				for k2 := 0; k2 < chunk; k2++ {
					j := c*chunk + k2
					q = f32fma(amat[row*n+j], pv[j], q)
				}
				if err := expectF32(mem, qpart, g, q, "qpart"); err != nil {
					return err
				}
				col, jc := g%n, g/n
				var sv float32
				for k2 := 0; k2 < chunk; k2++ {
					j := jc*chunk + k2
					sv = f32fma(amat[j*n+col], rvv[j], sv)
				}
				if err := expectF32(mem, spart, g, sv, "spart"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// buildKMN is the k-means assignment step: each point finds its nearest
// centroid. Point features use Rodinia's inverted (feature-major,
// coalesced) layout and are re-streamed once per cluster, so the working
// set exceeds the L2 by 2x and the baseline is bound by GPU off-chip
// bandwidth — which NDP relieves by moving the feature stream onto the
// memory network (the paper's biggest winner, +66.8%). Centroids live in
// constant memory like Rodinia's kernel; both the GPU and the NSU serve
// them from their constant caches (Table 2 gives the NSU a 4 KB one).
// Table 1: 28K objects, 138 features; scaled to 32 features, 3 clusters —
// wide enough that per-warp feature working sets overwhelm the L1/L2 as the
// full-size workload does.
func buildKMN(mem *vm.System, scale int) *Workload {
	const feats = 32
	const clusters = 3
	n := 32 * 1024 * scale

	x := allocF32(mem, feats*n) // x[f][i], feature-major (coalesced)
	cen := allocF32(mem, clusters*feats)
	assign := mem.Alloc(4 * n)

	r := rng()
	xv := make([]float32, feats*n)
	cv := make([]float32, clusters*feats)
	for i := range xv {
		xv[i] = r.Float32() * 10
	}
	for i := range cv {
		cv[i] = r.Float32() * 10
	}
	fillF32(mem, x, feats*n, func(i int) float32 { return xv[i] })
	fillF32(mem, cen, clusters*feats, func(i int) float32 { return cv[i] })

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2) // i*4
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16) // &x[0][i]
	bigF := int64(isa.FromF32(float32(math.Inf(1))))
	kb.MovI(20, bigF) // best distance
	kb.MovI(21, 0)    // best cluster
	kb.MovI(22, 0)    // c
	kb.MovI(23, int64(clusters))
	loop := kb.NewLabel()
	kb.Bind(loop)
	// &cen[c][0] = cen + c*feats*4.
	kb.OpImm(isa.SHLI, 24, 22, shiftFor(feats*4))
	kb.Op3(isa.ADD, 24, kernel.RegParam0+1, 24)
	kb.MovI(25, 0) // dist
	for f := 0; f < feats; f++ {
		kb.Ld(27, 17, int64(4*f*n)) // x[f][i] (streamed, coalesced)
		kb.Ldc(26, 24, int64(4*f))  // cen[c][f] (constant cache)
		kb.Op3(isa.FSUB, 28, 27, 26)
		kb.Op4(isa.FMA, 25, 28, 28, 25)
	}
	kb.Setp(isa.CmpFLT, 29, 25, 20) // dist < best?
	kb.Op4(isa.SEL, 20, 25, 20, 29)
	kb.Op4(isa.SEL, 21, 22, 21, 29)
	kb.OpImm(isa.ADDI, 22, 22, 1)
	kb.Setp(isa.CmpLT, 30, 22, 23)
	kb.Brp(30, loop)
	kb.OpImm(isa.SHLI, 31, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 31, kernel.RegParam0+2, 31)
	kb.St(31, 0, 21)
	kb.Exit()
	k := kb.MustBuild("kmn", n/256, 256, x, cen, assign)

	return &Workload{
		Abbr:   "KMN",
		Desc:   "K-means assignment [Rodinia]",
		Input:  fmtN(n) + " objects, " + itoa(feats) + " features, " + itoa(clusters) + " clusters",
		Kernel: k,
		Verify: func() error {
			for i := 0; i < n; i++ {
				best := float32(math.Inf(1))
				bestC := uint32(0)
				for c := 0; c < clusters; c++ {
					var dist float32
					for f := 0; f < feats; f++ {
						d := f32sub(xv[f*n+i], cv[c*feats+f])
						dist = f32fma(d, d, dist)
					}
					if dist < best {
						best, bestC = dist, uint32(c)
					}
				}
				if err := expectU32(mem, assign, i, bestC, "assign"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// buildSTN is the 7-point 3D stencil of Parboil: one thread per (x, y)
// column iterating over z. The z+1 plane a thread loads this iteration is
// its center next iteration, so the kernel has the genuine temporal cache
// locality (paper: 45% L2 read hits) that makes offloading it a loss — the
// §7.3 suppression case. Boundaries are handled with predication.
// Table 1: 512x512x64 grid, one 15-instruction block; scaled to 512x64x8.
func buildSTN(mem *vm.System, scale int) *Workload {
	nx := 512
	ny := 64 * scale
	const nz = 8
	n := nx * ny * nz
	in := allocF32(mem, n)
	out := allocF32(mem, n)

	r := rng()
	iv := make([]float32, n)
	for i := range iv {
		iv[i] = r.Float32()
	}
	fillF32(mem, in, n, func(i int) float32 { return iv[i] })

	const c0, c1 = 0.5, 0.125
	plane := nx * ny
	kb := kernel.NewBuilder()
	kb.OpImm(isa.ANDI, 16, kernel.RegGTID, int64(nx-1))  // x
	kb.OpImm(isa.SHRI, 17, kernel.RegGTID, shiftFor(nx)) // y
	// Interior predicate over x and y (z handled by the loop bounds).
	kb.MovI(18, 0)
	kb.Setp(isa.CmpGT, 19, 16, 18)
	kb.MovI(18, int64(nx-1))
	kb.Setp(isa.CmpLT, 20, 16, 18)
	kb.Op3(isa.AND, 19, 19, 20)
	kb.MovI(18, 0)
	kb.Setp(isa.CmpGT, 20, 17, 18)
	kb.Op3(isa.AND, 19, 19, 20)
	kb.MovI(18, int64(ny-1))
	kb.Setp(isa.CmpLT, 20, 17, 18)
	kb.Op3(isa.AND, 19, 19, 20) // r19 = interior(x, y)

	// Base address of (x, y, z=1).
	kb.OpImm(isa.SHLI, 21, 17, int64(shiftFor(nx)))
	kb.Op3(isa.ADD, 21, 21, 16)
	kb.OpImm(isa.ADDI, 21, 21, int64(plane)) // + one plane for z=1
	kb.OpImm(isa.SHLI, 21, 21, 2)
	kb.Op3(isa.ADD, 22, kernel.RegParam0, 21)   // &in[x,y,1]
	kb.Op3(isa.ADD, 33, kernel.RegParam0+1, 21) // &out[x,y,1]
	kb.MovI(34, int64(nz-2))                    // z loop count

	zloop := kb.NewLabel()
	kb.Bind(zloop)
	ld := func(dst isa.Reg, off int64) {
		pc := kb.Ld(dst, 22, off)
		kb.Predicate(pc, 19, false)
	}
	ld(23, 0)               // center
	ld(24, -4)              // x-1
	ld(25, 4)               // x+1
	ld(26, int64(-4*nx))    // y-1
	ld(27, int64(4*nx))     // y+1
	ld(28, int64(-4*plane)) // z-1
	ld(29, int64(4*plane))  // z+1
	kb.MovI(30, int64(isa.FromF32(c0)))
	kb.MovI(31, int64(isa.FromF32(c1)))
	kb.Op3(isa.FMUL, 32, 23, 30)
	kb.Op3(isa.FADD, 24, 24, 25)
	kb.Op3(isa.FADD, 26, 26, 27)
	kb.Op3(isa.FADD, 28, 28, 29)
	kb.Op3(isa.FADD, 24, 24, 26)
	kb.Op3(isa.FADD, 24, 24, 28)
	kb.Op4(isa.FMA, 32, 24, 31, 32)
	st := kb.St(33, 0, 32)
	kb.Predicate(st, 19, false)
	kb.OpImm(isa.ADDI, 22, 22, int64(4*plane))
	kb.OpImm(isa.ADDI, 33, 33, int64(4*plane))
	kb.OpImm(isa.ADDI, 34, 34, -1)
	kb.MovI(35, 0)
	kb.Setp(isa.CmpGT, 36, 34, 35)
	kb.Brp(36, zloop)
	kb.Exit()
	k := kb.MustBuild("stn", plane/256, 256, in, out)

	return &Workload{
		Abbr:   "STN",
		Desc:   "7-point 3D stencil [Parboil]",
		Input:  fmtN(nx) + "x" + fmtN(ny) + "x" + itoa(nz) + " grid",
		Kernel: k,
		Verify: func() error {
			idx := func(x, y, z int) int { return z*plane + y*nx + x }
			for z := 1; z < nz-1; z++ {
				for y := 1; y < ny-1; y++ {
					for x := 1; x < nx-1; x++ {
						i := idx(x, y, z)
						want := f32mul(iv[i], c0)
						sum := f32add(iv[i-1], iv[i+1])
						sum = f32add(sum, f32add(iv[i-nx], iv[i+nx]))
						sum = f32add(sum, f32add(iv[i-plane], iv[i+plane]))
						want = f32fma(sum, c1, want)
						if err := expectF32(mem, out, i, want, "out"); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}
}
