// Package timing provides a multi-clock-domain tick engine.
//
// The simulated machine has several clock domains (Table 2): the SMs at
// 700 MHz, the crossbar at 1250 MHz, the L2 at 700 MHz, the NSUs at 350 MHz,
// and the DRAM at tCK = 1.5 ns. The engine keeps simulated time in integer
// picoseconds and fires each domain at its own period; components attached to
// a domain are ticked in registration order, once per domain period.
//
// # Idle skipping
//
// When every ticker in a domain implements IdleHint, the engine can prove
// that a stretch of upcoming edges would be empty and retire them in O(1)
// instead of firing them one by one. The invariant is that skipping is
// observationally equivalent to dense ticking: a domain edge is only retired
// when every component reported its next possible work strictly after that
// edge, hints are re-evaluated in registration order inside each step (so
// work deposited by an earlier domain at the same timestamp is seen exactly
// as it would be under dense ticking), and components that maintain
// per-cycle statistics implement IdleSkipper to batch-apply the effect of
// the retired empty ticks. The engine never skips past a scheduled event:
// a component with a timer (DRAM refresh, an epoch boundary) reports that
// time from NextWorkAt and the skip stops at the edge that would have
// observed it.
//
// # Per-component wake scheduling
//
// Domain-level skipping only pays off when the whole domain is idle; on a
// busy edge every attached component is still ticked. AttachScheduled parks
// a component on the domain's wake wheel instead: after each real tick its
// NextWorkAt is cached as a wake time, a fired edge ticks only the components
// whose wake is due (crediting the others one SkipIdle edge each, so
// per-cycle statistics stay exact), and an external event that hands a parked
// component work re-arms it immediately through Domain.Wake. A stale-early
// wake is harmless — the component ticks, proves idle again, and re-parks —
// so conservative hints and event-time wakes are always safe; only a missed
// re-arm can diverge, which Engine.SetWakeCheck turns into a loud panic for
// the equivalence suites. Components whose Tick must piggyback on every fired
// edge regardless of their own work (the invariant auditor) stay on plain
// Attach, which preserves the poll-every-edge contract exactly.
package timing

import (
	"fmt"
	"math"
	"sync/atomic"
)

// PS is a simulated time in picoseconds.
type PS = int64

// Never is returned by IdleHint.NextWorkAt when a component has no work and
// no scheduled future event.
const Never PS = math.MaxInt64

// Ticker is a component driven by a clock domain.
type Ticker interface {
	// Tick advances the component by one cycle of its clock domain.
	Tick(now PS)
}

// IdleHint is an optional interface a Ticker may implement to let the engine
// skip provably empty cycles. NextWorkAt returns the earliest absolute time
// at which the component could possibly do work: `now` (or any time <= now)
// means "busy, tick me normally", a future time promises the component will
// do nothing on any edge strictly before it, and Never promises it is fully
// drained with no scheduled events. NextWorkAt must be side-effect free on
// simulated state.
type IdleHint interface {
	NextWorkAt(now PS) PS
}

// IdleSkipper is an optional interface for tickers that mutate statistics on
// every cycle even when idle (e.g. per-cycle stall classification).
// SkipIdle(n) must apply exactly the aggregate effect that n consecutive
// empty Tick calls would have had.
type IdleSkipper interface {
	SkipIdle(cycles int64)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now PS)

// Tick implements Ticker.
func (f TickFunc) Tick(now PS) { f(now) }

// Domain is one clock domain: a period and the components it drives.
type Domain struct {
	Name     string
	PeriodPS PS
	Cycles   int64 // number of cycles fired or retired-as-idle so far

	next     PS
	tickers  []Ticker
	polled   []IdleHint    // hints of polled (plain Attach) tickers, in attach order
	skippers []IdleSkipper // every attached skipper, polled and scheduled
	hintable bool          // every polled ticker implements IdleHint

	// Per-component wake scheduling (AttachScheduled): slot maps each ticker
	// to its wake-wheel slot (-1 for polled tickers); schedHint/schedSkip are
	// indexed by slot.
	slot      []int
	wheel     Wheel
	schedHint []IdleHint
	schedSkip []IdleSkipper
}

// Engine schedules a set of clock domains over integer-picosecond time.
type Engine struct {
	domains   []*Domain
	now       PS
	skip      bool
	limit     PS
	fired     bool
	wakeCheck bool
	preSteps  []func(now PS)
	canceled  atomic.Bool
}

// Cancel requests a cooperative stop: RunUntil returns (ok=false) at the next
// step boundary instead of advancing further. Cancel is the only Engine
// method that is safe to call from another goroutine — everything else stays
// single-threaded — which is exactly what a run watchdog needs to unwedge a
// hung simulation without racing its state.
func (e *Engine) Cancel() { e.canceled.Store(true) }

// Canceled reports whether Cancel has been called.
func (e *Engine) Canceled() bool { return e.canceled.Load() }

// AddPreStep registers a hook that runs at the top of every engine step,
// after the step's timestamp is fixed and before any domain fires. Parallel
// execution uses it to pin time-dependent global state (the fault injector's
// schedule) once per step, so concurrent shard queries within the step are
// read-only.
func (e *Engine) AddPreStep(f func(now PS)) { e.preSteps = append(e.preSteps, f) }

// NewEngine returns an empty engine at time zero with idle skipping enabled.
func NewEngine() *Engine { return &Engine{skip: true, limit: Never} }

// SetIdleSkip enables or disables idle skipping. With skipping off the
// engine fires every edge of every domain densely (the reference behaviour).
func (e *Engine) SetIdleSkip(on bool) { e.skip = on }

// IdleSkip reports whether idle skipping is enabled.
func (e *Engine) IdleSkip() bool { return e.skip }

// SetWakeCheck enables a verification mode for the equivalence suites: at
// every fired edge, each scheduled ticker elided because its cached wake lies
// in the future is re-polled live, and a hint that contradicts the cache —
// work due now on a component the wheel believes is parked — panics with the
// offender. This catches a missed external re-arm at the edge where it would
// first diverge, instead of as a downstream digest mismatch.
func (e *Engine) SetWakeCheck(on bool) { e.wakeCheck = on }

// PeriodFromMHz converts a frequency in MHz to an integer period in
// picoseconds (rounded to the nearest ps; at 700 MHz the rounding error is
// 0.03%, irrelevant at simulation fidelity).
func PeriodFromMHz(mhz int) PS {
	if mhz <= 0 {
		panic(fmt.Sprintf("timing: non-positive frequency %d MHz", mhz))
	}
	return PS(math.Round(1e6 / float64(mhz)))
}

// AddDomain registers a clock domain with the given period. The first tick
// fires at t=period (not t=0).
func (e *Engine) AddDomain(name string, periodPS PS) *Domain {
	if periodPS <= 0 {
		panic(fmt.Sprintf("timing: non-positive period %d ps for domain %s", periodPS, name))
	}
	d := &Domain{Name: name, PeriodPS: periodPS, next: periodPS, hintable: true}
	d.wheel.min = Never
	e.domains = append(e.domains, d)
	return d
}

// Attach adds a polled component to the domain: it is ticked at every fired
// edge and its IdleHint (if any) is live-polled when the engine certifies
// idle stretches. The domain stays skippable only while every polled
// component implements IdleHint.
func (d *Domain) Attach(t Ticker) {
	d.tickers = append(d.tickers, t)
	d.slot = append(d.slot, -1)
	if h, ok := t.(IdleHint); ok && d.hintable {
		d.polled = append(d.polled, h)
	} else {
		d.hintable = false
		d.polled = nil
	}
	if s, ok := t.(IdleSkipper); ok {
		d.skippers = append(d.skippers, s)
	}
}

// AttachScheduled adds a component under per-component wake scheduling: after
// each real tick its NextWorkAt is cached on the domain's wake wheel, fired
// edges before that wake elide the Tick (crediting one SkipIdle edge so
// per-cycle statistics stay exact), and external events re-arm it through
// Wake with the returned slot index. The component must implement IdleHint —
// a parked component is only ever woken by its own cached promise or an
// explicit Wake, so a missing hint would park it forever.
func (d *Domain) AttachScheduled(t Ticker) int {
	h, ok := t.(IdleHint)
	if !ok {
		panic(fmt.Sprintf("timing: AttachScheduled on domain %s requires IdleHint (%T)", d.Name, t))
	}
	d.tickers = append(d.tickers, t)
	slot := d.wheel.Add(0) // due at the first edge
	d.slot = append(d.slot, slot)
	d.schedHint = append(d.schedHint, h)
	s, _ := t.(IdleSkipper)
	d.schedSkip = append(d.schedSkip, s)
	if s != nil {
		d.skippers = append(d.skippers, s)
	}
	return slot
}

// Wake re-arms a scheduled component (by the slot AttachScheduled returned)
// to be due no later than `at` — the external-event path: a packet arrival,
// credit return, or offload ack that hands a parked component work. Waking
// earlier than necessary is always safe; the component ticks, proves idle,
// and re-parks.
func (d *Domain) Wake(slot int, at PS) { d.wheel.Wake(slot, at) }

// Now returns the current simulated time.
func (e *Engine) Now() PS { return e.now }

// effNext returns the earliest edge of d at which any component could do
// work: d.next itself unless every component proves idleness past it, in
// which case the first grid-aligned edge >= the earliest reported wake time
// (or Never if all components are fully drained).
func (d *Domain) effNext(now PS) PS {
	if !d.hintable {
		return d.next
	}
	wake := d.wheel.Min() // cached wakes of the scheduled tickers
	if wake <= d.next {
		return d.next
	}
	for _, h := range d.polled {
		if w := h.NextWorkAt(now); w < wake {
			wake = w
			if wake <= d.next {
				return d.next
			}
		}
	}
	if wake == Never {
		return Never
	}
	k := (wake - d.next + d.PeriodPS - 1) / d.PeriodPS
	return d.next + k*d.PeriodPS
}

// skipTo retires every edge of d strictly before t (which must lie on d's
// grid) as provably idle: the edges are credited to Cycles and per-cycle
// statistics are batch-applied via IdleSkipper.
func (d *Domain) skipTo(t PS) {
	n := (t - d.next) / d.PeriodPS
	if n <= 0 {
		return
	}
	d.Cycles += n
	for _, s := range d.skippers {
		s.SkipIdle(n)
	}
	d.next = t
}

// Step advances simulated time to the next edge where work can happen and
// ticks every domain with work due at that time, retiring intervening empty
// edges. It returns false if the engine has no domains.
func (e *Engine) Step() bool {
	if len(e.domains) == 0 {
		return false
	}
	if !e.skip {
		return e.stepDense()
	}
	next := Never
	for _, d := range e.domains {
		if t := d.effNext(e.now); t < next {
			next = t
		}
	}
	if next > e.limit || next == Never {
		// No work before the run limit (or at all). Mirror dense ticking,
		// which fires empty edges up to the first global edge >= the limit
		// before RunUntil notices the timeout: stop at that edge and let the
		// normal loop below retire (or fire, if a timer lands exactly there)
		// each domain's edges up to it.
		target := e.limit
		if target == Never {
			target = e.now
		}
		stop := Never
		for _, d := range e.domains {
			t := d.next
			if t < target {
				k := (target - t + d.PeriodPS - 1) / d.PeriodPS
				t += k * d.PeriodPS
			}
			if t < stop {
				stop = t
			}
		}
		next = stop
	}
	e.now = next
	e.fired = false
	for _, f := range e.preSteps {
		f(next)
	}
	for _, d := range e.domains {
		if d.next > next {
			continue
		}
		eff := d.effNext(next)
		n := (next - d.next) / d.PeriodPS
		rem := (next - d.next) % d.PeriodPS
		if eff > next {
			// Still idle through `next`: retire every edge <= next.
			d.skipTo(d.next + (n+1)*d.PeriodPS)
			continue
		}
		if rem != 0 {
			// Work appeared at `next` (deposited by an earlier domain this
			// step), but d has no edge exactly at `next`; the edges before it
			// were certified idle at step start. Retire them; the work is
			// observed at d's own next edge, as under dense ticking.
			d.skipTo(d.next + (n+1)*d.PeriodPS)
			continue
		}
		// Edge exactly at `next` with work due: retire the certified-idle
		// edges before it and fire. Polled tickers tick unconditionally;
		// scheduled tickers tick only when their cached wake is due, with the
		// elided ones credited a single idle edge (their own wake bounds the
		// elision, so a timer a component reported is never crossed).
		d.skipTo(next)
		d.Cycles++
		for i, t := range d.tickers {
			slot := d.slot[i]
			if slot < 0 {
				t.Tick(next)
				continue
			}
			if d.wheel.At(slot) > next {
				if e.wakeCheck {
					if w := d.schedHint[slot].NextWorkAt(next); w <= next {
						panic(fmt.Sprintf(
							"timing: domain %s ticker %d (%T) parked until %d but reports work at %d (now %d)",
							d.Name, i, t, d.wheel.At(slot), w, next))
					}
				}
				if s := d.schedSkip[slot]; s != nil {
					s.SkipIdle(1)
				}
				continue
			}
			t.Tick(next)
			d.wheel.Arm(slot, d.schedHint[slot].NextWorkAt(next))
		}
		d.next = next + d.PeriodPS
		e.fired = true
	}
	return true
}

// stepDense is the reference step: advance to the next edge and tick every
// domain whose edge falls at that time.
func (e *Engine) stepDense() bool {
	next := e.domains[0].next
	for _, d := range e.domains[1:] {
		if d.next < next {
			next = d.next
		}
	}
	e.now = next
	for _, f := range e.preSteps {
		f(next)
	}
	for _, d := range e.domains {
		if d.next == next {
			d.Cycles++
			for i, t := range d.tickers {
				t.Tick(next)
				if slot := d.slot[i]; slot >= 0 {
					// Keep scheduled slots due so a later switch back to
					// skipping mode never trusts a wake cached before the
					// dense stretch mutated state.
					d.wheel.Arm(slot, 0)
				}
			}
			d.next += d.PeriodPS
		}
	}
	e.fired = true
	return true
}

// RunUntil steps the engine until the predicate reports done or the time
// limit (in ps) is exceeded. It returns the number of steps taken and
// whether the predicate was satisfied (false means timeout). The predicate
// is only re-evaluated after steps in which some component actually ticked —
// steps that merely retired idle edges cannot change machine state.
func (e *Engine) RunUntil(done func() bool, limitPS PS) (steps int64, ok bool) {
	e.limit = limitPS
	check := true
	for {
		if check && done() {
			return steps, true
		}
		if e.now >= limitPS || e.canceled.Load() {
			return steps, false
		}
		if !e.Step() {
			return steps, false
		}
		steps++
		check = e.fired || !e.skip
	}
}

// CyclesAt converts a picosecond timestamp to whole cycles of the domain.
func (d *Domain) CyclesAt(t PS) int64 { return int64(t / d.PeriodPS) }

// NextBoundary returns the absolute time of the first multiple-of-interval
// cycle boundary strictly after the given cycle count — the wake time for
// components with fixed cycle-counted timers (the epoch controller, the
// metrics sampler). Reporting it from NextWorkAt guarantees idle skipping
// never retires a boundary edge.
func NextBoundary(cycles, interval int64, period PS) PS {
	return (cycles/interval + 1) * interval * period
}
