package metrics

import "strings"

// sparkBlocks are the eight vertical-bar glyphs a sparkline is quantized to.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the samples as a fixed-width ASCII/Unicode strip,
// normalized to the series' own min..max. Longer series are downsampled by
// averaging equal slices; shorter ones render one glyph per sample. A flat
// (or empty) series renders as a low bar so zero activity reads as zero.
func Sparkline(samples []float64, width int) string {
	if width <= 0 {
		width = 60
	}
	if len(samples) == 0 {
		return strings.Repeat(string(sparkBlocks[0]), width)
	}
	vals := samples
	if len(samples) > width {
		vals = make([]float64, width)
		for i := 0; i < width; i++ {
			lo := i * len(samples) / width
			hi := (i + 1) * len(samples) / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range samples[lo:hi] {
				sum += v
			}
			vals[i] = sum / float64(hi-lo)
		}
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkBlocks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkBlocks) {
				idx = len(sparkBlocks) - 1
			}
		}
		b.WriteRune(sparkBlocks[idx])
	}
	return b.String()
}
