// Package serve is the simulation-as-a-service layer: a bounded worker pool,
// canonical run requests keyed by content digest, a memoizing scheduler with
// request coalescing, per-client fairness, and admission backpressure, and a
// stdlib-only HTTP/JSON front end (cmd/ndpserve) with streaming progress.
//
// The package deliberately knows nothing about how a request is executed —
// the Runner seam is injected — so the conformance and load-test suites drive
// it with a stub simulator, while cmd/ndpserve and the experiments sweep wire
// in the real machine.
package serve

import (
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines draining a FIFO of tasks. It is
// the one worker-pool implementation in the tree: the ndpserve scheduler
// dispatches on it and experiments.runAll (ndpsweep -j) maps its simulation
// jobs over it, so "how many simulations run at once" has a single answer.
//
// The queue is unbounded by design — admission control is the caller's
// policy (the scheduler bounds it with 429 backpressure; a sweep submits a
// statically-known job list).
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	active int
	closed bool
	wg     sync.WaitGroup
	panics atomic.Int64
}

// NewPool starts a pool with the given number of workers (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			// closed and drained
			p.mu.Unlock()
			return
		}
		fn := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.active++
		p.mu.Unlock()

		p.runTask(fn)

		p.mu.Lock()
		p.active--
		if p.active == 0 && len(p.queue) == 0 {
			p.cond.Broadcast() // wake Wait and Close
		}
		p.mu.Unlock()
	}
}

// runTask runs one task under a recover backstop: a panicking task must not
// kill its worker, so the pool stays at full capacity no matter what a
// caller enqueues. The scheduler converts its own panics into structured
// errors before they reach here; this guard covers every other user of the
// pool (sweep jobs) and is counted, logged, and otherwise swallowed.
func (p *Pool) runTask(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			fmt.Fprintf(os.Stderr, "serve: pool task panicked (worker recovered): %v\n%s", r, debug.Stack())
		}
	}()
	fn()
}

// Panics reports how many tasks have panicked into the backstop.
func (p *Pool) Panics() int64 { return p.panics.Load() }

// Go enqueues fn for execution. It reports false — and drops fn — once the
// pool is closed.
func (p *Pool) Go(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.queue = append(p.queue, fn)
	p.cond.Broadcast()
	return true
}

// Wait blocks until the queue is empty and no task is running. Tasks
// submitted while Wait blocks extend the wait.
func (p *Pool) Wait() {
	p.mu.Lock()
	for len(p.queue) > 0 || p.active > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close stops admission, lets every already-queued task run to completion,
// and joins the workers. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
