package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalIntegerOps(t *testing.T) {
	negThree := int64(-3)
	negFive := uint64(1<<64 - 5)
	cases := []struct {
		op      Opcode
		a, b, c uint64
		imm     int64
		want    uint64
	}{
		{op: MOV, a: 7, want: 7},
		{op: MOVI, imm: -3, want: uint64(negThree)},
		{op: ADD, a: 5, b: 9, want: 14},
		{op: ADDI, a: 5, imm: -2, want: 3},
		{op: SUB, a: 5, b: 9, want: uint64(negThree) - 1},
		{op: MUL, a: 6, b: 7, want: 42},
		{op: MULI, a: 6, imm: 4, want: 24},
		{op: MAD, a: 2, b: 3, c: 10, want: 16},
		{op: AND, a: 0b1100, b: 0b1010, want: 0b1000},
		{op: ANDI, a: 0xff, imm: 0x0f, want: 0x0f},
		{op: OR, a: 0b1100, b: 0b1010, want: 0b1110},
		{op: XOR, a: 0b1100, b: 0b1010, want: 0b0110},
		{op: SHL, a: 1, b: 4, want: 16},
		{op: SHLI, a: 1, imm: 5, want: 32},
		{op: SHR, a: 32, b: 2, want: 8},
		{op: SHRI, a: 32, imm: 3, want: 4},
		{op: MIN, a: negFive, b: 3, want: negFive},
		{op: MAX, a: negFive, b: 3, want: 3},
	}
	for _, tc := range cases {
		in := New(tc.op)
		in.Imm = tc.imm
		if got := Eval(in, tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("%v(a=%d,b=%d,c=%d,imm=%d) = %d, want %d",
				tc.op, tc.a, tc.b, tc.c, tc.imm, got, tc.want)
		}
	}
}

func TestEvalFloatOps(t *testing.T) {
	f := func(x float32) uint64 { return FromF32(x) }
	cases := []struct {
		op      Opcode
		a, b, c uint64
		want    float32
	}{
		{op: FADD, a: f(1.5), b: f(2.25), want: 3.75},
		{op: FSUB, a: f(1.5), b: f(2.25), want: -0.75},
		{op: FMUL, a: f(1.5), b: f(2), want: 3},
		{op: FDIV, a: f(3), b: f(2), want: 1.5},
		{op: FMA, a: f(2), b: f(3), c: f(1), want: 7},
		{op: FMIN, a: f(-1), b: f(2), want: -1},
		{op: FMAX, a: f(-1), b: f(2), want: 2},
		{op: FABS, a: f(-4.5), want: 4.5},
		{op: FSQRT, a: f(9), want: 3},
		{op: I2F, a: 7, want: 7},
	}
	for _, tc := range cases {
		in := New(tc.op)
		if got := F32(Eval(in, tc.a, tc.b, tc.c)); got != tc.want {
			t.Errorf("%v = %v, want %v", tc.op, got, tc.want)
		}
	}
	in := New(F2I)
	if got := Eval(in, f(-3.0), 0, 0); int64(got) != -3 {
		t.Errorf("F2I(-3.0) = %d, want -3", int64(got))
	}
}

func TestEvalSetpSel(t *testing.T) {
	in := New(SETP)
	in.Cmp = CmpLT
	if got := Eval(in, ^uint64(0), 0, 0); got != 1 {
		t.Errorf("setp.lt(-1, 0) = %d, want 1", got)
	}
	in.Cmp = CmpGE
	if got := Eval(in, ^uint64(0), 0, 0); got != 0 {
		t.Errorf("setp.ge(-1, 0) = %d, want 0", got)
	}
	sel := New(SEL)
	if got := Eval(sel, 11, 22, 1); got != 11 {
		t.Errorf("sel(11,22,1) = %d, want 11", got)
	}
	if got := Eval(sel, 11, 22, 0); got != 22 {
		t.Errorf("sel(11,22,0) = %d, want 22", got)
	}
}

func TestCompareFloatOps(t *testing.T) {
	a, b := FromF32(1.5), FromF32(2.5)
	if !Compare(CmpFLT, a, b) || Compare(CmpFGT, a, b) {
		t.Error("float comparisons inconsistent")
	}
	if !Compare(CmpFLE, a, a) || !Compare(CmpFGE, a, a) || !Compare(CmpFEQ, a, a) {
		t.Error("float reflexive comparisons failed")
	}
}

func TestEvalPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for LD")
		}
	}()
	Eval(New(LD), 0, 0, 0)
}

func TestF32RoundTrip(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return true
		}
		return F32(FromF32(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		add := New(ADD)
		sub := New(SUB)
		return Eval(sub, Eval(add, a, b, 0), b, 0) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		lo := Eval(New(MIN), a, b, 0)
		hi := Eval(New(MAX), a, b, 0)
		return (lo == a || lo == b) && (hi == a || hi == b) &&
			int64(lo) <= int64(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeClasses(t *testing.T) {
	cases := map[Opcode]Class{
		ADD: ClassALU, SETP: ClassALU, MOV: ClassALU, FSQRT: ClassALU,
		LD: ClassMem, ST: ClassMem,
		LDS: ClassSmem, STS: ClassSmem,
		BRA: ClassCtrl, BRP: ClassCtrl, BAR: ClassCtrl, EXIT: ClassCtrl,
		OFLDBEG: ClassOffload, OFLDEND: ClassOffload,
	}
	for op, want := range cases {
		if got := op.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", op, got, want)
		}
	}
}

func TestWritesDst(t *testing.T) {
	writes := []Opcode{MOV, MOVI, ADD, LD, LDS, SETP, SEL, FMA, F2I}
	noWrites := []Opcode{NOP, ST, STS, BRA, BRP, BAR, EXIT, OFLDBEG, OFLDEND}
	for _, op := range writes {
		if !op.WritesDst() {
			t.Errorf("%v should write dst", op)
		}
	}
	for _, op := range noWrites {
		if op.WritesDst() {
			t.Errorf("%v should not write dst", op)
		}
	}
}

func TestValidateCatchesMissingOperands(t *testing.T) {
	in := New(ADD) // no dst/src set
	if err := in.Validate(10); err == nil {
		t.Fatal("expected error for missing operands")
	}
	in.Dst, in.Src[0], in.Src[1] = 1, 2, 3
	if err := in.Validate(10); err != nil {
		t.Fatalf("valid add rejected: %v", err)
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	in := New(BRA)
	in.Imm = 100
	if err := in.Validate(10); err == nil {
		t.Fatal("expected error for out-of-range branch")
	}
	in.Imm = 9
	if err := in.Validate(10); err != nil {
		t.Fatalf("valid branch rejected: %v", err)
	}
}

func TestValidateCatchesBadRegister(t *testing.T) {
	in := New(MOV)
	in.Dst, in.Src[0] = Reg(NumRegs), 0
	if err := in.Validate(10); err == nil {
		t.Fatal("expected error for out-of-range register")
	}
}

func TestInstrString(t *testing.T) {
	in := New(LD)
	in.Dst, in.Src[0], in.Imm = 5, 9, 16
	if got := in.String(); got != "ld r5, [r9+16]" {
		t.Errorf("String() = %q", got)
	}
	st := New(ST)
	st.Src[0], st.Src[1], st.Imm = 10, 2, 0
	if got := st.String(); got != "st [r10+0], r2" {
		t.Errorf("String() = %q", got)
	}
	p := New(ADD)
	p.Dst, p.Src[0], p.Src[1] = 1, 2, 3
	p.Pred, p.PredNeg = 7, true
	if got := p.String(); got != "@!r7 add r1, r2, r3" {
		t.Errorf("String() = %q", got)
	}
}

func TestSrcCountConsistency(t *testing.T) {
	// Property: every opcode's SrcCount is within [0,3] and HasImm/SrcCount
	// never both claim slot conflicts.
	for op := Opcode(0); op < numOpcodes; op++ {
		n := op.SrcCount()
		if n < 0 || n > 3 {
			t.Errorf("%v SrcCount = %d", op, n)
		}
	}
}
