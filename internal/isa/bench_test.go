package isa

import "testing"

func BenchmarkEvalFMA(b *testing.B) {
	in := New(FMA)
	a, c, d := FromF32(1.5), FromF32(2.5), FromF32(3.5)
	for i := 0; i < b.N; i++ {
		_ = Eval(in, a, c, d)
	}
}

func BenchmarkEvalIntALU(b *testing.B) {
	in := New(ADD)
	for i := 0; i < b.N; i++ {
		_ = Eval(in, uint64(i), 7, 0)
	}
}
