// Package dram models one HMC vault: a bounded request queue served by an
// FR-FCFS scheduler over banks with open-row state and DDR3-1333H-like
// timing (Table 2: tCK=1.50 ns, tRP=9, tCCD=4, tRCD=9, tCL=9, tWR=12,
// tRAS=24). Each access moves one 128-byte line; with tCCD=4 the per-vault
// data bus sustains 128 B / 6 ns ≈ 21 GB/s, i.e. ≈340 GB/s per 16-vault
// stack, matching the HMC's ~320 GB/s peak DRAM bandwidth.
package dram

import (
	"ndpgpu/internal/audit"
	"ndpgpu/internal/config"
	"ndpgpu/internal/timing"
)

// Request is one line-sized DRAM access.
type Request struct {
	Line    uint64 // line-aligned address
	Bank    int
	Row     int64
	IsWrite bool
	Arrival timing.PS
	// triggeredAct marks that this request caused the bank's current row
	// activation, so its own CAS is not counted as a row-buffer hit.
	triggeredAct bool
	// Done is invoked when the access completes (data available for reads,
	// write committed for writes).
	Done func(now timing.PS)
}

type bankState struct {
	rowOpen   bool
	openRow   int64
	readyAt   timing.PS // earliest time a new column/act/pre command may issue
	activated timing.PS // time of last activation, for tRAS
}

type completion struct {
	at  timing.PS
	req *Request
}

// VaultStats counts per-vault DRAM events.
type VaultStats struct {
	Reads            int64
	Writes           int64
	Activations      int64
	RowHits          int64
	Precharges       int64
	QueueFullRejects int64
	Refreshes        int64
	// BusyCycles counts DRAM clocks on which the vault had work: a queued
	// request, a completion retiring this edge, or a refresh firing. Idle
	// skipping only ever retires edges where none of those hold, so the
	// count is identical under dense and skipped execution.
	BusyCycles int64
}

// Vault is one vault controller.
type Vault struct {
	cfg      config.HMCConfig
	banks    []bankState
	queue    []*Request
	done     []completion
	busUntil timing.PS

	nextRefresh timing.PS // next tREFI edge
	refreshing  timing.PS // all banks blocked until this time

	// Wake-scheduling edge ledger. edges counts DRAM clocks elapsed at this
	// vault (ticked densely or credited by SkipIdle); seen marks how many of
	// them the BusyCycles counter has accounted. The gap is settled lazily —
	// before a Tick, before an Enqueue can change the queue, or
	// computationally by BusyCyclesNow — and over any unsettled gap the queue
	// is constant, so "queued work present" decides the whole gap at once.
	edges int64
	seen  int64

	aud *audit.VaultAudit // nil unless bank-state auditing is attached

	Stats VaultStats
}

// NewVault builds a vault controller.
func NewVault(cfg config.HMCConfig) *Vault {
	return &Vault{
		cfg:         cfg,
		banks:       make([]bankState, cfg.BanksPerVault),
		nextRefresh: timing.PS(cfg.TREFIps),
	}
}

func (v *Vault) tck(n int) timing.PS { return timing.PS(n) * timing.PS(v.cfg.TCKps) }

// SetAudit attaches a bank-state auditor (nil detaches). The vault reports
// every ACT/PRE/CAS/refresh it issues; the auditor re-derives legality from
// the timing parameters independently of the controller's own bookkeeping.
func (v *Vault) SetAudit(a *audit.VaultAudit) { v.aud = a }

// creditGap settles the un-accounted edge gap against the current queue:
// every edge in the gap was elided with the queue in exactly its present
// state (Tick settles before processing, Enqueue settles before mutating),
// and elided edges retire no completion and fire no refresh — their wake
// times bound any skip — so the queue test alone decides busyness.
func (v *Vault) creditGap() {
	if gap := v.edges - v.seen; gap > 0 {
		if len(v.queue) > 0 {
			v.Stats.BusyCycles += gap
		}
		v.seen = v.edges
	}
}

// SkipIdle credits n elided DRAM edges; the BusyCycles effect is settled
// lazily by creditGap.
func (v *Vault) SkipIdle(n int64) { v.edges += n }

// Enqueue adds a request if the queue has room, returning false when full.
func (v *Vault) Enqueue(r *Request) bool {
	if len(v.queue) >= v.cfg.VaultQueue {
		v.Stats.QueueFullRejects++
		return false
	}
	v.creditGap()
	v.queue = append(v.queue, r)
	return true
}

// QueueLen returns the number of waiting requests.
func (v *Vault) QueueLen() int { return len(v.queue) }

// Pending returns the number of waiting plus in-flight requests.
func (v *Vault) Pending() int { return len(v.queue) + len(v.done) }

// Tick advances the vault by one DRAM clock: retire finished accesses, then
// schedule at most one command using FR-FCFS (first ready — i.e. open-row
// hit — first-come-first-served otherwise).
func (v *Vault) Tick(now timing.PS) {
	v.creditGap()
	v.edges++
	v.seen = v.edges
	busy := len(v.queue) > 0
	// Retire completions.
	kept := v.done[:0]
	for _, c := range v.done {
		if c.at <= now {
			busy = true
			if c.req.IsWrite {
				v.Stats.Writes++
			} else {
				v.Stats.Reads++
			}
			if c.req.Done != nil {
				c.req.Done(now)
			}
		} else {
			kept = append(kept, c)
		}
	}
	v.done = kept

	// All-bank refresh every tREFI: close the rows and block the vault for
	// tRFC (disabled when tREFI is zero).
	if v.cfg.TREFIps > 0 && now >= v.nextRefresh {
		busy = true
		v.nextRefresh += timing.PS(v.cfg.TREFIps)
		v.refreshing = now + timing.PS(v.cfg.TRFCps)
		for i := range v.banks {
			v.banks[i].rowOpen = false
			if v.banks[i].readyAt < v.refreshing {
				v.banks[i].readyAt = v.refreshing
			}
		}
		v.Stats.Refreshes++
		if v.aud != nil {
			v.aud.OnRefresh(now, v.refreshing)
		}
	}
	if busy {
		v.Stats.BusyCycles++
	}
	if now < v.refreshing {
		return
	}

	if len(v.queue) == 0 {
		return
	}

	// FR-FCFS pass 1: oldest request hitting an open row on a ready bank.
	pick := -1
	for i, r := range v.queue {
		b := &v.banks[r.Bank]
		if b.rowOpen && b.openRow == r.Row && b.readyAt <= now && v.busUntil <= now {
			pick = i
			break
		}
	}
	if pick >= 0 {
		r := v.queue[pick]
		v.issueColumn(r, now, !r.triggeredAct)
		v.queue = append(v.queue[:pick], v.queue[pick+1:]...)
		return
	}

	// Pass 2: oldest request whose bank can accept a row command.
	for i, r := range v.queue {
		b := &v.banks[r.Bank]
		if b.readyAt > now {
			continue
		}
		if b.rowOpen && b.openRow != r.Row {
			// Precharge, honouring tRAS since activation.
			start := now
			if b.activated+v.tck(v.cfg.TRAS) > start {
				start = b.activated + v.tck(v.cfg.TRAS)
			}
			b.rowOpen = false
			b.readyAt = start + v.tck(v.cfg.TRP)
			v.Stats.Precharges++
			if v.aud != nil {
				v.aud.OnPrecharge(now, start, r.Bank)
			}
			return // one command per tick
		}
		if !b.rowOpen {
			b.rowOpen = true
			b.openRow = r.Row
			b.activated = now
			b.readyAt = now + v.tck(v.cfg.TRCD)
			r.triggeredAct = true
			v.Stats.Activations++
			if v.aud != nil {
				v.aud.OnActivate(now, r.Bank, r.Row)
			}
			return
		}
		// Open-row hit but bus busy: this request waits for the bus; let a
		// younger request on another bank activate or precharge meanwhile.
		_ = i
	}
}

// issueColumn performs the CAS for a request whose row is open.
func (v *Vault) issueColumn(r *Request, now timing.PS, rowHit bool) {
	b := &v.banks[r.Bank]
	if rowHit {
		v.Stats.RowHits++
	}
	if v.aud != nil {
		v.aud.OnColumn(now, r.Bank, r.Row, r.IsWrite)
	}
	lat := v.tck(v.cfg.TCL)
	if r.IsWrite {
		lat = v.tck(v.cfg.TWR)
	}
	v.busUntil = now + v.tck(v.cfg.TCCD)
	b.readyAt = now + v.tck(v.cfg.TCCD)
	v.done = append(v.done, completion{at: now + lat + v.tck(v.cfg.TCCD), req: r})
}

// Idle reports whether the vault has no queued or in-flight work.
func (v *Vault) Idle() bool { return len(v.queue) == 0 && len(v.done) == 0 }

// BusyCyclesNow returns the busy-cycle count with the unsettled edge gap
// folded in computationally — a side-effect-free read for stats aggregation
// and metrics probes.
func (v *Vault) BusyCyclesNow() int64 {
	b := v.Stats.BusyCycles
	if len(v.queue) > 0 {
		b += v.edges - v.seen
	}
	return b
}

// NextWorkSharp is the per-bank-state refinement of NextWorkAt: instead of
// reporting "now" whenever a request is queued, it computes the earliest time
// FR-FCFS could actually issue a command for any queued request — a row hit
// waits for its bank and the shared data bus (tCCD), a row conflict or closed
// row waits only for the bank to accept a row command (a precharge may issue
// immediately, with tRAS folded into the resulting ready time). The engine
// parks the vault's stack across pure timing-parameter waits (tRCD/tRAS/tRP
// stretches) that the coarse hint ticks through densely; SkipIdle keeps the
// BusyCycles ledger exact over the parked stretch. A refresh in progress
// floors every command at its end; completions and the refresh timer bound
// the wake exactly as in NextWorkAt.
func (v *Vault) NextWorkSharp(now timing.PS) timing.PS {
	wake := timing.Never
	for _, r := range v.queue {
		b := &v.banks[r.Bank]
		var t0 timing.PS
		if b.rowOpen && b.openRow == r.Row {
			t0 = b.readyAt
			if v.busUntil > t0 {
				t0 = v.busUntil
			}
		} else {
			t0 = b.readyAt
		}
		if t0 < v.refreshing {
			t0 = v.refreshing
		}
		if t0 <= now {
			return now
		}
		if t0 < wake {
			wake = t0
		}
	}
	for _, c := range v.done {
		if c.at <= now {
			return now
		}
		if c.at < wake {
			wake = c.at
		}
	}
	if v.cfg.TREFIps > 0 {
		if v.nextRefresh <= now {
			return now
		}
		if v.nextRefresh < wake {
			wake = v.nextRefresh
		}
	}
	return wake
}

// NextWorkAt returns the earliest time the vault could do work: now if any
// request is queued or any completion is due, otherwise the earliest pending
// completion or refresh edge. The refresh timer is a scheduled event the
// idle-skip engine must never skip past, so it always bounds the result.
func (v *Vault) NextWorkAt(now timing.PS) timing.PS {
	if len(v.queue) > 0 {
		return now
	}
	wake := timing.Never
	for _, c := range v.done {
		if c.at <= now {
			return now
		}
		if c.at < wake {
			wake = c.at
		}
	}
	if v.cfg.TREFIps > 0 {
		if v.nextRefresh <= now {
			return now
		}
		if v.nextRefresh < wake {
			wake = v.nextRefresh
		}
	}
	return wake
}
