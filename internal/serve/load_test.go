package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// loadSummary is the throughput artifact `make load-test` uploads from CI
// (written when NDPSERVE_LOAD_OUT names a file).
type loadSummary struct {
	Mode          string  `json:"mode"` // "short" or "full"
	Requests      int     `json:"requests"`
	Uniques       int     `json:"uniques"`
	InFlightPeak  int     `json:"in_flight_peak"`
	Executed      int64   `json:"executed"`
	Deduplicated  int64   `json:"deduplicated"` // cache hits + coalesced
	Rejected429   int     `json:"rejected_429"`
	ThroughputRPS float64 `json:"throughput_rps"`
	ColdMS        float64 `json:"cold_ms"`
	WarmMedianMS  float64 `json:"warm_median_ms"`
	CacheSpeedup  float64 `json:"cache_speedup"`
	HeapAllocMB   float64 `json:"heap_alloc_mb"`
	WallSec       float64 `json:"wall_sec"`
}

// TestLoadServe is the load-test harness (`make load-test`): it drives the
// full HTTP stack over a stub simulator through four phases — concurrent
// capacity, admission backpressure, sustained throughput, and memoized-replay
// speedup — and asserts the service-level floors from the issue: >=1000
// concurrent in-flight requests with bounded memory, and a repeated request
// at least 100x faster than a cold one. `-short` shrinks the floors so the
// same harness rides along in `make serve-test`.
func TestLoadServe(t *testing.T) {
	start := time.Now()
	sum := loadSummary{Mode: "full"}
	if testing.Short() {
		sum.Mode = "short"
	}

	sum.InFlightPeak, sum.Requests, sum.Uniques, sum.Executed, sum.Deduplicated, sum.HeapAllocMB =
		loadCapacityPhase(t, testing.Short())
	sum.Rejected429 = loadBackpressurePhase(t)
	sum.ThroughputRPS = loadThroughputPhase(t, testing.Short())
	sum.ColdMS, sum.WarmMedianMS, sum.CacheSpeedup = loadCachePhase(t, testing.Short())
	sum.WallSec = time.Since(start).Seconds()

	t.Logf("load summary: %+v", sum)
	if out := os.Getenv("NDPSERVE_LOAD_OUT"); out != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("writing load summary: %v", err)
		}
	}
}

// loadClient is an HTTP client that tolerates thousands of parallel requests.
func loadClient() *http.Client {
	tr := &http.Transport{MaxIdleConns: 128, MaxIdleConnsPerHost: 128}
	return &http.Client{Transport: tr}
}

// loadCapacityPhase piles duplicated requests from many clients onto a gated
// simulator until the whole load is simultaneously in flight, then releases
// the gate and requires every request to complete. This is the ">=1000
// concurrent in-flight requests with bounded memory" acceptance leg.
func loadCapacityPhase(t *testing.T, short bool) (peak, total, uniques int, executed, dedup int64, heapMB float64) {
	uniques, dups, clients, floor := 300, 4, 40, 1000
	if short {
		uniques, dups, clients, floor = 80, 4, 10, 250
	}
	total = uniques * dups

	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	sched := New(Options{Workers: 16, QueueCap: uniques, Runner: stub.runner()})
	ts := httptest.NewServer(NewServer(sched))
	defer func() {
		ts.Close()
		sched.Shutdown()
	}()
	hc := loadClient()

	var wg sync.WaitGroup
	var ok, bad atomic.Int64
	for i := 0; i < total; i++ {
		body := fmt.Sprintf(`{"workload":"VADD","mode":"dyn","seed":%d}`, 1+i%uniques)
		client := fmt.Sprintf("client%d", i%clients)
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(body))
			req.Header.Set("X-Client", client)
			resp, err := hc.Do(req)
			if err != nil {
				bad.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok.Add(1)
			} else {
				bad.Add(1)
			}
		}()
	}

	waitSnapshot(t, sched, fmt.Sprintf("%d requests in flight", total),
		func(c Counters) bool { return c.InFlight >= total })

	// Memory at peak load: everything admitted or coalesced, nothing running.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMB = float64(ms.HeapAlloc) / (1 << 20)
	if heapMB > 256 {
		t.Errorf("heap at %d in-flight requests: %.1f MB, want <= 256 MB", total, heapMB)
	}

	close(stub.gate)
	wg.Wait()

	snap := sched.Snapshot()
	if snap.MaxInFlight < floor {
		t.Errorf("in-flight peak %d, want >= %d", snap.MaxInFlight, floor)
	}
	if got := ok.Load(); got != int64(total) || bad.Load() != 0 {
		t.Errorf("%d/%d requests succeeded (%d failed)", got, total, bad.Load())
	}
	if snap.Executed != int64(uniques) {
		t.Errorf("executed %d simulations for %d uniques", snap.Executed, uniques)
	}
	if snap.CacheHits+snap.Coalesced != int64(total-uniques) {
		t.Errorf("deduplicated %d of %d duplicates", snap.CacheHits+snap.Coalesced, total-uniques)
	}
	if snap.MaxRunning > 16 {
		t.Errorf("running peak %d exceeds 16 workers", snap.MaxRunning)
	}
	return snap.MaxInFlight, total, uniques, snap.Executed, snap.CacheHits + snap.Coalesced, heapMB
}

// loadBackpressurePhase saturates a tiny queue and requires (a) crisp 429 +
// Retry-After beyond capacity and (b) completion of everything acknowledged.
func loadBackpressurePhase(t *testing.T) (rejected int) {
	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	sched := New(Options{Workers: 1, QueueCap: 8, Runner: stub.runner(), RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(NewServer(sched))
	defer func() {
		ts.Close()
		sched.Shutdown()
	}()
	hc := loadClient()

	post := func(seed int, results chan<- int) {
		resp, err := hc.Post(ts.URL+"/run", "application/json",
			strings.NewReader(fmt.Sprintf(`{"workload":"VADD","mode":"dyn","seed":%d}`, seed)))
		if err != nil {
			t.Error(err)
			results <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests &&
			resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		resp.Body.Close()
		results <- resp.StatusCode
	}

	// Fill deterministically: one running, then the queue to its cap.
	acked := make(chan int, 9)
	go post(1, acked)
	waitSnapshot(t, sched, "worker busy", func(c Counters) bool { return c.Running == 1 })
	for seed := 2; seed <= 9; seed++ {
		go post(seed, acked)
	}
	waitSnapshot(t, sched, "queue full", func(c Counters) bool { return c.Queued == 8 })

	// Everything beyond capacity bounces with 429.
	const extra = 50
	over := make(chan int, extra)
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			post(seed, over)
		}(100 + i)
	}
	wg.Wait()
	for i := 0; i < extra; i++ {
		switch code := <-over; code {
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("over-capacity request got %d, want 429", code)
		}
	}

	close(stub.gate)
	for i := 0; i < 9; i++ {
		if code := <-acked; code != http.StatusOK {
			t.Errorf("acknowledged request finished with %d", code)
		}
	}
	return rejected
}

// loadThroughputPhase measures sustained unique-request throughput end to end
// (HTTP parse -> canonicalize -> schedule -> respond) over a cheap simulator.
func loadThroughputPhase(t *testing.T, short bool) float64 {
	total, conc, floor := 400, 64, 200.0
	if short {
		total, floor = 200, 100.0
	}
	stub := newStubSim(2 * time.Millisecond)
	sched := New(Options{Workers: 16, QueueCap: total, Runner: stub.runner()})
	ts := httptest.NewServer(NewServer(sched))
	defer func() {
		ts.Close()
		sched.Shutdown()
	}()
	hc := loadClient()

	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var failed atomic.Int64
	start := time.Now()
	for i := 0; i < total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(seed int) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := hc.Post(ts.URL+"/run", "application/json",
				strings.NewReader(fmt.Sprintf(`{"workload":"VADD","mode":"dyn","seed":%d}`, 1+seed)))
			if err != nil {
				failed.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	rps := float64(total) / time.Since(start).Seconds()
	if failed.Load() != 0 {
		t.Errorf("%d/%d throughput requests failed", failed.Load(), total)
	}
	if rps < floor {
		t.Errorf("throughput %.0f requests/sec, want >= %.0f", rps, floor)
	}
	return rps
}

// loadCachePhase pins the economics of memoization: a repeated request is
// served from the digest cache >=100x faster than the cold simulation
// (>=20x under -short, where the cold run is cheaper).
func loadCachePhase(t *testing.T, short bool) (coldMS, warmMS, speedup float64) {
	cold, ratio := 250*time.Millisecond, 100.0
	if short {
		cold, ratio = 100*time.Millisecond, 20.0
	}
	stub := newStubSim(cold)
	sched := New(Options{Workers: 2, QueueCap: 8, Runner: stub.runner()})
	ts := httptest.NewServer(NewServer(sched))
	defer func() {
		ts.Close()
		sched.Shutdown()
	}()
	hc := loadClient()

	body := `{"workload":"VADD","mode":"dyn","seed":77}`
	run := func() (time.Duration, *RunResponse) {
		t.Helper()
		begin := time.Now()
		resp, err := hc.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var rr RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return time.Since(begin), &rr
	}

	coldWall, first := run()
	if first.Cached {
		t.Fatal("first request served from cache")
	}
	const warmRuns = 50
	warms := make([]time.Duration, warmRuns)
	for i := range warms {
		wall, rr := run()
		if !rr.Cached {
			t.Fatal("repeat request missed the cache")
		}
		if rr.Key != first.Key || rr.Digest["TimePS"] != first.Digest["TimePS"] {
			t.Fatal("cached result differs from the cold one")
		}
		warms[i] = wall
	}
	sort.Slice(warms, func(i, j int) bool { return warms[i] < warms[j] })
	warmMedian := warms[warmRuns/2]

	coldMS = float64(coldWall) / float64(time.Millisecond)
	warmMS = float64(warmMedian) / float64(time.Millisecond)
	speedup = coldMS / warmMS
	if speedup < ratio {
		t.Errorf("cache speedup %.1fx (cold %.1fms, warm median %.3fms), want >= %.0fx",
			speedup, coldMS, warmMS, ratio)
	}
	return coldMS, warmMS, speedup
}
