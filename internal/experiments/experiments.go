// Package experiments regenerates every table and figure of the paper's
// evaluation (§5-§7). Each Figure*/Table* function runs the required
// simulations (in parallel across workloads) and prints the same rows or
// series the paper reports. EXPERIMENTS.md records the measured outputs
// next to the paper's numbers.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndpgpu/internal/config"
	"ndpgpu/internal/energy"
	"ndpgpu/internal/serve"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// Workloads returns the evaluation suite in Table 1 order.
func Workloads() []string { return workloads.Abbrs() }

// Jobs bounds how many simulations runAll executes concurrently; 0 (the
// default) means GOMAXPROCS. Set once before running experiments (ndpsweep's
// -j flag); runAll reads it without synchronization.
var Jobs int

// Exec, when non-nil, replaces local execution for every RunOne call —
// ndpsweep's -server client mode points it at a running ndpserve instance
// (see UseServer). RunOneWith always executes locally: its prep hook hands
// out the assembled machine, which cannot cross the wire.
var Exec func(cfg config.Config, abbr string, mode sim.Mode, scale int) *Run

// tally accumulates wall-clock cost across every RunOneWith call so sweeps
// can report per-run cost alongside the total (atomics for the hot counters,
// a mutex-guarded slice for the distribution: runs execute on the runAll
// worker pool).
var tally struct {
	runs   atomic.Int64
	wallNS atomic.Int64
	mu     sync.Mutex
	durs   []time.Duration
}

// RunTally reports how many simulations have completed in this process and
// their summed wall-clock time.
func RunTally() (runs int64, wall time.Duration) {
	return tally.runs.Load(), time.Duration(tally.wallNS.Load())
}

// RunTallyDetail extends RunTally with the per-run distribution: the longest
// single run (the critical path a -j pool cannot shrink below) and the median
// run. Zero durations when no runs have completed.
func RunTallyDetail() (runs int64, total, max, p50 time.Duration) {
	runs = tally.runs.Load()
	total = time.Duration(tally.wallNS.Load())
	tally.mu.Lock()
	durs := make([]time.Duration, len(tally.durs))
	copy(durs, tally.durs)
	tally.mu.Unlock()
	if len(durs) == 0 {
		return runs, total, 0, 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return runs, total, durs[len(durs)-1], durs[len(durs)/2]
}

// Run is one completed simulation.
type Run struct {
	Workload string
	Mode     string
	Cfg      config.Config
	Stats    *stats.Stats
	TimePS   timing.PS
	Wall     time.Duration // host wall-clock time for this run
	Energy   stats.EnergyBreakdown
	Err      error
}

// Speedup returns base/this runtime.
func (r *Run) Speedup(base *Run) float64 {
	if r.TimePS == 0 {
		return 0
	}
	return float64(base.TimePS) / float64(r.TimePS)
}

// recordTally folds one completed run into the process-wide tally.
func recordTally(d time.Duration) {
	tally.runs.Add(1)
	tally.wallNS.Add(int64(d))
	tally.mu.Lock()
	tally.durs = append(tally.durs, d)
	tally.mu.Unlock()
}

// RunOne builds the workload, runs it under the mode, verifies the output,
// and computes energy — locally, or through the Exec seam when a remote
// executor is installed.
func RunOne(cfg config.Config, abbr string, mode sim.Mode, scale int) *Run {
	if Exec != nil {
		start := time.Now()
		run := Exec(cfg, abbr, mode, scale)
		run.Wall = time.Since(start)
		recordTally(run.Wall)
		return run
	}
	return RunOneWith(cfg, abbr, mode, scale, nil)
}

// RunOneWith is RunOne with a hook applied to the assembled machine before
// it runs — used by the differential tests to toggle idle skipping and by
// callers that install tracers.
func RunOneWith(cfg config.Config, abbr string, mode sim.Mode, scale int, prep func(*sim.Machine)) *Run {
	run := &Run{Workload: abbr, Mode: mode.Name, Cfg: cfg}
	start := time.Now()
	defer func() {
		run.Wall = time.Since(start)
		recordTally(run.Wall)
	}()
	mem := vm.New(cfg)
	w, err := workloads.Build(abbr, mem, scale)
	if err != nil {
		run.Err = err
		return run
	}
	m, err := sim.Launch(cfg, w.Kernel, mem, mode)
	if err != nil {
		run.Err = err
		return run
	}
	if prep != nil {
		prep(m)
	}
	res, err := m.Run(0)
	if err != nil {
		run.Err = fmt.Errorf("%s/%s: %w", abbr, mode.Name, err)
		return run
	}
	if err := w.Verify(); err != nil {
		run.Err = fmt.Errorf("%s/%s: functional check: %w", abbr, mode.Name, err)
		return run
	}
	run.Stats = res.Stats
	run.TimePS = res.TimePS
	run.Energy = energy.Compute(res.Stats, cfg, energy.DefaultParams(), mode.NDP)
	return run
}

// job identifies one simulation to run.
type job struct {
	workload string
	mode     sim.Mode
	cfg      config.Config
}

// runAll executes the jobs on a bounded serve.Pool (each machine is
// independent) and returns results keyed by workload|mode. Tasks write into
// an index-addressed slice, so the result set is deterministic regardless of
// scheduling order. The pool type is the same one the ndpserve scheduler
// dispatches on — ndpsweep -j and the service share one implementation.
func runAll(jobs []job, scale int) map[string]*Run {
	runs := make([]*Run, len(jobs))
	workers := Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	pool := serve.NewPool(workers)
	for i := range jobs {
		i := i
		pool.Go(func() {
			j := jobs[i]
			runs[i] = RunOne(j.cfg, j.workload, j.mode, scale)
		})
	}
	pool.Close() // drain and join
	res := make(map[string]*Run, len(jobs))
	for i, j := range jobs {
		res[j.workload+"|"+j.mode.Name] = runs[i]
	}
	return res
}

func get(m map[string]*Run, wl, mode string) *Run { return m[wl+"|"+mode] }

// checkErrs returns the first error among runs.
func checkErrs(m map[string]*Run) error {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if m[k].Err != nil {
			return m[k].Err
		}
	}
	return nil
}

// geomean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// moreCoreCfg is the Baseline_MoreCore configuration (§6).
func moreCoreCfg(cfg config.Config) config.Config {
	cfg.GPU.NumSMs += cfg.NumHMCs
	return cfg
}

// header prints a table header row.
func header(w io.Writer, title string, cols []string) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-8s", "")
	for _, c := range cols {
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}
