package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ndpgpu/internal/metrics"
)

// Watchdog sentinels — the poisonous failure classes that, repeated, send a
// request key to quarantine.
var (
	// ErrRunTimeout marks a run canceled for exceeding its total deadline
	// (Options.RunTimeout).
	ErrRunTimeout = errors.New("serve: run exceeded its deadline")
	// ErrRunStalled marks a run canceled for emitting no progress samples
	// within the stall window (Options.StallTimeout).
	ErrRunStalled = errors.New("serve: run stopped making progress")
)

// PanicError is a runner panic converted into a structured per-run error:
// the recovered value plus the goroutine stack at the point of the panic.
// The server maps it to a 500 with the panic value in the error JSON; the
// worker that caught it keeps serving.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("serve: runner panicked: %v", e.Value) }

// poisonous reports whether a run failure counts toward quarantine: panics
// and watchdog kills poison their key, ordinary run errors (bad workload,
// fault-schedule validation) do not.
func poisonous(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe) || errors.Is(err, ErrRunTimeout) || errors.Is(err, ErrRunStalled)
}

// RunCtx is the per-execution control handle handed to a Runner. It carries
// cooperative cancellation from the scheduler's watchdog to the running
// simulation: the runner registers how it can be stopped (the machine's
// step-barrier stop flag) with OnCancel, and the watchdog fires every
// registered canceler at most once when the deadline or stall window trips.
type RunCtx struct {
	mu      sync.Mutex
	done    chan struct{}
	cause   error
	cancels []func()
}

func newRunCtx() *RunCtx { return &RunCtx{done: make(chan struct{})} }

// Done returns a channel closed when the run is canceled. A runner that can
// block outside the simulation (or a test stub) selects on it.
func (rc *RunCtx) Done() <-chan struct{} {
	if rc == nil {
		return nil
	}
	return rc.done
}

// Err returns the cancellation cause (ErrRunTimeout or ErrRunStalled), or
// nil while the run is still live.
func (rc *RunCtx) Err() error {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.cause
}

// OnCancel registers a function invoked when the run is canceled; if the run
// is already canceled it is invoked immediately. Typical use from a runner:
// rc.OnCancel(machine.Cancel). Nil-receiver safe so runners need no guard.
func (rc *RunCtx) OnCancel(fn func()) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	canceled := rc.cause != nil
	if !canceled {
		rc.cancels = append(rc.cancels, fn)
	}
	rc.mu.Unlock()
	if canceled {
		fn()
	}
}

// cancel records the cause, closes Done, and fires the registered cancelers.
// Idempotent: only the first cause wins.
func (rc *RunCtx) cancel(cause error) {
	rc.mu.Lock()
	if rc.cause != nil {
		rc.mu.Unlock()
		return
	}
	rc.cause = cause
	fns := rc.cancels
	rc.cancels = nil
	close(rc.done)
	rc.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// watchdog supervises one run: a total deadline plus a progress-stall window
// fed by the epoch metrics hook (every progress event touches the guard).
// When either trips it cancels the RunCtx, which stops the simulation at its
// next step barrier.
type watchdog struct {
	guard *metrics.StallGuard // nil when stall detection is off
	stop  chan struct{}
	once  sync.Once
}

// runWatchdog starts a watchdog for rc; returns nil (a no-op) when both
// limits are disabled.
func runWatchdog(rc *RunCtx, deadline, stall time.Duration) *watchdog {
	if deadline <= 0 && stall <= 0 {
		return nil
	}
	w := &watchdog{stop: make(chan struct{})}
	if stall > 0 {
		w.guard = metrics.NewStallGuard(stall)
	}
	go w.loop(rc, deadline, stall)
	return w
}

// touch records run progress; nil-safe.
func (w *watchdog) touch() {
	if w != nil && w.guard != nil {
		w.guard.Touch()
	}
}

// halt dismisses the watchdog (the run finished on its own); nil-safe and
// idempotent.
func (w *watchdog) halt() {
	if w == nil {
		return
	}
	w.once.Do(func() { close(w.stop) })
}

func (w *watchdog) loop(rc *RunCtx, deadline, stall time.Duration) {
	start := time.Now()
	for {
		// Sleep until the earlier of the two pending verdicts, then re-check:
		// a touch in the meantime pushes the stall verdict out.
		wake := time.Duration(1<<62 - 1)
		if deadline > 0 {
			if left := deadline - time.Since(start); left <= 0 {
				rc.cancel(fmt.Errorf("%w (%v)", ErrRunTimeout, deadline))
				return
			} else if left < wake {
				wake = left
			}
		}
		if w.guard != nil {
			if w.guard.Stalled() {
				rc.cancel(fmt.Errorf("%w (no sample for %v)", ErrRunStalled, stall))
				return
			}
			left := stall - w.guard.SinceTouch()
			if left < time.Millisecond {
				left = time.Millisecond // boundary race: re-check shortly
			}
			if left < wake {
				wake = left
			}
		}
		timer := time.NewTimer(wake)
		select {
		case <-timer.C:
		case <-w.stop:
			timer.Stop()
			return
		}
	}
}
