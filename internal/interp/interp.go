// Package interp is a reference interpreter for the virtual ISA: it executes
// a kernel sequentially, warp by warp, with none of the simulator's timing,
// caching, or offload machinery. It exists purely as an oracle — the
// simulator (in any offload mode) must produce bit-identical memory.
//
// Warps execute in a fixed order (CTA-major), which is equivalent to any
// interleaving for race-free kernels; racy kernels are outside its contract.
package interp

import (
	"fmt"

	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

// Trace observes one global-memory access during a traced run: the CTA that
// issued it, the (virtual) address, and whether it was a store. LDS/STS
// scratchpad traffic is not reported — it never leaves the SM.
type Trace func(cta int, addr uint64, store bool)

// Run executes the kernel to completion over mem.
func Run(k *kernel.Kernel, mem *vm.System) error {
	return RunTraced(k, mem, nil)
}

// RunTraced is Run with an optional per-access trace hook, used by placement
// backends to profile which CTAs touch which pages before the timing run.
// The execution order (CTA-major, warps round-robin between barriers) is
// deterministic, so the trace stream is too.
func RunTraced(k *kernel.Kernel, mem *vm.System, tr Trace) error {
	if err := k.Validate(); err != nil {
		return err
	}
	const ww = 32
	warpsPerCTA := (k.BlockDim + ww - 1) / ww
	smem := make(map[uint64]uint32)

	for cta := 0; cta < k.GridDim; cta++ {
		// Scratchpad is CTA-private; barriers require lockstep execution of
		// the CTA's warps, which a sequential interpreter satisfies only
		// for kernels whose barriers separate smem phases. We execute the
		// CTA's warps phase by phase between barriers.
		for key := range smem {
			delete(smem, key)
		}
		warps := make([]*warpState, warpsPerCTA)
		for w := 0; w < warpsPerCTA; w++ {
			warps[w] = newWarp(k, cta, w)
		}
		live := warpsPerCTA
		for live > 0 {
			progressed := false
			for _, w := range warps {
				if w.done {
					continue
				}
				if err := w.runUntilBarrierOrExit(k, mem, smem, tr); err != nil {
					return err
				}
				progressed = true
				if w.done {
					live--
				}
			}
			// Release barriers: all non-done warps are at one.
			for _, w := range warps {
				w.atBarrier = false
			}
			if !progressed {
				return fmt.Errorf("interp: no progress in CTA %d", cta)
			}
		}
	}
	return nil
}

type warpState struct {
	pc        int
	cta       int
	mask      uint32
	regs      [isa.NumRegs][32]uint64
	done      bool
	atBarrier bool
}

func newWarp(k *kernel.Kernel, cta, warpInCTA int) *warpState {
	w := &warpState{cta: cta}
	base := warpInCTA * 32
	for t := 0; t < 32; t++ {
		tid := base + t
		if tid >= k.BlockDim {
			break
		}
		w.mask |= 1 << uint(t)
		w.regs[kernel.RegGTID][t] = uint64(cta*k.BlockDim + tid)
		w.regs[kernel.RegCTAID][t] = uint64(cta)
		w.regs[kernel.RegTID][t] = uint64(tid)
		w.regs[kernel.RegNTID][t] = uint64(k.BlockDim)
		for p, v := range k.Params {
			w.regs[int(kernel.RegParam0)+p][t] = v
		}
	}
	return w
}

func (w *warpState) effMask(in isa.Instr) uint32 {
	if in.Pred == isa.RNone {
		return w.mask
	}
	var m uint32
	for t := 0; t < 32; t++ {
		if w.mask&(1<<uint(t)) == 0 {
			continue
		}
		on := w.regs[in.Pred][t] != 0
		if on != in.PredNeg {
			m |= 1 << uint(t)
		}
	}
	return m
}

// runUntilBarrierOrExit steps the warp until it exits or reaches a barrier.
func (w *warpState) runUntilBarrierOrExit(k *kernel.Kernel, mem *vm.System, smem map[uint64]uint32, tr Trace) error {
	for steps := 0; steps < 1<<24; steps++ {
		in := k.Code[w.pc]
		switch in.Op {
		case isa.EXIT:
			w.done = true
			return nil
		case isa.BAR:
			w.pc++
			w.atBarrier = true
			return nil
		case isa.BRA:
			w.pc = int(in.Imm)
			continue
		case isa.BRP:
			taken, first, mixed := false, true, false
			for t := 0; t < 32; t++ {
				if w.mask&(1<<uint(t)) == 0 {
					continue
				}
				v := w.regs[in.Src[0]][t] != 0
				if first {
					taken, first = v, false
				} else if v != taken {
					mixed = true
				}
			}
			if mixed {
				return fmt.Errorf("interp: divergent branch at pc=%d", w.pc)
			}
			if taken {
				w.pc = int(in.Imm)
			} else {
				w.pc++
			}
			continue
		case isa.OFLDBEG, isa.OFLDEND, isa.NOP:
			w.pc++
			continue
		}

		m := w.effMask(in)
		for t := 0; t < 32; t++ {
			if m&(1<<uint(t)) == 0 {
				continue
			}
			switch in.Op {
			case isa.LD, isa.LDC:
				addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
				if tr != nil {
					tr(w.cta, addr, false)
				}
				w.regs[in.Dst][t] = uint64(mem.Read32(addr))
			case isa.ST:
				addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
				if tr != nil {
					tr(w.cta, addr, true)
				}
				mem.Write32(addr, uint32(w.regs[in.Src[1]][t]))
			case isa.LDS:
				addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
				w.regs[in.Dst][t] = uint64(smem[addr])
			case isa.STS:
				addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
				smem[addr] = uint32(w.regs[in.Src[1]][t])
			default:
				var a, b, c uint64
				if in.Src[0] != isa.RNone {
					a = w.regs[in.Src[0]][t]
				}
				if in.Src[1] != isa.RNone {
					b = w.regs[in.Src[1]][t]
				}
				if in.Src[2] != isa.RNone {
					c = w.regs[in.Src[2]][t]
				}
				w.regs[in.Dst][t] = isa.Eval(in, a, b, c)
			}
		}
		w.pc++
	}
	return fmt.Errorf("interp: step limit exceeded (infinite loop?)")
}
