package stats

import (
	"fmt"
	"reflect"
)

// Digest flattens the statistics bundle into a name → value map: every
// integer counter, every enum-indexed array element, and the nested cache
// bundles, discovered by reflection so a counter added to Stats is
// automatically covered by the golden-digest regression gate. Float series
// (RatioTrace) contribute their length, final value, and mean — compact but
// drift-sensitive. All values come from deterministic simulation state, so
// two bit-identical runs produce identical digests.
func (s *Stats) Digest() map[string]float64 {
	out := make(map[string]float64, 64)
	digestValue("", reflect.ValueOf(*s), out)
	return out
}

func digestValue(prefix string, v reflect.Value, out map[string]float64) {
	switch v.Kind() {
	case reflect.Int64:
		out[prefix] = float64(v.Int())
	case reflect.Float64:
		out[prefix] = v.Float()
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			name := t.Field(i).Name
			if prefix != "" {
				name = prefix + "." + name
			}
			digestValue(name, v.Field(i), out)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			digestValue(fmt.Sprintf("%s[%d]", prefix, i), v.Index(i), out)
		}
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Float64 {
			// A sampled series: summarize rather than pin every epoch.
			n := v.Len()
			out[prefix+".len"] = float64(n)
			if n > 0 {
				var sum float64
				for i := 0; i < n; i++ {
					sum += v.Index(i).Float()
				}
				out[prefix+".final"] = v.Index(n - 1).Float()
				out[prefix+".mean"] = sum / float64(n)
			}
			return
		}
		for i := 0; i < v.Len(); i++ {
			digestValue(fmt.Sprintf("%s[%d]", prefix, i), v.Index(i), out)
		}
	}
}
