package analyzer

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

func BenchmarkAnalyzeSuite(b *testing.B) {
	mem := vm.New(config.Default())
	ws := make(map[string]*workloads.Workload)
	for _, abbr := range workloads.Abbrs() {
		w, err := workloads.Build(abbr, mem, 1)
		if err != nil {
			b.Fatal(err)
		}
		ws[abbr] = w
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			if _, err := Analyze(w.Kernel, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
}
