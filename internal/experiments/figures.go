package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/stats"
)

// Figure5 reproduces the target-NSU selection study (§4.1.1): normalized
// inter-stack traffic of the first-HMC policy versus the oracle, as the
// number of memory accesses per offload block grows. Accesses are mapped to
// 8 HMCs uniformly at random, as in the paper.
func Figure5(w io.Writer) Fig5Result {
	const hmcs = 8
	const trials = 20000
	rng := rand.New(rand.NewSource(5))
	var res Fig5Result
	fmt.Fprintln(w, "\nFigure 5: normalized off-chip traffic vs #memory accesses per block")
	fmt.Fprintf(w, "%10s %12s %12s %8s\n", "#accesses", "first-HMC", "optimal", "ratio")
	for _, n := range []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64} {
		var first, opt float64
		for t := 0; t < trials; t++ {
			acc := make([]int, n)
			for i := range acc {
				acc[i] = rng.Intn(hmcs)
			}
			fl := core.SelectTarget(acc[:1], hmcs)
			op := core.SelectOptimal(acc, hmcs)
			first += float64(core.RemoteTraffic(acc, fl))
			opt += float64(core.RemoteTraffic(acc, op))
		}
		// Normalize to all-remote traffic (= n accesses each crossing once).
		fN := first / float64(trials) / float64(n)
		oN := opt / float64(trials) / float64(n)
		ratio := 1.0
		if oN > 0 {
			ratio = fN / oN
		}
		res.Points = append(res.Points, Fig5Point{N: n, First: fN, Optimal: oN, Ratio: ratio})
		fmt.Fprintf(w, "%10d %12.4f %12.4f %8.3f\n", n, fN, oN, ratio)
	}
	return res
}

// Fig5Result holds the Figure 5 series.
type Fig5Result struct{ Points []Fig5Point }

// Fig5Point is one x-axis position of Figure 5.
type Fig5Point struct {
	N              int
	First, Optimal float64
	Ratio          float64 // first/optimal; paper: at most ~1.15, converging to 1
}

// Fig7Result carries the Figure 7 and Figure 8 measurements.
type Fig7Result struct {
	Rows map[string]map[string]*Run // workload -> mode -> run
}

// Figure7 compares Baseline, Baseline_MoreCore, and the naive NDP mechanism
// (§6): naive NDP degrades every workload while MoreCore barely helps.
func Figure7(w io.Writer, cfg config.Config, scale int) (Fig7Result, error) {
	var jobs []job
	for _, wl := range Workloads() {
		jobs = append(jobs,
			job{wl, sim.Baseline, cfg},
			job{wl, sim.Mode{Name: "Baseline_MoreCore"}, moreCoreCfg(cfg)},
			job{wl, sim.NaiveNDP, cfg},
		)
	}
	runs := runAll(jobs, scale)
	if err := checkErrs(runs); err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{Rows: map[string]map[string]*Run{}}
	header(w, "Figure 7: speedup over Baseline (naive NDP)", []string{"MoreCore", "NaiveNDP"})
	var mc, nv []float64
	for _, wl := range Workloads() {
		base := get(runs, wl, "Baseline")
		m := get(runs, wl, "Baseline_MoreCore")
		n := get(runs, wl, "NaiveNDP")
		res.Rows[wl] = map[string]*Run{"Baseline": base, "Baseline_MoreCore": m, "NaiveNDP": n}
		fmt.Fprintf(w, "%-8s%12.3f%12.3f\n", wl, m.Speedup(base), n.Speedup(base))
		mc = append(mc, m.Speedup(base))
		nv = append(nv, n.Speedup(base))
	}
	fmt.Fprintf(w, "%-8s%12.3f%12.3f\n", "GMEAN", geomean(mc), geomean(nv))
	return res, nil
}

// Figure8 prints the no-issue-cycle breakdown (§6) for the Figure 7 runs,
// normalized to the baseline's total no-issue cycles per workload.
func Figure8(w io.Writer, f7 Fig7Result) {
	fmt.Fprintln(w, "\nFigure 8: no-issue cycle breakdown (normalized to Baseline total)")
	fmt.Fprintf(w, "%-8s %-18s %12s %12s %12s %8s\n",
		"", "config", "ExecBusy", "DepStall", "WarpIdle", "total")
	for _, wl := range Workloads() {
		rows := f7.Rows[wl]
		base := rows["Baseline"].Stats.NoIssueTotal()
		if base == 0 {
			base = 1
		}
		for _, mode := range []string{"Baseline", "Baseline_MoreCore", "NaiveNDP"} {
			st := rows[mode].Stats
			fmt.Fprintf(w, "%-8s %-18s %12.3f %12.3f %12.3f %8.3f\n",
				wl, mode,
				float64(st.NoIssue[stats.ExecUnitBusy])/float64(base),
				float64(st.NoIssue[stats.DependencyStall])/float64(base),
				float64(st.NoIssue[stats.WarpIdle])/float64(base),
				float64(st.NoIssueTotal())/float64(base))
		}
	}
}

// Fig9Result carries the static-ratio sweep plus the dynamic mechanisms.
type Fig9Result struct {
	Rows  map[string]map[string]*Run
	Modes []string
}

// Figure9 runs the §7 sweep: static offload ratios 0.2..1.0, the dynamic
// hill-climbing controller, and the cache-locality-aware variant.
func Figure9(w io.Writer, cfg config.Config, scale int) (Fig9Result, error) {
	modes := []sim.Mode{
		sim.Baseline,
		sim.Mode{Name: "Baseline_MoreCore"},
		sim.StaticNDP(0.2), sim.StaticNDP(0.4), sim.StaticNDP(0.6),
		sim.StaticNDP(0.8), sim.StaticNDP(1.0),
		sim.DynNDP, sim.DynCache,
	}
	var jobs []job
	for _, wl := range Workloads() {
		for _, m := range modes {
			c := cfg
			if m.Name == "Baseline_MoreCore" {
				c = moreCoreCfg(cfg)
			}
			jobs = append(jobs, job{wl, m, c})
		}
	}
	runs := runAll(jobs, scale)
	if err := checkErrs(runs); err != nil {
		return Fig9Result{}, err
	}
	res := Fig9Result{Rows: map[string]map[string]*Run{}}
	for _, m := range modes {
		res.Modes = append(res.Modes, m.Name)
	}
	cols := res.Modes[1:]
	header(w, "Figure 9: speedup over Baseline (offload-ratio study)", cols)
	sums := make(map[string][]float64)
	for _, wl := range Workloads() {
		res.Rows[wl] = map[string]*Run{}
		base := get(runs, wl, "Baseline")
		res.Rows[wl]["Baseline"] = base
		fmt.Fprintf(w, "%-8s", wl)
		for _, mn := range cols {
			r := get(runs, wl, mn)
			res.Rows[wl][mn] = r
			sp := r.Speedup(base)
			sums[mn] = append(sums[mn], sp)
			fmt.Fprintf(w, "%12.3f", sp)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-8s", "GMEAN")
	for _, mn := range cols {
		fmt.Fprintf(w, "%12.3f", geomean(sums[mn]))
	}
	fmt.Fprintln(w)
	return res, nil
}

// Figure10 prints the energy breakdown normalized to the baseline (§7.4)
// using the Figure 9 runs.
func Figure10(w io.Writer, f9 Fig9Result) {
	fmt.Fprintln(w, "\nFigure 10: energy, normalized to Baseline total")
	fmt.Fprintf(w, "%-8s %-18s %8s %8s %8s %8s %8s %8s\n",
		"", "config", "GPU", "NSU", "NoC", "OffChip", "DRAM", "Total")
	for _, wl := range Workloads() {
		rows := f9.Rows[wl]
		base := rows["Baseline"].Energy.Total()
		for _, mode := range []string{"Baseline", "Baseline_MoreCore", "NDP(Dyn)", "NDP(Dyn)_Cache"} {
			r := rows[mode]
			e := r.Energy
			fmt.Fprintf(w, "%-8s %-18s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
				wl, mode, e.GPU/base, e.NSU/base, e.IntraHMC/base,
				e.OffChip/base, e.DRAM/base, e.Total()/base)
		}
	}
	// Geomean of total energy for the NDP configs.
	for _, mode := range []string{"Baseline_MoreCore", "NDP(Dyn)", "NDP(Dyn)_Cache"} {
		var vs []float64
		for _, wl := range Workloads() {
			vs = append(vs, f9.Rows[wl][mode].Energy.Total()/f9.Rows[wl]["Baseline"].Energy.Total())
		}
		fmt.Fprintf(w, "%-8s %-18s total GMEAN = %.3f\n", "", mode, geomean(vs))
	}
}

// Figure11 reports NSU I-cache utilization and warp occupancy (§7.5) from
// the NDP(Dyn)_Cache runs.
func Figure11(w io.Writer, f9 Fig9Result, cfg config.Config) {
	fmt.Fprintln(w, "\nFigure 11: NSU I-cache utilization and warp occupancy (NDP(Dyn)_Cache)")
	fmt.Fprintf(w, "%-8s %14s %14s\n", "", "icache-util", "occupancy")
	var us, os []float64
	for _, wl := range Workloads() {
		st := f9.Rows[wl]["NDP(Dyn)_Cache"].Stats
		u := st.ICacheUtilization(cfg.NSU.ICacheBytes)
		o := st.NSUOccupancy(cfg.NSU.NumWarps, cfg.NumHMCs)
		us = append(us, u)
		os = append(os, o)
		fmt.Fprintf(w, "%-8s %13.1f%% %13.1f%%\n", wl, 100*u, 100*o)
	}
	fmt.Fprintf(w, "%-8s %13.1f%% %13.1f%%\n", "AVG", 100*mean(us), 100*mean(os))
}

// InvalOverhead reports the §4.2 cache-invalidation traffic as a fraction
// of GPU off-chip traffic (paper: up to 1.42%, average 0.38%).
func InvalOverhead(w io.Writer, f9 Fig9Result) {
	fmt.Fprintln(w, "\nCache-invalidation traffic overhead (§4.2, NDP(Dyn)_Cache)")
	var vs []float64
	for _, wl := range Workloads() {
		ov := f9.Rows[wl]["NDP(Dyn)_Cache"].Stats.InvalOverhead()
		vs = append(vs, ov)
		fmt.Fprintf(w, "%-8s %7.3f%%\n", wl, 100*ov)
	}
	fmt.Fprintf(w, "%-8s %7.3f%% (max %.3f%%)\n", "AVG", 100*mean(vs), 100*maxOf(vs))
}

// MoreCompute reproduces the §7.3 sensitivity: with 2x the SMs the NDP
// mechanism still wins (paper: +11.6% average).
func MoreCompute(w io.Writer, scale int) error {
	cfg := config.DoubleCompute()
	var jobs []job
	for _, wl := range Workloads() {
		jobs = append(jobs, job{wl, sim.Baseline, cfg}, job{wl, sim.DynCache, cfg})
	}
	runs := runAll(jobs, scale)
	if err := checkErrs(runs); err != nil {
		return err
	}
	header(w, "2x compute units (§7.3): speedup over 128-SM baseline", []string{"Dyn_Cache"})
	var vs []float64
	for _, wl := range Workloads() {
		sp := get(runs, wl, "NDP(Dyn)_Cache").Speedup(get(runs, wl, "Baseline"))
		vs = append(vs, sp)
		fmt.Fprintf(w, "%-8s%12.3f\n", wl, sp)
	}
	fmt.Fprintf(w, "%-8s%12.3f\n", "GMEAN", geomean(vs))
	return nil
}

// NSUFreq reproduces the §7.6 sensitivity: halving the NSU clock to 175 MHz
// keeps most of the benefit (paper: +14.1% average vs +17.9%).
func NSUFreq(w io.Writer, scale int) error {
	full := config.Default()
	half := config.HalfNSUClock()
	var jobs []job
	for _, wl := range Workloads() {
		jobs = append(jobs,
			job{wl, sim.Baseline, full},
			job{wl, sim.DynCache, full},
			job{wl, sim.Mode{Name: "NDP(Dyn)_Cache@175", NDP: true, Dynamic: true, Cache: true}, half},
		)
	}
	runs := runAll(jobs, scale)
	if err := checkErrs(runs); err != nil {
		return err
	}
	header(w, "NSU frequency sensitivity (§7.6): speedup over Baseline", []string{"350MHz", "175MHz"})
	var v350, v175 []float64
	for _, wl := range Workloads() {
		base := get(runs, wl, "Baseline")
		s350 := get(runs, wl, "NDP(Dyn)_Cache").Speedup(base)
		s175 := get(runs, wl, "NDP(Dyn)_Cache@175").Speedup(base)
		v350 = append(v350, s350)
		v175 = append(v175, s175)
		fmt.Fprintf(w, "%-8s%12.3f%12.3f\n", wl, s350, s175)
	}
	fmt.Fprintf(w, "%-8s%12.3f%12.3f\n", "GMEAN", geomean(v350), geomean(v175))
	return nil
}

// ROCacheAblation evaluates the §7.1 future-work extension: a small
// read-only cache on each NSU. BPROP's offload blocks re-ship the hot
// 68-byte hidden structure from the GPU caches on every instance; with the
// extension the GPU sends a reference instead, and BPROP recovers.
func ROCacheAblation(w io.Writer, scale int) error {
	base := config.Default()
	ro := config.WithNSUReadOnlyCache()
	var jobs []job
	for _, wl := range Workloads() {
		jobs = append(jobs,
			job{wl, sim.Baseline, base},
			job{wl, sim.DynCache, base},
			job{wl, sim.Mode{Name: "NDP(Dyn)_Cache+RO", NDP: true, Dynamic: true, Cache: true}, ro},
		)
	}
	runs := runAll(jobs, scale)
	if err := checkErrs(runs); err != nil {
		return err
	}
	header(w, "NSU read-only cache ablation (§7.1 future work): speedup over Baseline",
		[]string{"Dyn_Cache", "+RO cache"})
	var a, b []float64
	for _, wl := range Workloads() {
		bl := get(runs, wl, "Baseline")
		s0 := get(runs, wl, "NDP(Dyn)_Cache").Speedup(bl)
		s1 := get(runs, wl, "NDP(Dyn)_Cache+RO").Speedup(bl)
		a = append(a, s0)
		b = append(b, s1)
		fmt.Fprintf(w, "%-8s%12.3f%12.3f\n", wl, s0, s1)
	}
	fmt.Fprintf(w, "%-8s%12.3f%12.3f\n", "GMEAN", geomean(a), geomean(b))
	return nil
}

// TopologyAblation compares the paper's hypercube memory network against a
// 2-link ring (DESIGN.md design-choice ablation): ring paths average twice
// the hops, so memory-network-heavy workloads lose part of their NDP gain.
func TopologyAblation(w io.Writer, scale int) error {
	cube := config.Default()
	ring := config.Default()
	ring.HMC.NetTopology = "ring"
	var jobs []job
	wls := []string{"VADD", "KMN", "BFS"}
	for _, wl := range wls {
		jobs = append(jobs,
			job{wl, sim.Baseline, cube},
			job{wl, sim.Mode{Name: "NDP(Dyn)_Cache/cube", NDP: true, Dynamic: true, Cache: true}, cube},
			job{wl, sim.Mode{Name: "NDP(Dyn)_Cache/ring", NDP: true, Dynamic: true, Cache: true}, ring},
		)
	}
	runs := runAll(jobs, scale)
	if err := checkErrs(runs); err != nil {
		return err
	}
	header(w, "Memory-network topology ablation: speedup over Baseline", []string{"hypercube", "ring"})
	for _, wl := range wls {
		base := get(runs, wl, "Baseline")
		fmt.Fprintf(w, "%-8s%12.3f%12.3f\n", wl,
			get(runs, wl, "NDP(Dyn)_Cache/cube").Speedup(base),
			get(runs, wl, "NDP(Dyn)_Cache/ring").Speedup(base))
	}
	return nil
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
