// Package core implements the paper's primary contribution: the partitioned
// execution protocol between GPU SMs and NSUs. It defines the offload packet
// formats of Figure 4, the credit-based NDP buffer manager of §4.3, the
// target-NSU selection policy of §4.1.1 (evaluated in Figure 5), and the
// offload-decision mechanisms of §6-§7 (naive, static ratio, dynamic
// hill-climbing ratio, and cache-locality-aware).
package core

import "math/bits"

// WarpWidth is the SIMT width shared by GPU and NSU (Table 2).
const WarpWidth = 32

// HeaderBytes is the common packet header: offload packet ID (SM ID, warp
// ID, sequence number), address/PC field, active thread mask, target NSU ID
// (Figure 4).
const HeaderBytes = 16

// WordBytes is the per-thread data word size.
const WordBytes = 4

// SmallBytes is the size of short control messages (write acks, cache
// invalidations): an address plus a tag.
const SmallBytes = 8

// OffloadID identifies one in-flight offloaded warp: at most one offload is
// active per (SM, warp) at a time, and the per-memory-instruction sequence
// number is carried separately in each packet.
type OffloadID struct {
	SM   int32
	Warp int32
}

// ProtoTag disambiguates retransmissions under fault injection: Inst is a
// per-warp offload-instance counter (a warp slot runs many blocks over a
// run) and Attempt counts retries of the current instance. Both ride in the
// existing sequence-number field of the Figure 4 header, so they add no
// modeled bytes and are ignored (left zero) on the fault-free path.
type ProtoTag struct {
	Inst    int32
	Attempt int16
}

// RegSet carries register values for the active threads of a warp.
type RegSet struct {
	Regs []RegVals
}

// RegVals is one architectural register's per-thread values. Mask, when
// nonzero, narrows the transfer to the threads the register was actually
// written for (predicated offload blocks produce partial results).
type RegVals struct {
	Reg  int16
	Mask uint32
	Vals [WarpWidth]uint64
}

// Bytes returns the payload size of the register transfer for the given
// active mask (register size x #regs x #active threads, Figure 4(a)).
func (r RegSet) Bytes(mask uint32) int {
	return WordBytes * len(r.Regs) * bits.OnesCount32(mask)
}

// CmdPacket initiates offloaded execution on the target NSU (Figure 4(a)).
type CmdPacket struct {
	ID      OffloadID
	Tag     ProtoTag
	BlockID int
	Mask    uint32 // active thread mask
	Target  int    // target NSU / HMC id
	In      RegSet // registers transferred GPU -> NSU
	NumLD   int    // read-data buffer entries reserved
	NumST   int    // write-address buffer entries reserved
}

// Size returns the packet size in bytes.
func (p *CmdPacket) Size() int { return HeaderBytes + p.In.Bytes(p.Mask) }

// LineAccess describes one coalesced cache-line access: which threads touch
// the line and each covered thread's word offset within it.
type LineAccess struct {
	LineAddr uint64
	Mask     uint32           // threads covered by this packet
	Offsets  [WarpWidth]uint8 // word index within the line, per thread
	Aligned  bool             // offset_i == i (no offset list needed, §4.1.1)
}

// RDFPacket is a read-and-forward request (Figure 4(b)): the GPU asks the
// line's home vault to read DRAM and forward the touched words to the
// target NSU.
type RDFPacket struct {
	ID     OffloadID
	Tag    ProtoTag
	Seq    int // load index within the block
	Target int
	Access LineAccess
	// TotalPkts is how many RDF packets the GPU generated for this load
	// instruction, so the NSU can tell when its read-data entry is complete.
	TotalPkts int
}

// Size returns the packet size in bytes; misaligned accesses append one
// offset byte per covered thread.
func (p *RDFPacket) Size() int {
	if p.Access.Aligned {
		return HeaderBytes
	}
	return HeaderBytes + bits.OnesCount32(p.Access.Mask)
}

// RDFResp carries the touched data words to the target NSU (Figure 4(c)).
// It is generated either by the GPU (on a cache hit) or by the home vault.
type RDFResp struct {
	ID        OffloadID
	Tag       ProtoTag
	Seq       int
	Mask      uint32
	Data      [WarpWidth]uint32
	TotalPkts int
	FromCache bool
}

// Size returns the packet size: header plus one word per covered thread —
// only the words actually accessed are included (§4.4).
func (p *RDFResp) Size() int { return HeaderBytes + WordBytes*bits.OnesCount32(p.Mask) }

// RDFRef asks the target NSU to serve a line from its read-only cache
// instead of shipping the data again (the optional §7.1 extension). The GPU
// only sends it for lines its per-NSU directory knows the NSU holds.
type RDFRef struct {
	ID        OffloadID
	Tag       ProtoTag
	Seq       int
	Access    LineAccess
	TotalPkts int
}

// Size returns the packet size (same as an RDF request: no data payload).
func (p *RDFRef) Size() int {
	if p.Access.Aligned {
		return HeaderBytes
	}
	return HeaderBytes + bits.OnesCount32(p.Access.Mask)
}

// WTAPacket provides the write address for a store instruction to the
// target NSU (Figure 4(b)).
type WTAPacket struct {
	ID        OffloadID
	Tag       ProtoTag
	Seq       int // store index within the block
	Target    int
	Access    LineAccess
	TotalPkts int
}

// Size returns the packet size in bytes.
func (p *WTAPacket) Size() int {
	if p.Access.Aligned {
		return HeaderBytes
	}
	return HeaderBytes + bits.OnesCount32(p.Access.Mask)
}

// WritePacket carries store data from the NSU to a destination vault
// (possibly in another stack, over the memory network).
type WritePacket struct {
	ID     OffloadID
	Tag    ProtoTag
	Seq    int
	Source int // NSU that issued the write (ack destination)
	Access LineAccess
	Data   [WarpWidth]uint32
}

// Size returns the packet size: header plus the written words.
func (p *WritePacket) Size() int { return HeaderBytes + WordBytes*bits.OnesCount32(p.Access.Mask) }

// WriteAck acknowledges a WritePacket back to the issuing NSU.
type WriteAck struct {
	ID  OffloadID
	Tag ProtoTag
	Seq int
}

// Size returns the packet size.
func (p *WriteAck) Size() int { return SmallBytes }

// InvalPacket invalidates a line in the GPU caches after an NSU write
// reaches DRAM (§4.2 coherence mechanism).
type InvalPacket struct {
	LineAddr uint64
	HomeHMC  int
}

// Size returns the packet size.
func (p *InvalPacket) Size() int { return SmallBytes }

// AckPacket signals completion of an offloaded block to the GPU and carries
// the live-out register values (§4.1.2 OFLD.END). Each register transfers
// only the lanes it was written for.
type AckPacket struct {
	ID   OffloadID
	Tag  ProtoTag
	Mask uint32
	Out  RegSet
}

// Size returns the packet size: header plus one word per written lane.
func (p *AckPacket) Size() int {
	n := HeaderBytes
	for _, rv := range p.Out.Regs {
		m := rv.Mask
		if m == 0 {
			m = p.Mask
		}
		n += WordBytes * bits.OnesCount32(m)
	}
	return n
}

// Baseline (non-NDP) memory messages, used for like-for-like traffic and
// energy accounting.

// ReadReq is a baseline GPU cache-line read request.
type ReadReq struct {
	LineAddr uint64
}

// Size returns the request size (address + command).
func (p *ReadReq) Size() int { return HeaderBytes }

// ReadResp is the baseline read completion carrying a full cache line back
// to the GPU's L2.
type ReadResp struct {
	LineAddr uint64
}

// ReadRespBytes is the size of a baseline read response carrying a full
// cache line.
func ReadRespBytes(lineBytes int) int { return HeaderBytes + lineBytes }

// WriteReq is a baseline write-through store of the touched words.
type WriteReq struct {
	Access LineAccess
	Data   [WarpWidth]uint32
}

// Size returns the request size: header plus written words.
func (p *WriteReq) Size() int { return HeaderBytes + WordBytes*bits.OnesCount32(p.Access.Mask) }
