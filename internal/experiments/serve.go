package experiments

import (
	"fmt"

	"ndpgpu/internal/config"
	"ndpgpu/internal/energy"
	"ndpgpu/internal/serve"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/timing"
)

// ServeRunner adapts the experiments execution path into the ndpserve
// scheduler's Runner seam: one call builds the workload, runs the machine,
// verifies the output, and returns the result in the golden-digest format
// (stats.Digest plus TimePS and EnergyTotalPJ — exactly what GoldenDigests
// emits, so a served digest is comparable byte-for-byte with the committed
// regression file).
//
// Progress events come from the epoch-sampled metrics layer, which is a
// strict no-op on results by contract (TestMetricsDisabledNoOp), so enabling
// it for streaming cannot perturb the digest the cache memoizes.
func ServeRunner() serve.Runner {
	return func(rc *serve.RunCtx, req *serve.Request, progress func(serve.Progress)) (*serve.Outcome, error) {
		prep := func(m *sim.Machine) {
			// Hand the watchdog its stop hook: a deadline or stall verdict
			// cancels the engine cooperatively at its next step barrier.
			rc.OnCancel(m.Cancel)
			if progress == nil {
				return
			}
			mc := m.EnableMetrics(0) // default: the Algorithm-1 epoch
			mc.SetSampleHook(func(now timing.PS, cycles int64) {
				progress(serve.Progress{Cycles: cycles, TimePS: int64(now)})
			})
		}
		run := RunOneWith(req.Cfg, req.Workload, req.Mode, req.Scale, prep)
		if run.Err != nil {
			return nil, run.Err
		}
		d := run.Stats.Digest()
		d["TimePS"] = float64(run.TimePS)
		d["EnergyTotalPJ"] = run.Energy.Total()
		return &serve.Outcome{
			Digest:   d,
			Stats:    run.Stats,
			TimePS:   int64(run.TimePS),
			EnergyPJ: run.Energy.Total(),
			Wall:     run.Wall,
		}, nil
	}
}

// UseServer installs an Exec seam that routes every RunOne through a running
// ndpserve instance (ndpsweep -server): the request ships the job's full
// resolved Config plus the mode's canonical spelling, and the response's
// statistics bundle rebuilds the Run client-side — energy is recomputed
// locally from the returned counters, which is exact because the energy
// model is a pure function of (stats, config, mode). Repeated sweep points
// cost the server a map lookup.
func UseServer(baseURL, client string) error {
	c := serve.NewClient(baseURL)
	if err := c.Healthz(); err != nil {
		return err
	}
	Exec = func(cfg config.Config, abbr string, mode sim.Mode, scale int) *Run {
		run := &Run{Workload: abbr, Mode: mode.Name, Cfg: cfg}
		resp, st, err := c.Run(serve.RunRequest{
			Workload: abbr,
			Mode:     sim.SpecFor(mode),
			Scale:    scale,
			Config:   &cfg,
			Client:   client,
		})
		if err != nil {
			run.Err = fmt.Errorf("%s/%s: served run: %w", abbr, mode.Name, err)
			return run
		}
		if st == nil {
			run.Err = fmt.Errorf("%s/%s: server returned no statistics bundle", abbr, mode.Name)
			return run
		}
		run.Stats = st
		run.TimePS = timing.PS(resp.TimePS)
		run.Energy = energy.Compute(st, cfg, energy.DefaultParams(), mode.NDP)
		return run
	}
	return nil
}

// UseLocal removes an installed Exec seam, restoring local execution.
func UseLocal() { Exec = nil }
