package kernel

import (
	"strings"
	"testing"

	"ndpgpu/internal/isa"
)

func buildVadd(t *testing.T) *Kernel {
	t.Helper()
	b := NewBuilder()
	// addr = base + 4*gtid for three arrays in params r4,r5,r6.
	b.OpImm(isa.SHLI, 16, RegGTID, 2)
	b.Op3(isa.ADD, 17, RegParam0, 16)
	b.Op3(isa.ADD, 18, RegParam0+1, 16)
	b.Op3(isa.ADD, 19, RegParam0+2, 16)
	b.Ld(20, 17, 0)
	b.Ld(21, 18, 0)
	b.Op3(isa.FADD, 22, 20, 21)
	b.St(19, 0, 22)
	b.Exit()
	k, err := b.Build("vadd", 4, 64, 0x1000, 0x2000, 0x3000)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k
}

func TestBuildAndValidate(t *testing.T) {
	k := buildVadd(t)
	if k.Threads() != 256 {
		t.Fatalf("Threads = %d, want 256", k.Threads())
	}
	if k.RegsUsed != 23 {
		t.Fatalf("RegsUsed = %d, want 23", k.RegsUsed)
	}
	if len(k.Params) != 3 {
		t.Fatalf("Params = %d, want 3", len(k.Params))
	}
}

func TestForwardLabel(t *testing.T) {
	b := NewBuilder()
	done := b.NewLabel()
	b.MovI(16, 0)
	b.Bra(done)
	b.MovI(16, 1) // skipped
	b.Bind(done)
	b.Exit()
	k, err := b.Build("fwd", 1, 32)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.Code[1].Imm != 3 {
		t.Fatalf("branch target = %d, want 3", k.Code[1].Imm)
	}
}

func TestBackwardLabelLoop(t *testing.T) {
	b := NewBuilder()
	b.MovI(16, 10)
	top := b.NewLabel()
	b.Bind(top)
	b.OpImm(isa.ADDI, 16, 16, -1)
	b.Setp(isa.CmpGT, 17, 16, RegGTID) // dummy cond
	b.Brp(17, top)
	b.Exit()
	k, err := b.Build("loop", 1, 32)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.Code[3].Imm != 1 {
		t.Fatalf("loop target = %d, want 1", k.Code[3].Imm)
	}
}

func TestUnboundLabelRejected(t *testing.T) {
	b := NewBuilder()
	l := b.NewLabel()
	b.Bra(l)
	b.Exit()
	if _, err := b.Build("bad", 1, 32); err == nil {
		t.Fatal("expected unbound-label error")
	}
}

func TestEmptyKernelRejected(t *testing.T) {
	k := &Kernel{Name: "empty", GridDim: 1, BlockDim: 32}
	if err := k.Validate(); err == nil {
		t.Fatal("expected error for empty code")
	}
}

func TestMissingExitRejected(t *testing.T) {
	b := NewBuilder()
	b.MovI(16, 1)
	if _, err := b.Build("noexit", 1, 32); err == nil {
		t.Fatal("expected error for missing exit")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	b := NewBuilder()
	b.Exit()
	if _, err := b.Build("geo", 0, 32); err == nil {
		t.Fatal("expected error for zero grid")
	}
}

func TestPredicate(t *testing.T) {
	b := NewBuilder()
	pc := b.MovI(16, 1)
	b.Predicate(pc, 17, true)
	b.Exit()
	k, err := b.Build("pred", 1, 32)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.Code[0].Pred != 17 || !k.Code[0].PredNeg {
		t.Fatalf("predicate not applied: %+v", k.Code[0])
	}
}

func TestDisassemble(t *testing.T) {
	k := buildVadd(t)
	dis := k.Disassemble()
	if !strings.Contains(dis, "fadd r22, r20, r21") {
		t.Errorf("disassembly missing fadd: %s", dis)
	}
	if !strings.Contains(dis, "exit") {
		t.Errorf("disassembly missing exit: %s", dis)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	b.MovI(16, 1) // no exit
	b.MustBuild("bad", 1, 32)
}

func TestSmemInstructions(t *testing.T) {
	b := NewBuilder()
	b.Sts(16, 0, 17)
	b.Bar()
	b.Lds(18, 16, 4)
	b.Exit()
	k, err := b.Build("smem", 1, 32)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.Code[0].Op != isa.STS || k.Code[1].Op != isa.BAR || k.Code[2].Op != isa.LDS {
		t.Fatal("smem ops not emitted correctly")
	}
}
