package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"unicode/utf8"

	"ndpgpu/internal/timing"
)

func TestCollectorKinds(t *testing.T) {
	c := New(10, 100)
	var total, gauge, num, den float64
	c.Counter("cnt", "t", "u", func() float64 { return total })
	c.Gauge("g", "t", "u", func() float64 { return gauge })
	c.Rate("r", "t", "u", 1, func() float64 { return num }, func() float64 { return den })
	c.TimeRate("tr", "t", "u", 2, func() float64 { return total })

	total, gauge, num, den = 10, 3, 5, 10
	c.Sample(1000) // dt = 1000
	total, gauge, num, den = 25, 7, 5, 10
	c.Sample(2000) // dt = 1000, Δnum/Δden = 0/0

	r := c.Snapshot()
	want := map[string][]float64{
		"cnt": {10, 15},
		"g":   {3, 7},
		"r":   {0.5, 0}, // Δden = 0 on the second interval → 0, not NaN
		"tr":  {2 * 10 / 1000.0, 2 * 15 / 1000.0},
	}
	for _, s := range r.Series {
		w := want[s.Name]
		if len(s.Samples) != len(w) {
			t.Fatalf("%s: %d samples, want %d", s.Name, len(s.Samples), len(w))
		}
		for i := range w {
			if s.Samples[i] != w[i] {
				t.Errorf("%s[%d] = %g, want %g", s.Name, i, s.Samples[i], w[i])
			}
		}
	}
}

func TestTickerSamplesOnInterval(t *testing.T) {
	c := New(4, 10)
	var v float64
	c.Gauge("g", "t", "u", func() float64 { return v })
	tk := c.Ticker().(interface {
		timing.Ticker
		timing.IdleHint
		timing.IdleSkipper
	})
	for cyc := int64(1); cyc <= 10; cyc++ {
		v = float64(cyc)
		tk.Tick(timing.PS(cyc * 10))
	}
	r := c.Snapshot()
	if got := r.Series[0].Samples; len(got) != 2 || got[0] != 4 || got[1] != 8 {
		t.Fatalf("samples = %v, want [4 8]", got)
	}
	// Next boundary from cycle 10 is cycle 12 → 120 ps.
	if at := tk.NextWorkAt(100); at != 120 {
		t.Fatalf("NextWorkAt = %d, want 120", at)
	}
	// Idle-skip to just before the boundary, then tick across it.
	tk.SkipIdle(1)
	v = 99
	tk.Tick(120)
	r = c.Snapshot()
	if got := r.Series[0].Samples; len(got) != 3 || got[2] != 99 {
		t.Fatalf("post-skip samples = %v, want third sample 99", got)
	}
}

func TestFinalDeduplicates(t *testing.T) {
	c := New(5, 10)
	c.Gauge("g", "t", "u", func() float64 { return 1 })
	c.Sample(50)
	c.Final(50) // same timestamp: must not double-sample
	if n := len(c.Snapshot().TimesPS); n != 1 {
		t.Fatalf("samples after Final at same time = %d, want 1", n)
	}
	c.Final(70)
	if n := len(c.Snapshot().TimesPS); n != 2 {
		t.Fatalf("samples after Final at later time = %d, want 2", n)
	}
}

func TestSpansBoundedAndCounted(t *testing.T) {
	c := New(1, 1)
	for i := 0; i < maxSpans+7; i++ {
		c.OffloadSpan(1, 2, 3, timing.PS(i), 10)
	}
	r := c.Snapshot()
	if len(r.Spans) != maxSpans {
		t.Fatalf("spans = %d, want cap %d", len(r.Spans), maxSpans)
	}
	if r.SpansDropped != 7 {
		t.Fatalf("dropped = %d, want 7", r.SpansDropped)
	}
	if r.Spans[0].Name != "offload sm1/w2 blk3" {
		t.Fatalf("span name = %q", r.Spans[0].Name)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	c := New(2, 10)
	c.SetMeta("workload", "VADD")
	c.Gauge("g", "track", "u", func() float64 { return 42 })
	c.Sample(20)
	c.OffloadSpan(0, 1, 2, 5, 15)

	var buf bytes.Buffer
	if err := c.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var r Run
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Schema != Schema || r.Meta["workload"] != "VADD" ||
		len(r.Series) != 1 || r.Series[0].Samples[0] != 42 ||
		len(r.Spans) != 1 || r.Spans[0].DurPS != 15 {
		t.Fatalf("round trip lost data: %+v", r)
	}

	// Determinism: two snapshots of the same collector are byte-identical.
	var buf2 bytes.Buffer
	if err := c.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot export not byte-deterministic")
	}
}

func TestWriteCSV(t *testing.T) {
	c := New(2, 10)
	c.Gauge("a", "t", "u", func() float64 { return 1 })
	c.Gauge("b", "t", "u", func() float64 { return 2.5 })
	c.Sample(20)
	c.Sample(40)
	var buf bytes.Buffer
	if err := c.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "time_ps,a,b\n20,1,2.5\n40,1,2.5\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestWriteChrome(t *testing.T) {
	c := New(2, 10)
	c.Gauge("g", "track", "u", func() float64 { return 3 })
	c.Sample(20)
	c.OffloadSpan(1, 0, 0, 100, 50)
	var buf bytes.Buffer
	if err := c.Snapshot().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var sawCounter, sawSpan bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "C":
			sawCounter = true
			if ev["name"] != "track/g" {
				t.Errorf("counter name = %v", ev["name"])
			}
		case "X":
			sawSpan = true
			if ev["dur"].(float64) != 50/1e6 {
				t.Errorf("span dur = %v", ev["dur"])
			}
			if ev["tid"].(float64) != 1 {
				t.Errorf("span tid = %v, want issuing SM", ev["tid"])
			}
		}
	}
	if !sawCounter || !sawSpan {
		t.Fatalf("chrome trace missing events: counter=%v span=%v", sawCounter, sawSpan)
	}
}

func TestParseFormat(t *testing.T) {
	cases := []struct {
		name, path string
		want       Format
		err        bool
	}{
		{"json", "x", FormatJSON, false},
		{"csv", "x", FormatCSV, false},
		{"chrome", "x", FormatChrome, false},
		{"", "out.csv", FormatCSV, false},
		{"", "out.json", FormatJSON, false},
		{"", "out", FormatJSON, false},
		{"xml", "x", "", true},
	}
	for _, c := range cases {
		got, err := ParseFormat(c.name, c.path)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseFormat(%q,%q) = %v, %v", c.name, c.path, got, err)
		}
	}
}

func TestDiffJSON(t *testing.T) {
	a := []byte(`{"x": 100, "nested": {"y": [1, 2], "flag": true}, "name": "run"}`)
	same := []byte(`{"x": 100, "nested": {"y": [1, 2], "flag": true}, "name": "other"}`)
	drifted := []byte(`{"x": 103, "nested": {"y": [1, 5], "flag": false}}`)

	// Identical numerics (string leaves are ignored): no drift.
	if ds, err := DiffJSON(a, same, Tolerances{}); err != nil || len(ds) != 0 {
		t.Fatalf("self diff = %v, %v", ds, err)
	}

	// Perturbed: x (rel 0.03), y[1] (rel 0.6), flag (1→0), missing name is a
	// string so never reported.
	ds, err := DiffJSON(a, drifted, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("drifts = %v, want 3", ds)
	}

	// Tolerance swallows the small x drift, not the big y drift.
	ds, err = DiffJSON(a, drifted, Tolerances{Default: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Path == "x" {
			t.Fatalf("x (rel 0.03) survived tolerance 0.05: %v", ds)
		}
	}

	// Longest-prefix tolerance wins.
	ds, err = DiffJSON(a, drifted, Tolerances{
		Default:  0,
		ByPrefix: map[string]float64{"nested": 0, "nested.y": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if strings.HasPrefix(d.Path, "nested.y") {
			t.Fatalf("nested.y should take the longer prefix's tolerance: %v", ds)
		}
	}

	// Missing numeric keys are drift regardless of tolerance.
	ds, err = DiffJSON([]byte(`{"a": 1}`), []byte(`{"b": 1}`), Tolerances{Default: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].Missing == "" || ds[1].Missing == "" {
		t.Fatalf("missing-key drifts = %v", ds)
	}
}

func TestSparkline(t *testing.T) {
	// One glyph per sample when the series fits.
	s := Sparkline([]float64{0, 1, 2, 3}, 10)
	if utf8.RuneCountInString(s) != 4 {
		t.Fatalf("short series width = %d, want 4", utf8.RuneCountInString(s))
	}
	if []rune(s)[0] != sparkBlocks[0] || []rune(s)[3] != sparkBlocks[len(sparkBlocks)-1] {
		t.Fatalf("ramp not normalized min..max: %q", s)
	}
	// Downsampled to the requested width.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := utf8.RuneCountInString(Sparkline(long, 60)); got != 60 {
		t.Fatalf("downsampled width = %d, want 60", got)
	}
	// Flat and empty series render as a low bar, not a crash.
	for _, samples := range [][]float64{nil, {5, 5, 5}} {
		s := Sparkline(samples, 8)
		for _, r := range s {
			if r != sparkBlocks[0] {
				t.Fatalf("flat series rendered %q", s)
			}
		}
	}
}

func TestNewRejectsBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, ...) did not panic")
		}
	}()
	New(0, 10)
}
