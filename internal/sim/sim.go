// Package sim assembles the full machine — GPU, fabric, memory stacks, and
// NSUs — and runs kernels to completion across the four clock domains of
// Table 2 (SM 700 MHz, crossbar 1250 MHz, DRAM tCK = 1.5 ns, NSU 350 MHz).
package sim

import (
	"errors"
	"fmt"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/audit"
	"ndpgpu/internal/backend"
	"ndpgpu/internal/cache"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/gpu"
	"ndpgpu/internal/hmc"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/metrics"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/nsu"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
)

// Mode selects the offload-decision mechanism for a run.
type Mode struct {
	Name    string
	NDP     bool    // false: run the original kernel with no NDP machinery
	Static  float64 // static offload ratio, used when Dynamic is false
	Always  bool    // naive: offload every block instance (§6)
	Dynamic bool    // Algorithm 1 controller (§7.2)
	Cache   bool    // cache-locality-aware filter on top (§7.3)
}

// Predefined modes matching the paper's configurations.
var (
	Baseline = Mode{Name: "Baseline"}
	NaiveNDP = Mode{Name: "NaiveNDP", NDP: true, Always: true}
	DynNDP   = Mode{Name: "NDP(Dyn)", NDP: true, Dynamic: true}
	DynCache = Mode{Name: "NDP(Dyn)_Cache", NDP: true, Dynamic: true, Cache: true}
)

// StaticNDP returns the NDP(p) static-ratio mode of §7.1.
func StaticNDP(p float64) Mode {
	return Mode{Name: fmt.Sprintf("NDP(%.1f)", p), NDP: true, Static: p}
}

// Machine is one assembled system instance.
type Machine struct {
	Cfg  config.Config
	Prog *analyzer.Program
	Mem  *vm.System
	St   *stats.Stats
	Dec  core.Decider

	fab  *noc.Fabric
	g    *gpu.GPU
	hmcs []*hmc.HMC
	nsus []*nsu.NSU

	engine    *timing.Engine
	smDomain  *timing.Domain
	nsuDomain *timing.Domain

	// Parallel execution (effective Parallel > 1): the resolved worker
	// count, the worker pool, and the per-stack shard statistics bundles,
	// folded into St at finalization.
	par      int
	pool     *timing.Pool
	shardSts []*stats.Stats

	aud *audit.Auditor     // nil unless EnableAudit was called
	flt *fault.Injector    // nil unless the config carries a fault schedule
	mc  *metrics.Collector // nil unless EnableMetrics was called

	swaps     []*pageSwap
	SwapsDone int
}

// pageSwap is one pending §4.1.1 page migration: the placement changes only
// once the destination stacks have no in-flight WTA packets and the GPU has
// no outstanding fills for the page, exactly the paper's stall rule.
type pageSwap struct {
	pageBase uint64
	oldHome  int
	newHome  int
}

// Result summarizes one run.
type Result struct {
	Stats    *stats.Stats
	Cycles   int64 // SM cycles to completion
	TimePS   timing.PS
	Mode     string
	TimedOut bool
}

// BuildProgram prepares the kernel for the mode: NDP modes run the
// analyzer-rewritten binary; the baseline runs the original code.
func BuildProgram(k *kernel.Kernel, mode Mode) (*analyzer.Program, error) {
	if !mode.NDP {
		if err := k.Validate(); err != nil {
			return nil, err
		}
		return &analyzer.Program{Kernel: k}, nil
	}
	return analyzer.Analyze(k, analyzer.DefaultOptions())
}

// NewDecider builds the mode's offload decider.
func NewDecider(cfg config.Config, prog *analyzer.Program, mode Mode) core.Decider {
	var dec core.Decider
	switch {
	case !mode.NDP:
		dec = core.Never{}
	case mode.Always:
		dec = core.Always{}
	case mode.Dynamic:
		dec = core.NewDynamic(cfg.NDP, cfg.NDP.DecisionSeed)
	default:
		dec = core.NewStaticRatio(mode.Static, cfg.NDP.DecisionSeed)
	}
	if mode.Cache {
		dec = core.NewCacheAware(dec, gpu.BlockInfos(prog), cfg.LineBytes())
	}
	return dec
}

// New assembles a machine for the given program over an already-initialized
// memory image.
func New(cfg config.Config, prog *analyzer.Program, mem *vm.System, dec core.Decider) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := stats.New()
	fab := noc.NewFabric(cfg, st)
	m := &Machine{Cfg: cfg, Prog: prog, Mem: mem, St: st, Dec: dec, fab: fab}
	m.g = gpu.New(cfg, prog, mem, fab, st, dec)
	for i := 0; i < cfg.NumHMCs; i++ {
		h := hmc.New(i, cfg, mem, fab, st)
		n := nsu.New(i, cfg, prog, mem, fab, st, m.g.BufferManager())
		h.SetNSU(n)
		n.SetLocalWriter(h)
		m.hmcs = append(m.hmcs, h)
		m.nsus = append(m.nsus, n)
	}

	if cfg.Fault.Enabled() {
		inj := fault.New(cfg.Fault, cfg.NumHMCs, cfg.HMC.NumVaults, fab.Dims(), fab.Ring())
		m.flt = inj
		fab.SetFault(inj)
		timeout, retries := cfg.Fault.EffTimeoutCycles(), cfg.Fault.EffMaxRetries()
		m.g.SetFault(inj, timeout, retries)
		// An NSU-side warp only aborts well after the GPU's whole retry
		// window has elapsed, so an abort implies the GPU has already
		// fallen back and quarantined the stack.
		smPeriod := timing.PeriodFromMHz(cfg.GPU.SMClockMHz)
		abortPS := 2 * timing.PS(fault.TotalWindow(timeout, retries)) * smPeriod
		for i := range m.hmcs {
			m.hmcs[i].SetFault(inj)
			m.nsus[i].SetFault(inj, abortPS)
		}
	}

	m.engine = timing.NewEngine()
	m.smDomain = m.engine.AddDomain("sm", timing.PeriodFromMHz(cfg.GPU.SMClockMHz))
	xbar := m.engine.AddDomain("xbar", timing.PeriodFromMHz(cfg.GPU.XbarClockMHz))
	dramDom := m.engine.AddDomain("dram", timing.PS(cfg.HMC.TCKps))
	m.nsuDomain = m.engine.AddDomain("nsu", timing.PeriodFromMHz(cfg.NSU.ClockMHz))
	m.par = cfg.EffParallel(cfg.GPU.NumSMs + cfg.NumHMCs)
	// Wake scheduling: in serial fault-free runs every simulated component is
	// parked on its domain's wake wheel until its NextWorkAt, and every
	// channel that can hand a parked component work (inbox delivery, direct
	// NSU write submission, ack/fill events dirtying an SM mirror, direct L2
	// pushes) re-arms the target's slot. Parallel runs keep plain attachment:
	// shard phases call these channels concurrently, and the sharded executor
	// already proves quiescence through the same hints. Fault runs stay
	// polled too — a stalled NSU or frozen vault records nothing on a dense
	// tick, which per-slot elision credit would misrepresent.
	if m.par <= 1 && m.flt == nil {
		gpuSlot := m.smDomain.AttachScheduled(m.g)
		m.g.SetWakeHook(func() { m.smDomain.Wake(gpuSlot, 0) })
		xbarSlot := xbar.AttachScheduled(m.g.XbarTicker())
		m.g.SetXbarWakeHook(func() { xbar.Wake(xbarSlot, 0) })
		fab.GPUInbox().SetWakeHook(func(at timing.PS) { xbar.Wake(xbarSlot, at) })
		for i, h := range m.hmcs {
			slot := dramDom.AttachScheduled(h)
			fab.HMCInbox(i).SetWakeHook(func(at timing.PS) { dramDom.Wake(slot, at) })
			h.SetWakeHook(func(at timing.PS) { dramDom.Wake(slot, at) })
			nslot := m.nsuDomain.AttachScheduled(m.nsus[i])
			m.nsus[i].SetWakeHook(func(at timing.PS) { m.nsuDomain.Wake(nslot, at) })
		}
	} else {
		m.smDomain.Attach(m.g)
		xbar.Attach(m.g.XbarTicker())
		if m.par > 1 {
			m.assembleParallel(dramDom)
		} else {
			for _, h := range m.hmcs {
				dramDom.Attach(h)
			}
			for _, n := range m.nsus {
				m.nsuDomain.Attach(n)
			}
		}
	}
	m.smDomain.Attach(swapTicker{m})
	if m.flt != nil {
		// Pins SM edges at schedule boundaries so fault windows take effect
		// at exact cycles even under idle skipping.
		m.smDomain.Attach(fault.Ticker{Inj: m.flt})
		if m.par > 1 {
			// Apply the schedule before any domain ticks, so the in-phase
			// fault queries from concurrent shards are read-only.
			m.engine.AddPreStep(func(now timing.PS) { m.flt.Apply(now) })
		}
	}
	return m, nil
}

// stackShard adapts one stack-side component (an HMC or its NSU) plus the
// stack's outbox to timing.Shard: Tick computes against shard-own state,
// Commit replays the deferred cross-shard effects. The HMC and NSU of a
// stack share one outbox — their domains never tick in the same phase, and
// a unified log preserves the exact serial interleaving of their sends.
type stackShard struct {
	inner timing.Ticker
	hint  timing.IdleHint
	skip  timing.IdleSkipper
	out   *noc.Outbox
}

func newStackShard(t timing.Ticker, out *noc.Outbox) *stackShard {
	s := &stackShard{inner: t, out: out}
	s.hint, _ = t.(timing.IdleHint)
	s.skip, _ = t.(timing.IdleSkipper)
	return s
}

func (s *stackShard) Tick(now timing.PS)   { s.inner.Tick(now) }
func (s *stackShard) Commit(now timing.PS) { s.out.Flush() }

// PendingCommit implements timing.CommitPending: the quiescent-phase proof
// must treat a stack with deferred sends in its outbox as active.
func (s *stackShard) PendingCommit() int { return s.out.Pending() }

func (s *stackShard) NextWorkAt(now timing.PS) timing.PS {
	if s.hint == nil {
		return now
	}
	return s.hint.NextWorkAt(now)
}

func (s *stackShard) SkipIdle(n int64) {
	if s.skip != nil {
		s.skip.SkipIdle(n)
	}
}

// assembleParallel rewires the machine for deterministic sharded execution:
// each memory stack (HMC + NSU) becomes a shard with a private statistics
// bundle and a deferred-effect outbox, the dram and nsu domains tick their
// shards on a shared worker pool, and the GPU's SM array switches to its own
// compute/commit split (unless the NSU read-only-cache mirror pins it
// serial). Shard fusion and quiescent-phase batching are resolved from the
// configuration per domain. Everything folds back at barriers or
// finalization, so results stay bit-identical to the serial engine.
func (m *Machine) assembleParallel(dramDom *timing.Domain) {
	m.pool = timing.NewPool(m.par)
	quiesce := !m.Cfg.NoQuiescentBatch
	m.g.SetParallel(m.pool, m.Cfg.EffFusion(m.par, m.Cfg.GPU.NumSMs), quiesce)
	hshards := make([]timing.Shard, 0, len(m.hmcs))
	nshards := make([]timing.Shard, 0, len(m.nsus))
	for i := range m.hmcs {
		sst := stats.New()
		m.shardSts = append(m.shardSts, sst)
		out := noc.NewOutbox(m.fab, m.g.BufferManager())
		m.hmcs[i].SetSender(out)
		m.hmcs[i].SetStats(sst)
		m.nsus[i].SetSender(out)
		m.nsus[i].SetCredits(out)
		m.nsus[i].SetStats(sst)
		m.fab.DeferEjects(i, out)
		hshards = append(hshards, newStackShard(m.hmcs[i], out))
		nshards = append(nshards, newStackShard(m.nsus[i], out))
	}
	stackFusion := m.Cfg.EffFusion(m.par, len(m.hmcs))
	hsh := timing.NewSharded(m.pool, hshards...)
	hsh.SetFusion(stackFusion)
	hsh.SetQuiescent(quiesce)
	dramDom.Attach(hsh)
	nsh := timing.NewSharded(m.pool, nshards...)
	nsh.SetFusion(stackFusion)
	nsh.SetQuiescent(quiesce)
	m.nsuDomain.Attach(nsh)
}

// swapTicker drives serviceSwaps on the SM clock with an idle hint: with no
// pending swaps the ticker is fully drained, otherwise the swap-completion
// conditions must be re-checked every cycle.
type swapTicker struct{ m *Machine }

// Tick implements timing.Ticker.
func (t swapTicker) Tick(now timing.PS) { t.m.serviceSwaps(now) }

// NextWorkAt implements timing.IdleHint.
func (t swapTicker) NextWorkAt(now timing.PS) timing.PS {
	if len(t.m.swaps) == 0 {
		return timing.Never
	}
	return now
}

// SetIdleSkip toggles the engine's idle skipping for this machine (on by
// default). With it off the engine fires every clock edge densely — the
// reference behaviour the differential tests compare against.
func (m *Machine) SetIdleSkip(on bool) { m.engine.SetIdleSkip(on) }

// SetWakeCheck toggles the engine's parked-ticker verification mode: every
// elided scheduled ticker is re-polled live at each fired edge, and a parked
// component that reports due work panics immediately — catching a missed
// external re-arm at the edge where it would first diverge. Used by the
// equivalence suites; too expensive for normal runs.
func (m *Machine) SetWakeCheck(on bool) { m.engine.SetWakeCheck(on) }

// EnableAudit attaches the invariant auditor to every layer of the machine:
// the fabric (packet conservation, offload-protocol legality), every DRAM
// vault (bank-state legality), and machine-level checks for credit
// conservation, cache statistic consistency, and energy-counter
// monotonicity. The per-cycle checks run on fired SM edges (idle skipping is
// preserved: a skipped edge cannot change state) and once more at drain.
// Call before Run; idempotent. The returned auditor holds the violations.
func (m *Machine) EnableAudit() *audit.Auditor {
	if m.aud != nil {
		return m.aud
	}
	a := audit.New()
	m.aud = a
	na := audit.NewNetwork(a, m.fab.Diameter())
	if m.flt != nil {
		// Under fault injection packets may legally drop, retransmit, or
		// detour around dead links; the lossy audit accounts for those.
		na.SetLossy(m.fab.DetourBound())
	}
	m.fab.SetAudit(na)
	for _, h := range m.hmcs {
		h.EnableAudit(a)
	}
	m.registerCreditCheck(a)
	m.registerCacheCheck(a)
	m.registerStatsCheck(a)
	m.smDomain.Attach(a.Ticker())
	return a
}

// Auditor returns the attached auditor, or nil when auditing is disabled.
func (m *Machine) Auditor() *audit.Auditor { return m.aud }

// registerCreditCheck audits §4.3 credit conservation at every NSU link:
// credits stay within [0, capacity], NSU-side buffer occupancy never exceeds
// either the configured capacity or the credits the GPU holds outstanding,
// and at drain every credit is back home with no entry left in any buffer.
func (m *Machine) registerCreditCheck(a *audit.Auditor) {
	bm := m.g.BufferManager()
	caps := [3]int{m.Cfg.NSU.CmdEntries, m.Cfg.NSU.ReadDataEntries, m.Cfg.NSU.WriteAddrEntries}
	kinds := [3]core.BufferKind{core.CmdBuffer, core.ReadDataBuffer, core.WriteAddrBuffer}
	a.Register("credit-conservation", func(now timing.PS, final bool) {
		for t := 0; t < bm.NumTargets(); t++ {
			if bm.Quarantined(t) {
				continue // written off: its credits are unaccountable
			}
			var occ [3]int
			occ[0], occ[1], occ[2] = m.nsus[t].BufferOccupancy()
			for i, k := range kinds {
				avail := bm.Available(t, k)
				if avail < 0 || avail > bm.Initial(k) {
					a.Reportf(now, fmt.Sprintf("nsu%d", t), "credit-conservation",
						"%v credits %d outside [0,%d]", k, avail, bm.Initial(k))
				}
				if occ[i] > caps[i] {
					a.Reportf(now, fmt.Sprintf("nsu%d", t), "credit-conservation",
						"%v buffer holds %d entries, capacity %d", k, occ[i], caps[i])
				}
				if outstanding := bm.Initial(k) - avail; occ[i] > outstanding {
					a.Reportf(now, fmt.Sprintf("nsu%d", t), "credit-conservation",
						"%v buffer holds %d entries but only %d credits are outstanding",
						k, occ[i], outstanding)
				}
				if final && occ[i] > 0 {
					a.Reportf(now, fmt.Sprintf("nsu%d", t), "credit-conservation",
						"%v buffer holds %d entries at drain", k, occ[i])
				}
			}
		}
		if final && !bm.AllReturned() {
			a.Reportf(now, "gpu", "credit-conservation", "credits not fully returned at drain")
		}
	})
}

// registerCacheCheck audits cache statistic consistency on every cache in
// the GPU: hits never exceed accesses (so hits + misses == accesses holds
// with non-negative misses), evictions never exceed fills, MSHR occupancy
// stays within capacity, and no MSHR entry survives the drain.
func (m *Machine) registerCacheCheck(a *audit.Auditor) {
	type entry struct {
		name string
		c    *cache.Cache
	}
	var caches []entry
	m.g.ForEachCache(func(name string, c *cache.Cache) {
		caches = append(caches, entry{name, c})
	})
	a.Register("cache-consistency", func(now timing.PS, final bool) {
		for _, e := range caches {
			st := e.c.Stats
			if st.Hits < 0 || st.Hits > st.Accesses {
				a.Reportf(now, e.name, "cache-consistency",
					"hits %d outside [0, accesses %d]", st.Hits, st.Accesses)
			}
			if st.Evictions > st.Fills {
				a.Reportf(now, e.name, "cache-consistency",
					"evictions %d exceed fills %d", st.Evictions, st.Fills)
			}
			if inflight := e.c.MSHRInFlight(); inflight > e.c.MSHRCapacity() {
				a.Reportf(now, e.name, "cache-consistency",
					"%d MSHR entries in flight, capacity %d", inflight, e.c.MSHRCapacity())
			}
			if final && e.c.MSHRInFlight() != 0 {
				a.Reportf(now, e.name, "cache-consistency",
					"%d MSHR entries leaked at drain", e.c.MSHRInFlight())
			}
		}
	})
}

// energyCounters snapshots the statistics counters the energy model
// integrates over; each must be monotonically non-decreasing over the run.
var energyCounterNames = [...]string{
	"IssuedInstrs", "IssuedThreadOps", "NSUInstrs", "NSUWarpsSpawned",
	"Traffic[GPULink]", "Traffic[MemNet]", "Traffic[IntraHMC]", "InvalBytes",
	"OffloadCmdPackets", "RDFPackets", "WTAPackets", "RDFRespPackets",
	"AckPackets", "InvalPackets",
}

func (m *Machine) energyCounters() [len(energyCounterNames)]int64 {
	st := m.St
	return [...]int64{
		st.IssuedInstrs, st.IssuedThreadOps, st.NSUInstrs, st.NSUWarpsSpawned,
		st.Traffic[stats.GPULink], st.Traffic[stats.MemNet], st.Traffic[stats.IntraHMC],
		st.InvalBytes,
		st.OffloadCmdPackets, st.RDFPackets, st.WTAPackets, st.RDFRespPackets,
		st.AckPackets, st.InvalPackets,
	}
}

// registerStatsCheck audits energy-counter monotonicity: the counters the
// energy model integrates over only ever grow.
func (m *Machine) registerStatsCheck(a *audit.Auditor) {
	prev := m.energyCounters()
	a.Register("energy-counter-monotonic", func(now timing.PS, final bool) {
		cur := m.energyCounters()
		for i, v := range cur {
			if v < prev[i] {
				a.Reportf(now, "stats", "energy-counter-monotonic",
					"%s decreased %d -> %d", energyCounterNames[i], prev[i], v)
			}
		}
		prev = cur
	})
}

// RequestPageSwap schedules a migration of the page holding addr to stack
// newHome (§4.1.1 dynamic memory management). The swap completes at the
// first cycle where the involved stacks have no in-flight WTA packets and
// no line fills for the page are outstanding; other pages proceed
// unaffected throughout. The functional contents are unchanged — only the
// physical placement moves, as with a swap whose transfer latency overlaps
// the external-interface fetch.
func (m *Machine) RequestPageSwap(addr uint64, newHome int) {
	page := addr &^ (uint64(m.Cfg.Mem.PageBytes) - 1)
	m.swaps = append(m.swaps, &pageSwap{
		pageBase: page,
		oldHome:  m.Mem.HMCOf(page),
		newHome:  newHome,
	})
}

// PendingSwaps returns the number of swaps not yet performed.
func (m *Machine) PendingSwaps() int { return len(m.swaps) }

func (m *Machine) serviceSwaps(now timing.PS) {
	if len(m.swaps) == 0 {
		return
	}
	kept := m.swaps[:0]
	for _, sw := range m.swaps {
		if m.g.WTAInflight(sw.oldHome) > 0 || m.g.WTAInflight(sw.newHome) > 0 ||
			m.g.PageFillsOutstanding(sw.pageBase, m.Cfg.Mem.PageBytes) {
			kept = append(kept, sw)
			continue
		}
		m.Mem.PlacePage(sw.pageBase, sw.newHome)
		m.SwapsDone++
	}
	m.swaps = kept
}

// Launch builds the program, decider, and machine for a kernel in one step.
// The architecture backend named by cfg.Arch.Backend is resolved first: its
// config rewrite and page-placement policy run before assembly, so the
// machine is built for the selected design point. The default backend
// ("paper") is a strict no-op on both.
func Launch(cfg config.Config, k *kernel.Kernel, mem *vm.System, mode Mode) (*Machine, error) {
	b, err := backend.For(cfg.Arch.Backend)
	if err != nil {
		return nil, err
	}
	cfg = b.Apply(cfg)
	if err := b.PreparePlacement(cfg, k, mem); err != nil {
		return nil, err
	}
	prog, err := BuildProgram(k, mode)
	if err != nil {
		return nil, err
	}
	dec := NewDecider(cfg, prog, mode)
	return New(cfg, prog, mem, dec)
}

// done reports full-system quiescence.
func (m *Machine) done() bool {
	if m.flt != nil {
		// Keep the injector's applied state current so Busy/Failed checks
		// below see the schedule as of now.
		m.flt.Apply(m.engine.Now())
	}
	if !m.g.Done() || !m.fab.Quiesced() {
		return false
	}
	for _, h := range m.hmcs {
		if h.Busy() {
			return false
		}
	}
	for _, n := range m.nsus {
		if n.Busy() {
			return false
		}
	}
	return true
}

// DefaultLimitPS bounds a run to one simulated second — far beyond any
// scaled workload; hitting it means livelock.
const DefaultLimitPS = timing.PS(1e12)

// ErrCanceled reports a run stopped by Machine.Cancel before quiescence.
var ErrCanceled = errors.New("sim: run canceled")

// Cancel requests a cooperative stop of a running machine: the tick engine
// exits at its next step boundary (a phase barrier in parallel mode) and Run
// returns an error wrapping ErrCanceled. Cancel is the one Machine method
// safe to call from another goroutine — it is how a service watchdog unwedges
// a hung or runaway simulation without corrupting its state.
func (m *Machine) Cancel() { m.engine.Cancel() }

// Run executes the kernel to completion (or the time limit) and returns the
// collected results. Run may only be called once per Machine.
func (m *Machine) Run(limitPS timing.PS) (*Result, error) {
	if limitPS <= 0 {
		limitPS = DefaultLimitPS
	}
	_, ok := m.engine.RunUntil(m.done, limitPS)
	m.pool.Close() // nil-safe; stops the parallel workers, if any
	m.finalize()
	if m.aud != nil && !(m.engine.Canceled() && !ok) {
		m.aud.RunChecks(m.engine.Now(), true)
	}
	res := &Result{Stats: m.St, Cycles: m.St.SMCycles, TimePS: m.St.ElapsedPS, TimedOut: !ok}
	if !ok {
		if m.engine.Canceled() {
			return res, fmt.Errorf("%w at %d ps", ErrCanceled, m.engine.Now())
		}
		return res, fmt.Errorf("sim: run exceeded %d ps without quiescing", limitPS)
	}
	if !m.g.BufferManager().AllReturned() {
		return res, fmt.Errorf("sim: NDP buffer credits not fully returned at quiescence")
	}
	return res, nil
}

func (m *Machine) finalize() {
	// The metrics collector takes its final sample before anything below
	// mutates the main bundle: its probes sum the main bundle plus every
	// shard bundle, so folding shards first would double-count the deltas.
	if m.mc != nil {
		m.g.DrainSpans()
		m.mc.Final(m.engine.Now())
	}
	m.St.SMCycles = m.smDomain.Cycles
	m.St.NSUCycles = m.nsuDomain.Cycles
	m.St.ElapsedPS = m.engine.Now()
	m.g.CollectCacheStats()
	for _, h := range m.hmcs {
		vs := h.VaultStats()
		m.St.DRAMReads += vs.Reads
		m.St.DRAMWrites += vs.Writes
		m.St.DRAMActivations += vs.Activations
		m.St.DRAMRowHits += vs.RowHits
	}
	for _, n := range m.nsus {
		m.St.SetNSUICode(n.ID, n.ICodeBytes())
	}
	// Parallel mode: fold every shard-private bundle into the run's bundle.
	// The shard counters are disjoint deltas (each event counted on exactly
	// one shard), so the fold order cannot matter; FoldInto max-merges the
	// high-water marks and the NSU I-code footprints.
	for _, s := range m.shardSts {
		stats.FoldInto(m.St, s)
	}
	for _, s := range m.g.ShardStats() {
		stats.FoldInto(m.St, s)
	}
}

// GPU exposes the GPU for white-box tests (WTA in-flight counters, etc.).
func (m *Machine) GPU() *gpu.GPU { return m.g }

// Fabric exposes the interconnect, e.g. to install a packet tracer.
func (m *Machine) Fabric() *noc.Fabric { return m.fab }

// NSUs exposes the NSUs for occupancy inspection.
func (m *Machine) NSUs() []*nsu.NSU { return m.nsus }
