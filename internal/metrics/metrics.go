// Package metrics is the epoch-sampled observability layer: a Collector of
// named probes sampled on the SM clock at a fixed cycle interval (defaulting
// to the Algorithm-1 epoch), producing per-component time series — offload
// ratio and controller decisions per SM, link utilization and queue depth per
// link, NSU buffer occupancy and credit stalls per stack, DRAM row-hit rate
// and vault busy fraction, cache hit rates, and fault counters — plus
// duration spans for offload round trips.
//
// The layer follows the same contract as internal/audit and internal/fault:
// disabled means absent (a nil collector, no probes registered, no ticker
// attached), so the simulated machine's behaviour and statistics are
// bit-identical with and without it. Enabled, the sampler only reads machine
// state at SM-domain edges the engine would fire anyway (the epoch controller
// pins every boundary edge), and under the sharded parallel executor probes
// sum the main bundle plus every shard-private bundle, so a run's series are
// bit-identical between serial and parallel execution.
package metrics

import (
	"fmt"

	"ndpgpu/internal/timing"
)

// Kind classifies how a probe's samples are derived.
type Kind uint8

const (
	// KindCounter samples a monotonically growing total and stores the
	// per-interval delta.
	KindCounter Kind = iota
	// KindGauge stores the probe's instantaneous value.
	KindGauge
	// KindRate stores scale * Δnum/Δden over the interval (0 when Δden = 0).
	KindRate
	// KindTimeRate stores scale * Δnum/Δt_ps over the interval.
	KindTimeRate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindRate:
		return "rate"
	case KindTimeRate:
		return "time-rate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// probe is one registered metric source.
type probe struct {
	name  string
	track string // component group; one Chrome counter track per name
	unit  string
	kind  Kind
	fn    func() float64 // counter/gauge/time-rate numerator
	den   func() float64 // rate denominator
	scale float64
	prevN float64
	prevD float64
}

// Span is one completed offload round trip (OFLDBEG to ack application).
type Span struct {
	Name    string `json:"name"`
	TID     int    `json:"tid"` // issuing SM
	StartPS int64  `json:"start_ps"`
	DurPS   int64  `json:"dur_ps"`
}

// maxSpans bounds the retained round-trip spans; a long run keeps the first
// maxSpans and counts the rest, so memory stays bounded and the kept set is
// deterministic (spans arrive in a deterministic order).
const maxSpans = 1 << 16

// Collector samples registered probes every interval SM cycles. All methods
// are called from the engine goroutine's serial sections; the collector
// needs no locking.
type Collector struct {
	interval int64     // sampling interval in SM cycles
	period   timing.PS // SM clock period
	cycles   int64     // SM cycles elapsed (ticked + idle-skipped)

	probes  []*probe
	samples [][]float64 // parallel to probes
	times   []timing.PS // sample timestamps

	spans        []Span
	spansDropped int64

	hook func(now timing.PS, cycles int64) // fired after every Sample

	meta map[string]string
}

// New returns a collector sampling every intervalCycles SM cycles of
// periodPS picoseconds each.
func New(intervalCycles int64, periodPS timing.PS) *Collector {
	if intervalCycles <= 0 {
		panic(fmt.Sprintf("metrics: non-positive sampling interval %d", intervalCycles))
	}
	return &Collector{interval: intervalCycles, period: periodPS, meta: map[string]string{}}
}

// Interval returns the sampling interval in SM cycles.
func (c *Collector) Interval() int64 { return c.interval }

// SetMeta attaches a key/value annotation carried into every export.
func (c *Collector) SetMeta(k, v string) { c.meta[k] = v }

// SetSampleHook registers fn to run after every boundary sample with the
// sample time and the SM cycles elapsed so far — the event source behind
// ndpserve's streaming progress. The hook runs on the engine goroutine's
// serial section, so it must not block; publish-and-drop is the expected
// discipline. A nil hook (the default) keeps Sample allocation- and
// call-free, preserving the layer's strict no-op contract.
func (c *Collector) SetSampleHook(fn func(now timing.PS, cycles int64)) { c.hook = fn }

func (c *Collector) add(p *probe) {
	c.probes = append(c.probes, p)
	c.samples = append(c.samples, nil)
}

// Counter registers a probe over a monotonically growing total; samples are
// per-interval deltas.
func (c *Collector) Counter(name, track, unit string, fn func() float64) {
	c.add(&probe{name: name, track: track, unit: unit, kind: KindCounter, fn: fn})
}

// Gauge registers an instantaneous-value probe.
func (c *Collector) Gauge(name, track, unit string, fn func() float64) {
	c.add(&probe{name: name, track: track, unit: unit, kind: KindGauge, fn: fn})
}

// Rate registers a probe sampling scale * Δnum/Δden per interval — e.g. a
// hit rate from two growing totals.
func (c *Collector) Rate(name, track, unit string, scale float64, num, den func() float64) {
	c.add(&probe{name: name, track: track, unit: unit, kind: KindRate, fn: num, den: den, scale: scale})
}

// TimeRate registers a probe sampling scale * Δnum per elapsed picosecond —
// e.g. link utilization from a byte counter and the serialization cost.
func (c *Collector) TimeRate(name, track, unit string, scale float64, num func() float64) {
	c.add(&probe{name: name, track: track, unit: unit, kind: KindTimeRate, fn: num, scale: scale})
}

// OffloadSpan records one completed offload round trip; implements the GPU's
// span sink. Naming mirrors internal/trace's packet descriptions, so the
// Perfetto view and a packet trace line up on the same sm/warp identifiers.
func (c *Collector) OffloadSpan(sm, warp, block int, start, dur timing.PS) {
	if len(c.spans) >= maxSpans {
		c.spansDropped++
		return
	}
	c.spans = append(c.spans, Span{
		Name:    fmt.Sprintf("offload sm%d/w%d blk%d", sm, warp, block),
		TID:     sm,
		StartPS: int64(start),
		DurPS:   int64(dur),
	})
}

// Sample reads every probe and appends one point per series at time now.
func (c *Collector) Sample(now timing.PS) {
	var dt float64
	if n := len(c.times); n > 0 {
		dt = float64(now - c.times[n-1])
	} else {
		dt = float64(now)
	}
	c.times = append(c.times, now)
	for i, p := range c.probes {
		var v float64
		switch p.kind {
		case KindCounter:
			cur := p.fn()
			v = cur - p.prevN
			p.prevN = cur
		case KindGauge:
			v = p.fn()
		case KindRate:
			n, d := p.fn(), p.den()
			dn, dd := n-p.prevN, d-p.prevD
			p.prevN, p.prevD = n, d
			if dd != 0 {
				v = p.scale * dn / dd
			}
		case KindTimeRate:
			cur := p.fn()
			dn := cur - p.prevN
			p.prevN = cur
			if dt > 0 {
				v = p.scale * dn / dt
			}
		}
		c.samples[i] = append(c.samples[i], v)
	}
	if c.hook != nil {
		c.hook(now, c.cycles)
	}
}

// Final takes the end-of-run sample unless the last interval boundary
// already sampled at exactly this time. Call once at finalization, before
// shard statistics fold into the main bundle (probes sum both).
func (c *Collector) Final(now timing.PS) {
	if n := len(c.times); n > 0 && c.times[n-1] == now {
		return
	}
	c.Sample(now)
}

// ticker drives the collector on the SM clock domain. NextWorkAt reports the
// next interval boundary, which — at the default interval — coincides with
// the epoch boundary the GPU already pins, so attaching the sampler changes
// no fired edges. SkipIdle credits provably idle cycles: a skipped edge
// cannot change machine state, so no boundary sample is ever skipped past
// (NextWorkAt bounds the skip).
type ticker struct{ c *Collector }

// Ticker returns the clock-domain adapter for this collector.
func (c *Collector) Ticker() timing.Ticker { return ticker{c} }

// Tick implements timing.Ticker.
func (t ticker) Tick(now timing.PS) {
	t.c.cycles++
	if t.c.cycles%t.c.interval == 0 {
		t.c.Sample(now)
	}
}

// NextWorkAt implements timing.IdleHint.
func (t ticker) NextWorkAt(now timing.PS) timing.PS {
	return timing.NextBoundary(t.c.cycles, t.c.interval, t.c.period)
}

// SkipIdle implements timing.IdleSkipper.
func (t ticker) SkipIdle(n int64) { t.c.cycles += n }
