package main

import (
	"bytes"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"ndpgpu/internal/experiments"
	"ndpgpu/internal/serve"
)

// TestUnknownExperimentExits2 pins the usage-error path: an unknown -exp name
// must not start any simulation, must list the valid names, and must exit 2.
func TestUnknownExperimentExits2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	msg := errBuf.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) {
		t.Fatalf("stderr missing the bad name: %q", msg)
	}
	for _, name := range []string{"fig5", "table1", "topology", "all"} {
		if !strings.Contains(msg, name) {
			t.Fatalf("stderr does not list valid name %s: %q", name, msg)
		}
	}
}

// TestFailingExperimentExits1 appends a deliberately failing leaf experiment
// and requires the sweep to report it in a FAILURES section and exit 1 —
// the exact path CI relies on to turn a broken experiment into a red build.
func TestFailingExperimentExits1(t *testing.T) {
	saved := leafExps
	defer func() { leafExps = saved }()
	leafExps = append(leafExps, leafExp{
		name: "alwaysfails",
		fn: func(w io.Writer, scale int) error {
			return errors.New("injected failure")
		},
	})

	var out, errBuf bytes.Buffer
	if code := run([]string{"-exp", "alwaysfails"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "FAILURES (1):") ||
		!strings.Contains(out.String(), "alwaysfails: injected failure") {
		t.Fatalf("missing FAILURES section: %s", out.String())
	}
	if !strings.Contains(errBuf.String(), "injected failure") {
		t.Fatalf("error not echoed to stderr: %s", errBuf.String())
	}
}

// TestFig5Succeeds runs the one experiment that needs no simulation (a pure
// Monte-Carlo estimate) end to end through run() and expects a clean exit.
func TestFig5Succeeds(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-exp", "fig5"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "[fig5 in ") {
		t.Fatalf("missing run summary: %s", out.String())
	}
}

// TestBadFlagExits2 checks flag-parse failures also land on exit 2.
func TestBadFlagExits2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestSweepServerFlag covers the -server client-mode wiring: an unreachable
// server is a usage error (exit 2, before any experiment runs), and a live
// ndpserve instance carries a sweep experiment end to end. The round-trip
// equality of served vs local runs is pinned separately by
// experiments.TestUseServerRoundTrip.
func TestSweepServerFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-server", "http://127.0.0.1:1", "-exp", "fig5"}, &out, &errBuf); code != 2 {
		t.Fatalf("unreachable server: exit = %d, want 2\nstderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "unreachable") {
		t.Fatalf("stderr does not explain the unreachable server: %q", errBuf.String())
	}

	sched := serve.New(serve.Options{Workers: 2, QueueCap: 64, Runner: experiments.ServeRunner()})
	ts := httptest.NewServer(serve.NewServer(sched))
	defer func() {
		ts.Close()
		sched.Shutdown()
	}()
	// fig5 needs no simulation, so this exercises flag wiring, the health
	// probe, and seam install/teardown without a costly sweep.
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-server", ts.URL, "-exp", "fig5"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errBuf.String())
	}
	if experiments.Exec != nil {
		t.Fatal("run() leaked the server executor after returning")
	}
}
