package core

import (
	"fmt"

	"ndpgpu/internal/config"
)

// BufferKind names one of the NSU-side NDP buffers (§4.3).
type BufferKind int

// NSU buffer kinds.
const (
	CmdBuffer BufferKind = iota
	ReadDataBuffer
	WriteAddrBuffer
	numBufferKinds
)

// String implements fmt.Stringer.
func (k BufferKind) String() string {
	switch k {
	case CmdBuffer:
		return "cmd"
	case ReadDataBuffer:
		return "read-data"
	case WriteAddrBuffer:
		return "write-addr"
	default:
		return fmt.Sprintf("buffer(%d)", int(k))
	}
}

// BufferManager is the GPU-side credit-based manager for the NDP buffers in
// every NSU (§4.3). An SM reserves one command-buffer entry, NumLD read-data
// entries, and NumST write-address entries before its packets may enter the
// ready buffer; the NSU returns credits as entries drain. This guarantees a
// packet is never sent toward a full NSU buffer, which is the paper's
// deadlock-freedom argument.
type BufferManager struct {
	credits [][numBufferKinds]int
	initial [numBufferKinds]int

	// quarantined marks NSUs the GPU has written off after a fault:
	// reservations fail, credit returns become no-ops (the credits of a
	// dead stack are unaccountable), and AllReturned ignores the target.
	// nil on the fault-free path.
	quarantined []bool

	Rejects int64 // reservation attempts denied for lack of credits

	// rejects splits Rejects by target NSU — the per-stack credit-stall
	// series of the metrics layer. Reservations are sequenced in SM index
	// order under the parallel executor, so the split is deterministic.
	rejects []int64
}

// NewBufferManager builds the manager for the configured NSU buffer sizes.
func NewBufferManager(cfg config.Config) *BufferManager {
	m := &BufferManager{
		credits: make([][numBufferKinds]int, cfg.NumHMCs),
		rejects: make([]int64, cfg.NumHMCs),
	}
	m.initial[CmdBuffer] = cfg.NSU.CmdEntries
	m.initial[ReadDataBuffer] = cfg.NSU.ReadDataEntries
	m.initial[WriteAddrBuffer] = cfg.NSU.WriteAddrEntries
	for i := range m.credits {
		m.credits[i] = m.initial
	}
	return m
}

// Reserve attempts to take 1 command, numLD read-data, and numST
// write-address credits for the target NSU. Reservation is all-or-nothing.
func (m *BufferManager) Reserve(target, numLD, numST int) bool {
	if m.quarantined != nil && m.quarantined[target] {
		m.Rejects++
		m.rejects[target]++
		return false
	}
	c := &m.credits[target]
	if c[CmdBuffer] < 1 || c[ReadDataBuffer] < numLD || c[WriteAddrBuffer] < numST {
		m.Rejects++
		m.rejects[target]++
		return false
	}
	c[CmdBuffer]--
	c[ReadDataBuffer] -= numLD
	c[WriteAddrBuffer] -= numST
	return true
}

// Return gives back n credits of the given kind for the target NSU. Credits
// are piggybacked on response packets in the paper, so returning them has no
// modeled traffic cost.
func (m *BufferManager) Return(target int, kind BufferKind, n int) {
	if m.quarantined != nil && m.quarantined[target] {
		return
	}
	c := &m.credits[target]
	c[kind] += n
	if c[kind] > m.initial[kind] {
		panic(fmt.Sprintf("core: %v credits for NSU %d exceed initial %d",
			kind, target, m.initial[kind]))
	}
}

// Available returns the current credit count.
func (m *BufferManager) Available(target int, kind BufferKind) int {
	return m.credits[target][kind]
}

// Initial returns the configured capacity of one buffer kind; outstanding
// credits are Initial minus Available.
func (m *BufferManager) Initial(kind BufferKind) int { return m.initial[kind] }

// NumTargets returns the number of NSUs the manager tracks.
func (m *BufferManager) NumTargets() int { return len(m.credits) }

// TargetRejects returns the reservation attempts denied for target's buffers.
func (m *BufferManager) TargetRejects(target int) int64 { return m.rejects[target] }

// AllReturned reports whether every NSU's credits are back at their initial
// values — the quiescence invariant checked after each run. Quarantined
// targets are exempt: their outstanding credits died with the stack.
func (m *BufferManager) AllReturned() bool {
	for i := range m.credits {
		if m.quarantined != nil && m.quarantined[i] {
			continue
		}
		if m.credits[i] != m.initial {
			return false
		}
	}
	return true
}

// Quarantine permanently writes off the target NSU (fault path only).
func (m *BufferManager) Quarantine(target int) {
	if m.quarantined == nil {
		m.quarantined = make([]bool, len(m.credits))
	}
	m.quarantined[target] = true
}

// Quarantined reports whether the target NSU has been written off.
func (m *BufferManager) Quarantined(target int) bool {
	return m.quarantined != nil && m.quarantined[target]
}
