; saxpy: y[i] = a*x[i] + y[i] with a from constant memory
.kernel saxpy
.grid   256
.block  256
.params 3

    shli r16, r0, 2
    add  r17, r5, r16      ; &x[i]
    add  r18, r6, r16      ; &y[i]
    ldc  r19, [r4+0]       ; a (constant)
    ld   r20, [r17+0]
    ld   r21, [r18+0]
    fma  r22, r19, r20, r21
    st   [r18+0], r22
    exit
