// Package prof wires the standard Go CPU and heap profilers into the
// command-line tools, so simulator hot spots can be inspected with
// `go tool pprof` without rebuilding anything.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling if cpuFile is non-empty and returns a stop
// function that ends the CPU profile and, if memFile is non-empty, writes a
// GC-settled heap profile. The stop function must run before process exit;
// it is safe to call when both paths are empty.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile == "" {
			return
		}
		f, err := os.Create(memFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}, nil
}
