package sim

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

// smallConfig shrinks the machine for fast tests while keeping all four
// clock domains and the full protocol.
func smallConfig() config.Config {
	c := config.Default()
	c.GPU.NumSMs = 4
	return c
}

// buildVadd builds C[i] = A[i] + B[i] over n float32 elements and returns
// the kernel plus a verifier.
func buildVadd(t *testing.T, mem *vm.System, n, blockDim int) (*kernel.Kernel, func() error) {
	t.Helper()
	a := mem.Alloc(4 * n)
	b := mem.Alloc(4 * n)
	c := mem.Alloc(4 * n)
	for i := 0; i < n; i++ {
		mem.WriteF32(a+uint64(4*i), float32(i))
		mem.WriteF32(b+uint64(4*i), float32(2*i))
	}
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16)
	kb.Op3(isa.ADD, 19, kernel.RegParam0+2, 16)
	kb.Ld(20, 17, 0)
	kb.Ld(21, 18, 0)
	kb.Op3(isa.FADD, 22, 20, 21)
	kb.St(19, 0, 22)
	kb.Exit()
	k := kb.MustBuild("vadd", n/blockDim, blockDim, a, b, c)
	verify := func() error {
		for i := 0; i < n; i++ {
			want := float32(i) + float32(2*i)
			if got := mem.ReadF32(c + uint64(4*i)); got != want {
				t.Fatalf("C[%d] = %v, want %v", i, got, want)
			}
		}
		return nil
	}
	return k, verify
}

func runVadd(t *testing.T, mode Mode) *Result {
	t.Helper()
	cfg := smallConfig()
	mem := vm.New(cfg)
	k, verify := buildVadd(t, mem, 4096, 64)
	m, err := Launch(cfg, k, mem, mode)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatalf("Run(%s): %v", mode.Name, err)
	}
	if err := verify(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselineVaddCorrect(t *testing.T) {
	res := runVadd(t, Baseline)
	if res.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	if res.Stats.OffloadBlocksOffloaded != 0 {
		t.Fatal("baseline offloaded blocks")
	}
	if res.Stats.Traffic[1] != 0 { // MemNet
		t.Fatal("baseline produced memory-network traffic")
	}
}

func TestNaiveNDPVaddCorrect(t *testing.T) {
	res := runVadd(t, NaiveNDP)
	st := res.Stats
	if st.OffloadBlocksSeen == 0 {
		t.Fatal("no offload blocks seen")
	}
	if st.OffloadBlocksOffloaded != st.OffloadBlocksSeen {
		t.Fatalf("naive mode offloaded %d of %d", st.OffloadBlocksOffloaded, st.OffloadBlocksSeen)
	}
	// 4096 threads / 32 = 128 warps -> 128 block instances.
	if st.OffloadBlocksSeen != 128 {
		t.Fatalf("block instances = %d, want 128", st.OffloadBlocksSeen)
	}
	if st.AckPackets != 128 {
		t.Fatalf("acks = %d, want 128", st.AckPackets)
	}
	if st.NSUWarpsSpawned != 128 {
		t.Fatalf("NSU warps = %d, want 128", st.NSUWarpsSpawned)
	}
	// Each instance: 2 loads -> RDF, 1 store -> WTA.
	if st.RDFPackets != 256 {
		t.Fatalf("RDF packets = %d, want 256", st.RDFPackets)
	}
	if st.WTAPackets != 128 {
		t.Fatalf("WTA packets = %d, want 128", st.WTAPackets)
	}
	// Every NSU store line triggers one invalidation toward the GPU.
	if st.InvalPackets != 128 {
		t.Fatalf("invalidations = %d, want 128", st.InvalPackets)
	}
}

func TestNaiveNDPReducesGPUTraffic(t *testing.T) {
	base := runVadd(t, Baseline)
	ndp := runVadd(t, NaiveNDP)
	// The headline mechanism: NDP moves data over the memory network, not
	// the GPU links. VADD is streaming (no reuse), so GPU off-chip traffic
	// must drop substantially.
	if ndp.Stats.OffChipTraffic() >= base.Stats.OffChipTraffic() {
		t.Fatalf("NDP off-chip traffic %d >= baseline %d",
			ndp.Stats.OffChipTraffic(), base.Stats.OffChipTraffic())
	}
	if ndp.Stats.Traffic[1] == 0 {
		t.Fatal("NDP produced no memory-network traffic")
	}
}

func TestStaticRatioIntermediate(t *testing.T) {
	res := runVadd(t, StaticNDP(0.5))
	st := res.Stats
	frac := float64(st.OffloadBlocksOffloaded) / float64(st.OffloadBlocksSeen)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("offload fraction = %v, want ~0.5", frac)
	}
}

func TestDynamicModeRuns(t *testing.T) {
	res := runVadd(t, DynNDP)
	if res.Stats.OffloadBlocksSeen == 0 {
		t.Fatal("no blocks seen")
	}
}

func TestDynCacheModeRuns(t *testing.T) {
	res := runVadd(t, DynCache)
	if res.Stats.OffloadBlocksSeen == 0 {
		t.Fatal("no blocks seen")
	}
}

// TestIndirectGather checks the §4.4 divergent-gather path end to end:
// out[i] = B[A[i]] with a permutation index array.
func TestIndirectGather(t *testing.T) {
	cfg := smallConfig()
	mem := vm.New(cfg)
	const n = 2048
	idx := mem.Alloc(4 * n)
	b := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n)
	for i := 0; i < n; i++ {
		// A scattering permutation: stride through the array.
		j := (i*97 + 13) % n
		mem.Write32(idx+uint64(4*i), uint32(j))
		mem.WriteF32(b+uint64(4*i), float32(i)*0.5)
	}
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Ld(18, 17, 0) // j = A[i]
	kb.OpImm(isa.SHLI, 19, 18, 2)
	kb.Op3(isa.ADD, 20, kernel.RegParam0+1, 19)
	kb.Ld(21, 20, 0) // x = B[j]  (indirect, divergent)
	kb.Op3(isa.ADD, 22, kernel.RegParam0+2, 16)
	kb.St(22, 0, 21)
	kb.Exit()
	k := kb.MustBuild("gather", n/64, 64, idx, b, out)

	for _, mode := range []Mode{Baseline, NaiveNDP} {
		m, err := Launch(cfg, k, mem, mode)
		if err != nil {
			t.Fatalf("Launch(%s): %v", mode.Name, err)
		}
		if _, err := m.Run(0); err != nil {
			t.Fatalf("Run(%s): %v", mode.Name, err)
		}
		for i := 0; i < n; i++ {
			j := (i*97 + 13) % n
			want := float32(j) * 0.5
			if got := mem.ReadF32(out + uint64(4*i)); got != want {
				t.Fatalf("%s: out[%d] = %v, want %v", mode.Name, i, got, want)
			}
			mem.WriteF32(out+uint64(4*i), -1) // reset for next mode
		}
	}
}

func TestCreditsReturnedInvariant(t *testing.T) {
	// Run() already fails if credits are not restored; exercise it under
	// full offload with many concurrent warps.
	res := runVadd(t, NaiveNDP)
	if res.TimedOut {
		t.Fatal("run timed out")
	}
}

func TestStatsConsistency(t *testing.T) {
	res := runVadd(t, NaiveNDP)
	st := res.Stats
	if st.RDFCacheHits > st.RDFPackets {
		t.Fatal("more RDF cache hits than RDF packets")
	}
	if st.DRAMReads == 0 {
		t.Fatal("no DRAM reads recorded")
	}
	if st.DRAMWrites == 0 {
		t.Fatal("no DRAM writes recorded")
	}
	if st.SMCycles == 0 || st.NSUCycles == 0 {
		t.Fatal("clock domains did not advance")
	}
	// NSU clock at half the SM clock.
	ratio := float64(st.SMCycles) / float64(st.NSUCycles)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("SM/NSU cycle ratio = %v, want ~2", ratio)
	}
}

func TestBaselineMatchesOriginalKernel(t *testing.T) {
	// The baseline runs the unmodified binary: no OFLD instructions.
	cfg := smallConfig()
	mem := vm.New(cfg)
	k, _ := buildVadd(t, mem, 512, 64)
	prog, err := BuildProgram(k, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range prog.Kernel.Code {
		if in.Op == isa.OFLDBEG || in.Op == isa.OFLDEND {
			t.Fatal("baseline program contains offload brackets")
		}
	}
	if len(prog.Blocks) != 0 {
		t.Fatal("baseline program has blocks")
	}
}
