package trace

import (
	"strings"
	"testing"

	"ndpgpu/internal/core"
)

func TestRecorderRingBuffer(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Observe(int64(i*100), "gpu->hmc0", 16, &core.ReadReq{LineAddr: uint64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d, want 3", len(evs))
	}
	// Oldest two discarded: first retained is event #2 (at=200).
	if evs[0].At != 200 || evs[2].At != 400 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
}

func TestFilterWarp(t *testing.T) {
	r := NewRecorder(10)
	r.Filter = FilterWarp(1, 2)
	r.Observe(0, "gpu->hmc0", 16, &core.CmdPacket{ID: core.OffloadID{SM: 1, Warp: 2}})
	r.Observe(0, "gpu->hmc0", 16, &core.CmdPacket{ID: core.OffloadID{SM: 1, Warp: 3}})
	r.Observe(0, "gpu->hmc0", 16, &core.ReadReq{}) // no offload ID
	if len(r.Events()) != 1 {
		t.Fatalf("filtered events = %d, want 1", len(r.Events()))
	}
}

func TestDescribeAllPacketTypes(t *testing.T) {
	id := core.OffloadID{SM: 3, Warp: 7}
	cases := []struct {
		msg  any
		want string
	}{
		{&core.CmdPacket{ID: id, BlockID: 2, Target: 5}, "CMD"},
		{&core.RDFPacket{ID: id, Seq: 1}, "RDF"},
		{&core.RDFResp{ID: id, FromCache: true}, "gpu-cache"},
		{&core.RDFResp{ID: id}, "dram"},
		{&core.RDFRef{ID: id}, "read-only cache"},
		{&core.WTAPacket{ID: id}, "WTA"},
		{&core.WritePacket{ID: id, Source: 4}, "nsu4"},
		{&core.WriteAck{ID: id}, "WACK"},
		{&core.InvalPacket{HomeHMC: 6}, "hmc6"},
		{&core.AckPacket{ID: id}, "ACK"},
		{&core.ReadReq{LineAddr: 0x80}, "0x80"},
		{&core.ReadResp{LineAddr: 0x80}, "RESP"},
		{&core.WriteReq{}, "baseline"},
		{42, "int"},
	}
	for _, c := range cases {
		got := Describe(c.msg)
		if !strings.Contains(got, c.want) {
			t.Errorf("Describe(%T) = %q, want containing %q", c.msg, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	r := NewRecorder(10)
	r.Observe(1234, "gpu->hmc3", 16, &core.ReadReq{LineAddr: 0x1000})
	out := r.String()
	if !strings.Contains(out, "gpu->hmc3") || !strings.Contains(out, "READ") {
		t.Fatalf("rendering missing fields: %s", out)
	}
}

// TestRingWraparound drives the ring through multiple full wraps and checks
// that exactly the newest max events survive, in arrival order, with Total
// still counting every observation.
func TestRingWraparound(t *testing.T) {
	const max, n = 4, 11
	r := NewRecorder(max)
	for i := 0; i < n; i++ {
		r.Observe(int64(i), "gpu->hmc0", 16, &core.ReadReq{LineAddr: uint64(i)})
	}
	if r.Total() != n {
		t.Fatalf("total = %d, want %d", r.Total(), n)
	}
	evs := r.Events()
	if len(evs) != max {
		t.Fatalf("retained = %d, want %d", len(evs), max)
	}
	for i, ev := range evs {
		if want := int64(n - max + i); ev.At != want {
			t.Fatalf("event %d at %d, want %d (ring out of order: %+v)", i, ev.At, want, evs)
		}
	}
}

// TestFilteredEventsDontConsumeRingSlots interleaves accepted and rejected
// events through a wrapping ring: the filter runs before ring insertion, so a
// rejected event must neither occupy a slot, evict an older accepted event,
// nor count toward Total.
func TestFilteredEventsDontConsumeRingSlots(t *testing.T) {
	const max = 3
	r := NewRecorder(max)
	r.Filter = FilterWarp(0, 0)
	keep := core.OffloadID{SM: 0, Warp: 0}
	drop := core.OffloadID{SM: 0, Warp: 1}
	at := int64(0)
	observe := func(id core.OffloadID) int64 {
		at++
		r.Observe(at, "gpu->hmc0", 16, &core.CmdPacket{ID: id})
		return at
	}
	var kept []int64
	for i := 0; i < 5; i++ {
		kept = append(kept, observe(keep))
		observe(drop) // must be invisible to the ring
		observe(drop)
	}
	if r.Total() != int64(len(kept)) {
		t.Fatalf("total = %d, want %d accepted events", r.Total(), len(kept))
	}
	evs := r.Events()
	if len(evs) != max {
		t.Fatalf("retained = %d, want %d", len(evs), max)
	}
	want := kept[len(kept)-max:]
	for i, ev := range evs {
		if ev.At != want[i] {
			t.Fatalf("retained[%d].At = %d, want %d (rejected events consumed slots?)", i, ev.At, want[i])
		}
		if !ev.HasID || ev.ID != keep {
			t.Fatalf("retained[%d] = %+v, want only sm0/w0 packets", i, ev)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if r.max != 4096 {
		t.Fatalf("default max = %d", r.max)
	}
}
