package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
)

// TestIdleSkipEquivalence proves the engine's idle skipping is
// observationally invisible: for every workload in the suite, a run with
// skipping enabled produces bit-identical results — cycle counts, elapsed
// time, the complete statistics bundle, and the energy model inputs — to the
// dense reference run that fires every clock edge.
func TestIdleSkipEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	for _, wl := range Workloads() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			dense := RunOneWith(cfg, wl, sim.DynCache, 1, func(m *sim.Machine) {
				m.SetIdleSkip(false)
			})
			if dense.Err != nil {
				t.Fatal(dense.Err)
			}
			skip := RunOneWith(cfg, wl, sim.DynCache, 1, func(m *sim.Machine) {
				m.SetIdleSkip(true)
				// Re-poll every parked component at every fired edge: a
				// missed external re-arm panics at the edge where it would
				// first diverge instead of surfacing as a digest mismatch.
				m.SetWakeCheck(true)
			})
			if skip.Err != nil {
				t.Fatal(skip.Err)
			}
			if dense.TimePS != skip.TimePS {
				t.Errorf("elapsed time diverged: dense=%d skip=%d ps", dense.TimePS, skip.TimePS)
			}
			if dense.Stats.SMCycles != skip.Stats.SMCycles {
				t.Errorf("SM cycles diverged: dense=%d skip=%d", dense.Stats.SMCycles, skip.Stats.SMCycles)
			}
			if !reflect.DeepEqual(dense.Stats, skip.Stats) {
				t.Errorf("stats diverged:\ndense: %+v\nskip:  %+v", dense.Stats, skip.Stats)
			}
			if dense.Energy != skip.Energy {
				t.Errorf("energy diverged:\ndense: %+v\nskip:  %+v", dense.Energy, skip.Energy)
			}
		})
	}
}

// TestIdleSkipEquivalenceFaultFuzz extends the equivalence proof to seeded
// random fault schedules: frozen vaults, stalled NSUs, and severed links
// force the simulator onto its fault paths (where per-component wake
// scheduling is disabled and every ticker is polled), and the dense and
// skipped runs must still be bit-identical. The schedules are generated from
// fixed seeds, so a failure reproduces.
func TestIdleSkipEquivalenceFaultFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	base := config.Default()
	base.GPU.NumSMs = 4
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			cfg := base
			cfg.Fault = config.FaultConfig{TimeoutCycles: 2000, MaxRetries: 3}
			for n := 1 + rng.Intn(3); n > 0; n-- {
				at := int64(1+rng.Intn(40)) * 250_000 // within every run's active window
				switch rng.Intn(3) {
				case 0:
					cfg.Fault.Events = append(cfg.Fault.Events, config.FaultEvent{
						Kind: "vaultfreeze", AtPS: at, DurPS: int64(2+rng.Intn(10)) * 1_000_000,
						HMC: rng.Intn(cfg.NumHMCs), Vault: rng.Intn(cfg.HMC.NumVaults)})
				case 1:
					cfg.Fault.Events = append(cfg.Fault.Events, config.FaultEvent{
						Kind: "nsustall", AtPS: at, DurPS: int64(2+rng.Intn(10)) * 1_000_000,
						HMC: rng.Intn(cfg.NumHMCs)})
				case 2:
					cfg.Fault.Events = append(cfg.Fault.Events, config.FaultEvent{
						Kind: "linkdown", AtPS: at, DurPS: int64(5+rng.Intn(20)) * 1_000_000,
						HMC: rng.Intn(cfg.NumHMCs), Dim: rng.Intn(3)})
				}
			}
			dense := RunOneWith(cfg, "VADD", sim.DynCache, 1, func(m *sim.Machine) {
				m.SetIdleSkip(false)
			})
			if dense.Err != nil {
				t.Fatal(dense.Err)
			}
			skip := RunOneWith(cfg, "VADD", sim.DynCache, 1, func(m *sim.Machine) {
				m.SetIdleSkip(true)
				m.SetWakeCheck(true)
			})
			if skip.Err != nil {
				t.Fatal(skip.Err)
			}
			if dense.TimePS != skip.TimePS {
				t.Errorf("elapsed time diverged: dense=%d skip=%d ps", dense.TimePS, skip.TimePS)
			}
			if !reflect.DeepEqual(dense.Stats, skip.Stats) {
				t.Errorf("stats diverged:\ndense: %+v\nskip:  %+v", dense.Stats, skip.Stats)
			}
			if dense.Energy != skip.Energy {
				t.Errorf("energy diverged:\ndense: %+v\nskip:  %+v", dense.Energy, skip.Energy)
			}
		})
	}
}
