// Package experiments regenerates every table and figure of the paper's
// evaluation (§5-§7). Each Figure*/Table* function runs the required
// simulations (in parallel across workloads) and prints the same rows or
// series the paper reports. EXPERIMENTS.md records the measured outputs
// next to the paper's numbers.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"ndpgpu/internal/config"
	"ndpgpu/internal/energy"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// Workloads returns the evaluation suite in Table 1 order.
func Workloads() []string { return workloads.Abbrs() }

// Run is one completed simulation.
type Run struct {
	Workload string
	Mode     string
	Cfg      config.Config
	Stats    *stats.Stats
	TimePS   timing.PS
	Energy   stats.EnergyBreakdown
	Err      error
}

// Speedup returns base/this runtime.
func (r *Run) Speedup(base *Run) float64 {
	if r.TimePS == 0 {
		return 0
	}
	return float64(base.TimePS) / float64(r.TimePS)
}

// RunOne builds the workload, runs it under the mode, verifies the output,
// and computes energy.
func RunOne(cfg config.Config, abbr string, mode sim.Mode, scale int) *Run {
	run := &Run{Workload: abbr, Mode: mode.Name, Cfg: cfg}
	mem := vm.New(cfg)
	w, err := workloads.Build(abbr, mem, scale)
	if err != nil {
		run.Err = err
		return run
	}
	m, err := sim.Launch(cfg, w.Kernel, mem, mode)
	if err != nil {
		run.Err = err
		return run
	}
	res, err := m.Run(0)
	if err != nil {
		run.Err = fmt.Errorf("%s/%s: %w", abbr, mode.Name, err)
		return run
	}
	if err := w.Verify(); err != nil {
		run.Err = fmt.Errorf("%s/%s: functional check: %w", abbr, mode.Name, err)
		return run
	}
	run.Stats = res.Stats
	run.TimePS = res.TimePS
	run.Energy = energy.Compute(res.Stats, cfg, energy.DefaultParams(), mode.NDP)
	return run
}

// job identifies one simulation to run.
type job struct {
	workload string
	mode     sim.Mode
	cfg      config.Config
}

// runAll executes the jobs concurrently (each machine is independent) and
// returns results keyed by workload|mode.
func runAll(jobs []job, scale int) map[string]*Run {
	type keyed struct {
		key string
		run *Run
	}
	out := make(chan keyed, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out <- keyed{key: j.workload + "|" + j.mode.Name, run: RunOne(j.cfg, j.workload, j.mode, scale)}
		}(j)
	}
	wg.Wait()
	close(out)
	res := make(map[string]*Run, len(jobs))
	for k := range out {
		res[k.key] = k.run
	}
	return res
}

func get(m map[string]*Run, wl, mode string) *Run { return m[wl+"|"+mode] }

// checkErrs returns the first error among runs.
func checkErrs(m map[string]*Run) error {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if m[k].Err != nil {
			return m[k].Err
		}
	}
	return nil
}

// geomean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// moreCoreCfg is the Baseline_MoreCore configuration (§6).
func moreCoreCfg(cfg config.Config) config.Config {
	cfg.GPU.NumSMs += cfg.NumHMCs
	return cfg
}

// header prints a table header row.
func header(w io.Writer, title string, cols []string) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-8s", "")
	for _, c := range cols {
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
}
