package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
)

func TestFigure5Shape(t *testing.T) {
	res := Figure5(io.Discard)
	if len(res.Points) < 8 {
		t.Fatalf("too few points: %d", len(res.Points))
	}
	for _, p := range res.Points {
		// Paper: the first-HMC policy costs at most ~15% more traffic than
		// the oracle, and both normalize below 1 (some accesses are local).
		if p.Ratio > 1.16 {
			t.Fatalf("n=%d: first/optimal = %.3f, paper bound ~1.15", p.N, p.Ratio)
		}
		if p.First > 1 || p.Optimal > p.First {
			t.Fatalf("n=%d: inconsistent traffic first=%.3f opt=%.3f", p.N, p.First, p.Optimal)
		}
	}
	// The gap peaks at small access counts (>1) and diminishes as accesses
	// grow (the converging curves of Figure 5; at n=1 the policies agree).
	peak := 0.0
	for _, p := range res.Points {
		if p.Ratio > peak {
			peak = p.Ratio
		}
	}
	last := res.Points[len(res.Points)-1]
	if peak <= 1.01 {
		t.Fatalf("no policy gap observed (peak %.3f)", peak)
	}
	if last.Ratio >= peak {
		t.Fatalf("gap did not converge: peak %.3f, final %.3f", peak, last.Ratio)
	}
	// With many random accesses both approach 7/8 (the all-remote fraction).
	if last.First < 0.8 || last.First > 0.92 {
		t.Fatalf("asymptote = %.3f, want ~0.875", last.First)
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, config.Default(), 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, wl := range Workloads() {
		if !strings.Contains(out, wl) {
			t.Fatalf("Table 1 missing %s:\n%s", wl, out)
		}
	}
	if !strings.Contains(out, "avg registers per block") {
		t.Fatal("Table 1 missing register-transfer summary")
	}
}

func TestTable2Renders(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf, config.Default())
	for _, want := range []string{"64 SMs", "16 vaults", "350 MHz", "hypercube"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, buf.String())
		}
	}
}

func TestOverheadMatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	Overhead(&buf, config.Default())
	if !strings.Contains(buf.String(), "2.84 KB") {
		t.Fatalf("§7.5 storage should be 2.84 KB:\n%s", buf.String())
	}
}

func TestRunOneSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	r := RunOne(cfg, "VADD", sim.DynCache, 1)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.TimePS <= 0 || r.Energy.Total() <= 0 {
		t.Fatalf("bad run result: %+v", r)
	}
	base := RunOne(cfg, "VADD", sim.Baseline, 1)
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	if s := base.Speedup(base); s != 1 {
		t.Fatalf("self speedup = %v", s)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean = %v, want 4", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}
