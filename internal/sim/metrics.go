package sim

import (
	"fmt"

	"ndpgpu/internal/metrics"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
)

// EnableMetrics attaches the epoch-sampled metrics collector to the machine:
// a probe set covering every layer (offload controller and per-SM decisions,
// link utilization and queue depths, NSU buffers and credit stalls, DRAM
// row-hit rate and vault busy fraction, cache hit rates, and — under fault
// injection — the resilience counters), sampled on the SM clock every
// intervalCycles cycles. intervalCycles <= 0 selects the Algorithm-1 epoch
// (cfg.NDP.EpochCycles), whose boundary edges the GPU's epoch controller
// already pins, so the default sampler fires no edge the engine would have
// skipped. Call before Run; idempotent.
//
// Probes are pure reads over the main statistics bundle plus every
// shard-private bundle of the parallel executor, and offload round-trip spans
// drain in SM index order at tick granularity, so an enabled collector
// produces bit-identical exports between serial and parallel execution — and
// a machine without one behaves bit-identically to a machine with one.
func (m *Machine) EnableMetrics(intervalCycles int64) *metrics.Collector {
	if m.mc != nil {
		return m.mc
	}
	if intervalCycles <= 0 {
		intervalCycles = m.Cfg.NDP.EpochCycles
	}
	smPeriod := timing.PeriodFromMHz(m.Cfg.GPU.SMClockMHz)
	c := metrics.New(intervalCycles, smPeriod)
	m.mc = c
	m.g.SetSpanSink(c)
	m.registerProbes(c, smPeriod)
	m.smDomain.Attach(c.Ticker())
	return c
}

// Metrics returns the attached collector, or nil when metrics are disabled.
func (m *Machine) Metrics() *metrics.Collector { return m.mc }

// registerProbes wires the full probe set. The registration order is fixed so
// series order — and therefore export bytes — is deterministic.
func (m *Machine) registerProbes(c *metrics.Collector, smPeriod timing.PS) {
	// statSum captures every statistics bundle a counter may land in: the
	// main bundle (serial mode writes everything here) plus the stack and SM
	// shard bundles of the parallel executor. Summing all of them mid-run
	// yields the same totals the serial engine would show, since each event
	// is counted in exactly one bundle.
	bundles := append([]*stats.Stats{m.St}, m.shardSts...)
	bundles = append(bundles, m.g.ShardStats()...)
	statSum := func(sel func(*stats.Stats) int64) func() float64 {
		return func() float64 {
			var n int64
			for _, s := range bundles {
				n += sel(s)
			}
			return float64(n)
		}
	}

	// Offload controller (Algorithm 1): the global ratio knob and the
	// realized offload fraction per interval.
	c.Gauge("ratio", "controller", "fraction", func() float64 { return m.Dec.Ratio() })
	c.Rate("offload_ratio", "controller", "fraction", 1,
		statSum(func(s *stats.Stats) int64 { return s.OffloadBlocksOffloaded }),
		statSum(func(s *stats.Stats) int64 { return s.OffloadBlocksSeen }))

	// Per-SM controller decisions: block instances reaching OFLDBEG, the
	// subset sent to an NSU, and the per-interval decision ratio.
	for i := 0; i < m.Cfg.GPU.NumSMs; i++ {
		i := i
		seen := func() float64 { n, _ := m.g.SMOffloadCounters(i); return float64(n) }
		sent := func() float64 { _, n := m.g.SMOffloadCounters(i); return float64(n) }
		c.Counter(fmt.Sprintf("sm%d/offload_seen", i), "sm", "blocks", seen)
		c.Counter(fmt.Sprintf("sm%d/offload_sent", i), "sm", "blocks", sent)
		c.Rate(fmt.Sprintf("sm%d/offload_ratio", i), "sm", "fraction", 1, sent, seen)
	}

	// Hypercube and GPU links: bytes per interval and utilization (fraction
	// of wall time the link serialized bytes), plus inbox queue depths.
	m.fab.ForEachLink(func(name string, l *noc.Link) {
		c.Counter(name+"/bytes", "link", "bytes",
			func() float64 { return float64(l.Bytes) })
		c.TimeRate(name+"/util", "link", "fraction", l.PSPerByte(),
			func() float64 { return float64(l.Bytes) })
	})
	c.Gauge("gpu_inbox_depth", "link", "msgs",
		func() float64 { return float64(m.fab.GPUInbox().Len()) })
	for i := 0; i < m.Cfg.NumHMCs; i++ {
		i := i
		c.Gauge(fmt.Sprintf("hmc%d_inbox_depth", i), "link", "msgs",
			func() float64 { return float64(m.fab.HMCInbox(i).Len()) })
	}

	// Memory stacks: DRAM row-hit rate, vault busy fraction, vault queue
	// depth, NSU warp-slot occupancy, NDP buffer occupancy, credit stalls.
	for i := range m.hmcs {
		h, n := m.hmcs[i], m.nsus[i]
		pre := fmt.Sprintf("hmc%d/", i)
		vaults := float64(h.NumVaults())
		c.Rate(pre+"row_hit_rate", "dram", "fraction", 1,
			func() float64 { return float64(h.VaultStats().RowHits) },
			func() float64 {
				vs := h.VaultStats()
				return float64(vs.Reads + vs.Writes)
			})
		c.TimeRate(pre+"vault_busy", "dram", "fraction",
			float64(m.Cfg.HMC.TCKps)/vaults,
			func() float64 { return float64(h.VaultStats().BusyCycles) })
		c.Gauge(pre+"queue_depth", "dram", "reqs",
			func() float64 { return float64(h.QueueDepth()) })

		npre := fmt.Sprintf("nsu%d/", i)
		c.Gauge(npre+"warps", "nsu", "warps",
			func() float64 { return float64(n.Occupied()) })
		c.Gauge(npre+"buf_cmd", "nsu", "entries", func() float64 {
			cmd, _, _ := n.BufferOccupancy()
			return float64(cmd)
		})
		c.Gauge(npre+"buf_rd", "nsu", "entries", func() float64 {
			_, rd, _ := n.BufferOccupancy()
			return float64(rd)
		})
		c.Gauge(npre+"buf_wt", "nsu", "entries", func() float64 {
			_, _, wt := n.BufferOccupancy()
			return float64(wt)
		})
		t := i
		c.Counter(npre+"credit_stalls", "nsu", "rejects",
			func() float64 { return float64(m.g.BufferManager().TargetRejects(t)) })
	}

	// Caches: L1D and L2 hit rates from side-effect-free counter snapshots.
	c.Rate("l1d_hit_rate", "cache", "fraction", 1,
		func() float64 { return float64(m.g.L1DSnapshot().Hits) },
		func() float64 { return float64(m.g.L1DSnapshot().Accesses) })
	c.Rate("l2_hit_rate", "cache", "fraction", 1,
		func() float64 { return float64(m.g.L2Snapshot().Hits) },
		func() float64 { return float64(m.g.L2Snapshot().Accesses) })

	// GPU issue throughput: warp instructions per interval and IPC in
	// instructions per SM cycle.
	instrs := statSum(func(s *stats.Stats) int64 { return s.IssuedInstrs })
	c.Counter("instrs", "gpu", "instrs", instrs)
	c.TimeRate("ipc", "gpu", "instr/cycle", float64(smPeriod), instrs)

	// Resilience counters, only meaningful under fault injection.
	if m.flt != nil {
		c.Counter("dropped", "fault", "pkts",
			statSum(func(s *stats.Stats) int64 { return s.DroppedPackets }))
		c.Counter("corrupted", "fault", "pkts",
			statSum(func(s *stats.Stats) int64 { return s.CorruptedPackets }))
		c.Counter("retries", "fault", "blocks",
			statSum(func(s *stats.Stats) int64 { return s.OffloadRetries }))
		c.Counter("timeouts", "fault", "blocks",
			statSum(func(s *stats.Stats) int64 { return s.OffloadTimeouts }))
		c.Counter("fallbacks", "fault", "blocks",
			statSum(func(s *stats.Stats) int64 { return s.FallbackBlocks }))
	}
}
