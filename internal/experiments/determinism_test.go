package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
)

// TestRunDeterminism guards the simulator's reproducibility contract: the
// same configuration and workload must produce bit-identical results on
// every run, regardless of the Go scheduler. A single simulation is
// sequential by construction, so any divergence here means nondeterministic
// state sneaked into the model (map iteration order, time-based seeding,
// shared scratch between runs).
func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	cfg := config.Default()
	cfg.GPU.NumSMs = 4

	one := func() *Run {
		r := RunOne(cfg, "VADD", sim.DynCache, 1)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return r
	}

	first := one()
	second := one()

	// Third run on a single OS thread: scheduling must not matter.
	prev := runtime.GOMAXPROCS(1)
	serial := one()
	runtime.GOMAXPROCS(prev)

	for _, tc := range []struct {
		name string
		r    *Run
	}{{"repeat", second}, {"gomaxprocs=1", serial}} {
		if first.TimePS != tc.r.TimePS {
			t.Errorf("%s: elapsed time diverged: %d vs %d ps", tc.name, first.TimePS, tc.r.TimePS)
		}
		if first.Stats.SMCycles != tc.r.Stats.SMCycles {
			t.Errorf("%s: SM cycles diverged: %d vs %d", tc.name, first.Stats.SMCycles, tc.r.Stats.SMCycles)
		}
		if !reflect.DeepEqual(first.Stats, tc.r.Stats) {
			t.Errorf("%s: stats diverged:\nfirst: %+v\nother: %+v", tc.name, first.Stats, tc.r.Stats)
		}
		if first.Energy != tc.r.Energy {
			t.Errorf("%s: energy diverged", tc.name)
		}
	}
}
