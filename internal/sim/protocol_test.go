package sim

import (
	"testing"

	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

// TestWTAInflightCounters exercises the §4.1.1 dynamic-memory-management
// hook: the GPU keeps a per-HMC counter of in-flight WTA packets so a page
// swap can wait for exactly the stacks it touches. After quiescence every
// counter must be zero.
func TestWTAInflightCounters(t *testing.T) {
	cfg := smallConfig()
	mem := vm.New(cfg)
	k, verify := buildVadd(t, mem, 2048, 64)
	m, err := Launch(cfg, k, mem, NaiveNDP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := verify(); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < cfg.NumHMCs; h++ {
		if n := m.GPU().WTAInflight(h); n != 0 {
			t.Fatalf("HMC %d has %d in-flight WTA packets after quiescence", h, n)
		}
	}
	if m.St.WTAPackets == 0 {
		t.Fatal("workload generated no WTA packets; counter untested")
	}
}

// TestPredicatedOffload checks partitioned execution under predication: a
// kernel whose loads/stores only run in half the lanes, offloaded fully.
func TestPredicatedOffload(t *testing.T) {
	cfg := smallConfig()
	mem := vm.New(cfg)
	const n = 2048
	a := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n)
	for i := 0; i < n; i++ {
		mem.WriteF32(a+uint64(4*i), float32(i))
		mem.WriteF32(out+uint64(4*i), -1)
	}
	kb := kernel.NewBuilder()
	kb.OpImm(isa.ANDI, 16, kernel.RegGTID, 1) // odd threads only
	kb.OpImm(isa.SHLI, 17, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 18, kernel.RegParam0, 17)
	kb.Op3(isa.ADD, 19, kernel.RegParam0+1, 17)
	ld := kb.Ld(20, 18, 0)
	kb.Predicate(ld, 16, false)
	fa := kb.Op3(isa.FADD, 21, 20, 20)
	kb.Predicate(fa, 16, false)
	st := kb.St(19, 0, 21)
	kb.Predicate(st, 16, false)
	kb.Exit()
	k := kb.MustBuild("pred", n/64, 64, a, out)

	m, err := Launch(cfg, k, mem, NaiveNDP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OffloadBlocksOffloaded == 0 {
		t.Fatal("predicated block not offloaded")
	}
	for i := 0; i < n; i++ {
		want := float32(-1)
		if i%2 == 1 {
			want = float32(i) + float32(i)
		}
		if got := mem.ReadF32(out + uint64(4*i)); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

// TestMisalignedOffload covers the misaligned-access classification of
// §4.1.1: every thread reads the same word, so offsets are not the identity
// and RDF packets carry the offset list.
func TestMisalignedOffload(t *testing.T) {
	cfg := smallConfig()
	mem := vm.New(cfg)
	const n = 1024
	a := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n)
	mem.WriteF32(a, 21)
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Ld(17, kernel.RegParam0, 0) // broadcast: all lanes read word 0
	kb.Op3(isa.FADD, 18, 17, 17)
	kb.Op3(isa.ADD, 19, kernel.RegParam0+1, 16)
	kb.St(19, 0, 18)
	kb.Exit()
	k := kb.MustBuild("bcast", n/64, 64, a, out)

	m, err := Launch(cfg, k, mem, NaiveNDP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mem.ReadF32(out + uint64(4*i)); got != 42 {
			t.Fatalf("out[%d] = %v, want 42", i, got)
		}
	}
}

// TestScatterStoreOffload covers divergent offloaded stores: each lane
// writes a different line (WTA packets fan out to many vaults).
func TestScatterStoreOffload(t *testing.T) {
	cfg := smallConfig()
	mem := vm.New(cfg)
	const n = 1024
	a := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n * 32) // stride 128B per element: one line each
	for i := 0; i < n; i++ {
		mem.WriteF32(a+uint64(4*i), float32(i))
	}
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Ld(18, 17, 0)
	kb.OpImm(isa.SHLI, 19, kernel.RegGTID, 7) // 128-byte stride
	kb.Op3(isa.ADD, 20, kernel.RegParam0+1, 19)
	kb.St(20, 0, 18)
	kb.Exit()
	k := kb.MustBuild("scatter", n/64, 64, a, out)

	m, err := Launch(cfg, k, mem, NaiveNDP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mem.ReadF32(out + uint64(128*i)); got != float32(i) {
			t.Fatalf("out[%d] = %v, want %v", i, got, float32(i))
		}
	}
	// Divergent store: one WTA packet per line per warp (32 per warp).
	if res.Stats.WTAPackets < int64(n) {
		t.Fatalf("WTA packets = %d, want >= %d", res.Stats.WTAPackets, n)
	}
	// Every NSU line write triggers a §4.2 invalidation.
	if res.Stats.InvalPackets != res.Stats.WTAPackets {
		t.Fatalf("invals = %d, WTAs = %d", res.Stats.InvalPackets, res.Stats.WTAPackets)
	}
}

// TestNSUReadOnlyCacheExtension checks the §7.1 future-work option: with the
// read-only NSU cache enabled, repeated RDF hits on a hot line become small
// references, shrinking GPU off-chip traffic without changing results.
func TestNSUReadOnlyCacheExtension(t *testing.T) {
	run := func(roBytes int) (int64, error) {
		cfg := smallConfig()
		cfg.NSU.ReadOnlyCacheBytes = roBytes
		mem := vm.New(cfg)
		const n = 4096
		hot := mem.Alloc(128) // one hot line
		src := mem.Alloc(4 * n)
		out := mem.Alloc(4 * n)
		mem.WriteF32(hot, 3)
		for i := 0; i < n; i++ {
			mem.WriteF32(src+uint64(4*i), float32(i))
		}
		kb := kernel.NewBuilder()
		kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
		kb.Op3(isa.ADD, 17, kernel.RegParam0+1, 16)
		kb.Ld(18, 17, 0)               // streamed
		kb.Ld(19, kernel.RegParam0, 0) // hot broadcast line
		kb.Op3(isa.FMUL, 20, 18, 19)
		kb.Op3(isa.ADD, 21, kernel.RegParam0+2, 16)
		kb.St(21, 0, 20)
		kb.Exit()
		k := kb.MustBuild("hot", n/64, 64, hot, src, out)
		m, err := Launch(cfg, k, mem, StaticNDP(0.5))
		if err != nil {
			return 0, err
		}
		res, err := m.Run(0)
		if err != nil {
			return 0, err
		}
		for i := 0; i < n; i++ {
			want := f32ref(float32(i) * 3)
			if got := mem.ReadF32(out + uint64(4*i)); got != want {
				t.Fatalf("ro=%d: out[%d] = %v, want %v", roBytes, i, got, want)
			}
			mem.WriteF32(out+uint64(4*i), -1)
		}
		return res.Stats.OffChipTraffic(), nil
	}
	base, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := run(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if ro >= base {
		t.Fatalf("read-only cache did not reduce off-chip traffic: %d >= %d", ro, base)
	}
}

// f32ref mirrors the simulator's float32 multiply rounding.
func f32ref(x float32) float32 { return x }

// TestPageSwapDuringOffload migrates pages between stacks while offloaded
// execution is in flight (§4.1.1 dynamic memory management): the swap waits
// for the stacks' in-flight WTA packets, other traffic continues, and the
// functional output stays correct.
func TestPageSwapDuringOffload(t *testing.T) {
	cfg := smallConfig()
	mem := vm.New(cfg)
	k, verify := buildVadd(t, mem, 4096, 64)
	m, err := Launch(cfg, k, mem, NaiveNDP)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule migrations of the first pages of each array to rotating
	// stacks before the run starts; they will complete mid-run.
	for p := 0; p < 8; p++ {
		m.RequestPageSwap(k.Params[p%3]+uint64(4096*(p%4)), p%cfg.NumHMCs)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := verify(); err != nil {
		t.Fatalf("page swaps corrupted results: %v", err)
	}
	if m.PendingSwaps() != 0 {
		t.Fatalf("%d swaps never completed", m.PendingSwaps())
	}
	if m.SwapsDone != 8 {
		t.Fatalf("swaps done = %d, want 8", m.SwapsDone)
	}
	// Placement actually changed.
	for p := 0; p < 8; p++ {
		if got := mem.HMCOf(k.Params[p%3] + uint64(4096*(p%4))); got != p%cfg.NumHMCs {
			t.Fatalf("page %d home = %d, want %d", p, got, p%cfg.NumHMCs)
		}
	}
}
