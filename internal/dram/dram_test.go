package dram

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/timing"
)

func run(v *Vault, upto timing.PS) {
	for now := timing.PS(0); now <= upto; now += 1500 {
		v.Tick(now)
	}
}

func TestSingleReadCompletes(t *testing.T) {
	cfg := config.Default().HMC
	v := NewVault(cfg)
	var doneAt timing.PS = -1
	ok := v.Enqueue(&Request{Line: 0, Bank: 0, Row: 5, Done: func(now timing.PS) { doneAt = now }})
	if !ok {
		t.Fatal("enqueue rejected")
	}
	run(v, 200_000)
	if doneAt < 0 {
		t.Fatal("read never completed")
	}
	// Activation (tRCD=9) + CAS (tCL=9) + transfer: at least 18 tCK = 27 ns.
	if doneAt < 27_000 {
		t.Fatalf("read completed too fast: %d ps", doneAt)
	}
	if v.Stats.Reads != 1 || v.Stats.Activations != 1 || v.Stats.RowHits != 0 {
		t.Fatalf("stats = %+v", v.Stats)
	}
	if !v.Idle() {
		t.Fatal("vault not idle after completion")
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := config.Default().HMC

	timeFor := func(rows []int64) timing.PS {
		v := NewVault(cfg)
		var last timing.PS
		n := 0
		for _, r := range rows {
			v.Enqueue(&Request{Bank: 0, Row: r, Done: func(now timing.PS) {
				n++
				if now > last {
					last = now
				}
			}})
		}
		run(v, 10_000_000)
		if n != len(rows) {
			t.Fatalf("only %d/%d completed", n, len(rows))
		}
		return last
	}

	sameRow := timeFor([]int64{1, 1, 1, 1})
	conflict := timeFor([]int64{1, 2, 3, 4})
	if sameRow >= conflict {
		t.Fatalf("row hits (%d ps) not faster than conflicts (%d ps)", sameRow, conflict)
	}
}

func TestRowHitCounted(t *testing.T) {
	cfg := config.Default().HMC
	v := NewVault(cfg)
	for i := 0; i < 4; i++ {
		v.Enqueue(&Request{Bank: 0, Row: 7})
	}
	run(v, 1_000_000)
	if v.Stats.Activations != 1 {
		t.Fatalf("activations = %d, want 1", v.Stats.Activations)
	}
	if v.Stats.RowHits != 3 {
		t.Fatalf("row hits = %d, want 3 (opener is not a hit)", v.Stats.RowHits)
	}
}

func TestBankParallelism(t *testing.T) {
	cfg := config.Default().HMC

	timeFor := func(banks []int) timing.PS {
		v := NewVault(cfg)
		var last timing.PS
		for _, b := range banks {
			v.Enqueue(&Request{Bank: b, Row: 1, Done: func(now timing.PS) {
				if now > last {
					last = now
				}
			}})
		}
		run(v, 10_000_000)
		return last
	}

	oneBankDiffRows := func() timing.PS {
		v := NewVault(cfg)
		var last timing.PS
		for i := 0; i < 4; i++ {
			v.Enqueue(&Request{Bank: 0, Row: int64(i), Done: func(now timing.PS) {
				if now > last {
					last = now
				}
			}})
		}
		run(v, 10_000_000)
		return last
	}()

	spread := timeFor([]int{0, 1, 2, 3})
	if spread >= oneBankDiffRows {
		t.Fatalf("bank-parallel (%d) not faster than serialized conflicts (%d)", spread, oneBankDiffRows)
	}
}

func TestQueueBound(t *testing.T) {
	cfg := config.Default().HMC
	v := NewVault(cfg)
	for i := 0; i < cfg.VaultQueue; i++ {
		if !v.Enqueue(&Request{Bank: i % 16, Row: int64(i)}) {
			t.Fatalf("enqueue %d rejected below bound", i)
		}
	}
	if v.Enqueue(&Request{Bank: 0, Row: 0}) {
		t.Fatal("enqueue beyond queue bound accepted")
	}
	if v.Stats.QueueFullRejects != 1 {
		t.Fatalf("rejects = %d", v.Stats.QueueFullRejects)
	}
}

func TestWritesCounted(t *testing.T) {
	cfg := config.Default().HMC
	v := NewVault(cfg)
	v.Enqueue(&Request{Bank: 0, Row: 1, IsWrite: true})
	v.Enqueue(&Request{Bank: 0, Row: 1})
	run(v, 1_000_000)
	if v.Stats.Writes != 1 || v.Stats.Reads != 1 {
		t.Fatalf("stats = %+v", v.Stats)
	}
}

func TestFRFCFSPrefersOpenRow(t *testing.T) {
	cfg := config.Default().HMC
	v := NewVault(cfg)
	var order []int64
	mk := func(row int64) *Request {
		return &Request{Bank: 0, Row: row, Done: func(timing.PS) { order = append(order, row) }}
	}
	// Open row 1 with the first request; then queue a conflict (row 2)
	// ahead of another row-1 request. FR-FCFS should finish both row-1
	// requests before row 2.
	v.Enqueue(mk(1))
	v.Enqueue(mk(2))
	v.Enqueue(mk(1))
	run(v, 10_000_000)
	if len(order) != 3 {
		t.Fatalf("completed %d", len(order))
	}
	if !(order[0] == 1 && order[1] == 1 && order[2] == 2) {
		t.Fatalf("completion order = %v, want [1 1 2]", order)
	}
}

func TestThroughputNearPeak(t *testing.T) {
	// Stream 256 row-hit reads on one bank: the bus should sustain one
	// 128B access per tCCD (4 tCK = 6 ns).
	cfg := config.Default().HMC
	v := NewVault(cfg)
	n := 0
	queued := 0
	var last timing.PS
	for now := timing.PS(0); now <= 20_000_000 && n < 256; now += 1500 {
		for queued < 256 && v.Enqueue(&Request{Bank: 0, Row: 1,
			Done: func(at timing.PS) { n++; last = at }}) {
			queued++
		}
		v.Tick(now)
	}
	if n != 256 {
		t.Fatalf("completed %d/256", n)
	}
	gbps := 256.0 * 128 / float64(last) * 1000 // bytes/ps -> GB/s
	if gbps < 15 || gbps > 25 {
		t.Fatalf("sustained bandwidth %.1f GB/s, want ~21", gbps)
	}
}

func TestRefreshBlocksVault(t *testing.T) {
	cfg := config.Default().HMC
	cfg.TREFIps = 100_000 // refresh every 100 ns for the test
	cfg.TRFCps = 50_000
	v := NewVault(cfg)
	n := 0
	queued := 0
	var last timing.PS
	for now := timing.PS(0); now <= 5_000_000 && n < 64; now += 1500 {
		for queued < 64 && v.Enqueue(&Request{Bank: 0, Row: 1,
			Done: func(at timing.PS) { n++; last = at }}) {
			queued++
		}
		v.Tick(now)
	}
	if n != 64 {
		t.Fatalf("completed %d/64 under refresh", n)
	}
	if v.Stats.Refreshes == 0 {
		t.Fatal("no refreshes performed")
	}
	// Refresh must cost time versus the no-refresh case.
	cfg.TREFIps = 0
	v2 := NewVault(cfg)
	n2, queued2 := 0, 0
	var last2 timing.PS
	for now := timing.PS(0); now <= 5_000_000 && n2 < 64; now += 1500 {
		for queued2 < 64 && v2.Enqueue(&Request{Bank: 0, Row: 1,
			Done: func(at timing.PS) { n2++; last2 = at }}) {
			queued2++
		}
		v2.Tick(now)
	}
	if last <= last2 {
		t.Fatalf("refresh made the vault faster: %d vs %d", last, last2)
	}
	if v2.Stats.Refreshes != 0 {
		t.Fatal("refresh ran while disabled")
	}
}
