package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// QuarantineError is the cached failure served for a quarantined request key
// (circuit-breaker open). The HTTP layer maps it to 503 with a Retry-After
// of the remaining TTL.
type QuarantineError struct {
	Key      string
	Until    time.Time
	Failures int
	LastErr  string
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("serve: request quarantined after %d poisonous failures until %s (last: %s)",
		e.Failures, e.Until.Format(time.RFC3339), e.LastErr)
}

// QuarantineEntry is the /status view of one suspect or quarantined key.
type QuarantineEntry struct {
	Key      string    `json:"key"`
	Failures int       `json:"failures"`
	Until    time.Time `json:"until,omitempty"` // zero: suspect, breaker not yet open
	LastErr  string    `json:"last_error"`
}

// quarantine is the poison-request circuit breaker: a key whose runs panic or
// hang K times is refused for a TTL, served the cached failure instead of
// burning another worker on it. After the TTL one probe is let through
// (half-open): success clears the record, another poisonous failure re-opens
// the breaker immediately.
type quarantine struct {
	k   int
	ttl time.Duration
	now func() time.Time // test seam

	mu      sync.Mutex
	m       map[string]*qrec
	hits    int64 // submissions refused by an open breaker
	tripped int64 // times a breaker opened
}

type qrec struct {
	failures int
	until    time.Time // zero while the breaker is closed
	lastErr  string
}

func newQuarantine(k int, ttl time.Duration) *quarantine {
	return &quarantine{k: k, ttl: ttl, now: time.Now, m: make(map[string]*qrec)}
}

// check admits or refuses a key. A non-nil result is the cached failure to
// serve. An expired breaker flips to half-open: the probe is admitted with
// the failure count rewound to one-below-K, so a single further poisonous
// failure re-opens it.
func (q *quarantine) check(key string) *QuarantineError {
	q.mu.Lock()
	defer q.mu.Unlock()
	rec, ok := q.m[key]
	if !ok || rec.until.IsZero() {
		return nil
	}
	if q.now().Before(rec.until) {
		q.hits++
		return &QuarantineError{Key: key, Until: rec.until, Failures: rec.failures, LastErr: rec.lastErr}
	}
	rec.until = time.Time{}
	rec.failures = q.k - 1
	return nil
}

// record counts one poisonous failure; it reports whether this failure
// opened the breaker.
func (q *quarantine) record(key string, err error) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	rec, ok := q.m[key]
	if !ok {
		rec = &qrec{}
		q.m[key] = rec
	}
	rec.failures++
	rec.lastErr = err.Error()
	if rec.failures >= q.k && rec.until.IsZero() {
		rec.until = q.now().Add(q.ttl)
		q.tripped++
		return true
	}
	return false
}

// clear forgets a key after a successful run (closes the breaker).
func (q *quarantine) clear(key string) {
	q.mu.Lock()
	delete(q.m, key)
	q.mu.Unlock()
}

// snapshot returns every suspect and quarantined key, sorted for stable
// /status output.
func (q *quarantine) snapshot() []QuarantineEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantineEntry, 0, len(q.m))
	for key, rec := range q.m {
		out = append(out, QuarantineEntry{Key: key, Failures: rec.failures, Until: rec.until, LastErr: rec.lastErr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// counts reports (open breakers now, refusals so far, opens so far).
func (q *quarantine) counts() (active int, hits, tripped int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	for _, rec := range q.m {
		if !rec.until.IsZero() && now.Before(rec.until) {
			active++
		}
	}
	return active, q.hits, q.tripped
}
