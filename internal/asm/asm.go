// Package asm assembles textual virtual-ISA kernels into kernel.Kernel
// values and formats kernels back to text. The syntax matches the
// disassembler in package isa, with labels, predication, and launch
// directives:
//
//	; c[i] = a[i] + b[i]
//	.kernel vadd
//	.grid   256
//	.block  256
//	.params 3            ; r4, r5, r6 hold the three runtime parameters
//
//	    shli r16, r0, 2
//	    add  r17, r4, r16
//	    add  r18, r5, r16
//	    add  r19, r6, r16
//	    ld   r20, [r17+0]
//	    ld   r21, [r18+0]
//	    fadd r22, r20, r21
//	    st   [r19+0], r22
//	    exit
//
// Labels are identifiers followed by a colon; branch operands may be a label
// or an absolute instruction index. Predication uses the @rN / @!rN prefix.
// The OFLD.BEG/OFLD.END brackets are inserted by the analyzer and are not
// accepted as input.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
)

// opsByName maps mnemonics to opcodes (SETP handled separately).
var opsByName = map[string]isa.Opcode{
	"nop": isa.NOP, "mov": isa.MOV, "movi": isa.MOVI,
	"add": isa.ADD, "addi": isa.ADDI, "sub": isa.SUB,
	"mul": isa.MUL, "muli": isa.MULI, "mad": isa.MAD,
	"and": isa.AND, "andi": isa.ANDI, "or": isa.OR, "xor": isa.XOR,
	"shl": isa.SHL, "shli": isa.SHLI, "shr": isa.SHR, "shri": isa.SHRI,
	"min": isa.MIN, "max": isa.MAX,
	"fadd": isa.FADD, "fsub": isa.FSUB, "fmul": isa.FMUL, "fdiv": isa.FDIV,
	"fma": isa.FMA, "fmin": isa.FMIN, "fmax": isa.FMAX,
	"fabs": isa.FABS, "fsqrt": isa.FSQRT, "i2f": isa.I2F, "f2i": isa.F2I,
	"sel": isa.SEL,
	"ld":  isa.LD, "st": isa.ST, "ldc": isa.LDC, "lds": isa.LDS, "sts": isa.STS,
	"bra": isa.BRA, "brp": isa.BRP, "bar": isa.BAR, "exit": isa.EXIT,
}

var cmpByName = map[string]isa.CmpOp{
	"eq": isa.CmpEQ, "ne": isa.CmpNE, "lt": isa.CmpLT, "le": isa.CmpLE,
	"gt": isa.CmpGT, "ge": isa.CmpGE,
	"flt": isa.CmpFLT, "fle": isa.CmpFLE, "fgt": isa.CmpFGT,
	"fge": isa.CmpFGE, "feq": isa.CmpFEQ,
}

// Error reports a parse failure with its 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// DeclaredParams returns the value of the .params directive in the source
// (0 if absent), without assembling the rest.
func DeclaredParams(src string) int {
	for _, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == ".params" {
			if v, err := strconv.Atoi(fields[1]); err == nil && v >= 0 {
				return v
			}
		}
	}
	return 0
}

// Parse assembles source text into a kernel. Runtime parameter values (array
// base addresses, scalars) are bound positionally to r4, r5, ...; their
// count must match the .params directive.
func Parse(src string, params ...uint64) (*kernel.Kernel, error) {
	name := "kernel"
	grid, block := 0, 0
	nparams := -1

	type pending struct {
		pc    int
		label string
		line  int
	}
	var code []isa.Instr
	labels := map[string]int{}
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		ln := lineNo + 1
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		// Directives.
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".kernel":
				if len(fields) != 2 {
					return nil, errf(ln, ".kernel takes one name")
				}
				name = fields[1]
			case ".grid", ".block", ".params":
				if len(fields) != 2 {
					return nil, errf(ln, "%s takes one integer", fields[0])
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 0 {
					return nil, errf(ln, "bad %s value %q", fields[0], fields[1])
				}
				switch fields[0] {
				case ".grid":
					grid = v
				case ".block":
					block = v
				case ".params":
					nparams = v
				}
			default:
				return nil, errf(ln, "unknown directive %s", fields[0])
			}
			continue
		}

		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, errf(ln, "bad label %q", label)
			}
			if _, dup := labels[label]; dup {
				return nil, errf(ln, "duplicate label %q", label)
			}
			labels[label] = len(code)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		in, labelRef, err := parseInstr(line, ln)
		if err != nil {
			return nil, err
		}
		if labelRef != "" {
			fixups = append(fixups, pending{pc: len(code), label: labelRef, line: ln})
		}
		code = append(code, in)
	}

	for _, f := range fixups {
		pc, ok := labels[f.label]
		if !ok {
			return nil, errf(f.line, "undefined label %q", f.label)
		}
		code[f.pc].Imm = int64(pc)
	}

	if nparams >= 0 && nparams != len(params) {
		return nil, fmt.Errorf("asm: kernel %s declares %d params, got %d values",
			name, nparams, len(params))
	}
	if grid == 0 || block == 0 {
		return nil, fmt.Errorf("asm: kernel %s needs .grid and .block directives", name)
	}

	k := &kernel.Kernel{Name: name, Code: code, GridDim: grid, BlockDim: block,
		Params: append([]uint64(nil), params...)}
	for _, in := range code {
		for _, r := range []isa.Reg{in.Dst, in.Src[0], in.Src[1], in.Src[2], in.Pred} {
			if int(r)+1 > k.RegsUsed {
				k.RegsUsed = int(r) + 1
			}
		}
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return k, nil
}

// parseInstr parses one instruction line; returns an unresolved label name
// if the branch target is symbolic.
func parseInstr(line string, ln int) (isa.Instr, string, error) {
	in := isa.New(isa.NOP)

	// Predicate prefix: @rN or @!rN.
	if strings.HasPrefix(line, "@") {
		rest := line[1:]
		neg := false
		if strings.HasPrefix(rest, "!") {
			neg = true
			rest = rest[1:]
		}
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return in, "", errf(ln, "predicate without instruction")
		}
		pr, err := parseReg(rest[:sp])
		if err != nil {
			return in, "", errf(ln, "bad predicate register %q", rest[:sp])
		}
		in.Pred, in.PredNeg = pr, neg
		line = strings.TrimSpace(rest[sp:])
	}

	sp := strings.IndexAny(line, " \t")
	mnemonic := line
	rest := ""
	if sp >= 0 {
		mnemonic = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	mnemonic = strings.ToLower(mnemonic)

	// setp.<cmp>
	if strings.HasPrefix(mnemonic, "setp.") {
		cmp, ok := cmpByName[strings.TrimPrefix(mnemonic, "setp.")]
		if !ok {
			return in, "", errf(ln, "unknown comparison %q", mnemonic)
		}
		in.Op, in.Cmp = isa.SETP, cmp
		ops, err := splitOperands(rest, 3, ln)
		if err != nil {
			return in, "", err
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
		if in.Src[0], err = parseReg(ops[1]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
		if in.Src[1], err = parseReg(ops[2]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
		return in, "", nil
	}

	op, ok := opsByName[mnemonic]
	if !ok {
		return in, "", errf(ln, "unknown mnemonic %q", mnemonic)
	}
	in.Op = op

	switch op {
	case isa.NOP, isa.BAR, isa.EXIT:
		if rest != "" {
			return in, "", errf(ln, "%s takes no operands", mnemonic)
		}
		return in, "", nil

	case isa.BRA:
		return parseBranchTarget(in, rest, ln)

	case isa.BRP:
		ops, err := splitOperands(rest, 2, ln)
		if err != nil {
			return in, "", err
		}
		if in.Src[0], err = parseReg(ops[0]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
		return parseBranchTarget(in, ops[1], ln)

	case isa.LD, isa.LDC, isa.LDS:
		ops, err := splitOperands(rest, 2, ln)
		if err != nil {
			return in, "", err
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
		addr, off, err := parseMemRef(ops[1], ln)
		if err != nil {
			return in, "", err
		}
		in.Src[0], in.Imm = addr, off
		return in, "", nil

	case isa.ST, isa.STS:
		ops, err := splitOperands(rest, 2, ln)
		if err != nil {
			return in, "", err
		}
		addr, off, err := parseMemRef(ops[0], ln)
		if err != nil {
			return in, "", err
		}
		in.Src[0], in.Imm = addr, off
		if in.Src[1], err = parseReg(ops[1]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
		return in, "", nil

	case isa.MOVI:
		ops, err := splitOperands(rest, 2, ln)
		if err != nil {
			return in, "", err
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
		if in.Imm, err = parseImm(ops[1]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
		return in, "", nil
	}

	// Register-form ALU ops; immediate forms read (dst, src, imm).
	nsrc := op.SrcCount()
	want := 1 + nsrc
	if op.HasImm() {
		want++
	}
	ops, err := splitOperands(rest, want, ln)
	if err != nil {
		return in, "", err
	}
	if in.Dst, err = parseReg(ops[0]); err != nil {
		return in, "", errf(ln, "%v", err)
	}
	for i := 0; i < nsrc; i++ {
		if in.Src[i], err = parseReg(ops[1+i]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
	}
	if op.HasImm() {
		if in.Imm, err = parseImm(ops[want-1]); err != nil {
			return in, "", errf(ln, "%v", err)
		}
	}
	return in, "", nil
}

func parseBranchTarget(in isa.Instr, tok string, ln int) (isa.Instr, string, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return in, "", errf(ln, "branch needs a target")
	}
	if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
		in.Imm = v
		return in, "", nil
	}
	if !isIdent(tok) {
		return in, "", errf(ln, "bad branch target %q", tok)
	}
	return in, tok, nil
}

func splitOperands(rest string, want int, ln int) ([]string, error) {
	if rest == "" {
		if want == 0 {
			return nil, nil
		}
		return nil, errf(ln, "expected %d operands, got none", want)
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return nil, errf(ln, "empty operand")
		}
	}
	if len(parts) != want {
		return nil, errf(ln, "expected %d operands, got %d", want, len(parts))
	}
	return parts, nil
}

func parseReg(tok string) (isa.Reg, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || (tok[0] != 'r' && tok[0] != 'R') {
		return isa.RNone, fmt.Errorf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return isa.RNone, fmt.Errorf("bad register %q", tok)
	}
	return isa.Reg(n), nil
}

func parseImm(tok string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return v, nil
}

// parseMemRef parses "[rN+off]" or "[rN-off]" or "[rN]".
func parseMemRef(tok string, ln int) (isa.Reg, int64, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return isa.RNone, 0, errf(ln, "bad memory operand %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	sign := int64(1)
	var regTok, offTok string
	if i := strings.IndexByte(inner, '+'); i >= 0 {
		regTok, offTok = inner[:i], inner[i+1:]
	} else if i := strings.IndexByte(inner, '-'); i > 0 {
		regTok, offTok = inner[:i], inner[i+1:]
		sign = -1
	} else {
		regTok = inner
	}
	r, err := parseReg(regTok)
	if err != nil {
		return isa.RNone, 0, errf(ln, "%v", err)
	}
	var off int64
	if offTok != "" {
		off, err = parseImm(offTok)
		if err != nil {
			return isa.RNone, 0, errf(ln, "%v", err)
		}
	}
	return r, sign * off, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Format renders a kernel as parseable assembly text, including the launch
// directives. Parse(Format(k), k.Params...) reproduces the kernel.
func Format(k *kernel.Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n.grid %d\n.block %d\n.params %d\n\n",
		k.Name, k.GridDim, k.BlockDim, len(k.Params))
	for _, in := range k.Code {
		b.WriteString("    ")
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}
