package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Speedups", "workload", "dyn", "cache")
	t.AddFloats("KMN", 1.267, 1.267)
	t.AddFloats("STN", 0.62, 1.02)
	t.AddRow("note", "x")
	return t
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Speedups", "workload", "KMN", "1.267", "0.620"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "workload,dyn,cache" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "KMN,1.267,1.267" {
		t.Fatalf("csv row = %q", lines[1])
	}
	// Short rows pad with empty cells.
	if lines[3] != "note,x," {
		t.Fatalf("padded row = %q", lines[3])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| workload | dyn | cache |") {
		t.Fatalf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Fatalf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "**Speedups**") {
		t.Fatalf("markdown title missing:\n%s", out)
	}
}

func TestRowsCount(t *testing.T) {
	if got := sample().Rows(); got != 3 {
		t.Fatalf("rows = %d", got)
	}
}

func TestOverlongRowTruncated(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("1", "2", "3", "4")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "3") {
		t.Fatal("overlong cells should be dropped")
	}
}
