package asm

import (
	"strings"
	"testing"

	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
)

const vaddSrc = `
; c[i] = a[i] + b[i]
.kernel vadd
.grid   4
.block  64
.params 3

    shli r16, r0, 2
    add  r17, r4, r16
    add  r18, r5, r16
    add  r19, r6, r16
    ld   r20, [r17+0]
    ld   r21, [r18+0]
    fadd r22, r20, r21
    st   [r19+0], r22
    exit
`

func TestParseVadd(t *testing.T) {
	k, err := Parse(vaddSrc, 0x1000, 0x2000, 0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "vadd" || k.GridDim != 4 || k.BlockDim != 64 {
		t.Fatalf("directives wrong: %+v", k)
	}
	if len(k.Code) != 9 {
		t.Fatalf("code len = %d", len(k.Code))
	}
	if k.Code[4].Op != isa.LD || k.Code[4].Dst != 20 || k.Code[4].Src[0] != 17 {
		t.Fatalf("ld parsed wrong: %+v", k.Code[4])
	}
	if k.Code[7].Op != isa.ST || k.Code[7].Src[1] != 22 {
		t.Fatalf("st parsed wrong: %+v", k.Code[7])
	}
	if k.RegsUsed != 23 {
		t.Fatalf("RegsUsed = %d, want 23", k.RegsUsed)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	src := `
.kernel loop
.grid 1
.block 32
.params 0
    movi r16, 4
top:
    addi r16, r16, -1
    movi r17, 0
    setp.gt r18, r16, r17
    brp r18, top
    bra done
done:
    exit
`
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[4].Op != isa.BRP || k.Code[4].Imm != 1 {
		t.Fatalf("brp target = %d, want 1", k.Code[4].Imm)
	}
	if k.Code[5].Op != isa.BRA || k.Code[5].Imm != 6 {
		t.Fatalf("bra target = %d, want 6", k.Code[5].Imm)
	}
}

func TestPredicates(t *testing.T) {
	src := `
.kernel pred
.grid 1
.block 32
.params 1
    andi r16, r0, 1
    @r16 ld r17, [r4+0]
    @!r16 movi r17, 0
    st [r4+0], r17
    exit
`
	k, err := Parse(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[1].Pred != 16 || k.Code[1].PredNeg {
		t.Fatalf("positive predicate wrong: %+v", k.Code[1])
	}
	if k.Code[2].Pred != 16 || !k.Code[2].PredNeg {
		t.Fatalf("negated predicate wrong: %+v", k.Code[2])
	}
}

func TestNegativeOffsetsAndHex(t *testing.T) {
	src := `
.kernel offs
.grid 1
.block 32
.params 1
    ld r16, [r4-4]
    movi r17, 0x10
    st [r4+0x20], r16
    exit
`
	k, err := Parse(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[0].Imm != -4 {
		t.Fatalf("negative offset = %d", k.Code[0].Imm)
	}
	if k.Code[1].Imm != 16 || k.Code[2].Imm != 32 {
		t.Fatalf("hex immediates wrong: %d %d", k.Code[1].Imm, k.Code[2].Imm)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown op", ".grid 1\n.block 32\nfrob r1, r2\nexit", "unknown mnemonic"},
		{"bad reg", ".grid 1\n.block 32\nmov r1, r99\nexit", "bad register"},
		{"missing operand", ".grid 1\n.block 32\nadd r1, r2\nexit", "expected 3 operands"},
		{"undefined label", ".grid 1\n.block 32\nbra nowhere\nexit", "undefined label"},
		{"dup label", ".grid 1\n.block 32\nx:\nx:\nexit", "duplicate label"},
		{"no grid", ".block 32\nexit", ".grid"},
		{"param mismatch", ".grid 1\n.block 32\n.params 2\nexit", "declares 2 params"},
		{"bad directive", ".frobnicate 3\nexit", "unknown directive"},
		{"bar operands", ".grid 1\n.block 32\nbar r1\nexit", "takes no operands"},
		{"ofld rejected", ".grid 1\n.block 32\nofld.beg blk0\nexit", "unknown mnemonic"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Parse(".grid 1\n.block 32\nmov r1, r2\nbogus r1\nexit")
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 4 {
		t.Fatalf("error line = %d, want 4", ae.Line)
	}
}

func TestRoundTrip(t *testing.T) {
	k1, err := Parse(vaddSrc, 0x1000, 0x2000, 0x3000)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(k1)
	k2, err := Parse(text, 0x1000, 0x2000, 0x3000)
	if err != nil {
		t.Fatalf("re-parse of formatted kernel failed: %v\n%s", err, text)
	}
	if len(k1.Code) != len(k2.Code) {
		t.Fatalf("round trip changed code length: %d vs %d", len(k1.Code), len(k2.Code))
	}
	for i := range k1.Code {
		if k1.Code[i] != k2.Code[i] {
			t.Fatalf("instr %d differs:\n  %v\n  %v", i, k1.Code[i], k2.Code[i])
		}
	}
}

func TestRoundTripBuilderKernels(t *testing.T) {
	// Build a kernel covering predication, setp variants, branches, and
	// memory ops with the builder, then round-trip through text.
	kb := kernel.NewBuilder()
	top := kb.NewLabel()
	kb.MovI(16, 3)
	kb.Bind(top)
	kb.OpImm(isa.SHLI, 17, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 18, kernel.RegParam0, 17)
	kb.Ld(19, 18, 0)
	kb.Ldc(20, kernel.RegParam0+1, 8)
	pc := kb.Op4(isa.FMA, 21, 19, 20, 19)
	kb.Predicate(pc, 16, true)
	kb.Setp(isa.CmpFLT, 22, 21, 19)
	kb.Op4(isa.SEL, 23, 21, 19, 22)
	kb.St(18, 4, 23)
	kb.OpImm(isa.ADDI, 16, 16, -1)
	kb.MovI(24, 0)
	kb.Setp(isa.CmpGT, 25, 16, 24)
	kb.Brp(25, top)
	kb.Exit()
	k1 := kb.MustBuild("mix", 2, 64, 0x1000, 0x2000)

	k2, err := Parse(Format(k1), k1.Params...)
	if err != nil {
		t.Fatalf("%v\n%s", err, Format(k1))
	}
	for i := range k1.Code {
		a, b := k1.Code[i], k2.Code[i]
		// BlockID defaults differ only if the analyzer ran; compare fields.
		a.BlockID, b.BlockID = 0, 0
		if a != b {
			t.Fatalf("instr %d differs:\n  %v\n  %v", i, k1.Code[i], k2.Code[i])
		}
	}
}

func TestRoundTripRandomKernels(t *testing.T) {
	// Property: Format -> Parse is the identity for arbitrary generated
	// kernels (predicates, setp variants, all memory spaces, branches).
	ops := []isa.Opcode{isa.FADD, isa.FMUL, isa.ADD, isa.XOR, isa.MIN, isa.SHL}
	for trial := 0; trial < 50; trial++ {
		rng := trialRNG(trial)
		kb := kernel.NewBuilder()
		var loop *kernel.Label
		if rng(2) == 0 {
			kb.MovI(16, 3)
			loop = kb.NewLabel()
			kb.Bind(loop)
		}
		n := 3 + rng(10)
		for i := 0; i < n; i++ {
			dst := isa.Reg(20 + rng(30))
			a := isa.Reg(4 + rng(20))
			b := isa.Reg(4 + rng(20))
			switch rng(6) {
			case 0:
				pc := kb.Op3(ops[rng(len(ops))], dst, a, b)
				if rng(3) == 0 {
					kb.Predicate(pc, isa.Reg(16+rng(4)), rng(2) == 0)
				}
			case 1:
				kb.Ld(dst, a, int64(4*rng(8)))
			case 2:
				kb.St(a, int64(4*rng(8)), b)
			case 3:
				kb.Ldc(dst, a, int64(4*rng(4)))
			case 4:
				kb.Setp([]isa.CmpOp{isa.CmpEQ, isa.CmpFLT, isa.CmpGE}[rng(3)], dst, a, b)
			case 5:
				kb.MovI(dst, int64(rng(1000)-500))
			}
		}
		if loop != nil {
			kb.OpImm(isa.ADDI, 16, 16, -1)
			kb.MovI(17, 0)
			kb.Setp(isa.CmpGT, 18, 16, 17)
			kb.Brp(18, loop)
		}
		kb.Exit()
		k1 := kb.MustBuild("rt", 1, 32, 1, 2, 3)
		k2, err := Parse(Format(k1), k1.Params...)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, Format(k1))
		}
		for i := range k1.Code {
			a, b := k1.Code[i], k2.Code[i]
			a.BlockID, b.BlockID = 0, 0
			if a != b {
				t.Fatalf("trial %d instr %d: %v != %v", trial, i, k1.Code[i], k2.Code[i])
			}
		}
	}
}

// trialRNG is a tiny deterministic generator for the round-trip property.
func trialRNG(seed int) func(n int) int {
	state := uint64(seed)*2654435761 + 12345
	return func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
}

func TestDeclaredParams(t *testing.T) {
	if got := DeclaredParams(".kernel k\n.params 5\nexit"); got != 5 {
		t.Fatalf("DeclaredParams = %d, want 5", got)
	}
	if got := DeclaredParams("exit"); got != 0 {
		t.Fatalf("absent .params = %d, want 0", got)
	}
	if got := DeclaredParams("; .params 9\n.params 2\nexit"); got != 2 {
		t.Fatalf("comment skipped wrongly: %d", got)
	}
}
