// Package hmc composes one memory stack: 16 vault controllers (package
// dram), the logic-layer router that dispatches arriving packets, and the
// stack's NSU. The logic layer implements the memory-side halves of the
// partitioned-execution protocol: RDF requests read DRAM and forward the
// touched words to the target NSU over the memory network; NSU writes are
// committed to DRAM, acknowledged to the issuing NSU, and trigger cache
// invalidations toward the GPU (§4.2).
package hmc

import (
	"fmt"

	"ndpgpu/internal/audit"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/dram"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/gpu"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
)

// NSUPort is the logic layer's view of the stack's NSU.
type NSUPort interface {
	Deliver(msg any, now timing.PS)
}

// HMC is one memory stack.
type HMC struct {
	ID  int
	cfg config.Config
	mem *vm.System
	fab *noc.Fabric
	out noc.Sender // defaults to fab; a shard outbox in parallel mode
	st  *stats.Stats
	nsu NSUPort

	vaults      []*dram.Vault
	overflow    []pendingReq // requests waiting for vault queue space
	overflowCap int          // backpressure threshold for the overflow queue
	flt         *fault.Injector

	// pendingReads merges concurrent reads of the same line (the logic
	// layer's MSHR-like read-combining): one DRAM access serves them all.
	pendingReads map[uint64][]func(at timing.PS)

	// onWork, when set, is called when work enters the stack outside its own
	// Tick (the local NSU submitting a write): the DRAM domain is
	// wake-scheduled and this stack's slot must be re-armed.
	onWork func(at timing.PS)
}

type pendingReq struct {
	vault int
	req   *dram.Request
}

// New builds a stack.
func New(id int, cfg config.Config, mem *vm.System, fab *noc.Fabric, st *stats.Stats) *HMC {
	h := &HMC{ID: id, cfg: cfg, mem: mem, fab: fab, out: fab, st: st,
		overflowCap:  cfg.HMC.EffOverflowCap(),
		pendingReads: make(map[uint64][]func(at timing.PS))}
	for v := 0; v < cfg.HMC.NumVaults; v++ {
		h.vaults = append(h.vaults, dram.NewVault(cfg.HMC))
	}
	return h
}

// SetNSU attaches the stack's NSU.
func (h *HMC) SetNSU(n NSUPort) { h.nsu = n }

// SetSender redirects the stack's outgoing fabric traffic (parallel mode:
// a per-shard outbox replayed at the commit barrier). The inbox is still
// read through the fabric directly — it is shard-local state.
func (h *HMC) SetSender(s noc.Sender) { h.out = s }

// SetStats swaps in a shard-private statistics bundle (parallel mode; folded
// into the run's bundle at finalization).
func (h *HMC) SetStats(st *stats.Stats) { h.st = st }

// SetFault attaches the fault injector (vault freezes).
func (h *HMC) SetFault(inj *fault.Injector) { h.flt = inj }

// SetWakeHook installs the out-of-tick work re-arm callback (wake
// scheduling).
func (h *HMC) SetWakeHook(f func(at timing.PS)) { h.onWork = f }

// EnableAudit attaches a DRAM bank-state auditor to every vault of this
// stack.
func (h *HMC) EnableAudit(a *audit.Auditor) {
	t := audit.DRAMTiming{
		TCKps: h.cfg.HMC.TCKps,
		TRCD:  h.cfg.HMC.TRCD,
		TRAS:  h.cfg.HMC.TRAS,
		TRP:   h.cfg.HMC.TRP,
		TCCD:  h.cfg.HMC.TCCD,
	}
	for i, v := range h.vaults {
		v.SetAudit(audit.NewVaultAudit(a, fmt.Sprintf("hmc%d/vault%d", h.ID, i), t, h.cfg.HMC.BanksPerVault))
	}
}

// Tick advances the stack by one DRAM clock: serve vaults, then dispatch
// arrived packets.
func (h *HMC) Tick(now timing.PS) {
	for i, v := range h.vaults {
		if h.flt != nil && h.flt.VaultFrozen(now, h.ID, i) {
			continue // frozen vault: requests queue but nothing is served
		}
		v.Tick(now)
	}
	h.retryOverflow()
	inbox := h.fab.HMCInbox(h.ID)
	for {
		if len(h.overflow) >= h.overflowCap {
			// Backpressure: stop draining the network inbox until the
			// overflow queue shrinks, instead of growing it without bound.
			if at, ok := inbox.NextAt(); ok && at <= now {
				h.st.HMCOverflowStall++
			}
			break
		}
		msg, ok := inbox.Pop(now)
		if !ok {
			break
		}
		h.dispatch(msg, now)
	}
}

func (h *HMC) retryOverflow() {
	kept := h.overflow[:0]
	for _, p := range h.overflow {
		if !h.vaults[p.vault].Enqueue(p.req) {
			kept = append(kept, p)
		}
	}
	h.overflow = kept
}

func (h *HMC) enqueue(vault int, req *dram.Request) {
	if !h.vaults[vault].Enqueue(req) {
		h.overflow = append(h.overflow, pendingReq{vault: vault, req: req})
		if n := int64(len(h.overflow)); n > h.st.HMCOverflowHWM {
			h.st.HMCOverflowHWM = n
		}
	}
}

// readLine schedules one line read, combining with an outstanding read of
// the same line if present.
func (h *HMC) readLine(line uint64, now timing.PS, done func(at timing.PS)) {
	if cbs, busy := h.pendingReads[line]; busy {
		h.pendingReads[line] = append(cbs, done)
		return
	}
	h.pendingReads[line] = []func(at timing.PS){done}
	loc := h.mem.Decode(line)
	h.enqueue(loc.Vault, &dram.Request{
		Line: line, Bank: loc.Bank, Row: loc.Row, Arrival: now,
		Done: func(at timing.PS) {
			cbs := h.pendingReads[line]
			delete(h.pendingReads, line)
			for _, cb := range cbs {
				cb(at)
			}
		},
	})
}

func (h *HMC) dispatch(msg any, now timing.PS) {
	switch m := msg.(type) {
	case *core.ReadReq:
		// Baseline line fetch for the GPU's L2.
		line := m.LineAddr
		h.readLine(line, now, func(at timing.PS) {
			h.st.AddTraffic(stats.IntraHMC, int64(h.cfg.LineBytes()))
			h.out.SendHMCToGPU(at, h.ID, core.ReadRespBytes(h.cfg.LineBytes()),
				&core.ReadResp{LineAddr: line})
		})

	case *core.WriteReq:
		// Baseline write-through store; no acknowledgment needed under the
		// GPU's relaxed consistency model.
		loc := h.mem.Decode(m.Access.LineAddr)
		h.st.AddTraffic(stats.IntraHMC, int64(m.Size()-core.HeaderBytes))
		h.enqueue(loc.Vault, &dram.Request{
			Line: m.Access.LineAddr, Bank: loc.Bank, Row: loc.Row,
			IsWrite: true, Arrival: now,
		})

	case *core.RDFPacket:
		// Read DRAM and forward the touched words to the target NSU
		// (Figure 6(a), steps 5-6).
		pkt := m
		h.readLine(m.Access.LineAddr, now, func(at timing.PS) {
			h.st.AddTraffic(stats.IntraHMC, int64(h.cfg.LineBytes()))
			resp := gpu.MakeRDFResp(h.mem, pkt)
			h.st.RDFRespPackets++
			if pkt.Target == h.ID {
				h.nsu.Deliver(resp, at)
			} else {
				h.out.SendHMCToHMC(at, h.ID, pkt.Target, resp.Size(), resp)
			}
		})

	case *core.RDFResp:
		// Arriving for the local NSU: either forwarded from another stack
		// or generated by the GPU on a cache hit.
		h.nsu.Deliver(m, now)

	case *core.CmdPacket, *core.WTAPacket, *core.RDFRef:
		h.nsu.Deliver(m, now)

	case *core.WritePacket:
		// An NSU (local or remote) writes this stack's DRAM: commit, ack
		// the writer, and invalidate the GPU's cached copy (§4.2).
		loc := h.mem.Decode(m.Access.LineAddr)
		pkt := m
		h.st.AddTraffic(stats.IntraHMC, int64(m.Size()-core.HeaderBytes))
		h.enqueue(loc.Vault, &dram.Request{
			Line: m.Access.LineAddr, Bank: loc.Bank, Row: loc.Row,
			IsWrite: true, Arrival: now,
			Done: func(at timing.PS) {
				ackMsg := &core.WriteAck{ID: pkt.ID, Tag: pkt.Tag, Seq: pkt.Seq}
				if pkt.Source == h.ID {
					h.nsu.Deliver(ackMsg, at)
				} else {
					h.out.SendHMCToHMC(at, h.ID, pkt.Source, ackMsg.Size(), ackMsg)
				}
				inval := &core.InvalPacket{LineAddr: pkt.Access.LineAddr, HomeHMC: h.ID}
				h.out.SendHMCToGPU(at, h.ID, inval.Size(), inval)
			},
		})

	case *core.WriteAck:
		h.nsu.Deliver(m, now)

	case *core.AckPacket:
		panic("hmc: offload ack routed to an HMC")

	default:
		panic(fmt.Sprintf("hmc: unexpected message %T", msg))
	}
}

// SubmitNSUWrite lets the local NSU write its own stack without a network
// traversal (implements nsu.WriteSubmitter).
func (h *HMC) SubmitNSUWrite(p *core.WritePacket, now timing.PS) {
	if h.onWork != nil {
		h.onWork(now)
	}
	h.dispatch(p, now)
}

// Busy reports whether any vault or the overflow queue has work.
func (h *HMC) Busy() bool {
	if len(h.overflow) > 0 || len(h.pendingReads) > 0 {
		return true
	}
	for _, v := range h.vaults {
		if !v.Idle() {
			return true
		}
	}
	return false
}

// NextWorkAt implements timing.IdleHint: the stack can do work now if any
// vault has due work or the overflow queue is non-empty; otherwise it wakes
// at the earliest vault command/completion/refresh edge or packet arrival.
// Fault-free runs use the per-bank sharp hint, which parks the stack across
// pure DRAM-timing waits even with requests queued (SkipIdle's edge ledger
// keeps BusyCycles exact over the parked stretch). Fault runs keep the
// coarse queue-presence hint: a frozen vault is skipped by Tick and records
// nothing densely, which the ledger's queue test would misrepresent.
// pendingReads entries always have a backing request in a vault queue or the
// overflow, so they need no separate term.
func (h *HMC) NextWorkAt(now timing.PS) timing.PS {
	if len(h.overflow) > 0 {
		return now
	}
	wake := timing.Never
	sharp := h.flt == nil
	for _, v := range h.vaults {
		var w timing.PS
		if sharp {
			w = v.NextWorkSharp(now)
		} else {
			w = v.NextWorkAt(now)
		}
		if w <= now {
			return now
		}
		if w < wake {
			wake = w
		}
	}
	if at, ok := h.fab.HMCInbox(h.ID).NextAt(); ok {
		if at <= now {
			return now
		}
		if at < wake {
			wake = at
		}
	}
	return wake
}

// SkipIdle implements timing.IdleSkipper: credit n elided DRAM edges to
// every vault's edge ledger (settled lazily against each vault's queue
// state).
func (h *HMC) SkipIdle(n int64) {
	for _, v := range h.vaults {
		v.SkipIdle(n)
	}
}

// VaultStats aggregates DRAM counters across vaults.
func (h *HMC) VaultStats() dram.VaultStats {
	var agg dram.VaultStats
	for _, v := range h.vaults {
		s := v.Stats
		agg.Reads += s.Reads
		agg.Writes += s.Writes
		agg.Activations += s.Activations
		agg.RowHits += s.RowHits
		agg.Precharges += s.Precharges
		agg.QueueFullRejects += s.QueueFullRejects
		agg.Refreshes += s.Refreshes
		// Fold the unsettled edge-ledger gap computationally: VaultStats
		// backs metrics probes, which must stay side-effect free.
		agg.BusyCycles += v.BusyCyclesNow()
	}
	return agg
}

// NumVaults returns the stack's vault count (the busy-fraction denominator).
func (h *HMC) NumVaults() int { return len(h.vaults) }

// QueueDepth returns the stack's total backlog: requests queued or in flight
// at every vault plus entries in the retry-overflow queue. A metrics gauge;
// side-effect free.
func (h *HMC) QueueDepth() int {
	d := len(h.overflow)
	for _, v := range h.vaults {
		d += v.Pending()
	}
	return d
}
