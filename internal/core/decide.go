package core

import (
	"math"
	"math/rand"

	"ndpgpu/internal/config"
)

// Decider chooses, per offload-block instance, whether to offload it.
type Decider interface {
	// Decide is called once per dynamic block instance.
	Decide(blockID int) bool
	// EpochTick is called at each epoch boundary with the number of
	// offload-region instructions committed during the epoch (the
	// throughput metric of §7.2).
	EpochTick(regionInstrs int64)
	// Ratio returns the current offload ratio (diagnostic).
	Ratio() float64
}

// Never offloads nothing: the baseline.
type Never struct{}

// Decide implements Decider.
func (Never) Decide(int) bool { return false }

// EpochTick implements Decider.
func (Never) EpochTick(int64) {}

// Ratio implements Decider.
func (Never) Ratio() float64 { return 0 }

// Always offloads everything: the naive mechanism of §6.
type Always struct{}

// Decide implements Decider.
func (Always) Decide(int) bool { return true }

// EpochTick implements Decider.
func (Always) EpochTick(int64) {}

// Ratio implements Decider.
func (Always) Ratio() float64 { return 1 }

// StaticRatio offloads a fixed random fraction of block instances (§7.1).
type StaticRatio struct {
	P   float64
	rng *rand.Rand
}

// NewStaticRatio builds a static-ratio decider with its own seeded RNG.
func NewStaticRatio(p float64, seed int64) *StaticRatio {
	return &StaticRatio{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Decide implements Decider.
func (s *StaticRatio) Decide(int) bool { return s.rng.Float64() < s.P }

// EpochTick implements Decider.
func (s *StaticRatio) EpochTick(int64) {}

// Ratio implements Decider.
func (s *StaticRatio) Ratio() float64 { return s.P }

// Dynamic implements Algorithm 1: an epoch-based hill-climbing controller
// with adaptive step size. If throughput fell since the previous epoch the
// direction of ratio movement reverses; a history window of direction
// changes shrinks the step when the controller oscillates around the
// optimum and grows it when progress is monotonic.
type Dynamic struct {
	cfg config.NDPConfig
	rng *rand.Rand

	ratio float64
	// The step is tracked in integer multiples of StepUnit so repeated
	// grow/shrink cycles can never drift off the grid.
	stepUnits          int
	minUnits, maxUnits int
	dir                float64
	prevIPC            float64
	first              bool
	history            []bool // true = direction changed that epoch

	// Trace records the ratio after every epoch, for reporting.
	Trace []float64
}

// NewDynamic builds the controller with the paper's constants from cfg.
func NewDynamic(cfg config.NDPConfig, seed int64) *Dynamic {
	toUnits := func(v float64) int { return int(math.Round(v / cfg.StepUnit)) }
	return &Dynamic{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		ratio:     cfg.InitRatio,
		stepUnits: toUnits(cfg.MaxStep), // init: Step_cur <- Step_max
		minUnits:  toUnits(cfg.MinStep),
		maxUnits:  toUnits(cfg.MaxStep),
		dir:       1,
		first:     true,
	}
}

// Step returns the current step size.
func (d *Dynamic) Step() float64 { return float64(d.stepUnits) * d.cfg.StepUnit }

// Decide implements Decider.
func (d *Dynamic) Decide(int) bool { return d.rng.Float64() < d.ratio }

// Ratio implements Decider.
func (d *Dynamic) Ratio() float64 { return d.ratio }

// EpochTick implements Decider; regionInstrs is the epoch's offload-region
// instruction throughput.
func (d *Dynamic) EpochTick(regionInstrs int64) {
	ipc := float64(regionInstrs)
	if d.first {
		// "At the end of each epoch except for the first": just record.
		d.first = false
		d.prevIPC = ipc
		d.move()
		d.Trace = append(d.Trace, d.ratio)
		return
	}
	changed := false
	if ipc < d.prevIPC {
		d.dir = -d.dir
		changed = true
	}
	d.history = append(d.history, changed)
	if len(d.history) > d.cfg.WindowSize {
		d.history = d.history[1:]
	}
	nChanges := 0
	for _, c := range d.history {
		if c {
			nChanges++
		}
	}
	if nChanges > d.cfg.WindowSize/2 && d.minUnits < d.stepUnits {
		d.stepUnits--
	} else if d.stepUnits < d.maxUnits {
		d.stepUnits++
	}
	d.prevIPC = ipc
	d.move()
	d.Trace = append(d.Trace, d.ratio)
}

// move applies ratio += dir*step, clamped so the ratio stays inside
// [StepUnit, 1-StepUnit] as in Algorithm 1's guard.
func (d *Dynamic) move() {
	next := d.ratio + d.dir*d.Step()
	lo, hi := d.cfg.StepUnit, 1-d.cfg.StepUnit
	if next < lo {
		next = lo
	}
	if next > hi {
		next = hi
	}
	d.ratio = next
}

// BlockInfo is the static per-block information the cache-aware decider
// needs (produced by the analyzer).
type BlockInfo struct {
	NumLD, NumST    int
	RegsIn, RegsOut int
	Indirect        bool
}

// CacheAware wraps another decider with the §7.3 cache-locality filter
// (indirect gather blocks are profiled like any other: if their lines turn
// out to live in the GPU caches, offloading them ships cached data). It
// accumulates, per block, the coalesced line accesses of its loads, the GPU
// cache hits among them, and the words each line transfer would carry, and
// suppresses offloading when the benefit no longer covers the costs. The
// paper's equation,
//
//	Benefit = ceil(AvgNumCacheLines x AvgCacheMissRate) x CacheLineSize x SIMDWidth
//	        + NumStoreInsts x WordSize x SIMDWidth
//
// is used in per-warp-consistent units and extended with two measured cost
// terms the original omits: the forwarding traffic of cache-HIT lines (each
// still ships its touched words from the GPU to the NSU — the §7.1 BPROP
// pathology) and the measured command/acknowledgment register payloads
// (predicated blocks transfer far fewer bytes than the static bound).
type CacheAware struct {
	Inner Decider

	lineBytes int
	blocks    []BlockInfo
	lines     []int64 // accumulated line accesses per block
	hits      []int64 // accumulated GPU cache hits per block
	words     []int64 // accumulated touched words across those lines
	instances []int64
	xferBytes []int64 // measured register-transfer payloads (offloaded runs)
	xferCount []int64

	// MinSamples is how many profiled instances are needed before the
	// filter engages; below it, the wrapped decider rules alone.
	MinSamples int64

	Suppressed int64 // block instances suppressed by the filter
}

// NewCacheAware wraps inner with the cache-locality filter.
func NewCacheAware(inner Decider, blocks []BlockInfo, lineBytes int) *CacheAware {
	n := len(blocks)
	return &CacheAware{
		Inner:      inner,
		lineBytes:  lineBytes,
		blocks:     blocks,
		lines:      make([]int64, n),
		hits:       make([]int64, n),
		words:      make([]int64, n),
		instances:  make([]int64, n),
		xferBytes:  make([]int64, n),
		xferCount:  make([]int64, n),
		MinSamples: 8,
	}
}

// RecordLine accumulates one coalesced line access of the block's loads:
// whether the probe hit in the GPU caches, and how many words of the line
// the warp touched (the payload an RDF response would carry). Profiles are
// gathered in both execution modes so a suppressed block keeps being
// re-evaluated.
func (c *CacheAware) RecordLine(blockID int, hit bool, touchedWords int) {
	c.lines[blockID]++
	c.words[blockID] += int64(touchedWords)
	if hit {
		c.hits[blockID]++
	}
}

// RecordInstance counts one completed dynamic instance of the block, the
// denominator of AvgNumCacheLines.
func (c *CacheAware) RecordInstance(blockID int) { c.instances[blockID]++ }

// RecordTransfer accumulates the measured register-transfer payload (command
// plus acknowledgment) of one offloaded instance. Predicated blocks transfer
// far fewer bytes than the static regs x warp-width bound, so measured
// values replace the static estimate once available.
func (c *CacheAware) RecordTransfer(blockID int, bytes int) {
	c.xferBytes[blockID] += int64(bytes)
	c.xferCount[blockID]++
}

// RecordAccess is a convenience combining RecordLine and RecordInstance for
// one whole instance observed at once, assuming fully-touched lines.
func (c *CacheAware) RecordAccess(blockID int, lines, hits int) {
	c.lines[blockID] += int64(lines)
	c.hits[blockID] += int64(hits)
	c.words[blockID] += int64(lines) * WarpWidth
	c.instances[blockID]++
}

// ProfileShard buffers a shard's profile records during a parallel compute
// phase. Folding a shard into the base arrays is an add-and-zero, so records
// are never lost or double-counted; the dirty flag makes the common empty
// fold O(1).
type ProfileShard struct {
	parent    *CacheAware
	lines     []int64
	hits      []int64
	words     []int64
	instances []int64
	xferBytes []int64
	xferCount []int64
	dirty     bool
}

// NewShard returns an empty profile buffer sized to the decider's block set.
func (c *CacheAware) NewShard() *ProfileShard {
	n := len(c.blocks)
	return &ProfileShard{
		parent:    c,
		lines:     make([]int64, n),
		hits:      make([]int64, n),
		words:     make([]int64, n),
		instances: make([]int64, n),
		xferBytes: make([]int64, n),
		xferCount: make([]int64, n),
	}
}

// RecordLine mirrors CacheAware.RecordLine into the shard buffer.
func (p *ProfileShard) RecordLine(blockID int, hit bool, touchedWords int) {
	p.lines[blockID]++
	p.words[blockID] += int64(touchedWords)
	if hit {
		p.hits[blockID]++
	}
	p.dirty = true
}

// RecordInstance mirrors CacheAware.RecordInstance into the shard buffer.
func (p *ProfileShard) RecordInstance(blockID int) {
	p.instances[blockID]++
	p.dirty = true
}

// RecordTransfer mirrors CacheAware.RecordTransfer into the shard buffer.
func (p *ProfileShard) RecordTransfer(blockID int, bytes int) {
	p.xferBytes[blockID] += int64(bytes)
	p.xferCount[blockID]++
	p.dirty = true
}

// FoldShard adds the shard buffer into the decider's base profile and zeroes
// it. Callers serialize folds (the GPU folds shards 0..k under its sequencer
// before shard k's Decide, and the remainder at the end of its tick), which
// reproduces exactly the profile state serial execution would present to
// each Decide call.
func (c *CacheAware) FoldShard(p *ProfileShard) {
	if !p.dirty {
		return
	}
	for i := range p.lines {
		c.lines[i] += p.lines[i]
		c.hits[i] += p.hits[i]
		c.words[i] += p.words[i]
		c.instances[i] += p.instances[i]
		c.xferBytes[i] += p.xferBytes[i]
		c.xferCount[i] += p.xferCount[i]
		p.lines[i], p.hits[i], p.words[i] = 0, 0, 0
		p.instances[i], p.xferBytes[i], p.xferCount[i] = 0, 0, 0
	}
	p.dirty = false
}

// Profile returns the accumulated line/hit/instance counts for a block
// (diagnostics and tests).
func (c *CacheAware) Profile(blockID int) (lines, hits, instances int64) {
	return c.lines[blockID], c.hits[blockID], c.instances[blockID]
}

// Decide implements Decider.
func (c *CacheAware) Decide(blockID int) bool {
	b := c.blocks[blockID]
	if c.instances[blockID] >= c.MinSamples && c.lines[blockID] > 0 {
		avgLines := float64(c.lines[blockID]) / float64(c.instances[blockID])
		hitRate := float64(c.hits[blockID]) / float64(c.lines[blockID])
		missRate := 1 - hitRate
		wordsPerLine := float64(c.words[blockID]) / float64(c.lines[blockID])
		// The paper's equation multiplies the line term by SIMDWidth too;
		// dimensionally that mixes per-line and per-thread units (a missing
		// line costs one CacheLineSize fetch for the whole warp), so we use
		// the per-warp-consistent form. We also extend it with the cost the
		// paper's form omits: every cache-HIT line still ships its touched
		// words from the GPU to the NSU (the §7.1 BPROP pathology), so that
		// forwarding traffic counts against the benefit. See EXPERIMENTS.md.
		benefit := math.Ceil(avgLines*missRate)*float64(c.lineBytes) +
			float64(b.NumST)*WordBytes*WarpWidth
		shipCost := avgLines * hitRate * (HeaderBytes + wordsPerLine*WordBytes)
		overhead := float64(b.RegsIn+b.RegsOut) * WordBytes * WarpWidth
		if c.xferCount[blockID] > 0 {
			overhead = float64(c.xferBytes[blockID]) / float64(c.xferCount[blockID])
		}
		if benefit-shipCost-overhead <= 0 {
			c.Suppressed++
			return false
		}
	}
	return c.Inner.Decide(blockID)
}

// EpochTick implements Decider.
func (c *CacheAware) EpochTick(regionInstrs int64) { c.Inner.EpochTick(regionInstrs) }

// Ratio implements Decider.
func (c *CacheAware) Ratio() float64 { return c.Inner.Ratio() }
