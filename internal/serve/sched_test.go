package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubSim is the stub-simulator seam the conformance and load suites drive:
// it records executions per key, optionally blocks on a gate, sleeps a
// configurable "simulation" cost, and returns a deterministic digest.
type stubSim struct {
	mu    sync.Mutex
	execs map[string]int
	order []string // keys in execution-start order

	gate  chan struct{} // nil: run immediately; else block until closed
	delay time.Duration
	fail  map[string]bool // keys that must error
}

func newStubSim(delay time.Duration) *stubSim {
	return &stubSim{execs: map[string]int{}, delay: delay, fail: map[string]bool{}}
}

func (s *stubSim) runner() Runner {
	return func(rc *RunCtx, req *Request, progress func(Progress)) (*Outcome, error) {
		s.mu.Lock()
		s.execs[req.Key]++
		s.order = append(s.order, req.Key)
		gate := s.gate
		s.mu.Unlock()
		if gate != nil {
			<-gate
		}
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		if progress != nil {
			progress(Progress{Cycles: 4000, TimePS: 42})
		}
		s.mu.Lock()
		failed := s.fail[req.Key]
		s.mu.Unlock()
		if failed {
			return nil, errors.New("stub: injected failure")
		}
		return &Outcome{
			Digest: map[string]float64{"Key": float64(len(req.Key)), "TimePS": 42},
			TimePS: 42,
			Wall:   s.delay,
		}, nil
	}
}

func (s *stubSim) execCount(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execs[key]
}

func (s *stubSim) totalExecs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.execs {
		n += c
	}
	return n
}

// reqFor builds a canonical request for key diversity: seed drives the key.
func reqFor(t testing.TB, workload string, seed int64, client string) *Request {
	t.Helper()
	req, err := Canonicalize(&RunRequest{Workload: workload, Mode: "dyn", Seed: seed, Client: client})
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// waitSnapshot polls the scheduler until cond holds (or times out).
func waitSnapshot(t testing.TB, s *Scheduler, what string, cond func(Counters) bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond(s.Snapshot()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; snapshot %+v", what, s.Snapshot())
}

func TestSchedulerCacheHitMiss(t *testing.T) {
	stub := newStubSim(10 * time.Millisecond)
	s := New(Options{Workers: 2, QueueCap: 16, Runner: stub.runner()})
	defer s.Shutdown()
	req := reqFor(t, "VADD", 1, "c")

	first, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Coalesced {
		t.Fatalf("first submission should be a miss: %+v", first)
	}
	second, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second submission should be a cache hit")
	}
	if second.Outcome != first.Outcome {
		t.Fatal("cache hit returned a different outcome object")
	}
	if got := stub.execCount(req.Key); got != 1 {
		t.Fatalf("key executed %d times, want 1", got)
	}
	snap := s.Snapshot()
	if snap.CacheHits != 1 || snap.Executed != 1 {
		t.Fatalf("counters: %+v", snap)
	}
}

func TestSchedulerCoalescing(t *testing.T) {
	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	s := New(Options{Workers: 2, QueueCap: 64, Runner: stub.runner()})
	defer s.Shutdown()
	req := reqFor(t, "VADD", 2, "c")

	const dup = 16
	results := make(chan Served, dup)
	for i := 0; i < dup; i++ {
		go func() {
			served, err := s.Submit(context.Background(), req)
			if err != nil {
				t.Error(err)
			}
			results <- served
		}()
	}
	// All 16 must be in flight on one execution before we open the gate.
	waitSnapshot(t, s, "16 in flight", func(c Counters) bool { return c.InFlight == dup })
	if got := stub.execCount(req.Key); got != 1 {
		t.Fatalf("started %d executions for one key", got)
	}
	close(stub.gate)

	var coalesced int
	var out *Outcome
	for i := 0; i < dup; i++ {
		served := <-results
		if served.Cached {
			t.Fatal("no submission should see the cache: all were concurrent")
		}
		if served.Coalesced {
			coalesced++
		}
		if out == nil {
			out = served.Outcome
		} else if served.Outcome != out {
			t.Fatal("coalesced submissions got different outcomes")
		}
	}
	if coalesced != dup-1 {
		t.Fatalf("%d coalesced, want %d", coalesced, dup-1)
	}
	if got := stub.execCount(req.Key); got != 1 {
		t.Fatalf("key executed %d times, want exactly once", got)
	}
}

// TestSchedulerFairness: with one worker busy and client A's queue deep,
// client B's first request runs next (round-robin), not after A's backlog.
func TestSchedulerFairness(t *testing.T) {
	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	s := New(Options{Workers: 1, QueueCap: 64, Runner: stub.runner()})
	defer s.Shutdown()

	var wg sync.WaitGroup
	submit := func(req *Request) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), req); err != nil {
				t.Error(err)
			}
		}()
	}

	a0 := reqFor(t, "VADD", 10, "alice")
	submit(a0)
	// a0 must be running (holding the only worker) before the backlog forms.
	waitSnapshot(t, s, "a0 running", func(c Counters) bool { return c.Running == 1 })
	var aliceBacklog []*Request
	for i := int64(11); i < 16; i++ {
		r := reqFor(t, "VADD", i, "alice")
		aliceBacklog = append(aliceBacklog, r)
		submit(r)
	}
	waitSnapshot(t, s, "alice backlog queued", func(c Counters) bool { return c.Queued == 5 })
	b0 := reqFor(t, "VADD", 20, "bob")
	submit(b0)
	waitSnapshot(t, s, "bob queued", func(c Counters) bool { return c.Queued == 6 })

	close(stub.gate)
	wg.Wait()

	stub.mu.Lock()
	order := append([]string(nil), stub.order...)
	stub.mu.Unlock()
	if len(order) != 7 {
		t.Fatalf("executed %d runs, want 7", len(order))
	}
	if order[0] != a0.Key {
		t.Fatalf("first execution was not a0")
	}
	// Round-robin: alice takes one more turn, then bob — NOT after alice's
	// whole backlog (a plain FIFO would run bob last, at position 6).
	if got := indexOf(order, b0.Key); got != 2 {
		t.Fatalf("bob's request ran at position %d, want 2 (round-robin)", got)
	}
	_ = aliceBacklog
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}

func TestSchedulerBackpressure(t *testing.T) {
	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	s := New(Options{Workers: 1, QueueCap: 4, Runner: stub.runner(), RetryAfter: 2 * time.Second})
	defer s.Shutdown()

	var wg sync.WaitGroup
	var accepted atomic.Int64
	submit := func(seed int64) {
		req := reqFor(t, "VADD", seed, "c")
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), req); err != nil {
				t.Error(err)
			} else {
				accepted.Add(1)
			}
		}()
	}
	// Occupy the single worker first, then fill the queue to its cap of 4 —
	// sequencing these keeps each admission's queue-depth check deterministic.
	submit(100)
	waitSnapshot(t, s, "worker busy", func(c Counters) bool { return c.Running == 1 })
	for i := int64(1); i <= 4; i++ {
		submit(100 + i)
	}
	waitSnapshot(t, s, "queue full", func(c Counters) bool { return c.Queued == 4 && c.Running == 1 })

	if _, err := s.Submit(context.Background(), reqFor(t, "VADD", 200, "c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-cap submit: got %v, want ErrQueueFull", err)
	}
	if s.RetryAfter() != 2*time.Second {
		t.Fatalf("RetryAfter = %v", s.RetryAfter())
	}
	// A duplicate of an in-flight key coalesces even when the queue is full:
	// it consumes no queue slot.
	dupDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), reqFor(t, "VADD", 100, "c"))
		dupDone <- err
	}()

	close(stub.gate)
	wg.Wait()
	if err := <-dupDone; err != nil {
		t.Fatalf("coalesced duplicate rejected during backpressure: %v", err)
	}
	// Every acknowledged request completed.
	if got := accepted.Load(); got != 5 {
		t.Fatalf("%d acknowledged requests completed, want 5", got)
	}
	snap := s.Snapshot()
	if snap.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Rejected)
	}
	if snap.MaxQueued > 4 {
		t.Fatalf("queue depth %d exceeded cap 4", snap.MaxQueued)
	}
}

func TestSchedulerErrorNotMemoized(t *testing.T) {
	stub := newStubSim(0)
	s := New(Options{Workers: 1, QueueCap: 8, Runner: stub.runner()})
	defer s.Shutdown()
	req := reqFor(t, "VADD", 3, "c")
	stub.fail[req.Key] = true

	if _, err := s.Submit(context.Background(), req); err == nil {
		t.Fatal("failing run returned no error")
	}
	stub.mu.Lock()
	stub.fail[req.Key] = false
	stub.mu.Unlock()
	served, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if served.Cached {
		t.Fatal("failure was memoized")
	}
	if got := stub.execCount(req.Key); got != 2 {
		t.Fatalf("executed %d times, want 2 (failure is retriable)", got)
	}
}

func TestSchedulerCanceledWaiterStillCompletes(t *testing.T) {
	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	s := New(Options{Workers: 1, QueueCap: 8, Runner: stub.runner()})
	defer s.Shutdown()
	req := reqFor(t, "VADD", 4, "c")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, req)
		errCh <- err
	}()
	waitSnapshot(t, s, "running", func(c Counters) bool { return c.Running == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v", err)
	}
	close(stub.gate)
	// The abandoned execution still completes and seeds the cache.
	waitSnapshot(t, s, "cache seeded", func(c Counters) bool { return c.CacheEntries == 1 })
	served, err := s.Submit(context.Background(), req)
	if err != nil || !served.Cached {
		t.Fatalf("post-cancel submit: cached=%v err=%v", served.Cached, err)
	}
	if got := stub.execCount(req.Key); got != 1 {
		t.Fatalf("executed %d times, want 1", got)
	}
}

// TestServeShutdownDrains: SIGTERM semantics at the scheduler layer — with
// work queued behind a blocked worker, Shutdown must complete every
// acknowledged request, answer every waiter, and reject new submissions.
func TestServeShutdownDrains(t *testing.T) {
	stub := newStubSim(time.Millisecond)
	stub.gate = make(chan struct{})
	s := New(Options{Workers: 2, QueueCap: 64, Runner: stub.runner()})

	const n = 20
	var wg sync.WaitGroup
	var completions atomic.Int64
	for i := int64(0); i < n; i++ {
		req := reqFor(t, "VADD", 300+i, fmt.Sprintf("client%d", i%4))
		wg.Add(1)
		go func() {
			defer wg.Done()
			served, err := s.Submit(context.Background(), req)
			if err != nil {
				t.Errorf("acknowledged request dropped at shutdown: %v", err)
				return
			}
			if served.Outcome == nil {
				t.Error("nil outcome")
			}
			completions.Add(1)
		}()
	}
	waitSnapshot(t, s, "all acknowledged", func(c Counters) bool { return c.InFlight == n })

	shutdownDone := make(chan struct{})
	go func() {
		s.Shutdown()
		close(shutdownDone)
	}()
	// Admission must close promptly, while the drain is still in progress.
	// The probe duplicates an in-flight key so a probe that races ahead of
	// Shutdown coalesces (and times out) instead of admitting a new entry;
	// once closed is set it fails fast with ErrShuttingDown.
	waitSnapshot(t, s, "admission closed", func(Counters) bool {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		_, err := s.Submit(ctx, reqFor(t, "VADD", 300, "probe"))
		return errors.Is(err, ErrShuttingDown)
	})
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while work was still gated")
	default:
	}
	close(stub.gate)
	<-shutdownDone
	wg.Wait()

	if got := completions.Load(); got != n {
		t.Fatalf("%d/%d acknowledged requests completed across shutdown", got, n)
	}
	if got := stub.totalExecs(); got != n {
		t.Fatalf("executed %d runs, want %d (unique keys, no double executions)", got, n)
	}
}

// TestSchedulerStressExactlyOnce is the concurrency stress leg: many clients
// x duplicated keys x mixed fault schedules, under the race detector via
// `make serve-test`. Every unique key simulates exactly once; every
// submission completes exactly once.
func TestSchedulerStressExactlyOnce(t *testing.T) {
	uniques, dups, clients := 48, 6, 8
	if testing.Short() {
		uniques, dups, clients = 24, 4, 4
	}
	stub := newStubSim(500 * time.Microsecond)
	s := New(Options{Workers: 8, QueueCap: uniques * dups, Runner: stub.runner()})
	defer s.Shutdown()

	// Mixed fault schedules and seeds spread the key space across every
	// canonicalization path.
	faults := []string{
		"",
		"drop:p=0.01;seed=3",
		"linkdown:t=2000000:hmc=0:dim=1",
		"vaultfreeze:t=1000000:hmc=1:vault=5:dur=6000000;timeout=2000;retries=3",
	}
	reqs := make([]*Request, uniques)
	for i := range reqs {
		req, err := Canonicalize(&RunRequest{
			Workload: "VADD",
			Mode:     []string{"baseline", "naive", "dyn"}[i%3],
			Seed:     int64(i / 3),
			Faults:   faults[i%len(faults)],
		})
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = req
	}

	var wg sync.WaitGroup
	var completions, failures atomic.Int64
	for c := 0; c < clients; c++ {
		client := fmt.Sprintf("client%d", c)
		for d := 0; d < dups; d++ {
			for i := range reqs {
				req := *reqs[i]
				req.Client = client
				wg.Add(1)
				go func() {
					defer wg.Done()
					served, err := s.Submit(context.Background(), &req)
					if err != nil || served.Outcome == nil {
						failures.Add(1)
						return
					}
					completions.Add(1)
				}()
			}
		}
	}
	wg.Wait()

	want := int64(uniques * dups * clients)
	if failures.Load() != 0 || completions.Load() != want {
		t.Fatalf("completions %d / failures %d, want %d / 0",
			completions.Load(), failures.Load(), want)
	}
	for _, req := range reqs {
		if got := stub.execCount(req.Key); got != 1 {
			t.Fatalf("key %s executed %d times, want exactly once", req.Key[:8], got)
		}
	}
	if got := stub.totalExecs(); got != uniques {
		t.Fatalf("total executions %d, want %d", got, uniques)
	}
	snap := s.Snapshot()
	if snap.Executed != int64(uniques) {
		t.Fatalf("Executed = %d, want %d", snap.Executed, uniques)
	}
	if snap.CacheHits+snap.Coalesced != want-int64(uniques) {
		t.Fatalf("hits %d + coalesced %d != %d duplicates",
			snap.CacheHits, snap.Coalesced, want-int64(uniques))
	}
}
