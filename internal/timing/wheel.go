package timing

// Wheel is a wake-time calendar for a fixed set of scheduled components: one
// absolute picosecond wake slot per component plus a cached minimum, so the
// engine's "who is due at this edge" question is a slot compare and the
// "when is the earliest work" question is O(1) between re-arms. The sets it
// tracks are small (a domain's tickers, a stack's vaults), so the lazy rescan
// on a min invalidation beats a bucketed calendar queue; hierarchy comes from
// nesting wheels (engine over components, a stack over its vaults) rather
// than from multi-level buckets. All operations are allocation-free after
// construction.
type Wheel struct {
	at    []PS
	min   PS // exact minimum when !dirty; meaningless while dirty
	dirty bool
}

// NewWheel returns an empty wheel (Min reports Never).
func NewWheel() *Wheel { return &Wheel{min: Never} }

// Add appends a slot armed at `at` and returns its index.
func (w *Wheel) Add(at PS) int {
	w.at = append(w.at, at)
	if at < w.min {
		w.min = at
	}
	return len(w.at) - 1
}

// Len returns the number of slots.
func (w *Wheel) Len() int { return len(w.at) }

// At returns slot i's current wake time.
func (w *Wheel) At(i int) PS { return w.at[i] }

// Arm sets slot i's wake time to `at`, earlier or later than the current
// value. Arming later than the cached minimum marks the minimum for a lazy
// rescan; arming earlier updates it in place.
func (w *Wheel) Arm(i int, at PS) {
	old := w.at[i]
	if at == old {
		return
	}
	w.at[i] = at
	if at > old {
		if !w.dirty && old <= w.min {
			w.dirty = true
		}
		return
	}
	if at < w.min {
		w.min = at
	}
}

// Wake arms slot i at `at` only if that is earlier than its current wake —
// the monotone re-arm an external event (packet arrival, credit return,
// offload ack) performs. A wake in the past simply makes the slot due at the
// next edge; waking a Never slot re-parks it at the event time.
func (w *Wheel) Wake(i int, at PS) {
	if at < w.at[i] {
		w.Arm(i, at)
	}
}

// Min returns the earliest wake time across all slots (Never when the wheel
// is empty or fully drained), rescanning only if a slot was re-armed later
// since the last call.
func (w *Wheel) Min() PS {
	if w.dirty {
		m := Never
		for _, t := range w.at {
			if t < m {
				m = t
			}
		}
		w.min = m
		w.dirty = false
	}
	return w.min
}
