package energy

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/stats"
)

func synthetic() *stats.Stats {
	s := stats.New()
	s.ElapsedPS = 10_000_000 // 10 us
	s.IssuedInstrs = 100_000
	s.NSUInstrs = 10_000
	s.L1D.Accesses = 50_000
	s.L2.Accesses = 20_000
	s.DRAMReads = 5000
	s.DRAMWrites = 1000
	s.DRAMActivations = 800
	s.AddTraffic(stats.GPULink, 2_000_000)
	s.AddTraffic(stats.MemNet, 500_000)
	s.AddTraffic(stats.IntraHMC, 1_000_000)
	return s
}

func TestComputeComponentsPositive(t *testing.T) {
	cfg := config.Default()
	e := Compute(synthetic(), cfg, DefaultParams(), true)
	if e.GPU <= 0 || e.NSU <= 0 || e.IntraHMC <= 0 || e.OffChip <= 0 || e.DRAM <= 0 {
		t.Fatalf("non-positive component: %+v", e)
	}
	if e.Total() <= e.GPU {
		t.Fatal("total must exceed any single component")
	}
}

func TestBaselineHasNoNSUEnergy(t *testing.T) {
	cfg := config.Default()
	st := synthetic()
	st.NSUInstrs = 0
	e := Compute(st, cfg, DefaultParams(), false)
	if e.NSU != 0 {
		t.Fatalf("baseline NSU energy = %v, want 0 (power-gated, §5)", e.NSU)
	}
	// Off-chip for the baseline excludes the memory-network standby power.
	ndp := Compute(synthetic(), cfg, DefaultParams(), true)
	if ndp.OffChip <= e.OffChip {
		t.Fatal("NDP off-chip energy should include memory-network standby power")
	}
}

func TestEnergyScalesWithTraffic(t *testing.T) {
	cfg := config.Default()
	a := synthetic()
	b := synthetic()
	b.Traffic[stats.GPULink] *= 2
	ea := Compute(a, cfg, DefaultParams(), false)
	eb := Compute(b, cfg, DefaultParams(), false)
	if eb.OffChip <= ea.OffChip || eb.GPU <= ea.GPU {
		t.Fatal("doubling link traffic must increase off-chip and wire energy")
	}
}

func TestEnergyScalesWithRuntime(t *testing.T) {
	cfg := config.Default()
	a := synthetic()
	b := synthetic()
	b.ElapsedPS *= 2
	ea := Compute(a, cfg, DefaultParams(), true)
	eb := Compute(b, cfg, DefaultParams(), true)
	if eb.Total() <= ea.Total() {
		t.Fatal("longer runtime must cost more static energy")
	}
}

func TestActivationEnergyConstant(t *testing.T) {
	// The paper's constant: 11.8 nJ per 4 KB row activation.
	if p := DefaultParams(); p.ActivatePJ != 11800 {
		t.Fatalf("activation energy = %v pJ, want 11800 (11.8 nJ)", p.ActivatePJ)
	}
	// 2 pJ/bit link energy = 16 pJ/B.
	if p := DefaultParams(); p.LinkPJPerB != 16 {
		t.Fatalf("link energy = %v pJ/B, want 16", p.LinkPJPerB)
	}
	// 4 pJ/bit row read = 32 pJ/B.
	if p := DefaultParams(); p.RowRWPJPerB != 32 {
		t.Fatalf("row read energy = %v pJ/B, want 32", p.RowRWPJPerB)
	}
}

func TestComputeFillsStats(t *testing.T) {
	cfg := config.Default()
	st := synthetic()
	e := Compute(st, cfg, DefaultParams(), true)
	if st.Energy != e {
		t.Fatal("Compute must record the breakdown in the stats bundle")
	}
}
