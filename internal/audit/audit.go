// Package audit implements a pluggable, zero-cost-when-disabled invariant
// checker for the simulated machine. Components hold a nil-able pointer to an
// audit object and call its hooks at the points where protocol or hardware
// state changes; when no auditor is attached every hook site reduces to one
// nil comparison, so the disabled cost is unmeasurable on the hot paths.
//
// The checkers cover the machine's load-bearing invariants:
//
//   - packet conservation across the memory network: every packet injected
//     into the fabric is ejected exactly once, never duplicated or lost, and
//     never traverses more hops than the network diameter (Network);
//   - offload-protocol legality per offload block: command opens the block,
//     RDF/WTA/write traffic only flows while it is open, the acknowledgment
//     closes it, and no block is left orphaned at drain (Network);
//   - DRAM bank-state legality: ACT/PRE/CAS ordering per bank respects
//     tRCD/tRAS/tRP/tCCD and the refresh window, re-derived independently of
//     the vault controller's own bookkeeping (VaultAudit);
//   - machine-level conservation checks (credits, cache statistics, energy
//     counter monotonicity) registered as closures via Auditor.Register and
//     evaluated on every fired SM edge plus once at drain.
//
// Violations are recorded, not panicked on, so a single run can surface every
// broken invariant at once; Auditor.Err summarizes them after the run.
package audit

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ndpgpu/internal/core"
	"ndpgpu/internal/timing"
)

// Violation is one observed invariant breach.
type Violation struct {
	At        timing.PS // simulated time of the observation
	Component string    // which piece of hardware broke the invariant
	Invariant string    // which invariant family
	Detail    string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("t=%dps %s [%s]: %s", v.At, v.Component, v.Invariant, v.Detail)
}

// maxRecorded bounds how many violations are stored verbatim; a machine with
// a systematically broken invariant would otherwise accumulate one record per
// cycle. The total count keeps incrementing past the cap.
const maxRecorded = 64

// Check is a registered invariant evaluation. It runs on every fired SM edge
// with final=false and once more after the run drains with final=true;
// drain-only invariants (credits fully returned, no orphaned state) should
// fire only when final is set.
type Check func(now timing.PS, final bool)

type namedCheck struct {
	name string
	fn   Check
}

// Auditor collects violations and drives the registered checks. Reportf is
// safe to call from parallel shard compute phases (vault audits report from
// the concurrent DRAM shards); when violations exist their recorded order
// may then vary across runs, but the count and the pass/fail verdict do not.
// A violation-free run — the only kind the equivalence suite accepts — is
// bit-identical either way.
type Auditor struct {
	mu         sync.Mutex
	violations []Violation
	count      int64
	checks     []namedCheck
}

// New returns an empty auditor.
func New() *Auditor { return &Auditor{} }

// Register adds a named invariant check; checks run in registration order.
func (a *Auditor) Register(name string, fn Check) {
	a.checks = append(a.checks, namedCheck{name: name, fn: fn})
}

// Reportf records one violation.
func (a *Auditor) Reportf(at timing.PS, component, invariant, format string, args ...any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.count++
	if len(a.violations) < maxRecorded {
		a.violations = append(a.violations, Violation{
			At: at, Component: component, Invariant: invariant,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// RunChecks evaluates every registered check at the given time.
func (a *Auditor) RunChecks(now timing.PS, final bool) {
	for _, c := range a.checks {
		c.fn(now, final)
	}
}

// Violations returns the recorded violations (capped; see Count for the
// true total).
func (a *Auditor) Violations() []Violation { return a.violations }

// Count returns the total number of violations observed, including any
// beyond the recording cap.
func (a *Auditor) Count() int64 { return a.count }

// Err returns nil when no invariant was violated, else an error summarizing
// the first few violations.
func (a *Auditor) Err() error {
	if a.count == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s)", a.count)
	for i, v := range a.violations {
		if i == 8 {
			fmt.Fprintf(&b, "; ...")
			break
		}
		fmt.Fprintf(&b, "; %s", v)
	}
	return fmt.Errorf("audit: %s", b.String())
}

// Ticker adapts the auditor to timing.Ticker so a clock domain can drive the
// registered checks on every fired edge. It implements timing.IdleHint with
// NextWorkAt = Never: the auditor itself never forces an edge, which keeps
// idle skipping intact — state cannot change on a skipped edge, so checking
// only fired edges loses no coverage.
func (a *Auditor) Ticker() timing.Ticker { return auditTicker{a} }

type auditTicker struct{ a *Auditor }

// Tick implements timing.Ticker.
func (t auditTicker) Tick(now timing.PS) { t.a.RunChecks(now, false) }

// NextWorkAt implements timing.IdleHint.
func (t auditTicker) NextWorkAt(now timing.PS) timing.PS { return timing.Never }

// GPUNode is the src/dst sentinel for the GPU endpoint of a fabric route.
const GPUNode = -1

func nodeName(n int) string {
	if n == GPUNode {
		return "gpu"
	}
	return fmt.Sprintf("hmc%d", n)
}

func routeName(src, dst int) string {
	return nodeName(src) + "->" + nodeName(dst)
}

type packetInfo struct {
	sentAt   timing.PS
	arriveAt timing.PS
	src, dst int
}

type offloadInfo struct {
	openedAt     timing.PS
	target       int
	numLD, numST int
	tag          core.ProtoTag // fault runs: which instance/attempt is live
}

// Network audits the interconnect: packet conservation (keyed on packet
// identity — the simulator always allocates protocol packets fresh) and the
// offload-protocol state machine, observed at the moment packets enter the
// fabric. Local-stack shortcuts (an NSU writing its own vault, a logic layer
// delivering to its own NSU) intentionally bypass the fabric and are not
// network events; the command and acknowledgment legs of every offload always
// cross the fabric, so block lifetimes are still tracked exactly.
type Network struct {
	a       *Auditor
	maxHops int

	inflight map[any]packetInfo
	offloads map[core.OffloadID]offloadInfo

	// Lossy mode: under fault injection packets may legally be dropped
	// (link loss, CRC discard, unreachable route) and protocol packets may
	// legally be retransmitted or arrive stale. The conservation invariant
	// becomes "every packet is ejected exactly once OR explicitly reported
	// dropped", and the offload state machine is taught to distinguish a
	// retransmission (same or newer ProtoTag) from an illegal re-issue.
	// Off (the default), the original strict invariants apply unchanged.
	lossy bool

	// Lossy-mode tallies: legal events that the strict checkers would have
	// flagged; exposed so tests can assert faults actually exercised them.
	LegalDrops  int64 // packets reported via Dropped
	Retransmits int64 // command re-issues with a newer attempt/instance
	StaleObs    int64 // stale protocol packets tolerated
	Abandons    int64 // blocks closed by host fallback instead of an ack
}

// NewNetwork builds the fabric auditor. maxHops is the network diameter, the
// upper bound on legal per-packet hop counts.
func NewNetwork(a *Auditor, maxHops int) *Network {
	n := &Network{
		a:        a,
		maxHops:  maxHops,
		inflight: make(map[any]packetInfo),
		offloads: make(map[core.OffloadID]offloadInfo),
	}
	a.Register("network-drain", n.checkDrain)
	return n
}

// SetLossy switches the network auditor into fault-tolerant mode (see the
// lossy field) and raises the hop bound to maxHops, the routing layer's own
// detour safety bound — reroutes around dead links legally exceed the
// fault-free diameter.
func (n *Network) SetLossy(maxHops int) {
	n.lossy = true
	if maxHops > n.maxHops {
		n.maxHops = maxHops
	}
}

// Dropped records a packet the fabric legally lost (injected drop, CRC
// discard, or no live route). It accounts for the packet in place of the
// Inject/Eject pair, so conservation still holds at drain. Calling it
// outside lossy mode is a violation: the fault-free fabric never drops.
func (n *Network) Dropped(now timing.PS, src, dst int, msg any) {
	if !n.lossy {
		n.a.Reportf(now, routeName(src, dst), "packet-conservation",
			"%T dropped by a fault-free fabric", msg)
		return
	}
	n.LegalDrops++
}

// Abandon records that the GPU gave up on an offload block (host fallback
// after retry exhaustion or quarantine): the block closes without an ack,
// and any packets of it still in flight will be tolerated as stale.
func (n *Network) Abandon(now timing.PS, id core.OffloadID) {
	if _, open := n.offloads[id]; open {
		n.Abandons++
		delete(n.offloads, id)
	}
}

// Inject records a packet entering the fabric. src/dst are HMC ids or
// gpuNode (-1) for the GPU endpoint; hops is the number of memory-network
// links the packet will traverse (0 on GPU links and logic-layer-internal
// moves); arriveAt is the scheduled delivery time.
func (n *Network) Inject(now, arriveAt timing.PS, src, dst, hops int, msg any) {
	if _, dup := n.inflight[msg]; dup {
		n.a.Reportf(now, routeName(src, dst), "packet-conservation",
			"duplicate injection of in-flight %T", msg)
	}
	if hops > n.maxHops {
		n.a.Reportf(now, routeName(src, dst), "hop-bound",
			"%T traversed %d hops, network diameter is %d", msg, hops, n.maxHops)
	}
	if arriveAt < now {
		n.a.Reportf(now, routeName(src, dst), "packet-conservation",
			"%T scheduled to arrive at %dps, before injection", msg, arriveAt)
	}
	n.inflight[msg] = packetInfo{sentAt: now, arriveAt: arriveAt, src: src, dst: dst}
	n.observe(now, dst, msg)
}

// Eject records a packet leaving an inbox at its destination.
func (n *Network) Eject(now timing.PS, msg any) {
	p, ok := n.inflight[msg]
	if !ok {
		n.a.Reportf(now, "network", "packet-conservation",
			"ejected %T that was never injected", msg)
		return
	}
	if now < p.arriveAt {
		n.a.Reportf(now, routeName(p.src, p.dst), "packet-conservation",
			"%T ejected at %dps before its arrival time %dps", msg, now, p.arriveAt)
	}
	delete(n.inflight, msg)
}

// observe advances the offload-protocol state machine on packet injection.
// The command opens the (SM, warp) block; data packets require it open and
// carry sequence numbers inside the reserved buffer ranges; the
// acknowledgment closes it. Closing at ack injection is sound because the
// GPU cannot reuse the warp before the ack is delivered.
func (n *Network) observe(now timing.PS, dst int, msg any) {
	switch m := msg.(type) {
	case *core.CmdPacket:
		if o, open := n.offloads[m.ID]; open {
			if n.lossy && (m.Tag.Inst != o.tag.Inst || m.Tag.Attempt > o.tag.Attempt) {
				n.Retransmits++
			} else {
				n.a.Reportf(now, fmt.Sprintf("offload(sm%d,w%d)", m.ID.SM, m.ID.Warp),
					"offload-protocol", "command re-issued while block opened at %dps is live", o.openedAt)
			}
		}
		if dst != m.Target {
			n.a.Reportf(now, fmt.Sprintf("offload(sm%d,w%d)", m.ID.SM, m.ID.Warp),
				"offload-protocol", "command routed to hmc%d but targets nsu%d", dst, m.Target)
		}
		n.offloads[m.ID] = offloadInfo{openedAt: now, target: m.Target, numLD: m.NumLD, numST: m.NumST, tag: m.Tag}
	case *core.RDFPacket:
		o := n.requireOpen(now, m.ID, m.Tag, "RDF")
		if o != nil {
			n.checkSeq(now, m.ID, "RDF", m.Seq, o.numLD)
			if m.Target != o.target {
				n.a.Reportf(now, fmt.Sprintf("offload(sm%d,w%d)", m.ID.SM, m.ID.Warp),
					"offload-protocol", "RDF targets nsu%d, block was issued to nsu%d", m.Target, o.target)
			}
		}
	case *core.RDFResp:
		if o := n.requireOpen(now, m.ID, m.Tag, "RDF response"); o != nil {
			n.checkSeq(now, m.ID, "RDF response", m.Seq, o.numLD)
		}
	case *core.RDFRef:
		if o := n.requireOpen(now, m.ID, m.Tag, "RDF reference"); o != nil {
			n.checkSeq(now, m.ID, "RDF reference", m.Seq, o.numLD)
		}
	case *core.WTAPacket:
		if o := n.requireOpen(now, m.ID, m.Tag, "WTA"); o != nil {
			n.checkSeq(now, m.ID, "WTA", m.Seq, o.numST)
		}
	case *core.WritePacket:
		if o := n.requireOpen(now, m.ID, m.Tag, "NSU write"); o != nil {
			n.checkSeq(now, m.ID, "NSU write", m.Seq, o.numST)
		}
	case *core.WriteAck:
		n.requireOpen(now, m.ID, m.Tag, "write ack")
	case *core.AckPacket:
		o, open := n.offloads[m.ID]
		switch {
		case !open && n.lossy:
			n.StaleObs++ // duplicate ack after the block already closed
			return
		case !open:
			n.a.Reportf(now, fmt.Sprintf("offload(sm%d,w%d)", m.ID.SM, m.ID.Warp),
				"offload-protocol", "acknowledgment for a block that is not open")
		case n.lossy && o.tag.Inst != m.Tag.Inst:
			n.StaleObs++ // ack of a previous instance; must not close this one
			return
		}
		delete(n.offloads, m.ID)
	}
}

func (n *Network) requireOpen(now timing.PS, id core.OffloadID, tag core.ProtoTag, kind string) *offloadInfo {
	o, open := n.offloads[id]
	if !open {
		if n.lossy {
			n.StaleObs++ // late packet of an acked or abandoned block
			return nil
		}
		n.a.Reportf(now, fmt.Sprintf("offload(sm%d,w%d)", id.SM, id.Warp),
			"offload-protocol", "%s packet for a block that is not open", kind)
		return nil
	}
	if n.lossy && tag.Inst < o.tag.Inst {
		// A straggler from an earlier instance of this warp slot, delayed in
		// the memory hierarchy past the abandon that closed its block and the
		// command that opened the current one. The receiver drops it by tag;
		// checking it against the new block's target or sequence ranges would
		// be comparing two different blocks.
		n.StaleObs++
		return nil
	}
	return &o
}

func (n *Network) checkSeq(now timing.PS, id core.OffloadID, kind string, seq, limit int) {
	if seq < 0 || seq >= limit {
		n.a.Reportf(now, fmt.Sprintf("offload(sm%d,w%d)", id.SM, id.Warp),
			"offload-protocol", "%s sequence %d outside reserved range [0,%d)", kind, seq, limit)
	}
}

// checkDrain is the final-pass check: a drained machine has no packet in
// flight and no offload block open.
func (n *Network) checkDrain(now timing.PS, final bool) {
	if !final {
		return
	}
	if len(n.inflight) > 0 {
		// Deterministic report order: by injection time, then route.
		pkts := make([]packetInfo, 0, len(n.inflight))
		for _, p := range n.inflight {
			pkts = append(pkts, p)
		}
		sort.Slice(pkts, func(i, j int) bool {
			if pkts[i].sentAt != pkts[j].sentAt {
				return pkts[i].sentAt < pkts[j].sentAt
			}
			if pkts[i].src != pkts[j].src {
				return pkts[i].src < pkts[j].src
			}
			return pkts[i].dst < pkts[j].dst
		})
		n.a.Reportf(now, "network", "packet-conservation",
			"%d packet(s) lost: first injected at %dps on %s",
			len(pkts), pkts[0].sentAt, routeName(pkts[0].src, pkts[0].dst))
	}
	if len(n.offloads) > 0 {
		ids := make([]core.OffloadID, 0, len(n.offloads))
		for id := range n.offloads {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].SM != ids[j].SM {
				return ids[i].SM < ids[j].SM
			}
			return ids[i].Warp < ids[j].Warp
		})
		for _, id := range ids {
			n.a.Reportf(now, fmt.Sprintf("offload(sm%d,w%d)", id.SM, id.Warp),
				"offload-protocol", "block opened at %dps never acknowledged", n.offloads[id].openedAt)
		}
	}
}

// DRAMTiming is the subset of the DRAM timing parameters the bank-legality
// checks need. Cycle counts are in DRAM clocks; TCKps is the clock in
// picoseconds.
type DRAMTiming struct {
	TCKps int // DRAM clock period, ps
	TRCD  int // ACT -> CAS, cycles
	TRAS  int // ACT -> PRE, cycles
	TRP   int // PRE -> ACT, cycles
	TCCD  int // CAS -> CAS (shared vault data bus), cycles
}

type bankAudit struct {
	open     bool
	row      int64
	actAt    timing.PS
	preReady timing.PS // earliest legal ACT after the last PRE or refresh
}

// VaultAudit independently re-derives DRAM bank-state legality for one vault:
// the controller reports every row/column command it issues and the audit
// checks the ordering and spacing against the timing parameters, using its
// own mirror of the bank state rather than the controller's bookkeeping.
type VaultAudit struct {
	a    *Auditor
	name string
	t    DRAMTiming

	banks    []bankAudit
	lastCAS  timing.PS // vault-wide: the data bus is shared across banks
	refUntil timing.PS
}

// NewVaultAudit builds the audit mirror for one vault with the given bank
// count.
func NewVaultAudit(a *Auditor, name string, t DRAMTiming, banks int) *VaultAudit {
	return &VaultAudit{a: a, name: name, t: t, banks: make([]bankAudit, banks), lastCAS: -1 << 62}
}

func (v *VaultAudit) tck(n int) timing.PS { return timing.PS(n) * timing.PS(v.t.TCKps) }

// OnActivate checks one row activation.
func (v *VaultAudit) OnActivate(now timing.PS, bank int, row int64) {
	b := &v.banks[bank]
	if b.open {
		v.a.Reportf(now, v.name, "dram-bank-state",
			"ACT bank %d row %d with row %d already open", bank, row, b.row)
	}
	if now < b.preReady {
		v.a.Reportf(now, v.name, "dram-bank-state",
			"ACT bank %d at %dps, tRP expires at %dps", bank, now, b.preReady)
	}
	if now < v.refUntil {
		v.a.Reportf(now, v.name, "dram-bank-state",
			"ACT bank %d during refresh (until %dps)", bank, v.refUntil)
	}
	b.open, b.row, b.actAt = true, row, now
}

// OnColumn checks one CAS (read or write burst).
func (v *VaultAudit) OnColumn(now timing.PS, bank int, row int64, write bool) {
	kind := "RD"
	if write {
		kind = "WR"
	}
	b := &v.banks[bank]
	switch {
	case !b.open:
		v.a.Reportf(now, v.name, "dram-bank-state", "%s bank %d with no open row", kind, bank)
	case b.row != row:
		v.a.Reportf(now, v.name, "dram-bank-state",
			"%s bank %d row %d but row %d is open", kind, bank, row, b.row)
	case now < b.actAt+v.tck(v.t.TRCD):
		v.a.Reportf(now, v.name, "dram-bank-state",
			"%s bank %d at %dps violates tRCD (ACT at %dps)", kind, bank, now, b.actAt)
	}
	if now < v.lastCAS+v.tck(v.t.TCCD) {
		v.a.Reportf(now, v.name, "dram-bank-state",
			"%s bank %d at %dps violates tCCD (last CAS at %dps)", kind, bank, now, v.lastCAS)
	}
	if now < v.refUntil {
		v.a.Reportf(now, v.name, "dram-bank-state",
			"%s bank %d during refresh (until %dps)", kind, bank, v.refUntil)
	}
	v.lastCAS = now
}

// OnPrecharge checks one precharge. start is the effective command time,
// which the controller may delay past now to honour tRAS.
func (v *VaultAudit) OnPrecharge(now, start timing.PS, bank int) {
	b := &v.banks[bank]
	if !b.open {
		v.a.Reportf(now, v.name, "dram-bank-state", "PRE bank %d with no open row", bank)
	}
	if start < b.actAt+v.tck(v.t.TRAS) {
		v.a.Reportf(now, v.name, "dram-bank-state",
			"PRE bank %d at %dps violates tRAS (ACT at %dps)", bank, start, b.actAt)
	}
	if start < now {
		v.a.Reportf(now, v.name, "dram-bank-state",
			"PRE bank %d effective time %dps is in the past", bank, start)
	}
	b.open = false
	b.preReady = start + v.tck(v.t.TRP)
}

// OnRefresh checks one all-bank refresh blocking the vault until `until`.
func (v *VaultAudit) OnRefresh(now, until timing.PS) {
	if until < now {
		v.a.Reportf(now, v.name, "dram-bank-state", "refresh window ends at %dps, in the past", until)
	}
	for i := range v.banks {
		v.banks[i].open = false
		if v.banks[i].preReady < until {
			v.banks[i].preReady = until
		}
	}
	v.refUntil = until
}
