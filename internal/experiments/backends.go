package experiments

import (
	"fmt"
	"io"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
)

// BackendArchs lists the architecture backends the cross-architecture sweep
// compares. "paper" is the partitioned-execution design this repo models
// (random 4KB interleave, GPU-owned translation); the rest are the
// alternatives behind internal/backend: CODA-style locality-aware placement
// (majority accessor and first-touch variants) and NDPage-style stack-side
// translation.
var BackendArchs = []string{"paper", "coda", "coda-ft", "ndpage"}

// backendModes are the execution modes swept per architecture: the host
// baseline plus both NDP offload mechanisms.
var backendModes = []sim.Mode{sim.Baseline, sim.NaiveNDP, sim.DynNDP}

// BackendsResult holds every run of the cross-architecture sweep,
// keyed Rows[workload]["arch|mode"].
type BackendsResult struct {
	Archs []string
	Modes []string
	Rows  map[string]map[string]*Run
}

// Get returns the run for workload wl under arch and mode. The ndpage
// baseline aliases the paper baseline: host-side execution never reaches the
// stack-side translation path, so that leg is not simulated separately and
// the paper run stands in for it.
func (b *BackendsResult) Get(wl, arch, mode string) *Run {
	if arch == "ndpage" && mode == sim.Baseline.Name {
		arch = "paper"
	}
	return b.Rows[wl][arch+"|"+mode]
}

// Backends runs every Table 1 workload under every golden mode on every
// architecture backend and prints, per mode, each alternative architecture's
// runtime relative to the paper design (below 1.0 = faster than the paper),
// then a verdict on unrestricted placement vs CODA-style co-location.
func Backends(w io.Writer, cfg config.Config, scale int) (*BackendsResult, error) {
	res := &BackendsResult{Archs: BackendArchs}
	for _, m := range backendModes {
		res.Modes = append(res.Modes, m.Name)
	}
	res.Rows = make(map[string]map[string]*Run)
	for _, wl := range Workloads() {
		res.Rows[wl] = make(map[string]*Run)
	}

	// runAll keys results by workload|mode, so each architecture gets its
	// own batch (still parallel across workloads within the batch).
	for _, arch := range BackendArchs {
		acfg := cfg
		acfg.Arch.Backend = arch
		var jobs []job
		for _, m := range backendModes {
			if arch == "ndpage" && m.Name == sim.Baseline.Name {
				continue // identical to paper|Baseline by construction
			}
			for _, wl := range Workloads() {
				jobs = append(jobs, job{workload: wl, mode: m, cfg: acfg})
			}
		}
		runs := runAll(jobs, scale)
		if err := checkErrs(runs); err != nil {
			return nil, fmt.Errorf("arch %s: %w", arch, err)
		}
		for _, j := range jobs {
			res.Rows[j.workload][arch+"|"+j.mode.Name] = get(runs, j.workload, j.mode.Name)
		}
	}

	for _, mode := range res.Modes {
		header(w, fmt.Sprintf("Runtime vs paper architecture, mode %s", mode), BackendArchs[1:])
		ratios := make(map[string][]float64)
		for _, wl := range Workloads() {
			base := res.Get(wl, "paper", mode)
			fmt.Fprintf(w, "%-8s", wl)
			for _, arch := range BackendArchs[1:] {
				r := float64(res.Get(wl, arch, mode).TimePS) / float64(base.TimePS)
				ratios[arch] = append(ratios[arch], r)
				fmt.Fprintf(w, "%12.3f", r)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-8s", "geomean")
		for _, arch := range BackendArchs[1:] {
			fmt.Fprintf(w, "%12.3f", geomean(ratios[arch]))
		}
		fmt.Fprintln(w)
	}

	// Verdict: the paper's unrestricted random interleave against CODA-style
	// co-location, per offload mode. Ratios above 1.0 mean the co-located
	// layout ran slower, i.e. unrestricted placement won that workload.
	fmt.Fprintln(w)
	for _, mode := range res.Modes[1:] {
		for _, arch := range []string{"coda", "coda-ft"} {
			var rs []float64
			wins := 0
			for _, wl := range Workloads() {
				r := float64(res.Get(wl, arch, mode).TimePS) /
					float64(res.Get(wl, "paper", mode).TimePS)
				rs = append(rs, r)
				if r > 1 {
					wins++
				}
			}
			fmt.Fprintf(w, "unrestricted vs %s (%s): paper faster on %d/%d workloads, geomean %.3fx\n",
				arch, mode, wins, len(rs), geomean(rs))
		}
	}
	return res, nil
}
