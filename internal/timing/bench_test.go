package timing

import "testing"

// sparseTicker models a component that does real work only when simulated
// time crosses a multiple of gap, and is provably idle in between — the
// pattern idle skipping exploits. Between bursts it still counts its cycles,
// so it needs IdleSkipper to stay exact under skipping.
type sparseTicker struct {
	gap   PS
	ticks int64
	work  int64
}

func (s *sparseTicker) Tick(now PS) {
	s.ticks++
	if now%s.gap == 0 {
		s.work++
	}
}

func (s *sparseTicker) NextWorkAt(now PS) PS {
	if now%s.gap == 0 {
		return now
	}
	return (now/s.gap + 1) * s.gap
}

func (s *sparseTicker) SkipIdle(n int64) { s.ticks += n }

func benchEngine(b *testing.B, gap PS, skip bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.SetIdleSkip(skip)
		for _, mhz := range []int{700, 1250} {
			d := e.AddDomain("core", PeriodFromMHz(mhz))
			d.Attach(&sparseTicker{gap: gap})
		}
		dram := e.AddDomain("dram", 1500)
		dram.Attach(&sparseTicker{gap: gap})
		e.RunUntil(func() bool { return false }, 10_000_000) // 10 simulated µs
	}
}

// BenchmarkEngineIdleSkip measures the engine's edge dispatch with work
// bursts 100 ns apart (sparse — skipping retires long idle stretches in
// O(1)) and 3 ns apart (busy — skipping degenerates to near-dense firing,
// bounding its overhead). The dense variants fire every edge and are the
// reference cost.
func BenchmarkEngineIdleSkip(b *testing.B) {
	for _, c := range []struct {
		name string
		gap  PS
		skip bool
	}{
		{"sparse/skip", 100_000, true},
		{"sparse/dense", 100_000, false},
		{"busy/skip", 3_000, true},
		{"busy/dense", 3_000, false},
	} {
		b.Run(c.name, func(b *testing.B) { benchEngine(b, c.gap, c.skip) })
	}
}

// nopShard is the cheapest possible Shard: its tick does nothing, so a phase
// over nopShards measures pure executor overhead — claim, dispatch, barrier.
type nopShard struct {
	wake PS
	pend int
}

func (s *nopShard) Tick(now PS)          {}
func (s *nopShard) Commit(now PS)        {}
func (s *nopShard) NextWorkAt(now PS) PS { return s.wake }
func (s *nopShard) PendingCommit() int   { return s.pend }

// BenchmarkPhaseBarrier measures the per-phase cost of the executor over 72
// empty shards (the PR 4 machine shape: 64 SMs + 8 stacks) at each fusion
// width. width=72 is the unfused PR 4 schedule — one barrier participant per
// shard; smaller widths show the fusion payoff; width=1 is the inline floor.
func BenchmarkPhaseBarrier(b *testing.B) {
	const n = 72
	for _, c := range []struct {
		name    string
		width   int
		workers int
	}{
		{"unfused72/w4", 72, 4},
		{"fused8/w4", 8, 4},
		{"fused4/w4", 4, 4},
		{"fused2/w2", 2, 2},
		{"inline", 1, 4},
	} {
		b.Run(c.name, func(b *testing.B) {
			p := NewPool(c.workers)
			defer p.Close()
			shards := make([]Shard, n)
			for i := range shards {
				shards[i] = &nopShard{} // wake=0: always active, never elided
			}
			sh := NewSharded(p, shards...)
			sh.SetFusion(c.width)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Tick(PS(i))
			}
		})
	}
}

// BenchmarkQuiescentBatch measures phase cost on a mostly-idle machine: one
// busy shard among 71 provably-idle ones, with quiescence batching on (the
// phase runs inline, no dispatch) and off (the full fused dispatch is paid
// every phase). The gap is the quiescence payoff on idle-heavy workloads.
func BenchmarkQuiescentBatch(b *testing.B) {
	const n = 72
	for _, c := range []struct {
		name    string
		quiesce bool
	}{
		{"on", true},
		{"off", false},
	} {
		b.Run(c.name, func(b *testing.B) {
			p := NewPool(4)
			defer p.Close()
			shards := make([]Shard, n)
			for i := range shards {
				shards[i] = &nopShard{wake: Never} // provably idle
			}
			shards[0] = &nopShard{} // the lone busy shard
			sh := NewSharded(p, shards...)
			sh.SetFusion(8)
			sh.SetQuiescent(c.quiesce)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Tick(PS(i))
			}
		})
	}
}
