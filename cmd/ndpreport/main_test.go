package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", `{"x": 100, "y": {"z": [1, 2]}}`)
	same := write(t, dir, "same.json", `{"x": 100, "y": {"z": [1, 2]}}`)
	drift := write(t, dir, "drift.json", `{"x": 150, "y": {"z": [1, 2]}}`)

	var out, errBuf bytes.Buffer
	if code := run([]string{"diff", a, same}, &out, &errBuf); code != 0 {
		t.Fatalf("self diff exit = %d, want 0 (%s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "no drift") {
		t.Fatalf("missing no-drift message: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"diff", a, drift}, &out, &errBuf); code != 1 {
		t.Fatalf("perturbed diff exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "x") {
		t.Fatalf("drift report missing the path: %s", out.String())
	}

	// Tolerance big enough swallows the drift.
	out.Reset()
	if code := run([]string{"diff", "-tol", "0.5", a, drift}, &out, &errBuf); code != 0 {
		t.Fatalf("tolerated diff exit = %d, want 0", code)
	}

	// Usage errors exit 2.
	if code := run([]string{"diff", a}, &out, &errBuf); code != 2 {
		t.Fatalf("missing-arg exit = %d, want 2", code)
	}
	if code := run([]string{"nonsense"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad subcommand exit = %d, want 2", code)
	}
}

func TestBenchgate(t *testing.T) {
	dir := t.TempDir()
	ref := write(t, dir, "ref.json", `{"macro": {"serial_ns_per_op": 1000000}}`)
	ok := write(t, dir, "ok.txt",
		"goos: linux\nBenchmarkSingleRunVADD-8   \t5\t1100000 ns/op\t10 B/op\nPASS\n")
	slow := write(t, dir, "slow.txt",
		"BenchmarkSingleRunVADD-8   \t5\t1300000 ns/op\nPASS\n")
	fast := write(t, dir, "fast.txt",
		"BenchmarkSingleRunVADD   \t5\t100000 ns/op\nPASS\n")

	var out, errBuf bytes.Buffer
	if code := run([]string{"benchgate", "-bench", ok, "-ref", ref}, &out, &errBuf); code != 0 {
		t.Fatalf("within-slack exit = %d, want 0 (%s %s)", code, out.String(), errBuf.String())
	}

	out.Reset()
	if code := run([]string{"benchgate", "-bench", slow, "-ref", ref}, &out, &errBuf); code != 1 {
		t.Fatalf("slow exit = %d, want 1 (%s)", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL verdict: %s", out.String())
	}

	// Faster than the slack only warns — a faster host must not break CI.
	out.Reset()
	if code := run([]string{"benchgate", "-bench", fast, "-ref", ref}, &out, &errBuf); code != 0 {
		t.Fatalf("fast exit = %d, want 0 (%s)", code, out.String())
	}
	if !strings.Contains(out.String(), "refreshing") {
		t.Fatalf("missing refresh hint: %s", out.String())
	}

	// Missing benchmark line is a usage-level failure.
	empty := write(t, dir, "empty.txt", "PASS\n")
	if code := run([]string{"benchgate", "-bench", empty, "-ref", ref}, &out, &errBuf); code != 2 {
		t.Fatalf("missing-result exit = %d, want 2", code)
	}
}

func TestBenchgateAllocGate(t *testing.T) {
	dir := t.TempDir()
	ref := write(t, dir, "ref.json",
		`{"macro": {"serial_ns_per_op": 1000000, "serial_allocs_per_op": 1000}}`)
	// Custom metrics between ns/op and the -benchmem columns must not hide them.
	good := write(t, dir, "good.txt",
		"BenchmarkSingleRunVADD-8 \t5\t1000000 ns/op\t16.58 simulated-us\t500000 B/op\t1050 allocs/op\nPASS\n")
	bloat := write(t, dir, "bloat.txt",
		"BenchmarkSingleRunVADD-8 \t5\t1000000 ns/op\t500000 B/op\t1200 allocs/op\nPASS\n")

	var out, errBuf bytes.Buffer
	if code := run([]string{"benchgate", "-bench", good, "-ref", ref}, &out, &errBuf); code != 0 {
		t.Fatalf("within-alloc-slack exit = %d, want 0 (%s)", code, out.String())
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("alloc comparison not reported: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"benchgate", "-bench", bloat, "-ref", ref}, &out, &errBuf); code != 1 {
		t.Fatalf("alloc-regression exit = %d, want 1 (%s)", code, out.String())
	}
	if !strings.Contains(out.String(), "allocs/op regressed") {
		t.Fatalf("missing alloc FAIL verdict: %s", out.String())
	}
}

func TestBenchgateFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	// A reference from a fictitious host: the wall-clock gate must relax to
	// report-only, so a huge slowdown still exits 0 with a loud warning. The
	// alloc gate relaxes too only because the Go version also differs.
	ref := write(t, dir, "ref.json", `{
		"host": {"cpu_model": "Imaginary CPU X1", "nproc": 999, "go_version": "go0.0.0"},
		"macro": {"serial_ns_per_op": 1000, "serial_allocs_per_op": 10}}`)
	slow := write(t, dir, "slow.txt",
		"BenchmarkSingleRunVADD-8 \t5\t90000000 ns/op\t1 B/op\t500 allocs/op\nPASS\n")

	var out, errBuf bytes.Buffer
	if code := run([]string{"benchgate", "-bench", slow, "-ref", ref}, &out, &errBuf); code != 0 {
		t.Fatalf("mismatched-host exit = %d, want 0 (%s)", code, out.String())
	}
	for _, want := range []string{"fingerprint mismatch", "REPORT-ONLY", "toolchain differs"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in report-only output: %s", want, out.String())
		}
	}
}

func TestBenchHistory(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_pr1.json",
		`{"macro": {"after": {"ns_per_op": 2000, "allocs_per_op": 50, "bytes_per_op": 4000000}}}`)
	write(t, dir, "BENCH_pr2.json",
		`{"macro": {"pr1_after": {"ns_per_op": 2000}, "pr2": {"ns_per_op": 1000, "allocs_per_op": 40}}}`)
	write(t, dir, "BENCH_pr10.json", `{
		"host": {"cpu_model": "CPU A", "nproc": 4, "go_version": "go1.24.0"},
		"macro": {"serial_ns_per_op": 500, "serial_allocs_per_op": 30}}`)

	var out, errBuf bytes.Buffer
	if code := run([]string{"bench-history", "-dir", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("bench-history exit = %d, want 0 (%s)", code, errBuf.String())
	}
	got := out.String()
	// Numeric PR order, not lexical: pr1, pr2, pr10.
	i1 := strings.Index(got, "BENCH_pr1.json")
	i2 := strings.Index(got, "BENCH_pr2.json")
	i10 := strings.Index(got, "BENCH_pr10.json")
	if i1 < 0 || i2 < 0 || i10 < 0 || !(i1 < i2 && i2 < i10) {
		t.Fatalf("rows missing or out of numeric PR order:\n%s", got)
	}
	// Schema archaeology: pr1 uses macro.after, pr2 prefers its own prN tag,
	// pr10 the modern serial_* leaves. Step speedups follow 2000->1000->500.
	for _, want := range []string{"2.00x", "4.00x", "CPU A"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in history table:\n%s", want, got)
		}
	}
}

func TestShowRendersMetricsRun(t *testing.T) {
	dir := t.TempDir()
	runJSON := write(t, dir, "run.json", `{
 "schema": "ndpgpu-metrics/1",
 "meta": {"workload": "VADD"},
 "interval_cycles": 2048,
 "period_ps": 1428,
 "times_ps": [1000, 2000, 3000],
 "series": [
  {"name": "ratio", "track": "controller", "unit": "fraction", "kind": "gauge", "samples": [0.1, 0.5, 0.9]}
 ],
 "spans": [{"name": "offload sm0/w0 blk1", "tid": 0, "start_ps": 100, "dur_ps": 500}]
}`)
	var out, errBuf bytes.Buffer
	if code := run([]string{"show", runJSON}, &out, &errBuf); code != 0 {
		t.Fatalf("show exit = %d (%s)", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"controller/ratio", "workload=VADD", "1 offload round trips"} {
		if !strings.Contains(s, want) {
			t.Fatalf("show output missing %q:\n%s", want, s)
		}
	}

	bad := write(t, dir, "bad.json", `{"schema": "other/1"}`)
	if code := run([]string{"show", bad}, &out, &errBuf); code != 2 {
		t.Fatalf("wrong-schema exit = %d, want 2", code)
	}
}
