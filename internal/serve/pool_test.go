package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if !p.Go(func() { n.Add(1) }) {
			t.Fatal("Go returned false on an open pool")
		}
	}
	p.Wait()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
	p.Close()
	if p.Go(func() {}) {
		t.Fatal("Go accepted work after Close")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var cur, peak atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		p.Go(func() {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	p.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		p.Go(func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		})
	}
	p.Close() // must not return before every queued task ran
	if got := n.Load(); got != 20 {
		t.Fatalf("Close returned with %d/20 tasks done", got)
	}
}

func TestPoolWaitThenReuse(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var n atomic.Int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			p.Go(func() { n.Add(1) })
		}
		p.Wait()
		if got := n.Load(); got != int64((round+1)*10) {
			t.Fatalf("round %d: %d tasks done", round, got)
		}
	}
}
