package core

// SelectTarget implements the paper's target-NSU policy (§4.1.1): the HMC
// accessed by the first load or store instruction becomes the target; if
// that instruction touches several HMCs, the one with the most accesses
// wins. hmcs lists the home HMC of each coalesced line of the first memory
// instruction. Ties break toward the lower HMC id for determinism.
func SelectTarget(hmcs []int, numHMCs int) int {
	if len(hmcs) == 0 {
		return 0
	}
	var cbuf [32]int // systems have at most a few HMCs; avoid a per-call slice
	var counts []int
	if numHMCs > len(cbuf) {
		counts = make([]int, numHMCs)
	} else {
		counts = cbuf[:numHMCs]
	}
	for _, h := range hmcs {
		counts[h]++
	}
	best := hmcs[0]
	for h, c := range counts {
		if c > counts[best] {
			best = h
		}
	}
	return best
}

// SelectTargetHealthy is SelectTarget restricted to non-quarantined stacks
// (fault path only): the majority vote runs over healthy HMCs, so a block
// whose first access lands on a quarantined stack is steered to the
// healthiest remaining candidate. Returns -1 when no accessed HMC is
// healthy; the caller then executes the block host-side.
func SelectTargetHealthy(hmcs []int, numHMCs int, healthy func(int) bool) int {
	if len(hmcs) == 0 {
		for h := 0; h < numHMCs; h++ {
			if healthy(h) {
				return h
			}
		}
		return -1
	}
	var cbuf [32]int
	var counts []int
	if numHMCs > len(cbuf) {
		counts = make([]int, numHMCs)
	} else {
		counts = cbuf[:numHMCs]
	}
	for _, h := range hmcs {
		counts[h]++
	}
	// Seed the vote with the first access's HMC so the tie-break matches
	// SelectTarget exactly: with every stack healthy the two policies must
	// pick identical targets (the no-fault run is bit-reproducible).
	best := -1
	if healthy(hmcs[0]) {
		best = hmcs[0]
	}
	for h, c := range counts {
		if c > 0 && healthy(h) && (best < 0 || c > counts[best]) {
			best = h
		}
	}
	return best
}

// SelectOptimal is the oracle policy of Figure 5: choose the HMC with the
// most accesses across ALL memory accesses of the block. The paper rejects
// it because it would require buffering every generated address; it exists
// here as the ablation baseline.
func SelectOptimal(hmcs []int, numHMCs int) int {
	return SelectTarget(hmcs, numHMCs) // same majority rule, different input scope
}

// RemoteTraffic counts how many of the block's accesses are not local to the
// chosen target — each such access crosses the memory network once. This is
// the Figure 5 metric.
func RemoteTraffic(hmcs []int, target int) int {
	n := 0
	for _, h := range hmcs {
		if h != target {
			n++
		}
	}
	return n
}
