package serve

import (
	"errors"
	"fmt"
)

// Chaos client names that trigger injected failures under ChaosRunner.
const (
	// ChaosPanicClient makes the runner panic inside the worker.
	ChaosPanicClient = "chaos-panic"
	// ChaosHangClient makes the runner block without emitting progress until
	// the watchdog cancels it — a stand-in for a wedged timing engine.
	ChaosHangClient = "chaos-hang"
)

// ChaosRunner wraps a Runner with client-triggered fault injection for the
// kill-and-restart chaos harness (`ndpserve -chaos`): a request whose Client
// is ChaosPanicClient panics in the worker, ChaosHangClient hangs without
// progress until canceled. Any other request passes through untouched. The
// triggers ride on Client — which is excluded from the request key — so the
// harness uses dedicated seeds to keep poisoned keys away from real ones.
// Production servers must not enable it.
func ChaosRunner(next Runner) Runner {
	return func(rc *RunCtx, req *Request, progress func(Progress)) (*Outcome, error) {
		switch req.Client {
		case ChaosPanicClient:
			panic(fmt.Sprintf("chaos: injected panic for key %.8s", req.Key))
		case ChaosHangClient:
			<-rc.Done() // no progress, no deadline checks: only the watchdog ends this
			return nil, errors.New("chaos: hang interrupted")
		}
		return next(rc, req, progress)
	}
}
