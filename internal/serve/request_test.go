package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"ndpgpu/internal/config"
)

func TestParseRunRequestMinimal(t *testing.T) {
	req, err := ParseRunRequest([]byte(`{"workload":"VADD"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Workload != "VADD" || req.ModeSpec != "baseline" || req.Scale != 1 {
		t.Fatalf("bad canonical request: %+v", req)
	}
	if req.Mode.NDP {
		t.Fatal("default mode should be baseline (no NDP)")
	}
	if len(req.Key) != 64 {
		t.Fatalf("key %q is not a hex SHA-256", req.Key)
	}
	def, _ := config.Canonical(config.Default())
	got, _ := config.Canonical(req.Cfg)
	if string(def) != string(got) {
		t.Fatal("minimal request should resolve to the default config")
	}
}

func TestParseRunRequestErrors(t *testing.T) {
	cases := map[string]string{
		"empty object":       `{}`,
		"malformed":          `{"workload":`,
		"trailing garbage":   `{"workload":"VADD"} {"x":1}`,
		"unknown field":      `{"workload":"VADD","wokload":"x"}`,
		"unknown workload":   `{"workload":"NOPE"}`,
		"unknown mode":       `{"workload":"VADD","mode":"turbo"}`,
		"bad static ratio":   `{"workload":"VADD","mode":"static=1.5"}`,
		"unknown override":   `{"workload":"VADD","overrides":{"gpu.nope":1}}`,
		"fractional smcount": `{"workload":"VADD","overrides":{"gpu.numsms":2.5}}`,
		"invalid config":     `{"workload":"VADD","overrides":{"gpu.numsms":-3}}`,
		"bad faults":         `{"workload":"VADD","faults":"meteor:t=0"}`,
		"negative scale":     `{"workload":"VADD","scale":-1}`,
		"huge scale":         `{"workload":"VADD","scale":99999999}`,
		"unknown cfg field":  `{"workload":"VADD","config":{"Bogus":1}}`,
	}
	for name, body := range cases {
		if _, err := ParseRunRequest([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

// TestCanonicalKeyOrderInsensitive pins the cache-key contract: override
// order, mode spelling, and irrelevant fields (client) must not change the
// key; anything that changes the simulation must.
func TestCanonicalKeyOrderInsensitive(t *testing.T) {
	key := func(body string) string {
		t.Helper()
		req, err := ParseRunRequest([]byte(body))
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		return req.Key
	}

	a := key(`{"workload":"VADD","mode":"dyn","overrides":{"gpu.numsms":8,"nsu.clockmhz":175}}`)
	b := key(`{"workload":"VADD","mode":"dyn","overrides":{"nsu.clockmhz":175,"gpu.numsms":8}}`)
	if a != b {
		t.Fatal("override order changed the key")
	}
	if c := key(`{"client":"alice","workload":"VADD","mode":"dyn","overrides":{"gpu.numsms":8,"nsu.clockmhz":175}}`); c != a {
		t.Fatal("client identity leaked into the key")
	}
	if c := key(`{"workload":"VADD","mode":"static=0.50"}`); c != key(`{"workload":"VADD","mode":"static=0.5"}`) {
		t.Fatal("static-ratio spelling changed the key")
	}
	if c := key(`{"workload":"VADD"}`); c != key(`{"workload":"VADD","mode":"baseline","scale":1}`) {
		t.Fatal("explicit defaults changed the key")
	}

	// Distinct runs must get distinct keys.
	distinct := []string{
		`{"workload":"VADD","mode":"dyn"}`,
		`{"workload":"VADD","mode":"naive"}`,
		`{"workload":"VADD","mode":"static=0"}`, // NDP machinery at ratio 0 != baseline
		`{"workload":"BFS","mode":"dyn"}`,
		`{"workload":"VADD","mode":"dyn","seed":7}`,
		`{"workload":"VADD","mode":"dyn","scale":2}`,
		`{"workload":"VADD","mode":"dyn","overrides":{"gpu.numsms":8}}`,
		`{"workload":"VADD","mode":"dyn","faults":"drop:p=0.01;seed=3"}`,
	}
	seen := map[string]string{}
	for _, body := range distinct {
		k := key(body)
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %s and %s", prev, body)
		}
		seen[k] = body
	}
}

// TestCanonicalizeMatchesReserialization: parsing a request, re-marshaling
// the wire struct (which sorts map keys), and parsing again must preserve
// the key — the round-trip every coalescing client relies on.
func TestCanonicalizeMatchesReserialization(t *testing.T) {
	body := `{"workload":"FWT","mode":"dyncache","seed":11,"scale":2,` +
		`"overrides":{"nsu.clockmhz":700,"gpu.numsms":16,"ndp.epochcycles":2000},` +
		`"faults":"linkdown:t=2000000:hmc=0:dim=1;drop:p=0.01;seed=7"}`
	req1, err := ParseRunRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr RunRequest
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	re, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	req2, err := ParseRunRequest(re)
	if err != nil {
		t.Fatalf("re-marshaled request rejected: %v\n%s", err, re)
	}
	if req1.Key != req2.Key {
		t.Fatalf("key changed across re-serialization:\n%s\n%s", req1.Key, req2.Key)
	}
}

func TestParseRunRequestFullConfig(t *testing.T) {
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	body, err := json.Marshal(RunRequest{Workload: "VADD", Mode: "naive", Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseRunRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if req.Cfg.GPU.NumSMs != 4 {
		t.Fatalf("full config not honored: NumSMs = %d", req.Cfg.GPU.NumSMs)
	}
	// Same run spelled as default-config + override must share the key.
	req2, err := ParseRunRequest([]byte(`{"workload":"VADD","mode":"naive","overrides":{"gpu.numsms":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Key != req2.Key {
		t.Fatal("full-config and override spellings of the same run disagree on the key")
	}
}

func TestParseRunRequestSeedAndFaults(t *testing.T) {
	req, err := ParseRunRequest([]byte(
		`{"workload":"VADD","mode":"dyn","seed":9,"faults":"vaultfreeze:t=1000000:hmc=1:vault=5:dur=6000000;timeout=2000;retries=3"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Cfg.Mem.PlacementSeed != 9 || req.Cfg.NDP.DecisionSeed != 9 {
		t.Fatalf("seed not folded into config: %+v", req.Cfg.Mem)
	}
	if len(req.Cfg.Fault.Events) != 1 || req.Cfg.Fault.Events[0].Kind != "vaultfreeze" {
		t.Fatalf("fault schedule not folded in: %+v", req.Cfg.Fault)
	}
	if req.Cfg.Fault.TimeoutCycles != 2000 || req.Cfg.Fault.MaxRetries != 3 {
		t.Fatalf("protocol knobs not folded in: %+v", req.Cfg.Fault)
	}
}

func TestParseRunRequestMoreCore(t *testing.T) {
	req, err := ParseRunRequest([]byte(`{"workload":"VADD","mode":"morecore"}`))
	if err != nil {
		t.Fatal(err)
	}
	def := config.Default()
	if req.Cfg.GPU.NumSMs != def.GPU.NumSMs+def.NumHMCs {
		t.Fatalf("morecore adjustment missing: NumSMs = %d", req.Cfg.GPU.NumSMs)
	}
	// Canonical spelling is baseline (the adjustment lives in the config),
	// so re-canonicalizing never double-applies it.
	if req.ModeSpec != "baseline" {
		t.Fatalf("morecore canonical spec = %q", req.ModeSpec)
	}
	plain, _ := ParseRunRequest([]byte(`{"workload":"VADD"}`))
	if req.Key == plain.Key {
		t.Fatal("morecore and baseline share a key")
	}
}

func TestRequestKeyStable(t *testing.T) {
	// The key is part of the service's persistent cache contract; pin one
	// so accidental canonicalization changes are loud. (Updating this pin
	// is fine when intentional — it invalidates every cache, which a
	// release note should mention.)
	req, err := ParseRunRequest([]byte(`{"workload":"VADD"}`))
	if err != nil {
		t.Fatal(err)
	}
	again, _ := ParseRunRequest([]byte(`{"workload":"VADD"}`))
	if req.Key != again.Key {
		t.Fatal("key not deterministic across parses")
	}
	if !strings.EqualFold(req.Key, req.Key) || strings.ToLower(req.Key) != req.Key {
		t.Fatal("key should be lower-case hex")
	}
}
