package analyzer

import (
	"testing"

	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
)

// vaddKernel: the Figure 2/3 example. c[i] = a[i] + b[i].
func vaddKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder()
	b.OpImm(isa.SHLI, 16, kernel.RegGTID, 2) // byte offset (addr calc)
	b.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	b.Op3(isa.ADD, 18, kernel.RegParam0+1, 16)
	b.Op3(isa.ADD, 19, kernel.RegParam0+2, 16)
	b.Ld(20, 17, 0)
	b.Ld(21, 18, 0)
	b.Op3(isa.FADD, 22, 20, 21)
	b.St(19, 0, 22)
	b.Exit()
	return b.MustBuild("vadd", 4, 64, 0x1000, 0x2000, 0x3000)
}

func TestVaddSingleBlock(t *testing.T) {
	p, err := Analyze(vaddKernel(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(p.Blocks))
	}
	blk := p.Blocks[0]
	if blk.NumLD != 2 || blk.NumST != 1 {
		t.Fatalf("NumLD/NumST = %d/%d, want 2/1", blk.NumLD, blk.NumST)
	}
	// NSU code: ofld.beg, ld, ld, fadd, st, ofld.end -> 4 instructions.
	if blk.NSUInstrs() != 4 {
		t.Fatalf("NSU instrs = %d, want 4\n%v", blk.NSUInstrs(), blk.NSUCode)
	}
	// fadd result is dead after the store: no registers transferred.
	if len(blk.RegsIn) != 0 || len(blk.RegsOut) != 0 {
		t.Fatalf("RegsIn=%v RegsOut=%v, want none", blk.RegsIn, blk.RegsOut)
	}
	// Score: 3 mem ops x 4 B - 0 = 12.
	if blk.Score != 12 {
		t.Fatalf("score = %d, want 12", blk.Score)
	}
}

func TestVaddRewriteShape(t *testing.T) {
	p, err := Analyze(vaddKernel(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	code := p.Kernel.Code
	blk := p.Blocks[0]
	if code[blk.BegPC].Op != isa.OFLDBEG || code[blk.EndPC].Op != isa.OFLDEND {
		t.Fatal("brackets not placed at BegPC/EndPC")
	}
	// Address-calc ALU marked, compute ALU marked @NSU.
	var addrCalc, atNSU int
	for _, in := range code[blk.BegPC+1 : blk.EndPC] {
		if in.AddrCalc {
			addrCalc++
		}
		if in.AtNSU {
			atNSU++
		}
	}
	if addrCalc != 4 { // shli + 3 adds
		t.Fatalf("addr-calc instrs = %d, want 4", addrCalc)
	}
	if atNSU != 1 { // fadd
		t.Fatalf("@NSU instrs = %d, want 1", atNSU)
	}
	// NSU code must not contain the address calculations.
	for _, in := range blk.NSUCode {
		if in.Op == isa.SHLI || in.Op == isa.ADD {
			t.Fatalf("address-calc op %v leaked into NSU code", in.Op)
		}
	}
}

// indirectKernel: x = B[A[i]] (the §4.4 pattern).
func indirectKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	b := kernel.NewBuilder()
	b.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 17, kernel.RegParam0, 16) // &A[i]
	b.Ld(18, 17, 0)                          // idx = A[i]
	b.OpImm(isa.SHLI, 19, 18, 2)
	b.Op3(isa.ADD, 20, kernel.RegParam0+1, 19) // &B[idx]
	b.Ld(21, 20, 0)                            // x = B[idx]  <- indirect
	b.OpImm(isa.SHLI, 22, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 23, kernel.RegParam0+2, 22)
	b.St(23, 0, 21)
	b.Exit()
	return b.MustBuild("indirect", 4, 64, 0x1000, 0x2000, 0x3000)
}

func TestIndirectLoadSplitsOwnBlock(t *testing.T) {
	p, err := Analyze(indirectKernel(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var indirect *Block
	for _, blk := range p.Blocks {
		if blk.Indirect {
			if indirect != nil {
				t.Fatal("more than one indirect block")
			}
			indirect = blk
		}
	}
	if indirect == nil {
		t.Fatalf("no indirect block found; blocks: %+v", p.Blocks)
	}
	if indirect.NumLD != 1 || indirect.NumST != 0 {
		t.Fatalf("indirect block LD/ST = %d/%d, want 1/0", indirect.NumLD, indirect.NumST)
	}
	if indirect.NSUInstrs() != 1 {
		t.Fatalf("indirect NSU instrs = %d, want 1", indirect.NSUInstrs())
	}
	// The loaded value (r21) is consumed by the later store -> transferred back.
	found := false
	for _, r := range indirect.RegsOut {
		if r == 21 {
			found = true
		}
	}
	if !found {
		t.Fatalf("r21 not in RegsOut: %v", indirect.RegsOut)
	}
}

func TestScratchpadExcluded(t *testing.T) {
	b := kernel.NewBuilder()
	b.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	b.Ld(18, 17, 0)
	b.Sts(16, 0, 18) // scratchpad store: breaks the region
	b.Bar()
	b.Lds(19, 16, 0)
	b.St(17, 0, 19)
	b.Exit()
	k := b.MustBuild("smem", 4, 64, 0x1000)
	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range p.Blocks {
		for _, in := range blk.NSUCode {
			if in.Op == isa.LDS || in.Op == isa.STS || in.Op == isa.BAR {
				t.Fatalf("scratchpad/sync op %v inside offload block", in.Op)
			}
		}
	}
}

func TestBlocksNeverSpanBasicBlocks(t *testing.T) {
	// Unrolled-by-4 accumulation loop: enough loads per block instance to
	// amortize the accumulator round-trip (tight 1-load loops score <= 0).
	b := kernel.NewBuilder()
	loop := b.NewLabel()
	b.MovI(16, 4)
	b.OpImm(isa.SHLI, 17, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 18, kernel.RegParam0, 17)
	b.Bind(loop)
	b.Ld(19, 18, 0)
	b.Ld(22, 18, 4)
	b.Ld(23, 18, 8)
	b.Ld(24, 18, 12)
	b.Op3(isa.FADD, 19, 19, 22)
	b.Op3(isa.FADD, 23, 23, 24)
	b.Op3(isa.FADD, 20, 19, 23)
	b.St(18, 0, 20)
	b.OpImm(isa.ADDI, 18, 18, 512)
	b.OpImm(isa.ADDI, 16, 16, -1)
	b.Setp(isa.CmpGT, 21, 16, 25)
	b.Brp(21, loop)
	b.Exit()
	k := b.MustBuild("loop", 4, 64, 0x1000)
	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) == 0 {
		t.Fatal("expected at least one block in the loop body")
	}
	// Rewritten code must still validate (branch targets fixed up).
	if err := p.Kernel.Validate(); err != nil {
		t.Fatalf("rewritten kernel invalid: %v", err)
	}
	// No branch may live inside an offload block.
	for _, blk := range p.Blocks {
		for _, in := range p.Kernel.Code[blk.BegPC+1 : blk.EndPC] {
			if in.Op.Class() == isa.ClassCtrl {
				t.Fatalf("control op %v inside offload block", in.Op)
			}
		}
	}
}

func TestBranchTargetsRemapped(t *testing.T) {
	b := kernel.NewBuilder()
	loop := b.NewLabel()
	b.MovI(16, 4)
	b.Bind(loop)
	b.OpImm(isa.SHLI, 17, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 18, kernel.RegParam0, 17)
	b.Ld(19, 18, 0)
	b.Op3(isa.FADD, 19, 19, 19)
	b.St(18, 0, 19)
	b.OpImm(isa.ADDI, 16, 16, -1)
	b.Setp(isa.CmpGT, 20, 16, 21)
	b.Brp(20, loop)
	b.Exit()
	k := b.MustBuild("loop2", 4, 64, 0x1000)
	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Find the BRP and check it targets the movi+1 position in NEW code.
	for _, in := range p.Kernel.Code {
		if in.Op == isa.BRP {
			tgt := p.Kernel.Code[in.Imm]
			// The loop head in the rewritten code is the first instruction
			// after movi: either shli or an inserted OFLDBEG.
			if tgt.Op != isa.SHLI && tgt.Op != isa.OFLDBEG {
				t.Fatalf("branch target remapped to %v", tgt.Op)
			}
		}
	}
}

func TestRegisterTransferIn(t *testing.T) {
	// Figure 3: MUL F2, F0, F1 where F0 is computed before the block.
	b := kernel.NewBuilder()
	b.Op2(isa.I2F, 16, kernel.RegGTID) // F0 computed outside region? No: ALU is offloadable.
	b.Bar()                            // force region boundary so r16 is pre-block
	b.OpImm(isa.SHLI, 17, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 18, kernel.RegParam0, 17)
	b.Ld(19, 18, 0)
	b.Op3(isa.FMUL, 20, 16, 19) // reads pre-block r16
	b.Op3(isa.ADD, 21, kernel.RegParam0+1, 17)
	b.St(21, 0, 20)
	b.Exit()
	k := b.MustBuild("regin", 4, 64, 0x1000, 0x2000)
	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(p.Blocks))
	}
	blk := p.Blocks[0]
	if len(blk.RegsIn) != 1 || blk.RegsIn[0] != 16 {
		t.Fatalf("RegsIn = %v, want [16]", blk.RegsIn)
	}
	// Score: 2 mem x 4 - 1 reg x 4 = 4.
	if blk.Score != 4 {
		t.Fatalf("score = %d, want 4", blk.Score)
	}
}

func TestNegativeScoreRejected(t *testing.T) {
	// One store of a GPU-computed value, plus needing many regs in: the
	// overhead exceeds the traffic reduction, so no block is formed.
	b := kernel.NewBuilder()
	b.Op2(isa.I2F, 16, kernel.RegGTID)
	b.Op2(isa.I2F, 17, kernel.RegCTAID)
	b.Bar() // r16, r17 now pre-block
	b.OpImm(isa.SHLI, 18, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 19, kernel.RegParam0, 18)
	b.Op3(isa.FADD, 20, 16, 17) // needs two regs in
	b.St(19, 0, 20)             // one store: traffic 4, overhead 8
	b.Exit()
	k := b.MustBuild("negscore", 4, 64, 0x1000)
	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 0 {
		t.Fatalf("blocks = %d, want 0 (score must be negative): %+v", len(p.Blocks), p.Blocks[0])
	}
}

func TestDuplicatedAddrCalcNotReturned(t *testing.T) {
	// The byte-offset shli feeds both the address and (via i2f) the stored
	// value: it is duplicated to both sides but must not appear in RegsOut.
	b := kernel.NewBuilder()
	b.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	b.Ld(18, 17, 0)
	b.Op2(isa.I2F, 19, 16) // reads the addr-calc value
	b.Op3(isa.FADD, 20, 18, 19)
	b.St(17, 0, 20)
	b.Exit()
	k := b.MustBuild("dual", 4, 64, 0x1000)
	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(p.Blocks))
	}
	blk := p.Blocks[0]
	for _, r := range blk.RegsOut {
		if r == 16 {
			t.Fatal("duplicated addr-calc result r16 wrongly in RegsOut")
		}
	}
	// NSU code needs the shli duplicated (r16 read by i2f) or r16 as RegIn.
	hasShli := false
	for _, in := range blk.NSUCode {
		if in.Op == isa.SHLI {
			hasShli = true
		}
	}
	regIn16 := false
	for _, r := range blk.RegsIn {
		if r == 16 {
			regIn16 = true
		}
	}
	if !hasShli && !regIn16 {
		t.Fatal("NSU code can not compute r16: neither duplicated nor transferred")
	}
}

func TestAnalyzeIsIdempotentOnInput(t *testing.T) {
	k := vaddKernel(t)
	before := len(k.Code)
	if _, err := Analyze(k, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if len(k.Code) != before {
		t.Fatal("Analyze mutated its input kernel")
	}
	for _, in := range k.Code {
		if in.Op == isa.OFLDBEG || in.Op == isa.OFLDEND {
			t.Fatal("Analyze inserted brackets into the input")
		}
	}
}

func TestTable1StyleCounts(t *testing.T) {
	// VADD's offload block has 4 NSU instructions in Table 1 (2 LD, 1 ALU,
	// 1 ST). Our vadd matches.
	p, err := Analyze(vaddKernel(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Blocks[0].NSUInstrs(); got != 4 {
		t.Fatalf("VADD NSU instrs = %d, want 4 (Table 1)", got)
	}
}

// TestTailTrimDropsReductionTail: a reduction block (loads + accumulate +
// min-update tail) should end at the arithmetic producing the result, with
// the comparison/select tail left to the GPU — one register out instead of
// a loop-state round trip.
func TestTailTrimDropsReductionTail(t *testing.T) {
	b := kernel.NewBuilder()
	loop := b.NewLabel()
	b.MovI(16, 4)          // loop counter
	b.MovI(20, 0x7F800000) // best = +inf bits
	b.MovI(21, 0)          // best index
	b.OpImm(isa.SHLI, 17, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 18, kernel.RegParam0, 17)
	b.Bind(loop)
	b.MovI(25, 0) // dist
	for f := 0; f < 4; f++ {
		b.Ld(26, 18, int64(4*f))
		b.Op4(isa.FMA, 25, 26, 26, 25)
	}
	b.Setp(isa.CmpFLT, 27, 25, 20)
	b.Op4(isa.SEL, 20, 25, 20, 27)
	b.Op4(isa.SEL, 21, 16, 21, 27)
	b.OpImm(isa.ADDI, 18, 18, 1024)
	b.OpImm(isa.ADDI, 16, 16, -1)
	b.MovI(28, 0)
	b.Setp(isa.CmpGT, 29, 16, 28)
	b.Brp(29, loop)
	b.Op3(isa.ADD, 30, kernel.RegParam0+1, 17)
	b.St(30, 0, 21)
	b.Exit()
	k := b.MustBuild("kmnish", 2, 64, 0x1000, 0x2000)

	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var blk *Block
	for _, c := range p.Blocks {
		if c.NumLD == 4 {
			blk = c
		}
	}
	if blk == nil {
		t.Fatalf("no 4-load block found: %+v", p.Blocks)
	}
	// Tail trim leaves only the dist result to transfer back, not the
	// best/bestIdx loop state.
	if len(blk.RegsIn)+len(blk.RegsOut) > 2 {
		t.Fatalf("transfers not minimized: in=%v out=%v", blk.RegsIn, blk.RegsOut)
	}
	for _, in := range blk.NSUCode {
		if in.Op == isa.SEL || in.Op == isa.SETP {
			t.Fatalf("min-update tail (%v) left inside the block", in.Op)
		}
	}
}

// TestLDCStaysInBlocks: constant loads are legal NSU instructions (Table 2
// gives the NSU a constant cache) and never become RDF traffic.
func TestLDCStaysInBlocks(t *testing.T) {
	b := kernel.NewBuilder()
	b.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	b.Ld(18, 17, 0)
	b.Ldc(19, kernel.RegParam0+1, 4)
	b.Op3(isa.FMUL, 20, 18, 19)
	b.St(17, 0, 20)
	b.Exit()
	k := b.MustBuild("ldc", 2, 64, 0x1000, 0x2000)
	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(p.Blocks))
	}
	blk := p.Blocks[0]
	if blk.NumLD != 1 {
		t.Fatalf("NumLD = %d: LDC must not count as a global load", blk.NumLD)
	}
	found := false
	for _, in := range blk.NSUCode {
		if in.Op == isa.LDC {
			found = true
		}
	}
	if !found {
		t.Fatal("LDC missing from NSU code")
	}
}

// TestMergedIndirectRegion: back-to-back indirect gathers form one block so
// a burst costs one offload round trip.
func TestMergedIndirectRegion(t *testing.T) {
	b := kernel.NewBuilder()
	b.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	b.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	b.Ld(18, 17, 0) // idx0
	b.Ld(19, 17, 4) // idx1
	b.OpImm(isa.SHLI, 20, 18, 2)
	b.Op3(isa.ADD, 20, kernel.RegParam0+1, 20)
	b.OpImm(isa.SHLI, 21, 19, 2)
	b.Op3(isa.ADD, 21, kernel.RegParam0+1, 21)
	b.Ld(22, 20, 0) // gather 0
	b.Ld(23, 21, 0) // gather 1 (adjacent: merges)
	b.Op3(isa.FADD, 24, 22, 23)
	b.Op3(isa.ADD, 25, kernel.RegParam0+2, 16)
	b.St(25, 0, 24)
	b.Exit()
	k := b.MustBuild("gather2", 2, 64, 0x1000, 0x2000, 0x3000)
	p, err := Analyze(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var merged *Block
	for _, c := range p.Blocks {
		if c.Indirect {
			if merged != nil {
				t.Fatal("adjacent gathers were not merged into one block")
			}
			merged = c
		}
	}
	if merged == nil || merged.NumLD != 2 {
		t.Fatalf("merged indirect block missing or wrong: %+v", merged)
	}
}
