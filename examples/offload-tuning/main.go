// Offload tuning: sweeps the static offload ratio over a bandwidth-bound
// workload (the KMN kernel from the Table 1 suite) and then lets the
// Algorithm 1 hill-climbing controller find a ratio dynamically, printing
// its per-epoch trace. Reproduces the §7.1/§7.2 story at example scale.
//
//	go run ./examples/offload-tuning
package main

import (
	"fmt"
	"log"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

func run(cfg config.Config, mode sim.Mode) (us float64, trace []float64) {
	mem := vm.New(cfg)
	w, err := workloads.Build("KMN", mem, 1)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sim.Launch(cfg, w.Kernel, mem, mode)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		log.Fatal(err)
	}
	return float64(res.TimePS) / 1e6, res.Stats.RatioTrace
}

func main() {
	cfg := config.Default()
	base, _ := run(cfg, sim.Baseline)
	fmt.Printf("baseline: %.1f us\n\n", base)

	fmt.Println("static offload ratio sweep (§7.1):")
	best := 0.0
	bestT := base
	for _, p := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		t, _ := run(cfg, sim.StaticNDP(p))
		fmt.Printf("  ratio %.1f: %7.1f us  (speedup %.2fx)\n", p, t, base/t)
		if t < bestT {
			best, bestT = p, t
		}
	}
	fmt.Printf("best static ratio: %.1f (%.2fx)\n\n", best, base/bestT)

	t, trace := run(cfg, sim.DynNDP)
	fmt.Printf("dynamic controller (Algorithm 1): %.1f us (speedup %.2fx)\n", t, base/t)
	fmt.Print("per-epoch ratio trace: ")
	for i, r := range trace {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%.2f", r)
	}
	fmt.Println()
}
