package metrics

import (
	"sync/atomic"
	"time"
)

// StallGuard is a wall-clock liveness tracker for consumers of the epoch
// sample hook (SetSampleHook): the producer calls Touch on every sample, and
// a watchdog on another goroutine asks Stalled to learn whether the stream of
// samples has dried up. Both sides are lock-free — one atomic store per
// sample keeps the guard cheap enough to sit on the simulation hot path.
type StallGuard struct {
	window time.Duration
	last   atomic.Int64 // time.Time.UnixNano of the most recent Touch
}

// NewStallGuard returns a guard that reports a stall when more than window
// elapses between touches. The clock starts at creation, so a run that never
// produces a single sample still trips the guard.
func NewStallGuard(window time.Duration) *StallGuard {
	g := &StallGuard{window: window}
	g.Touch()
	return g
}

// Touch records progress.
func (g *StallGuard) Touch() { g.last.Store(time.Now().UnixNano()) }

// SinceTouch returns the time elapsed since the last Touch.
func (g *StallGuard) SinceTouch() time.Duration {
	return time.Duration(time.Now().UnixNano() - g.last.Load())
}

// Stalled reports whether the window has elapsed without a Touch.
func (g *StallGuard) Stalled() bool { return g.SinceTouch() > g.window }

// Window returns the configured stall window.
func (g *StallGuard) Window() time.Duration { return g.window }
