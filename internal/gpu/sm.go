package gpu

import (
	"fmt"
	"math/bits"

	"ndpgpu/internal/cache"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
)

const inf = timing.PS(1) << 62

// ctaState tracks one resident thread block.
type ctaState struct {
	id      int
	live    int // non-exited warps
	arrived int // warps waiting at the barrier
	warps   []*warp
}

// offCtx is the SM-side state of one in-flight offloaded block instance.
type offCtx struct {
	block       *coreBlock
	id          core.OffloadID
	target      int
	targetKnown bool
	seqLD       int
	seqST       int
	began       timing.PS // OFLDBEG issue time, for ack-latency accounting
	cmdBytes    int       // command-packet register payload, for transfer profiling
	// ack holds an acknowledgment that arrived before the warp reached
	// OFLD.END (the NSU can finish as soon as the last RDF response lands,
	// while the GPU is still walking the block). It is applied when the
	// warp executes OFLD.END.
	ack *core.AckPacket

	// Resilient-protocol state, used only under fault injection. tag carries
	// the instance/attempt sequence numbers for duplicate suppression;
	// deadline is the current attempt's ack timeout; regSnap preserves the
	// register file at OFLDBEG so a retry or host fallback can re-execute
	// the block from unclobbered live-ins.
	tag      core.ProtoTag
	deadline timing.PS
	regSnap  *[isa.NumRegs][core.WarpWidth]uint64
}

// offSpan records one completed offload round trip (OFLDBEG issue to ack
// application) for the metrics layer's duration-event export.
type offSpan struct {
	warp  int
	block int
	start timing.PS
	dur   timing.PS
}

// coreBlock caches the analyzer block plus derived info the SM needs often.
type coreBlock struct {
	id          int
	begPC       int
	endPC       int
	numLD       int
	numST       int
	regsIn      []isa.Reg
	regsOut     []isa.Reg
	instrs      int // region instruction count (Table 1 metric + epoch IPC)
	indirect    bool
	nsuCodeSize int // bytes, for NSU I-cache accounting
}

// microOp is one coalesced line access of an in-flight memory instruction.
type microOp struct {
	access  core.LineAccess
	isStore bool
	dst     isa.Reg                // load destination
	offload bool                   // partitioned-execution semantics (RDF/WTA)
	seq     int                    // memory-instruction sequence number within the block
	total   int                    // packets generated for this instruction
	readyAt timing.PS              // earliest service time (TLB page-walk penalty)
	data    [core.WarpWidth]uint32 // store data (baseline mode)
}

// warp is one hardware warp context.
type warp struct {
	slot int
	cta  *ctaState

	pc        int
	mask      uint32
	exited    bool
	atBarrier bool
	waitAck   bool

	regs        [isa.NumRegs][core.WarpWidth]uint64
	regReady    [isa.NumRegs]timing.PS
	outstanding [isa.NumRegs]int16

	memq    []microOp
	memqBuf []microOp // backing array reused across memory instructions

	off      *offCtx // non-nil while inside an offloaded block instance
	inRegion bool    // inside a block executing normally (not offloaded)
	regionID int

	// fetchUntil stalls issue while the instruction line is fetched into
	// the L1I (Table 2: 4 KB, 4-way). Kernel footprints are small, so this
	// matters only for cold starts.
	fetchUntil timing.PS
}

type loadWaiter struct {
	w   *warp
	dst isa.Reg
}

// SM is one streaming multiprocessor.
type SM struct {
	id int
	g  *GPU

	l1      *cache.Cache
	l1i     *cache.Cache
	tlb     *cache.Cache
	waiters map[uint64][]loadWaiter

	warps []*warp // slot -> warp (nil when free)
	ctas  []*ctaState

	// freeWarps recycles exited warp contexts: the per-warp register file
	// dominates the simulator's allocation profile, so refill reuses retired
	// structs instead of allocating. A warp is only pooled once nothing can
	// reference it — no offload context and no outstanding L1 fills (a fill
	// waiter holds the warp pointer until the line lands).
	freeWarps []*warp

	readyQ   []outPkt // ready packet buffer (drained 1/cycle to the fabric)
	pendingQ []outPkt // pending packet buffer (target not yet known)

	// Per-cycle issue resources.
	aluUsed, lsuUsed, issued int
	sawExecBlock             bool
	sawDepBlock              bool
	sawCreditBlock           bool

	// Warp scheduling state: the greedy warp for GTO, the rotation point
	// for round-robin.
	greedyWarp int
	rrStart    int
	order      []int // scratch for schedOrder
	orderKey   int   // greedyWarp (gto) or rrStart (rr) the order was built for

	// live lists the slots holding non-exited warps in ascending order, so
	// the dense tick visits only occupied slots instead of scanning the whole
	// warp array. Launches and exits mark it dirty; the next dense tick
	// rebuilds it (stale entries are re-screened, so a mid-tick exit is
	// harmless).
	live      []int
	liveDirty bool

	// Per-slot dense-tick block cache: while slotWake[slot] > now, the warp's
	// tick reduces to its fixed per-cycle effects — a dependency-stall flag,
	// plus (slotProbe) the L1I re-probe a scoreboard-blocked warp performs —
	// without decoding or rescanning the scoreboard. Entries are written by
	// processMemq (translation wait, no probe) and tryIssue (scoreboard
	// block, probe) and cleared whenever the blocking condition can lift
	// early: a load-line completion, an ack write-back, or any L1I fill
	// (which could evict the probed code line).
	// slotLine mirrors the blocked warp's fetch line so the replay never has
	// to dereference the (large, cache-unfriendly) warp struct at all.
	slotWake  []timing.PS
	slotProbe []bool
	slotLine  []uint64

	// Hot-path scratch buffers, reused across cycles so the per-instruction
	// work allocates nothing: refill's free-slot scan, coalesce's line list,
	// and setupMem's per-line home vaults.
	freeScratch  []int
	lineScratch  []core.LineAccess
	homesScratch []int

	// Idle-skip mirror cache (see computeIdle). Valid until the SM runs a
	// full tick or an external event (ack delivery, L1 fill) dirties it.
	idleValid bool
	idleWake  timing.PS
	idleKind  int8   // stats.StallKind an idle cycle records, or -1 for none
	idleLk    []bool // per slot: warp re-probes the L1I every blocked cycle
	idleLkN   int64  // number of set idleLk flags
	idleLkSch []int  // slots with set flags, in certification-time sched order

	// pendingIdle counts certified-idle cycles whose per-cycle effects have
	// not been applied yet. Idle ticks and domain-level skips only increment
	// it; flushIdle replays the batch before anything can observe the
	// affected state (a dense tick, a mirror-dirtying event, finalization).
	pendingIdle int64

	// seenCycle is the last GPU cycle this SM accounted for. The engine's
	// wake scheduling advances the global cycle counter without visiting
	// parked SMs, so each visit (or mirror-dirtying event) first folds the
	// unvisited gap — all provably idle cycles — into pendingIdle via
	// creditIdle.
	seenCycle int64

	// instSeq numbers offload instances per warp slot (monotonic across CTA
	// reuse of the slot), feeding the duplicate-suppression tags of the
	// resilient offload protocol. Only advanced under fault injection.
	instSeq []int32

	// Parallel-execution state (see GPU.SetParallel). In serial mode st
	// aliases the GPU's stats bundle and sender is the fabric itself, so
	// every write lands exactly where it always did; SetParallel swaps in a
	// shard-private bundle and a deferring outbox.
	st     *stats.Stats
	sender noc.Sender
	outbox *noc.Outbox
	prof   *core.ProfileShard

	// wtaDelta buffers SM-phase WTA in-flight increments per target HMC,
	// folded into the shared ledger at the tick barrier (decrements only
	// happen on the serial crossbar phase).
	wtaDelta []int64

	// pushLog defers L2-slice pushes generated during a parallel SM compute
	// phase; the commit replays them in SM index order, reproducing the
	// serial slice-queue contents.
	pushLog []*l2Req

	// regionInstrs accumulates offload-region instructions (SM phase and
	// crossbar-phase ack deliveries); GPU.Tick folds it into the epoch
	// counter before every epoch check, in both modes.
	regionInstrs int64

	// mSeen/mSent mirror the offload decision counters for the metrics
	// sampler. They are unconditional plain adds (not gated on a collector)
	// so enabling metrics cannot change simulation behavior, and per-SM so
	// the parallel compute phase never contends on them.
	mSeen int64
	mSent int64

	// spans buffers completed offload round trips for the metrics span sink;
	// GPU.drainSpans empties it in SM index order each tick. nil-capacity
	// and never appended to while no sink is attached.
	spans []offSpan

	// Prologue-to-tick handoff in parallel mode: the CTA launch (which
	// consumes the shared grid cursor) runs in the serial prologue and the
	// compute tick reads the outcome here. ctaSnap freezes the cursor right
	// after this SM's own launch, so stall classification and idle
	// certification observe exactly the value the serial interleaving would
	// have shown them.
	launched    bool
	prelaunched bool
	ctaSnap     int

	// maxCTAs memoizes maxResidentCTAs — every input is a kernel constant.
	maxCTAs      int
	maxCTAsValid bool

	// smem backs the functional scratchpad of resident CTAs, keyed by CTA
	// id (per-SM so concurrent shards never share a map).
	smem map[int]map[uint64]uint32
}

// outPkt is a packet waiting in the SM's NDP packet buffers.
type outPkt struct {
	target int
	size   int
	msg    any
}

func newSM(g *GPU, id int) *SM {
	tlbGeom := config.CacheGeom{
		SizeBytes: g.cfg.GPU.TLBEntries * g.cfg.Mem.PageBytes,
		Ways:      g.cfg.GPU.TLBWays,
		LineBytes: g.cfg.Mem.PageBytes,
		MSHRs:     1,
	}
	return &SM{
		id:        id,
		g:         g,
		st:        g.st,
		sender:    g.fab,
		l1:        cache.New(g.cfg.GPU.L1D),
		l1i:       cache.New(g.cfg.GPU.L1I),
		tlb:       cache.New(tlbGeom),
		waiters:   make(map[uint64][]loadWaiter),
		warps:     make([]*warp, g.cfg.WarpsPerSM()),
		idleLk:    make([]bool, g.cfg.WarpsPerSM()),
		slotWake:  make([]timing.PS, g.cfg.WarpsPerSM()),
		slotProbe: make([]bool, g.cfg.WarpsPerSM()),
		slotLine:  make([]uint64, g.cfg.WarpsPerSM()),
		instSeq:   make([]int32, g.cfg.WarpsPerSM()),
		smem:      make(map[int]map[uint64]uint32),
	}
}

// maxResidentCTAs computes the CTA occupancy limit for the kernel.
func (s *SM) maxResidentCTAs() int {
	k := s.g.prog.Kernel
	c := s.g.cfg.GPU
	warpsPerCTA := (k.BlockDim + c.WarpWidth - 1) / c.WarpWidth
	limit := c.MaxCTAsPerSM
	if byThreads := c.MaxThreadsPerSM / k.BlockDim; byThreads < limit {
		limit = byThreads
	}
	regsPerCTA := k.RegsUsed * k.BlockDim
	if regsPerCTA > 0 {
		if byRegs := c.MaxRegsPerSM / regsPerCTA; byRegs < limit {
			limit = byRegs
		}
	}
	if k.SmemBytes > 0 {
		if bySmem := c.ScratchpadBytes / k.SmemBytes; bySmem < limit {
			limit = bySmem
		}
	}
	if bySlots := len(s.warps) / warpsPerCTA; bySlots < limit {
		limit = bySlots
	}
	return limit
}

// maxCTAsCached memoizes maxResidentCTAs: every input is a kernel constant,
// and both refill and idle certification consult it every dense cycle.
func (s *SM) maxCTAsCached() int {
	if !s.maxCTAsValid {
		s.maxCTAs = s.maxResidentCTAs()
		s.maxCTAsValid = true
	}
	return s.maxCTAs
}

// seqDo runs f at this SM's serial position when a parallel compute phase is
// active — shard k's sequenced operations run only after every lower shard's
// whole tick, which is exactly where serial execution would have placed them
// — and inline otherwise.
func (s *SM) seqDo(f func()) {
	if s.g.smPhase {
		s.g.seq.Do(s.id, f)
	} else {
		f()
	}
}

// decide consults the offload decider. Stateful deciders (seeded PRNG draws,
// cache-locality profile reads) must observe exactly the serial call
// sequence, so during a parallel compute phase the call runs through the
// sequencer; pure deciders (Never/Always) skip it. For the cache-aware
// decider the profile shards of every SM up to and including this one are
// folded first — lower shards have finished their whole tick, so the decision
// reads exactly the profile state serial execution would have accumulated.
func (s *SM) decide(blockID int) bool {
	g := s.g
	if !g.smPhase || g.decPure {
		return g.dec.Decide(blockID)
	}
	var res bool
	g.seq.Do(s.id, func() {
		if g.ca != nil {
			for i := 0; i <= s.id; i++ {
				g.ca.FoldShard(g.sms[i].prof)
			}
		}
		res = g.dec.Decide(blockID)
	})
	return res
}

// recordLine feeds a cache-profile line record to the decider: buffered in
// the SM's profile shard during a parallel compute phase, direct otherwise
// (the crossbar phase and serial mode both run on the coordinator).
func (s *SM) recordLine(blockID int, hit bool, words int) {
	if s.g.smPhase && s.prof != nil {
		s.prof.RecordLine(blockID, hit, words)
		return
	}
	s.g.recordLine(blockID, hit, words)
}

func (s *SM) recordInstance(blockID int) {
	if s.g.smPhase && s.prof != nil {
		s.prof.RecordInstance(blockID)
		return
	}
	if s.g.rec != nil {
		s.g.rec.RecordInstance(blockID)
	}
}

func (s *SM) recordTransfer(blockID, bytes int) {
	if s.g.smPhase && s.prof != nil {
		s.prof.RecordTransfer(blockID, bytes)
		return
	}
	if s.g.rec != nil {
		s.g.rec.RecordTransfer(blockID, bytes)
	}
}

// pushL2 routes an L2-slice request: deferred to the commit log during a
// parallel compute phase so the shared slices observe requests in SM index
// order, direct otherwise. A direct push gives the crossbar domain work, so
// it re-arms a parked crossbar ticker.
func (s *SM) pushL2(r *l2Req) {
	if s.g.smPhase {
		s.pushLog = append(s.pushLog, r)
		return
	}
	s.g.sliceFor(r.line).push(r)
	if s.g.onXbarWake != nil {
		s.g.onXbarWake()
	}
}

// addWTA accounts an in-flight WTA packet: buffered per SM during a parallel
// compute phase (folded at the tick barrier), direct otherwise.
func (s *SM) addWTA(home int) {
	if s.wtaDelta != nil {
		s.wtaDelta[home]++
		return
	}
	s.g.wtaInflight[home]++
}

// commit replays this SM's deferred cross-shard effects at the tick barrier:
// first the outbox (the fabric packet drainReady sent this tick — serial
// ticks send before they push), then the L2-slice pushes, each in the order
// the compute phase generated them.
func (s *SM) commit() {
	if s.outbox.Pending() > 0 {
		s.outbox.Flush()
	}
	for i, r := range s.pushLog {
		s.g.sliceFor(r.line).push(r)
		s.pushLog[i] = nil
	}
	s.pushLog = s.pushLog[:0]
}

// smemFor returns the functional scratchpad storage of a resident CTA.
func (s *SM) smemFor(ctaID int) map[uint64]uint32 {
	m, ok := s.smem[ctaID]
	if !ok {
		m = make(map[uint64]uint32)
		s.smem[ctaID] = m
	}
	return m
}

// refill launches new CTAs into free slots, at most one per cycle (the
// hardware work distributor's launch rate), which also spreads the grid
// across all SMs instead of front-loading the first ones.
func (s *SM) refill() {
	k := s.g.prog.Kernel
	warpsPerCTA := (k.BlockDim + s.g.cfg.GPU.WarpWidth - 1) / s.g.cfg.GPU.WarpWidth
	limit := s.maxCTAsCached()
	if len(s.ctas) < limit && s.g.nextCTA < k.GridDim {
		// Find contiguous-enough free slots.
		free := s.freeScratch[:0]
		for slot := range s.warps {
			if s.warps[slot] == nil {
				free = append(free, slot)
				if len(free) == warpsPerCTA {
					break
				}
			}
		}
		if len(free) < warpsPerCTA {
			s.freeScratch = free[:0]
			return
		}
		ctaID := s.g.nextCTA
		s.g.nextCTA++
		cta := &ctaState{id: ctaID, live: warpsPerCTA}
		for wi := 0; wi < warpsPerCTA; wi++ {
			var w *warp
			if n := len(s.freeWarps); n > 0 {
				w = s.freeWarps[n-1]
				s.freeWarps[n-1] = nil
				s.freeWarps = s.freeWarps[:n-1]
				// Reset to fresh-allocation state; the whole-struct assignment
				// zeroes the register file and scoreboard. The memq backing
				// array survives — entries are written whole before use.
				buf := w.memqBuf[:0]
				*w = warp{slot: free[wi], cta: cta, memqBuf: buf}
			} else {
				w = &warp{slot: free[wi], cta: cta}
			}
			s.initWarp(w, ctaID, wi)
			s.warps[free[wi]] = w
			s.slotWake[free[wi]] = 0
			cta.warps = append(cta.warps, w)
		}
		s.freeScratch = free[:0]
		s.ctas = append(s.ctas, cta)
		s.liveDirty = true
	}
}

// initWarp sets up the ABI registers (see package kernel).
func (s *SM) initWarp(w *warp, ctaID, warpInCTA int) {
	k := s.g.prog.Kernel
	ww := s.g.cfg.GPU.WarpWidth
	base := warpInCTA * ww
	var mask uint32
	for t := 0; t < ww; t++ {
		tid := base + t
		if tid >= k.BlockDim {
			break
		}
		mask |= 1 << uint(t)
		gtid := ctaID*k.BlockDim + tid
		w.regs[kernel.RegGTID][t] = uint64(gtid)
		w.regs[kernel.RegCTAID][t] = uint64(ctaID)
		w.regs[kernel.RegTID][t] = uint64(tid)
		w.regs[kernel.RegNTID][t] = uint64(k.BlockDim)
		for p, v := range k.Params {
			w.regs[int(kernel.RegParam0)+p][t] = v
		}
	}
	w.mask = mask
}

// tick advances the SM by one core clock.
func (s *SM) tick(now timing.PS) {
	c := s.g.cycles
	if s.idleValid && s.idleWake > now {
		// A prior computeIdle certified that nothing can issue strictly
		// before idleWake and no external event has dirtied the mirror: the
		// cycle's effects are deferred until something can observe them. The
		// credit covers this edge plus any the engine advanced past while the
		// SM was parked — all provably idle for the same reason.
		s.pendingIdle += c - s.seenCycle
		s.seenCycle = c
		return
	}
	if gap := c - 1 - s.seenCycle; gap > 0 {
		// Edges elided while this SM was parked; this edge runs densely.
		s.pendingIdle += gap
	}
	s.seenCycle = c
	s.flushIdle()
	s.idleValid = false
	var launched bool
	if s.prelaunched {
		// Parallel mode: the serial prologue already ran this SM's launch
		// and snapshotted the grid cursor.
		s.prelaunched = false
		launched = s.launched
	} else {
		preCTA := s.g.nextCTA
		s.refill()
		launched = s.g.nextCTA != preCTA
		s.ctaSnap = s.g.nextCTA
	}
	if !launched && len(s.readyQ) == 0 {
		// Certify-first: decide from the mirror whether this tick could do
		// anything beyond a blocked cycle's fixed effects. If it is provably
		// empty, defer it like any other idle cycle instead of paying the
		// dense per-warp walk — skipIdle's batched replay is bit-identical
		// to the walk (same stall class, same L1I probe set in the same
		// visit order, same final LRU stamps). A busy verdict leaves
		// idleWake=now and the dense walk proceeds as before; the scan exits
		// on the first busy warp, so busy ticks pay only a short prefix.
		s.computeIdle(now)
		if s.idleWake > now {
			s.pendingIdle++
			return
		}
		s.idleValid = false
	}
	s.aluUsed, s.lsuUsed, s.issued = 0, 0, 0
	s.sawExecBlock, s.sawDepBlock, s.sawCreditBlock = false, false, false

	sent := len(s.readyQ) > 0
	s.drainReady(now)

	if s.liveDirty {
		s.rebuildLive()
	}
	anyLive := false
	if s.g.cfg.GPU.SchedulerKind == "rr" {
		for _, slot := range s.schedOrder() {
			w := s.warps[slot]
			if w == nil || w.exited {
				continue
			}
			anyLive = true
			s.stepSlot(w, slot, now)
		}
		s.rrStart = (s.rrStart + 1) % len(s.warps)
	} else {
		// GTO: greedy slot first, then the live slots in ascending order —
		// the same visit sequence schedOrder produces, without touching the
		// empty and exited slots.
		// A slot with a live block-cache entry necessarily holds a live,
		// non-barrier, non-ack warp (blocked warps cannot exit and exiting
		// warps never leave an entry behind), so the replay runs off the
		// SM-local slot arrays without dereferencing the warp at all.
		gslot := s.greedyWarp
		if s.slotWake[gslot] > now {
			anyLive = true
			s.blockedReplay(gslot)
		} else if w := s.warps[gslot]; w != nil && !w.exited {
			anyLive = true
			s.stepSlot(w, gslot, now)
		}
		for _, slot := range s.live {
			if slot == gslot {
				continue
			}
			if s.slotWake[slot] > now {
				anyLive = true
				s.blockedReplay(slot)
				continue
			}
			w := s.warps[slot]
			if w == nil || w.exited {
				continue
			}
			anyLive = true
			s.stepSlot(w, slot, now)
		}
	}

	if s.issued > 0 {
		s.st.IssueCycles++
		return
	}
	switch {
	case !anyLive:
		if s.ctaSnap < s.g.prog.Kernel.GridDim {
			s.st.AddNoIssue(stats.WarpIdle)
		}
	case s.sawExecBlock:
		s.st.AddNoIssue(stats.ExecUnitBusy)
	case s.sawDepBlock:
		s.st.AddNoIssue(stats.DependencyStall)
	default:
		// Warps blocked on offload acknowledgments or NSU buffer credits
		// have no issuable instruction: the paper's "warp idle" class.
		s.st.AddNoIssue(stats.WarpIdle)
	}
	if !launched && !sent && s.lsuUsed == 0 {
		// The tick issued nothing, launched nothing, sent nothing, and served
		// no memory micro-op: certify (and cache) how long this idleness
		// lasts, so the following empty ticks reduce to skipIdle(1) and the
		// engine can fast-forward the domain when every SM agrees.
		s.computeIdle(now)
	}
}

// stepSlot runs the per-warp portion of a dense tick for one live warp.
func (s *SM) stepSlot(w *warp, slot int, now timing.PS) {
	if w.atBarrier || w.waitAck {
		if w.waitAck && s.g.flt != nil && now > w.off.deadline {
			s.handleTimeout(w, now)
		}
		return
	}
	if s.slotWake[slot] > now {
		s.blockedReplay(slot)
		return
	}
	if len(w.memq) > 0 {
		s.processMemq(w, now)
		return
	}
	if s.issued >= s.g.cfg.GPU.MaxIssue {
		return
	}
	before := s.issued
	s.tryIssue(w, now)
	if s.issued > before {
		s.greedyWarp = slot
	}
}

// blockedReplay applies the cached per-cycle effects of a blocked warp: the
// stall-classification flag, plus (slotProbe) the L1I re-probe a
// scoreboard-blocked warp performs while the issue width is not exhausted —
// a certified hit, since any fill since certification cleared the entry. A
// translation-wait warp (no probe) follows processMemq's classification:
// saturated LSUs read as an execution-unit block, otherwise the wait is a
// dependency stall.
func (s *SM) blockedReplay(slot int) {
	if !s.slotProbe[slot] {
		if s.lsuUsed >= s.g.cfg.GPU.NumLSUs {
			s.sawExecBlock = true
		} else {
			s.sawDepBlock = true
		}
		return
	}
	if s.issued >= s.g.cfg.GPU.MaxIssue {
		return
	}
	s.l1i.Lookup(s.slotLine[slot])
	s.sawDepBlock = true
}

// rebuildLive refreshes the ascending list of slots holding live warps.
func (s *SM) rebuildLive() {
	s.live = s.live[:0]
	for slot, w := range s.warps {
		if w != nil && !w.exited {
			s.live = append(s.live, slot)
		}
	}
	s.liveDirty = false
}

// nextWorkAt returns the earliest time this SM could do anything other than
// a provably empty tick. It is a pure read of the mirror cache: certification
// happens as a byproduct of an empty dense tick (see tick), so an SM whose
// mirror is invalid — it just did work, or an external event dirtied it —
// reads as busy and simply runs its next tick densely.
func (s *SM) nextWorkAt(now timing.PS) timing.PS {
	if !s.idleValid {
		return now
	}
	return s.idleWake
}

// computeIdle is a side-effect-free mirror of tick: it decides whether the
// next tick would mutate anything beyond the fixed per-cycle effects of a
// blocked cycle (the no-issue stall classification, the L1I re-probes of
// scoreboard-blocked warps, and the round-robin rotation). On a busy result
// it records wake=now and leaves the previous idle profile untouched — a
// busy evaluation never feeds skipIdle. On an idle result it records the
// wake time (earliest scoreboard release, fetch completion, or translation
// completion) plus the per-cycle profile skipIdle replays.
func (s *SM) computeIdle(now timing.PS) {
	g := s.g
	k := g.prog.Kernel
	// refill would launch a CTA this cycle. The cursor snapshot (ctaSnap)
	// rather than the live cursor keeps the verdict identical under parallel
	// execution, where later SMs' launches land before this runs.
	if s.ctaSnap < k.GridDim && len(s.ctas) < s.maxCTAsCached() {
		warpsPerCTA := (k.BlockDim + g.cfg.GPU.WarpWidth - 1) / g.cfg.GPU.WarpWidth
		free := 0
		for _, w := range s.warps {
			if w == nil {
				free++
				if free == warpsPerCTA {
					break
				}
			}
		}
		if free >= warpsPerCTA {
			s.idleValid, s.idleWake = true, now // busy
			return
		}
	}
	// drainReady would push a packet onto the fabric.
	if len(s.readyQ) > 0 {
		s.idleValid, s.idleWake = true, now // busy
		return
	}
	wake := timing.Never
	anyLive, anyDep := false, false
	s.idleLkN = 0
	s.idleLkSch = s.idleLkSch[:0]
	// Visit warps in scheduling order: on a busy SM the greedy warp is the
	// likeliest issuer, so the scan exits after one or two warps instead of
	// wading through every blocked warp first. The visit order is also the
	// replay order skipIdle needs under GTO (frozen while the SM is idle,
	// since greedyWarp only moves on an issue).
	for _, slot := range s.schedOrder() {
		s.idleLk[slot] = false
		if sw := s.slotWake[slot]; sw > now {
			// The block cache already certifies this warp's verdict (it holds
			// a live, non-barrier warp — see tick): blocked until sw, probing
			// the L1I each cycle iff slotProbe. No decode needed.
			anyLive, anyDep = true, true
			if s.slotProbe[slot] {
				s.idleLk[slot] = true
				s.idleLkN++
				s.idleLkSch = append(s.idleLkSch, slot)
			}
			if sw != inf && sw < wake {
				wake = sw
			}
			continue
		}
		w := s.warps[slot]
		if w == nil || w.exited {
			continue
		}
		anyLive = true
		if w.atBarrier || w.waitAck {
			// Released by another warp's issue or by an ack delivery — both
			// dirty the mirror; no self-wake. Under fault injection a waiting
			// warp also self-wakes at its ack-timeout deadline.
			if w.waitAck && s.g.flt != nil {
				if now > w.off.deadline {
					s.idleValid, s.idleWake = true, now // busy: timeout due
					return
				}
				if w.off.deadline+1 < wake {
					wake = w.off.deadline + 1
				}
			}
			continue
		}
		if len(w.memq) > 0 {
			if at := w.memq[0].readyAt; at > now {
				anyDep = true // processMemq charges a dependency stall
				if TraceGTID < 0 {
					s.slotWake[slot] = at
					s.slotProbe[slot] = false
				}
				if at < wake {
					wake = at
				}
				continue
			}
			s.idleValid, s.idleWake = true, now // busy: a micro-op is served
			return
		}
		if w.fetchUntil > now {
			// Fetch in flight: tryIssue returns before the L1I probe and
			// sets no stall flag.
			if w.fetchUntil < wake {
				wake = w.fetchUntil
			}
			continue
		}
		iline := uint64(w.pc) * isa.InstrBytes
		if !s.l1i.Contains(iline) {
			s.idleValid, s.idleWake = true, now // busy: probe misses, fill starts
			return
		}
		in := k.Code[w.pc]
		if w.off != nil && in.AtNSU {
			s.idleValid, s.idleWake = true, now // busy: skip consumes an issue slot
			return
		}
		// Scoreboard, read-only. The warp issues once every gating register
		// is ready; registers with outstanding fills are released by fillL1,
		// which dirties the mirror.
		var gate [5]isa.Reg
		ng := 0
		for i := 0; i < in.Op.SrcCount(); i++ {
			gate[ng] = in.Src[i]
			ng++
		}
		gate[ng] = in.Pred
		ng++
		if in.Op.WritesDst() {
			gate[ng] = in.Dst
			ng++
		}
		blocked, unbounded := false, false
		var wWake timing.PS
		for i := 0; i < ng; i++ {
			r := gate[i]
			if r == isa.RNone {
				continue
			}
			if w.outstanding[r] != 0 {
				blocked, unbounded = true, true
				continue
			}
			if at := w.regReady[r]; at > now {
				blocked = true
				if at > wWake {
					wWake = at
				}
			}
		}
		if !blocked {
			s.idleValid, s.idleWake = true, now // busy: the instruction issues
			return
		}
		anyDep = true
		s.idleLk[slot] = true // tryIssue probes (and hits) the L1I first
		s.idleLkN++
		s.idleLkSch = append(s.idleLkSch, slot)
		if TraceGTID < 0 {
			// The scan just certified the same verdict tryIssue's writer
			// would: cache it so later dense ticks replay it cheaply too.
			if unbounded {
				s.slotWake[slot] = inf
			} else {
				s.slotWake[slot] = wWake
			}
			s.slotProbe[slot] = true
			s.slotLine[slot] = iline
		}
		if !unbounded && wWake < wake {
			wake = wWake
		}
	}
	kind := int8(-1)
	switch {
	case !anyLive:
		// All warps exited. The refill check above did not fire, so either
		// the grid is exhausted (no stat densely) or no CTA fits.
		if s.ctaSnap < k.GridDim {
			kind = int8(stats.WarpIdle)
		}
	case anyDep:
		kind = int8(stats.DependencyStall)
	default:
		kind = int8(stats.WarpIdle)
	}
	s.idleValid = true
	s.idleWake = wake
	s.idleKind = kind
}

// skipIdle applies the exact effects of k consecutive provably-empty ticks,
// as certified by the last computeIdle: the per-cycle stall classification,
// the blocked warps' L1I hit traffic, and the scheduler rotation. The LRU
// stamps of all but the final cycle's probes are superseded by the final
// cycle's, so the intermediate lookups collapse into cache.SkipHits and only
// the last cycle is replayed for real, in that cycle's scheduling order.
func (s *SM) skipIdle(k int64) {
	if s.idleKind >= 0 {
		s.st.AddNoIssueN(stats.StallKind(s.idleKind), k)
	}
	m := s.idleLkN
	if m > 0 && k > 1 {
		s.l1i.SkipHits(m * (k - 1))
	}
	if s.g.cfg.GPU.SchedulerKind != "rr" {
		// GTO: the visit order is frozen while the SM is idle, so the replay
		// list captured by computeIdle is the final cycle's scheduling order.
		for _, slot := range s.idleLkSch {
			s.l1i.Lookup(uint64(s.warps[slot].pc) * isa.InstrBytes)
		}
		return
	}
	n := len(s.warps)
	s.rrStart = (s.rrStart + int((k-1)%int64(n))) % n
	if m > 0 {
		for _, slot := range s.schedOrder() {
			if s.idleLk[slot] {
				s.l1i.Lookup(uint64(s.warps[slot].pc) * isa.InstrBytes)
			}
		}
	}
	s.rrStart = (s.rrStart + 1) % n
}

// flushIdle applies the accumulated certified-idle cycles in one batch.
// skipIdle(a) followed by skipIdle(b) is equivalent to skipIdle(a+b): the
// stall counters and cache clocks are additive, the final replay restamps the
// same line set either way, and the scheduler rotation telescopes.
func (s *SM) flushIdle() {
	if s.pendingIdle > 0 {
		k := s.pendingIdle
		s.pendingIdle = 0
		s.skipIdle(k)
	}
}

// syncIdle folds any engine-elided edges into the pending batch and flushes
// it — the read barrier a counter consumer (finalization, stats collection)
// runs before observing per-cycle state.
func (s *SM) syncIdle() {
	if c := s.g.cycles; c > s.seenCycle {
		s.pendingIdle += c - s.seenCycle
		s.seenCycle = c
	}
	s.flushIdle()
}

// dirtyIdle invalidates the idle mirror after an externally-driven state
// change (ack delivery, L1 fill) that can unblock a warp. The pending idle
// cycles were certified under the pre-event state, so they are replayed
// before the event's effects land. When the SM domain is wake-scheduled the
// GPU may be parked past this point: the wake hook re-arms it so the next SM
// edge runs densely.
func (s *SM) dirtyIdle() {
	s.syncIdle()
	s.idleValid = false
	if s.g.onWake != nil {
		s.g.onWake()
	}
}

// schedOrder returns the warp-slot visit order for this cycle. GTO (greedy
// then oldest) keeps issuing from the warp that issued last until it stalls,
// then falls back to slot order (oldest CTA first); round-robin rotates the
// starting slot each cycle so warps share issue bandwidth evenly.
func (s *SM) schedOrder() []int {
	n := len(s.warps)
	if s.order == nil {
		s.order = make([]int, n)
		s.orderKey = -1
	}
	switch s.g.cfg.GPU.SchedulerKind {
	case "rr":
		if s.orderKey == s.rrStart {
			return s.order
		}
		s.orderKey = s.rrStart
		for i := 0; i < n; i++ {
			s.order[i] = (s.rrStart + i) % n
		}
	default: // gto
		if s.orderKey == s.greedyWarp {
			return s.order
		}
		s.orderKey = s.greedyWarp
		s.order[0] = s.greedyWarp
		k := 1
		for i := 0; i < n; i++ {
			if i != s.greedyWarp {
				s.order[k] = i
				k++
			}
		}
	}
	return s.order
}

// drainReady moves one packet per cycle from the ready buffer to the fabric.
func (s *SM) drainReady(now timing.PS) {
	if len(s.readyQ) == 0 {
		return
	}
	p := s.readyQ[0]
	s.readyQ = s.readyQ[1:]
	s.sender.SendGPUToHMC(now, p.target, p.size, p.msg)
}

// effMask evaluates the instruction's predicate over the warp's active mask.
func (w *warp) effMask(in isa.Instr) uint32 {
	if in.Pred == isa.RNone {
		return w.mask
	}
	var m uint32
	for t := 0; t < core.WarpWidth; t++ {
		if w.mask&(1<<uint(t)) == 0 {
			continue
		}
		on := w.regs[in.Pred][t] != 0
		if on != in.PredNeg {
			m |= 1 << uint(t)
		}
	}
	return m
}

func (s *SM) traced(w *warp) bool {
	return TraceGTID >= 0 && w.regs[kernel.RegGTID][0] == uint64(TraceGTID)
}

// tryIssue attempts to issue the warp's next instruction.
func (s *SM) tryIssue(w *warp, now timing.PS) {
	if w.fetchUntil > now {
		return // instruction fetch in flight: empty instruction buffer
	}
	// Instruction fetch through the L1I; code lines are 8 B/instruction.
	iline := uint64(w.pc) * isa.InstrBytes
	if !s.l1i.Lookup(iline) {
		s.l1i.Fill(iline)
		// The fill may evict a code line whose hit another slot's cached
		// block entry replays; drop every probing entry.
		for i := range s.slotProbe {
			if s.slotProbe[i] {
				s.slotWake[i] = 0
				s.slotProbe[i] = false
			}
		}
		w.fetchUntil = now + timing.PS(s.g.cfg.GPU.L2Latency)*s.g.smPeriod
		return
	}
	in := s.g.prog.Kernel.Code[w.pc]
	if s.traced(w) {
		fmt.Printf("[%d] pc=%d %v | r20=%x r21=%d r22=%d r25=%x off=%v\n",
			now, w.pc, in, uint32(w.regs[20][0]), w.regs[21][0], w.regs[22][0], uint32(w.regs[25][0]), w.off != nil)
	}

	// Offload-mode instruction filtering: @NSU ALU ops are skipped (they
	// run on the memory stack); everything else executes here.
	if w.off != nil && in.AtNSU {
		w.pc++
		s.issued++ // the NOP replacing it still consumes the issue slot
		s.st.IssuedInstrs++
		return
	}

	// Scoreboard: scan every gating register so a block also yields its wake
	// time — the latest regReady release, or unbounded while a fill is
	// outstanding — which feeds the per-slot block cache.
	blocked, unbounded := false, false
	var wake timing.PS
	var gate [5]isa.Reg
	ng := 0
	for i := 0; i < in.Op.SrcCount(); i++ {
		gate[ng] = in.Src[i]
		ng++
	}
	gate[ng] = in.Pred
	ng++
	if in.Op.WritesDst() {
		gate[ng] = in.Dst
		ng++
	}
	for i := 0; i < ng; i++ {
		r := gate[i]
		if r == isa.RNone {
			continue
		}
		if w.outstanding[r] != 0 {
			blocked, unbounded = true, true
			continue
		}
		if at := w.regReady[r]; at > now {
			blocked = true
			if at > wake {
				wake = at
			}
		}
	}
	if blocked {
		s.sawDepBlock = true
		if TraceGTID < 0 {
			if unbounded {
				wake = inf
			}
			s.slotWake[w.slot] = wake
			s.slotProbe[w.slot] = true
			s.slotLine[w.slot] = iline
		}
		return
	}

	switch in.Op.Class() {
	case isa.ClassALU:
		if s.aluUsed >= s.g.cfg.GPU.NumALUs {
			s.sawExecBlock = true
			return
		}
		s.aluUsed++
		s.execALU(w, in, now)
	case isa.ClassMem:
		if s.lsuUsed >= s.g.cfg.GPU.NumLSUs {
			s.sawExecBlock = true
			return
		}
		if !s.setupMem(w, in, now) {
			return // structural stall (credits / buffers)
		}
	case isa.ClassConst:
		if s.aluUsed >= s.g.cfg.GPU.NumALUs {
			s.sawExecBlock = true
			return
		}
		s.aluUsed++
		s.execConst(w, in, now)
	case isa.ClassSmem:
		if s.lsuUsed >= s.g.cfg.GPU.NumLSUs {
			s.sawExecBlock = true
			return
		}
		s.lsuUsed++
		s.execSmem(w, in, now)
	case isa.ClassCtrl:
		s.execCtrl(w, in, now)
	case isa.ClassOffload:
		if !s.execOffload(w, in, now) {
			return
		}
	}
	s.issued++
	s.st.IssuedInstrs++
	s.st.IssuedThreadOps += int64(bits.OnesCount32(w.effMask(in)))
}

func (s *SM) execALU(w *warp, in isa.Instr, now timing.PS) {
	m := w.effMask(in)
	for t := 0; t < core.WarpWidth; t++ {
		if m&(1<<uint(t)) == 0 {
			continue
		}
		var a, b, c uint64
		if in.Src[0] != isa.RNone {
			a = w.regs[in.Src[0]][t]
		}
		if in.Src[1] != isa.RNone {
			b = w.regs[in.Src[1]][t]
		}
		if in.Src[2] != isa.RNone {
			c = w.regs[in.Src[2]][t]
		}
		w.regs[in.Dst][t] = isa.Eval(in, a, b, c)
	}
	w.regReady[in.Dst] = now + timing.PS(s.g.cfg.GPU.ALULatency)*s.g.smPeriod
	w.pc++
}

// execConst serves a constant-memory load from the per-SM constant cache:
// a short fixed latency with no off-chip traffic (the working sets of our
// workloads fit the 4 KB constant cache, mirroring the paper's assumption).
func (s *SM) execConst(w *warp, in isa.Instr, now timing.PS) {
	m := w.effMask(in)
	for t := 0; t < core.WarpWidth; t++ {
		if m&(1<<uint(t)) == 0 {
			continue
		}
		addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
		w.regs[in.Dst][t] = uint64(s.g.mem.Read32(addr))
	}
	w.regReady[in.Dst] = now + timing.PS(s.g.cfg.GPU.L1HitLatency)*s.g.smPeriod
	w.pc++
}

// execSmem models scratchpad access as a short fixed-latency operation with
// no off-chip traffic. Functional scratchpad state is per-CTA and private;
// we back it with a per-CTA map on the GPU for simplicity.
func (s *SM) execSmem(w *warp, in isa.Instr, now timing.PS) {
	m := w.effMask(in)
	sm := s.smemFor(w.cta.id)
	for t := 0; t < core.WarpWidth; t++ {
		if m&(1<<uint(t)) == 0 {
			continue
		}
		addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
		if in.Op == isa.LDS {
			w.regs[in.Dst][t] = uint64(sm[addr])
		} else {
			sm[addr] = uint32(w.regs[in.Src[1]][t])
		}
	}
	if in.Op == isa.LDS {
		w.regReady[in.Dst] = now + timing.PS(s.g.cfg.GPU.L1HitLatency)*s.g.smPeriod
	}
	w.pc++
}

func (s *SM) execCtrl(w *warp, in isa.Instr, now timing.PS) {
	switch in.Op {
	case isa.BRA:
		w.pc = int(in.Imm)
	case isa.BRP:
		taken, mixed := false, false
		first := true
		for t := 0; t < core.WarpWidth; t++ {
			if w.mask&(1<<uint(t)) == 0 {
				continue
			}
			v := w.regs[in.Src[0]][t] != 0
			if first {
				taken, first = v, false
			} else if v != taken {
				mixed = true
			}
		}
		if mixed {
			panic(fmt.Sprintf("gpu: divergent branch at pc=%d (use predication)", w.pc))
		}
		if taken {
			w.pc = int(in.Imm)
		} else {
			w.pc++
		}
	case isa.BAR:
		w.pc++
		w.atBarrier = true
		w.cta.arrived++
		if w.cta.arrived == w.cta.live {
			for _, ww := range w.cta.warps {
				ww.atBarrier = false
			}
			w.cta.arrived = 0
		}
	case isa.EXIT:
		w.exited = true
		s.liveDirty = true
		cta := w.cta
		cta.live--
		if cta.arrived > 0 && cta.arrived == cta.live {
			for _, ww := range cta.warps {
				ww.atBarrier = false
			}
			cta.arrived = 0
		}
		if cta.live == 0 {
			s.retireCTA(cta)
		}
	}
}

func (s *SM) retireCTA(cta *ctaState) {
	for _, w := range cta.warps {
		s.warps[w.slot] = nil
		if w.off == nil && w.outstanding == ([isa.NumRegs]int16{}) {
			s.freeWarps = append(s.freeWarps, w)
		}
	}
	for i, c := range s.ctas {
		if c == cta {
			s.ctas = append(s.ctas[:i], s.ctas[i+1:]...)
			break
		}
	}
	delete(s.smem, cta.id)
}

// coalesce groups the per-thread addresses of a memory instruction into
// line-granularity accesses (the GPU's coalescing unit).
func (s *SM) coalesce(w *warp, in isa.Instr, mask uint32) []core.LineAccess {
	lineBytes := uint64(s.g.cfg.LineBytes())
	lines := s.lineScratch[:0]
	for t := 0; t < core.WarpWidth; t++ {
		if mask&(1<<uint(t)) == 0 {
			continue
		}
		addr := w.regs[in.Src[0]][t] + uint64(in.Imm)
		line := addr &^ (lineBytes - 1)
		off := uint8((addr & (lineBytes - 1)) / core.WordBytes)
		found := false
		for i := range lines {
			if lines[i].LineAddr == line {
				lines[i].Mask |= 1 << uint(t)
				lines[i].Offsets[t] = off
				found = true
				break
			}
		}
		if !found {
			la := core.LineAccess{LineAddr: line, Mask: 1 << uint(t)}
			la.Offsets[t] = off
			lines = append(lines, la)
		}
	}
	// Classify aligned accesses: offset_i == i for every covered thread.
	for i := range lines {
		aligned := true
		for t := 0; t < core.WarpWidth; t++ {
			if lines[i].Mask&(1<<uint(t)) != 0 && lines[i].Offsets[t] != uint8(t) {
				aligned = false
				break
			}
		}
		lines[i].Aligned = aligned
	}
	s.lineScratch = lines // keep the (possibly grown) backing for reuse
	return lines
}

// setupMem issues a memory instruction: resolves offload-mode credits and
// target selection, then expands the access into line micro-ops. Returns
// false if the warp must retry next cycle.
func (s *SM) setupMem(w *warp, in isa.Instr, now timing.PS) bool {
	mask := w.effMask(in)
	offload := w.off != nil
	lines := s.coalesce(w, in, mask)

	var seq, total int
	if offload {
		ctx := w.off
		// First memory instruction: pick the target NSU and reserve the
		// NDP buffers (§4.1.1, §4.3). Health checks (which may quarantine a
		// stack) and the all-or-nothing credit reservation read and mutate
		// shared state, so the block runs at this SM's serial position.
		if !ctx.targetKnown {
			ok := true
			s.seqDo(func() {
				homes := s.homesScratch[:0]
				for _, la := range lines {
					homes = append(homes, s.g.mem.HMCOf(la.LineAddr))
				}
				s.homesScratch = homes
				if s.g.flt != nil {
					ctx.target = core.SelectTargetHealthy(homes, s.g.cfg.NumHMCs,
						func(t int) bool { return s.g.targetHealthy(now, t) })
					if ctx.target < 0 {
						// Every stack is dead or quarantined: run the block
						// on the host instead.
						s.hostFallback(w, now)
						ok = false
						return
					}
				} else {
					ctx.target = core.SelectTarget(homes, s.g.cfg.NumHMCs)
				}
				if !s.g.bufmgr.Reserve(ctx.target, ctx.block.numLD, ctx.block.numST) {
					s.st.CreditStalls++
					s.sawCreditBlock = true
					ok = false
					return
				}
				ctx.targetKnown = true
				s.flushPending(ctx)
			})
			if !ok {
				return false
			}
		}
		if in.Op == isa.LD {
			seq = ctx.seqLD
			ctx.seqLD++
		} else {
			seq = ctx.seqST
			ctx.seqST++
		}
		total = len(lines)
	}

	if len(lines) == 0 {
		// Fully predicated-off access: nothing to do.
		w.pc++
		s.lsuUsed++
		return true
	}

	// Translate: every distinct page goes through the SM's TLB (the GPU
	// owns translation in partitioned execution, §4.1); a miss delays the
	// affected line accesses by the page-walk latency. Under the ndpage
	// backend translation for offloaded accesses lives on the stacks
	// instead: the SM TLB is skipped here and the home stack charges its
	// own tailored walk at the logic layer.
	walk := timing.PS(s.g.cfg.GPU.TLBMissLatency) * s.g.smPeriod
	pageMask := ^uint64(s.g.cfg.Mem.PageBytes - 1)
	var missPage uint64
	if !offload || !s.g.cfg.Arch.StackXlat {
		seenPage := uint64(1) // addresses never map page 1 (offset within page 0x1000+)
		for _, la := range lines {
			page := la.LineAddr & pageMask
			if page == seenPage {
				continue
			}
			seenPage = page
			if !s.tlb.Lookup(page) {
				s.tlb.Fill(page)
				missPage = page | 1
			}
		}
	}

	// setupMem only runs with an empty queue (a warp with pending micro-ops
	// never reaches issue), so the expansion reuses the warp's backing array.
	w.memq = w.memqBuf[:0]
	for _, la := range lines {
		op := microOp{access: la, isStore: in.Op == isa.ST, dst: in.Dst,
			offload: offload, seq: seq, total: total}
		if missPage != 0 && la.LineAddr&pageMask == missPage&^1 {
			op.readyAt = now + walk
		}
		if op.isStore && !offload {
			for t := 0; t < core.WarpWidth; t++ {
				if la.Mask&(1<<uint(t)) != 0 {
					op.data[t] = uint32(w.regs[in.Src[1]][t])
				}
			}
		}
		w.memq = append(w.memq, op)
	}
	w.memqBuf = w.memq
	if in.Op == isa.LD && !offload {
		w.outstanding[in.Dst] = int16(len(lines))
		w.regReady[in.Dst] = inf
	}
	w.pc++
	s.lsuUsed++ // issuing the instruction consumes the LSU this cycle
	return true
}

// processMemq serves the warp's outstanding line micro-ops, at most one per
// LSU per cycle. Divergent accesses therefore occupy the LSU for several
// cycles — the GPU's memory-divergence penalty.
func (s *SM) processMemq(w *warp, now timing.PS) {
	for s.lsuUsed < s.g.cfg.GPU.NumLSUs && len(w.memq) > 0 {
		op := &w.memq[0]
		if op.readyAt > now {
			s.sawDepBlock = true // translation in flight
			s.slotWake[w.slot] = op.readyAt
			s.slotProbe[w.slot] = false
			return
		}
		if !s.serveMicroOp(w, op, now) {
			s.sawExecBlock = true
			return
		}
		s.lsuUsed++
		w.memq = w.memq[1:]
	}
	if len(w.memq) > 0 && s.lsuUsed >= s.g.cfg.GPU.NumLSUs {
		s.sawExecBlock = true
	}
}

func (s *SM) serveMicroOp(w *warp, op *microOp, now timing.PS) bool {
	if op.offload {
		return s.serveOffloadOp(w, op, now)
	}
	if op.isStore {
		return s.serveBaselineStore(w, op, now)
	}
	return s.serveBaselineLoad(w, op, now)
}

func (s *SM) serveBaselineLoad(w *warp, op *microOp, now timing.PS) bool {
	line := op.access.LineAddr
	hit := s.l1.Contains(line)
	// Cache profiling for the §7.3 decision also runs in normal mode so a
	// suppressed block keeps being re-evaluated. An RDF probe would see
	// both cache levels, so an L1 miss defers the verdict to the L2.
	profile := -1
	if w.inRegion {
		profile = w.regionID
	}
	if !hit {
		// Reserve the MSHR before committing the access so a full-MSHR
		// retry next cycle is not double-counted in the cache statistics.
		ok, primary := s.l1.MSHRReserve(line)
		if !ok {
			return false
		}
		s.l1.Lookup(line)
		s.waiters[line] = append(s.waiters[line], loadWaiter{w: w, dst: op.dst})
		if primary {
			s.pushL2(&l2Req{kind: reqRead, line: line, blockID: profile,
				words: bits.OnesCount32(op.access.Mask),
				onFill: func(at timing.PS) {
					s.fillL1(line, at)
				}})
		} else if profile >= 0 {
			// Merged into an in-flight fill: an RDF would also have missed.
			s.recordLine(profile, false, bits.OnesCount32(op.access.Mask))
		}
	} else {
		s.l1.Lookup(line)
		if profile >= 0 {
			s.recordLine(profile, true, bits.OnesCount32(op.access.Mask))
		}
	}
	// Functional read happens now; timing is tracked separately.
	for t := 0; t < core.WarpWidth; t++ {
		if op.access.Mask&(1<<uint(t)) != 0 {
			addr := line + uint64(op.access.Offsets[t])*core.WordBytes
			w.regs[op.dst][t] = uint64(s.g.mem.Read32(addr))
		}
	}
	if hit {
		s.loadLineDone(w, op.dst, now+timing.PS(s.g.cfg.GPU.L1HitLatency)*s.g.smPeriod)
	}
	return true
}

// fillL1 completes an L1 miss: install the line and wake the waiters.
func (s *SM) fillL1(line uint64, now timing.PS) {
	s.dirtyIdle()
	s.l1.MSHRRelease(line)
	for _, lw := range s.waiters[line] {
		s.loadLineDone(lw.w, lw.dst, now)
	}
	delete(s.waiters, line)
}

func (s *SM) loadLineDone(w *warp, dst isa.Reg, at timing.PS) {
	w.outstanding[dst]--
	if w.outstanding[dst] <= 0 {
		w.outstanding[dst] = 0
		w.regReady[dst] = at
	}
	s.slotWake[w.slot] = 0 // scoreboard state changed: drop the block cache
}

func (s *SM) serveBaselineStore(w *warp, op *microOp, now timing.PS) bool {
	line := op.access.LineAddr
	// Write-through: functional write now; L1 probe keeps tags coherent,
	// and any read-only NSU copy of the line becomes stale.
	s.l1.Lookup(line)
	s.g.invalidateNSUDirs(line)
	for t := 0; t < core.WarpWidth; t++ {
		if op.access.Mask&(1<<uint(t)) != 0 {
			addr := line + uint64(op.access.Offsets[t])*core.WordBytes
			s.g.mem.Write32(addr, op.data[t])
		}
	}
	wr := &core.WriteReq{Access: op.access, Data: op.data}
	s.pushL2(&l2Req{kind: reqWrite, line: line, write: wr})
	return true
}

// serveOffloadOp handles partitioned-execution memory micro-ops: loads
// probe the GPU caches and become RDF traffic; stores become WTA packets
// for the target NSU (Figure 6).
func (s *SM) serveOffloadOp(w *warp, op *microOp, now timing.PS) bool {
	ctx := w.off
	if op.isStore {
		if len(s.readyQ) >= s.g.cfg.NDP.ReadyEntries {
			return false
		}
		wta := &core.WTAPacket{ID: ctx.id, Tag: ctx.tag, Seq: op.seq, Target: ctx.target,
			Access: op.access, TotalPkts: op.total}
		s.pushReady(ctx.target, wta.Size(), wta)
		s.st.WTAPackets++
		if s.g.flt == nil {
			// The WTA in-flight ledger assumes exactly-once delivery;
			// retransmits and aborted warps would unbalance it, so fault
			// mode runs without it.
			s.addWTA(s.g.mem.HMCOf(op.access.LineAddr))
		}
		return true
	}
	line := op.access.LineAddr
	if s.l1.Lookup(line) {
		// RDF served from the L1: the GPU ships the data to the NSU.
		if len(s.readyQ) >= s.g.cfg.NDP.ReadyEntries {
			return false
		}
		s.recordLine(ctx.block.id, true, bits.OnesCount32(op.access.Mask))
		s.st.RDFPackets++
		s.st.RDFCacheHits++
		rdf := &core.RDFPacket{ID: ctx.id, Tag: ctx.tag, Seq: op.seq, Target: ctx.target,
			Access: op.access, TotalPkts: op.total}
		msg, size := s.g.shipCachedLine(rdf)
		s.pushReady(ctx.target, size, msg)
		return true
	}
	// L1 miss: probe the L2 slice; it forwards to DRAM on a miss there.
	rdf := &core.RDFPacket{ID: ctx.id, Tag: ctx.tag, Seq: op.seq, Target: ctx.target,
		Access: op.access, TotalPkts: op.total}
	s.st.RDFPackets++
	s.pushL2(&l2Req{kind: reqRDF, line: line, rdf: rdf, blockID: ctx.block.id})
	return true
}

// pushReady queues a packet in the ready buffer.
func (s *SM) pushReady(target, size int, msg any) {
	s.readyQ = append(s.readyQ, outPkt{target: target, size: size, msg: msg})
}

// flushPending moves the context's pending packets (the offload command,
// generated before the target was known) into the ready buffer.
func (s *SM) flushPending(ctx *offCtx) {
	rest := s.pendingQ[:0]
	for _, p := range s.pendingQ {
		if cmd, ok := p.msg.(*core.CmdPacket); ok && cmd.ID == ctx.id {
			cmd.Target = ctx.target
			s.pushReady(ctx.target, p.size, cmd)
		} else {
			rest = append(rest, p)
		}
	}
	s.pendingQ = rest
}

// execOffload handles OFLDBEG / OFLDEND.
func (s *SM) execOffload(w *warp, in isa.Instr, now timing.PS) bool {
	blk := s.g.blocks[in.BlockID]
	if in.Op == isa.OFLDBEG {
		s.st.OffloadBlocksSeen++
		s.mSeen++
		if s.decide(blk.id) {
			if len(s.pendingQ) >= s.g.cfg.NDP.PendingEntries {
				s.st.PendingBufStalls++
				s.sawExecBlock = true
				return false
			}
			s.st.OffloadBlocksOffloaded++
			s.mSent++
			ctx := &offCtx{block: blk, id: core.OffloadID{SM: int32(s.id), Warp: int32(w.slot)}, began: now}
			if s.g.flt != nil {
				s.instSeq[w.slot]++
				ctx.tag = core.ProtoTag{Inst: s.instSeq[w.slot]}
				ctx.deadline = s.g.attemptDeadline(now, 0)
				snap := w.regs
				ctx.regSnap = &snap
			}
			w.off = ctx
			cmd := s.buildCmd(ctx, w)
			s.st.OffloadCmdPackets++
			ctx.cmdBytes = cmd.Size() - core.HeaderBytes
			s.pendingQ = append(s.pendingQ, outPkt{size: cmd.Size(), msg: cmd})
		} else {
			w.inRegion = true
			w.regionID = blk.id
		}
		w.pc++
		return true
	}

	// OFLDEND.
	if w.off != nil {
		ctx := w.off
		if !ctx.targetKnown {
			// Block contained no executed memory instruction (fully
			// predicated off): pick stack 0, reserve, and flush so the NSU
			// still runs the block and acknowledges. Health checks and the
			// credit reservation touch shared state, so the whole resolve
			// runs at this SM's serial position.
			ok := true
			s.seqDo(func() {
				tgt := 0
				if s.g.flt != nil {
					tgt = core.SelectTargetHealthy(nil, s.g.cfg.NumHMCs,
						func(t int) bool { return s.g.targetHealthy(now, t) })
					if tgt < 0 {
						s.hostFallback(w, now)
						ok = false
						return
					}
				}
				if !s.g.bufmgr.Reserve(tgt, ctx.block.numLD, ctx.block.numST) {
					s.st.CreditStalls++
					s.sawCreditBlock = true
					ok = false
					return
				}
				ctx.target = tgt
				ctx.targetKnown = true
				s.flushPending(ctx)
			})
			if !ok {
				return false
			}
		}
		w.pc++
		if ctx.ack != nil {
			// The acknowledgment already arrived: complete immediately.
			s.applyAck(w, ctx.ack, now)
		} else {
			w.waitAck = true // resumes when the ack arrives
		}
		return true
	}
	// Normal-mode end: account the region's instructions for the epoch
	// throughput metric and close the profiling instance.
	w.inRegion = false
	s.regionInstrs += int64(blk.instrs)
	s.st.OffloadRegionInstrs += int64(blk.instrs)
	s.recordInstance(blk.id)
	w.pc++
	return true
}

// deliverAck routes an offload acknowledgment to its warp. If the warp is
// still inside the block (the NSU finished before the GPU reached OFLD.END)
// the ack is stashed on the context and applied at OFLD.END.
func (s *SM) deliverAck(ack *core.AckPacket, now timing.PS) {
	s.dirtyIdle()
	w := s.warps[ack.ID.Warp]
	if w == nil || w.off == nil {
		if s.g.flt != nil {
			// Late ack for a block that already completed (via an earlier
			// duplicate) or fell back to host execution.
			s.st.StaleProtoPkts++
			return
		}
		panic("gpu: ack for unknown offload context")
	}
	if s.g.flt != nil && ack.Tag.Inst != w.off.tag.Inst {
		s.st.StaleProtoPkts++ // ack from a superseded offload instance
		return
	}
	if !w.waitAck {
		w.off.ack = ack
		return
	}
	s.applyAck(w, ack, now)
}

// buildCmd assembles the offload command packet for the context's current
// instance/attempt tag from the warp's (restored) live-in registers.
func (s *SM) buildCmd(ctx *offCtx, w *warp) *core.CmdPacket {
	blk := ctx.block
	cmd := &core.CmdPacket{ID: ctx.id, Tag: ctx.tag, BlockID: blk.id, Mask: w.mask,
		NumLD: blk.numLD, NumST: blk.numST, Target: ctx.target}
	for _, r := range blk.regsIn {
		rv := core.RegVals{Reg: int16(r)}
		rv.Vals = w.regs[r]
		cmd.In.Regs = append(cmd.In.Regs, rv)
	}
	return cmd
}

// handleTimeout fires when an offloaded block's ack deadline passes: retry
// with exponential backoff while the retry budget and the target's health
// hold, otherwise quarantine the stack and re-execute the block host-side.
// The whole handler runs at this SM's serial position under parallel
// execution: it reads the commit board, may quarantine the target, and
// mutates fabric-wide offload tracking.
func (s *SM) handleTimeout(w *warp, now timing.PS) {
	s.seqDo(func() {
		ctx := w.off
		s.st.OffloadTimeouts++
		if s.g.flt.InstanceCommitted(ctx.id, ctx.tag.Inst) {
			// The block committed: its writes are durable and its ack is in
			// flight on the reliable host link. Re-executing now would repeat
			// non-idempotent stores, so just re-arm and wait for the ack.
			ctx.deadline = s.g.attemptDeadline(now, int(ctx.tag.Attempt))
			return
		}
		if int(ctx.tag.Attempt) >= s.g.maxRetries || !s.g.targetHealthy(now, ctx.target) {
			// Abandon, quarantine, and fall back in one step: the NSU's next
			// look at the board sees the instance as dead before any checker
			// can observe the intermediate state.
			s.g.flt.AbandonInstance(ctx.id, ctx.tag.Inst)
			s.g.quarantineTarget(ctx.target)
			s.g.fab.AbandonOffload(now, ctx.id)
			s.hostFallback(w, now)
			return
		}
		s.retryOffload(w, now)
	})
}

// retryOffload restarts the block's GPU-side walk for a fresh attempt:
// restore the live-in registers, reset the protocol sequence numbers, and
// re-issue the command with a bumped attempt tag. The NSU-side buffers were
// reserved once at the first attempt and stay reserved; the NSU reconciles
// duplicate packets against the instance tag.
func (s *SM) retryOffload(w *warp, now timing.PS) {
	ctx := w.off
	s.st.OffloadRetries++
	ctx.tag.Attempt++
	ctx.deadline = s.g.attemptDeadline(now, int(ctx.tag.Attempt))
	w.regs = *ctx.regSnap
	ctx.seqLD, ctx.seqST = 0, 0
	ctx.ack = nil
	w.waitAck = false
	w.pc = ctx.block.begPC + 1
	s.slotWake[w.slot] = 0
	cmd := s.buildCmd(ctx, w)
	s.st.OffloadCmdPackets++
	s.pushReady(ctx.target, cmd.Size(), cmd)
}

// hostFallback abandons the offload and re-executes the block on the GPU in
// normal mode (graceful degradation): restore the registers captured at
// OFLD.BEG and rewind to the block body; with w.off nil every instruction —
// including the @NSU-marked ones — executes host-side, so memory and
// register state converge to the oracle's.
func (s *SM) hostFallback(w *warp, now timing.PS) {
	ctx := w.off
	s.st.FallbackBlocks++
	if !ctx.targetKnown {
		// The command never left the SM: purge it from the pending buffer.
		rest := s.pendingQ[:0]
		for _, p := range s.pendingQ {
			if cmd, ok := p.msg.(*core.CmdPacket); ok && cmd.ID == ctx.id && cmd.Tag.Inst == ctx.tag.Inst {
				continue
			}
			rest = append(rest, p)
		}
		s.pendingQ = rest
	}
	w.regs = *ctx.regSnap
	w.off = nil
	w.waitAck = false
	w.inRegion = true
	w.regionID = ctx.block.id
	w.pc = ctx.block.begPC + 1
	s.slotWake[w.slot] = 0
}

// applyAck writes back the returned registers and releases the warp.
func (s *SM) applyAck(w *warp, ack *core.AckPacket, now timing.PS) {
	blk := w.off.block
	s.st.AckLatencySumPS += int64(now - w.off.began)
	s.st.AckLatencyCount++
	if s.g.spanSink != nil {
		s.spans = append(s.spans, offSpan{
			warp:  int(ack.ID.Warp),
			block: blk.id,
			start: w.off.began,
			dur:   now - w.off.began,
		})
	}
	if s.g.flt != nil {
		// The instance is consumed; drop its commit-board record so the
		// board stays bounded by the in-flight offload count.
		s.g.flt.ForgetInstance(ack.ID)
	}
	for _, rv := range ack.Out.Regs {
		m := rv.Mask
		if m == 0 {
			m = ack.Mask
		}
		for t := 0; t < core.WarpWidth; t++ {
			if m&(1<<uint(t)) != 0 {
				w.regs[rv.Reg][t] = rv.Vals[t]
			}
		}
		w.regReady[rv.Reg] = now
		w.outstanding[rv.Reg] = 0
		if s.traced(w) {
			fmt.Printf("[%d] ACK writes r%d = %x\n", now, rv.Reg, uint32(rv.Vals[0]))
		}
	}
	s.recordTransfer(blk.id, w.off.cmdBytes+ack.Size()-core.HeaderBytes)
	w.off = nil
	w.waitAck = false
	s.slotWake[w.slot] = 0
	s.regionInstrs += int64(blk.instrs)
	s.st.OffloadRegionInstrs += int64(blk.instrs)
	s.recordInstance(blk.id)
}

// busy reports whether the SM still has live warps or queued packets.
func (s *SM) busy() bool {
	if len(s.readyQ) > 0 || len(s.pendingQ) > 0 || len(s.waiters) > 0 {
		return true
	}
	for _, w := range s.warps {
		if w != nil && !w.exited {
			return true
		}
	}
	return false
}
