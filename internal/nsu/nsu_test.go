package nsu

import (
	"testing"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
)

// creditLog records credit returns.
type creditLog struct {
	returns map[core.BufferKind]int
}

func (c *creditLog) Return(target int, kind core.BufferKind, n int) {
	if c.returns == nil {
		c.returns = map[core.BufferKind]int{}
	}
	c.returns[kind] += n
}

// writeSink accepts local writes and immediately acknowledges them.
type writeSink struct {
	n    *NSU
	pkts []*core.WritePacket
}

func (ws *writeSink) SubmitNSUWrite(p *core.WritePacket, now timing.PS) {
	ws.pkts = append(ws.pkts, p)
	ws.n.Deliver(&core.WriteAck{ID: p.ID, Seq: p.Seq}, now)
}

// vaddProgram builds the canonical c = a + b program and returns its block.
func vaddProgram(t *testing.T, mem *vm.System) (*analyzer.Program, *analyzer.Block) {
	t.Helper()
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16)
	kb.Op3(isa.ADD, 19, kernel.RegParam0+2, 16)
	kb.Ld(20, 17, 0)
	kb.Ld(21, 18, 0)
	kb.Op3(isa.FADD, 22, 20, 21)
	kb.St(19, 0, 22)
	kb.Exit()
	k := kb.MustBuild("vadd", 1, 32, 0, 0, 0)
	prog, err := analyzer.Analyze(k, analyzer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(prog.Blocks))
	}
	return prog, prog.Blocks[0]
}

func setup(t *testing.T) (*NSU, *creditLog, *writeSink, *noc.Fabric, *vm.System, *analyzer.Block) {
	t.Helper()
	cfg := config.Default()
	mem := vm.New(cfg)
	base := mem.Alloc(1 << 16)
	// Pin the test pages to stack 0 so local writes are acked by the fake
	// write sink instead of disappearing into an unwired remote stack.
	for off := uint64(0); off < 1<<16; off += 4096 {
		mem.PlacePage(base+off, 0)
	}
	st := stats.New()
	fab := noc.NewFabric(cfg, st)
	prog, blk := vaddProgram(t, mem)
	credits := &creditLog{}
	n := New(0, cfg, prog, mem, fab, st, credits)
	ws := &writeSink{n: n}
	n.SetLocalWriter(ws)
	return n, credits, ws, fab, mem, blk
}

func fullMask() uint32 { return 0xFFFFFFFF }

// aligned builds a LineAccess covering all 32 threads of one line.
func aligned(line uint64) core.LineAccess {
	la := core.LineAccess{LineAddr: line, Mask: fullMask(), Aligned: true}
	for t := 0; t < 32; t++ {
		la.Offsets[t] = uint8(t)
	}
	return la
}

func respFor(id core.OffloadID, seq int, base float32) *core.RDFResp {
	r := &core.RDFResp{ID: id, Seq: seq, Mask: fullMask(), TotalPkts: 1}
	for t := 0; t < 32; t++ {
		r.Data[t] = uint32(isa.FromF32(base + float32(t)))
	}
	return r
}

func TestFullOffloadRoundTrip(t *testing.T) {
	n, credits, ws, fab, mem, blk := setup(t)
	id := core.OffloadID{SM: 3, Warp: 7}
	line := mem.LineAddr(0x2000)

	n.Deliver(&core.CmdPacket{ID: id, BlockID: blk.ID, Mask: fullMask(),
		NumLD: 2, NumST: 1}, 0)
	n.Deliver(respFor(id, 0, 1), 0)
	n.Deliver(respFor(id, 1, 10), 0)
	n.Deliver(&core.WTAPacket{ID: id, Seq: 0, Access: aligned(line), TotalPkts: 1}, 0)

	now := timing.PS(0)
	for i := 0; i < 100 && fab.GPUInbox().Len() == 0; i++ {
		now += 2857
		n.Tick(now)
	}
	msg, ok := fab.GPUInbox().Pop(1 << 40)
	if !ok {
		t.Fatal("no acknowledgment emitted")
	}
	ack, ok := msg.(*core.AckPacket)
	if !ok || ack.ID != id {
		t.Fatalf("unexpected message %#v", msg)
	}
	// Functional result written to memory at the store: a[t]+b[t] = 11+2t.
	for tid := 0; tid < 32; tid++ {
		want := float32(1+tid) + float32(10+tid)
		if got := mem.ReadF32(line + uint64(4*tid)); got != want {
			t.Fatalf("mem[%d] = %v, want %v", tid, got, want)
		}
	}
	if len(ws.pkts) != 1 {
		t.Fatalf("write packets = %d, want 1", len(ws.pkts))
	}
	// Credits: 1 cmd (at spawn), 2 read-data, 1 write-addr.
	if credits.returns[core.CmdBuffer] != 1 ||
		credits.returns[core.ReadDataBuffer] != 2 ||
		credits.returns[core.WriteAddrBuffer] != 1 {
		t.Fatalf("credit returns = %v", credits.returns)
	}
	if n.Busy() {
		t.Fatal("NSU should be idle after the block completes")
	}
}

func TestLoadStallsUntilAllResponses(t *testing.T) {
	n, _, _, fab, _, blk := setup(t)
	id := core.OffloadID{SM: 0, Warp: 0}
	n.Deliver(&core.CmdPacket{ID: id, BlockID: blk.ID, Mask: fullMask(), NumLD: 2, NumST: 1}, 0)

	// First response covers only half the threads.
	half := respFor(id, 0, 1)
	half.Mask = 0x0000FFFF
	n.Deliver(half, 0)
	for i := 1; i <= 50; i++ {
		n.Tick(timing.PS(i) * 2857)
	}
	if n.st.NSUStallRDWait == 0 {
		t.Fatal("expected read-data stalls with partial responses")
	}
	if fab.GPUInbox().Len() != 0 {
		t.Fatal("block must not complete with missing data")
	}
	// Complete the masks and the rest of the protocol.
	rest := respFor(id, 0, 1)
	rest.Mask = 0xFFFF0000
	n.Deliver(rest, 0)
	n.Deliver(respFor(id, 1, 5), 0)
	n.Deliver(&core.WTAPacket{ID: id, Seq: 0, Access: aligned(0x2000), TotalPkts: 1}, 0)
	for i := 51; i <= 150 && fab.GPUInbox().Len() == 0; i++ {
		n.Tick(timing.PS(i) * 2857)
	}
	if fab.GPUInbox().Len() == 0 {
		t.Fatal("block never completed")
	}
}

func TestOutOfOrderDelivery(t *testing.T) {
	// Data may arrive before the command (the NDP buffers are indexed by
	// offload packet ID, not by warp slot).
	n, _, _, fab, _, blk := setup(t)
	id := core.OffloadID{SM: 1, Warp: 2}
	n.Deliver(respFor(id, 0, 1), 0)
	n.Deliver(respFor(id, 1, 2), 0)
	n.Deliver(&core.WTAPacket{ID: id, Seq: 0, Access: aligned(0x3000), TotalPkts: 1}, 0)
	n.Deliver(&core.CmdPacket{ID: id, BlockID: blk.ID, Mask: fullMask(), NumLD: 2, NumST: 1}, 0)
	for i := 1; i <= 100 && fab.GPUInbox().Len() == 0; i++ {
		n.Tick(timing.PS(i) * 2857)
	}
	if fab.GPUInbox().Len() == 0 {
		t.Fatal("out-of-order delivery broke the block")
	}
}

func TestOccupancyCounting(t *testing.T) {
	n, _, _, _, _, blk := setup(t)
	if n.Occupied() != 0 {
		t.Fatal("fresh NSU occupied")
	}
	n.Deliver(&core.CmdPacket{ID: core.OffloadID{SM: 0, Warp: 1}, BlockID: blk.ID,
		Mask: fullMask(), NumLD: 2, NumST: 1}, 0)
	n.Tick(2857)
	if n.Occupied() != 1 {
		t.Fatalf("occupied = %d, want 1", n.Occupied())
	}
	if n.ICodeBytes() == 0 {
		t.Fatal("I-cache footprint not recorded")
	}
}

func TestWarpSlotsExhaustion(t *testing.T) {
	n, _, _, _, _, blk := setup(t)
	cfg := config.Default()
	for i := 0; i < cfg.NSU.NumWarps+5; i++ {
		n.Deliver(&core.CmdPacket{ID: core.OffloadID{SM: 0, Warp: int32(i)},
			BlockID: blk.ID, Mask: fullMask(), NumLD: 2, NumST: 1}, 0)
	}
	n.Tick(2857)
	if n.Occupied() != cfg.NSU.NumWarps {
		t.Fatalf("occupied = %d, want %d (slots exhausted)", n.Occupied(), cfg.NSU.NumWarps)
	}
	if !n.Busy() {
		t.Fatal("queued commands must keep the NSU busy")
	}
}

func TestTemporalSIMTSlots(t *testing.T) {
	n, _, _, _, _, _ := setup(t)
	n.cfg.NSU.PhysSIMDWidth = 8
	if got := n.simtSlots(0xFFFFFFFF); got != 4 {
		t.Fatalf("32 active / phys 8 = %d slots, want 4", got)
	}
	if got := n.simtSlots(0x7); got != 1 {
		t.Fatalf("3 active / phys 8 = %d slots, want 1", got)
	}
	if got := n.simtSlots(0); got != 1 {
		t.Fatalf("0 active = %d slots, want 1", got)
	}
	n.cfg.NSU.PhysSIMDWidth = 32
	if got := n.simtSlots(0xFFFFFFFF); got != 1 {
		t.Fatalf("full width = %d slots, want 1", got)
	}
}

func TestNarrowSIMTStillCorrect(t *testing.T) {
	// A narrow datapath changes timing, never results.
	nsu8, _, _, fab, mem, blk := setup(t)
	nsu8.cfg.NSU.PhysSIMDWidth = 8
	id := core.OffloadID{SM: 9, Warp: 1}
	line := mem.LineAddr(0x4000)
	nsu8.Deliver(&core.CmdPacket{ID: id, BlockID: blk.ID, Mask: fullMask(), NumLD: 2, NumST: 1}, 0)
	nsu8.Deliver(respFor(id, 0, 2), 0)
	nsu8.Deliver(respFor(id, 1, 5), 0)
	nsu8.Deliver(&core.WTAPacket{ID: id, Seq: 0, Access: aligned(line), TotalPkts: 1}, 0)
	for i := 1; i <= 200 && fab.GPUInbox().Len() == 0; i++ {
		nsu8.Tick(timing.PS(i) * 2857)
	}
	if fab.GPUInbox().Len() == 0 {
		t.Fatal("narrow-SIMT block never completed")
	}
	for tid := 0; tid < 32; tid++ {
		want := float32(2+tid) + float32(5+tid)
		if got := mem.ReadF32(line + uint64(4*tid)); got != want {
			t.Fatalf("mem[%d] = %v, want %v", tid, got, want)
		}
	}
}
