package core

import (
	"math"
	"testing"
	"testing/quick"

	"ndpgpu/internal/config"
)

func TestPacketSizes(t *testing.T) {
	cmd := &CmdPacket{Mask: 0xF, In: RegSet{Regs: []RegVals{{Reg: 1}}}}
	// header + 1 reg x 4 active threads x 4 B = 16 + 16.
	if got := cmd.Size(); got != 32 {
		t.Fatalf("cmd size = %d, want 32", got)
	}
	cmd.In = RegSet{}
	if got := cmd.Size(); got != 16 {
		t.Fatalf("empty cmd size = %d, want 16", got)
	}

	rdf := &RDFPacket{Access: LineAccess{Mask: 0xFFFFFFFF, Aligned: true}}
	if got := rdf.Size(); got != 16 {
		t.Fatalf("aligned rdf size = %d, want 16", got)
	}
	rdf.Access.Aligned = false
	if got := rdf.Size(); got != 16+32 {
		t.Fatalf("misaligned rdf size = %d, want 48", got)
	}

	resp := &RDFResp{Mask: 0x3}
	if got := resp.Size(); got != 16+8 {
		t.Fatalf("resp size = %d, want 24", got)
	}

	w := &WritePacket{Access: LineAccess{Mask: 0xFF}}
	if got := w.Size(); got != 16+32 {
		t.Fatalf("write size = %d, want 48", got)
	}

	if (&WriteAck{}).Size() != 8 || (&InvalPacket{}).Size() != 8 {
		t.Fatal("small packet sizes wrong")
	}

	ack := &AckPacket{Mask: 0xFFFFFFFF, Out: RegSet{Regs: []RegVals{{Reg: 2}, {Reg: 3}}}}
	if got := ack.Size(); got != 16+2*32*4 {
		t.Fatalf("ack size = %d, want 272", got)
	}

	if got := ReadRespBytes(128); got != 144 {
		t.Fatalf("read resp = %d, want 144", got)
	}
}

func TestSelectTargetMajority(t *testing.T) {
	if got := SelectTarget([]int{3, 3, 5, 3, 5}, 8); got != 3 {
		t.Fatalf("target = %d, want 3", got)
	}
	if got := SelectTarget([]int{7}, 8); got != 7 {
		t.Fatalf("target = %d, want 7", got)
	}
	if got := SelectTarget(nil, 8); got != 0 {
		t.Fatalf("empty target = %d, want 0", got)
	}
}

func TestRemoteTraffic(t *testing.T) {
	hmcs := []int{1, 1, 2, 3, 1}
	if got := RemoteTraffic(hmcs, 1); got != 2 {
		t.Fatalf("remote = %d, want 2", got)
	}
	if got := RemoteTraffic(hmcs, 2); got != 4 {
		t.Fatalf("remote = %d, want 4", got)
	}
}

func TestOptimalNeverWorseProperty(t *testing.T) {
	// Figure 5 invariant: the oracle (majority over all accesses) never
	// produces more remote traffic than the first-instruction policy.
	f := func(raw []uint8, firstLen uint8) bool {
		if len(raw) == 0 {
			return true
		}
		all := make([]int, len(raw))
		for i, r := range raw {
			all[i] = int(r % 8)
		}
		fl := 1 + int(firstLen)%len(all)
		first := SelectTarget(all[:fl], 8)
		opt := SelectOptimal(all, 8)
		return RemoteTraffic(all, opt) <= RemoteTraffic(all, first)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferManagerReserveRelease(t *testing.T) {
	cfg := config.Default()
	m := NewBufferManager(cfg)
	if !m.Reserve(0, 4, 2) {
		t.Fatal("reserve rejected with full credits")
	}
	if m.Available(0, CmdBuffer) != cfg.NSU.CmdEntries-1 {
		t.Fatal("cmd credit not taken")
	}
	if m.Available(0, ReadDataBuffer) != cfg.NSU.ReadDataEntries-4 {
		t.Fatal("read-data credits not taken")
	}
	if m.AllReturned() {
		t.Fatal("AllReturned true with outstanding credits")
	}
	m.Return(0, CmdBuffer, 1)
	m.Return(0, ReadDataBuffer, 4)
	m.Return(0, WriteAddrBuffer, 2)
	if !m.AllReturned() {
		t.Fatal("AllReturned false after full return")
	}
}

func TestBufferManagerExhaustion(t *testing.T) {
	cfg := config.Default()
	m := NewBufferManager(cfg)
	for i := 0; i < cfg.NSU.CmdEntries; i++ {
		if !m.Reserve(3, 0, 0) {
			t.Fatalf("reserve %d rejected", i)
		}
	}
	if m.Reserve(3, 0, 0) {
		t.Fatal("reserve beyond cmd-buffer capacity accepted")
	}
	if m.Rejects != 1 {
		t.Fatalf("rejects = %d", m.Rejects)
	}
	// Other NSUs unaffected.
	if !m.Reserve(4, 0, 0) {
		t.Fatal("independent NSU wrongly exhausted")
	}
}

func TestBufferManagerOverReturnPanics(t *testing.T) {
	m := NewBufferManager(config.Default())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-return")
		}
	}()
	m.Return(0, CmdBuffer, 1)
}

func TestBufferManagerNeverNegativeProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := config.Default()
		m := NewBufferManager(cfg)
		outLD, outST, outCmd := 0, 0, 0
		for _, op := range ops {
			ld, st := int(op%7), int(op/7%5)
			if m.Reserve(0, ld, st) {
				outCmd++
				outLD += ld
				outST += st
			}
			if op%3 == 0 && outCmd > 0 {
				outCmd--
				m.Return(0, CmdBuffer, 1)
			}
			if m.Available(0, CmdBuffer) < 0 || m.Available(0, ReadDataBuffer) < 0 ||
				m.Available(0, WriteAddrBuffer) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeverAlways(t *testing.T) {
	if (Never{}).Decide(0) || (Never{}).Ratio() != 0 {
		t.Fatal("Never misbehaves")
	}
	if !(Always{}).Decide(0) || (Always{}).Ratio() != 1 {
		t.Fatal("Always misbehaves")
	}
}

func TestStaticRatioApproximatesP(t *testing.T) {
	s := NewStaticRatio(0.3, 7)
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if s.Decide(0) {
			n++
		}
	}
	got := float64(n) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("offload fraction = %v, want ~0.3", got)
	}
}

func TestDynamicClimbsTowardOptimum(t *testing.T) {
	// Synthetic objective: throughput peaks at ratio 0.6.
	cfg := config.Default().NDP
	d := NewDynamic(cfg, 1)
	objective := func(r float64) int64 {
		return int64(10000 * (1 - (r-0.6)*(r-0.6)))
	}
	for epoch := 0; epoch < 60; epoch++ {
		d.EpochTick(objective(d.Ratio()))
	}
	if math.Abs(d.Ratio()-0.6) > 0.2 {
		t.Fatalf("converged ratio = %v, want near 0.6", d.Ratio())
	}
}

func TestDynamicRatioBounded(t *testing.T) {
	cfg := config.Default().NDP
	d := NewDynamic(cfg, 2)
	// Monotonically increasing objective drives the ratio to the top bound.
	for epoch := 0; epoch < 50; epoch++ {
		d.EpochTick(int64(1000 * d.Ratio()))
	}
	for _, r := range d.Trace {
		if r < cfg.StepUnit-1e-9 || r > 1-cfg.StepUnit+1e-9 {
			t.Fatalf("ratio %v escaped [%v, %v]", r, cfg.StepUnit, 1-cfg.StepUnit)
		}
	}
	if d.Ratio() < 0.9 {
		t.Fatalf("ratio = %v, should have climbed near the upper bound", d.Ratio())
	}
}

func TestDynamicShrinksStepOnOscillation(t *testing.T) {
	cfg := config.Default().NDP
	d := NewDynamic(cfg, 3)
	// Strictly decreasing throughput reverses direction every epoch.
	for epoch := 0; epoch < 20; epoch++ {
		d.EpochTick(int64(1000 - epoch*10))
	}
	// Algorithm 1 verbatim: at the minimum step the else-branch grows it
	// again, so sustained oscillation bounces between MinStep and
	// MinStep+StepUnit — never back to MaxStep.
	if d.Step() > cfg.MinStep+cfg.StepUnit {
		t.Fatalf("step = %v, want <= %v under oscillation", d.Step(), cfg.MinStep+cfg.StepUnit)
	}
}

func TestDynamicNeverReachesZero(t *testing.T) {
	// §7.2: STN's optimum is ratio 0 but the controller keeps probing
	// non-zero ratios — the motivation for cache-awareness.
	cfg := config.Default().NDP
	d := NewDynamic(cfg, 4)
	for epoch := 0; epoch < 100; epoch++ {
		d.EpochTick(int64(1000 * (1 - d.Ratio()))) // best at 0
	}
	if d.Ratio() <= 0 {
		t.Fatal("ratio reached zero; Algorithm 1 bounds it above StepUnit")
	}
	if d.Ratio() > 0.3 {
		t.Fatalf("ratio = %v, should hover near the lower bound", d.Ratio())
	}
}

func TestCacheAwareSuppressesCacheFriendlyBlock(t *testing.T) {
	blocks := []BlockInfo{{NumLD: 2, NumST: 0, RegsIn: 0, RegsOut: 1}}
	c := NewCacheAware(Always{}, blocks, 128)
	// 100% hit rate: benefit = ceil(2 * 0) * ... + 0 = 0 < overhead.
	for i := 0; i < 10; i++ {
		c.RecordAccess(0, 2, 2)
	}
	if c.Decide(0) {
		t.Fatal("cache-friendly block not suppressed")
	}
	if c.Suppressed != 1 {
		t.Fatalf("suppressed = %d", c.Suppressed)
	}
}

func TestCacheAwarePassesCacheHostileBlock(t *testing.T) {
	blocks := []BlockInfo{{NumLD: 2, NumST: 1, RegsIn: 1, RegsOut: 0}}
	c := NewCacheAware(Always{}, blocks, 128)
	// 0% hit rate: benefit = 2*128*32 + 1*4*32 >> overhead = 1*4*32.
	for i := 0; i < 10; i++ {
		c.RecordAccess(0, 2, 0)
	}
	if !c.Decide(0) {
		t.Fatal("cache-hostile block wrongly suppressed")
	}
}

func TestCacheAwareDefersBelowMinSamples(t *testing.T) {
	blocks := []BlockInfo{{NumLD: 1, RegsOut: 5}}
	c := NewCacheAware(Always{}, blocks, 128)
	c.RecordAccess(0, 1, 1)
	if !c.Decide(0) {
		t.Fatal("filter engaged before MinSamples")
	}
}

func TestCacheAwareProfilesIndirectBlocks(t *testing.T) {
	// Indirect gather blocks are profiled like any other: when every
	// gathered line turns out to live in the GPU caches, offloading would
	// only ship cached data, so the filter suppresses the block.
	blocks := []BlockInfo{{NumLD: 1, RegsOut: 8, Indirect: true}}
	c := NewCacheAware(Always{}, blocks, 128)
	for i := 0; i < 20; i++ {
		c.RecordAccess(0, 8, 8) // 100% hit
	}
	if c.Decide(0) {
		t.Fatal("fully cached indirect block not suppressed")
	}
	// A missing gather keeps the block offloadable.
	blocks2 := []BlockInfo{{NumLD: 1, RegsOut: 4, Indirect: true}}
	c2 := NewCacheAware(Always{}, blocks2, 128)
	for i := 0; i < 20; i++ {
		c2.RecordAccess(0, 8, 0) // 0% hit
	}
	if !c2.Decide(0) {
		t.Fatal("cache-missing indirect block wrongly suppressed")
	}
}

func TestCacheAwareDelegatesEpoch(t *testing.T) {
	d := NewDynamic(config.Default().NDP, 5)
	c := NewCacheAware(d, []BlockInfo{{}}, 128)
	before := d.Ratio()
	c.EpochTick(100)
	c.EpochTick(200)
	if d.Ratio() == before && len(d.Trace) != 2 {
		t.Fatal("epoch ticks not delegated to inner decider")
	}
	if c.Ratio() != d.Ratio() {
		t.Fatal("Ratio not delegated")
	}
}
