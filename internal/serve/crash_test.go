package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCtx(t *testing.T) {
	// Nil receiver: a Runner invoked outside the scheduler (tests, tools)
	// must be able to call every method without a guard.
	var nilCtx *RunCtx
	if nilCtx.Done() != nil || nilCtx.Err() != nil {
		t.Fatal("nil RunCtx is not inert")
	}
	nilCtx.OnCancel(func() { t.Fatal("nil RunCtx fired a canceler") })

	rc := newRunCtx()
	if rc.Err() != nil {
		t.Fatal("fresh RunCtx carries a cause")
	}
	select {
	case <-rc.Done():
		t.Fatal("fresh RunCtx is already done")
	default:
	}
	var fired atomic.Int64
	rc.OnCancel(func() { fired.Add(1) })
	cause := errors.New("test cause")
	rc.cancel(cause)
	rc.cancel(errors.New("second cause loses"))
	select {
	case <-rc.Done():
	default:
		t.Fatal("Done not closed after cancel")
	}
	if !errors.Is(rc.Err(), cause) {
		t.Fatalf("Err = %v, want the first cause", rc.Err())
	}
	if fired.Load() != 1 {
		t.Fatalf("canceler fired %d times, want 1", fired.Load())
	}
	// Late registration on an already-canceled context fires immediately.
	rc.OnCancel(func() { fired.Add(1) })
	if fired.Load() != 2 {
		t.Fatal("OnCancel after cancel did not fire immediately")
	}
}

// chaosReq builds a request whose Client triggers ChaosRunner injection.
// Client is excluded from the key, so seed diversity keeps poisoned keys
// distinct from healthy ones.
func chaosReq(t testing.TB, seed int64, client string) *Request {
	t.Helper()
	return reqFor(t, "VADD", seed, client)
}

// TestPanicIsolation: a panicking run is converted into a structured
// *PanicError for its waiters while the lone worker survives to execute the
// next request — with Workers:1 a dead worker would hang the second submit.
func TestPanicIsolation(t *testing.T) {
	stub := newStubSim(0)
	s := New(Options{Workers: 1, QueueCap: 8, Runner: ChaosRunner(stub.runner())})
	defer s.Shutdown()

	_, err := s.Submit(context.Background(), chaosReq(t, 9000, ChaosPanicClient))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking run returned %v, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "injected panic") || len(pe.Stack) == 0 {
		t.Fatalf("PanicError lost the panic value or stack: %v", pe)
	}

	served, err := s.Submit(context.Background(), reqFor(t, "VADD", 9001, "healthy"))
	if err != nil || served.Outcome == nil {
		t.Fatalf("worker did not survive the panic: %v", err)
	}
	snap := s.Snapshot()
	if snap.Panics != 1 || snap.Errors != 1 || snap.Executed != 1 {
		t.Fatalf("counters after panic: %+v", snap)
	}
}

// TestPoolPanicBackstop: the pool's own recover guard covers tasks enqueued
// outside the scheduler (sweep jobs) — the worker count never shrinks.
func TestPoolPanicBackstop(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	for i := 0; i < 3; i++ {
		if !p.Go(func() { panic("task bomb") }) {
			t.Fatal("pool refused work")
		}
	}
	done := make(chan struct{})
	if !p.Go(func() { close(done) }) {
		t.Fatal("pool refused work after panics")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker died: task after panics never ran")
	}
	if got := p.Panics(); got != 3 {
		t.Fatalf("pool counted %d panics, want 3", got)
	}
}

// TestWatchdogDeadline: a run that blocks past RunTimeout is cooperatively
// canceled (the runner sees Done close) and its waiters get ErrRunTimeout.
func TestWatchdogDeadline(t *testing.T) {
	stub := newStubSim(0)
	s := New(Options{
		Workers: 1, QueueCap: 8,
		Runner:     ChaosRunner(stub.runner()),
		RunTimeout: 50 * time.Millisecond,
	})
	defer s.Shutdown()

	start := time.Now()
	_, err := s.Submit(context.Background(), chaosReq(t, 9100, ChaosHangClient))
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("hung run returned %v, want ErrRunTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("watchdog took %v to fire a 50ms deadline", elapsed)
	}
	if snap := s.Snapshot(); snap.WatchdogKills != 1 {
		t.Fatalf("WatchdogKills = %d, want 1", snap.WatchdogKills)
	}
	// The worker is free again.
	if _, err := s.Submit(context.Background(), reqFor(t, "VADD", 9101, "healthy")); err != nil {
		t.Fatalf("worker did not survive the watchdog kill: %v", err)
	}
}

// TestWatchdogStall: with only StallTimeout set, a run that emits no
// progress is killed with ErrRunStalled, while a run that keeps emitting
// progress runs well past the stall window untouched.
func TestWatchdogStall(t *testing.T) {
	stall := 60 * time.Millisecond
	silent := func(rc *RunCtx, req *Request, progress func(Progress)) (*Outcome, error) {
		<-rc.Done()
		return nil, errors.New("engine canceled")
	}
	s := New(Options{Workers: 1, QueueCap: 8, Runner: silent, StallTimeout: stall})
	_, err := s.Submit(context.Background(), reqFor(t, "VADD", 9200, "c"))
	if !errors.Is(err, ErrRunStalled) {
		t.Fatalf("silent run returned %v, want ErrRunStalled", err)
	}
	s.Shutdown()

	// A chatty run outlives many stall windows: every progress event touches
	// the guard.
	chatty := func(rc *RunCtx, req *Request, progress func(Progress)) (*Outcome, error) {
		for i := 0; i < 20; i++ {
			select {
			case <-rc.Done():
				return nil, errors.New("killed despite progress")
			case <-time.After(stall / 4):
				progress(Progress{Cycles: int64(i)})
			}
		}
		return &Outcome{Digest: map[string]float64{"ok": 1}}, nil
	}
	s2 := New(Options{Workers: 1, QueueCap: 8, Runner: chatty, StallTimeout: stall})
	defer s2.Shutdown()
	served, err := s2.Submit(context.Background(), reqFor(t, "VADD", 9201, "c"))
	if err != nil || served.Outcome == nil {
		t.Fatalf("progressing run was killed: %v", err)
	}
	if snap := s2.Snapshot(); snap.WatchdogKills != 0 {
		t.Fatalf("WatchdogKills = %d for a progressing run", snap.WatchdogKills)
	}
}

// TestQuarantine: the poison-request circuit breaker — trip after K
// poisonous failures, refuse with the cached failure during the TTL,
// half-open probe after expiry, close on success.
func TestQuarantine(t *testing.T) {
	stub := newStubSim(0)
	s := New(Options{
		Workers: 1, QueueCap: 8,
		Runner:  ChaosRunner(stub.runner()),
		PoisonK: 2, PoisonTTL: time.Hour,
	})
	defer s.Shutdown()
	// Deterministic clock for the TTL.
	now := time.Unix(1000, 0)
	s.quar.now = func() time.Time { return now }

	key := chaosReq(t, 9300, ChaosPanicClient).Key
	for i := 0; i < 2; i++ {
		_, err := s.Submit(context.Background(), chaosReq(t, 9300, ChaosPanicClient))
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	// Breaker open: refused without executing, visible in the snapshot.
	_, err := s.Submit(context.Background(), chaosReq(t, 9300, ChaosPanicClient))
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("third submit returned %v, want *QuarantineError", err)
	}
	if qe.Failures != 2 || !strings.Contains(qe.LastErr, "panicked") {
		t.Fatalf("quarantine record: %+v", qe)
	}
	if got := stub.execCount(key); got != 0 {
		t.Fatal("quarantined submit still reached the stub runner")
	}
	snap := s.Snapshot()
	if snap.Quarantined != 1 || snap.QuarantineHits != 1 {
		t.Fatalf("counters: quarantined %d hits %d", snap.Quarantined, snap.QuarantineHits)
	}
	entries := s.QuarantineSnapshot()
	if len(entries) != 1 || entries[0].Key != key || entries[0].Until.IsZero() {
		t.Fatalf("QuarantineSnapshot: %+v", entries)
	}

	// TTL expiry: one probe is admitted (half-open). Another poisonous
	// failure re-opens immediately — the count was rewound to K-1.
	now = now.Add(2 * time.Hour)
	_, err = s.Submit(context.Background(), chaosReq(t, 9300, ChaosPanicClient))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("half-open probe returned %v, want *PanicError (admitted)", err)
	}
	_, err = s.Submit(context.Background(), chaosReq(t, 9300, ChaosPanicClient))
	if !errors.As(err, &qe) {
		t.Fatalf("breaker did not re-open after a failed probe: %v", err)
	}

	// A successful probe closes the breaker for good: same key, healthy
	// client (Client is not part of the key).
	now = now.Add(2 * time.Hour)
	served, err := s.Submit(context.Background(), reqFor(t, "VADD", 9300, "healthy"))
	if err != nil || served.Outcome == nil {
		t.Fatalf("successful probe: %v", err)
	}
	if len(s.QuarantineSnapshot()) != 0 {
		t.Fatal("successful run did not clear the quarantine record")
	}
	served2, err := s.Submit(context.Background(), chaosReq(t, 9300, ChaosPanicClient))
	if err != nil || !served2.Cached {
		// The success memoized the key: even the chaos client now gets the
		// cached result without executing (cache check precedes injection).
		t.Fatalf("post-recovery submit: cached=%v err=%v", served2.Cached, err)
	}
}

// TestOrdinaryErrorsNotQuarantined: plain run failures (bad workload, fault
// validation, transient simulator errors) are retriable, never poisonous.
func TestOrdinaryErrorsNotQuarantined(t *testing.T) {
	stub := newStubSim(0)
	s := New(Options{Workers: 1, QueueCap: 8, Runner: stub.runner(), PoisonK: 2, PoisonTTL: time.Hour})
	defer s.Shutdown()
	req := reqFor(t, "VADD", 9400, "c")
	stub.fail[req.Key] = true

	for i := 0; i < 5; i++ {
		if _, err := s.Submit(context.Background(), req); err == nil {
			t.Fatal("failing run returned no error")
		}
	}
	if got := stub.execCount(req.Key); got != 5 {
		t.Fatalf("executed %d times, want 5 (every retry admitted)", got)
	}
	if snap := s.Snapshot(); snap.Quarantined != 0 || snap.Panics != 0 {
		t.Fatalf("ordinary failures tripped the breaker: %+v", snap)
	}
	if len(s.QuarantineSnapshot()) != 0 {
		t.Fatal("ordinary failures left quarantine records")
	}
}

// TestServeChaosHTTP drives panic isolation and quarantine end to end over
// HTTP: structured 500s, then 503 + Retry-After once the breaker opens,
// quarantine visible in /status and /metrics, server still serving.
func TestServeChaosHTTP(t *testing.T) {
	stub := newStubSim(0)
	sched := New(Options{
		Workers: 2, QueueCap: 16,
		Runner:  ChaosRunner(stub.runner()),
		PoisonK: 2, PoisonTTL: time.Hour,
	})
	front := NewServer(sched)
	ts := httptest.NewServer(front)
	t.Cleanup(func() { ts.Close(); sched.Shutdown() })

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	poison := `{"workload":"VADD","mode":"dyn","seed":9500,"client":"chaos-panic"}`

	for i := 0; i < 2; i++ {
		resp := post(poison)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic run %d: status %d, want 500", i, resp.StatusCode)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || !strings.Contains(eb.Error, "panicked") {
			t.Fatalf("panic run %d: error envelope %q (%v)", i, eb.Error, err)
		}
	}
	resp := post(poison)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined key: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quarantine 503 carries no Retry-After")
	}

	// Quarantine is visible in /status...
	sresp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var status struct {
		Counters   Counters          `json:"counters"`
		Quarantine []QuarantineEntry `json:"quarantine"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Counters.Panics != 2 || status.Counters.QuarantineHits != 1 || status.Counters.Quarantined != 1 {
		t.Fatalf("/status counters: %+v", status.Counters)
	}
	if len(status.Quarantine) != 1 || status.Quarantine[0].Failures != 2 {
		t.Fatalf("/status quarantine: %+v", status.Quarantine)
	}

	// ...and in /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"ndpserve_panics_total 2",
		"ndpserve_quarantined 1",
		"ndpserve_quarantine_hits_total 1",
		"ndpserve_ready 1",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("metrics missing %q:\n%s", want, joined)
		}
	}

	// The server keeps serving healthy requests throughout.
	ok := post(`{"workload":"VADD","mode":"dyn","seed":9501}`)
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("healthy request after chaos: status %d", ok.StatusCode)
	}
}

// TestReadyzTransitions: /healthz is liveness (always green while the
// process answers), /readyz tracks SetReady and BeginDrain, and /run is
// refused with 503 + Retry-After while not ready.
func TestReadyzTransitions(t *testing.T) {
	stub := newStubSim(0)
	sched := New(Options{Workers: 1, QueueCap: 8, Runner: stub.runner()})
	front := NewServer(sched)
	ts := httptest.NewServer(front)
	t.Cleanup(func() { ts.Close(); sched.Shutdown() })

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d", got)
	}

	// Startup replay window: not ready, but alive.
	front.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("not-ready /readyz = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("liveness followed readiness down: /healthz = %d", got)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"workload":"VADD","mode":"dyn"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("/run while not ready: status %d Retry-After %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Replay finished.
	front.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("post-replay /readyz = %d", got)
	}
	if !front.Ready() {
		t.Fatal("Ready() disagrees with /readyz")
	}

	// Drain: readiness latches false.
	front.BeginDrain()
	front.BeginDrain() // idempotent
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200 (still alive)", got)
	}
}

// TestSSEShutdownFrame: drain must terminate an active progress stream with
// a final "event: shutdown" frame instead of leaving the client hanging.
func TestSSEShutdownFrame(t *testing.T) {
	stub := newStubSim(0)
	stub.gate = make(chan struct{})
	sched := New(Options{Workers: 1, QueueCap: 8, Runner: stub.runner()})
	front := NewServer(sched)
	ts := httptest.NewServer(front)
	gateOnce := make(chan struct{})
	t.Cleanup(func() {
		select {
		case <-gateOnce:
		default:
			close(stub.gate)
			close(gateOnce)
		}
		ts.Close()
		sched.Shutdown()
	})

	resp, err := http.Post(ts.URL+"/run?stream=1", "application/json",
		strings.NewReader(`{"workload":"VADD","mode":"dyn","seed":9600}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	// The run is gated open — the stream is live and idle when drain hits.
	waitSnapshot(t, sched, "stream running", func(c Counters) bool { return c.Running == 1 })
	front.BeginDrain()

	var events []string
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(30*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for sc.Scan() {
		if after, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			events = append(events, after)
		}
	}
	if len(events) == 0 || events[len(events)-1] != "shutdown" {
		t.Fatalf("drained stream did not end in a shutdown event: %v", events)
	}

	// The gated execution still completes server-side and seeds the cache —
	// a client that resubmits after restart gets a map lookup.
	close(stub.gate)
	close(gateOnce)
	waitSnapshot(t, sched, "gated run completed", func(c Counters) bool { return c.CacheEntries == 1 })
}
