package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// metricsRun executes one VADD run at the audit configuration, optionally
// with the metrics collector enabled and/or the parallel executor, and
// returns the machine plus everything the equivalence checks compare.
type metricsLeg struct {
	m      *Machine
	res    *Result
	mem    []byte
	export []byte // metrics JSON, nil when disabled
}

func runMetricsLeg(t *testing.T, cfg config.Config, mode Mode, enable bool) metricsLeg {
	t.Helper()
	mem := vm.New(cfg)
	w, err := workloads.Build("VADD", mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Launch(cfg, w.Kernel, mem, mode)
	if err != nil {
		t.Fatal(err)
	}
	if enable {
		m.EnableMetrics(0)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	leg := metricsLeg{m: m, res: res, mem: mem.Snapshot()}
	if enable {
		var buf bytes.Buffer
		if err := m.Metrics().Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		leg.export = buf.Bytes()
	}
	return leg
}

// TestMetricsDisabledNoOp pins the zero-cost-when-disabled contract: a run
// with the collector attached is bit-identical — cycles, elapsed time, the
// full statistics bundle, and the final memory image — to a run without it.
func TestMetricsDisabledNoOp(t *testing.T) {
	cfg := AuditConfig()
	off := runMetricsLeg(t, cfg, DynNDP, false)
	on := runMetricsLeg(t, cfg, DynNDP, true)

	if off.res.Cycles != on.res.Cycles {
		t.Errorf("cycles differ: off=%d on=%d", off.res.Cycles, on.res.Cycles)
	}
	if off.res.TimePS != on.res.TimePS {
		t.Errorf("elapsed time differs: off=%d on=%d", off.res.TimePS, on.res.TimePS)
	}
	if !reflect.DeepEqual(off.res.Stats, on.res.Stats) {
		t.Errorf("statistics bundles differ with metrics enabled")
	}
	if !bytes.Equal(off.mem, on.mem) {
		t.Errorf("final memory images differ with metrics enabled")
	}
	if len(on.export) == 0 {
		t.Fatal("enabled run produced no export")
	}
}

// TestMetricsSerialParallelIdentity requires the enabled collector to export
// byte-identical JSON between the serial engine and the sharded parallel
// executor — samples, timestamps, span order, everything.
func TestMetricsSerialParallelIdentity(t *testing.T) {
	serialCfg := AuditConfig()
	parCfg := serialCfg
	parCfg.Parallel = 4
	for _, mode := range []Mode{NaiveNDP, DynNDP} {
		serial := runMetricsLeg(t, serialCfg, mode, true)
		par := runMetricsLeg(t, parCfg, mode, true)
		if !bytes.Equal(serial.export, par.export) {
			t.Errorf("%s: metrics export differs serial vs parallel", mode.Name)
		}
		if !bytes.Equal(serial.mem, par.mem) {
			t.Errorf("%s: memory differs serial vs parallel", mode.Name)
		}
	}
}

// TestMetricsChromeTraceValid schema-checks the Chrome trace-event export of
// a VADD DynNDP run: process metadata, counter events on every series, and
// one complete-duration event per offload round trip with tid = issuing SM.
func TestMetricsChromeTraceValid(t *testing.T) {
	cfg := AuditConfig()
	leg := runMetricsLeg(t, cfg, DynNDP, true)

	var buf bytes.Buffer
	if err := leg.m.Metrics().Snapshot().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			PID  int      `json:"pid"`
			TID  int      `json:"tid"`
			TS   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	var meta, counters, spans int
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("event missing name/ph: %+v", ev)
		}
		switch ev.Ph {
		case "M":
			meta++
		case "C":
			counters++
			if ev.TS < 0 {
				t.Fatalf("counter with negative ts: %+v", ev)
			}
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur <= 0 {
				t.Fatalf("span without positive dur: %+v", ev)
			}
			if ev.TID < 0 || ev.TID >= cfg.GPU.NumSMs {
				t.Fatalf("span tid %d outside SM range", ev.TID)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta < 2 {
		t.Errorf("want >= 2 process_name metadata events, got %d", meta)
	}
	if counters == 0 {
		t.Error("no counter events in the chrome export")
	}
	// DynNDP VADD offloads blocks, so round trips must appear, one per ack.
	if want := leg.res.Stats.AckLatencyCount; int64(spans) != want {
		t.Errorf("span events = %d, want one per ack (%d)", spans, want)
	}
}

// TestMetricsSampleTimesPinEpochs checks the default sampler lands exactly on
// the Algorithm-1 epoch boundaries the GPU already pins, plus one final
// sample at quiescence.
func TestMetricsSampleTimesPinEpochs(t *testing.T) {
	cfg := AuditConfig()
	leg := runMetricsLeg(t, cfg, DynNDP, true)
	r := leg.m.Metrics().Snapshot()
	if r.IntervalCycles != cfg.NDP.EpochCycles {
		t.Fatalf("default interval = %d, want epoch %d", r.IntervalCycles, cfg.NDP.EpochCycles)
	}
	if len(r.TimesPS) == 0 {
		t.Fatal("no samples")
	}
	epochPS := r.IntervalCycles * r.PeriodPS
	for i, ts := range r.TimesPS[:len(r.TimesPS)-1] {
		if ts%epochPS != 0 {
			t.Fatalf("sample %d at %d ps is not an epoch boundary (epoch %d ps)", i, ts, epochPS)
		}
	}
	if last := r.TimesPS[len(r.TimesPS)-1]; last != int64(leg.res.TimePS) {
		t.Fatalf("final sample at %d, want run end %d", last, leg.res.TimePS)
	}
}
