// Command ndpserve is the long-running simulation service: an HTTP/JSON
// server that accepts run requests (workload x mode x config overrides x
// seed x fault schedule), schedules them on a bounded worker pool, and
// memoizes completed results by request content digest — a repeated request
// costs a map lookup, not a full simulation.
//
// Usage:
//
//	ndpserve -addr :8347 -workers 8 -queue 1024 -data /var/lib/ndpserve
//
// Endpoints:
//
//	POST /run      submit a run; ?stream=1 upgrades to SSE progress events
//	GET  /status   scheduler counters, quarantine, journal state (JSON)
//	GET  /metrics  the same counters, one per line
//	GET  /healthz  liveness
//	GET  /readyz   readiness (journal replayed, not draining)
//
// Example:
//
//	curl -s localhost:8347/run -d '{"workload":"VADD","mode":"dyn"}'
//
// Crash safety: with -data, every completed result is appended to a
// checksummed, fsync-batched journal and replayed on startup, so kill -9
// loses at most the in-flight runs. Panicking or hung runs are isolated
// (structured 500; the -runtimeout/-stalltimeout watchdog cancels wedged
// engines) and a key that poisons workers -poisonk times is quarantined for
// -poisonttl.
//
// SIGINT/SIGTERM drain gracefully: readiness goes false, active SSE streams
// get a final "shutdown" event, admission stops (503), every acknowledged
// request — queued or running — completes and is answered, then the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ndpgpu/internal/experiments"
	"ndpgpu/internal/prof"
	"ndpgpu/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() { <-sig; close(stop) }()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop, nil))
}

// run is the whole server behind a testable seam: parse flags, serve until
// stop closes, drain, and return the process exit status. ready (when
// non-nil) receives the bound listen address once the server accepts
// connections.
func run(args []string, w, werr io.Writer, stop <-chan struct{}, ready func(addr string)) int {
	fs := flag.NewFlagSet("ndpserve", flag.ContinueOnError)
	fs.SetOutput(werr)
	var (
		addr    = fs.String("addr", ":8347", "listen address")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
		queue   = fs.Int("queue", 1024, "admission queue capacity (429 beyond it)")
		retry   = fs.Duration("retryafter", time.Second, "Retry-After hint on backpressure")
		dataDir = fs.String("data", "", "durable journal directory (empty: results are memoized in memory only)")
		runTO   = fs.Duration("runtimeout", 10*time.Minute, "cancel a run past this wall-clock deadline (0 disables)")
		stallTO = fs.Duration("stalltimeout", 2*time.Minute, "cancel a run with no progress sample for this long (0 disables)")
		poisonK = fs.Int("poisonk", 3, "quarantine a key after this many panics/hangs")
		poisonT = fs.Duration("poisonttl", 10*time.Minute, "how long a quarantined key is refused")
		chaos   = fs.Bool("chaos", false, "enable client-triggered fault injection (chaos harness only)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := prof.StartOpts(prof.Options{CPU: *cpuProf, Mem: *memProf})
	if err != nil {
		fmt.Fprintln(werr, "ndpserve:", err)
		return 1
	}
	defer stopProf()

	var journal *serve.Journal
	if *dataDir != "" {
		journal, err = serve.OpenJournal(*dataDir)
		if err != nil {
			fmt.Fprintln(werr, "ndpserve:", err)
			return 1
		}
		defer journal.Close()
	}

	runner := experiments.ServeRunner()
	if *chaos {
		fmt.Fprintln(w, "ndpserve: CHAOS MODE — client-triggered fault injection enabled")
		runner = serve.ChaosRunner(runner)
	}
	sched := serve.New(serve.Options{
		Workers:      *workers,
		QueueCap:     *queue,
		Runner:       runner,
		RetryAfter:   *retry,
		RunTimeout:   *runTO,
		StallTimeout: *stallTO,
		PoisonK:      *poisonK,
		PoisonTTL:    *poisonT,
		Journal:      journal,
	})
	front := serve.NewServer(sched)
	srv := &http.Server{Handler: front}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(werr, "ndpserve:", err)
		sched.Shutdown()
		return 1
	}
	// Not ready until the journal is replayed: /healthz is live the moment
	// the listener is up, but /run and /readyz answer 503 so a load balancer
	// doesn't route work into the replay window.
	front.SetReady(false)
	if ready != nil {
		ready(ln.Addr().String())
	}
	fmt.Fprintf(w, "ndpserve: listening on %s (%d workers, queue %d)\n",
		ln.Addr(), *workers, *queue)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	if journal != nil {
		recovered, rst, err := journal.Replay()
		if err != nil {
			fmt.Fprintln(werr, "ndpserve: journal replay:", err)
			sched.Shutdown()
			srv.Close()
			return 1
		}
		n := sched.Restore(recovered)
		fmt.Fprintf(w, "ndpserve: journal replayed %d records in %.1f ms (%d restored, %d duplicate, %d torn bytes truncated)\n",
			rst.Records, rst.ReplayMS, n, rst.Duplicates, rst.TruncatedBytes)
	}
	front.SetReady(true)

	select {
	case err := <-errCh:
		fmt.Fprintln(werr, "ndpserve:", err)
		sched.Shutdown()
		return 1
	case <-stop:
	}

	// Drain: readiness off and SSE streams closed with a "shutdown" event,
	// then stop admitting (every new submit gets 503), finish every
	// acknowledged run, and close the HTTP side, whose in-flight handlers
	// have all been answered by the drain. The journal closes last (deferred)
	// so the final batch of results is durable.
	fmt.Fprintln(w, "ndpserve: draining...")
	front.BeginDrain()
	sched.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(werr, "ndpserve: shutdown:", err)
		return 1
	}
	snap := sched.Snapshot()
	fmt.Fprintf(w, "ndpserve: drained (%d executed, %d cache hits, %d coalesced)\n",
		snap.Executed, snap.CacheHits, snap.Coalesced)
	return 0
}
