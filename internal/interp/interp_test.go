package interp

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// TestInterpreterMatchesWorkloadReferences runs every Table 1 workload
// through the reference interpreter and checks the workload's own host
// verifier — two independently written oracles must agree.
func TestInterpreterMatchesWorkloadReferences(t *testing.T) {
	for _, abbr := range workloads.Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			mem := vm.New(config.Default())
			w, err := workloads.Build(abbr, mem, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := Run(w.Kernel, mem); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(); err != nil {
				t.Fatalf("interpreter output rejected by host reference: %v", err)
			}
		})
	}
}

func TestBarrierPhases(t *testing.T) {
	// Stage values through scratchpad across a barrier: thread t writes
	// slot t, then reads slot (t+1)%64 after the barrier.
	cfg := config.Default()
	mem := vm.New(cfg)
	const n = 128
	out := mem.Alloc(4 * n)
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegTID, 2)
	kb.Sts(16, 0, kernel.RegTID)
	kb.Bar()
	kb.OpImm(isa.ADDI, 17, kernel.RegTID, 1)
	kb.MovI(18, 63)
	kb.Op3(isa.AND, 17, 17, 18)
	kb.OpImm(isa.SHLI, 17, 17, 2)
	kb.Lds(19, 17, 0)
	kb.OpImm(isa.SHLI, 20, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 20, kernel.RegParam0, 20)
	kb.St(20, 0, 19)
	kb.Exit()
	k := kb.MustBuild("stage", n/64, 64, out)

	if err := Run(k, mem); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := uint32((i%64 + 1) % 64)
		if got := mem.Read32(out + uint64(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestInfiniteLoopDetected(t *testing.T) {
	mem := vm.New(config.Default())
	mem.Alloc(4096)
	kb := kernel.NewBuilder()
	top := kb.NewLabel()
	kb.Bind(top)
	kb.Bra(top)
	kb.Exit()
	k := kb.MustBuild("spin", 1, 32)
	if err := Run(k, mem); err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestDivergentBranchRejected(t *testing.T) {
	mem := vm.New(config.Default())
	mem.Alloc(4096)
	kb := kernel.NewBuilder()
	skip := kb.NewLabel()
	kb.OpImm(isa.ANDI, 16, kernel.RegTID, 1) // diverges within the warp
	kb.Brp(16, skip)
	kb.MovI(17, 1)
	kb.Bind(skip)
	kb.Exit()
	k := kb.MustBuild("div", 1, 32)
	if err := Run(k, mem); err == nil {
		t.Fatal("expected divergent-branch error")
	}
}
