// Command ndptrace runs one workload with a packet-level trace of the
// partitioned-execution protocol and prints the recorded events, optionally
// filtered to a single offloaded warp — the "what did this offload actually
// do on the wire" debugging view.
//
// Usage:
//
//	ndptrace -workload VADD -mode naive -sm 0 -warp 0 -max 64
package main

import (
	"flag"
	"fmt"
	"os"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/trace"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "VADD", "workload abbreviation")
		mode     = flag.String("mode", "naive", sim.ModeUsage)
		smID     = flag.Int("sm", -1, "filter to this SM's warp (-1 = no filter)")
		warpID   = flag.Int("warp", 0, "warp slot for -sm filtering")
		max      = flag.Int("max", 100, "maximum events to retain")
	)
	flag.Parse()

	cfg := config.Default()
	m, cfg, err := sim.ParseMode(*mode, cfg)
	if err != nil {
		fatal(err)
	}
	mem := vm.New(cfg)
	w, err := workloads.Build(*workload, mem, 1)
	if err != nil {
		fatal(err)
	}
	machine, err := sim.Launch(cfg, w.Kernel, mem, m)
	if err != nil {
		fatal(err)
	}
	rec := trace.NewRecorder(*max)
	if *smID >= 0 {
		rec.Filter = trace.FilterWarp(int32(*smID), int32(*warpID))
	}
	machine.Fabric().SetTracer(rec.Observe)

	if _, err := machine.Run(0); err != nil {
		fatal(err)
	}
	fmt.Printf("%d packets observed, showing %d:\n", rec.Total(), len(rec.Events()))
	fmt.Print(rec.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndptrace:", err)
	os.Exit(1)
}
