package energy

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/stats"
)

func synthetic() *stats.Stats {
	s := stats.New()
	s.ElapsedPS = 10_000_000 // 10 us
	s.IssuedInstrs = 100_000
	s.NSUInstrs = 10_000
	s.L1D.Accesses = 50_000
	s.L2.Accesses = 20_000
	s.DRAMReads = 5000
	s.DRAMWrites = 1000
	s.DRAMActivations = 800
	s.AddTraffic(stats.GPULink, 2_000_000)
	s.AddTraffic(stats.MemNet, 500_000)
	s.AddTraffic(stats.IntraHMC, 1_000_000)
	return s
}

func TestComputeComponentsPositive(t *testing.T) {
	cfg := config.Default()
	e := Compute(synthetic(), cfg, DefaultParams(), true)
	if e.GPU <= 0 || e.NSU <= 0 || e.IntraHMC <= 0 || e.OffChip <= 0 || e.DRAM <= 0 {
		t.Fatalf("non-positive component: %+v", e)
	}
	if e.Total() <= e.GPU {
		t.Fatal("total must exceed any single component")
	}
}

func TestBaselineHasNoNSUEnergy(t *testing.T) {
	cfg := config.Default()
	st := synthetic()
	st.NSUInstrs = 0
	e := Compute(st, cfg, DefaultParams(), false)
	if e.NSU != 0 {
		t.Fatalf("baseline NSU energy = %v, want 0 (power-gated, §5)", e.NSU)
	}
	// Off-chip for the baseline excludes the memory-network standby power.
	ndp := Compute(synthetic(), cfg, DefaultParams(), true)
	if ndp.OffChip <= e.OffChip {
		t.Fatal("NDP off-chip energy should include memory-network standby power")
	}
}

func TestEnergyScalesWithTraffic(t *testing.T) {
	cfg := config.Default()
	a := synthetic()
	b := synthetic()
	b.Traffic[stats.GPULink] *= 2
	ea := Compute(a, cfg, DefaultParams(), false)
	eb := Compute(b, cfg, DefaultParams(), false)
	if eb.OffChip <= ea.OffChip || eb.GPU <= ea.GPU {
		t.Fatal("doubling link traffic must increase off-chip and wire energy")
	}
}

func TestEnergyScalesWithRuntime(t *testing.T) {
	cfg := config.Default()
	a := synthetic()
	b := synthetic()
	b.ElapsedPS *= 2
	ea := Compute(a, cfg, DefaultParams(), true)
	eb := Compute(b, cfg, DefaultParams(), true)
	if eb.Total() <= ea.Total() {
		t.Fatal("longer runtime must cost more static energy")
	}
}

func TestActivationEnergyConstant(t *testing.T) {
	// The paper's constant: 11.8 nJ per 4 KB row activation.
	if p := DefaultParams(); p.ActivatePJ != 11800 {
		t.Fatalf("activation energy = %v pJ, want 11800 (11.8 nJ)", p.ActivatePJ)
	}
	// 2 pJ/bit link energy = 16 pJ/B.
	if p := DefaultParams(); p.LinkPJPerB != 16 {
		t.Fatalf("link energy = %v pJ/B, want 16", p.LinkPJPerB)
	}
	// 4 pJ/bit row read = 32 pJ/B.
	if p := DefaultParams(); p.RowRWPJPerB != 32 {
		t.Fatalf("row read energy = %v pJ/B, want 32", p.RowRWPJPerB)
	}
}

func TestComputeFillsStats(t *testing.T) {
	cfg := config.Default()
	st := synthetic()
	e := Compute(st, cfg, DefaultParams(), true)
	if st.Energy != e {
		t.Fatal("Compute must record the breakdown in the stats bundle")
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > scale {
		scale = b
	}
	return d <= 1e-9*scale
}

// TestComputeTable pins the model's behavior on edge-case machines and runs:
// zero-cycle runs must cost exactly nothing, a purely dynamic run must match
// the closed-form event sums, and static energy must scale with the number
// of components actually present.
func TestComputeTable(t *testing.T) {
	p := DefaultParams()
	lineB := float64(config.Default().LineBytes())
	const oneSecond = 1_000_000_000_000 // in ps

	oneSM := config.Default()
	oneSM.GPU.NumSMs = 1
	oneHMC := config.Default()
	oneHMC.NumHMCs = 1

	cases := []struct {
		name    string
		st      func() *stats.Stats
		elapsed int64 // overrides ElapsedPS after st()
		cfg     config.Config
		ndp     bool
		check   func(t *testing.T, e stats.EnergyBreakdown)
	}{
		{
			name: "zero-cycle zero-event run costs nothing",
			st:   stats.New,
			cfg:  config.Default(),
			ndp:  true,
			check: func(t *testing.T, e stats.EnergyBreakdown) {
				if e.Total() != 0 {
					t.Fatalf("empty run total = %v pJ, want 0", e.Total())
				}
			},
		},
		{
			name:    "zero-cycle dynamic-only run matches closed-form sums",
			st:      synthetic,
			elapsed: -1, // force ElapsedPS to zero: pure event energy
			cfg:     config.Default(),
			ndp:     true,
			check: func(t *testing.T, e stats.EnergyBreakdown) {
				s := synthetic()
				wantGPU := p.GPUInstrPJ*float64(s.IssuedInstrs) +
					p.L1AccessPJ*float64(s.L1D.Accesses) +
					p.L2AccessPJ*float64(s.L2.Accesses) +
					p.WirePJPerB*float64(s.Traffic[stats.GPULink])
				wantNSU := p.NSUInstrPJ * float64(s.NSUInstrs)
				wantIntra := p.IntraHMCPJPerB * float64(s.Traffic[stats.IntraHMC])
				wantOff := p.LinkPJPerB * float64(s.Traffic[stats.GPULink]+s.Traffic[stats.MemNet])
				wantDRAM := p.ActivatePJ*float64(s.DRAMActivations) +
					p.RowRWPJPerB*lineB*float64(s.DRAMReads+s.DRAMWrites)
				for _, c := range []struct {
					comp      string
					got, want float64
				}{
					{"GPU", e.GPU, wantGPU}, {"NSU", e.NSU, wantNSU},
					{"IntraHMC", e.IntraHMC, wantIntra},
					{"OffChip", e.OffChip, wantOff}, {"DRAM", e.DRAM, wantDRAM},
				} {
					if !approx(c.got, c.want) {
						t.Fatalf("%s = %v pJ, want %v", c.comp, c.got, c.want)
					}
				}
			},
		},
		{
			name:    "single-SM machine pays one SM of static power",
			st:      stats.New,
			elapsed: oneSecond,
			cfg:     oneSM,
			ndp:     false,
			check: func(t *testing.T, e stats.EnergyBreakdown) {
				want := (p.SMStaticW + p.L2StaticW) * 1e12 // 1 s at 1 SM + L2
				if !approx(e.GPU, want) {
					t.Fatalf("GPU static = %v pJ, want %v", e.GPU, want)
				}
			},
		},
		{
			name:    "single-HMC machine pays one stack of DRAM standby",
			st:      stats.New,
			elapsed: oneSecond,
			cfg:     oneHMC,
			ndp:     false,
			check: func(t *testing.T, e stats.EnergyBreakdown) {
				want := p.DRAMStaticW * 1e12
				if !approx(e.DRAM, want) {
					t.Fatalf("DRAM static = %v pJ, want %v", e.DRAM, want)
				}
				if e.NSU != 0 || e.OffChip != 0 {
					t.Fatalf("idle baseline must not pay NDP power: %+v", e)
				}
			},
		},
		{
			name: "NSU events cost nothing when NDP is power-gated",
			st: func() *stats.Stats {
				s := stats.New()
				s.NSUInstrs = 1_000_000
				return s
			},
			cfg: config.Default(),
			ndp: false,
			check: func(t *testing.T, e stats.EnergyBreakdown) {
				if e.NSU != 0 {
					t.Fatalf("gated NSU energy = %v pJ, want 0", e.NSU)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.st()
			switch {
			case tc.elapsed < 0:
				s.ElapsedPS = 0
			case tc.elapsed > 0:
				s.ElapsedPS = tc.elapsed
			}
			tc.check(t, Compute(s, tc.cfg, p, tc.ndp))
		})
	}
}
