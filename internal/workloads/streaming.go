package workloads

import (
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

func init() {
	register("VADD", buildVADD)
	register("FWT", buildFWT)
	register("SP", buildSP)
	register("BPROP", buildBPROP)
}

// buildVADD is the Figure 2 running example: C[i] = A[i] + B[i].
// Table 1: 50M elements, one 4-instruction offload block; scaled here.
func buildVADD(mem *vm.System, scale int) *Workload {
	n := 256 * 1024 * scale
	a := allocF32(mem, n)
	b := allocF32(mem, n)
	c := allocF32(mem, n)
	r := rng()
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = r.Float32()
		bv[i] = r.Float32()
	}
	fillF32(mem, a, n, func(i int) float32 { return av[i] })
	fillF32(mem, b, n, func(i int) float32 { return bv[i] })

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16)
	kb.Op3(isa.ADD, 19, kernel.RegParam0+2, 16)
	kb.Ld(20, 17, 0)
	kb.Ld(21, 18, 0)
	kb.Op3(isa.FADD, 22, 20, 21)
	kb.St(19, 0, 22)
	kb.Exit()
	k := kb.MustBuild("vadd", n/256, 256, a, b, c)

	return &Workload{
		Abbr:   "VADD",
		Desc:   "Vector addition [CUDA SDK]",
		Input:  fmtN(n) + " elements",
		Kernel: k,
		Verify: func() error {
			for i := 0; i < n; i++ {
				if err := expectF32(mem, c, i, f32add(av[i], bv[i]), "C"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// buildFWT is one butterfly stage of a fast Walsh transform: for pair
// (i, i+stride): a' = a+b, b' = a-b. Table 1: 2^22 data; blocks of 16 and 4
// instructions. Two consecutive sub-stages are unrolled into the kernel to
// give both a larger and a smaller block.
func buildFWT(mem *vm.System, scale int) *Workload {
	n := 512 * 1024 * scale // elements, power of two
	stride := n / 4
	data := allocF32(mem, n)
	r := rng()
	dv := make([]float32, n)
	for i := range dv {
		dv[i] = r.Float32()*2 - 1
	}
	fillF32(mem, data, n, func(i int) float32 { return dv[i] })

	// Thread t handles pair (t, t+stride) within its half-group. With
	// groups of 2*stride, index = (t/stride)*2*stride + t%stride.
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHRI, 16, kernel.RegGTID, shiftFor(stride)) // g = t/stride
	kb.OpImm(isa.SHLI, 16, 16, shiftFor(stride)+1)           // g*2*stride
	kb.OpImm(isa.ANDI, 17, kernel.RegGTID, int64(stride-1))  // t%stride
	kb.Op3(isa.ADD, 18, 16, 17)                              // i
	kb.OpImm(isa.SHLI, 18, 18, 2)
	kb.Op3(isa.ADD, 19, kernel.RegParam0, 18) // &data[i]
	kb.Ld(20, 19, 0)
	kb.Ld(21, 19, int64(4*stride))
	kb.Op3(isa.FADD, 22, 20, 21)
	kb.Op3(isa.FSUB, 23, 20, 21)
	kb.St(19, 0, 22)
	kb.St(19, int64(4*stride), 23)
	kb.Exit()
	k := kb.MustBuild("fwt", (n/2)/256, 256, data)

	return &Workload{
		Abbr:   "FWT",
		Desc:   "Fast Walsh Transform butterfly [CUDA SDK]",
		Input:  fmtN(n) + " points, stride " + fmtN(stride),
		Kernel: k,
		Verify: func() error {
			for t := 0; t < n/2; t++ {
				i := (t/stride)*2*stride + t%stride
				a, b := dv[i], dv[i+stride]
				if err := expectF32(mem, data, i, f32add(a, b), "data"); err != nil {
					return err
				}
				if err := expectF32(mem, data, i+stride, f32sub(a, b), "data"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// buildSP computes partial scalar products: thread t of pair v accumulates
// A[v][t+k*T]*B[v][t+k*T] over k, writing a per-thread partial sum.
// Table 1: 512 32K-element vectors, one 3-instruction block; here the inner
// loop is unrolled by two so the block amortizes its accumulator transfer.
func buildSP(mem *vm.System, scale int) *Workload {
	const threadsPerVec = 256
	const iters = 4 // elements per thread = 2*iters (unrolled by 2)
	vecs := 512 * scale
	elems := threadsPerVec * 2 * iters
	n := vecs * elems
	a := allocF32(mem, n)
	b := allocF32(mem, n)
	out := allocF32(mem, vecs*threadsPerVec)
	r := rng()
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = r.Float32()
		bv[i] = r.Float32()
	}
	fillF32(mem, a, n, func(i int) float32 { return av[i] })
	fillF32(mem, b, n, func(i int) float32 { return bv[i] })

	kb := kernel.NewBuilder()
	// Element base: gtid's vector = gtid/T, lane = gtid%T.
	kb.OpImm(isa.SHRI, 16, kernel.RegGTID, 8) // v
	kb.MovI(17, int64(elems))
	kb.Op3(isa.MUL, 16, 16, 17)                             // v*elems
	kb.OpImm(isa.ANDI, 17, kernel.RegGTID, threadsPerVec-1) // lane
	kb.Op3(isa.ADD, 16, 16, 17)                             // first element index
	kb.OpImm(isa.SHLI, 16, 16, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)   // &A[e]
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16) // &B[e]
	kb.MovI(20, 0)                              // acc
	kb.MovI(21, int64(iters))
	loop := kb.NewLabel()
	kb.Bind(loop)
	kb.Ld(22, 17, 0)
	kb.Ld(23, 18, 0)
	kb.Ld(24, 17, int64(4*threadsPerVec))
	kb.Ld(25, 18, int64(4*threadsPerVec))
	kb.Op4(isa.FMA, 20, 22, 23, 20)
	kb.Op4(isa.FMA, 20, 24, 25, 20)
	kb.OpImm(isa.ADDI, 17, 17, int64(8*threadsPerVec))
	kb.OpImm(isa.ADDI, 18, 18, int64(8*threadsPerVec))
	kb.OpImm(isa.ADDI, 21, 21, -1)
	kb.MovI(26, 0)
	kb.Setp(isa.CmpGT, 27, 21, 26)
	kb.Brp(27, loop)
	kb.OpImm(isa.SHLI, 28, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 28, kernel.RegParam0+2, 28)
	kb.St(28, 0, 20)
	kb.Exit()
	k := kb.MustBuild("sp", vecs*threadsPerVec/256, 256, a, b, out)

	return &Workload{
		Abbr:   "SP",
		Desc:   "Scalar product partials [CUDA SDK]",
		Input:  fmtN(vecs) + " vectors x " + fmtN(elems) + " elements",
		Kernel: k,
		Verify: func() error {
			for g := 0; g < vecs*threadsPerVec; g++ {
				v, lane := g/threadsPerVec, g%threadsPerVec
				e := v*elems + lane
				var acc float32
				for it := 0; it < iters; it++ {
					acc = f32fma(av[e], bv[e], acc)
					acc = f32fma(av[e+threadsPerVec], bv[e+threadsPerVec], acc)
					e += 2 * threadsPerVec
				}
				if err := expectF32(mem, out, g, acc, "out"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// buildBPROP models the back-propagation weight-adjust pass: every output
// unit reads the same 17-float (68-byte) hidden-layer vector plus its
// per-unit momentum coefficients — small, constant structures that §7.1
// identifies as the reason NDP degrades BPROP: they hit in the GPU caches,
// but offloaded blocks ship them off-chip in every RDF response, and that
// GPU->NSU direction of the links becomes the bottleneck.
func buildBPROP(mem *vm.System, scale int) *Workload {
	const hiddenN = 17 // 68 bytes, as in the paper
	n := 48 * 1024 * scale
	hidden := allocF32(mem, hiddenN)
	momentum := allocF32(mem, hiddenN) // second hot structure (eta/momentum terms)
	w := allocF32(mem, hiddenN*n)      // w[h][i], feature-major (coalesced)
	out := allocF32(mem, n)
	r := rng()
	hv := make([]float32, hiddenN)
	mv := make([]float32, hiddenN)
	for h := range hv {
		hv[h] = r.Float32()
		mv[h] = r.Float32()*0.5 + 0.5
	}
	wv := make([]float32, hiddenN*n)
	for i := range wv {
		wv[i] = r.Float32() - 0.5
	}
	fillF32(mem, hidden, hiddenN, func(i int) float32 { return hv[i] })
	fillF32(mem, momentum, hiddenN, func(i int) float32 { return mv[i] })
	fillF32(mem, w, hiddenN*n, func(i int) float32 { return wv[i] })

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0+2, 16) // &w[0][i]
	kb.MovI(20, 0)                              // acc
	// Fully unrolled over the hidden units: one large straight-line block
	// (Table 1 reports blocks of 29 and 23 instructions for BPROP).
	for h := 0; h < hiddenN; h++ {
		wr := isa.Reg(21)
		hr := isa.Reg(22)
		mr := isa.Reg(23)
		kb.Ld(wr, 17, int64(4*h*n))               // w[h][i]: streamed (first: spreads targets)
		kb.Ld(hr, kernel.RegParam0, int64(4*h))   // hidden[h]: broadcast, hot
		kb.Ld(mr, kernel.RegParam0+1, int64(4*h)) // momentum[h]: broadcast, hot
		kb.Op3(isa.FMUL, 24, hr, mr)
		kb.Op4(isa.FMA, 20, 24, wr, 20)
	}
	kb.Op3(isa.ADD, 25, kernel.RegParam0+3, 16)
	kb.St(25, 0, 20)
	kb.Exit()
	k := kb.MustBuild("bprop", n/256, 256, hidden, momentum, w, out)

	return &Workload{
		Abbr:   "BPROP",
		Desc:   "Back propagation weight adjust [Rodinia]",
		Input:  fmtN(n) + " units, 68 B hidden structure",
		Kernel: k,
		Verify: func() error {
			for i := 0; i < n; i++ {
				var acc float32
				for h := 0; h < hiddenN; h++ {
					acc = f32fma(f32mul(hv[h], mv[h]), wv[h*n+i], acc)
				}
				if err := expectF32(mem, out, i, acc, "out"); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// shiftFor returns log2(n) for power-of-two n.
func shiftFor(n int) int64 {
	s := int64(0)
	for 1<<s < n {
		s++
	}
	return s
}

// fmtN renders a count compactly.
func fmtN(n int) string {
	switch {
	case n%(1<<20) == 0:
		return itoa(n>>20) + "M"
	case n%(1<<10) == 0:
		return itoa(n>>10) + "K"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
