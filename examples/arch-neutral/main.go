// Architecture neutrality: the paper's central claim is that the NDP memory
// stack is standardizable — it contains no GPU-specific MMU, TLB, or cache,
// so the SAME stacks (and the same NSU code) serve different GPU designs.
// This example runs one workload against two deliberately different "vendor"
// GPUs sharing an identical memory-stack configuration and shows both
// partition the work correctly.
//
//	go run ./examples/arch-neutral
package main

import (
	"fmt"
	"log"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

func vendorA() config.Config {
	return config.Default() // Table 2: 64 SMs @ 700 MHz, 2 MB L2
}

func vendorB() config.Config {
	c := config.Default()
	// A different GPU: fewer, faster SMs, a bigger L1, a smaller L2 and a
	// different scheduler — the memory stacks and NSUs are untouched.
	c.GPU.NumSMs = 40
	c.GPU.SMClockMHz = 1100
	c.GPU.L2ClockMHz = 1100
	c.GPU.L1D.SizeBytes = 64 << 10
	c.GPU.L2.SizeBytes = 1 << 20
	c.GPU.NumALUs = 4
	c.GPU.SchedulerKind = "rr"
	return c
}

func main() {
	for _, v := range []struct {
		name string
		cfg  config.Config
	}{{"vendor A (Table 2 GPU)", vendorA()}, {"vendor B (different GPU)", vendorB()}} {
		if err := v.cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d SMs @ %d MHz, L2 %d KB — same stacks, same NSU code\n",
			v.name, v.cfg.GPU.NumSMs, v.cfg.GPU.SMClockMHz, v.cfg.GPU.L2.SizeBytes>>10)
		for _, mode := range []sim.Mode{sim.Baseline, sim.DynCache} {
			mem := vm.New(v.cfg)
			w, err := workloads.Build("VADD", mem, 1)
			if err != nil {
				log.Fatal(err)
			}
			m, err := sim.Launch(v.cfg, w.Kernel, mem, mode)
			if err != nil {
				log.Fatal(err)
			}
			res, err := m.Run(0)
			if err != nil {
				log.Fatal(err)
			}
			if err := w.Verify(); err != nil {
				log.Fatalf("%s/%s: %v", v.name, mode.Name, err)
			}
			fmt.Printf("  %-16s %8.2f us   offloaded %d/%d block instances\n",
				mode.Name, float64(res.TimePS)/1e6,
				res.Stats.OffloadBlocksOffloaded, res.Stats.OffloadBlocksSeen)
		}
		fmt.Println()
	}
	fmt.Println("both GPUs drive the same standardized NDP stacks correctly")
}
