// Quickstart: build a small kernel in the virtual ISA, run it on the
// simulated GPU+HMC system twice — once as a plain GPU (baseline) and once
// with dynamic near-data offloading — and compare runtime and GPU off-chip
// traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndpgpu/internal/config"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/vm"
)

func main() {
	cfg := config.Default() // Table 2: 64 SMs, 8 HMCs, 8x20 GB/s links

	run := func(mode sim.Mode) (timeUS float64, offchipKB int64) {
		// Fresh memory image per run.
		mem := vm.New(cfg)
		const n = 64 * 1024
		a := mem.Alloc(4 * n)
		b := mem.Alloc(4 * n)
		c := mem.Alloc(4 * n)
		for i := 0; i < n; i++ {
			mem.WriteF32(a+uint64(4*i), float32(i))
			mem.WriteF32(b+uint64(4*i), 2)
		}

		// c[i] = a[i] * b[i] + 1.0 — the Figure 2 shape with an extra ALU op.
		kb := kernel.NewBuilder()
		kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2) // byte offset = 4*gtid
		kb.Op3(isa.ADD, 17, kernel.RegParam0, 16) // &a[i]
		kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16)
		kb.Op3(isa.ADD, 19, kernel.RegParam0+2, 16)
		kb.Ld(20, 17, 0)
		kb.Ld(21, 18, 0)
		kb.MovI(22, int64(isa.FromF32(1.0)))
		kb.Op4(isa.FMA, 23, 20, 21, 22)
		kb.St(19, 0, 23)
		kb.Exit()
		k := kb.MustBuild("quickstart", n/256, 256, a, b, c)

		m, err := sim.Launch(cfg, k, mem, mode)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(0)
		if err != nil {
			log.Fatal(err)
		}

		// Spot-check the output.
		for i := 0; i < n; i += 9973 {
			want := float32(float32(i)*2) + 1
			if got := mem.ReadF32(c + uint64(4*i)); got != want {
				log.Fatalf("c[%d] = %v, want %v", i, got, want)
			}
		}
		return float64(res.TimePS) / 1e6, res.Stats.OffChipTraffic() / 1024
	}

	baseT, baseKB := run(sim.Baseline)
	ndpT, ndpKB := run(sim.DynNDP)

	fmt.Printf("baseline:   %7.2f us, %6d KB over GPU links\n", baseT, baseKB)
	fmt.Printf("NDP (dyn):  %7.2f us, %6d KB over GPU links\n", ndpT, ndpKB)
	fmt.Printf("speedup: %.2fx, off-chip traffic: %.1fx less\n",
		baseT/ndpT, float64(baseKB)/float64(ndpKB))
}
