package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"ndpgpu/internal/experiments"
	"ndpgpu/internal/serve"
	"ndpgpu/internal/sim"
)

// TestServedDigestsMatchGolden is the deterministic-cache property test: for
// every tier-1 workload x golden mode, the digest served over HTTP by the
// real simulator must be byte-identical to the committed regression file
// (testdata/golden_digests.json) and — spot-checked on VADD — to a direct
// experiments run in the same process. The service can never serve a result
// the CLI would not produce.
//
// It then replays one leg and pins the memoization economics on the real
// simulator: the repeat costs a map lookup, >=100x faster than the cold run.
func TestServedDigestsMatchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full golden matrix on the real simulator")
	}

	data, err := os.ReadFile("../../testdata/golden_digests.json")
	if err != nil {
		t.Fatalf("reading golden digests: %v", err)
	}
	var golden map[string]map[string]float64
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}

	sched := serve.New(serve.Options{Workers: 2, QueueCap: 64, Runner: experiments.ServeRunner()})
	ts := httptest.NewServer(serve.NewServer(sched))
	defer func() {
		ts.Close()
		sched.Shutdown()
	}()

	// The golden file is computed with the audit configuration at scale 1
	// (cmd/ndpreport golden); ship that config explicitly so the served run
	// is the same machine.
	cfg := sim.AuditConfig()
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct{ spec, name string }{
		{"baseline", sim.Baseline.Name},
		{"naive", sim.NaiveNDP.Name},
		{"dyn", sim.DynNDP.Name},
	}

	post := func(workload, spec string) (*serve.RunResponse, time.Duration) {
		t.Helper()
		body := fmt.Sprintf(`{"workload":%q,"mode":%q,"config":%s}`, workload, spec, cfgJSON)
		begin := time.Now()
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		wall := time.Since(begin)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/%s: status %d", workload, spec, resp.StatusCode)
		}
		var rr serve.RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return &rr, wall
	}

	var slowest struct {
		workload, spec string
		wall           time.Duration
	}
	legs := 0
	for _, wl := range experiments.Workloads() {
		for _, m := range modes {
			want, ok := golden[experiments.GoldenKey(wl, m.name)]
			if !ok {
				t.Fatalf("golden file has no entry for %s|%s", wl, m.name)
			}
			rr, wall := post(wl, m.spec)
			if rr.Cached {
				t.Fatalf("%s/%s: distinct leg served from cache (key collision?)", wl, m.spec)
			}
			diffDigest(t, wl+"/"+m.spec, rr.Digest, want)
			if wall > slowest.wall {
				slowest.workload, slowest.spec, slowest.wall = wl, m.spec, wall
			}
			legs++
		}
	}
	t.Logf("%d legs served and matched against golden digests", legs)

	// Direct-run comparison, same process, no HTTP: the served digest for
	// VADD must equal what the experiments layer computes locally.
	for _, m := range modes {
		mode, mcfg, err := sim.ParseMode(m.spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := experiments.RunOneWith(mcfg, "VADD", mode, 1, nil)
		if run.Err != nil {
			t.Fatalf("direct VADD/%s: %v", m.spec, run.Err)
		}
		d := run.Stats.Digest()
		d["TimePS"] = float64(run.TimePS)
		d["EnergyTotalPJ"] = run.Energy.Total()
		rr, _ := post("VADD", m.spec)
		if !rr.Cached {
			t.Fatalf("VADD/%s replay was not a cache hit", m.spec)
		}
		diffDigest(t, "direct VADD/"+m.spec, rr.Digest, d)
	}

	// Memoized replay of the slowest leg: >=100x faster than its cold run.
	rr, warm := post(slowest.workload, slowest.spec)
	if !rr.Cached {
		t.Fatalf("%s/%s replay missed the cache", slowest.workload, slowest.spec)
	}
	if speedup := float64(slowest.wall) / float64(warm); speedup < 100 {
		t.Errorf("cached replay of %s/%s only %.1fx faster (cold %v, warm %v), want >= 100x",
			slowest.workload, slowest.spec, speedup, slowest.wall, warm)
	}
}

// diffDigest asserts two digests are identical, reporting every divergent
// counter rather than the first.
func diffDigest(t *testing.T, leg string, got, want map[string]float64) {
	t.Helper()
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: digest missing %s", leg, k)
			continue
		}
		if g != w {
			t.Errorf("%s: %s = %v, want %v", leg, k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: digest has unexpected key %s", leg, k)
		}
	}
}
