GO ?= go

.PHONY: build test test-short test-race vet bench bench-engine clean

build:
	$(GO) build ./...

# Full suite, including the per-workload simulations and the idle-skip
# bit-identity differential (several minutes).
test:
	$(GO) test ./...

# Unit tests only: skips the full-simulation tests.
test-short:
	$(GO) test -short ./...

# Race detector over the short suite (covers the parallel sweep runner).
test-race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Macro benchmark: one full VADD simulation per iteration (see BENCH_pr1.json
# for the recorded before/after numbers).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSingleRunVADD -benchmem -benchtime 5x .

# Micro benchmark: engine edge dispatch, idle skipping on/off.
bench-engine:
	$(GO) test -run '^$$' -bench BenchmarkEngineIdleSkip -benchmem ./internal/timing

clean:
	$(GO) clean ./...
