package sim

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/interp"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

// randomKernel builds a random straight-line kernel over two input arrays
// and one output array. Every generated program is race-free (each thread
// writes only its own output slots) and in-bounds, so baseline and
// partitioned execution must produce bit-identical memory.
func randomKernel(rng *rand.Rand, mem *vm.System, n int) (*kernel.Kernel, uint64, int) {
	a := mem.Alloc(4 * n)
	b := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n * 4) // up to 4 output slots per thread
	for i := 0; i < n; i++ {
		mem.WriteF32(a+uint64(4*i), rng.Float32()*16-8)
		mem.WriteF32(b+uint64(4*i), rng.Float32()*16-8)
	}

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2) // element offset
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16)
	kb.OpImm(isa.SHLI, 19, kernel.RegGTID, 4) // 4 slots x 4 B
	kb.Op3(isa.ADD, 19, kernel.RegParam0+2, 19)

	// A predicate from the thread id (warp-divergent but GPU-computable).
	kb.OpImm(isa.ANDI, 20, kernel.RegGTID, 1)

	// Live value registers start with two loads.
	live := []isa.Reg{24, 25}
	kb.Ld(24, 17, 0)
	kb.Ld(25, 18, 0)
	next := isa.Reg(26)
	stores := 0
	aluOps := []isa.Opcode{isa.FADD, isa.FSUB, isa.FMUL, isa.ADD, isa.XOR, isa.MIN, isa.MAX}

	steps := 4 + rng.Intn(10)
	for s := 0; s < steps; s++ {
		switch rng.Intn(5) {
		case 0, 1: // ALU on two live values
			op := aluOps[rng.Intn(len(aluOps))]
			x := live[rng.Intn(len(live))]
			y := live[rng.Intn(len(live))]
			pc := kb.Op3(op, next, x, y)
			if rng.Intn(3) == 0 {
				kb.Predicate(pc, 20, rng.Intn(2) == 0)
			}
			live = append(live, next)
			next++
		case 2: // another load, sometimes predicated
			src := isa.Reg(17)
			if rng.Intn(2) == 0 {
				src = 18
			}
			pc := kb.Ld(next, src, 0)
			if rng.Intn(3) == 0 {
				kb.Predicate(pc, 20, false)
			}
			live = append(live, next)
			next++
		case 3: // fused multiply-add
			x := live[rng.Intn(len(live))]
			y := live[rng.Intn(len(live))]
			z := live[rng.Intn(len(live))]
			kb.Op4(isa.FMA, next, x, y, z)
			live = append(live, next)
			next++
		case 4: // store to a private slot
			if stores < 4 {
				v := live[rng.Intn(len(live))]
				pc := kb.St(19, int64(4*stores), v)
				if rng.Intn(3) == 0 {
					kb.Predicate(pc, 20, false)
				}
				stores++
			}
		}
		if next >= 60 {
			break
		}
	}
	// Guarantee at least one store so there is observable output.
	if stores == 0 {
		kb.St(19, 0, live[len(live)-1])
		stores = 1
	}
	kb.Exit()
	return kb.MustBuild("fuzz", n/64, 64, a, b, out), out, stores
}

// randomSmemKernel builds a random two-phase scratchpad kernel: phase one
// loads the thread's element, runs a short random ALU chain, and publishes
// the result to the CTA scratchpad; after a barrier, phase two combines the
// thread's value with a rotated neighbor's published value and stores to
// global memory. Every thread writes only its own output element and the
// scratchpad is read-only after the barrier, so the program is race-free and
// all execution modes must produce bit-identical memory. Scratchpad and
// barrier instructions are excluded from offload blocks (§3.1), so under NDP
// modes these phases stay on the GPU while the surrounding global accesses
// may still be offloaded.
func randomSmemKernel(rng *rand.Rand, mem *vm.System, n int) *kernel.Kernel {
	const block = 64
	a := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n)
	for i := 0; i < n; i++ {
		mem.WriteF32(a+uint64(4*i), rng.Float32()*16-8)
	}

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)   // &a[gtid]
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16) // &out[gtid]
	kb.OpImm(isa.SHLI, 19, kernel.RegTID, 2)    // own scratchpad slot

	// Phase one: load, random ALU chain, publish to scratchpad.
	kb.Ld(24, 17, 0)
	live := []isa.Reg{24}
	next := isa.Reg(25)
	aluOps := []isa.Opcode{isa.FADD, isa.FSUB, isa.FMUL, isa.ADD, isa.XOR, isa.MIN, isa.MAX}
	steps := 2 + rng.Intn(6)
	for s := 0; s < steps; s++ {
		op := aluOps[rng.Intn(len(aluOps))]
		x := live[rng.Intn(len(live))]
		y := live[rng.Intn(len(live))]
		kb.Op3(op, next, x, y)
		live = append(live, next)
		next++
	}
	mine := live[len(live)-1]
	kb.Sts(19, 0, mine)
	kb.Bar()

	// Phase two: read a rotated neighbor's value and combine.
	rot := int64(1 + rng.Intn(block-1))
	kb.OpImm(isa.ADDI, 20, kernel.RegTID, rot)
	kb.OpImm(isa.ANDI, 20, 20, block-1)
	kb.OpImm(isa.SHLI, 20, 20, 2)
	kb.Lds(next, 20, 0)
	neighbor := next
	next++
	kb.Op3(aluOps[rng.Intn(len(aluOps))], next, mine, neighbor)
	kb.St(18, 0, next)
	kb.Exit()

	k := kb.MustBuild("fuzz-smem", n/block, block, a, out)
	k.SmemBytes = 4 * block
	return k
}

// buildFuzzKernel dispatches to a generator by corpus kind. The same seed
// over a fresh vm.System always yields the same program and data layout.
func buildFuzzKernel(kind string, seed int64, mem *vm.System, n int) (*kernel.Kernel, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "line":
		k, _, _ := randomKernel(rng, mem, n)
		return k, nil
	case "smem":
		return randomSmemKernel(rng, mem, n), nil
	default:
		return nil, fmt.Errorf("unknown fuzz kernel kind %q", kind)
	}
}

// runFuzzTrial runs one generated kernel through the reference interpreter
// and then under baseline, full offload, and dynamic offload, requiring the
// complete final memory image of every timing run to be bit-identical to the
// oracle — the strongest functional check of partitioned execution.
func runFuzzTrial(t *testing.T, kind string, seed int64, n int) {
	t.Helper()
	cfg := config.Default()
	cfg.GPU.NumSMs = 2

	ref := vm.New(cfg)
	kref, err := buildFuzzKernel(kind, seed, ref, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Run(kref, ref); err != nil {
		t.Fatalf("%s seed %d: interp: %v", kind, seed, err)
	}
	want := ref.Snapshot()

	for _, mode := range []Mode{Baseline, NaiveNDP, DynNDP} {
		mem := vm.New(cfg)
		k, err := buildFuzzKernel(kind, seed, mem, n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Launch(cfg, k, mem, mode)
		if err != nil {
			t.Fatalf("%s seed %d (%s): %v", kind, seed, mode.Name, err)
		}
		if _, err := m.Run(0); err != nil {
			t.Fatalf("%s seed %d (%s): %v", kind, seed, mode.Name, err)
		}
		if got := mem.Snapshot(); !bytes.Equal(got, want) {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			t.Fatalf("%s seed %d (%s): memory differs from interp oracle at byte %#x",
				kind, seed, mode.Name, i)
		}
	}
}

// TestDifferentialFuzz runs randomly generated straight-line kernels under
// every execution mode and requires memory bit-identical to the interpreter.
func TestDifferentialFuzz(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		runFuzzTrial(t, "line", int64(7777+trial), 512)
	}
}

// TestDifferentialFuzzSmem does the same for two-phase scratchpad/barrier
// kernels, exercising the CTA barrier and the analyzer's exclusion of
// scratchpad phases from offload blocks.
func TestDifferentialFuzzSmem(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		runFuzzTrial(t, "smem", int64(4242+trial), 512)
	}
}

// TestFuzzCorpus replays the committed corpus in testdata/fuzz_corpus.txt:
// one "<kind> <seed>" entry per line, '#' comments allowed. The corpus pins
// seeds that exercised interesting generator paths so they keep running
// deterministically in every -short CI pass.
func TestFuzzCorpus(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "fuzz_corpus.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("fuzz_corpus.txt:%d: want \"<kind> <seed>\", got %q", lineNo, line)
		}
		seed, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("fuzz_corpus.txt:%d: bad seed: %v", lineNo, err)
		}
		kind := fields[0]
		t.Run(fmt.Sprintf("%s/%d", kind, seed), func(t *testing.T) {
			runFuzzTrial(t, kind, seed, 256)
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}
