package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"ndpgpu/internal/config"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/workloads"
)

// MaxScale bounds the problem-size scale a request may ask for; a runaway
// scale is an admission-time client error, not a worker-pool stall.
const MaxScale = 1 << 20

// RunRequest is the wire form of one simulation request (POST /run). All
// fields but Workload are optional; unknown fields are rejected.
type RunRequest struct {
	// Workload is the Table 1 abbreviation (VADD, BFS, ...).
	Workload string `json:"workload"`
	// Mode is the CLI mode spelling (baseline|morecore|naive|static=<p>|
	// dyn|dyncache); empty means baseline.
	Mode string `json:"mode,omitempty"`
	// Scale is the problem-size scale factor; values below 1 mean 1.
	Scale int `json:"scale,omitempty"`
	// Seed, when nonzero, overrides both the page-placement and the
	// offload-decision PRNG seeds.
	Seed int64 `json:"seed,omitempty"`
	// Overrides are named configuration knobs (config.KnownOverrides)
	// applied on top of the base configuration in sorted key order.
	Overrides map[string]float64 `json:"overrides,omitempty"`
	// Faults is a fault schedule in the -faults DSL (see internal/fault).
	Faults string `json:"faults,omitempty"`
	// Config, when present, replaces config.Default() as the base the mode
	// and overrides are applied to. Field names follow internal/config.
	Config *config.Config `json:"config,omitempty"`
	// Client identifies the submitter for round-robin fairness; falls back
	// to the X-Client header, then the remote address.
	Client string `json:"client,omitempty"`
}

// Request is the canonical, fully-resolved form of a RunRequest: the mode
// spelling normalized, the base configuration with mode adjustment, sorted
// overrides, seed, and fault schedule folded in, and the content-digest key
// computed over the result. Two RunRequests that mean the same run — however
// they spelled it — resolve to the same Key.
type Request struct {
	Workload string
	ModeSpec string // canonical spelling (e.g. "static=0.5", never "static=0.50")
	Mode     sim.Mode
	Scale    int
	Cfg      config.Config
	Client   string
	Key      string // hex SHA-256 over the canonical serialization
}

// ParseRunRequest decodes and canonicalizes one request body. Unknown or
// trailing fields, unknown workloads/modes/overrides, malformed fault
// schedules, and inconsistent configurations are all errors; no input panics.
func ParseRunRequest(data []byte) (*Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rr RunRequest
	if err := dec.Decode(&rr); err != nil {
		return nil, fmt.Errorf("bad request JSON: %w", err)
	}
	// More() alone misses trailing bytes that are not a valid token start
	// (a stray '}', say); require a clean EOF like strict json.Unmarshal.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return nil, errors.New("trailing data after request object")
	}
	return Canonicalize(&rr)
}

// Canonicalize resolves a RunRequest into its canonical Request.
func Canonicalize(rr *RunRequest) (*Request, error) {
	if rr.Workload == "" {
		return nil, errors.New("missing workload")
	}
	if !knownWorkload(rr.Workload) {
		return nil, fmt.Errorf("unknown workload %q (have %v)", rr.Workload, workloads.Abbrs())
	}
	if rr.Scale < 0 || rr.Scale > MaxScale {
		return nil, fmt.Errorf("scale %d out of range [0,%d]", rr.Scale, MaxScale)
	}

	base := config.Default()
	if rr.Config != nil {
		base = *rr.Config
	}
	spec := rr.Mode
	if spec == "" {
		spec = "baseline"
	}
	mode, cfg, err := sim.ParseMode(spec, base)
	if err != nil {
		return nil, err
	}
	if err := config.ApplyOverrides(&cfg, rr.Overrides); err != nil {
		return nil, err
	}
	if rr.Seed != 0 {
		cfg.Mem.PlacementSeed = rr.Seed
		cfg.NDP.DecisionSeed = rr.Seed
	}
	if rr.Faults != "" {
		fc, err := fault.Parse(rr.Faults, cfg.NumHMCs, cfg.HMC.NumVaults)
		if err != nil {
			return nil, fmt.Errorf("bad fault schedule: %w", err)
		}
		cfg.Fault = fc
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}

	req := &Request{
		Workload: rr.Workload,
		ModeSpec: sim.SpecFor(mode),
		Mode:     mode,
		Scale:    max(rr.Scale, 1),
		Cfg:      cfg,
		Client:   rr.Client,
	}
	key, err := requestKey(req)
	if err != nil {
		return nil, err
	}
	req.Key = key
	return req, nil
}

// requestKey digests the canonical request. The resolved Config already
// folds in the seed, overrides, and fault schedule, so hashing it — plus the
// workload, the normalized mode spelling (two specs with identical flags
// still differ in the rewritten binary they select), and the scale — covers
// every input that can change a result. The fairness Client is deliberately
// excluded: identical runs from different clients share one execution and
// one cache line.
func requestKey(r *Request) (string, error) {
	cj, err := config.Canonical(r.Cfg)
	if err != nil {
		return "", fmt.Errorf("canonicalize config: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "ndpserve-req-v1|%s|%s|%d|", r.Workload, r.ModeSpec, r.Scale)
	h.Write(cj)
	return hex.EncodeToString(h.Sum(nil)), nil
}

func knownWorkload(abbr string) bool {
	for _, a := range workloads.Abbrs() {
		if a == abbr {
			return true
		}
	}
	return false
}
