// Package workloads provides the ten Table 1 benchmark kernels, written in
// the virtual ISA with the same access-pattern archetypes as the paper's
// suite (Rodinia, Parboil, CUDA SDK, Polybench):
//
//	BPROP  back propagation: a hot 68-byte constant structure read by every
//	       offload block (the §7.1 NDP pathology)
//	BFS    breadth-first search on a fixed-degree graph: divergent indirect
//	       loads (§4.4)
//	BICG   BiCGStab kernel: row and column matrix-vector products
//	FWT    fast Walsh transform butterfly stage
//	KMN    k-means assignment: streamed points, cached centroids
//	MINIFE finite-element SpMV in ELL format with indirect gathers
//	SP     scalar product with strided partial dot products
//	STN    5-point stencil with strong L2 locality (the cache-aware
//	       suppression case of §7.3)
//	STCL   streamcluster distance pass with indirect membership loads
//	VADD   vector addition (the Figure 2 running example)
//
// Problem sizes are scaled down from Table 1 so the full suite simulates in
// seconds; each builder takes a scale factor, and EXPERIMENTS.md records
// the sizes used.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

// Workload is one runnable benchmark.
type Workload struct {
	Abbr   string
	Desc   string
	Input  string // human-readable problem-size description
	Kernel *kernel.Kernel
	// Verify checks the output arrays against a host-computed reference.
	Verify func() error
}

// Builder constructs a workload into the given memory at the given scale.
type Builder func(mem *vm.System, scale int) *Workload

var registry = map[string]Builder{}

func register(abbr string, b Builder) { registry[abbr] = b }

// Abbrs returns the workload names in the paper's Table 1 order.
func Abbrs() []string {
	out := make([]string, 0, len(registry))
	for a := range registry {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named workload.
func Build(abbr string, mem *vm.System, scale int) (*Workload, error) {
	b, ok := registry[abbr]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", abbr, Abbrs())
	}
	if scale < 1 {
		scale = 1
	}
	return b(mem, scale), nil
}

// Reference float32 helpers mirroring isa.Eval exactly (explicit rounding,
// no fused multiply-add).

func f32add(a, b float32) float32    { return a + b }
func f32sub(a, b float32) float32    { return a - b }
func f32mul(a, b float32) float32    { return a * b }
func f32fma(a, b, c float32) float32 { return float32(a*b) + c }

// arrays

// allocF32 reserves n float32 words and returns the base address.
func allocF32(mem *vm.System, n int) uint64 { return mem.Alloc(4 * n) }

func fillF32(mem *vm.System, base uint64, n int, f func(i int) float32) {
	for i := 0; i < n; i++ {
		mem.WriteF32(base+uint64(4*i), f(i))
	}
}

func fillU32(mem *vm.System, base uint64, n int, f func(i int) uint32) {
	for i := 0; i < n; i++ {
		mem.Write32(base+uint64(4*i), f(i))
	}
}

// expectF32 compares one output element.
func expectF32(mem *vm.System, base uint64, i int, want float32, what string) error {
	got := mem.ReadF32(base + uint64(4*i))
	if got != want {
		return fmt.Errorf("%s[%d] = %v, want %v", what, i, got, want)
	}
	return nil
}

func expectU32(mem *vm.System, base uint64, i int, want uint32, what string) error {
	got := mem.Read32(base + uint64(4*i))
	if got != want {
		return fmt.Errorf("%s[%d] = %d, want %d", what, i, got, want)
	}
	return nil
}

// rng returns a deterministic generator for workload data.
func rng() *rand.Rand { return rand.New(rand.NewSource(12345)) }
