package experiments

import (
	"fmt"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
)

// goldenModes are the modes the golden-digest regression gate pins for every
// workload: the host baseline plus both NDP offload mechanisms.
var goldenModes = []sim.Mode{sim.Baseline, sim.NaiveNDP, sim.DynNDP}

// GoldenDigests runs every Table 1 workload under the golden modes and
// returns one flattened counter digest per run, keyed "workload|mode". Each
// digest is the reflection-walked statistics bundle (so a newly added counter
// is pinned automatically) plus the simulated end time and total energy. The
// simulator is deterministic, so any digest change is a behavior change.
func GoldenDigests(cfg config.Config, scale int) (map[string]map[string]float64, error) {
	var jobs []job
	for _, wl := range Workloads() {
		for _, m := range goldenModes {
			jobs = append(jobs, job{workload: wl, mode: m, cfg: cfg})
		}
	}
	runs := runAll(jobs, scale)
	if err := checkErrs(runs); err != nil {
		return nil, err
	}
	out := make(map[string]map[string]float64, len(runs))
	for key, r := range runs {
		d := r.Stats.Digest()
		d["TimePS"] = float64(r.TimePS)
		d["EnergyTotalPJ"] = r.Energy.Total()
		out[key] = d
	}
	return out, nil
}

// GoldenKey names one golden-digest entry.
func GoldenKey(workload, mode string) string {
	return fmt.Sprintf("%s|%s", workload, mode)
}
