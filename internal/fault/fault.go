// Package fault implements a deterministic, schedule-driven fault injector
// for the simulated NDP system. Faults come from an explicit event list (or
// a seeded random schedule) carried in config.FaultConfig and fire at exact
// simulated-picosecond timestamps, so a given schedule always produces the
// same fault sequence regardless of host scheduling.
//
// Supported faults:
//
//   - linkdown: an inter-HMC mesh link dies (both directions), optionally
//     for a bounded window. The fabric reroutes around it.
//   - nsustall: an NSU stops executing for a window; in-flight state is
//     preserved and execution resumes when the window closes.
//   - nsufail: an NSU dies permanently; the GPU falls back to host-side
//     execution for its blocks and quarantines the stack.
//   - vaultfreeze: a DRAM vault stops servicing requests for a window.
//   - drop / corrupt: probabilistic per-packet loss on mesh links, drawn
//     from a dedicated splitmix64 PRNG seeded from the schedule.
//
// The zero-cost contract: when config.FaultConfig.Enabled() is false no
// Injector is constructed and every consumer keeps a nil pointer, so the
// fault-free simulation takes exactly its pre-fault code paths.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/timing"
)

// prng is a splitmix64 generator: tiny, fast, and deterministic across
// platforms (no dependence on math/rand internals).
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0,1).
func (p *prng) float64() float64 {
	return float64(p.next()>>11) / float64(1<<53)
}

// intn returns a uniform draw in [0,n).
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// edge is one state transition: a fault turning on or off.
type edge struct {
	at    timing.PS
	ev    config.FaultEvent
	start bool // true = fault activates, false = window closes
}

// Injector holds the expanded fault schedule and the current fault state.
// Schedule state (Apply and the queries that call it) is single-threaded:
// under parallel execution the engine applies the schedule in a pre-step
// hook, making the in-phase queries read-only. The commit/abandon boards
// are mutex-guarded so GPU and NSU shards may post concurrently.
type Injector struct {
	cfg   config.FaultConfig
	edges []edge
	idx   int // next unapplied edge

	numHMCs   int
	numVaults int
	ring      bool

	nsuStalled []bool
	nsuFailed  []bool
	frozen     []bool   // [hmc*numVaults+vault]
	linkDead   [][]bool // [hmc][dim]

	topoVersion int // bumped on every link state change
	rng         prng

	// committed is the offload commit board: the resilient protocol's
	// commit records, shared by the GPU and all NSUs. An NSU posts here
	// atomically with applying a block's buffered writes and sending the
	// acknowledgment; a timed-out GPU warp consults it to distinguish "the
	// offload is lost, re-execute" from "the block committed and its ack is
	// already in flight on the reliable host link, keep waiting" — without
	// this record a fallback racing a committed block would re-execute
	// non-idempotent writes.
	committed map[core.OffloadID]int32

	// abandoned is the mirror-image board: the GPU posts here atomically
	// with giving up on an instance (retry exhaustion or known-dead NSU)
	// and re-executing the block host-side. The NSU consults it before
	// committing — a zombie warp that drains its last dependency just
	// after the GPU fell back must abort, not apply its now-stale stores —
	// and before reclaiming a slot, so a warp whose GPU is merely slow to
	// feed it is never killed while a retry could still arrive. One entry
	// per warp slot at most (instances are monotonic per slot), so the map
	// stays bounded without pruning.
	abandoned map[core.OffloadID]int32

	// boardMu guards the two boards above under parallel execution: the GPU
	// shards and the NSU shards touch them concurrently during a compute
	// phase. Operations on distinct offload IDs commute (the protocol
	// guarantees a given ID is only ever touched by its owning SM warp and
	// its current target NSU, never two writers racing on one ID), so a
	// plain mutex preserves determinism.
	boardMu sync.Mutex

	// Counters the injector itself owns (merged into stats at finalize).
	Drops    int64
	Corrupts int64
}

// New builds an Injector from a validated fault configuration. Call only
// when fc.Enabled(); fault-free runs must keep a nil *Injector. dims is the
// per-stack mesh link count; ring selects the ring topology's link naming
// (physical link j connects stacks j and j+1 and is stored at dim 0).
func New(fc config.FaultConfig, numHMCs, numVaults, dims int, ring bool) *Injector {
	inj := &Injector{
		cfg:        fc,
		numHMCs:    numHMCs,
		numVaults:  numVaults,
		ring:       ring,
		nsuStalled: make([]bool, numHMCs),
		nsuFailed:  make([]bool, numHMCs),
		frozen:     make([]bool, numHMCs*numVaults),
		linkDead:   make([][]bool, numHMCs),
		rng:        prng{state: uint64(fc.Seed)*2654435761 + 0x9e3779b97f4a7c15},
		committed:  make(map[core.OffloadID]int32),
		abandoned:  make(map[core.OffloadID]int32),
	}
	if dims < 1 {
		dims = 1
	}
	for i := range inj.linkDead {
		inj.linkDead[i] = make([]bool, dims)
	}
	for _, ev := range fc.Events {
		inj.edges = append(inj.edges, edge{at: ev.AtPS, ev: ev, start: true})
		if ev.DurPS > 0 && ev.AtPS <= math.MaxInt64-ev.DurPS {
			// A window whose end overflows int64 never closes: emit only the
			// start edge, same as an explicit permanent event.
			inj.edges = append(inj.edges, edge{at: ev.AtPS + ev.DurPS, ev: ev, start: false})
		}
	}
	sort.SliceStable(inj.edges, func(i, j int) bool { return inj.edges[i].at < inj.edges[j].at })
	return inj
}

// Apply processes every edge due at or before now. Idempotent per
// timestamp; queries call it themselves, so caller ordering within one
// engine step cannot change what a query observes.
func (inj *Injector) Apply(now timing.PS) {
	for inj.idx < len(inj.edges) && inj.edges[inj.idx].at <= now {
		e := inj.edges[inj.idx]
		inj.idx++
		switch e.ev.Kind {
		case "linkdown":
			// Canonicalize to the link's storage slot: a link is
			// bidirectional, so both endpoints' views must flip together.
			h, d := e.ev.HMC, e.ev.Dim
			if inj.ring {
				if d%2 != 0 {
					h = (h - 1 + inj.numHMCs) % inj.numHMCs
				}
				d = 0
			} else {
				d = d % len(inj.linkDead[0])
				h = h &^ (1 << uint(d))
			}
			inj.linkDead[h][d] = e.start
			inj.topoVersion++
		case "nsustall":
			inj.nsuStalled[e.ev.HMC] = e.start
		case "nsufail":
			inj.nsuFailed[e.ev.HMC] = e.start
		case "vaultfreeze":
			inj.frozen[e.ev.HMC*inj.numVaults+e.ev.Vault] = e.start
		}
	}
}

// NextEventAt returns the time of the next unapplied schedule edge, or
// timing.Never when the schedule is exhausted. Used as an idle hint so the
// engine cannot skip past a fault boundary.
func (inj *Injector) NextEventAt() timing.PS {
	if inj.idx >= len(inj.edges) {
		return timing.Never
	}
	return inj.edges[inj.idx].at
}

// NSUFailed reports whether stack i's NSU is permanently dead at now.
func (inj *Injector) NSUFailed(now timing.PS, i int) bool {
	inj.Apply(now)
	return inj.nsuFailed[i]
}

// NSUFailedApplied reports stack i's failure state as of the last Apply,
// for callers that have no current timestamp (e.g. the drain check, which
// runs after the schedule's edges have all fired through the Ticker).
func (inj *Injector) NSUFailedApplied(i int) bool { return inj.nsuFailed[i] }

// NSUStalled reports whether stack i's NSU is inside a stall window at now.
func (inj *Injector) NSUStalled(now timing.PS, i int) bool {
	inj.Apply(now)
	return inj.nsuStalled[i]
}

// VaultFrozen reports whether vault v of stack i is frozen at now.
func (inj *Injector) VaultFrozen(now timing.PS, i, v int) bool {
	inj.Apply(now)
	return inj.frozen[i*inj.numVaults+v]
}

// LinkDead reports whether the mesh link out of stack i along dimension d
// is dead at now. Links are bidirectional: the fabric must query the lower
// endpoint of the pair (see noc) so both directions die together.
func (inj *Injector) LinkDead(now timing.PS, i, d int) bool {
	inj.Apply(now)
	return inj.linkDead[i][d]
}

// TopoVersion returns a counter that changes whenever link state changes,
// letting the fabric invalidate cached escape routes lazily.
func (inj *Injector) TopoVersion(now timing.PS) int {
	inj.Apply(now)
	return inj.topoVersion
}

// CommitInstance posts the commit record for offload instance inst of id:
// the NSU applied the block's buffered writes and sent the acknowledgment,
// both in this same simulation step.
func (inj *Injector) CommitInstance(id core.OffloadID, inst int32) {
	inj.boardMu.Lock()
	inj.committed[id] = inst
	inj.boardMu.Unlock()
}

// InstanceCommitted reports whether instance inst of id has committed.
func (inj *Injector) InstanceCommitted(id core.OffloadID, inst int32) bool {
	inj.boardMu.Lock()
	v, ok := inj.committed[id]
	inj.boardMu.Unlock()
	return ok && v == inst
}

// ForgetInstance drops id's commit record once the GPU has consumed the
// acknowledgment, keeping the board bounded by the in-flight offload count.
func (inj *Injector) ForgetInstance(id core.OffloadID) {
	inj.boardMu.Lock()
	delete(inj.committed, id)
	inj.boardMu.Unlock()
}

// AbandonInstance posts the abandon record for offload instance inst of id:
// the GPU gave up on it and is re-executing the block host-side. Posted
// atomically with the stack quarantine, so the instance's unreturned
// credits are exempt from conservation by the time any checker runs.
func (inj *Injector) AbandonInstance(id core.OffloadID, inst int32) {
	inj.boardMu.Lock()
	inj.abandoned[id] = inst
	inj.boardMu.Unlock()
}

// InstanceAbandoned reports whether instance inst of id was abandoned.
func (inj *Injector) InstanceAbandoned(id core.OffloadID, inst int32) bool {
	inj.boardMu.Lock()
	v, ok := inj.abandoned[id]
	inj.boardMu.Unlock()
	return ok && v == inst
}

// DrawDrop decides the fate of one mesh packet: lost in flight, or
// discarded at the receiver's CRC check. At most one of the results is
// true. Each call consumes PRNG state, so call exactly once per packet.
func (inj *Injector) DrawDrop() (drop, corrupt bool) {
	if inj.cfg.DropProb > 0 && inj.rng.float64() < inj.cfg.DropProb {
		inj.Drops++
		return true, false
	}
	if inj.cfg.CorruptProb > 0 && inj.rng.float64() < inj.cfg.CorruptProb {
		inj.Corrupts++
		return false, true
	}
	return false, false
}

// Ticker adapts the injector to a clock domain: Tick applies due edges and
// NextWorkAt pins engine edges to schedule boundaries.
type Ticker struct{ Inj *Injector }

// Tick implements timing.Ticker.
func (t Ticker) Tick(now timing.PS) { t.Inj.Apply(now) }

// NextWorkAt implements timing.IdleHint.
func (t Ticker) NextWorkAt(now timing.PS) timing.PS { return t.Inj.NextEventAt() }

// Backoff returns the timeout for a given retry attempt in SM cycles:
// base doubling per attempt (attempt 0 = first try).
func Backoff(baseCycles int64, attempt int) int64 {
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 16 {
		attempt = 16 // clamp: beyond this the shift overflows any real run
	}
	if baseCycles > math.MaxInt64>>uint(attempt) {
		return math.MaxInt64 // saturate: a timeout beyond the run is "never"
	}
	return baseCycles << uint(attempt)
}

// TotalWindow returns the sum of all attempt timeouts for maxRetries
// retries (attempts 0..maxRetries), i.e. the worst-case time the GPU waits
// before declaring host fallback. The NSU abort deadline must exceed this.
func TotalWindow(baseCycles int64, maxRetries int) int64 {
	var t int64
	for a := 0; a <= maxRetries; a++ {
		b := Backoff(baseCycles, a)
		if t > math.MaxInt64-b {
			return math.MaxInt64 // saturate rather than wrap negative
		}
		t += b
	}
	return t
}

// Parse parses the -faults schedule DSL into a FaultConfig.
//
// Grammar: events separated by ';', each event "kind:key=val:key=val...".
// Times are picoseconds. Kinds and keys:
//
//	linkdown:t=<ps>:hmc=<i>:dim=<d>[:dur=<ps>]
//	nsustall:t=<ps>:hmc=<i>:dur=<ps>
//	nsufail:t=<ps>:hmc=<i>
//	vaultfreeze:t=<ps>:hmc=<i>:vault=<v>:dur=<ps>
//	drop:p=<prob>
//	corrupt:p=<prob>
//	seed=<n>
//	timeout=<smcycles>      (first-attempt offload timeout)
//	retries=<n>             (max retries before host fallback)
//	rand:seed=<n>[:n=<k>]   (k random events, default 4, drawn deterministically)
//
// Example: "linkdown:t=2000000:hmc=0:dim=1;drop:p=0.01;seed=7"
func Parse(s string, numHMCs, numVaults int) (config.FaultConfig, error) {
	var fc config.FaultConfig
	for _, item := range strings.Split(s, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		fields := strings.Split(item, ":")
		kind := fields[0]
		kv := map[string]string{}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return fc, fmt.Errorf("fault %q: malformed field %q", item, f)
			}
			kv[k] = v
		}
		geti := func(key string, def int64) (int64, error) {
			v, ok := kv[key]
			if !ok {
				return def, nil
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("fault %q: bad %s=%q", item, key, v)
			}
			return n, nil
		}
		getf := func(key string) (float64, error) {
			v, ok := kv[key]
			if !ok {
				return 0, fmt.Errorf("fault %q: missing %s", item, key)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return 0, fmt.Errorf("fault %q: bad %s=%q", item, key, v)
			}
			return f, nil
		}
		switch {
		case kind == "linkdown" || kind == "nsustall" || kind == "nsufail" || kind == "vaultfreeze":
			at, err := geti("t", -1)
			if err != nil {
				return fc, err
			}
			if at < 0 {
				return fc, fmt.Errorf("fault %q: missing t=<ps>", item)
			}
			hmc, err := geti("hmc", -1)
			if err != nil {
				return fc, err
			}
			dur, err := geti("dur", 0)
			if err != nil {
				return fc, err
			}
			dim, err := geti("dim", 0)
			if err != nil {
				return fc, err
			}
			vault, err := geti("vault", 0)
			if err != nil {
				return fc, err
			}
			fc.Events = append(fc.Events, config.FaultEvent{
				Kind: kind, AtPS: at, DurPS: dur,
				HMC: int(hmc), Dim: int(dim), Vault: int(vault),
			})
		case kind == "drop":
			p, err := getf("p")
			if err != nil {
				return fc, err
			}
			fc.DropProb = p
		case kind == "corrupt":
			p, err := getf("p")
			if err != nil {
				return fc, err
			}
			fc.CorruptProb = p
		case strings.HasPrefix(kind, "seed="):
			n, err := strconv.ParseInt(strings.TrimPrefix(kind, "seed="), 10, 64)
			if err != nil {
				return fc, fmt.Errorf("bad %q", item)
			}
			fc.Seed = n
		case strings.HasPrefix(kind, "timeout="):
			n, err := strconv.ParseInt(strings.TrimPrefix(kind, "timeout="), 10, 64)
			if err != nil || n <= 0 {
				return fc, fmt.Errorf("bad %q", item)
			}
			fc.TimeoutCycles = n
		case strings.HasPrefix(kind, "retries="):
			n, err := strconv.Atoi(strings.TrimPrefix(kind, "retries="))
			if err != nil || n <= 0 {
				return fc, fmt.Errorf("bad %q", item)
			}
			fc.MaxRetries = n
		case kind == "rand":
			seed, err := geti("seed", 1)
			if err != nil {
				return fc, err
			}
			n, err := geti("n", 4)
			if err != nil {
				return fc, err
			}
			fc.Seed = seed
			fc.Events = append(fc.Events, RandomEvents(seed, int(n), numHMCs, numVaults)...)
		default:
			return fc, fmt.Errorf("unknown fault item %q", item)
		}
	}
	return fc, fc.Validate(numHMCs, numVaults)
}

// RandomEvents draws n random fault events deterministically from seed,
// spread over a window that covers the start of a typical scaled run
// (faults landing after the run drains are harmless no-ops). Used by the
// chaos suite and the rand: schedule item.
func RandomEvents(seed int64, n, numHMCs, numVaults int) []config.FaultEvent {
	p := prng{state: uint64(seed)*0x9e3779b97f4a7c15 + 1}
	dims := 0
	for 1<<uint(dims+1) <= numHMCs {
		dims++
	}
	if dims < 1 {
		dims = 1
	}
	evs := make([]config.FaultEvent, 0, n)
	const windowPS = 40_000_000 // 40 us: well inside every scaled workload
	for i := 0; i < n; i++ {
		at := int64(1_000_000 + p.intn(windowPS))
		dur := int64(500_000 + p.intn(8_000_000))
		switch p.intn(4) {
		case 0:
			evs = append(evs, config.FaultEvent{Kind: "linkdown", AtPS: at, DurPS: dur,
				HMC: p.intn(numHMCs), Dim: p.intn(dims)})
		case 1:
			evs = append(evs, config.FaultEvent{Kind: "nsustall", AtPS: at, DurPS: dur,
				HMC: p.intn(numHMCs)})
		case 2:
			evs = append(evs, config.FaultEvent{Kind: "nsufail", AtPS: at,
				HMC: p.intn(numHMCs)})
		case 3:
			evs = append(evs, config.FaultEvent{Kind: "vaultfreeze", AtPS: at, DurPS: dur,
				HMC: p.intn(numHMCs), Vault: p.intn(numVaults)})
		}
	}
	return evs
}
