package experiments

import (
	"fmt"
	"io"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/config"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// Table1 prints the workload suite with the static offload-block analysis:
// per-block NSU instruction counts (the paper's last column) and the
// register-transfer averages the paper reports in §5.
func Table1(w io.Writer, cfg config.Config, scale int) error {
	fmt.Fprintln(w, "\nTable 1: workloads and offload blocks")
	fmt.Fprintf(w, "%-8s %-34s %-26s %s\n", "Abbr", "Input", "Description", "#instrs per NSU block")
	var totalIn, totalOut, totalBlocks int
	for _, abbr := range Workloads() {
		mem := vm.New(cfg)
		wl, err := workloads.Build(abbr, mem, scale)
		if err != nil {
			return err
		}
		prog, err := analyzer.Analyze(wl.Kernel, analyzer.DefaultOptions())
		if err != nil {
			return err
		}
		counts := ""
		for i, b := range prog.Blocks {
			if i > 0 {
				counts += ","
			}
			counts += fmt.Sprintf("%d", b.NSUInstrs())
			totalIn += len(b.RegsIn)
			totalOut += len(b.RegsOut)
			totalBlocks++
		}
		fmt.Fprintf(w, "%-8s %-34s %-26s %s\n", abbr, wl.Input, wl.Desc, counts)
	}
	fmt.Fprintf(w, "avg registers per block: sent=%.2f received=%.2f (paper: 0.41 / 0.47 per thread)\n",
		float64(totalIn)/float64(totalBlocks), float64(totalOut)/float64(totalBlocks))
	return nil
}

// Table2 prints the system configuration.
func Table2(w io.Writer, cfg config.Config) {
	fmt.Fprintln(w, "\nTable 2: system configuration")
	g := cfg.GPU
	fmt.Fprintf(w, "GPU: %d SMs, %d threads/SM, %d CTAs/SM, %d regs/SM, warp %d, %d KB scratchpad\n",
		g.NumSMs, g.MaxThreadsPerSM, g.MaxCTAsPerSM, g.MaxRegsPerSM, g.WarpWidth, g.ScratchpadBytes>>10)
	fmt.Fprintf(w, "     L1I %d KB/%d-way, L1D %d KB/%d-way (%d MSHRs), L2 %d MB/%d-way (%d MSHRs/slice)\n",
		g.L1I.SizeBytes>>10, g.L1I.Ways, g.L1D.SizeBytes>>10, g.L1D.Ways, g.L1D.MSHRs,
		g.L2.SizeBytes>>20, g.L2.Ways, g.L2.MSHRs)
	fmt.Fprintf(w, "     clocks: SM %d / Xbar %d / L2 %d MHz; off-chip links %d x %.0f GB/s per direction\n",
		g.SMClockMHz, g.XbarClockMHz, g.L2ClockMHz, cfg.NumHMCs, g.LinkGBps)
	h := cfg.HMC
	fmt.Fprintf(w, "HMC: %d stacks, %d vaults x %d banks, queue %d, tCK=%.2fns tRP=%d tCCD=%d tRCD=%d tCL=%d tWR=%d tRAS=%d\n",
		cfg.NumHMCs, h.NumVaults, h.BanksPerVault, h.VaultQueue,
		float64(h.TCKps)/1000, h.TRP, h.TCCD, h.TRCD, h.TCL, h.TWR, h.TRAS)
	fmt.Fprintf(w, "     memory network: %d links/HMC x %.0f GB/s, 3D hypercube\n",
		h.NetLinksPerHMC, h.NetLinkGBps)
	n := cfg.NSU
	fmt.Fprintf(w, "NSU: %d MHz, %d warps x width %d, %d KB I-cache, %d KB const cache\n",
		n.ClockMHz, n.NumWarps, n.WarpWidth, n.ICacheBytes>>10, n.ConstCacheBytes>>10)
	fmt.Fprintf(w, "     buffers: read-data %d, write-addr %d, cmd %d entries\n",
		n.ReadDataEntries, n.WriteAddrEntries, n.CmdEntries)
	d := cfg.NDP
	fmt.Fprintf(w, "SM packet buffers: pending %d, ready %d entries\n", d.PendingEntries, d.ReadyEntries)
}

// Overhead prints the §7.5 hardware-overhead arithmetic: per-SM packet
// buffer storage and its share of on-chip storage (paper: 2.84 KB, 1.8%).
func Overhead(w io.Writer, cfg config.Config) {
	buf := cfg.PacketBufferBytesPerSM()
	total := cfg.OnChipStorageBytesPerSM()
	fmt.Fprintln(w, "\nHardware overhead (§7.5)")
	fmt.Fprintf(w, "per-SM NDP packet buffers: %d B (%.2f KB)\n", buf, float64(buf)/1024)
	fmt.Fprintf(w, "per-SM on-chip storage:    %d B\n", total)
	fmt.Fprintf(w, "overhead fraction:         %.2f%% (paper: 1.8%%)\n", 100*float64(buf)/float64(total))
}
