package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Schema identifies the metrics-run JSON layout.
const Schema = "ndpgpu-metrics/1"

// Series is one exported probe: its identity and one sample per interval.
type Series struct {
	Name    string    `json:"name"`
	Track   string    `json:"track"`
	Unit    string    `json:"unit,omitempty"`
	Kind    string    `json:"kind"`
	Samples []float64 `json:"samples"`
}

// Run is the exportable snapshot of a collector: every series over the
// common timestamp axis, plus the offload round-trip spans.
type Run struct {
	Schema         string            `json:"schema"`
	Meta           map[string]string `json:"meta,omitempty"`
	IntervalCycles int64             `json:"interval_cycles"`
	PeriodPS       int64             `json:"period_ps"`
	TimesPS        []int64           `json:"times_ps"`
	Series         []Series          `json:"series"`
	Spans          []Span            `json:"spans,omitempty"`
	SpansDropped   int64             `json:"spans_dropped,omitempty"`
}

// Snapshot freezes the collector into an exportable Run. The probe order,
// sample values, timestamps, and span order are all deterministic, so two
// bit-identical simulations produce byte-identical exports.
func (c *Collector) Snapshot() *Run {
	times := make([]int64, len(c.times))
	for i, t := range c.times {
		times[i] = int64(t)
	}
	r := &Run{
		Schema:         Schema,
		IntervalCycles: c.interval,
		PeriodPS:       int64(c.period),
		TimesPS:        times,
		Spans:          append([]Span(nil), c.spans...),
		SpansDropped:   c.spansDropped,
	}
	if len(c.meta) > 0 {
		r.Meta = make(map[string]string, len(c.meta))
		for k, v := range c.meta {
			r.Meta[k] = v
		}
	}
	for i, p := range c.probes {
		r.Series = append(r.Series, Series{
			Name:    p.name,
			Track:   p.track,
			Unit:    p.unit,
			Kind:    p.kind.String(),
			Samples: append([]float64(nil), c.samples[i]...),
		})
	}
	return r
}

// WriteJSON writes the run as indented JSON. Map keys are marshaled sorted,
// so the output is byte-deterministic.
func (r *Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteCSV writes the run as a wide CSV: one row per sample time, one column
// per series (counters as per-interval deltas, gauges/rates as sampled).
func (r *Run) WriteCSV(w io.Writer) error {
	cols := make([]string, 0, len(r.Series)+1)
	cols = append(cols, "time_ps")
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for row, t := range r.TimesPS {
		var b strings.Builder
		fmt.Fprintf(&b, "%d", t)
		for _, s := range r.Series {
			v := 0.0
			if row < len(s.Samples) {
				v = s.Samples[row]
			}
			fmt.Fprintf(&b, ",%g", v)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event JSON entry (the subset Perfetto and
// chrome://tracing read: metadata "M", counter "C", and complete "X" events;
// timestamps in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome process ids: counter tracks are grouped per component track under
// pid 1; offload round-trip spans live under pid 2 with one thread per SM.
const (
	chromePIDCounters = 1
	chromePIDSpans    = 2
)

// WriteChrome writes the run in Chrome trace-event JSON, loadable in
// Perfetto: one counter track per series (grouped per component track) and
// one complete-duration event per offload round trip, tid = issuing SM.
func (r *Run) WriteChrome(w io.Writer) error {
	evs := []chromeEvent{
		{Name: "process_name", Ph: "M", PID: chromePIDCounters,
			Args: map[string]any{"name": "ndpgpu metrics"}},
		{Name: "process_name", Ph: "M", PID: chromePIDSpans,
			Args: map[string]any{"name": "offload round trips"}},
	}
	for _, s := range r.Series {
		for i, v := range s.Samples {
			if i >= len(r.TimesPS) {
				break
			}
			evs = append(evs, chromeEvent{
				Name: s.Track + "/" + s.Name,
				Ph:   "C",
				PID:  chromePIDCounters,
				TS:   float64(r.TimesPS[i]) / 1e6,
				Args: map[string]any{"value": v},
			})
		}
	}
	for _, sp := range r.Spans {
		dur := float64(sp.DurPS) / 1e6
		evs = append(evs, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			PID:  chromePIDSpans,
			TID:  sp.TID,
			TS:   float64(sp.StartPS) / 1e6,
			Dur:  &dur,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

// Format names one export layout.
type Format string

// Export formats accepted by -tracefmt.
const (
	FormatJSON   Format = "json"
	FormatCSV    Format = "csv"
	FormatChrome Format = "chrome"
)

// ParseFormat validates a -tracefmt value, defaulting from the output file
// extension when the value is empty.
func ParseFormat(name, path string) (Format, error) {
	switch name {
	case "json":
		return FormatJSON, nil
	case "csv":
		return FormatCSV, nil
	case "chrome":
		return FormatChrome, nil
	case "":
		if strings.HasSuffix(path, ".csv") {
			return FormatCSV, nil
		}
		return FormatJSON, nil
	default:
		return "", fmt.Errorf("unknown metrics format %q (valid: json|csv|chrome)", name)
	}
}

// Write exports the run in the given format.
func (r *Run) Write(w io.Writer, f Format) error {
	switch f {
	case FormatJSON:
		return r.WriteJSON(w)
	case FormatCSV:
		return r.WriteCSV(w)
	case FormatChrome:
		return r.WriteChrome(w)
	default:
		return fmt.Errorf("unknown metrics format %q", f)
	}
}
