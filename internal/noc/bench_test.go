package noc

import (
	"testing"

	"ndpgpu/internal/config"
)

func BenchmarkHypercubeSend(b *testing.B) {
	f := NewFabric(config.Default(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SendHMCToHMC(int64(i), i%8, (i+5)%8, 128, nil)
		f.HMCInbox((i + 5) % 8).Pop(1 << 62)
	}
}

func BenchmarkGPULinkSend(b *testing.B) {
	f := NewFabric(config.Default(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SendGPUToHMC(int64(i), i%8, 16, nil)
		f.HMCInbox(i % 8).Pop(1 << 62)
	}
}
