package noc

import (
	"testing"
	"testing/quick"

	"ndpgpu/internal/config"
	"ndpgpu/internal/stats"
)

func fabric(t *testing.T) (*Fabric, *stats.Stats) {
	t.Helper()
	st := stats.New()
	return NewFabric(config.Default(), st), st
}

func TestGPUToHMCDelivery(t *testing.T) {
	f, st := fabric(t)
	at := f.SendGPUToHMC(0, 3, 128, "hello")
	if at <= 0 {
		t.Fatalf("arrival = %d", at)
	}
	// 128 B at 20 GB/s = 6.4 ns serialization + 4.5 ns router latency.
	if at != 6400+4500 {
		t.Fatalf("arrival = %d ps, want 10900", at)
	}
	if _, ok := f.HMCInbox(3).Pop(at - 1); ok {
		t.Fatal("message delivered early")
	}
	msg, ok := f.HMCInbox(3).Pop(at)
	if !ok || msg != "hello" {
		t.Fatalf("Pop = %v, %v", msg, ok)
	}
	if st.Traffic[stats.GPULink] != 128 {
		t.Fatalf("GPU link traffic = %d", st.Traffic[stats.GPULink])
	}
}

func TestLinkSerialization(t *testing.T) {
	f, _ := fabric(t)
	a1 := f.SendGPUToHMC(0, 0, 128, 1)
	a2 := f.SendGPUToHMC(0, 0, 128, 2)
	if a2 != a1+6400 {
		t.Fatalf("second packet arrival %d, want %d (serialized)", a2, a1+6400)
	}
	// Different link: no serialization.
	a3 := f.SendGPUToHMC(0, 1, 128, 3)
	if a3 != a1 {
		t.Fatalf("independent link serialized: %d vs %d", a3, a1)
	}
}

func TestHMCToGPU(t *testing.T) {
	f, st := fabric(t)
	at := f.SendHMCToGPU(100, 5, 64, "resp")
	msg, ok := f.GPUInbox().Pop(at)
	if !ok || msg != "resp" {
		t.Fatal("GPU inbox delivery failed")
	}
	if st.Traffic[stats.GPULink] != 64 {
		t.Fatalf("traffic = %d", st.Traffic[stats.GPULink])
	}
}

func TestHops(t *testing.T) {
	f, _ := fabric(t)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 1}, {0, 4, 1},
		{0, 3, 2}, {0, 7, 3}, {5, 2, 3}, {6, 6, 0},
	}
	for _, c := range cases {
		if got := f.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHMCToHMCMultiHopTraffic(t *testing.T) {
	f, st := fabric(t)
	at1 := f.SendHMCToHMC(0, 0, 1, 128, "1hop")
	if st.Traffic[stats.MemNet] != 128 {
		t.Fatalf("1-hop traffic = %d, want 128", st.Traffic[stats.MemNet])
	}
	at3 := f.SendHMCToHMC(0, 0, 7, 128, "3hop")
	if st.Traffic[stats.MemNet] != 128+3*128 {
		t.Fatalf("3-hop traffic = %d, want 512", st.Traffic[stats.MemNet])
	}
	if at3 <= at1 {
		t.Fatalf("3-hop (%d) not slower than 1-hop (%d)", at3, at1)
	}
	if _, ok := f.HMCInbox(1).Pop(at1); !ok {
		t.Fatal("1-hop not delivered")
	}
	if _, ok := f.HMCInbox(7).Pop(at3); !ok {
		t.Fatal("3-hop not delivered")
	}
}

func TestSameHMCIsFree(t *testing.T) {
	f, st := fabric(t)
	at := f.SendHMCToHMC(42, 3, 3, 4096, "local")
	if at != 42 {
		t.Fatalf("local delivery at %d, want 42", at)
	}
	if st.Traffic[stats.MemNet] != 0 {
		t.Fatal("local movement should not count as memory-network traffic")
	}
}

func TestMemNetDoesNotTouchGPULinks(t *testing.T) {
	f, st := fabric(t)
	f.SendHMCToHMC(0, 2, 5, 1024, "x")
	if st.Traffic[stats.GPULink] != 0 {
		t.Fatal("inter-HMC traffic leaked onto GPU links")
	}
	if f.GPULinkBytes() != 0 {
		t.Fatal("GPU link byte counter moved")
	}
	if f.MeshBytes() == 0 {
		t.Fatal("mesh byte counter did not move")
	}
}

func TestInboxOrdering(t *testing.T) {
	var in Inbox
	in.Put(300, "c")
	in.Put(100, "a")
	in.Put(200, "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		msg, ok := in.Pop(1000)
		if !ok || msg != w {
			t.Fatalf("Pop = %v, want %v", msg, w)
		}
	}
	if _, ok := in.Pop(1000); ok {
		t.Fatal("Pop on empty inbox returned a message")
	}
}

func TestInboxFIFOForEqualTimes(t *testing.T) {
	var in Inbox
	for i := 0; i < 10; i++ {
		in.Put(5, i)
	}
	for i := 0; i < 10; i++ {
		msg, ok := in.Pop(5)
		if !ok || msg != i {
			t.Fatalf("equal-time messages out of order: got %v want %d", msg, i)
		}
	}
}

func TestQuiesced(t *testing.T) {
	f, _ := fabric(t)
	if !f.Quiesced() {
		t.Fatal("fresh fabric not quiesced")
	}
	at := f.SendGPUToHMC(0, 0, 8, "x")
	if f.Quiesced() {
		t.Fatal("fabric quiesced with undelivered message")
	}
	f.HMCInbox(0).Pop(at)
	if !f.Quiesced() {
		t.Fatal("fabric not quiesced after drain")
	}
}

func TestRoutingDeliversEverywhereProperty(t *testing.T) {
	f := func(src, dst uint8) bool {
		fab := NewFabric(config.Default(), nil)
		s, d := int(src%8), int(dst%8)
		at := fab.SendHMCToHMC(0, s, d, 64, "p")
		_, ok := fab.HMCInbox(d).Pop(at)
		return ok && fab.Hops(s, d) <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthMatchesConfig(t *testing.T) {
	// 20 GB/s: 2000 bytes should serialize in 100 ns.
	l := newLink(20, 0)
	at := l.Send(0, 2000)
	if at != 100_000 {
		t.Fatalf("arrival = %d ps, want 100000", at)
	}
}

func TestFabricPanicsOnTooFewLinks(t *testing.T) {
	cfg := config.Default()
	cfg.HMC.NetLinksPerHMC = 2 // hypercube over 8 needs 3
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFabric(cfg, nil)
}

func TestRingTopology(t *testing.T) {
	cfg := config.Default()
	cfg.HMC.NetTopology = "ring"
	st := stats.New()
	f := NewFabric(cfg, st)
	cases := []struct{ a, b, want int }{
		{0, 1, 1}, {0, 7, 1}, {0, 4, 4}, {2, 7, 3}, {5, 5, 0},
	}
	for _, c := range cases {
		if got := f.Hops(c.a, c.b); got != c.want {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Delivery across the longest path.
	at := f.SendHMCToHMC(0, 0, 4, 128, "far")
	if _, ok := f.HMCInbox(4).Pop(at); !ok {
		t.Fatal("ring did not deliver")
	}
	if st.Traffic[stats.MemNet] != 4*128 {
		t.Fatalf("ring traffic = %d, want 512 (4 hops)", st.Traffic[stats.MemNet])
	}
}

func TestRingDeliversEverywhereProperty(t *testing.T) {
	cfg := config.Default()
	cfg.HMC.NetTopology = "ring"
	f := func(src, dst uint8) bool {
		fab := NewFabric(cfg, nil)
		s, d := int(src%8), int(dst%8)
		at := fab.SendHMCToHMC(0, s, d, 64, "p")
		_, ok := fab.HMCInbox(d).Pop(at)
		return ok && fab.Hops(s, d) <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
