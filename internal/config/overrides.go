package config

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file is the service-facing surface of the configuration: named
// override knobs a run request may carry (ndpserve's "overrides" field) and
// the canonical serialization the request digest is computed over.
//
// Overrides are applied in sorted key order, so two requests naming the same
// knobs produce the same Config — and therefore the same canonical bytes and
// the same cache key — regardless of the order the client wrote them in.

// knob is one overridable configuration point.
type knob struct {
	doc string
	set func(*Config, float64) error
}

// setInt assigns v to an int field, rejecting non-integral or out-of-range
// values (an override of 3.5 SMs is a client error, not a truncation).
func setInt(p *int, v float64) error {
	if v != math.Trunc(v) || math.Abs(v) > math.MaxInt32 {
		return fmt.Errorf("want an integer, got %g", v)
	}
	*p = int(v)
	return nil
}

// setInt64 is setInt for 64-bit counters (seeds, epoch lengths).
func setInt64(p *int64, v float64) error {
	if v != math.Trunc(v) || math.Abs(v) > (1<<53) {
		return fmt.Errorf("want an integer, got %g", v)
	}
	*p = int64(v)
	return nil
}

// knobs maps override names (lower-case, dotted paths mirroring the Config
// layout) to setters. Extend freely: anything settable here is automatically
// part of the request digest, because the digest hashes the resolved Config.
var knobs = map[string]knob{
	"numhmcs":  {"number of memory stacks", func(c *Config, v float64) error { return setInt(&c.NumHMCs, v) }},
	"parallel": {"sharded-executor worker count (0 = auto)", func(c *Config, v float64) error { return setInt(&c.Parallel, v) }},
	"fusionwidth": {"shard-fusion width (0 = auto)", func(c *Config, v float64) error {
		return setInt(&c.FusionWidth, v)
	}},
	"gpu.numsms": {"streaming multiprocessors", func(c *Config, v float64) error { return setInt(&c.GPU.NumSMs, v) }},
	"gpu.maxctaspersm": {"concurrent CTAs per SM", func(c *Config, v float64) error {
		return setInt(&c.GPU.MaxCTAsPerSM, v)
	}},
	"gpu.smclockmhz": {"SM clock (MHz)", func(c *Config, v float64) error { return setInt(&c.GPU.SMClockMHz, v) }},
	"gpu.tlbentries": {"per-SM TLB entries", func(c *Config, v float64) error { return setInt(&c.GPU.TLBEntries, v) }},
	"gpu.linkgbps":   {"GPU-HMC link bandwidth (GB/s)", func(c *Config, v float64) error { c.GPU.LinkGBps = v; return nil }},
	"gpu.l2.sizebytes": {"total L2 capacity (bytes)", func(c *Config, v float64) error {
		return setInt(&c.GPU.L2.SizeBytes, v)
	}},
	"hmc.numvaults":  {"vaults per stack", func(c *Config, v float64) error { return setInt(&c.HMC.NumVaults, v) }},
	"hmc.vaultqueue": {"vault request queue depth", func(c *Config, v float64) error { return setInt(&c.HMC.VaultQueue, v) }},
	"hmc.netlinkgbps": {"inter-stack link bandwidth (GB/s)", func(c *Config, v float64) error {
		c.HMC.NetLinkGBps = v
		return nil
	}},
	"hmc.overflowcap": {"logic-layer retry-overflow cap (0 = default)", func(c *Config, v float64) error {
		return setInt(&c.HMC.OverflowCap, v)
	}},
	"nsu.clockmhz": {"NSU clock (MHz)", func(c *Config, v float64) error { return setInt(&c.NSU.ClockMHz, v) }},
	"nsu.numwarps": {"NSU warp slots", func(c *Config, v float64) error { return setInt(&c.NSU.NumWarps, v) }},
	"nsu.physsimdwidth": {"NSU physical SIMD width", func(c *Config, v float64) error {
		return setInt(&c.NSU.PhysSIMDWidth, v)
	}},
	"nsu.readonlycachebytes": {"NSU read-only cache (bytes, 0 = off)", func(c *Config, v float64) error {
		return setInt(&c.NSU.ReadOnlyCacheBytes, v)
	}},
	"ndp.epochcycles": {"Algorithm-1 epoch length (SM cycles)", func(c *Config, v float64) error {
		return setInt64(&c.NDP.EpochCycles, v)
	}},
	"ndp.initratio": {"initial offload ratio", func(c *Config, v float64) error { c.NDP.InitRatio = v; return nil }},
	"ndp.decisionseed": {"offload-decision PRNG seed", func(c *Config, v float64) error {
		return setInt64(&c.NDP.DecisionSeed, v)
	}},
	"ndp.pendingentries": {"SM pending-buffer entries", func(c *Config, v float64) error {
		return setInt(&c.NDP.PendingEntries, v)
	}},
	"mem.placementseed": {"page-placement PRNG seed", func(c *Config, v float64) error {
		return setInt64(&c.Mem.PlacementSeed, v)
	}},
	"arch.stacktlbentries": {"per-stack TLB entries (ndpage backend, 0 = default)", func(c *Config, v float64) error {
		return setInt(&c.Arch.StackTLBEntries, v)
	}},
	"arch.stackwalkcycles": {"stack page-walk cost in DRAM cycles (ndpage backend, 0 = default)", func(c *Config, v float64) error {
		return setInt(&c.Arch.StackWalkCycles, v)
	}},
	"fault.timeoutcycles": {"first offload-retry timeout (SM cycles)", func(c *Config, v float64) error {
		return setInt64(&c.Fault.TimeoutCycles, v)
	}},
	"fault.maxretries": {"offload retries before host fallback", func(c *Config, v float64) error {
		return setInt(&c.Fault.MaxRetries, v)
	}},
}

// KnownOverrides returns every accepted override name, sorted — quoted by
// parse errors and the service docs.
func KnownOverrides() []string {
	names := make([]string, 0, len(knobs))
	for n := range knobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OverrideDoc returns the one-line description of a knob ("" if unknown).
func OverrideDoc(name string) string { return knobs[name].doc }

// ApplyOverrides applies named overrides to the configuration in sorted key
// order. An unknown name or a non-integral value for an integer knob is an
// error; range and consistency checking is Validate's job, so callers should
// validate the resulting Config afterwards.
func ApplyOverrides(c *Config, ov map[string]float64) error {
	if len(ov) == 0 {
		return nil
	}
	names := make([]string, 0, len(ov))
	for n := range ov {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		k, ok := knobs[strings.ToLower(n)]
		if !ok {
			return fmt.Errorf("unknown override %q (valid: %s)", n, strings.Join(KnownOverrides(), " "))
		}
		if err := k.set(c, ov[n]); err != nil {
			return fmt.Errorf("override %q: %w", n, err)
		}
	}
	return nil
}

// Canonical serializes the configuration deterministically for digesting:
// Config is a tree of plain structs and slices (no maps), so encoding/json's
// fixed field order makes the bytes a pure function of the values. Two
// requests that resolve to the same Config — whatever spelling or override
// order produced it — serialize identically.
func Canonical(c Config) ([]byte, error) {
	return json.Marshal(c)
}
