package timing

import (
	"testing"
	"testing/quick"
)

func TestPeriodFromMHz(t *testing.T) {
	cases := []struct {
		mhz  int
		want PS
	}{
		{700, 1429}, // 1428.57 rounds to 1429
		{1250, 800},
		{350, 2857},
		{175, 5714},
		{1000, 1000},
	}
	for _, c := range cases {
		if got := PeriodFromMHz(c.mhz); got != c.want {
			t.Errorf("PeriodFromMHz(%d) = %d, want %d", c.mhz, got, c.want)
		}
	}
}

func TestPeriodFromMHzPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PeriodFromMHz(0)
}

func TestSingleDomainTicksAtPeriod(t *testing.T) {
	e := NewEngine()
	d := e.AddDomain("sm", 1000)
	var times []PS
	d.Attach(TickFunc(func(now PS) { times = append(times, now) }))
	for i := 0; i < 3; i++ {
		e.Step()
	}
	want := []PS{1000, 2000, 3000}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("tick times = %v, want %v", times, want)
		}
	}
	if d.Cycles != 3 {
		t.Fatalf("cycles = %d, want 3", d.Cycles)
	}
}

func TestTwoDomainsInterleave(t *testing.T) {
	e := NewEngine()
	fast := e.AddDomain("fast", 500)
	slow := e.AddDomain("slow", 1000)
	var order []string
	fast.Attach(TickFunc(func(now PS) { order = append(order, "f") }))
	slow.Attach(TickFunc(func(now PS) { order = append(order, "s") }))
	for i := 0; i < 6; i++ {
		e.Step()
	}
	// t=500 f; t=1000 f,s; t=1500 f; t=2000 f,s  (after 4 steps: 6 ticks)
	got := ""
	for _, s := range order {
		got += s
	}
	if got != "ffsffsff" && got != "ffsffs" {
		// 6 Steps: edges at 500,1000,1500,2000,2500,3000 -> f fs f fs f fs
		if got != "ffsffsffs" {
			t.Fatalf("order = %q", got)
		}
	}
	if fast.Cycles != 6 || slow.Cycles != 3 {
		t.Fatalf("cycles fast=%d slow=%d, want 6/3", fast.Cycles, slow.Cycles)
	}
}

func TestCoincidentEdgesFireBothOnce(t *testing.T) {
	e := NewEngine()
	a := e.AddDomain("a", 1000)
	b := e.AddDomain("b", 1000)
	var na, nb int
	a.Attach(TickFunc(func(PS) { na++ }))
	b.Attach(TickFunc(func(PS) { nb++ }))
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if na != 5 || nb != 5 {
		t.Fatalf("na=%d nb=%d, want 5/5", na, nb)
	}
	if e.Now() != 5000 {
		t.Fatalf("now = %d, want 5000", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	d := e.AddDomain("d", 100)
	n := 0
	d.Attach(TickFunc(func(PS) { n++ }))
	steps, ok := e.RunUntil(func() bool { return n >= 10 }, 1<<40)
	if !ok {
		t.Fatal("RunUntil timed out")
	}
	if steps != 10 || n != 10 {
		t.Fatalf("steps=%d n=%d, want 10/10", steps, n)
	}
}

func TestRunUntilTimeout(t *testing.T) {
	e := NewEngine()
	e.AddDomain("d", 100)
	_, ok := e.RunUntil(func() bool { return false }, 1000)
	if ok {
		t.Fatal("expected timeout")
	}
	if e.Now() < 1000 {
		t.Fatalf("now = %d, want >= 1000", e.Now())
	}
}

func TestRunUntilCancel(t *testing.T) {
	e := NewEngine()
	d := e.AddDomain("d", 100)
	n := 0
	d.Attach(TickFunc(func(PS) {
		n++
		if n == 5 {
			e.Cancel() // a watchdog would call this from another goroutine
		}
	}))
	steps, ok := e.RunUntil(func() bool { return false }, 1<<40)
	if ok {
		t.Fatal("canceled run reported success")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
	if steps != 5 || n != 5 {
		t.Fatalf("steps=%d n=%d, want 5/5: cancel must stop at the next step boundary", steps, n)
	}
}

func TestCancelDoesNotMaskQuiescence(t *testing.T) {
	// A run that satisfies its done predicate on the same step the cancel
	// lands still counts as a clean quiescence.
	e := NewEngine()
	d := e.AddDomain("d", 100)
	n := 0
	d.Attach(TickFunc(func(PS) { n++ }))
	e.Cancel()
	_, ok := e.RunUntil(func() bool { return true }, 1<<40)
	if !ok {
		t.Fatal("already-done run reported cancellation")
	}
}

func TestStepEmptyEngine(t *testing.T) {
	if NewEngine().Step() {
		t.Fatal("empty engine should not step")
	}
}

func TestCyclesAt(t *testing.T) {
	d := Domain{PeriodPS: 1429}
	if got := d.CyclesAt(1429 * 7); got != 7 {
		t.Fatalf("CyclesAt = %d, want 7", got)
	}
}

func TestTickCountMatchesTimeProperty(t *testing.T) {
	// Property: after k steps of a single-domain engine, Now == k*period
	// and Cycles == k.
	f := func(period uint16, steps uint8) bool {
		p := PS(period%5000) + 1
		e := NewEngine()
		d := e.AddDomain("x", p)
		k := int64(steps % 50)
		for i := int64(0); i < k; i++ {
			e.Step()
		}
		return e.Now() == p*k && d.Cycles == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDomainRatioProperty(t *testing.T) {
	// Property: for two domains with periods p and 2p, the fast domain
	// always has >= the slow domain's cycles and at most 2x+1.
	f := func(pRaw uint16, steps uint8) bool {
		p := PS(pRaw%1000) + 1
		e := NewEngine()
		fast := e.AddDomain("f", p)
		slow := e.AddDomain("s", 2*p)
		for i := 0; i < int(steps); i++ {
			e.Step()
		}
		return fast.Cycles >= slow.Cycles && fast.Cycles <= 2*slow.Cycles+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
