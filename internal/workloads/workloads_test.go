package workloads

import (
	"testing"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/config"
	"ndpgpu/internal/vm"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"BFS", "BICG", "BPROP", "FWT", "KMN", "MINIFE", "SP", "STCL", "STN", "VADD"}
	got := Abbrs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d workloads: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Abbrs() = %v, want %v", got, want)
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	mem := vm.New(config.Default())
	if _, err := Build("NOPE", mem, 1); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestAllKernelsValidateAndAnalyze(t *testing.T) {
	for _, abbr := range Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			mem := vm.New(config.Default())
			w, err := Build(abbr, mem, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Kernel.Validate(); err != nil {
				t.Fatalf("kernel invalid: %v", err)
			}
			prog, err := analyzer.Analyze(w.Kernel, analyzer.DefaultOptions())
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if len(prog.Blocks) == 0 {
				t.Fatalf("%s: no offload blocks found", abbr)
			}
		})
	}
}

func TestIndirectWorkloadsHaveIndirectBlocks(t *testing.T) {
	// Table 1: BFS and STCL contain single-indirect-load blocks (§4.4);
	// our MINIFE gather is indirect as well.
	for _, abbr := range []string{"BFS", "STCL", "MINIFE"} {
		mem := vm.New(config.Default())
		w, err := Build(abbr, mem, 1)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := analyzer.Analyze(w.Kernel, analyzer.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, b := range prog.Blocks {
			if b.Indirect {
				// Indirect blocks contain only gather loads (adjacent ones
				// merge into a single block to amortize the round trip).
				if b.NSUInstrs() != b.NumLD || b.NumST != 0 {
					t.Errorf("%s: indirect block %d NSU instrs / %d LD / %d ST",
						abbr, b.NSUInstrs(), b.NumLD, b.NumST)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no indirect offload block found", abbr)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	m1 := vm.New(config.Default())
	m2 := vm.New(config.Default())
	w1, _ := Build("KMN", m1, 1)
	w2, _ := Build("KMN", m2, 1)
	if len(w1.Kernel.Code) != len(w2.Kernel.Code) {
		t.Fatal("kernel code differs across builds")
	}
	if w1.Kernel.Params[0] != w2.Kernel.Params[0] {
		t.Fatal("allocation addresses differ across builds")
	}
}

func TestScaleGrowsProblem(t *testing.T) {
	m1 := vm.New(config.Default())
	m2 := vm.New(config.Default())
	w1, _ := Build("VADD", m1, 1)
	w2, _ := Build("VADD", m2, 2)
	if w2.Kernel.GridDim != 2*w1.Kernel.GridDim {
		t.Fatalf("scale 2 grid = %d, want %d", w2.Kernel.GridDim, 2*w1.Kernel.GridDim)
	}
}
