package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// parLeg captures everything a run can externally observe: the final memory
// image, the complete statistics bundle, and (when auditing) the violation
// count.
type parLeg struct {
	mem        []byte
	st         *stats.Stats
	cycles     int64
	violations int64
}

// runParLeg runs one workload/mode with the given Parallel degree and
// returns the observable outcome. The functional output is verified against
// the host reference in every leg. Serial reference legs pass par=1
// explicitly: 0 now means "auto" and would go parallel on multi-core hosts.
func runParLeg(t *testing.T, cfg config.Config, abbr string, mode Mode, par int, withAudit bool) parLeg {
	t.Helper()
	cfg.Parallel = par
	mem := vm.New(cfg)
	w, err := workloads.Build(abbr, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Launch(cfg, w.Kernel, mem, mode)
	if err != nil {
		t.Fatalf("%s/%s par=%d: Launch: %v", abbr, mode.Name, par, err)
	}
	leg := parLeg{}
	var aud interface{ Count() int64 }
	if withAudit {
		aud = m.EnableAudit()
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatalf("%s/%s par=%d: Run: %v", abbr, mode.Name, par, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s/%s par=%d: verification failed: %v", abbr, mode.Name, par, err)
	}
	if aud != nil {
		leg.violations = aud.Count()
	}
	leg.mem = mem.Snapshot()
	leg.st = res.Stats
	leg.cycles = res.Cycles
	return leg
}

// requireIdentical asserts bit-identity of two legs: same final memory image
// and every statistics counter equal.
func requireIdentical(t *testing.T, name string, serial, parallel parLeg) {
	t.Helper()
	if serial.cycles != parallel.cycles {
		t.Errorf("%s: cycles diverge: serial=%d parallel=%d", name, serial.cycles, parallel.cycles)
	}
	if !bytes.Equal(serial.mem, parallel.mem) {
		t.Errorf("%s: final memory images differ", name)
	}
	if !reflect.DeepEqual(serial.st, parallel.st) {
		t.Errorf("%s: statistics diverge:\nserial:   %+v\nparallel: %+v", name, serial.st, parallel.st)
	}
}

// TestParallelEquivalence proves the determinism contract of the sharded
// executor the same way TestIdleSkipEquivalence proved idle skipping: for
// every workload x mode leg, a run with Parallel=4 must be bit-identical to
// the serial reference — same final memory image, same cycle count, every
// statistics counter equal. The mode set covers all decider kinds the
// sequencer handles differently: Never/Always (pure, unsequenced), Dynamic
// (seeded PRNG draws at serial positions), and CacheAware (profile shards
// folded before each decision).
func TestParallelEquivalence(t *testing.T) {
	cfg := smallConfig()
	wls := workloads.Abbrs()
	if testing.Short() {
		wls = []string{"VADD", "BFS"}
	}
	modes := []Mode{Baseline, NaiveNDP, DynCache}
	for _, abbr := range wls {
		for _, mode := range modes {
			abbr, mode := abbr, mode
			t.Run(abbr+"/"+mode.Name, func(t *testing.T) {
				serial := runParLeg(t, cfg, abbr, mode, 1, false)
				par := runParLeg(t, cfg, abbr, mode, 4, false)
				requireIdentical(t, abbr+"/"+mode.Name, serial, par)
			})
		}
	}
	// Plain Dynamic (no cache filter): the PRNG-draw sequencing without
	// profile folding.
	t.Run("VADD/NDP(Dyn)", func(t *testing.T) {
		serial := runParLeg(t, cfg, "VADD", DynNDP, 1, false)
		par := runParLeg(t, cfg, "VADD", DynNDP, 4, false)
		requireIdentical(t, "VADD/NDP(Dyn)", serial, par)
	})
}

// TestParallelEquivalenceAudited runs a leg with every invariant checker
// attached: the auditor must observe the identical post-commit state in both
// modes (zero violations, identical statistics).
func TestParallelEquivalenceAudited(t *testing.T) {
	cfg := AuditConfig()
	serial := runParLeg(t, cfg, "VADD", NaiveNDP, 1, true)
	par := runParLeg(t, cfg, "VADD", NaiveNDP, 4, true)
	if serial.violations != 0 || par.violations != 0 {
		t.Fatalf("audit violations: serial=%d parallel=%d, want 0", serial.violations, par.violations)
	}
	requireIdentical(t, "audited VADD/NaiveNDP", serial, par)
}

// TestParallelEquivalenceChaos runs a leg under a deterministic fault
// schedule that exercises the sequenced recovery paths (timeouts, retries),
// with auditing on: the parallel run must reproduce the serial run's
// recovery decisions bit for bit.
func TestParallelEquivalenceChaos(t *testing.T) {
	cfg := AuditConfig()
	var spec string
	for _, s := range PinnedSchedules() {
		if s.Name == "frozen-vault" {
			spec = s.Spec
		}
	}
	if spec == "" {
		t.Fatal("frozen-vault schedule not found")
	}
	fc, err := ChaosFaultConfig(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = fc
	serial := runParLeg(t, cfg, "VADD", NaiveNDP, 1, true)
	par := runParLeg(t, cfg, "VADD", NaiveNDP, 4, true)
	if serial.violations != 0 || par.violations != 0 {
		t.Fatalf("audit violations: serial=%d parallel=%d, want 0", serial.violations, par.violations)
	}
	if serial.st.OffloadTimeouts == 0 {
		t.Fatal("chaos leg fired no timeouts; schedule inert")
	}
	requireIdentical(t, "chaos VADD/NaiveNDP", serial, par)
}

// fusedVariants is the tentpole acceptance matrix: every pinned fusion width
// from fully fused (1 supershard, always inline) to fully unfused (72, one
// shard per barrier participant — clamped per domain), crossed with
// quiescence batching on and off. Widths > 1 force real worker goroutines
// even on single-CPU hosts (the auto width would fold to 1 there), so the
// race detector sees genuine cross-goroutine schedules in every environment.
var fusedVariants = []struct {
	width   int
	nobatch bool
}{
	{1, false}, {1, true},
	{2, false}, {2, true},
	{4, false}, {4, true},
	{72, false}, {72, true},
}

func fusedName(width int, nobatch bool) string {
	batch := "batch"
	if nobatch {
		batch = "nobatch"
	}
	return fmt.Sprintf("fuse=%d/%s", width, batch)
}

// TestParallelEquivalenceFused extends the determinism contract across the
// fusion/batching matrix: for representative workload x mode legs (covering
// the pure, PRNG-sequenced, and profile-folding decider kinds), a Parallel=4
// run at every pinned fusion width with quiescence batching on and off must
// be bit-identical to the serial reference.
func TestParallelEquivalenceFused(t *testing.T) {
	cfg := smallConfig()
	legs := []struct {
		abbr string
		mode Mode
	}{
		{"VADD", DynCache},
		{"BFS", NaiveNDP},
		{"VADD", DynNDP},
	}
	variants := fusedVariants
	if testing.Short() {
		// Short mode is a smoke: one leg, one fused width per batching
		// setting. The full matrix runs in `make test-parallel-fused`.
		legs = legs[:1]
		variants = []struct {
			width   int
			nobatch bool
		}{{2, false}, {72, true}}
	}
	for _, l := range legs {
		serial := runParLeg(t, cfg, l.abbr, l.mode, 1, false)
		for _, v := range variants {
			v := v
			name := l.abbr + "/" + l.mode.Name + "/" + fusedName(v.width, v.nobatch)
			t.Run(name, func(t *testing.T) {
				c := cfg
				c.FusionWidth = v.width
				c.NoQuiescentBatch = v.nobatch
				par := runParLeg(t, c, l.abbr, l.mode, 4, false)
				requireIdentical(t, name, serial, par)
			})
		}
	}
}

// TestParallelEquivalenceFusedAudited reruns the audited leg across the
// fusion/batching matrix: every invariant checker must observe identical
// post-commit state at every width.
func TestParallelEquivalenceFusedAudited(t *testing.T) {
	cfg := AuditConfig()
	serial := runParLeg(t, cfg, "VADD", NaiveNDP, 1, true)
	variants := fusedVariants
	if testing.Short() {
		variants = variants[2:3] // fuse=2, batch on
	}
	for _, v := range variants {
		v := v
		t.Run(fusedName(v.width, v.nobatch), func(t *testing.T) {
			c := cfg
			c.FusionWidth = v.width
			c.NoQuiescentBatch = v.nobatch
			par := runParLeg(t, c, "VADD", NaiveNDP, 4, true)
			if serial.violations != 0 || par.violations != 0 {
				t.Fatalf("audit violations: serial=%d parallel=%d, want 0",
					serial.violations, par.violations)
			}
			requireIdentical(t, "audited "+fusedName(v.width, v.nobatch), serial, par)
		})
	}
}

// TestParallelEquivalenceFusedChaos reruns the frozen-vault chaos leg with a
// fused executor: the sequenced recovery decisions (timeouts, retries) must
// land at their serial positions inside supershards too.
func TestParallelEquivalenceFusedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos x fusion matrix runs in make test-parallel-fused; the unfused chaos leg already covers -short")
	}
	cfg := AuditConfig()
	var spec string
	for _, s := range PinnedSchedules() {
		if s.Name == "frozen-vault" {
			spec = s.Spec
		}
	}
	if spec == "" {
		t.Fatal("frozen-vault schedule not found")
	}
	fc, err := ChaosFaultConfig(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = fc
	serial := runParLeg(t, cfg, "VADD", NaiveNDP, 1, true)
	if serial.st.OffloadTimeouts == 0 {
		t.Fatal("chaos leg fired no timeouts; schedule inert")
	}
	for _, v := range []struct {
		width   int
		nobatch bool
	}{{2, false}, {2, true}} {
		v := v
		t.Run(fusedName(v.width, v.nobatch), func(t *testing.T) {
			c := cfg
			c.FusionWidth = v.width
			c.NoQuiescentBatch = v.nobatch
			par := runParLeg(t, c, "VADD", NaiveNDP, 4, true)
			if par.violations != 0 {
				t.Fatalf("audit violations: %d, want 0", par.violations)
			}
			requireIdentical(t, "chaos "+fusedName(v.width, v.nobatch), serial, par)
		})
	}
}
