package experiments

import (
	"fmt"

	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
)

// goldenModes are the modes the golden-digest regression gate pins for every
// workload: the host baseline plus both NDP offload mechanisms.
var goldenModes = []sim.Mode{sim.Baseline, sim.NaiveNDP, sim.DynNDP}

// goldenArchs are the non-default architecture backends whose digests the
// regression gate also pins, one entry per workload x mode x arch keyed by
// GoldenKeyArch. The default ("paper") architecture keeps the bare
// workload|mode keys so its legs stay byte-compatible with history.
var goldenArchs = []string{"coda", "coda-ft", "ndpage"}

// GoldenDigests runs every Table 1 workload under the golden modes — on the
// default architecture and on every goldenArchs backend — and returns one
// flattened counter digest per run. Default-architecture runs are keyed
// "workload|mode"; backend runs are keyed "workload|mode|arch". Each digest
// is the reflection-walked statistics bundle (so a newly added counter is
// pinned automatically) plus the simulated end time and total energy. The
// simulator is deterministic, so any digest change is a behavior change.
func GoldenDigests(cfg config.Config, scale int) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	// runAll keys by workload|mode, so each architecture is its own batch.
	for _, arch := range append([]string{""}, goldenArchs...) {
		acfg := cfg
		acfg.Arch.Backend = arch
		var jobs []job
		for _, wl := range Workloads() {
			for _, m := range goldenModes {
				jobs = append(jobs, job{workload: wl, mode: m, cfg: acfg})
			}
		}
		runs := runAll(jobs, scale)
		if err := checkErrs(runs); err != nil {
			if arch != "" {
				err = fmt.Errorf("arch %s: %w", arch, err)
			}
			return nil, err
		}
		for key, r := range runs {
			d := r.Stats.Digest()
			d["TimePS"] = float64(r.TimePS)
			d["EnergyTotalPJ"] = r.Energy.Total()
			if arch != "" {
				key = key + "|" + arch
			}
			out[key] = d
		}
	}
	return out, nil
}

// GoldenKey names one default-architecture golden-digest entry.
func GoldenKey(workload, mode string) string {
	return fmt.Sprintf("%s|%s", workload, mode)
}

// GoldenKeyArch names one golden-digest entry for a non-default architecture
// backend.
func GoldenKeyArch(workload, mode, arch string) string {
	return fmt.Sprintf("%s|%s|%s", workload, mode, arch)
}
