package metrics

import (
	"testing"
	"time"
)

func TestStallGuard(t *testing.T) {
	g := NewStallGuard(50 * time.Millisecond)
	if g.Stalled() {
		t.Fatal("fresh guard reports a stall")
	}
	if g.Window() != 50*time.Millisecond {
		t.Fatalf("Window = %v", g.Window())
	}
	deadline := time.Now().Add(5 * time.Second)
	for !g.Stalled() {
		if time.Now().After(deadline) {
			t.Fatal("guard never stalled without touches")
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.Touch()
	if g.Stalled() {
		t.Fatal("touched guard still reports a stall")
	}
	if g.SinceTouch() > time.Second {
		t.Fatalf("SinceTouch = %v right after Touch", g.SinceTouch())
	}
}
