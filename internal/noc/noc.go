// Package noc models the system interconnect: the GPU's off-chip links (one
// bidirectional 20 GB/s link per HMC, Table 2) and the inter-HMC memory
// network (a 3D hypercube over 8 stacks using 3 of each HMC's links, §5).
//
// Links serialize packets at link bandwidth and deliver after a per-hop
// router latency; multi-hop memory-network packets are forwarded
// store-and-forward with dimension-order routing. Inter-HMC traffic never
// touches the GPU links — that asymmetry is the core of the paper's
// bandwidth argument.
package noc

import (
	"fmt"

	"ndpgpu/internal/audit"
	"ndpgpu/internal/config"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
)

// Link is one direction of one physical link.
type Link struct {
	psPerByte float64   // serialization cost
	latPS     timing.PS // propagation + router latency
	busyUntil timing.PS
	Bytes     int64 // total bytes carried
}

func newLink(gbps float64, latPS timing.PS) *Link {
	// gbps GB/s = gbps bytes/ns = gbps/1000 bytes/ps.
	return &Link{psPerByte: 1000.0 / gbps, latPS: latPS}
}

// Send schedules size bytes onto the link at or after now, returning the
// arrival time at the far end.
func (l *Link) Send(now timing.PS, size int) timing.PS {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := timing.PS(float64(size) * l.psPerByte)
	l.busyUntil = start + ser
	l.Bytes += int64(size)
	return start + ser + l.latPS
}

// BusyUntil returns the time the link next becomes free.
func (l *Link) BusyUntil() timing.PS { return l.busyUntil }

// Delivery is a message sitting in an inbox with its arrival time.
type Delivery struct {
	At  timing.PS
	Msg any
	seq int64
}

// Inbox is a time-ordered delivery queue at one endpoint. The heap is
// maintained by hand (rather than container/heap) so Put/Pop move Delivery
// values without boxing each one into an interface — the inboxes sit on the
// simulator's hottest path.
type Inbox struct {
	h   []Delivery
	seq int64
	aud *audit.Network // nil unless the fabric auditor is attached
}

func (in *Inbox) less(i, j int) bool {
	if in.h[i].At != in.h[j].At {
		return in.h[i].At < in.h[j].At
	}
	return in.h[i].seq < in.h[j].seq
}

// Put inserts a message arriving at time at.
func (in *Inbox) Put(at timing.PS, msg any) {
	in.seq++
	in.h = append(in.h, Delivery{At: at, Msg: msg, seq: in.seq})
	// Sift up.
	i := len(in.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !in.less(i, parent) {
			break
		}
		in.h[i], in.h[parent] = in.h[parent], in.h[i]
		i = parent
	}
}

// Pop removes and returns the earliest message whose arrival time is <= now.
func (in *Inbox) Pop(now timing.PS) (any, bool) {
	if len(in.h) == 0 || in.h[0].At > now {
		return nil, false
	}
	msg := in.h[0].Msg
	if in.aud != nil {
		in.aud.Eject(now, msg)
	}
	n := len(in.h) - 1
	in.h[0] = in.h[n]
	in.h[n] = Delivery{} // release the popped message for GC
	in.h = in.h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		min := l
		if r < n && in.less(r, l) {
			min = r
		}
		if !in.less(min, i) {
			break
		}
		in.h[i], in.h[min] = in.h[min], in.h[i]
		i = min
	}
	return msg, true
}

// Len returns the number of queued messages (including not-yet-arrived).
func (in *Inbox) Len() int { return len(in.h) }

// NextAt returns the arrival time of the earliest queued message, or false
// when the inbox is empty. Side-effect free; used by idle hints.
func (in *Inbox) NextAt() (timing.PS, bool) {
	if len(in.h) == 0 {
		return 0, false
	}
	return in.h[0].At, true
}

// Fabric wires the GPU and the HMCs together.
type Fabric struct {
	numHMCs int
	dims    int
	ring    bool

	gpuToHMC []*Link // index: hmc
	hmcToGPU []*Link
	// mesh[src][dim]: link from src to src^(1<<dim).
	mesh [][]*Link

	hmcInbox []Inbox
	gpuInbox Inbox

	st     *stats.Stats
	tracer Tracer
	aud    *audit.Network
}

// Tracer observes every packet entering the fabric; see package trace.
type Tracer func(now timing.PS, route string, size int, msg any)

// NewFabric builds the fabric for the configuration. st may be nil.
func NewFabric(cfg config.Config, st *stats.Stats) *Fabric {
	n := cfg.NumHMCs
	ring := cfg.HMC.NetTopology == "ring"
	dims := 0
	if ring {
		dims = 2 // clockwise and counter-clockwise links
	} else {
		for 1<<dims < n {
			dims++
		}
		if dims > cfg.HMC.NetLinksPerHMC {
			panic(fmt.Sprintf("noc: hypercube over %d HMCs needs %d links/HMC, have %d",
				n, dims, cfg.HMC.NetLinksPerHMC))
		}
	}
	lat := timing.PS(cfg.HMC.RouterLatPS)
	f := &Fabric{
		numHMCs:  n,
		dims:     dims,
		ring:     ring,
		gpuToHMC: make([]*Link, n),
		hmcToGPU: make([]*Link, n),
		mesh:     make([][]*Link, n),
		hmcInbox: make([]Inbox, n),
		st:       st,
	}
	for i := 0; i < n; i++ {
		f.gpuToHMC[i] = newLink(cfg.GPU.LinkGBps, lat)
		f.hmcToGPU[i] = newLink(cfg.GPU.LinkGBps, lat)
		f.mesh[i] = make([]*Link, dims)
		for d := 0; d < dims; d++ {
			f.mesh[i][d] = newLink(cfg.HMC.NetLinkGBps, lat)
		}
	}
	return f
}

// NumHMCs returns the HMC count.
func (f *Fabric) NumHMCs() int { return f.numHMCs }

// SetTracer installs a packet observer (nil disables tracing).
func (f *Fabric) SetTracer(t Tracer) { f.tracer = t }

// Traced reports whether a packet tracer is installed. Senders use this to
// decide whether delivered packets may be recycled through free lists — a
// tracer may retain packets, so pooling is disabled while one is attached.
func (f *Fabric) Traced() bool { return f.tracer != nil }

// SetAudit attaches the packet-conservation auditor to the fabric and all of
// its inboxes (nil detaches). The auditor observes every injection at the
// Send* entry points and every ejection at Inbox.Pop; like a tracer, it may
// retain packet identities, so it must only be attached to machines whose
// senders allocate packets fresh (the default — see Traced).
func (f *Fabric) SetAudit(n *audit.Network) {
	f.aud = n
	f.gpuInbox.aud = n
	for i := range f.hmcInbox {
		f.hmcInbox[i].aud = n
	}
}

// Diameter returns the maximum hop count between any two stacks on the
// memory network: the dimension count for the hypercube, half the ring for
// the ring topology.
func (f *Fabric) Diameter() int {
	if f.ring {
		return f.numHMCs / 2
	}
	return f.dims
}

func (f *Fabric) trace(now timing.PS, routeFmt string, a, b, size int, msg any) {
	if f.tracer == nil {
		return
	}
	f.tracer(now, fmt.Sprintf(routeFmt, a, b), size, msg)
}

func (f *Fabric) addTraffic(c stats.TrafficClass, n int64) {
	if f.st != nil {
		f.st.AddTraffic(c, n)
	}
}

// SendGPUToHMC ships a packet from the GPU to HMC dst.
func (f *Fabric) SendGPUToHMC(now timing.PS, dst, size int, msg any) timing.PS {
	f.trace(now, "gpu->hmc%d%.0d", dst, 0, size, msg)
	at := f.gpuToHMC[dst].Send(now, size)
	f.addTraffic(stats.GPULink, int64(size))
	if f.aud != nil {
		f.aud.Inject(now, at, audit.GPUNode, dst, 0, msg)
	}
	f.hmcInbox[dst].Put(at, msg)
	return at
}

// SendHMCToGPU ships a packet from HMC src to the GPU.
func (f *Fabric) SendHMCToGPU(now timing.PS, src, size int, msg any) timing.PS {
	f.trace(now, "hmc%d->gpu%.0d", src, 0, size, msg)
	at := f.hmcToGPU[src].Send(now, size)
	f.addTraffic(stats.GPULink, int64(size))
	if f.aud != nil {
		f.aud.Inject(now, at, src, audit.GPUNode, 0, msg)
	}
	f.gpuInbox.Put(at, msg)
	return at
}

// SendHMCToHMC ships a packet between stacks over the memory network using
// dimension-order routing with store-and-forward per hop. src == dst is
// legal and models logic-layer-internal movement (no link traversal).
func (f *Fabric) SendHMCToHMC(now timing.PS, src, dst, size int, msg any) timing.PS {
	f.trace(now, "hmc%d->hmc%d", src, dst, size, msg)
	if src == dst {
		if f.aud != nil {
			f.aud.Inject(now, now, src, dst, 0, msg)
		}
		f.hmcInbox[dst].Put(now, msg)
		return now
	}
	t := now
	cur := src
	hops := 0
	for cur != dst {
		var d, next int
		if f.ring {
			// Shortest direction around the ring: mesh[i][0] goes
			// clockwise to i+1, mesh[i][1] counter-clockwise to i-1.
			cw := (dst - cur + f.numHMCs) % f.numHMCs
			if cw <= f.numHMCs-cw {
				d, next = 0, (cur+1)%f.numHMCs
			} else {
				d, next = 1, (cur-1+f.numHMCs)%f.numHMCs
			}
		} else {
			diff := uint(cur ^ dst)
			for diff&1 == 0 {
				diff >>= 1
				d++
			}
			next = cur ^ (1 << d)
		}
		link := f.mesh[cur][d]
		t = link.Send(t, size) // arrival at next hop
		f.addTraffic(stats.MemNet, int64(size))
		cur = next
		hops++
	}
	if f.aud != nil {
		f.aud.Inject(now, t, src, dst, hops, msg)
	}
	f.hmcInbox[dst].Put(t, msg)
	return t
}

// Hops returns the number of memory-network hops between two stacks.
func (f *Fabric) Hops(src, dst int) int {
	if f.ring {
		cw := (dst - src + f.numHMCs) % f.numHMCs
		if ccw := f.numHMCs - cw; ccw < cw {
			return ccw
		}
		return cw
	}
	h := 0
	for x := src ^ dst; x != 0; x >>= 1 {
		h += x & 1
	}
	return h
}

// HMCInbox returns HMC i's delivery queue.
func (f *Fabric) HMCInbox(i int) *Inbox { return &f.hmcInbox[i] }

// GPUInbox returns the GPU-side delivery queue.
func (f *Fabric) GPUInbox() *Inbox { return &f.gpuInbox }

// GPULinkBytes returns total bytes carried on the GPU links (both
// directions).
func (f *Fabric) GPULinkBytes() int64 {
	var n int64
	for i := 0; i < f.numHMCs; i++ {
		n += f.gpuToHMC[i].Bytes + f.hmcToGPU[i].Bytes
	}
	return n
}

// MeshBytes returns total bytes carried on memory-network links.
func (f *Fabric) MeshBytes() int64 {
	var n int64
	for _, ls := range f.mesh {
		for _, l := range ls {
			n += l.Bytes
		}
	}
	return n
}

// Quiesced reports whether all inboxes are empty.
func (f *Fabric) Quiesced() bool {
	if f.gpuInbox.Len() > 0 {
		return false
	}
	for i := range f.hmcInbox {
		if f.hmcInbox[i].Len() > 0 {
			return false
		}
	}
	return true
}
