package noc

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/stats"
)

// faultyFabric builds a fabric with an injector parsed from spec attached.
func faultyFabric(t *testing.T, cfg config.Config, spec string) (*Fabric, *stats.Stats) {
	t.Helper()
	st := stats.New()
	f := NewFabric(cfg, st)
	fc, err := fault.Parse(spec, cfg.NumHMCs, cfg.HMC.NumVaults)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFault(fault.New(fc, cfg.NumHMCs, cfg.HMC.NumVaults, f.Dims(), f.Ring()))
	return f, st
}

// TestDormantInjectorMatchesDimOrder pins the reroute no-op contract: with
// an injector attached but every link alive, the fault-aware path must pick
// exactly the deterministic fault-free route for every pair — identical
// arrival times, zero rerouted hops — so a dormant schedule cannot shift
// mesh contention.
func TestDormantInjectorMatchesDimOrder(t *testing.T) {
	cfg := config.Default()
	for _, topo := range []string{"hypercube", "ring"} {
		cfg.HMC.NetTopology = topo
		plain := NewFabric(cfg, stats.New())
		faulty, st := faultyFabric(t, cfg, "nsufail:t=900000000000:hmc=0")
		for s := 0; s < cfg.NumHMCs; s++ {
			for d := 0; d < cfg.NumHMCs; d++ {
				a := plain.SendHMCToHMC(0, s, d, 128, "p")
				b := faulty.SendHMCToHMC(0, s, d, 128, "p")
				if a != b {
					t.Fatalf("%s %d->%d: dormant injector shifted arrival %d -> %d", topo, s, d, a, b)
				}
			}
		}
		if st.ReroutedHops != 0 || st.DroppedPackets != 0 || st.RouteUnreachable != 0 {
			t.Fatalf("%s: dormant injector perturbed routing: rerouted=%d dropped=%d unreachable=%d",
				topo, st.ReroutedHops, st.DroppedPackets, st.RouteUnreachable)
		}
	}
}

// TestRerouteAroundDeadLink kills one hypercube link and checks the packet
// still arrives, via a strictly longer detour, with the reroute counted.
func TestRerouteAroundDeadLink(t *testing.T) {
	cfg := config.Default()
	healthy := NewFabric(cfg, stats.New())
	direct := healthy.SendHMCToHMC(0, 0, 1, 128, "p")

	f, st := faultyFabric(t, cfg, "linkdown:t=0:hmc=0:dim=0")
	at := f.SendHMCToHMC(0, 0, 1, 128, "p")
	if _, ok := f.HMCInbox(1).Pop(at); !ok {
		t.Fatal("packet not delivered around the dead link")
	}
	if st.ReroutedHops == 0 {
		t.Error("detour not counted in ReroutedHops")
	}
	if at <= direct {
		t.Errorf("detour arrival %d not later than the 1-hop path %d", at, direct)
	}
	// 0-1 is dead; the shortest live path is 3 hops, e.g. 0-2-3-1.
	if st.Traffic[stats.MemNet] != 3*128 {
		t.Errorf("detour traffic = %d, want %d (3 hops)", st.Traffic[stats.MemNet], 3*128)
	}
}

// TestRerouteOnRing kills a ring link: the only live path is the long way
// around, every hop of which diverges from the shortest-direction route.
func TestRerouteOnRing(t *testing.T) {
	cfg := config.Default()
	cfg.HMC.NetTopology = "ring"
	f, st := faultyFabric(t, cfg, "linkdown:t=0:hmc=0:dim=0")
	at := f.SendHMCToHMC(0, 0, 1, 128, "p")
	if _, ok := f.HMCInbox(1).Pop(at); !ok {
		t.Fatal("ring packet not delivered the long way around")
	}
	if n := int64(cfg.NumHMCs - 1); st.Traffic[stats.MemNet] != n*128 {
		t.Errorf("ring detour traffic = %d, want %d hops", st.Traffic[stats.MemNet]/128, n)
	}
	if st.ReroutedHops == 0 {
		t.Error("ring detour not counted")
	}
}

// TestRouteUnreachable isolates a stack completely: the packet must be
// reported unreachable and never delivered, not loop forever.
func TestRouteUnreachable(t *testing.T) {
	cfg := config.Default()
	f, st := faultyFabric(t, cfg,
		"linkdown:t=0:hmc=0:dim=0;linkdown:t=0:hmc=0:dim=1;linkdown:t=0:hmc=0:dim=2")
	f.SendHMCToHMC(0, 0, 5, 128, "p")
	if st.RouteUnreachable != 1 {
		t.Fatalf("RouteUnreachable = %d, want 1", st.RouteUnreachable)
	}
	if f.HMCInbox(5).Len() != 0 {
		t.Fatal("unreachable packet was delivered")
	}
}

// TestLinkRecovery checks a windowed linkdown heals: after the window the
// direct route is used again with no rerouted hops.
func TestLinkRecovery(t *testing.T) {
	cfg := config.Default()
	f, st := faultyFabric(t, cfg, "linkdown:t=0:hmc=0:dim=0:dur=1000")
	f.SendHMCToHMC(0, 0, 1, 128, "early") // detours, 3 hops
	rerouted := st.ReroutedHops
	if rerouted == 0 {
		t.Fatal("no detour while the link was down")
	}
	at := f.SendHMCToHMC(2000, 0, 1, 128, "late")
	if _, ok := f.HMCInbox(1).Pop(at); !ok {
		t.Fatal("post-recovery packet not delivered")
	}
	if st.ReroutedHops != rerouted {
		t.Error("healed link still rerouting")
	}
}

// TestDropAndCorruptAccounting runs a heavily lossy mesh and checks the
// loss draws land in the stats counters and lost packets are not delivered.
func TestDropAndCorruptAccounting(t *testing.T) {
	cfg := config.Default()
	f, st := faultyFabric(t, cfg, "drop:p=0.5;corrupt:p=0.2;seed=3")
	const n = 200
	delivered := 0
	for i := 0; i < n; i++ {
		at := f.SendHMCToHMC(0, 0, 7, 64, i)
		if _, ok := f.HMCInbox(7).Pop(at); ok {
			delivered++
		}
	}
	if st.DroppedPackets == 0 || st.CorruptedPackets == 0 {
		t.Fatalf("lossy mesh: dropped=%d corrupted=%d", st.DroppedPackets, st.CorruptedPackets)
	}
	if got := int64(n-delivered) - st.DroppedPackets - st.CorruptedPackets; got != 0 {
		t.Fatalf("loss accounting off by %d: %d sent, %d delivered, %d dropped, %d corrupted",
			got, n, delivered, st.DroppedPackets, st.CorruptedPackets)
	}
	if delivered == 0 {
		t.Fatal("every packet lost at p=0.5")
	}
}
