package stats

import (
	"strings"
	"testing"
)

func TestStallKindStrings(t *testing.T) {
	if ExecUnitBusy.String() != "ExecUnitBusy" ||
		DependencyStall.String() != "DependencyStall" ||
		WarpIdle.String() != "WarpIdle" {
		t.Fatal("stall kind names wrong")
	}
	if !strings.Contains(StallKind(99).String(), "99") {
		t.Fatal("unknown stall kind should embed its value")
	}
}

func TestTrafficClassStrings(t *testing.T) {
	if GPULink.String() != "GPULink" || MemNet.String() != "MemNet" || IntraHMC.String() != "IntraHMC" {
		t.Fatal("traffic class names wrong")
	}
}

func TestCacheStats(t *testing.T) {
	c := CacheStats{Accesses: 10, Hits: 7}
	if c.Misses() != 3 {
		t.Fatalf("misses = %d", c.Misses())
	}
	if c.HitRate() != 0.7 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
}

func TestNoIssueAccounting(t *testing.T) {
	s := New()
	s.AddNoIssue(ExecUnitBusy)
	s.AddNoIssue(WarpIdle)
	s.AddNoIssue(WarpIdle)
	if s.NoIssueTotal() != 3 {
		t.Fatalf("total = %d", s.NoIssueTotal())
	}
	if s.NoIssue[WarpIdle] != 2 {
		t.Fatalf("warp idle = %d", s.NoIssue[WarpIdle])
	}
}

func TestTrafficAndOverhead(t *testing.T) {
	s := New()
	s.AddTraffic(GPULink, 1000)
	s.AddTraffic(MemNet, 500)
	s.InvalBytes = 10
	if s.OffChipTraffic() != 1000 {
		t.Fatalf("off-chip = %d", s.OffChipTraffic())
	}
	if got := s.InvalOverhead(); got != 0.01 {
		t.Fatalf("inval overhead = %v", got)
	}
	if (New()).InvalOverhead() != 0 {
		t.Fatal("zero-traffic overhead should be 0")
	}
}

func TestIPC(t *testing.T) {
	s := New()
	s.SMCycles = 100
	s.IssuedInstrs = 250
	if s.IPC() != 2.5 {
		t.Fatalf("ipc = %v", s.IPC())
	}
	if (New()).IPC() != 0 {
		t.Fatal("zero-cycle IPC should be 0")
	}
}

func TestNSUOccupancy(t *testing.T) {
	s := New()
	s.NSUCycles = 100
	s.NSUWarpCycleSum = 100 * 48 * 8 / 2 // half full across 8 NSUs
	if got := s.NSUOccupancy(48, 8); got != 0.5 {
		t.Fatalf("occupancy = %v", got)
	}
	if s.NSUOccupancy(0, 8) != 0 {
		t.Fatal("zero slots should be 0")
	}
}

func TestICacheUtilization(t *testing.T) {
	s := New()
	s.SetNSUICode(0, 1024)
	s.SetNSUICode(1, 2048)
	if got := s.ICacheUtilization(4096); got != (0.25+0.5)/2 {
		t.Fatalf("util = %v", got)
	}
	// Footprints above the cache size clamp to 1.
	s.SetNSUICode(1, 1<<20)
	if got := s.ICacheUtilization(4096); got != (0.25+1.0)/2 {
		t.Fatalf("clamped util = %v", got)
	}
}

func TestEnergyTotal(t *testing.T) {
	e := EnergyBreakdown{GPU: 1, NSU: 2, IntraHMC: 3, OffChip: 4, DRAM: 5}
	if e.Total() != 15 {
		t.Fatalf("total = %v", e.Total())
	}
}

func TestStringContainsCounters(t *testing.T) {
	s := New()
	s.SMCycles = 42
	s.RDFPackets = 7
	out := s.String()
	if !strings.Contains(out, "cycles(SM)=42") || !strings.Contains(out, "rdf=7") {
		t.Fatalf("summary missing fields: %s", out)
	}
}

func TestMergeICodeSorted(t *testing.T) {
	s := New()
	s.SetNSUICode(2, 1)
	s.SetNSUICode(0, 1)
	s.SetNSUICode(1, 1)
	ids := s.MergeICode()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("ids = %v", ids)
	}
}
