// Package gpu models the host GPU: SMs with warp schedulers, scoreboards,
// coalescing load/store units and L1 caches; sliced L2; the NDP packet
// buffers and offload logic of the partitioned execution mechanism; and the
// no-issue-cycle classification reported in Figure 8 of the paper.
package gpu

import (
	"fmt"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/cache"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
)

// accessRecorder is implemented by core.CacheAware; when the decider carries
// one, the GPU feeds it runtime cache-locality profiles (§7.3).
type accessRecorder interface {
	RecordLine(blockID int, hit bool, touchedWords int)
	RecordInstance(blockID int)
	RecordTransfer(blockID int, bytes int)
}

// SpanSink receives completed offload round trips (metrics.Collector
// implements it). Spans are buffered per SM and drained in SM index order at
// tick granularity, so the delivery order is deterministic in both the
// serial and the sharded parallel executor.
type SpanSink interface {
	OffloadSpan(sm, warp, block int, start, dur timing.PS)
}

// GPU is the host processor.
type GPU struct {
	cfg  config.Config
	prog *analyzer.Program
	mem  *vm.System
	fab  *noc.Fabric
	st   *stats.Stats
	dec  core.Decider
	rec  accessRecorder

	bufmgr *core.BufferManager
	sms    []*SM
	slices []*l2slice
	blocks []*coreBlock

	// nsuDir mirrors each NSU's optional read-only cache (§7.1 extension):
	// the GPU fills an entry when it ships a cached line and sends a small
	// reference instead of the data while the entry stays live. nil when
	// the extension is disabled.
	nsuDir []*cache.Cache

	smPeriod timing.PS
	nextCTA  int

	cycles       int64
	regionInstrs int64 // offload-region instructions since the last epoch

	// Wake hooks, wired by the executor when the SM and crossbar domains are
	// wake-scheduled on the engine (serial, fault-free runs). onWake re-arms
	// the SM-domain slot after an external event dirties an SM's idle mirror;
	// onXbarWake re-arms the crossbar slot when a direct L2 push gives it
	// work. nil under dense or parallel execution.
	onWake     func()
	onXbarWake func()

	// wtaInflight counts in-flight WTA packets per destination HMC, the
	// §4.1.1 mechanism that lets dynamic memory management stall writes to
	// a page being swapped while other stacks proceed.
	wtaInflight []int64

	// Parallel execution (nil/false in serial mode): the persistent worker
	// pool the SM compute phase runs on, the sequencer that releases
	// order-sensitive operations (decider calls, credit reservations) in SM
	// index order, and whether a compute phase is currently active (routes
	// SM-side effects into shard-local buffers). fusion is the supershard
	// count for pool dispatch; quiesce elides the dispatch entirely on
	// phases with fewer than two busy SMs (the inline schedule is the
	// serial loop itself, so results are identical by construction).
	// ca/decPure cache what kind of decider is attached so the
	// per-decision dispatch is a flag test.
	pool    *timing.Pool
	seq     *timing.Sequencer
	smPhase bool
	fusion  int
	quiesce bool
	ca      *core.CacheAware
	decPure bool

	// Fault-injection state (nil/zero on the fault-free path).
	flt           *fault.Injector
	timeoutCycles int64 // first-attempt offload ack timeout, SM cycles
	maxRetries    int

	// spanSink, when non-nil, receives offload round-trip durations (the
	// metrics layer). SMs buffer spans locally; the GPU drains the buffers
	// in SM index order after each tick's commit.
	spanSink SpanSink
}

// New wires up a GPU over the given fabric and memory.
func New(cfg config.Config, prog *analyzer.Program, mem *vm.System, fab *noc.Fabric,
	st *stats.Stats, dec core.Decider) *GPU {
	g := &GPU{
		cfg:         cfg,
		prog:        prog,
		mem:         mem,
		fab:         fab,
		st:          st,
		dec:         dec,
		bufmgr:      core.NewBufferManager(cfg),
		smPeriod:    timing.PeriodFromMHz(cfg.GPU.SMClockMHz),
		wtaInflight: make([]int64, cfg.NumHMCs),
	}
	if r, ok := dec.(accessRecorder); ok {
		g.rec = r
	}
	for _, b := range prog.Blocks {
		g.blocks = append(g.blocks, &coreBlock{
			id:          b.ID,
			begPC:       b.BegPC,
			endPC:       b.EndPC,
			numLD:       b.NumLD,
			numST:       b.NumST,
			regsIn:      b.RegsIn,
			regsOut:     b.RegsOut,
			instrs:      b.EndPC - b.BegPC - 1,
			indirect:    b.Indirect,
			nsuCodeSize: len(b.NSUCode) * isa.InstrBytes,
		})
	}
	for i := 0; i < cfg.GPU.NumSMs; i++ {
		g.sms = append(g.sms, newSM(g, i))
	}
	if cfg.NSU.ReadOnlyCacheBytes > 0 {
		geom := config.CacheGeom{
			SizeBytes: cfg.NSU.ReadOnlyCacheBytes,
			Ways:      8,
			LineBytes: cfg.LineBytes(),
			MSHRs:     1,
		}
		for i := 0; i < cfg.NumHMCs; i++ {
			g.nsuDir = append(g.nsuDir, cache.New(geom))
		}
	}
	sliceGeom := cfg.GPU.L2
	sliceGeom.SizeBytes /= cfg.NumHMCs
	lat := timing.PS(cfg.GPU.L2Latency) * timing.PeriodFromMHz(cfg.GPU.XbarClockMHz)
	for h := 0; h < cfg.NumHMCs; h++ {
		g.slices = append(g.slices, newL2Slice(g, h, sliceGeom, lat))
	}
	return g
}

// BufferManager exposes the credit manager (the NSUs return credits to it).
func (g *GPU) BufferManager() *core.BufferManager { return g.bufmgr }

// SetFault attaches the fault injector and the resilient-offload protocol
// parameters (§ fault model): the first-attempt ack timeout in SM cycles and
// the retry budget before a block falls back to host execution.
func (g *GPU) SetFault(inj *fault.Injector, timeoutCycles int64, maxRetries int) {
	g.flt = inj
	g.timeoutCycles = timeoutCycles
	g.maxRetries = maxRetries
}

// attemptDeadline computes the timeout deadline for a retry attempt
// (exponential backoff, base timeoutCycles).
func (g *GPU) attemptDeadline(now timing.PS, attempt int) timing.PS {
	return now + timing.PS(fault.Backoff(g.timeoutCycles, attempt))*g.smPeriod
}

// targetHealthy reports whether stack t can accept new offloads: not
// administratively quarantined and its NSU not known-dead at now. The
// first time a schedule-failed NSU is observed here the GPU converts the
// detection into an administrative quarantine, so the stack is excluded
// from selection and its credits exempted even when the failure fired
// while no offload was in flight.
func (g *GPU) targetHealthy(now timing.PS, t int) bool {
	if g.bufmgr.Quarantined(t) {
		return false
	}
	if g.flt.NSUFailed(now, t) {
		g.quarantineTarget(t)
		return false
	}
	return true
}

// quarantineTarget excludes stack t from future offload target selection and
// exempts its credits from conservation accounting (the resilient protocol's
// administrative quarantine on retry exhaustion or NSU death).
func (g *GPU) quarantineTarget(t int) {
	if g.bufmgr.Quarantined(t) {
		return
	}
	g.bufmgr.Quarantine(t)
	g.st.QuarantinedNSUs++
}

// ForEachCache invokes fn on every cache structure in the GPU: per-SM
// L1D/L1I/TLB, the per-partition L2 slice tags, and the NSU read-only-cache
// mirror when that extension is enabled. The invariant auditor snapshots the
// cache list through this once at attach time; fn must not mutate.
func (g *GPU) ForEachCache(fn func(name string, c *cache.Cache)) {
	for i, sm := range g.sms {
		fn(fmt.Sprintf("sm%d/l1d", i), sm.l1)
		fn(fmt.Sprintf("sm%d/l1i", i), sm.l1i)
		fn(fmt.Sprintf("sm%d/tlb", i), sm.tlb)
	}
	for i, s := range g.slices {
		fn(fmt.Sprintf("l2slice%d", i), s.tags)
	}
	for i, d := range g.nsuDir {
		fn(fmt.Sprintf("nsudir%d", i), d)
	}
}

// Blocks returns the static block descriptors as decider BlockInfo.
func BlockInfos(prog *analyzer.Program) []core.BlockInfo {
	infos := make([]core.BlockInfo, len(prog.Blocks))
	for i, b := range prog.Blocks {
		infos[i] = core.BlockInfo{
			NumLD:    b.NumLD,
			NumST:    b.NumST,
			RegsIn:   len(b.RegsIn),
			RegsOut:  len(b.RegsOut),
			Indirect: b.Indirect,
		}
	}
	return infos
}

// sliceFor maps a line address to its L2 slice (one per memory partition).
func (g *GPU) sliceFor(line uint64) *l2slice { return g.slices[g.mem.HMCOf(line)] }

// SetParallel switches the SM array to sharded compute/commit execution on
// pool: per-SM statistics bundles, fabric outboxes, WTA in-flight deltas, and
// (for the cache-aware decider) profile shards replace the shared structures,
// and everything folds back deterministically at tick barriers or run
// finalization. fusion folds the SMs into that many supershards for pool
// dispatch (clamped to [1, NumSMs]); quiesce enables barrier elision on
// phases with fewer than two busy SMs. Returns false — leaving the SM phase
// serial — when the NSU read-only-cache mirror is enabled, whose shared
// directory the SMs mutate on their hot path.
func (g *GPU) SetParallel(pool *timing.Pool, fusion int, quiesce bool) bool {
	if g.nsuDir != nil {
		return false
	}
	g.pool = pool
	g.seq = timing.NewSequencer(len(g.sms))
	if fusion < 1 {
		fusion = 1
	}
	if fusion > len(g.sms) {
		fusion = len(g.sms)
	}
	g.fusion = fusion
	g.quiesce = quiesce
	switch g.dec.(type) {
	case core.Never, core.Always:
		g.decPure = true
	}
	if ca, ok := g.dec.(*core.CacheAware); ok {
		g.ca = ca
	}
	for _, s := range g.sms {
		s.st = stats.New()
		s.outbox = noc.NewOutbox(g.fab, g.bufmgr)
		s.sender = s.outbox
		s.wtaDelta = make([]int64, g.cfg.NumHMCs)
		if g.ca != nil {
			s.prof = g.ca.NewShard()
		}
	}
	return true
}

// ShardStats returns the per-SM statistics bundles (parallel mode only), for
// the finalize-time fold into the run's main bundle.
func (g *GPU) ShardStats() []*stats.Stats {
	if g.pool == nil {
		return nil
	}
	out := make([]*stats.Stats, len(g.sms))
	for i, s := range g.sms {
		out[i] = s.st
	}
	return out
}

// Tick advances all SMs by one core clock and runs the epoch controller.
func (g *GPU) Tick(now timing.PS) {
	g.cycles++
	if g.pool == nil {
		for _, sm := range g.sms {
			if sm.idleValid && sm.idleWake > now {
				// Parked: the elided edges fold into pendingIdle lazily at the
				// SM's next visit (tick's gap credit) or read (syncIdle).
				continue
			}
			sm.tick(now)
		}
	} else {
		g.tickParallel(now)
	}
	// Fold the per-SM offload-region instruction counts (fed by both the SM
	// phase and crossbar-phase ack deliveries) before the epoch check reads
	// the total; the check only ever observes the sum at tick granularity,
	// so buffering per SM is invisible to it.
	for _, sm := range g.sms {
		if sm.regionInstrs != 0 {
			g.regionInstrs += sm.regionInstrs
			sm.regionInstrs = 0
		}
	}
	if g.cycles%g.cfg.NDP.EpochCycles == 0 {
		g.dec.EpochTick(g.regionInstrs)
		g.regionInstrs = 0
		g.st.RatioTrace = append(g.st.RatioTrace, g.dec.Ratio())
	}
	if g.spanSink != nil {
		g.drainSpans()
	}
}

// SetSpanSink attaches the offload round-trip consumer (metrics layer).
func (g *GPU) SetSpanSink(s SpanSink) { g.spanSink = s }

// drainSpans forwards buffered offload spans to the sink in SM index order,
// the same order the serial executor would have produced them in.
func (g *GPU) drainSpans() {
	for i, sm := range g.sms {
		for _, sp := range sm.spans {
			g.spanSink.OffloadSpan(i, sp.warp, sp.block, sp.start, sp.dur)
		}
		sm.spans = sm.spans[:0]
	}
}

// DrainSpans flushes any spans still buffered on the SMs (called once at run
// finalization, before the metrics collector takes its final sample).
func (g *GPU) DrainSpans() {
	if g.spanSink != nil {
		g.drainSpans()
	}
}

// SMOffloadCounters returns SM i's monotonic offload-decision counters: blocks
// whose OFLDBEG the SM reached, and the subset the decider sent to an NSU.
// They are maintained unconditionally on the SM (plain integer adds beside the
// statistics counters) so enabling metrics cannot perturb simulation results.
func (g *GPU) SMOffloadCounters(i int) (seen, sent int64) {
	return g.sms[i].mSeen, g.sms[i].mSent
}

// L1DSnapshot sums the per-SM L1D counters without flushing deferred idle
// cycles — a side-effect-free mid-run read for the metrics sampler. Hit and
// access counts are exact at tick granularity; only NoIssue classification
// lags, which the snapshot does not expose.
func (g *GPU) L1DSnapshot() stats.CacheStats {
	var l1 stats.CacheStats
	for _, sm := range g.sms {
		c := sm.l1.Stats
		l1.Accesses += c.Accesses
		l1.Hits += c.Hits
		l1.MSHRStalls += c.MSHRStalls
		l1.Evictions += c.Evictions
		l1.Fills += c.Fills
		l1.Invalidations += c.Invalidations
	}
	return l1
}

// L2Snapshot sums the per-slice L2 counters (side-effect-free mid-run read).
func (g *GPU) L2Snapshot() stats.CacheStats {
	var l2 stats.CacheStats
	for _, s := range g.slices {
		c := s.tags.Stats
		l2.Accesses += c.Accesses
		l2.Hits += c.Hits
		l2.MSHRStalls += c.MSHRStalls
		l2.Evictions += c.Evictions
		l2.Fills += c.Fills
		l2.Invalidations += c.Invalidations
	}
	return l2
}

// tickParallel runs one SM clock as a compute/commit pair. The serial
// prologue performs each SM's CTA launch in index order — the shared grid
// cursor advances exactly as the serial loop would, and each SM freezes its
// post-launch cursor snapshot for idle certification. The compute phase then
// ticks every SM, fused into supershards on the worker pool (cross-shard
// effects defer into per-SM buffers; rare order-sensitive operations run
// through the sequencer at their serial position) — or inline on the
// coordinating goroutine when fewer than two SMs are busy (quiescent-phase
// elision: the inline schedule is the serial loop, so nothing observable
// changes and no workers are woken). The commit phase replays the buffers in
// SM index order either way.
func (g *GPU) tickParallel(now timing.PS) {
	busy := 0
	for _, s := range g.sms {
		if s.idleValid && s.idleWake > now {
			continue // the tick takes the idle fast path: no launch attempt
		}
		busy++
		if gap := g.cycles - 1 - s.seenCycle; gap > 0 {
			// Domain-level skips no longer push per-SM credit eagerly: fold
			// the elided edges before the flush, exactly as a serial dense
			// tick would.
			s.pendingIdle += gap
			s.seenCycle = g.cycles - 1
		}
		s.flushIdle()
		s.idleValid = false
		pre := g.nextCTA
		s.refill()
		s.launched = g.nextCTA != pre
		s.ctaSnap = g.nextCTA
		s.prelaunched = true
	}
	g.seq.Begin(len(g.sms))
	g.smPhase = true
	if (g.quiesce && busy < 2) || g.fusion <= 1 {
		for i := range g.sms {
			g.sms[i].tick(now)
			g.seq.Finish(i)
		}
	} else {
		g.pool.RunFused(len(g.sms), g.fusion, func(i int) {
			g.sms[i].tick(now)
			g.seq.Finish(i)
		})
	}
	g.smPhase = false
	for _, s := range g.sms {
		s.commit()
	}
	if g.ca != nil {
		// Any profile records not already folded by a sequenced decision.
		for _, s := range g.sms {
			g.ca.FoldShard(s.prof)
		}
	}
	for _, s := range g.sms {
		for h, d := range s.wtaDelta {
			if d != 0 {
				g.wtaInflight[h] += d
				s.wtaDelta[h] = 0
			}
		}
	}
}

// NextWorkAt implements timing.IdleHint for the SM clock domain: a pure read
// over the per-SM mirror caches, which empty dense ticks maintain. The epoch
// controller runs on a fixed cycle timer that must fire densely, so the wake
// time never crosses the next epoch boundary.
func (g *GPU) NextWorkAt(now timing.PS) timing.PS {
	if TraceGTID >= 0 {
		return now // per-cycle trace prints: never skip
	}
	wake := timing.Never
	for _, sm := range g.sms {
		w := sm.nextWorkAt(now)
		if w <= now {
			return now
		}
		if w < wake {
			wake = w
		}
	}
	boundary := timing.NextBoundary(g.cycles, g.cfg.NDP.EpochCycles, g.smPeriod)
	if boundary < wake {
		wake = boundary
	}
	return wake
}

// SkipIdle implements timing.IdleSkipper: credit n provably-empty SM cycles.
// Only the global cycle counter advances here; each SM folds its share of the
// gap into its pending-idle batch lazily — at its next visited tick or via
// syncIdle before a counter read — using its seenCycle watermark. The epoch
// counter check is safe to omit because NextWorkAt never lets a skip reach an
// epoch boundary cycle.
func (g *GPU) SkipIdle(n int64) {
	g.cycles += n
}

// xbarTicker drives XbarTick with an idle hint: the crossbar domain has
// work exactly when an L2 slice has queued requests (including head-blocked
// retries, which charge MSHR stalls each cycle) or an inbox message has
// arrived or is scheduled. Slice fills are triggered by inbox arrivals, so
// waiters need no separate wake term.
type xbarTicker struct{ g *GPU }

// Tick implements timing.Ticker.
func (x xbarTicker) Tick(now timing.PS) { x.g.XbarTick(now) }

// NextWorkAt implements timing.IdleHint.
func (x xbarTicker) NextWorkAt(now timing.PS) timing.PS {
	for _, s := range x.g.slices {
		if len(s.queue) > 0 {
			return now
		}
	}
	if at, ok := x.g.fab.GPUInbox().NextAt(); ok {
		if at <= now {
			return now
		}
		return at
	}
	return timing.Never
}

// XbarTicker returns the crossbar-domain ticker for this GPU.
func (g *GPU) XbarTicker() timing.Ticker { return xbarTicker{g} }

// SetWakeHook installs the SM-domain re-arm callback (wake scheduling).
func (g *GPU) SetWakeHook(f func()) { g.onWake = f }

// SetXbarWakeHook installs the crossbar-domain re-arm callback.
func (g *GPU) SetXbarWakeHook(f func()) { g.onXbarWake = f }

// XbarTick routes arrived messages and serves the L2 slices (crossbar/L2
// clock domain).
func (g *GPU) XbarTick(now timing.PS) {
	inbox := g.fab.GPUInbox()
	for {
		msg, ok := inbox.Pop(now)
		if !ok {
			break
		}
		switch m := msg.(type) {
		case *core.ReadResp:
			g.sliceFor(m.LineAddr).fill(m.LineAddr, now)
		case *core.AckPacket:
			g.st.AckPackets++
			g.sms[m.ID.SM].deliverAck(m, now)
		case *core.InvalPacket:
			g.st.InvalPackets++
			g.st.InvalBytes += int64(m.Size())
			g.sliceFor(m.LineAddr).invalidate(m.LineAddr)
			for _, sm := range g.sms {
				sm.l1.Invalidate(m.LineAddr)
			}
			g.invalidateNSUDirs(m.LineAddr)
			if g.flt == nil {
				// Under fault injection the WTA in-flight ledger is disabled
				// (retransmits and aborted NSU warps would unbalance it), so
				// only decrement on the exactly-once path.
				g.wtaInflight[m.HomeHMC]--
			}
		default:
			panic("gpu: unexpected message in GPU inbox")
		}
	}
	for _, s := range g.slices {
		s.tick(now)
	}
}

// WTAInflight returns the in-flight WTA count for one HMC (the dynamic
// memory management hook of §4.1.1).
func (g *GPU) WTAInflight(hmc int) int64 { return g.wtaInflight[hmc] }

// PageFillsOutstanding reports whether any L2 slice still waits on a line
// fill within the page — migrating the page would strand the response at
// the old home's slice.
func (g *GPU) PageFillsOutstanding(pageBase uint64, pageBytes int) bool {
	for _, s := range g.slices {
		for line := range s.waiters {
			if line >= pageBase && line < pageBase+uint64(pageBytes) {
				return true
			}
		}
	}
	return false
}

// Done reports whether the kernel has fully retired on the GPU side.
func (g *GPU) Done() bool {
	if g.nextCTA < g.prog.Kernel.GridDim {
		return false
	}
	for _, sm := range g.sms {
		if sm.busy() {
			return false
		}
	}
	for _, s := range g.slices {
		if !s.idle() {
			return false
		}
	}
	return true
}

// Cycles returns elapsed SM cycles.
func (g *GPU) Cycles() int64 { return g.cycles }

// CollectCacheStats aggregates per-SM L1 and per-slice L2 statistics into
// the run's stats bundle.
func (g *GPU) CollectCacheStats() {
	var l1 stats.CacheStats
	for _, sm := range g.sms {
		sm.syncIdle() // apply deferred + engine-elided idle cycles first
		c := sm.l1.Stats
		l1.Accesses += c.Accesses
		l1.Hits += c.Hits
		l1.MSHRStalls += c.MSHRStalls
		l1.Evictions += c.Evictions
		l1.Fills += c.Fills
		l1.Invalidations += c.Invalidations
	}
	g.st.L1D = l1
	var l1i stats.CacheStats
	for _, sm := range g.sms {
		c := sm.l1i.Stats
		l1i.Accesses += c.Accesses
		l1i.Hits += c.Hits
		l1i.Fills += c.Fills
	}
	g.st.L1I = l1i
	var tlb stats.CacheStats
	for _, sm := range g.sms {
		c := sm.tlb.Stats
		tlb.Accesses += c.Accesses
		tlb.Hits += c.Hits
		tlb.Fills += c.Fills
	}
	g.st.TLB = tlb
	var l2 stats.CacheStats
	for _, s := range g.slices {
		c := s.tags.Stats
		l2.Accesses += c.Accesses
		l2.Hits += c.Hits
		l2.MSHRStalls += c.MSHRStalls
		l2.Evictions += c.Evictions
		l2.Fills += c.Fills
		l2.Invalidations += c.Invalidations
	}
	g.st.L2 = l2
}

// shipCachedLine either sends the full cached-line data to the target NSU
// or, with the §7.1 read-only cache extension, a small reference when the
// NSU already holds the line. Returns the packet and its size.
func (g *GPU) shipCachedLine(rdf *core.RDFPacket) (msg any, size int) {
	if g.nsuDir != nil {
		dir := g.nsuDir[rdf.Target]
		if dir.Lookup(rdf.Access.LineAddr) {
			ref := &core.RDFRef{ID: rdf.ID, Tag: rdf.Tag, Seq: rdf.Seq, Access: rdf.Access, TotalPkts: rdf.TotalPkts}
			return ref, ref.Size()
		}
		dir.Fill(rdf.Access.LineAddr)
	}
	resp := g.makeRDFResp(rdf)
	resp.FromCache = true
	return resp, resp.Size()
}

// invalidateNSUDirs drops a written line from every NSU directory so a
// stale read-only copy is never referenced again.
func (g *GPU) invalidateNSUDirs(line uint64) {
	for _, d := range g.nsuDir {
		d.Invalidate(line)
	}
}

// TraceGTID, when >= 0, dumps per-instruction execution of the warp whose
// lane-0 global thread id matches. Debug aid; zero overhead when unset.
var TraceGTID int64 = -1
