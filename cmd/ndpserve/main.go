// Command ndpserve is the long-running simulation service: an HTTP/JSON
// server that accepts run requests (workload x mode x config overrides x
// seed x fault schedule), schedules them on a bounded worker pool, and
// memoizes completed results by request content digest — a repeated request
// costs a map lookup, not a full simulation.
//
// Usage:
//
//	ndpserve -addr :8347 -workers 8 -queue 1024
//
// Endpoints:
//
//	POST /run      submit a run; ?stream=1 upgrades to SSE progress events
//	GET  /status   scheduler counters (JSON)
//	GET  /metrics  the same counters, one per line
//	GET  /healthz  liveness
//
// Example:
//
//	curl -s localhost:8347/run -d '{"workload":"VADD","mode":"dyn"}'
//
// SIGINT/SIGTERM drain gracefully: admission stops (503), every
// acknowledged request — queued or running — completes and is answered,
// then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ndpgpu/internal/experiments"
	"ndpgpu/internal/prof"
	"ndpgpu/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() { <-sig; close(stop) }()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop, nil))
}

// run is the whole server behind a testable seam: parse flags, serve until
// stop closes, drain, and return the process exit status. ready (when
// non-nil) receives the bound listen address once the server accepts
// connections.
func run(args []string, w, werr io.Writer, stop <-chan struct{}, ready func(addr string)) int {
	fs := flag.NewFlagSet("ndpserve", flag.ContinueOnError)
	fs.SetOutput(werr)
	var (
		addr    = fs.String("addr", ":8347", "listen address")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
		queue   = fs.Int("queue", 1024, "admission queue capacity (429 beyond it)")
		retry   = fs.Duration("retryafter", time.Second, "Retry-After hint on backpressure")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := prof.StartOpts(prof.Options{CPU: *cpuProf, Mem: *memProf})
	if err != nil {
		fmt.Fprintln(werr, "ndpserve:", err)
		return 1
	}
	defer stopProf()

	sched := serve.New(serve.Options{
		Workers:    *workers,
		QueueCap:   *queue,
		Runner:     experiments.ServeRunner(),
		RetryAfter: *retry,
	})
	srv := &http.Server{Handler: serve.NewServer(sched)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(werr, "ndpserve:", err)
		return 1
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	fmt.Fprintf(w, "ndpserve: listening on %s (%d workers, queue %d)\n",
		ln.Addr(), *workers, *queue)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(werr, "ndpserve:", err)
		sched.Shutdown()
		return 1
	case <-stop:
	}

	// Drain: stop admitting (every new submit gets 503), finish every
	// acknowledged run, then close the HTTP side, whose in-flight handlers
	// have all been answered by the drain.
	fmt.Fprintln(w, "ndpserve: draining...")
	sched.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(werr, "ndpserve: shutdown:", err)
		return 1
	}
	snap := sched.Snapshot()
	fmt.Fprintf(w, "ndpserve: drained (%d executed, %d cache hits, %d coalesced)\n",
		snap.Executed, snap.CacheHits, snap.Coalesced)
	return 0
}
