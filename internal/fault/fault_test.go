package fault

import (
	"math"
	"reflect"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/timing"
)

func TestBackoff(t *testing.T) {
	cases := []struct {
		base    int64
		attempt int
		want    int64
	}{
		{100, 0, 100},
		{100, 1, 200},
		{100, 2, 400},
		{100, 3, 800},
		{2000, 0, 2000},
		{2000, 3, 16000},
		{100, -5, 100},     // negative attempts clamp to the first try
		{1, 20, 1 << 16},   // shift clamps at 16
		{1, 1000, 1 << 16}, // far past the clamp
		{30000, 16, 30000 << 16},
	}
	for _, c := range cases {
		if got := Backoff(c.base, c.attempt); got != c.want {
			t.Errorf("Backoff(%d, %d) = %d, want %d", c.base, c.attempt, got, c.want)
		}
	}
}

func TestTotalWindow(t *testing.T) {
	cases := []struct {
		base       int64
		maxRetries int
		want       int64
	}{
		{100, 0, 100},      // single attempt, no retry
		{100, 1, 300},      // 100 + 200
		{100, 3, 1500},     // 100 + 200 + 400 + 800
		{2000, 3, 30000},   // the chaos-suite knobs
		{30000, 3, 450000}, // the defaults
	}
	for _, c := range cases {
		if got := TotalWindow(c.base, c.maxRetries); got != c.want {
			t.Errorf("TotalWindow(%d, %d) = %d, want %d", c.base, c.maxRetries, got, c.want)
		}
	}
	// The NSU abort deadline contract: the total window strictly dominates
	// every single attempt's timeout.
	for a := 0; a <= 3; a++ {
		if TotalWindow(2000, 3) <= Backoff(2000, a) {
			t.Fatalf("TotalWindow does not dominate attempt %d", a)
		}
	}
}

func TestParse(t *testing.T) {
	fc, err := Parse(
		"linkdown:t=2000000:hmc=3:dim=1:dur=500000;"+
			"nsustall:t=1000:hmc=0:dur=9000;"+
			"nsufail:t=5000000:hmc=7;"+
			"vaultfreeze:t=1:hmc=2:vault=15:dur=2;"+
			"drop:p=0.01;corrupt:p=0.001;seed=42;timeout=2000;retries=5",
		8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(fc.Events))
	}
	ld := fc.Events[0]
	if ld.Kind != "linkdown" || ld.AtPS != 2000000 || ld.HMC != 3 || ld.Dim != 1 || ld.DurPS != 500000 {
		t.Errorf("linkdown parsed as %+v", ld)
	}
	vf := fc.Events[3]
	if vf.Kind != "vaultfreeze" || vf.Vault != 15 || vf.DurPS != 2 {
		t.Errorf("vaultfreeze parsed as %+v", vf)
	}
	if fc.DropProb != 0.01 || fc.CorruptProb != 0.001 {
		t.Errorf("probs = %v/%v", fc.DropProb, fc.CorruptProb)
	}
	if fc.Seed != 42 || fc.TimeoutCycles != 2000 || fc.MaxRetries != 5 {
		t.Errorf("knobs = seed %d timeout %d retries %d", fc.Seed, fc.TimeoutCycles, fc.MaxRetries)
	}
	if !fc.Enabled() {
		t.Error("parsed schedule not Enabled")
	}

	// Whitespace and empty items are tolerated.
	fc2, err := Parse(" drop:p=0.5 ; ; ", 8, 16)
	if err != nil || fc2.DropProb != 0.5 {
		t.Errorf("whitespace parse: %v %v", fc2.DropProb, err)
	}

	// rand: expands to n deterministic events that pass validation.
	fr1, err := Parse("rand:seed=9:n=6", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr1.Events) != 6 || fr1.Seed != 9 {
		t.Fatalf("rand parse: %d events, seed %d", len(fr1.Events), fr1.Seed)
	}
	fr2, _ := Parse("rand:seed=9:n=6", 8, 16)
	if !reflect.DeepEqual(fr1, fr2) {
		t.Error("rand schedule is not deterministic for a fixed seed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus:t=1:hmc=0",                      // unknown kind
		"linkdown:hmc=0:dim=0",                 // missing t
		"linkdown:t=x:hmc=0",                   // bad integer
		"linkdown:t=1:hmc=9:dim=0",             // hmc out of range (8 stacks)
		"linkdown:t=1",                         // hmc missing -> -1 out of range
		"nsustall:t=1:hmc=0",                   // stall must be windowed
		"vaultfreeze:t=1:hmc=0:vault=99:dur=5", // vault out of range (16 vaults)
		"vaultfreeze:t=1:hmc=0:vault=0",        // freeze must be windowed
		"drop",                                 // missing p
		"drop:p=1.5",                           // probability out of [0,1]
		"corrupt:p=abc",                        // bad float
		"seed=xyz",                             // bad seed
		"timeout=0",                            // timeout must be positive
		"retries=-1",                           // retries must be positive
		"linkdown:t=1:hmc=0:dim",               // malformed field (no '=')
	}
	for _, spec := range cases {
		if _, err := Parse(spec, 8, 16); err == nil {
			t.Errorf("Parse(%q) accepted a bad schedule", spec)
		}
	}
}

func mkInjector(t *testing.T, spec string) *Injector {
	t.Helper()
	fc, err := Parse(spec, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	return New(fc, 8, 16, 3, false)
}

func TestInjectorWindows(t *testing.T) {
	inj := mkInjector(t,
		"nsustall:t=1000:hmc=2:dur=500;"+
			"vaultfreeze:t=2000:hmc=1:vault=3:dur=100;"+
			"nsufail:t=3000:hmc=4;"+
			"linkdown:t=4000:hmc=0:dim=1:dur=1000")

	if at := inj.NextEventAt(); at != 1000 {
		t.Fatalf("first edge at %d, want 1000", at)
	}
	if inj.NSUStalled(999, 2) {
		t.Error("stalled before the window opens")
	}
	if !inj.NSUStalled(1000, 2) || !inj.NSUStalled(1499, 2) {
		t.Error("not stalled inside the window")
	}
	if inj.NSUStalled(1500, 2) {
		t.Error("still stalled after the window closes")
	}
	if !inj.VaultFrozen(2050, 1, 3) || inj.VaultFrozen(2050, 1, 4) {
		t.Error("vault freeze hit the wrong vault")
	}
	if inj.VaultFrozen(2100, 1, 3) {
		t.Error("vault still frozen after the window")
	}
	if inj.NSUFailed(2999, 4) || !inj.NSUFailed(3000, 4) {
		t.Error("nsufail edge did not fire at t=3000")
	}
	if !inj.NSUFailedApplied(4) {
		t.Error("NSUFailedApplied disagrees with the last Apply")
	}

	v0 := inj.TopoVersion(3999)
	if inj.LinkDead(3999, 0, 1) {
		t.Error("link dead before its event")
	}
	if !inj.LinkDead(4000, 0, 1) {
		t.Error("link alive inside its down window")
	}
	if inj.TopoVersion(4000) == v0 {
		t.Error("topology version did not change on link death")
	}
	if inj.LinkDead(5000, 0, 1) {
		t.Error("link still dead after recovery")
	}
	if !inj.NSUFailed(1<<40, 4) {
		t.Error("nsufail without dur is not permanent")
	}
	if at := inj.NextEventAt(); at != timing.Never {
		t.Errorf("exhausted schedule reports next edge at %d", at)
	}
}

func TestLinkdownCanonicalization(t *testing.T) {
	// Hypercube: the event may name either endpoint; state lives at the
	// lower one. hmc=5 dim=1 is the 5-7 link, canonical slot (5,1).
	inj := mkInjector(t, "linkdown:t=0:hmc=7:dim=1")
	if !inj.LinkDead(0, 5, 1) {
		t.Error("hypercube linkdown not canonicalized to the lower endpoint")
	}
	// Ring: odd dims name the counter-clockwise link out of hmc, which is
	// physical link hmc-1 stored at dim 0.
	fc, err := Parse("linkdown:t=0:hmc=3:dim=1", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	ring := New(fc, 8, 16, 2, true)
	if !ring.LinkDead(0, 2, 0) {
		t.Error("ring linkdown not canonicalized to physical link 2")
	}
}

func TestDrawDropDeterminism(t *testing.T) {
	mk := func() *Injector { return mkInjector(t, "drop:p=0.3;corrupt:p=0.1;seed=7") }
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		ad, ac := a.DrawDrop()
		bd, bc := b.DrawDrop()
		if ad != bd || ac != bc {
			t.Fatalf("draw %d diverged between identically-seeded injectors", i)
		}
		if ad && ac {
			t.Fatal("a packet cannot be both dropped and corrupted")
		}
	}
	if a.Drops == 0 || a.Corrupts == 0 {
		t.Errorf("1000 draws at p=0.3/0.1 produced drops=%d corrupts=%d", a.Drops, a.Corrupts)
	}

	// Zero probabilities never drop and consume no PRNG state, so a dormant
	// injector cannot perturb anything through the drop path.
	quiet := mkInjector(t, "nsufail:t=1:hmc=0")
	before := quiet.rng.state
	for i := 0; i < 100; i++ {
		if d, c := quiet.DrawDrop(); d || c {
			t.Fatal("drop with zero probabilities")
		}
	}
	if quiet.rng.state != before {
		t.Error("zero-probability DrawDrop consumed PRNG state")
	}
}

func TestCommitBoard(t *testing.T) {
	inj := mkInjector(t, "nsufail:t=1:hmc=0")
	id := core.OffloadID{SM: 2, Warp: 5}
	if inj.InstanceCommitted(id, 0) {
		t.Fatal("empty board reports a commit")
	}
	inj.CommitInstance(id, 3)
	if !inj.InstanceCommitted(id, 3) {
		t.Fatal("posted commit not visible")
	}
	if inj.InstanceCommitted(id, 2) || inj.InstanceCommitted(id, 4) {
		t.Fatal("commit record matched a different instance")
	}
	inj.ForgetInstance(id)
	if inj.InstanceCommitted(id, 3) {
		t.Fatal("forgotten commit still visible")
	}
}

func TestAbandonBoard(t *testing.T) {
	inj := mkInjector(t, "nsufail:t=1:hmc=0")
	id := core.OffloadID{SM: 1, Warp: 7}
	if inj.InstanceAbandoned(id, 0) {
		t.Fatal("empty board reports an abandon")
	}
	inj.AbandonInstance(id, 4)
	if !inj.InstanceAbandoned(id, 4) {
		t.Fatal("posted abandon not visible")
	}
	if inj.InstanceAbandoned(id, 3) || inj.InstanceAbandoned(id, 5) {
		t.Fatal("abandon record matched a different instance")
	}
	// A later instance of the same warp slot overwrites the record: the
	// board stays bounded by one entry per slot.
	inj.AbandonInstance(id, 9)
	if inj.InstanceAbandoned(id, 4) {
		t.Fatal("overwritten abandon still visible")
	}
	if !inj.InstanceAbandoned(id, 9) {
		t.Fatal("newer abandon not visible")
	}
}

func TestRandomEventsValid(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		evs := RandomEvents(seed, 8, 8, 16)
		if len(evs) != 8 {
			t.Fatalf("seed %d: %d events, want 8", seed, len(evs))
		}
		fc := config.FaultConfig{Events: evs}
		if err := fc.Validate(8, 16); err != nil {
			t.Errorf("seed %d: invalid random schedule: %v", seed, err)
		}
	}
}

func TestEmptyScheduleRoundTrip(t *testing.T) {
	// An empty schedule — however it is spelled — must round-trip to a
	// disabled FaultConfig: the zero-cost contract hinges on Enabled()
	// being false so no Injector is ever constructed.
	for _, spec := range []string{"", " ", ";", " ; ; ", ";;;"} {
		fc, err := Parse(spec, 8, 16)
		if err != nil {
			t.Errorf("Parse(%q) rejected an empty schedule: %v", spec, err)
			continue
		}
		if len(fc.Events) != 0 {
			t.Errorf("Parse(%q) produced %d events, want 0", spec, len(fc.Events))
		}
		if fc.Enabled() {
			t.Errorf("Parse(%q): empty schedule reports Enabled", spec)
		}
		if err := fc.Validate(8, 16); err != nil {
			t.Errorf("Parse(%q): empty schedule fails Validate: %v", spec, err)
		}
		// Even if a caller violates the nil-pointer contract and builds an
		// injector anyway, it must be inert: no edges, no next event.
		inj := New(fc, 8, 16, 3, false)
		if at := inj.NextEventAt(); at != timing.Never {
			t.Errorf("Parse(%q): empty injector has an edge at %d", spec, at)
		}
		if d, c := inj.DrawDrop(); d || c {
			t.Errorf("Parse(%q): empty injector dropped a packet", spec)
		}
	}
}

func TestOverlappingWindowsOneLink(t *testing.T) {
	// Two overlapping down-windows on the same link. Edge application is a
	// boolean write, not a counter: the first window's end edge revives the
	// link at t=2000 even though the second window [1500,2500) is still
	// open, and the second end edge at t=2500 is then a no-op. This is the
	// documented semantics — schedules wanting a continuous outage should
	// use one window — and this test pins it so a change is deliberate.
	inj := mkInjector(t,
		"linkdown:t=1000:hmc=0:dim=0:dur=1000;"+
			"linkdown:t=1500:hmc=0:dim=0:dur=1000")
	v0 := inj.TopoVersion(0)
	steps := []struct {
		now  timing.PS
		dead bool
	}{
		{999, false},  // before either window
		{1000, true},  // first start edge
		{1499, true},  // still inside window one
		{1500, true},  // second start edge (already-down link stays down)
		{1999, true},  // both windows open
		{2000, false}, // first END edge wins: boolean semantics revive the link
		{2499, false}, // stays up despite window two nominally covering this
		{2500, false}, // second end edge is a no-op
		{9999, false}, // long after
	}
	for _, s := range steps {
		if got := inj.LinkDead(s.now, 0, 0); got != s.dead {
			t.Errorf("LinkDead at %d = %v, want %v", s.now, got, s.dead)
		}
	}
	// Every one of the four edges flips a link bit, so each bumps the
	// topology version — including the no-op second end edge, which is a
	// write of the value already present but still invalidates routes.
	if v1 := inj.TopoVersion(9999); v1-v0 != 4 {
		t.Errorf("topology version advanced by %d across 4 link edges, want 4", v1-v0)
	}
}

func TestZeroDurationEvents(t *testing.T) {
	// dur=0 means "permanent" for the kinds where that is physical
	// (linkdown, nsufail) and is rejected by validation for the kinds that
	// are windows by definition (nsustall, vaultfreeze).
	inj := mkInjector(t, "linkdown:t=500:hmc=0:dim=0")
	if inj.LinkDead(499, 0, 0) {
		t.Error("permanent linkdown active before its start edge")
	}
	for _, now := range []timing.PS{500, 1 << 20, 1 << 40, math.MaxInt64} {
		if !inj.LinkDead(now, 0, 0) {
			t.Errorf("zero-duration linkdown not permanent at %d", now)
		}
	}

	rejected := []struct {
		spec string
		why  string
	}{
		{"nsustall:t=1:hmc=0:dur=0", "a stall with no window is meaningless"},
		{"vaultfreeze:t=1:hmc=0:vault=0:dur=0", "a freeze with no window is meaningless"},
		{"nsustall:t=1:hmc=0", "omitted dur defaults to 0 and is equally invalid"},
	}
	for _, c := range rejected {
		if _, err := Parse(c.spec, 8, 16); err == nil {
			t.Errorf("Parse(%q) accepted a zero-duration window (%s)", c.spec, c.why)
		}
	}
}

func TestMaxBounds(t *testing.T) {
	// Saturation at the int64 ceiling: timestamps, backoff shifts, and
	// window sums must clamp to MaxInt64 ("never"), not wrap negative —
	// a negative deadline would fire instantly and poison retry logic.
	cases := []struct {
		name string
		got  int64
		want int64
	}{
		{"Backoff saturates", Backoff(math.MaxInt64/2, 2), math.MaxInt64},
		{"Backoff at exact ceiling", Backoff(math.MaxInt64, 0), math.MaxInt64},
		{"Backoff clamp then saturate", Backoff(1<<50, 1000), math.MaxInt64},
		{"Backoff below ceiling unchanged", Backoff(1<<20, 3), 1 << 23},
		{"TotalWindow saturates", TotalWindow(math.MaxInt64/2, 3), math.MaxInt64},
		{"TotalWindow sum overflow", TotalWindow(math.MaxInt64/4+1, 2), math.MaxInt64},
		{"TotalWindow below ceiling unchanged", TotalWindow(100, 3), 1500},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %d, want %d", c.name, c.got, c.want)
		}
		if c.got < 0 {
			t.Errorf("%s: wrapped negative (%d)", c.name, c.got)
		}
	}

	// A timestamp at the int64 ceiling parses and schedules.
	fc, err := Parse("nsufail:t=9223372036854775807:hmc=0", 8, 16)
	if err != nil {
		t.Fatalf("MaxInt64 timestamp rejected: %v", err)
	}
	inj := New(fc, 8, 16, 3, false)
	if at := inj.NextEventAt(); at != math.MaxInt64 {
		t.Errorf("ceiling event scheduled at %d", at)
	}
	if inj.NSUFailed(math.MaxInt64-1, 0) {
		t.Error("ceiling event fired early")
	}
	if !inj.NSUFailed(math.MaxInt64, 0) {
		t.Error("ceiling event never fired")
	}

	// A window whose end would overflow AtPS+DurPS emits only its start
	// edge: the fault becomes permanent instead of ending at a negative
	// (i.e. instantly-past) timestamp.
	fc2, err := Parse("linkdown:t=9223372036854775000:hmc=0:dim=0:dur=9000000", 8, 16)
	if err != nil {
		t.Fatalf("overflowing window rejected at parse: %v", err)
	}
	inj2 := New(fc2, 8, 16, 3, false)
	if len(inj2.edges) != 1 {
		t.Fatalf("overflowing window expanded to %d edges, want 1 (start only)", len(inj2.edges))
	}
	if !inj2.LinkDead(math.MaxInt64, 0, 0) {
		t.Error("overflow-window linkdown not permanent")
	}
}
