// Package report renders experiment results as aligned text, CSV, or
// Markdown tables. It is the output layer for cmd/ndpsweep's export mode
// and for anyone consuming the experiments package programmatically.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title string
	Cols  []string
	rows  [][]string
}

// New creates a table with the given title and column headers. The first
// column is conventionally the row label (workload name).
func New(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Cols))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddFloats appends a row with a string label and formatted float cells.
func (t *Table) AddFloats(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.3f", v))
	}
	t.AddRow(cells...)
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders an aligned plain-text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Cols); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (header row first; the title is not
// included).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Cols, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Cols))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}
