package sim

import (
	"math/rand"
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/interp"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/vm"
)

// randomKernel builds a random straight-line kernel over two input arrays
// and one output array. Every generated program is race-free (each thread
// writes only its own output slots) and in-bounds, so baseline and
// partitioned execution must produce bit-identical memory.
func randomKernel(rng *rand.Rand, mem *vm.System, n int) (*kernel.Kernel, uint64, int) {
	a := mem.Alloc(4 * n)
	b := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n * 4) // up to 4 output slots per thread
	for i := 0; i < n; i++ {
		mem.WriteF32(a+uint64(4*i), rng.Float32()*16-8)
		mem.WriteF32(b+uint64(4*i), rng.Float32()*16-8)
	}

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2) // element offset
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Op3(isa.ADD, 18, kernel.RegParam0+1, 16)
	kb.OpImm(isa.SHLI, 19, kernel.RegGTID, 4) // 4 slots x 4 B
	kb.Op3(isa.ADD, 19, kernel.RegParam0+2, 19)

	// A predicate from the thread id (warp-divergent but GPU-computable).
	kb.OpImm(isa.ANDI, 20, kernel.RegGTID, 1)

	// Live value registers start with two loads.
	live := []isa.Reg{24, 25}
	kb.Ld(24, 17, 0)
	kb.Ld(25, 18, 0)
	next := isa.Reg(26)
	stores := 0
	aluOps := []isa.Opcode{isa.FADD, isa.FSUB, isa.FMUL, isa.ADD, isa.XOR, isa.MIN, isa.MAX}

	steps := 4 + rng.Intn(10)
	for s := 0; s < steps; s++ {
		switch rng.Intn(5) {
		case 0, 1: // ALU on two live values
			op := aluOps[rng.Intn(len(aluOps))]
			x := live[rng.Intn(len(live))]
			y := live[rng.Intn(len(live))]
			pc := kb.Op3(op, next, x, y)
			if rng.Intn(3) == 0 {
				kb.Predicate(pc, 20, rng.Intn(2) == 0)
			}
			live = append(live, next)
			next++
		case 2: // another load, sometimes predicated
			src := isa.Reg(17)
			if rng.Intn(2) == 0 {
				src = 18
			}
			pc := kb.Ld(next, src, 0)
			if rng.Intn(3) == 0 {
				kb.Predicate(pc, 20, false)
			}
			live = append(live, next)
			next++
		case 3: // fused multiply-add
			x := live[rng.Intn(len(live))]
			y := live[rng.Intn(len(live))]
			z := live[rng.Intn(len(live))]
			kb.Op4(isa.FMA, next, x, y, z)
			live = append(live, next)
			next++
		case 4: // store to a private slot
			if stores < 4 {
				v := live[rng.Intn(len(live))]
				pc := kb.St(19, int64(4*stores), v)
				if rng.Intn(3) == 0 {
					kb.Predicate(pc, 20, false)
				}
				stores++
			}
		}
		if next >= 60 {
			break
		}
	}
	// Guarantee at least one store so there is observable output.
	if stores == 0 {
		kb.St(19, 0, live[len(live)-1])
		stores = 1
	}
	kb.Exit()
	return kb.MustBuild("fuzz", n/64, 64, a, b, out), out, stores
}

// TestDifferentialFuzz runs randomly generated kernels under baseline and
// full offload and requires bit-identical output memory — the strongest
// functional check of partitioned execution.
func TestDifferentialFuzz(t *testing.T) {
	const n = 512
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		cfg := config.Default()
		cfg.GPU.NumSMs = 2

		type result struct {
			words []uint32
		}
		runMode := func(mode Mode) result {
			mem := vm.New(cfg)
			// The same kernel-generator seed per mode yields the same
			// program and data over identically laid-out memory.
			kernelRng := rand.New(rand.NewSource(int64(7777 + trial)))
			k, out, stores := randomKernel(kernelRng, mem, n)
			m, err := Launch(cfg, k, mem, mode)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if _, err := m.Run(0); err != nil {
				t.Fatalf("trial %d (%s): %v", trial, mode.Name, err)
			}
			words := make([]uint32, n*stores)
			for i := 0; i < n; i++ {
				for s := 0; s < stores; s++ {
					words[i*stores+s] = uint32(memRead(mem, out+uint64(16*i+4*s)))
				}
			}
			return result{words: words}
		}

		// Third leg: the reference interpreter, independent of all timing
		// and protocol machinery.
		ref := func() result {
			mem := vm.New(cfg)
			kernelRng := rand.New(rand.NewSource(int64(7777 + trial)))
			k, out, stores := randomKernel(kernelRng, mem, n)
			if err := interp.Run(k, mem); err != nil {
				t.Fatalf("trial %d: interp: %v", trial, err)
			}
			words := make([]uint32, n*stores)
			for i := 0; i < n; i++ {
				for s := 0; s < stores; s++ {
					words[i*stores+s] = mem.Read32(out + uint64(16*i+4*s))
				}
			}
			return result{words: words}
		}()

		base := runMode(Baseline)
		ndp := runMode(NaiveNDP)
		if len(base.words) != len(ndp.words) || len(base.words) != len(ref.words) {
			t.Fatalf("trial %d: output size mismatch", trial)
		}
		for i := range base.words {
			if base.words[i] != ndp.words[i] || base.words[i] != ref.words[i] {
				t.Fatalf("trial %d: word %d differs: interp %#x, baseline %#x, ndp %#x",
					trial, i, ref.words[i], base.words[i], ndp.words[i])
			}
		}
	}
}

func memRead(mem *vm.System, addr uint64) uint32 { return mem.Read32(addr) }
