// Text kernel: assemble saxpy.s (same directory), bind real data to its
// parameters, run it under dynamic NDP, and verify the result — the
// file-based workflow for writing kernels without the Go builder API.
//
//	go run ./examples/text-kernel
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"ndpgpu/internal/asm"
	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/vm"
)

func main() {
	_, self, _, _ := runtime.Caller(0)
	src, err := os.ReadFile(filepath.Join(filepath.Dir(self), "kernels", "saxpy.s"))
	if err != nil {
		log.Fatal(err)
	}

	cfg := config.Default()
	mem := vm.New(cfg)

	const n = 64 * 1024
	aConst := mem.Alloc(4) // the scalar lives in constant memory
	x := mem.Alloc(4 * n)
	y := mem.Alloc(4 * n)
	mem.WriteF32(aConst, 3)
	for i := 0; i < n; i++ {
		mem.WriteF32(x+uint64(4*i), float32(i))
		mem.WriteF32(y+uint64(4*i), 1)
	}

	k, err := asm.Parse(string(src), aConst, x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %s: %d instructions\n", k.Name, len(k.Code))

	m, err := sim.Launch(cfg, k, mem, sim.DynNDP)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i += 7919 {
		want := float32(float32(3)*float32(i)) + 1
		if got := mem.ReadF32(y + uint64(4*i)); got != want {
			log.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
	fmt.Printf("saxpy over %d elements in %.2f us (%d block instances offloaded)\n",
		n, float64(res.TimePS)/1e6, res.Stats.OffloadBlocksOffloaded)
}
