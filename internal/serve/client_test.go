package serve

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleep replaces the client's sleep seam with a recorder, so retry tests
// assert on the delays without waiting them out.
type fakeSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (f *fakeSleep) sleep(d time.Duration) {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.mu.Unlock()
}

func (f *fakeSleep) calls() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.delays...)
}

// okResponse writes a minimal valid RunResponse.
func okResponse(w http.ResponseWriter) {
	json.NewEncoder(w).Encode(&RunResponse{
		Key: strings.Repeat("a", 64), Workload: "VADD", Mode: "dyn", TimePS: 42,
		Digest: map[string]float64{"TimePS": 42},
	})
}

// flakyServer answers /run with the scripted status codes in order, then 200.
func flakyServer(t *testing.T, script ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(script) {
			code := script[n]
			if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(errorBody{"scripted failure"})
			return
		}
		okResponse(w)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// retryClient builds a client with a fast deterministic retry policy and a
// recorded sleep seam.
func retryClient(base string, attempts int) (*Client, *fakeSleep) {
	c := NewClient(base)
	c.SetRetry(attempts, 10*time.Millisecond, 80*time.Millisecond)
	fs := &fakeSleep{}
	c.sleep = fs.sleep
	return c, fs
}

// TestClientRetriesTransient5xx: two 500s from a mid-recovery server, then
// success — the sweep leg survives instead of failing.
func TestClientRetriesTransient5xx(t *testing.T) {
	ts, calls := flakyServer(t, http.StatusInternalServerError, http.StatusInternalServerError)
	c, fs := retryClient(ts.URL, 5)
	resp, _, err := c.Run(RunRequest{Workload: "VADD", Mode: "dyn"})
	if err != nil {
		t.Fatalf("flaky server not retried: %v", err)
	}
	if resp.TimePS != 42 {
		t.Fatalf("response after retries: %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	delays := fs.calls()
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2: %v", len(delays), delays)
	}
	// Jittered capped exponential: attempt 0 in [5ms,10ms], attempt 1 in
	// [10ms,20ms] (half the step plus a random half).
	if delays[0] < 5*time.Millisecond || delays[0] > 10*time.Millisecond {
		t.Errorf("first backoff %v outside [5ms,10ms]", delays[0])
	}
	if delays[1] < 10*time.Millisecond || delays[1] > 20*time.Millisecond {
		t.Errorf("second backoff %v outside [10ms,20ms]", delays[1])
	}
}

// TestClientRetryExhaustion: a server that never recovers fails the request
// after exactly maxAttempts tries, surfacing the last error.
func TestClientRetryExhaustion(t *testing.T) {
	ts, calls := flakyServer(t,
		http.StatusInternalServerError, http.StatusInternalServerError,
		http.StatusInternalServerError, http.StatusInternalServerError,
		http.StatusInternalServerError, http.StatusInternalServerError)
	c, fs := retryClient(ts.URL, 3)
	_, _, err := c.Run(RunRequest{Workload: "VADD", Mode: "dyn"})
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("exhausted retries returned %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly maxAttempts=3", got)
	}
	if got := len(fs.calls()); got != 2 {
		t.Fatalf("slept %d times, want 2 (between 3 attempts)", got)
	}
}

// TestClientPermanent4xxNotRetried: client errors are the caller's bug;
// retrying them would just hammer the server.
func TestClientPermanent4xxNotRetried(t *testing.T) {
	ts, calls := flakyServer(t, http.StatusBadRequest)
	c, fs := retryClient(ts.URL, 5)
	_, _, err := c.Run(RunRequest{Workload: "NOPE"})
	if err == nil || !strings.Contains(err.Error(), "scripted failure") {
		t.Fatalf("4xx error: %v", err)
	}
	if calls.Load() != 1 || len(fs.calls()) != 0 {
		t.Fatalf("4xx was retried: %d requests, %d sleeps", calls.Load(), len(fs.calls()))
	}
}

// TestClientRetriesConnectionRefused: the server is down entirely (restart
// window) — transport errors are transient.
func TestClientRetriesConnectionRefused(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens on this port now
	c, fs := retryClient(ts.URL, 3)
	_, _, err := c.Run(RunRequest{Workload: "VADD", Mode: "dyn"})
	if err == nil {
		t.Fatal("connecting to a closed server succeeded")
	}
	if got := len(fs.calls()); got != 2 {
		t.Fatalf("connection refused slept %d times, want 2 (retried then failed)", got)
	}
}

// TestClientRestartRecovery: connection refused, then the server comes back
// — exactly the kill-and-restart window the chaos harness exercises.
func TestClientRestartRecovery(t *testing.T) {
	ln := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okResponse(w)
	}))
	addr := ln.Listener.Addr().String()
	ln.Listener.Close() // port reserved then released: first attempt refused

	c, fs := retryClient("http://"+addr, 5)
	started := make(chan struct{})
	c.sleep = func(d time.Duration) {
		fs.sleep(d)
		// Bring the server up during the first backoff, as a restart would.
		select {
		case <-started:
		default:
			var err error
			ln.Listener, err = listenOn(addr)
			if err != nil {
				t.Errorf("rebinding %s: %v", addr, err)
				return
			}
			ln.Start()
			t.Cleanup(ln.Close)
			close(started)
		}
	}
	resp, _, err := c.Run(RunRequest{Workload: "VADD", Mode: "dyn"})
	if err != nil {
		t.Fatalf("client did not survive the restart window: %v", err)
	}
	if resp.TimePS != 42 {
		t.Fatalf("post-restart response: %+v", resp)
	}
	if len(fs.calls()) == 0 {
		t.Fatal("no backoff was taken")
	}
}

// listenOn rebinds a TCP listener on a specific address (the "restarted"
// server must come back on the same port the client targets).
func listenOn(addr string) (net.Listener, error) {
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ { // the old socket may linger briefly
		if ln, err = net.Listen("tcp", addr); err == nil {
			return ln, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, err
}

// TestClient429DoesNotBurnAttempts: backpressure is the server queueing
// client-side, not a failure — even a 1-attempt client waits through it.
func TestClient429DoesNotBurnAttempts(t *testing.T) {
	ts, calls := flakyServer(t, http.StatusTooManyRequests, http.StatusTooManyRequests)
	c, fs := retryClient(ts.URL, 1) // zero transient retries allowed
	resp, _, err := c.Run(RunRequest{Workload: "VADD", Mode: "dyn"})
	if err != nil {
		t.Fatalf("429 failed a 1-attempt client: %v", err)
	}
	if resp.TimePS != 42 || calls.Load() != 3 {
		t.Fatalf("resp %+v after %d requests", resp, calls.Load())
	}
	for _, d := range fs.calls() {
		if d != time.Second {
			t.Fatalf("429 wait %v, want the advertised Retry-After of 1s", d)
		}
	}
}

// TestClient503RetryAfterFloor: a recovering server's Retry-After floors the
// exponential backoff — the client must not retry sooner than advertised.
func TestClient503RetryAfterFloor(t *testing.T) {
	ts, calls := flakyServer(t, http.StatusServiceUnavailable)
	c, fs := retryClient(ts.URL, 5) // base backoff 10ms << the 1s hint
	if _, _, err := c.Run(RunRequest{Workload: "VADD", Mode: "dyn"}); err != nil {
		t.Fatalf("503 not retried: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", calls.Load())
	}
	delays := fs.calls()
	if len(delays) != 1 || delays[0] < time.Second {
		t.Fatalf("503 backoff %v, want >= the 1s Retry-After", delays)
	}
}

// TestClientBackoffShape: capped exponential with jitter in [d/2, d].
func TestClientBackoffShape(t *testing.T) {
	c := NewClient("http://unused")
	c.SetRetry(10, 100*time.Millisecond, 400*time.Millisecond)
	for attempt, capped := range []time.Duration{
		100 * time.Millisecond, // 0
		200 * time.Millisecond, // 1
		400 * time.Millisecond, // 2
		400 * time.Millisecond, // 3: capped
		400 * time.Millisecond, // 4: stays capped
	} {
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt)
			if d < capped/2 || d > capped {
				t.Fatalf("backoff(%d) = %v outside [%v,%v]", attempt, d, capped/2, capped)
			}
		}
	}
}
