// Command ndpinspect shows a workload's compiled GPU code after the offload
// analysis (§3), its offload blocks with the Equation 1 scores and register
// transfers, and the generated NSU code (Figure 3).
//
// Usage:
//
//	ndpinspect -workload BFS
package main

import (
	"flag"
	"fmt"
	"os"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/config"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "VADD", "workload abbreviation")
		showGPU  = flag.Bool("gpu", true, "print the rewritten GPU code")
		showNSU  = flag.Bool("nsu", true, "print the NSU code per block")
	)
	flag.Parse()

	cfg := config.Default()
	mem := vm.New(cfg)
	w, err := workloads.Build(*workload, mem, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndpinspect:", err)
		os.Exit(1)
	}
	prog, err := analyzer.Analyze(w.Kernel, analyzer.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ndpinspect:", err)
		os.Exit(1)
	}

	fmt.Printf("%s — %s (%s)\n", w.Abbr, w.Desc, w.Input)
	fmt.Printf("grid %d x %d threads, %d registers\n\n",
		prog.Kernel.GridDim, prog.Kernel.BlockDim, prog.Kernel.RegsUsed)

	if *showGPU {
		fmt.Println("GPU code (rewritten, Figure 3(a) style):")
		fmt.Print(prog.Kernel.Disassemble())
		fmt.Println()
	}

	fmt.Printf("offload blocks: %d\n", len(prog.Blocks))
	for _, b := range prog.Blocks {
		kind := ""
		if b.Indirect {
			kind = "  [single indirect load, §4.4]"
		}
		fmt.Printf("\nblock %d: pc %d..%d, %d LD / %d ST, score=%d B/thread, "+
			"regs in=%v out=%v, %d NSU instrs (%d B of I-cache)%s\n",
			b.ID, b.BegPC, b.EndPC, b.NumLD, b.NumST, b.Score,
			b.RegsIn, b.RegsOut, b.NSUInstrs(), len(b.NSUCode)*isa.InstrBytes, kind)
		if *showNSU {
			for pc, in := range b.NSUCode {
				fmt.Printf("  %4d: %s\n", pc, in.String())
			}
		}
	}
}
