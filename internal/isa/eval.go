package isa

import "math"

// F32 reinterprets the low 32 bits of a register value as a float32.
func F32(v uint64) float32 { return math.Float32frombits(uint32(v)) }

// FromF32 packs a float32 into a register value.
func FromF32(f float32) uint64 { return uint64(math.Float32bits(f)) }

// Eval computes the result of an ALU-class instruction given its operand
// values. It must only be called for opcodes with Class() == ClassALU and
// WritesDst() == true. The same evaluator runs on the GPU SM and on the NSU,
// which is what makes the partitioned execution functionally transparent.
func Eval(in Instr, a, b, c uint64) uint64 {
	switch in.Op {
	case MOV:
		return a
	case MOVI:
		return uint64(in.Imm)
	case ADD:
		return a + b
	case ADDI:
		return a + uint64(in.Imm)
	case SUB:
		return a - b
	case MUL:
		return a * b
	case MULI:
		return a * uint64(in.Imm)
	case MAD:
		return a*b + c
	case AND:
		return a & b
	case ANDI:
		return a & uint64(in.Imm)
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SHL:
		return a << (b & 63)
	case SHLI:
		return a << (uint64(in.Imm) & 63)
	case SHR:
		return a >> (b & 63)
	case SHRI:
		return a >> (uint64(in.Imm) & 63)
	case MIN:
		if int64(a) < int64(b) {
			return a
		}
		return b
	case MAX:
		if int64(a) > int64(b) {
			return a
		}
		return b
	case FADD:
		return FromF32(F32(a) + F32(b))
	case FSUB:
		return FromF32(F32(a) - F32(b))
	case FMUL:
		return FromF32(F32(a) * F32(b))
	case FDIV:
		return FromF32(F32(a) / F32(b))
	case FMA:
		// Explicit conversion forces rounding of the product: Go would
		// otherwise be free to fuse the multiply-add, making results
		// platform-dependent.
		return FromF32(float32(F32(a)*F32(b)) + F32(c))
	case FMIN:
		return FromF32(float32(math.Min(float64(F32(a)), float64(F32(b)))))
	case FMAX:
		return FromF32(float32(math.Max(float64(F32(a)), float64(F32(b)))))
	case FABS:
		return FromF32(float32(math.Abs(float64(F32(a)))))
	case FSQRT:
		return FromF32(float32(math.Sqrt(float64(F32(a)))))
	case I2F:
		return FromF32(float32(int64(a)))
	case F2I:
		return uint64(int64(F32(a)))
	case SETP:
		if Compare(in.Cmp, a, b) {
			return 1
		}
		return 0
	case SEL:
		if c != 0 {
			return a
		}
		return b
	default:
		panic("isa: Eval called on non-ALU opcode " + in.Op.String())
	}
}

// Compare evaluates a comparison operator on two register values.
func Compare(op CmpOp, a, b uint64) bool {
	switch op {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return int64(a) < int64(b)
	case CmpLE:
		return int64(a) <= int64(b)
	case CmpGT:
		return int64(a) > int64(b)
	case CmpGE:
		return int64(a) >= int64(b)
	case CmpFLT:
		return F32(a) < F32(b)
	case CmpFLE:
		return F32(a) <= F32(b)
	case CmpFGT:
		return F32(a) > F32(b)
	case CmpFGE:
		return F32(a) >= F32(b)
	case CmpFEQ:
		return F32(a) == F32(b)
	default:
		panic("isa: unknown comparison")
	}
}
