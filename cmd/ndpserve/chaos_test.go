package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ndpgpu/internal/experiments"
	"ndpgpu/internal/serve"
	"ndpgpu/internal/sim"
)

// TestChaosServe is the kill-and-restart chaos harness (`make chaos-serve`):
// it builds the real server binary, drives concurrent load of real
// simulations against it, SIGKILLs it mid-load, restarts it on the same
// -data dir, and asserts the recovery invariants:
//
//   - every result acknowledged before the kill is served from the journal
//     after restart — cached, byte-identical, zero re-simulation (run
//     counters stay at zero);
//   - golden legs recover byte-identical to testdata/golden_digests.json;
//   - a panicking or hung run returns a structured 500 and never crashes the
//     server, and its key is quarantined after K failures, visible in /status;
//   - SIGTERM still drains cleanly at the end.
//
// In -short mode (wired into `make check`) it runs one kill round over a
// reduced key set; the full run (`make chaos-serve`) does more rounds.
func TestChaosServe(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL/SIGTERM semantics are POSIX")
	}
	bin := buildServerBinary(t)
	rounds, extraSeeds := 3, 3
	if testing.Short() {
		rounds, extraSeeds = 1, 1
	}
	dataDir := t.TempDir()
	golden := loadGoldenDigests(t)
	cfgJSON, err := json.Marshal(sim.AuditConfig())
	if err != nil {
		t.Fatal(err)
	}

	// The key set: the three VADD golden legs (checked against the committed
	// regression digests) plus seed-varied dyn legs for key diversity. All
	// are real simulations on the audit configuration — cheap but genuine.
	type leg struct {
		name      string
		body      string
		goldenKey string
	}
	var legs []leg
	for _, m := range []struct{ spec, name string }{
		{"baseline", sim.Baseline.Name},
		{"naive", sim.NaiveNDP.Name},
		{"dyn", sim.DynNDP.Name},
	} {
		legs = append(legs, leg{
			name:      "VADD/" + m.spec,
			body:      fmt.Sprintf(`{"workload":"VADD","mode":%q,"config":%s,"client":"load"}`, m.spec, cfgJSON),
			goldenKey: experiments.GoldenKey("VADD", m.name),
		})
	}
	for s := 1; s <= extraSeeds; s++ {
		legs = append(legs, leg{
			name: fmt.Sprintf("VADD/dyn/seed=%d", s),
			body: fmt.Sprintf(`{"workload":"VADD","mode":"dyn","seed":%d,"config":%s,"client":"load"}`, s, cfgJSON),
		})
	}

	// Load and recovery instances keep the default (generous) watchdog: real
	// simulations under a race-instrumented binary can spend seconds building
	// the workload before the first epoch sample. The fault-injection probes
	// at the end run a dedicated instance with tight watchdog windows — those
	// never execute a real simulation.
	serverArgs := []string{
		"-data", dataDir, "-chaos", "-workers", "4", "-queue", "256",
		"-poisonk", "2", "-poisonttl", "5m",
	}
	probeArgs := append(append([]string{}, serverArgs...),
		"-runtimeout", "30s", "-stalltimeout", "2s")

	// completed records the digest of every response acknowledged before a
	// kill: acknowledgment implies the journal fsync finished, so each one
	// MUST survive the kill.
	completed := map[string]map[string]float64{}
	var mu sync.Mutex
	var killWaits []float64

	for r := 0; r < rounds; r++ {
		proc := startServerProc(t, bin, serverArgs)
		waitHTTPReady(t, proc.base)

		mu.Lock()
		prevCompleted := len(completed)
		mu.Unlock()

		var wg sync.WaitGroup
		var pending, acked atomic.Int64
		pending.Store(int64(len(legs)))
		for _, l := range legs {
			l, r := l, r
			wg.Add(1)
			go func() {
				defer wg.Done()
				rr, err := postRunOnce(proc.base, l.body)
				pending.Add(-1)
				if err != nil {
					// Killed mid-request: losing in-flight runs is allowed.
					t.Logf("round %d %s lost in flight: %v", r, l.name, err)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				if prev, ok := completed[l.name]; ok {
					assertDigestEqual(t, l.name+" across restarts", rr.Digest, prev)
				}
				completed[l.name] = rr.Digest
				acked.Add(1)
			}()
		}

		// Kill once at least one NEW result has been acknowledged this round —
		// cached replays of prior rounds' results don't count, so every round
		// grows the journal before the cut (an acknowledgment implies its
		// append was durable). The jittered sleep varies the cut offset.
		killStart := time.Now()
		waitStatusCond(t, proc.base, "a newly acknowledged result",
			func(serve.Counters) bool { return acked.Load() > int64(prevCompleted) },
			func() bool { return pending.Load() == 0 })
		time.Sleep(time.Duration(rand.Intn(150)) * time.Millisecond)
		proc.kill()
		killWaits = append(killWaits, float64(time.Since(killStart))/float64(time.Millisecond))
		wg.Wait()
	}
	if len(completed) == 0 {
		t.Fatal("no leg completed before any kill; the harness never exercised recovery")
	}

	// Recovery: restart on the same journal and verify the invariants.
	proc := startServerProc(t, bin, serverArgs)
	defer proc.ensureStopped()
	waitHTTPReady(t, proc.base)
	if !strings.Contains(proc.output(), "journal replayed") {
		t.Fatalf("restart printed no replay summary:\n%s", proc.output())
	}

	st := getStatus(t, proc.base)
	if st.Counters.Executed != 0 {
		t.Fatalf("restarted server executed %d runs before any request", st.Counters.Executed)
	}
	if st.Counters.Recovered < int64(len(completed)) {
		t.Fatalf("journal recovered %d results, want >= %d acknowledged pre-kill",
			st.Counters.Recovered, len(completed))
	}
	if st.Journal == nil || st.Journal.Replay.Records < len(completed) {
		t.Fatalf("/status journal section: %+v", st.Journal)
	}

	// Every acknowledged result is served from the restored cache,
	// byte-identical, with zero re-simulation.
	for _, l := range legs {
		mu.Lock()
		want, wasCompleted := completed[l.name]
		mu.Unlock()
		if !wasCompleted {
			continue
		}
		rr, err := postRunOnce(proc.base, l.body)
		if err != nil {
			t.Fatalf("%s after restart: %v", l.name, err)
		}
		if !rr.Cached {
			t.Fatalf("%s: journaled result not served from cache after restart", l.name)
		}
		assertDigestEqual(t, l.name+" recovery", rr.Digest, want)
		if l.goldenKey != "" {
			assertDigestEqual(t, l.name+" vs golden", rr.Digest, golden[l.goldenKey])
		}
	}
	if c := getStatus(t, proc.base).Counters; c.Executed != 0 {
		t.Fatalf("restart re-simulated %d journaled keys, want 0", c.Executed)
	}

	// Legs that never completed pre-kill execute now and still match golden.
	for _, l := range legs {
		mu.Lock()
		_, wasCompleted := completed[l.name]
		mu.Unlock()
		if wasCompleted {
			continue
		}
		rr, err := postRunOnce(proc.base, l.body)
		if err != nil {
			t.Fatalf("%s cold after restart: %v", l.name, err)
		}
		if l.goldenKey != "" {
			assertDigestEqual(t, l.name+" vs golden", rr.Digest, golden[l.goldenKey])
		}
	}

	// The recovery instance drains cleanly on SIGTERM.
	if err := proc.terminate(); err != nil {
		t.Fatalf("SIGTERM drain of recovery instance: %v\n%s", err, proc.output())
	}

	// Fault-injection probes on a fresh instance over the same journal, with
	// tight watchdog windows (the injected faults fire before any simulation
	// starts, so no real run races the 2s stall guard).
	proc = startServerProc(t, bin, probeArgs)
	waitHTTPReady(t, proc.base)

	// Panic isolation + quarantine over HTTP: two injected panics (structured
	// 500s), then the breaker opens (503 + Retry-After) and the key shows up
	// in /status. The server keeps serving.
	poison := fmt.Sprintf(`{"workload":"VADD","mode":"dyn","seed":777001,"config":%s,"client":%q}`,
		cfgJSON, serve.ChaosPanicClient)
	for i := 0; i < 2; i++ {
		code, body := postRaw(t, proc.base, poison)
		if code != http.StatusInternalServerError || !strings.Contains(body, "panicked") {
			t.Fatalf("injected panic %d: status %d body %s", i, code, body)
		}
	}
	code, body := postRaw(t, proc.base, poison)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "quarantined") {
		t.Fatalf("quarantine: status %d body %s", code, body)
	}
	if st := getStatus(t, proc.base); len(st.Quarantine) != 1 || st.Counters.Panics != 2 {
		t.Fatalf("quarantine not visible in /status: %+v %+v", st.Quarantine, st.Counters)
	}

	// A hung run (no progress, ignores everything but cooperative cancel) is
	// killed by the stall watchdog as a structured 500 — no worker is lost.
	hang := fmt.Sprintf(`{"workload":"VADD","mode":"dyn","seed":777002,"config":%s,"client":%q}`,
		cfgJSON, serve.ChaosHangClient)
	code, body = postRaw(t, proc.base, hang)
	if code != http.StatusInternalServerError || !strings.Contains(body, "progress") {
		t.Fatalf("hung run: status %d body %s", code, body)
	}

	// The server is still fully alive after all injected chaos.
	if rr, err := postRunOnce(proc.base, legs[0].body); err != nil || !rr.Cached {
		t.Fatalf("healthy request after chaos: %+v %v", rr, err)
	}

	// Graceful exit: SIGTERM drains and reports.
	if err := proc.terminate(); err != nil {
		t.Fatalf("SIGTERM drain: %v\n%s", err, proc.output())
	}
	if out := proc.output(); !strings.Contains(out, "drained") {
		t.Fatalf("no drain summary after SIGTERM:\n%s", out)
	}

	writeChaosSummary(t, map[string]any{
		"schema":                 "ndpserve-chaos-v1",
		"rounds":                 rounds,
		"legs":                   len(legs),
		"completed_before_kills": len(completed),
		"recovered":              st.Counters.Recovered,
		"replay":                 st.Journal.Replay,
		"kill_wait_ms":           killWaits,
		"short":                  testing.Short(),
		"quarantine_verified":    true,
		"watchdog_verified":      true,
		"golden_digest_verified": true,
		"zero_resimulation":      true,
		"sigterm_drain_verified": true,
	})
}

// buildServerBinary compiles cmd/ndpserve into a temp dir, with the race
// detector when the toolchain supports it here.
func buildServerBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ndpserve")
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Logf("race-instrumented build unavailable (%v); building plain:\n%s", err, out)
		cmd = exec.Command("go", "build", "-o", bin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building server binary: %v\n%s", err, out)
		}
	}
	return bin
}

// serverProc is one running server subprocess with captured output.
type serverProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string

	done    chan struct{} // closed once the process is reaped
	waitErr error         // valid after done is closed

	mu  sync.Mutex
	buf bytes.Buffer
}

var listenRE = regexp.MustCompile(`listening on ([^\s]+)`)

func (p *serverProc) Write(b []byte) (int, error) {
	p.mu.Lock()
	p.buf.Write(b)
	p.mu.Unlock()
	return len(b), nil
}

func (p *serverProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

// startServerProc launches the binary on an ephemeral port and waits for its
// listen address.
func startServerProc(t *testing.T, bin string, args []string) *serverProc {
	t.Helper()
	p := &serverProc{t: t, done: make(chan struct{})}
	p.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	p.cmd.Stdout = p
	p.cmd.Stderr = p
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { p.waitErr = p.cmd.Wait(); close(p.done) }()
	t.Cleanup(p.ensureStopped)

	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(p.output()); m != nil {
			p.base = "http://" + m[1]
			return p
		}
		select {
		case <-p.done:
			t.Fatalf("server exited before listening (%v):\n%s", p.waitErr, p.output())
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("server never reported its listen address:\n%s", p.output())
	return nil
}

// kill SIGKILLs the process — the crash under test — and reaps it.
func (p *serverProc) kill() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatalf("SIGKILL: %v", err)
	}
	<-p.done
}

// terminate sends SIGTERM and waits for a clean exit.
func (p *serverProc) terminate() error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-p.done:
		return p.waitErr
	case <-time.After(60 * time.Second):
		return fmt.Errorf("server did not drain within 60s")
	}
}

// ensureStopped reaps the process if a test failure left it running.
func (p *serverProc) ensureStopped() {
	select {
	case <-p.done:
	default:
		p.cmd.Process.Kill()
		<-p.done
	}
}

// waitHTTPReady polls /readyz until the server accepts runs (journal replay
// finished).
func waitHTTPReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server at %s never became ready", base)
}

type statusDoc struct {
	Ready      bool                    `json:"ready"`
	Counters   serve.Counters          `json:"counters"`
	Quarantine []serve.QuarantineEntry `json:"quarantine"`
	Journal    *serve.JournalStats     `json:"journal"`
}

func getStatus(t *testing.T, base string) statusDoc {
	t.Helper()
	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitStatusCond polls /status until cond holds, stop reports true, or the
// wait times out. Transient HTTP errors are tolerated (the server may be
// mid-kill).
func waitStatusCond(t *testing.T, base, what string, cond func(serve.Counters) bool, stop func() bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if stop != nil && stop() {
			return
		}
		resp, err := http.Get(base + "/status")
		if err == nil {
			var st statusDoc
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil && cond(st.Counters) {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// postRunOnce submits one run with no client-side retry (the harness drives
// raw HTTP so a kill surfaces as an error, not a transparent retry).
func postRunOnce(base, body string) (*serve.RunResponse, error) {
	hc := &http.Client{Timeout: 5 * time.Minute}
	resp, err := hc.Post(base+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var rr serve.RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// postRaw returns the raw status code and body of one /run POST.
func postRaw(t *testing.T, base, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func loadGoldenDigests(t *testing.T) map[string]map[string]float64 {
	t.Helper()
	data, err := os.ReadFile("../../testdata/golden_digests.json")
	if err != nil {
		t.Fatalf("reading golden digests: %v", err)
	}
	var golden map[string]map[string]float64
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	return golden
}

// assertDigestEqual requires two digests to be byte-identical (every counter
// exact), reporting each divergence.
func assertDigestEqual(t *testing.T, leg string, got, want map[string]float64) {
	t.Helper()
	if want == nil {
		t.Fatalf("%s: no reference digest", leg)
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: digest missing %s", leg, k)
			continue
		}
		if g != w {
			t.Errorf("%s: %s = %v, want %v", leg, k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: digest has unexpected key %s", leg, k)
		}
	}
}

// writeChaosSummary emits the recovery summary JSON CI uploads as an
// artifact, when NDPSERVE_CHAOS_OUT is set.
func writeChaosSummary(t *testing.T, summary map[string]any) {
	t.Helper()
	path := os.Getenv("NDPSERVE_CHAOS_OUT")
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(summary, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing chaos summary: %v", err)
	}
	t.Logf("chaos summary written to %s", path)
}
