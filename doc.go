// Package ndpgpu reproduces "Toward Standardized Near-Data Processing with
// Unrestricted Data Placement for GPUs" (Kim, Chatterjee, O'Connor, Hsieh,
// SC '17) as a self-contained Go simulation stack.
//
// The paper proposes an architecture-neutral near-data-processing design:
// GPU kernels are partitioned so that address translation and memory-request
// generation stay on the GPU while the data-touching computation of offload
// blocks runs on NSUs (Near-data processing SIMD Units) in the logic layer
// of HMC-like memory stacks, connected by a memory network. The stacks need
// no MMU, TLB, or data cache, and data may be placed on any stack.
//
// Layout:
//
//   - internal/core        the partitioned-execution protocol (packets,
//     credit-based buffer management, offload deciders)
//   - internal/gpu, nsu, hmc, dram, cache, noc, vm, timing — the simulated
//     machine (GPGPU-Sim-style substrate built from scratch)
//   - internal/isa, kernel, analyzer — the virtual ISA and the §3 compiler
//     pass that extracts offload blocks
//   - internal/workloads   the ten Table 1 benchmarks
//   - internal/experiments every table and figure of the evaluation
//   - cmd/ndpsim, cmd/ndpsweep, cmd/ndpinspect — command-line tools
//   - examples/            runnable walk-throughs of the public API
//
// The benchmarks in bench_test.go regenerate each figure; see EXPERIMENTS.md
// for measured-vs-paper results and DESIGN.md for the system inventory.
package ndpgpu
